// Tests for dataset CSV persistence: serialize -> parse round trips for
// all built-in catalogs, plus failure modes.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "datagen/course_data.h"
#include "datagen/io.h"
#include "datagen/trip_data.h"

namespace rlplanner::datagen {
namespace {

void ExpectCatalogsEqual(const model::Catalog& a, const model::Catalog& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.vocabulary(), b.vocabulary());
  EXPECT_EQ(a.category_names(), b.category_names());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const model::Item& x = a.item(static_cast<model::ItemId>(i));
    const model::Item& y = b.item(static_cast<model::ItemId>(i));
    EXPECT_EQ(x.code, y.code);
    EXPECT_EQ(x.name, y.name);
    EXPECT_EQ(x.type, y.type);
    EXPECT_EQ(x.category, y.category);
    EXPECT_NEAR(x.credits, y.credits, 1e-6);
    EXPECT_EQ(x.topics.ToString(), y.topics.ToString());
    EXPECT_NEAR(x.location.lat, y.location.lat, 1e-4);
    EXPECT_NEAR(x.location.lng, y.location.lng, 1e-4);
    EXPECT_NEAR(x.popularity, y.popularity, 1e-6);
    EXPECT_EQ(x.primary_theme, y.primary_theme);
    EXPECT_EQ(x.prereqs.ToString(), y.prereqs.ToString());
  }
}

TEST(IoTest, ToyRoundTrips) {
  const Dataset toy = MakeTableIIToy();
  auto parsed =
      ParseCatalog(model::Domain::kCourse, SerializeCatalog(toy.catalog));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectCatalogsEqual(toy.catalog, parsed.value());
}

TEST(IoTest, AllBuiltinCatalogsRoundTrip) {
  const Dataset datasets[] = {MakeUniv1DsCt(), MakeUniv1Cybersecurity(),
                              MakeUniv1Cs(), MakeUniv2Ds()};
  for (const Dataset& dataset : datasets) {
    auto parsed = ParseCatalog(model::Domain::kCourse,
                               SerializeCatalog(dataset.catalog));
    ASSERT_TRUE(parsed.ok()) << dataset.name;
    ExpectCatalogsEqual(dataset.catalog, parsed.value());
  }
}

TEST(IoTest, TripCatalogsRoundTripWithGeoAndPopularity) {
  for (const Dataset& dataset : {MakeNycTrip(), MakeParisTrip()}) {
    auto parsed = ParseCatalog(model::Domain::kTrip,
                               SerializeCatalog(dataset.catalog));
    ASSERT_TRUE(parsed.ok()) << dataset.name;
    ExpectCatalogsEqual(dataset.catalog, parsed.value());
  }
}

TEST(IoTest, FileRoundTrip) {
  const Dataset toy = MakeTableIIToy();
  const std::string path = "/tmp/rlplanner_io_test_catalog.csv";
  ASSERT_TRUE(SaveCatalogCsv(toy.catalog, path).ok());
  auto loaded = LoadCatalogCsv(model::Domain::kCourse, path);
  ASSERT_TRUE(loaded.ok());
  ExpectCatalogsEqual(toy.catalog, loaded.value());
  std::remove(path.c_str());
}

TEST(IoTest, MissingFileFails) {
  auto loaded =
      LoadCatalogCsv(model::Domain::kCourse, "/tmp/does_not_exist_1234.csv");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kNotFound);
}

TEST(IoTest, RejectsMissingReservedRows) {
  auto parsed = ParseCatalog(model::Domain::kCourse,
                             "code,name,type,category,credits,prereqs,"
                             "topics,lat,lng,popularity,theme\n");
  EXPECT_FALSE(parsed.ok());
}

TEST(IoTest, RejectsUnknownTopic) {
  const Dataset toy = MakeTableIIToy();
  std::string csv = SerializeCatalog(toy.catalog);
  // Corrupt a topic name.
  const std::string needle = "clustering";
  const auto pos = csv.find(needle, csv.find("\n", csv.find("\n") + 1) + 1);
  ASSERT_NE(pos, std::string::npos);
  csv.replace(pos, needle.size(), "clusterinX");
  EXPECT_FALSE(ParseCatalog(model::Domain::kCourse, csv).ok());
}

TEST(IoTest, RejectsBadType) {
  const Dataset toy = MakeTableIIToy();
  std::string csv = SerializeCatalog(toy.catalog);
  // The first bare "primary" is the category-names row; corrupt an item's
  // *type* column instead (comma-delimited).
  const auto pos = csv.find(",primary,");
  ASSERT_NE(pos, std::string::npos);
  csv.replace(pos + 1, 7, "priZZZZ");
  EXPECT_FALSE(ParseCatalog(model::Domain::kCourse, csv).ok());
}

TEST(DatasetIoTest, FullDatasetRoundTrip) {
  for (const Dataset& dataset :
       {MakeTableIIToy(), MakeUniv2Ds(), MakeParisTrip()}) {
    auto parsed = ParseDataset(SerializeDataset(dataset));
    ASSERT_TRUE(parsed.ok()) << dataset.name << ": "
                             << parsed.status().ToString();
    const Dataset& restored = parsed.value();
    EXPECT_EQ(restored.name, dataset.name);
    EXPECT_EQ(restored.catalog.domain(), dataset.catalog.domain());
    EXPECT_EQ(restored.default_start, dataset.default_start);
    EXPECT_NEAR(restored.hard.min_credits, dataset.hard.min_credits, 1e-6);
    EXPECT_EQ(restored.hard.num_primary, dataset.hard.num_primary);
    EXPECT_EQ(restored.hard.num_secondary, dataset.hard.num_secondary);
    EXPECT_EQ(restored.hard.gap, dataset.hard.gap);
    EXPECT_EQ(restored.hard.category_min_counts,
              dataset.hard.category_min_counts);
    EXPECT_EQ(restored.hard.no_consecutive_same_theme,
              dataset.hard.no_consecutive_same_theme);
    if (std::isfinite(dataset.hard.distance_threshold_km)) {
      EXPECT_NEAR(restored.hard.distance_threshold_km,
                  dataset.hard.distance_threshold_km, 1e-6);
    } else {
      EXPECT_FALSE(std::isfinite(restored.hard.distance_threshold_km));
    }
    EXPECT_EQ(restored.soft.ideal_topics.ToString(),
              dataset.soft.ideal_topics.ToString());
    ASSERT_EQ(restored.soft.interleaving.size(),
              dataset.soft.interleaving.size());
    for (std::size_t i = 0; i < dataset.soft.interleaving.size(); ++i) {
      EXPECT_EQ(model::InterleavingTemplate::ToCompactString(
                    restored.soft.interleaving.permutation(i)),
                model::InterleavingTemplate::ToCompactString(
                    dataset.soft.interleaving.permutation(i)));
    }
    ExpectCatalogsEqual(dataset.catalog, restored.catalog);
    // The restored dataset is directly plannable.
    EXPECT_TRUE(restored.Instance().Validate().ok()) << dataset.name;
  }
}

TEST(DatasetIoTest, FileRoundTrip) {
  const Dataset toy = MakeTableIIToy();
  const std::string path = "/tmp/rlplanner_io_test_dataset.csv";
  ASSERT_TRUE(SaveDatasetCsv(toy, path).ok());
  auto loaded = LoadDatasetCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().name, toy.name);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, RejectsMissingMetaRows) {
  const Dataset toy = MakeTableIIToy();
  // A bare catalog document is not a dataset document.
  EXPECT_FALSE(ParseDataset(SerializeCatalog(toy.catalog)).ok());
  EXPECT_FALSE(ParseDataset("a,b\n1,2\n").ok());
}

TEST(DatasetIoTest, RejectsUnknownDomain) {
  const Dataset toy = MakeTableIIToy();
  std::string csv = SerializeDataset(toy);
  const auto pos = csv.find("course");
  ASSERT_NE(pos, std::string::npos);
  csv.replace(pos, 6, "moonxx");
  EXPECT_FALSE(ParseDataset(csv).ok());
}

TEST(IoTest, PrereqCnfRendering) {
  // The toy's m6 = (m4) AND (m2); serialized via course codes.
  const Dataset toy = MakeTableIIToy();
  const std::string csv = SerializeCatalog(toy.catalog);
  EXPECT_NE(csv.find("m4 AND m2"), std::string::npos);
  EXPECT_NE(csv.find("m2 OR m3"), std::string::npos);
}

}  // namespace
}  // namespace rlplanner::datagen

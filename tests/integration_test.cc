// End-to-end integration and property tests: the full
// train -> recommend -> validate -> score pipeline over the built-in
// datasets and over swept synthetic instance shapes.

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "baselines/eda.h"
#include "baselines/gold.h"
#include "baselines/omega.h"
#include "core/config.h"
#include "core/planner.h"
#include "core/scoring.h"
#include "datagen/course_data.h"
#include "datagen/synthetic.h"
#include "datagen/trip_data.h"

namespace rlplanner {
namespace {

core::PlannerConfig FastConfig(const datagen::Dataset& dataset) {
  core::PlannerConfig config;
  config.sarsa.num_episodes = 120;
  config.sarsa.start_item = dataset.default_start;
  return config;
}

// ------------------------------------------------------ built-in datasets --

TEST(EndToEndTest, AllBuiltinDatasetsProduceScoredPlans) {
  const datagen::Dataset datasets[] = {
      datagen::MakeUniv1DsCt(),  datagen::MakeUniv1Cybersecurity(),
      datagen::MakeUniv1Cs(),    datagen::MakeUniv2Ds(),
      datagen::MakeNycTrip(),    datagen::MakeParisTrip()};
  for (const datagen::Dataset& dataset : datasets) {
    const model::TaskInstance instance = dataset.Instance();
    core::PlannerConfig config = FastConfig(dataset);
    core::RlPlanner planner(instance, config);
    ASSERT_TRUE(planner.Train().ok()) << dataset.name;
    auto plan = planner.Recommend(dataset.default_start);
    ASSERT_TRUE(plan.ok()) << dataset.name;
    EXPECT_FALSE(plan.value().empty()) << dataset.name;
    // Score is 0 exactly when the plan is invalid.
    const bool valid = planner.Validate(plan.value()).valid;
    const double score = planner.Score(plan.value());
    EXPECT_EQ(valid, score > 0.0) << dataset.name;
  }
}

TEST(EndToEndTest, GoldDominatesRlPlannerEverywhere) {
  const datagen::Dataset datasets[] = {
      datagen::MakeUniv1DsCt(), datagen::MakeUniv2Ds(),
      datagen::MakeNycTrip()};
  for (const datagen::Dataset& dataset : datasets) {
    const model::TaskInstance instance = dataset.Instance();
    core::PlannerConfig config = FastConfig(dataset);
    config.sarsa.num_episodes = 300;
    core::RlPlanner planner(instance, config);
    ASSERT_TRUE(planner.Train().ok());
    auto plan = planner.Recommend(dataset.default_start);
    ASSERT_TRUE(plan.ok());
    auto gold = baselines::BuildGoldStandard(instance);
    ASSERT_TRUE(gold.ok()) << dataset.name;
    EXPECT_GE(core::ScorePlan(instance, gold.value()),
              planner.Score(plan.value()))
        << dataset.name;
  }
}

TEST(EndToEndTest, RlBeatsOmegaOnDefaults) {
  // Figure 1's central comparison, at reduced episode counts.
  const datagen::Dataset dataset = datagen::MakeUniv1DsCt();
  const model::TaskInstance instance = dataset.Instance();
  core::PlannerConfig config = core::DefaultUniv1Config();
  config.sarsa.start_item = dataset.default_start;
  config.seed = 1000;
  core::RlPlanner planner(instance, config);
  ASSERT_TRUE(planner.Train().ok());
  auto plan = planner.Recommend(dataset.default_start);
  ASSERT_TRUE(plan.ok());

  const baselines::Omega omega(instance);
  double omega_best = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    omega_best = std::max(
        omega_best, core::ScorePlan(instance, omega.BuildPlan(seed)));
  }
  EXPECT_GT(planner.Score(plan.value()), omega_best);
}

TEST(EndToEndTest, FullPipelineIsDeterministic) {
  const datagen::Dataset dataset = datagen::MakeUniv1Cs();
  const model::TaskInstance instance = dataset.Instance();
  core::PlannerConfig config = FastConfig(dataset);
  config.seed = 321;

  core::RlPlanner a(instance, config);
  core::RlPlanner b(instance, config);
  ASSERT_TRUE(a.Train().ok());
  ASSERT_TRUE(b.Train().ok());
  auto plan_a = a.Recommend(dataset.default_start);
  auto plan_b = b.Recommend(dataset.default_start);
  ASSERT_TRUE(plan_a.ok());
  ASSERT_TRUE(plan_b.ok());
  EXPECT_EQ(plan_a.value(), plan_b.value());
  EXPECT_EQ(a.episode_returns(), b.episode_returns());
}

// -------------------------------------------------- synthetic shape sweep --

// (num_items, required primaries, required secondaries, gap, seed)
using Shape = std::tuple<int, int, int, int, int>;

class SyntheticShapeTest : public ::testing::TestWithParam<Shape> {};

TEST_P(SyntheticShapeTest, PipelineInvariantsHold) {
  const auto [num_items, primaries, secondaries, gap, seed] = GetParam();
  datagen::SyntheticSpec spec;
  spec.num_items = num_items;
  spec.vocab_size = 2 * num_items;
  spec.num_primary_required = primaries;
  spec.num_secondary_required = secondaries;
  spec.gap = gap;
  spec.seed = static_cast<std::uint64_t>(seed);
  const datagen::Dataset dataset = datagen::GenerateSynthetic(spec);
  const model::TaskInstance instance = dataset.Instance();
  ASSERT_TRUE(instance.Validate().ok());

  core::PlannerConfig config;
  config.sarsa.num_episodes = 80;
  config.sarsa.start_item = dataset.default_start;
  config.seed = static_cast<std::uint64_t>(seed) * 13 + 7;
  core::RlPlanner planner(instance, config);
  ASSERT_TRUE(planner.Train().ok());
  auto plan = planner.Recommend(dataset.default_start);
  ASSERT_TRUE(plan.ok());

  // Invariant 1: plans never repeat items.
  auto items = plan.value().items();
  std::sort(items.begin(), items.end());
  EXPECT_EQ(std::adjacent_find(items.begin(), items.end()), items.end());

  // Invariant 2: course plans have exactly H items.
  EXPECT_EQ(static_cast<int>(plan.value().size()),
            instance.hard.TotalItems());

  // Invariant 3: the plan starts at the requested item.
  EXPECT_EQ(plan.value().at(0), dataset.default_start);

  // Invariant 4: score is positive iff the plan is valid, and bounded by H.
  const double score = planner.Score(plan.value());
  EXPECT_EQ(planner.Validate(plan.value()).valid, score > 0.0);
  EXPECT_LE(score, instance.hard.TotalItems());

  // Invariant 5: episode returns are non-negative and as many as N.
  EXPECT_EQ(planner.episode_returns().size(), 80u);
  for (double r : planner.episode_returns()) EXPECT_GE(r, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SyntheticShapeTest,
    ::testing::Values(Shape{20, 3, 3, 1, 1}, Shape{20, 3, 3, 2, 2},
                      Shape{30, 4, 4, 2, 3}, Shape{30, 5, 3, 3, 4},
                      Shape{40, 5, 5, 3, 5}, Shape{40, 2, 8, 1, 6},
                      Shape{60, 6, 6, 3, 7}, Shape{60, 4, 4, 4, 8},
                      Shape{80, 5, 5, 2, 9}, Shape{25, 6, 2, 1, 10}));

// Trip-domain synthetic sweep: budget-bounded horizons.
class SyntheticTripTest : public ::testing::TestWithParam<int> {};

TEST_P(SyntheticTripTest, BudgetsAreNeverExceeded) {
  datagen::SyntheticSpec spec;
  spec.domain = model::Domain::kTrip;
  spec.num_items = 40;
  spec.vocab_size = 15;
  spec.num_primary_required = 2;
  spec.num_secondary_required = 3;
  spec.gap = 1;
  spec.time_budget = 6.0;
  spec.seed = static_cast<std::uint64_t>(GetParam());
  const datagen::Dataset dataset = datagen::GenerateSynthetic(spec);
  const model::TaskInstance instance = dataset.Instance();
  ASSERT_TRUE(instance.Validate().ok());

  core::PlannerConfig config;
  config.sarsa.num_episodes = 60;
  config.sarsa.start_item = dataset.default_start;
  core::RlPlanner planner(instance, config);
  ASSERT_TRUE(planner.Train().ok());
  auto plan = planner.Recommend(dataset.default_start);
  ASSERT_TRUE(plan.ok());
  EXPECT_LE(plan.value().TotalCredits(dataset.catalog),
            spec.time_budget + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SyntheticTripTest, ::testing::Range(1, 9));

// EDA and OMEGA never crash on any synthetic shape either.
class BaselineRobustnessTest : public ::testing::TestWithParam<int> {};

TEST_P(BaselineRobustnessTest, BaselinesHandleArbitraryShapes) {
  datagen::SyntheticSpec spec;
  spec.num_items = 25 + 5 * GetParam();
  spec.vocab_size = 40;
  spec.prereq_probability = 0.3;
  spec.seed = static_cast<std::uint64_t>(GetParam()) + 100;
  const datagen::Dataset dataset = datagen::GenerateSynthetic(spec);
  const model::TaskInstance instance = dataset.Instance();

  mdp::RewardWeights weights;
  const baselines::EdaGreedy eda(instance, weights);
  const model::Plan eda_plan = eda.BuildPlan(1);
  EXPECT_LE(eda_plan.size(), dataset.catalog.size());

  const baselines::Omega omega(instance);
  const model::Plan omega_plan = omega.BuildPlan(1);
  EXPECT_LE(omega_plan.size(), dataset.catalog.size());

  // Scoring handles every produced plan without issue.
  EXPECT_GE(core::ScorePlan(instance, eda_plan), 0.0);
  EXPECT_GE(core::ScorePlan(instance, omega_plan), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BaselineRobustnessTest,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace rlplanner

// Tests that the built-in datasets match the shapes the paper reports
// (Section IV-A1) and are internally consistent.

#include <gtest/gtest.h>

#include "datagen/course_data.h"
#include "datagen/synthetic.h"
#include "datagen/trip_data.h"

namespace rlplanner::datagen {
namespace {

void ExpectDatasetConsistent(const Dataset& dataset) {
  const model::TaskInstance instance = dataset.Instance();
  EXPECT_TRUE(instance.Validate().ok())
      << dataset.name << ": " << instance.Validate().ToString();
  EXPECT_GE(dataset.default_start, 0);
  EXPECT_LT(static_cast<std::size_t>(dataset.default_start),
            dataset.catalog.size());
  // Every item covers at least one topic (otherwise it can never earn r1).
  for (const model::Item& item : dataset.catalog.items()) {
    EXPECT_GE(item.topics.Count(), 1u)
        << dataset.name << " item " << item.code << " covers no topics";
  }
}

TEST(Univ1DsCtTest, PaperShape) {
  const Dataset dataset = MakeUniv1DsCt();
  EXPECT_EQ(dataset.catalog.size(), 31u);
  EXPECT_EQ(dataset.catalog.vocabulary_size(), 60u);
  EXPECT_EQ(dataset.hard.num_primary, 5);
  EXPECT_EQ(dataset.hard.num_secondary, 5);
  EXPECT_EQ(dataset.hard.gap, 3);
  EXPECT_DOUBLE_EQ(dataset.hard.min_credits, 30.0);
  ExpectDatasetConsistent(dataset);
}

TEST(Univ1DsCtTest, DefaultStartIsCs675) {
  const Dataset dataset = MakeUniv1DsCt();
  EXPECT_EQ(dataset.catalog.item(dataset.default_start).code, "CS 675");
  // The default start must have no prerequisites so plans starting there
  // can be valid.
  EXPECT_TRUE(dataset.catalog.item(dataset.default_start).prereqs.empty());
}

TEST(Univ1DsCtTest, KnownPrerequisites) {
  const Dataset dataset = MakeUniv1DsCt();
  const auto ml = dataset.catalog.FindByCode("CS 677");  // Deep Learning
  ASSERT_TRUE(ml.ok());
  const auto& prereqs = dataset.catalog.item(ml.value()).prereqs;
  // CS 677 = (CS 675) AND (a math/stats elective) — the paper's "take
  // Linear Algebra before Machine Learning" dependency.
  ASSERT_EQ(prereqs.groups().size(), 2u);
  EXPECT_EQ(dataset.catalog.item(prereqs.groups()[0][0]).code, "CS 675");
  EXPECT_EQ(dataset.catalog.item(prereqs.groups()[1][0]).code, "MATH 663");
}

TEST(Univ1DsCtTest, IdealTopicsIsFullVocabulary) {
  // Section IV-A3: |T_ideal| = 60 for DS-CT = the whole vocabulary.
  const Dataset dataset = MakeUniv1DsCt();
  EXPECT_EQ(dataset.soft.ideal_topics.Count(),
            dataset.catalog.vocabulary_size());
}

TEST(Univ1CyberTest, PaperShape) {
  const Dataset dataset = MakeUniv1Cybersecurity();
  EXPECT_EQ(dataset.catalog.size(), 30u);
  EXPECT_EQ(dataset.catalog.vocabulary_size(), 61u);
  ExpectDatasetConsistent(dataset);
}

TEST(Univ1CsTest, PaperShape) {
  const Dataset dataset = MakeUniv1Cs();
  EXPECT_EQ(dataset.catalog.size(), 32u);
  EXPECT_EQ(dataset.catalog.vocabulary_size(), 100u);
  ExpectDatasetConsistent(dataset);
}

TEST(Univ1TransferTest, SharedCoursesAcrossPrograms) {
  // DS-CT and CS must share course codes (Table V transfers between them).
  const Dataset ds = MakeUniv1DsCt();
  const Dataset cs = MakeUniv1Cs();
  int shared = 0;
  for (const model::Item& item : ds.catalog.items()) {
    if (cs.catalog.FindByCode(item.code).ok()) ++shared;
  }
  EXPECT_GE(shared, 10);
}

TEST(Univ2Test, PaperShape) {
  const Dataset dataset = MakeUniv2Ds();
  EXPECT_EQ(dataset.catalog.size(), 36u);
  EXPECT_EQ(dataset.catalog.vocabulary_size(), 73u);
  EXPECT_EQ(dataset.hard.num_primary, 9);
  EXPECT_EQ(dataset.hard.num_secondary, 6);
  EXPECT_EQ(dataset.hard.TotalItems(), 15);  // gold score 15 = H
  EXPECT_EQ(dataset.catalog.category_names().size(), 6u);
  EXPECT_EQ(dataset.hard.category_min_counts.size(), 6u);
  ExpectDatasetConsistent(dataset);
}

TEST(Univ2Test, SixSubDisciplinesPopulated) {
  const Dataset dataset = MakeUniv2Ds();
  for (int category = 0; category < 6; ++category) {
    EXPECT_GE(dataset.catalog.CountByCategory(category),
              dataset.hard.category_min_counts[category])
        << "category " << category;
  }
}

TEST(Univ2Test, DefaultStartIsStats263) {
  const Dataset dataset = MakeUniv2Ds();
  EXPECT_EQ(dataset.catalog.item(dataset.default_start).code, "STATS 263");
}

TEST(NycTest, PaperShape) {
  const Dataset dataset = MakeNycTrip();
  EXPECT_EQ(dataset.catalog.size(), 90u);
  EXPECT_EQ(dataset.catalog.vocabulary_size(), 21u);
  EXPECT_EQ(dataset.catalog.domain(), model::Domain::kTrip);
  EXPECT_DOUBLE_EQ(dataset.hard.min_credits, 6.0);
  EXPECT_DOUBLE_EQ(dataset.hard.distance_threshold_km, 5.0);
  EXPECT_TRUE(dataset.hard.no_consecutive_same_theme);
  ExpectDatasetConsistent(dataset);
}

TEST(ParisTest, PaperShape) {
  const Dataset dataset = MakeParisTrip();
  EXPECT_EQ(dataset.catalog.size(), 114u);
  EXPECT_EQ(dataset.catalog.vocabulary_size(), 16u);
  ExpectDatasetConsistent(dataset);
}

TEST(TripTest, PaperLandmarksPresent) {
  const Dataset nyc = MakeNycTrip();
  for (const char* name :
       {"battery park", "brooklyn bridge", "colonnade row",
        "flatiron building", "hudson river park", "rockefeller center"}) {
    EXPECT_TRUE(nyc.catalog.FindByCode(name).ok()) << name;
  }
  const Dataset paris = MakeParisTrip();
  for (const char* name :
       {"eiffel tower", "louvre museum", "pont neuf", "promenade plantee",
        "sainte chapelle", "tour montparnasse", "le cinq"}) {
    EXPECT_TRUE(paris.catalog.FindByCode(name).ok()) << name;
  }
}

TEST(TripTest, LouvreThemesMatchPaperExample) {
  // "The topic vector for Louvre Museum covers Museum, Art Gallery and
  // Architecture."
  const Dataset paris = MakeParisTrip();
  const auto id = paris.catalog.FindByCode("louvre museum");
  ASSERT_TRUE(id.ok());
  const model::Item& louvre = paris.catalog.item(id.value());
  EXPECT_TRUE(louvre.topics.Test(paris.catalog.TopicId("museum")));
  EXPECT_TRUE(louvre.topics.Test(paris.catalog.TopicId("art gallery")));
  EXPECT_TRUE(louvre.topics.Test(paris.catalog.TopicId("architecture")));
  EXPECT_EQ(louvre.type, model::ItemType::kPrimary);
}

TEST(TripTest, PopularityWithinScale) {
  for (const Dataset& dataset : {MakeNycTrip(), MakeParisTrip()}) {
    int fives = 0;
    for (const model::Item& item : dataset.catalog.items()) {
      EXPECT_GE(item.popularity, 1.0);
      EXPECT_LE(item.popularity, 5.0);
      if (item.popularity == 5.0) ++fives;
    }
    // The gold standard needs enough popularity-5 POIs to average 5.
    EXPECT_GE(fives, 10) << dataset.name;
  }
}

TEST(TripTest, SomeRestaurantsHaveMuseumAntecedents) {
  const Dataset paris = MakeParisTrip();
  int with_prereqs = 0;
  for (const model::Item& item : paris.catalog.items()) {
    if (!item.prereqs.empty()) ++with_prereqs;
  }
  EXPECT_GE(with_prereqs, 3);
}

TEST(ToyTest, MatchesTableII) {
  const Dataset toy = MakeTableIIToy();
  EXPECT_EQ(toy.catalog.size(), 6u);
  EXPECT_EQ(toy.catalog.vocabulary_size(), 13u);
  // m2 = Data Mining covers Classification and Clustering.
  const model::Item& m2 = toy.catalog.item(1);
  EXPECT_EQ(m2.name, "Data Mining");
  EXPECT_EQ(m2.topics.ToString(), "0110000000000");
  // m6 requires Linear Algebra AND Data Mining.
  const model::Item& m6 = toy.catalog.item(5);
  EXPECT_EQ(m6.prereqs.groups().size(), 2u);
  ExpectDatasetConsistent(toy);
}

TEST(SyntheticTest, RespectsSpec) {
  SyntheticSpec spec;
  spec.num_items = 50;
  spec.vocab_size = 30;
  spec.seed = 9;
  const Dataset dataset = GenerateSynthetic(spec);
  EXPECT_EQ(dataset.catalog.size(), 50u);
  EXPECT_EQ(dataset.catalog.vocabulary_size(), 30u);
  ExpectDatasetConsistent(dataset);
}

TEST(SyntheticTest, DeterministicForSameSeed) {
  SyntheticSpec spec;
  spec.seed = 123;
  const Dataset a = GenerateSynthetic(spec);
  const Dataset b = GenerateSynthetic(spec);
  ASSERT_EQ(a.catalog.size(), b.catalog.size());
  for (std::size_t i = 0; i < a.catalog.size(); ++i) {
    EXPECT_EQ(a.catalog.item(i).code, b.catalog.item(i).code);
    EXPECT_EQ(a.catalog.item(i).topics.ToString(),
              b.catalog.item(i).topics.ToString());
  }
}

TEST(SyntheticTest, PrereqsAreAcyclic) {
  SyntheticSpec spec;
  spec.num_items = 80;
  spec.prereq_probability = 0.5;
  spec.seed = 77;
  const Dataset dataset = GenerateSynthetic(spec);
  for (const model::Item& item : dataset.catalog.items()) {
    for (model::ItemId pre : item.prereqs.ReferencedItems()) {
      EXPECT_LT(pre, item.id);  // only references earlier items
    }
  }
}

TEST(SyntheticTest, TripDomainGetsDurations) {
  SyntheticSpec spec;
  spec.domain = model::Domain::kTrip;
  spec.num_items = 40;
  const Dataset dataset = GenerateSynthetic(spec);
  for (const model::Item& item : dataset.catalog.items()) {
    EXPECT_GE(item.credits, 0.5);
    EXPECT_LE(item.credits, 2.0);
  }
}

TEST(Univ1DsCtTest, ExactlyFiveCoresAllRequired) {
  // The synthetic program design: as many cores as the degree requires,
  // so greedy planners must schedule every core's antecedents (see
  // DESIGN.md "synthetic-data design choices").
  const Dataset dataset = MakeUniv1DsCt();
  EXPECT_EQ(dataset.catalog.CountByType(model::ItemType::kPrimary),
            dataset.hard.num_primary);
}

TEST(Univ1DsCtTest, DeepLearningNeedsAMathElective) {
  const Dataset dataset = MakeUniv1DsCt();
  const auto dl = dataset.catalog.FindByCode("CS 677").value();
  const auto& groups = dataset.catalog.item(dl).prereqs.groups();
  ASSERT_EQ(groups.size(), 2u);
  // The second group is an OR over electives only.
  for (model::ItemId member : groups[1]) {
    EXPECT_EQ(dataset.catalog.item(member).type,
              model::ItemType::kSecondary)
        << dataset.catalog.item(member).code;
  }
  EXPECT_GE(groups[1].size(), 3u);
}

TEST(CourseDataTest, AllProgramsUseUniformThreeCreditCourses) {
  for (const Dataset& dataset :
       {MakeUniv1DsCt(), MakeUniv1Cybersecurity(), MakeUniv1Cs(),
        MakeUniv2Ds()}) {
    for (const model::Item& item : dataset.catalog.items()) {
      EXPECT_DOUBLE_EQ(item.credits, 3.0) << item.code;
    }
    // Horizon implied by the credit requirement matches the split.
    EXPECT_EQ(dataset.hard.HorizonForUniformCredits(3.0),
              dataset.hard.TotalItems())
        << dataset.name;
  }
}

TEST(TripDataTest, PoiCoordinatesNearCityCenter) {
  struct City {
    Dataset dataset;
    double lat;
    double lng;
  };
  for (const City& city : {City{MakeNycTrip(), 40.7589, -73.9851},
                           City{MakeParisTrip(), 48.8606, 2.3376}}) {
    for (const model::Item& poi : city.dataset.catalog.items()) {
      EXPECT_NEAR(poi.location.lat, city.lat, 0.15) << poi.code;
      EXPECT_NEAR(poi.location.lng, city.lng, 0.2) << poi.code;
    }
  }
}

TEST(TripDataTest, VisitDurationsPlausible) {
  for (const Dataset& dataset : {MakeNycTrip(), MakeParisTrip()}) {
    for (const model::Item& poi : dataset.catalog.items()) {
      EXPECT_GE(poi.credits, 0.5) << poi.code;
      EXPECT_LE(poi.credits, 2.5) << poi.code;
    }
  }
}

TEST(TripDataTest, PrimaryThemeIsASetTopic) {
  for (const Dataset& dataset : {MakeNycTrip(), MakeParisTrip()}) {
    for (const model::Item& poi : dataset.catalog.items()) {
      ASSERT_GE(poi.primary_theme, 0) << poi.code;
      EXPECT_TRUE(poi.topics.Test(
          static_cast<std::size_t>(poi.primary_theme)))
          << poi.code;
    }
  }
}

TEST(TemplateShapeTest, AllDatasetsHaveThreeTemplatesMatchingSplit) {
  for (const Dataset& dataset :
       {MakeUniv1DsCt(), MakeUniv1Cybersecurity(), MakeUniv1Cs(),
        MakeUniv2Ds(), MakeNycTrip(), MakeParisTrip()}) {
    EXPECT_EQ(dataset.soft.interleaving.size(), 3u) << dataset.name;
    EXPECT_TRUE(dataset.soft.interleaving
                    .ValidateCounts(dataset.hard.num_primary,
                                    dataset.hard.num_secondary)
                    .ok())
        << dataset.name;
  }
}

}  // namespace
}  // namespace rlplanner::datagen

// Tests for the MDP layer: episode state, reward components r1/r2/theta and
// the full Eq. 2 reward — including the paper's Section III-B worked
// examples on the Table II toy catalog.

#include <gtest/gtest.h>

#include "datagen/course_data.h"
#include "datagen/trip_data.h"
#include "mdp/episode_state.h"
#include "mdp/reward.h"

namespace rlplanner::mdp {
namespace {

class ToyRewardTest : public ::testing::Test {
 protected:
  ToyRewardTest()
      : dataset_(datagen::MakeTableIIToy()),
        instance_(dataset_.Instance()) {
    weights_.epsilon = 1.0;  // Example 1: absolute threshold of 1 topic
    weights_.delta = 0.8;
    weights_.beta = 0.2;
    weights_.category_weights = {0.6, 0.4};
  }

  model::ItemId Id(const char* code) {
    return dataset_.catalog.FindByCode(code).value();
  }

  datagen::Dataset dataset_;
  model::TaskInstance instance_;
  RewardWeights weights_;
};

TEST_F(ToyRewardTest, EpisodeStateTracksEverything) {
  EpisodeState state(instance_);
  EXPECT_TRUE(state.Empty());
  EXPECT_EQ(state.CurrentItem(), -1);
  state.Add(Id("m1"));
  state.Add(Id("m2"));
  EXPECT_EQ(state.Length(), 2u);
  EXPECT_EQ(state.CurrentItem(), Id("m2"));
  EXPECT_TRUE(state.Contains(Id("m1")));
  EXPECT_FALSE(state.Contains(Id("m3")));
  EXPECT_EQ(state.primary_count(), 1);
  EXPECT_EQ(state.secondary_count(), 1);
  EXPECT_DOUBLE_EQ(state.total_credits(), 6.0);
  // m1 covers algorithms+data structure, m2 classification+clustering.
  EXPECT_EQ(state.covered_topics().Count(), 4u);
  EXPECT_EQ(state.position_of()[Id("m1")], 0);
  EXPECT_EQ(state.ToPlan().size(), 2u);
}

TEST_F(ToyRewardTest, ChosenItemsBitsetTracksPositionOf) {
  // chosen_items() is the word-level mirror of position_of(); candidate
  // scans seed from its complement, so the two must stay in lockstep.
  EpisodeState state(instance_);
  EXPECT_EQ(state.chosen_items().size(), instance_.catalog->size());
  EXPECT_EQ(state.chosen_items().Count(), 0u);
  state.Add(Id("m1"));
  state.Add(Id("m3"));
  EXPECT_EQ(state.chosen_items().Count(), 2u);
  for (std::size_t i = 0; i < instance_.catalog->size(); ++i) {
    EXPECT_EQ(state.chosen_items().Test(i),
              state.position_of()[i] >= 0)
        << "item " << i;
  }
}

TEST_F(ToyRewardTest, PaperTopicCoverageExample) {
  // Paper: with epsilon=1 and T_ideal from Example 1, s2(m2)->s4(m4) has
  // r1=1 but s2(m2)->s5(m5) has r1=0 (Big Data adds no ideal topic).
  const RewardFunction reward(instance_, weights_);
  EpisodeState state(instance_);
  state.Add(Id("m2"));
  EXPECT_EQ(reward.TopicCoverageReward(state, Id("m4")), 1);
  EXPECT_EQ(reward.TopicCoverageReward(state, Id("m5")), 0);
}

TEST_F(ToyRewardTest, TopicRewardCountsOnlyNewIdealTopics) {
  const RewardFunction reward(instance_, weights_);
  EpisodeState state(instance_);
  state.Add(Id("m2"));  // already covers classification+clustering
  state.Add(Id("m4"));  // linear system, matrix decomposition
  // m6 covers classification, clustering, regression, neural network: only
  // neural network is a *new* ideal topic -> still >= 1.
  EXPECT_EQ(reward.TopicCoverageReward(state, Id("m6")), 1);
}

TEST_F(ToyRewardTest, PrerequisiteRewardOrGroup) {
  // m5 requires (m2 OR m3) with gap 1.
  const RewardFunction reward(instance_, weights_);
  EpisodeState with_m2(instance_);
  with_m2.Add(Id("m2"));
  EXPECT_EQ(reward.PrerequisiteReward(with_m2, Id("m5")), 1);

  EpisodeState with_m3(instance_);
  with_m3.Add(Id("m3"));
  EXPECT_EQ(reward.PrerequisiteReward(with_m3, Id("m5")), 1);

  EpisodeState with_neither(instance_);
  with_neither.Add(Id("m1"));
  EXPECT_EQ(reward.PrerequisiteReward(with_neither, Id("m5")), 0);
}

TEST_F(ToyRewardTest, PrerequisiteRewardAndGroup) {
  // m6 requires m4 AND m2.
  const RewardFunction reward(instance_, weights_);
  EpisodeState both(instance_);
  both.Add(Id("m4"));
  both.Add(Id("m2"));
  EXPECT_EQ(reward.PrerequisiteReward(both, Id("m6")), 1);

  EpisodeState only_one(instance_);
  only_one.Add(Id("m4"));
  EXPECT_EQ(reward.PrerequisiteReward(only_one, Id("m6")), 0);
}

TEST_F(ToyRewardTest, ThetaIsProductOfR1AndR2) {
  const RewardFunction reward(instance_, weights_);
  EpisodeState state(instance_);
  state.Add(Id("m2"));
  // m5: r2=1 (m2 present) but r1=0 -> theta 0.
  EXPECT_EQ(reward.Theta(state, Id("m5")), 0);
  // m4: r1=1, no prereqs -> theta 1.
  EXPECT_EQ(reward.Theta(state, Id("m4")), 1);
}

TEST_F(ToyRewardTest, RewardZeroWhenThetaZero) {
  const RewardFunction reward(instance_, weights_);
  EpisodeState state(instance_);
  state.Add(Id("m2"));
  EXPECT_DOUBLE_EQ(reward.Reward(state, Id("m5")), 0.0);
}

TEST_F(ToyRewardTest, RewardCombinesSimilarityAndTypeWeight) {
  const RewardFunction reward(instance_, weights_);
  EpisodeState state(instance_);
  state.Add(Id("m1"));  // primary
  // Adding m2 (secondary): extended sequence PS.
  const double sim = reward.InterleavingSimilarity(state, Id("m2"));
  const double expected = weights_.delta * sim + weights_.beta * 0.4;
  EXPECT_DOUBLE_EQ(reward.Reward(state, Id("m2")), expected);
  EXPECT_DOUBLE_EQ(reward.TypeWeight(Id("m1")), 0.6);
  EXPECT_DOUBLE_EQ(reward.TypeWeight(Id("m2")), 0.4);
}

TEST_F(ToyRewardTest, FeasibilityBlocksRepeats) {
  const RewardFunction reward(instance_, weights_);
  EpisodeState state(instance_);
  state.Add(Id("m1"));
  EXPECT_FALSE(reward.IsFeasible(state, Id("m1")));
  EXPECT_TRUE(reward.IsFeasible(state, Id("m2")));
}

TEST(RewardWeightsTest, ValidateSimplexConditions) {
  RewardWeights ok;
  EXPECT_TRUE(ok.Validate().ok());

  RewardWeights bad_sum = ok;
  bad_sum.delta = 0.9;  // delta+beta != 1
  EXPECT_FALSE(bad_sum.Validate().ok());

  RewardWeights bad_weights = ok;
  bad_weights.category_weights = {0.9, 0.9};
  EXPECT_FALSE(bad_weights.Validate().ok());

  RewardWeights negative = ok;
  negative.epsilon = -0.1;
  EXPECT_FALSE(negative.Validate().ok());

  RewardWeights empty = ok;
  empty.category_weights.clear();
  EXPECT_FALSE(empty.Validate().ok());
}

TEST(RewardEpsilonTest, FractionalEpsilonScalesWithVocabulary) {
  // Univ-1 style: |T| = 60, epsilon = 0.0025 -> ceil(0.15) = 1 topic;
  // epsilon = 0.02 -> ceil(1.2) = 2 topics.
  datagen::Dataset dataset = datagen::MakeUniv1DsCt();
  const model::TaskInstance instance = dataset.Instance();
  RewardWeights weights;
  weights.epsilon = 0.0025;
  const RewardFunction one(instance, weights);
  EXPECT_EQ(one.RequiredNewIdealTopics(), 1u);
  RewardWeights weights2 = weights;
  weights2.epsilon = 0.02;
  const RewardFunction two(instance, weights2);
  EXPECT_EQ(two.RequiredNewIdealTopics(), 2u);
  RewardWeights weights3 = weights;
  weights3.epsilon = 3.0;  // absolute when >= 1
  const RewardFunction three(instance, weights3);
  EXPECT_EQ(three.RequiredNewIdealTopics(), 3u);
}

TEST(TripRewardTest, TimeBudgetGatesFeasibility) {
  datagen::Dataset dataset = datagen::MakeNycTrip();
  const model::TaskInstance instance = dataset.Instance();
  RewardWeights weights;
  const RewardFunction reward(instance, weights);
  EpisodeState state(instance);
  // Fill the 6-hour budget.
  double used = 0.0;
  for (const model::Item& item : dataset.catalog.items()) {
    if (used + item.credits > 5.0) continue;
    if (state.Contains(item.id)) continue;
    state.Add(item.id);
    used += item.credits;
    if (used > 4.5) break;
  }
  // Any POI longer than the remaining budget must be infeasible.
  for (const model::Item& item : dataset.catalog.items()) {
    if (state.Contains(item.id)) continue;
    if (state.total_credits() + item.credits > 6.0 + 1e-9) {
      EXPECT_FALSE(reward.IsFeasible(state, item.id));
    }
  }
}

TEST(TripRewardTest, ConsecutiveSameThemeBlocksR2) {
  datagen::Dataset dataset = datagen::MakeNycTrip();
  const model::TaskInstance instance = dataset.Instance();
  RewardWeights weights;
  const RewardFunction reward(instance, weights);

  // Find two POIs sharing a primary theme and no prerequisites.
  model::ItemId first = -1;
  model::ItemId second = -1;
  for (const model::Item& a : dataset.catalog.items()) {
    if (!a.prereqs.empty() || a.primary_theme < 0) continue;
    for (const model::Item& b : dataset.catalog.items()) {
      if (a.id == b.id || !b.prereqs.empty()) continue;
      if (a.primary_theme == b.primary_theme) {
        first = a.id;
        second = b.id;
        break;
      }
    }
    if (first >= 0) break;
  }
  ASSERT_GE(first, 0);
  EpisodeState state(instance);
  state.Add(first);
  EXPECT_EQ(reward.PrerequisiteReward(state, second), 0);
}

TEST_F(ToyRewardTest, DeltaBetaExtremesIsolateTerms) {
  // delta=1: reward equals the similarity term; beta=1: reward equals the
  // type weight (when theta=1).
  mdp::RewardWeights only_similarity = weights_;
  only_similarity.delta = 1.0;
  only_similarity.beta = 0.0;
  const RewardFunction sim_reward(instance_, only_similarity);
  EpisodeState state(instance_);
  state.Add(Id("m1"));
  EXPECT_DOUBLE_EQ(sim_reward.Reward(state, Id("m2")),
                   sim_reward.InterleavingSimilarity(state, Id("m2")));

  mdp::RewardWeights only_type = weights_;
  only_type.delta = 0.0;
  only_type.beta = 1.0;
  const RewardFunction type_reward(instance_, only_type);
  EXPECT_DOUBLE_EQ(type_reward.Reward(state, Id("m2")), 0.4);
  // A theta-positive primary: enable m6 (needs m4 AND m2; adds the ideal
  // topic "neural network").
  EpisodeState enabled(instance_);
  enabled.Add(Id("m4"));
  enabled.Add(Id("m2"));
  EXPECT_DOUBLE_EQ(type_reward.Reward(enabled, Id("m6")), 0.6);
}

TEST_F(ToyRewardTest, MinSimilarityModeUsedInReward) {
  mdp::RewardWeights min_weights = weights_;
  min_weights.similarity = SimilarityMode::kMinimum;
  const RewardFunction min_reward(instance_, min_weights);
  const RewardFunction avg_reward(instance_, weights_);
  EpisodeState state(instance_);
  state.Add(Id("m1"));
  EXPECT_LE(min_reward.InterleavingSimilarity(state, Id("m2")),
            avg_reward.InterleavingSimilarity(state, Id("m2")) + 1e-12);
}

TEST(Univ2RewardTest, SixCategoryWeightsApply) {
  datagen::Dataset dataset = datagen::MakeUniv2Ds();
  const model::TaskInstance instance = dataset.Instance();
  mdp::RewardWeights weights;
  weights.category_weights = {0.25, 0.01, 0.15, 0.42, 0.01, 0.16};
  const RewardFunction reward(instance, weights);
  // CS 229 is category 3 (applied ML), STATS 390 category 4 (practical).
  const auto cs229 = dataset.catalog.FindByCode("CS 229").value();
  const auto stats390 = dataset.catalog.FindByCode("STATS 390").value();
  EXPECT_DOUBLE_EQ(reward.TypeWeight(cs229), 0.42);
  EXPECT_DOUBLE_EQ(reward.TypeWeight(stats390), 0.01);
  // Out-of-range categories get weight 0 rather than UB.
  mdp::RewardWeights two_weights;
  const RewardFunction short_reward(instance, two_weights);
  EXPECT_DOUBLE_EQ(short_reward.TypeWeight(cs229), 0.0);
}

TEST_F(ToyRewardTest, ThetaShortCircuitsPrereqCheck) {
  // When r1 = 0 the theta product is 0 regardless of r2; exercised by an
  // item whose topics are fully covered AND whose prereqs are unmet.
  const RewardFunction reward(instance_, weights_);
  EpisodeState state(instance_);
  state.Add(Id("m2"));  // covers classification+clustering
  state.Add(Id("m4"));  // linear system etc.
  // m5: adds no new ideal topic (r1=0) and its r2 is satisfied (m2 there).
  EXPECT_EQ(reward.Theta(state, Id("m5")), 0);
}

TEST(EpisodeStateTest, CategoryCountsTracked) {
  datagen::Dataset dataset = datagen::MakeUniv2Ds();
  const model::TaskInstance instance = dataset.Instance();
  EpisodeState state(instance);
  const model::Item& first = dataset.catalog.item(0);
  state.Add(first.id);
  EXPECT_EQ(state.CategoryCount(first.category), 1);
  EXPECT_EQ(state.CategoryCount(99), 0);
}

}  // namespace
}  // namespace rlplanner::mdp

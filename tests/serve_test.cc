// Tests for the serving layer: snapshot round-tripping (bit-exact),
// corruption/fingerprint rejection, registry hot-swap semantics under
// concurrency, admission control, deadlines, and the stats block.
//
// The concurrency tests here are the ones tools/check.sh runs under
// ThreadSanitizer (RLPLANNER_SANITIZE=thread).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/config.h"
#include "core/planner.h"
#include "datagen/course_data.h"
#include "mdp/q_table.h"
#include "obs/debugz.h"
#include "obs/profiler.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "serve/plan_service.h"
#include "serve/policy_registry.h"
#include "serve/policy_snapshot.h"
#include "serve/stats.h"
#include "util/status.h"

namespace rlplanner::serve {
namespace {

using datagen::Dataset;

core::PlannerConfig ToyConfig(const Dataset& dataset, std::uint64_t seed = 17,
                              int episodes = 60) {
  core::PlannerConfig config = core::DefaultUniv1Config();
  config.sarsa.num_episodes = episodes;
  config.sarsa.start_item = dataset.default_start;
  config.seed = seed;
  return config;
}

// A quickly trained planner on the Table II toy program (6 items).
std::unique_ptr<core::RlPlanner> MakeTrainedPlanner(
    const Dataset& dataset, const model::TaskInstance& instance,
    std::uint64_t seed = 17) {
  auto planner =
      std::make_unique<core::RlPlanner>(instance, ToyConfig(dataset, seed));
  EXPECT_TRUE(planner->Train().ok());
  return planner;
}

TEST(PolicySnapshotTest, RoundTripIsBitExact) {
  const Dataset dataset = datagen::MakeTableIIToy();
  const model::TaskInstance instance = dataset.Instance();
  const auto planner = MakeTrainedPlanner(dataset, instance);

  auto snapshot = MakeSnapshot(*planner);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  const std::string bytes = snapshot.value().Serialize();
  auto restored = PolicySnapshot::Deserialize(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  // Bit-exact table, exact provenance.
  EXPECT_TRUE(restored.value().table == planner->q_table());
  EXPECT_EQ(restored.value().catalog_fingerprint,
            CatalogFingerprint(dataset.catalog));
  EXPECT_EQ(restored.value().seed, planner->config().seed);
  EXPECT_EQ(restored.value().provenance.num_episodes,
            planner->config().sarsa.num_episodes);
  EXPECT_EQ(restored.value().provenance.alpha, planner->config().sarsa.alpha);
  EXPECT_EQ(restored.value().provenance.gamma, planner->config().sarsa.gamma);

  // Greedy rollout from the restored policy is byte-identical to the
  // in-memory policy's rollout.
  core::RlPlanner loaded(instance, ToyConfig(dataset));
  ASSERT_TRUE(loaded.AdoptPolicy(restored.value().table).ok());
  auto original = planner->Recommend(dataset.default_start);
  auto roundtrip = loaded.Recommend(dataset.default_start);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(roundtrip.ok());
  EXPECT_TRUE(original.value() == roundtrip.value());
}

TEST(PolicySnapshotTest, FileRoundTrip) {
  const Dataset dataset = datagen::MakeTableIIToy();
  const model::TaskInstance instance = dataset.Instance();
  const auto planner = MakeTrainedPlanner(dataset, instance);
  auto snapshot = MakeSnapshot(*planner);
  ASSERT_TRUE(snapshot.ok());

  const std::string path = testing::TempDir() + "/toy_policy.snap";
  ASSERT_TRUE(snapshot.value().SaveToFile(path).ok());
  auto loaded = PolicySnapshot::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded.value().table == planner->q_table());
}

TEST(PolicySnapshotTest, RejectsCorruptedPayload) {
  const Dataset dataset = datagen::MakeTableIIToy();
  const model::TaskInstance instance = dataset.Instance();
  const auto planner = MakeTrainedPlanner(dataset, instance);
  auto snapshot = MakeSnapshot(*planner);
  ASSERT_TRUE(snapshot.ok());
  const std::string bytes = snapshot.value().Serialize();

  // Flip one payload byte: the checksum must catch it.
  std::string corrupted = bytes;
  corrupted[bytes.size() / 2] =
      static_cast<char>(corrupted[bytes.size() / 2] ^ 0x40);
  auto result = PolicySnapshot::Deserialize(corrupted);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("checksum"), std::string::npos);

  // Truncation is also rejected.
  auto truncated =
      PolicySnapshot::Deserialize(bytes.substr(0, bytes.size() - 9));
  EXPECT_FALSE(truncated.ok());

  // Bad magic is rejected with a descriptive message.
  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  auto magic_result = PolicySnapshot::Deserialize(bad_magic);
  ASSERT_FALSE(magic_result.ok());
  EXPECT_NE(magic_result.status().message().find("magic"), std::string::npos);
}

TEST(PolicySnapshotTest, MakeSnapshotRequiresTrainedPlanner) {
  const Dataset dataset = datagen::MakeTableIIToy();
  const model::TaskInstance instance = dataset.Instance();
  core::RlPlanner planner(instance, ToyConfig(dataset));
  auto snapshot = MakeSnapshot(planner);
  ASSERT_FALSE(snapshot.ok());
  EXPECT_EQ(snapshot.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST(CatalogFingerprintTest, SensitiveToCatalogContent) {
  const Dataset toy = datagen::MakeTableIIToy();
  const Dataset univ1 = datagen::MakeUniv1DsCt();
  EXPECT_NE(CatalogFingerprint(toy.catalog),
            CatalogFingerprint(univ1.catalog));
  // Deterministic across calls.
  EXPECT_EQ(CatalogFingerprint(toy.catalog), CatalogFingerprint(toy.catalog));
}

TEST(PolicyRegistryTest, InstallValidatesFingerprintAndDimension) {
  const Dataset toy = datagen::MakeTableIIToy();
  const model::TaskInstance instance = toy.Instance();
  const auto planner = MakeTrainedPlanner(toy, instance);
  auto snapshot = MakeSnapshot(*planner);
  ASSERT_TRUE(snapshot.ok());

  PolicyRegistry registry(CatalogFingerprint(toy.catalog), toy.catalog.size());
  auto installed = registry.InstallSnapshot("default", snapshot.value());
  ASSERT_TRUE(installed.ok()) << installed.status().ToString();
  EXPECT_EQ(installed.value(), 1u);

  // A snapshot with a drifted fingerprint is refused.
  PolicySnapshot drifted = snapshot.value();
  drifted.catalog_fingerprint ^= 1;
  auto refused = registry.InstallSnapshot("default", drifted);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), util::StatusCode::kFailedPrecondition);
  EXPECT_NE(refused.status().message().find("fingerprint"), std::string::npos);

  // A wrong-dimension table is refused.
  auto wrong_dim = registry.Install("default", mdp::QTable(3), {});
  ASSERT_FALSE(wrong_dim.ok());
  EXPECT_EQ(wrong_dim.status().code(), util::StatusCode::kInvalidArgument);

  // The refused installs left the slot intact at version 1.
  auto current = registry.Current("default");
  ASSERT_NE(current, nullptr);
  EXPECT_EQ(current->version, 1u);
}

TEST(PolicyRegistryTest, HotSwapPreservesOldPolicyForHolders) {
  const Dataset toy = datagen::MakeTableIIToy();
  PolicyRegistry registry(CatalogFingerprint(toy.catalog), toy.catalog.size());

  mdp::QTable a(toy.catalog.size());
  a.Set(0, 1, 1.0);
  mdp::QTable b(toy.catalog.size());
  b.Set(0, 2, 2.0);
  ASSERT_TRUE(registry.Install("default", a, {}).ok());
  auto held = registry.Current("default");
  ASSERT_TRUE(registry.Install("default", b, {}).ok());

  // The holder still sees version 1 / table a; new readers see version 2.
  EXPECT_EQ(held->version, 1u);
  ASSERT_TRUE(held->dense.has_value());
  EXPECT_TRUE(*held->dense == a);
  auto fresh = registry.Current("default");
  EXPECT_EQ(fresh->version, 2u);
  ASSERT_TRUE(fresh->dense.has_value());
  EXPECT_TRUE(*fresh->dense == b);
  EXPECT_EQ(registry.install_count(), 2u);
  EXPECT_EQ(registry.Current("missing"), nullptr);
}

// --- Canary pipeline ------------------------------------------------------

// Two distinguishable single-entry tables for canary tests.
struct CanaryFixture {
  Dataset dataset = datagen::MakeTableIIToy();
  PolicyRegistry registry{CatalogFingerprint(dataset.catalog),
                          dataset.catalog.size()};
  mdp::QTable a{dataset.catalog.size()};
  mdp::QTable b{dataset.catalog.size()};
  mdp::QTable c{dataset.catalog.size()};

  CanaryFixture() {
    a.Set(0, 1, 1.0);
    b.Set(0, 2, 2.0);
    c.Set(0, 3, 3.0);
  }
};

TEST(PolicyRegistryCanaryTest, RouteSplitsTrafficByPermilleAndIsSticky) {
  CanaryFixture fix;
  ASSERT_TRUE(fix.registry.Install("default", fix.a, {}).ok());
  auto staged = fix.registry.InstallCanary("default", fix.b, 250, {});
  ASSERT_TRUE(staged.ok());
  EXPECT_EQ(staged.value(), 2u);

  // Current() keeps answering the incumbent while the canary is staged.
  EXPECT_EQ(fix.registry.Current("default")->version, 1u);
  ASSERT_NE(fix.registry.Canary("default"), nullptr);
  EXPECT_EQ(fix.registry.Canary("default")->version, 2u);

  // Route() agrees with RouteBucket key by key — sticky assignment by
  // construction — and both sides of the split actually receive traffic.
  std::uint64_t canary_hits = 0;
  for (std::uint64_t key = 1; key <= 2000; ++key) {
    const auto routed = fix.registry.Route("default", key);
    ASSERT_NE(routed, nullptr);
    const bool expect_canary = PolicyRegistry::RouteBucket(key) < 250;
    EXPECT_EQ(routed->version, expect_canary ? 2u : 1u) << "key " << key;
    canary_hits += expect_canary ? 1 : 0;
    EXPECT_EQ(fix.registry.Route("default", key)->version, routed->version);
  }
  EXPECT_GT(canary_hits, 0u);
  EXPECT_LT(canary_hits, 2000u);
  // A 250/1000 split over SplitMix64-mixed buckets lands near a quarter.
  EXPECT_NEAR(static_cast<double>(canary_hits) / 2000.0, 0.25, 0.05);
}

TEST(PolicyRegistryCanaryTest, PermilleExtremesRouteEverythingOneWay) {
  CanaryFixture fix;
  ASSERT_TRUE(fix.registry.Install("none", fix.a, {}).ok());
  ASSERT_TRUE(fix.registry.Install("all", fix.a, {}).ok());
  ASSERT_TRUE(fix.registry.InstallCanary("none", fix.b, 0, {}).ok());
  ASSERT_TRUE(fix.registry.InstallCanary("all", fix.b, 1000, {}).ok());
  const std::uint64_t none_incumbent = fix.registry.Current("none")->version;
  const std::uint64_t all_canary = fix.registry.Canary("all")->version;
  for (std::uint64_t key = 1; key <= 500; ++key) {
    EXPECT_EQ(fix.registry.Route("none", key)->version, none_incumbent);
    EXPECT_EQ(fix.registry.Route("all", key)->version, all_canary);
  }
}

TEST(PolicyRegistryCanaryTest, RouteBucketIsDeterministicAndInRange) {
  std::uint64_t low = 0;
  for (std::uint64_t key = 0; key < 1000; ++key) {
    const std::uint32_t bucket = PolicyRegistry::RouteBucket(key);
    EXPECT_LT(bucket, 1000u);
    EXPECT_EQ(bucket, PolicyRegistry::RouteBucket(key));
    low += bucket < 500 ? 1 : 0;
  }
  // SplitMix64 mixing spreads sequential keys across the bucket space.
  EXPECT_GT(low, 350u);
  EXPECT_LT(low, 650u);
}

TEST(PolicyRegistryCanaryTest, CanaryRequiresAnIncumbent) {
  CanaryFixture fix;
  auto refused = fix.registry.InstallCanary("empty", fix.b, 200, {});
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), util::StatusCode::kFailedPrecondition);
  EXPECT_EQ(fix.registry.Current("empty"), nullptr);
  EXPECT_EQ(fix.registry.install_count(), 0u);
}

TEST(PolicyRegistryCanaryTest, CanarySnapshotValidatesFingerprint) {
  CanaryFixture fix;
  ASSERT_TRUE(fix.registry.Install("default", fix.a, {}).ok());
  PolicySnapshot snapshot;
  snapshot.catalog_fingerprint = fix.registry.catalog_fingerprint() ^ 1;
  snapshot.table = fix.b;
  auto refused = fix.registry.InstallCanarySnapshot("default", snapshot, 200);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), util::StatusCode::kFailedPrecondition);
  EXPECT_EQ(fix.registry.Canary("default"), nullptr);
}

TEST(PolicyRegistryCanaryTest, PromoteKeepsVersionAndRetainsPrevious) {
  CanaryFixture fix;
  ASSERT_TRUE(fix.registry.Install("default", fix.a, {}).ok());
  auto staged = fix.registry.InstallCanary("default", fix.b, 200, {});
  ASSERT_TRUE(staged.ok());
  ASSERT_TRUE(fix.registry.PromoteCanary("default").ok());

  // The canary became the incumbent under the version it was installed
  // with; the old incumbent is retained for Rollback.
  auto current = fix.registry.Current("default");
  ASSERT_NE(current, nullptr);
  EXPECT_EQ(current->version, staged.value());
  ASSERT_TRUE(current->dense.has_value());
  EXPECT_TRUE(*current->dense == fix.b);
  EXPECT_EQ(fix.registry.Canary("default"), nullptr);
  auto info = fix.registry.Info("default");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->incumbent_version, 2u);
  EXPECT_EQ(info->canary_version, 0u);
  EXPECT_EQ(info->previous_version, 1u);
  // Promotion reuses the staged policy: no new install.
  EXPECT_EQ(fix.registry.install_count(), 2u);

  // With no canary staged, promotion has nothing to act on.
  const util::Status refused = fix.registry.PromoteCanary("default");
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), util::StatusCode::kFailedPrecondition);
}

TEST(PolicyRegistryCanaryTest, RollbackDropsStagedCanary) {
  CanaryFixture fix;
  ASSERT_TRUE(fix.registry.Install("default", fix.a, {}).ok());
  ASSERT_TRUE(fix.registry.InstallCanary("default", fix.b, 200, {}).ok());
  ASSERT_TRUE(fix.registry.Rollback("default").ok());
  EXPECT_EQ(fix.registry.Canary("default"), nullptr);
  EXPECT_EQ(fix.registry.Current("default")->version, 1u);
  for (std::uint64_t key = 1; key <= 100; ++key) {
    EXPECT_EQ(fix.registry.Route("default", key)->version, 1u);
  }
}

TEST(PolicyRegistryCanaryTest, RollbackRestoresExactPreviousObject) {
  CanaryFixture fix;
  ASSERT_TRUE(fix.registry.Install("default", fix.a, {}).ok());
  const auto original = fix.registry.Current("default");
  ASSERT_TRUE(fix.registry.Install("default", fix.b, {}).ok());
  ASSERT_TRUE(fix.registry.Rollback("default").ok());

  // The same ServablePolicy object, original version number included — not
  // a re-publication.
  const auto restored = fix.registry.Current("default");
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored.get(), original.get());
  EXPECT_EQ(restored->version, 1u);
  // The restore consumed the retained previous: a second rollback has
  // nothing left to restore.
  const util::Status refused = fix.registry.Rollback("default");
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), util::StatusCode::kFailedPrecondition);
  // Unknown slots are NotFound, not FailedPrecondition.
  EXPECT_EQ(fix.registry.Rollback("missing").code(),
            util::StatusCode::kNotFound);
}

TEST(PolicyRegistryCanaryTest, DirectInstallSupersedesStagedCanary) {
  CanaryFixture fix;
  ASSERT_TRUE(fix.registry.Install("default", fix.a, {}).ok());
  ASSERT_TRUE(fix.registry.InstallCanary("default", fix.b, 200, {}).ok());
  auto direct = fix.registry.Install("default", fix.c, {});
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(direct.value(), 3u);

  // The staged canary is gone; the old incumbent (not the canary) is the
  // rollback target.
  EXPECT_EQ(fix.registry.Canary("default"), nullptr);
  EXPECT_EQ(fix.registry.Current("default")->version, 3u);
  auto info = fix.registry.Info("default");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->previous_version, 1u);
  ASSERT_TRUE(fix.registry.Rollback("default").ok());
  EXPECT_EQ(fix.registry.Current("default")->version, 1u);
}

// --- PlanService ----------------------------------------------------------

struct ServingFixture {
  Dataset dataset = datagen::MakeTableIIToy();
  model::TaskInstance instance = dataset.Instance();
  core::PlannerConfig config = ToyConfig(dataset);
  PolicyRegistry registry{CatalogFingerprint(dataset.catalog),
                          dataset.catalog.size()};

  // Trains with `seed` and installs the policy under `name`.
  std::uint64_t InstallTrained(const std::string& name, std::uint64_t seed) {
    config.seed = seed;
    core::RlPlanner planner(instance, config);
    EXPECT_TRUE(planner.Train().ok());
    auto installed =
        registry.Install(name, planner.q_table(), config.sarsa, seed);
    EXPECT_TRUE(installed.ok());
    return installed.value();
  }
};

TEST(PlanServiceTest, ServesValidatedPlansWithMetadata) {
  ServingFixture fix;
  fix.InstallTrained("default", 17);
  PlanServiceConfig service_config;
  service_config.num_workers = 2;
  PlanService service(fix.instance, fix.config.reward, fix.registry,
                      service_config);
  service.Start();

  PlanRequest request;
  request.start_item = fix.dataset.default_start;
  auto submitted = service.Submit(request);
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  auto result = std::move(submitted).value().get();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result.value().plan.empty());
  EXPECT_EQ(result.value().policy_version, 1u);
  EXPECT_GE(result.value().exec_ms, 0.0);
  EXPECT_GE(result.value().queue_ms, 0.0);
  service.Stop();

  const ServeStatsSnapshot stats = service.stats().Collect();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST(PlanServiceTest, ExecuteMatchesPlannerRecommend) {
  ServingFixture fix;
  core::RlPlanner planner(fix.instance, fix.config);
  ASSERT_TRUE(planner.Train().ok());
  ASSERT_TRUE(
      fix.registry.Install("default", planner.q_table(), fix.config.sarsa, 17)
          .ok());
  PlanService service(fix.instance, fix.config.reward, fix.registry, {});

  PlanRequest request;
  request.start_item = fix.dataset.default_start;
  auto served = service.Execute(request);
  ASSERT_TRUE(served.ok());
  auto direct = planner.Recommend(fix.dataset.default_start);
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(served.value().plan == direct.value());
}

TEST(PlanServiceTest, PerRequestOverridesChangeTheRollout) {
  ServingFixture fix;
  fix.InstallTrained("default", 17);
  PlanService service(fix.instance, fix.config.reward, fix.registry, {});

  PlanRequest base;
  base.start_item = fix.dataset.default_start;
  auto base_result = service.Execute(base);
  ASSERT_TRUE(base_result.ok());

  // Excluding the base plan's second item forces a different rollout.
  ASSERT_GE(base_result.value().plan.size(), 2u);
  PlanRequest excluded = base;
  excluded.excluded = {base_result.value().plan.at(1)};
  auto excluded_result = service.Execute(excluded);
  ASSERT_TRUE(excluded_result.ok());
  EXPECT_FALSE(
      excluded_result.value().plan.Contains(base_result.value().plan.at(1)));

  // An ideal-topic override resolves names against the vocabulary.
  PlanRequest override_request = base;
  override_request.ideal_topics =
      std::vector<std::string>{fix.dataset.catalog.vocabulary().front()};
  auto override_result = service.Execute(override_request);
  ASSERT_TRUE(override_result.ok()) << override_result.status().ToString();
  EXPECT_FALSE(override_result.value().plan.empty());

  // Unknown topic names and out-of-range items are rejected.
  PlanRequest bad_topic = base;
  bad_topic.ideal_topics = std::vector<std::string>{"no-such-topic"};
  EXPECT_FALSE(service.Execute(bad_topic).ok());
  PlanRequest bad_start = base;
  bad_start.start_item = 999;
  EXPECT_EQ(service.Execute(bad_start).status().code(),
            util::StatusCode::kOutOfRange);
  PlanRequest bad_excluded = base;
  bad_excluded.excluded = {-3};
  EXPECT_EQ(service.Execute(bad_excluded).status().code(),
            util::StatusCode::kOutOfRange);
  PlanRequest bad_policy = base;
  bad_policy.policy_name = "missing";
  EXPECT_EQ(service.Execute(bad_policy).status().code(),
            util::StatusCode::kNotFound);
}

TEST(PlanServiceTest, AdmissionControlRejectsWhenQueueIsFull) {
  ServingFixture fix;
  fix.InstallTrained("default", 17);
  PlanServiceConfig service_config;
  service_config.num_workers = 1;
  service_config.max_queue = 2;
  PlanService service(fix.instance, fix.config.reward, fix.registry,
                      service_config);

  PlanRequest request;
  request.start_item = fix.dataset.default_start;
  // Submitting before Start() is a precondition failure, not a crash.
  EXPECT_EQ(service.Submit(request).status().code(),
            util::StatusCode::kFailedPrecondition);

  service.Start();
  // Flood a 1-worker service with a 2-deep queue: at least one submission
  // must bounce with ResourceExhausted, and every accepted one completes.
  std::vector<std::future<util::Result<PlanResponse>>> futures;
  std::uint64_t rejected = 0;
  for (int i = 0; i < 64; ++i) {
    auto submitted = service.Submit(request);
    if (submitted.ok()) {
      futures.push_back(std::move(submitted).value());
    } else {
      ASSERT_EQ(submitted.status().code(),
                util::StatusCode::kResourceExhausted);
      ++rejected;
    }
  }
  for (auto& future : futures) {
    EXPECT_TRUE(future.get().ok());
  }
  service.Stop();
  const ServeStatsSnapshot stats = service.stats().Collect();
  EXPECT_EQ(stats.rejected_queue_full, rejected);
  EXPECT_EQ(stats.completed, futures.size());
  EXPECT_EQ(stats.submitted, 64u);
  // Everything submitted was either accepted or rejected — nothing dropped.
  EXPECT_EQ(stats.accepted + stats.rejected_queue_full, stats.submitted);
}

TEST(PlanServiceTest, ExpiredDeadlineIsReportedNotExecuted) {
  ServingFixture fix;
  fix.InstallTrained("default", 17);
  PlanServiceConfig service_config;
  service_config.num_workers = 1;
  service_config.max_queue = 64;
  PlanService service(fix.instance, fix.config.reward, fix.registry,
                      service_config);
  service.Start();

  // A microscopic deadline expires while the request waits behind the
  // saturated single worker.
  PlanRequest request;
  request.start_item = fix.dataset.default_start;
  request.deadline_ms = 0.0001;
  std::vector<std::future<util::Result<PlanResponse>>> futures;
  for (int i = 0; i < 32; ++i) {
    auto submitted = service.Submit(request);
    if (submitted.ok()) futures.push_back(std::move(submitted).value());
  }
  std::uint64_t expired = 0;
  for (auto& future : futures) {
    auto result = future.get();
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), util::StatusCode::kDeadlineExceeded);
      ++expired;
    }
  }
  service.Stop();
  EXPECT_EQ(service.stats().Collect().expired_deadline, expired);
  EXPECT_GT(expired, 0u);
}

TEST(PlanServiceTest, TraceCollectorRecordsRequestLifecycles) {
  ServingFixture fix;
  fix.InstallTrained("default", 17);
  obs::TraceCollector trace;
  PlanServiceConfig service_config;
  service_config.num_workers = 1;
  service_config.max_queue = 2;
  service_config.trace = &trace;
  PlanService service(fix.instance, fix.config.reward, fix.registry,
                      service_config);
  service.Start();

  PlanRequest request;
  request.start_item = fix.dataset.default_start;

  // One request that completes cleanly: trace id 1.
  auto first = service.Submit(request);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(std::move(first).value().get().ok());

  // Flood the 2-deep queue with full executions so some submissions are
  // queue-rejected (cf. AdmissionControlRejectsWhenQueueIsFull)...
  std::vector<std::future<util::Result<PlanResponse>>> futures;
  bool rejected = false;
  for (int i = 0; i < 64; ++i) {
    auto submitted = service.Submit(request);
    if (submitted.ok()) {
      futures.push_back(std::move(submitted).value());
    } else {
      rejected = true;
    }
  }
  for (auto& future : futures) future.get();
  futures.clear();

  // ...then a batch with a microscopic deadline that expires behind the
  // saturated worker (cf. ExpiredDeadlineIsReportedNotExecuted).
  PlanRequest hurried = request;
  hurried.deadline_ms = 0.0001;
  for (int i = 0; i < 32; ++i) {
    auto submitted = service.Submit(hurried);
    if (submitted.ok()) futures.push_back(std::move(submitted).value());
  }
  bool expired = false;
  for (auto& future : futures) {
    if (!future.get().ok()) expired = true;
  }
  service.Stop();
  ASSERT_TRUE(rejected);
  ASSERT_TRUE(expired);

  // Every lifecycle stage shows up on the timeline, including both failure
  // paths, the policy version, the per-request trace id, and the named
  // worker thread.
  const std::string json = trace.ToChromeTrace();
  EXPECT_NE(json.find("\"name\": \"serve_queue_wait\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"serve_plan\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"serve_respond\""), std::string::npos);
  EXPECT_NE(json.find("\"status\": \"queue_rejected\""), std::string::npos);
  EXPECT_NE(json.find("\"status\": \"deadline_exceeded\""),
            std::string::npos);
  EXPECT_NE(json.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"version\": \"1\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\": \"1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"serve-worker-0\""), std::string::npos);
  EXPECT_EQ(trace.dropped_total(), 0u);
}

// The hot-swap stress test: kClients threads request plans while the policy
// is swapped kSwaps times — zero failed requests, and every response is
// attributable to exactly one installed snapshot version (its plan matches
// the serial greedy rollout of that exact version).
TEST(PlanServiceTest, ConcurrentHotSwapStress) {
  ServingFixture fix;
  constexpr int kSwaps = 8;
  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 60;

  // Pre-train every policy that will be swapped in, and record the expected
  // greedy plan of each.
  std::vector<mdp::QTable> tables;
  std::vector<model::Plan> expected_plans;
  for (int i = 0; i <= kSwaps; ++i) {
    fix.config.seed = 100 + static_cast<std::uint64_t>(i);
    core::RlPlanner planner(fix.instance, fix.config);
    ASSERT_TRUE(planner.Train().ok());
    tables.push_back(planner.q_table());
    auto plan = planner.Recommend(fix.dataset.default_start);
    ASSERT_TRUE(plan.ok());
    expected_plans.push_back(plan.value());
  }

  std::map<std::uint64_t, model::Plan> expected_plan_of_version;
  auto first = fix.registry.Install("default", tables[0], fix.config.sarsa);
  ASSERT_TRUE(first.ok());
  expected_plan_of_version[first.value()] = expected_plans[0];

  PlanServiceConfig service_config;
  service_config.num_workers = kClients;
  service_config.max_queue = 1024;
  PlanService service(fix.instance, fix.config.reward, fix.registry,
                      service_config);
  service.Start();

  std::atomic<std::uint64_t> failures{0};
  std::vector<std::vector<std::pair<std::uint64_t, model::Plan>>> responses(
      kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        PlanRequest request;
        request.start_item = fix.dataset.default_start;
        auto submitted = service.Submit(request);
        if (!submitted.ok()) {
          ++failures;
          continue;
        }
        auto result = std::move(submitted).value().get();
        if (!result.ok()) {
          ++failures;
          continue;
        }
        responses[static_cast<std::size_t>(c)].emplace_back(
            result.value().policy_version, result.value().plan);
      }
    });
  }
  // Swapper: publish versions 2..kSwaps+1 while the clients hammer the
  // service. The version→plan map is only read after the joins below.
  std::thread swapper([&] {
    for (int i = 1; i <= kSwaps; ++i) {
      auto installed = fix.registry.Install(
          "default", tables[static_cast<std::size_t>(i)], fix.config.sarsa);
      EXPECT_TRUE(installed.ok());
      if (installed.ok()) {
        expected_plan_of_version[installed.value()] =
            expected_plans[static_cast<std::size_t>(i)];
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  for (auto& client : clients) client.join();
  swapper.join();
  service.Stop();

  EXPECT_EQ(failures.load(), 0u);
  std::size_t total = 0;
  std::set<std::uint64_t> versions_seen;
  for (const auto& per_client : responses) {
    for (const auto& [version, plan] : per_client) {
      ++total;
      versions_seen.insert(version);
      const auto it = expected_plan_of_version.find(version);
      ASSERT_NE(it, expected_plan_of_version.end())
          << "response attributed to unknown version " << version;
      EXPECT_TRUE(plan == it->second)
          << "response plan does not match the rollout of version " << version;
    }
  }
  EXPECT_EQ(total, static_cast<std::size_t>(kClients) * kRequestsPerClient);
  // The swaps really happened under load, and no request was dropped or
  // incorrectly rejected.
  EXPECT_EQ(fix.registry.install_count(),
            static_cast<std::uint64_t>(kSwaps) + 1);
  const ServeStatsSnapshot stats = service.stats().Collect();
  EXPECT_EQ(stats.completed, total);
  EXPECT_EQ(stats.rejected_queue_full, 0u);
  EXPECT_EQ(stats.failed, 0u);
  // Per-version attribution survives the registry migration: the
  // serve_responses_total{version=...} counters must agree exactly with
  // the versions the clients actually observed on their futures.
  std::map<std::uint64_t, std::uint64_t> client_tallies;
  for (const auto& per_client : responses) {
    for (const auto& [version, plan] : per_client) ++client_tallies[version];
  }
  EXPECT_EQ(stats.responses_by_version, client_tallies);
}

TEST(PlanServiceTest, SharedRegistryExposesServeMetrics) {
  // A service handed an external obs::Registry publishes its counters
  // there, so one snapshot covers serving (and, in-process, training too).
  ServingFixture fix;
  fix.InstallTrained("default", 17);
  obs::Registry metrics_registry;
  PlanServiceConfig service_config;
  service_config.num_workers = 2;
  service_config.metrics = &metrics_registry;
  PlanService service(fix.instance, fix.config.reward, fix.registry,
                      service_config);
  service.Start();

  constexpr int kRequests = 5;
  for (int i = 0; i < kRequests; ++i) {
    PlanRequest request;
    request.start_item = fix.dataset.default_start;
    auto submitted = service.Submit(request);
    ASSERT_TRUE(submitted.ok());
    ASSERT_TRUE(std::move(submitted).value().get().ok());
  }
  service.Stop();

  std::uint64_t completed = 0;
  std::uint64_t by_version = 0;
  double queue_depth = -1.0;
  for (const auto& m : metrics_registry.Collect().metrics) {
    if (m.name == "serve_requests_completed_total") {
      completed = static_cast<std::uint64_t>(m.value);
    } else if (m.name == "serve_responses_total") {
      ASSERT_EQ(m.labels.size(), 1u);
      EXPECT_EQ(m.labels[0].key, "version");
      EXPECT_EQ(m.labels[0].value, "1");
      by_version = static_cast<std::uint64_t>(m.value);
    } else if (m.name == "serve_queue_depth") {
      queue_depth = m.value;
    }
  }
  EXPECT_EQ(completed, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(by_version, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(queue_depth, 0.0);  // drained before Stop() returned
  EXPECT_EQ(service.stats().Collect().queue_depth, 0u);
}

TEST(PlanServiceTest, SubmitAsyncDeliversViaCallbackExactlyOnce) {
  ServingFixture fix;
  fix.InstallTrained("default", 17);
  PlanServiceConfig service_config;
  service_config.num_workers = 2;
  PlanService service(fix.instance, fix.config.reward, fix.registry,
                      service_config);
  service.Start();

  constexpr int kRequests = 20;
  std::atomic<int> delivered{0};
  std::atomic<int> ok_count{0};
  for (int i = 0; i < kRequests; ++i) {
    PlanRequest request;
    request.start_item = fix.dataset.default_start;
    auto submitted = service.SubmitAsync(
        std::move(request), [&](util::Result<PlanResponse> result) {
          delivered.fetch_add(1);
          if (result.ok() && !result.value().plan.empty()) {
            ok_count.fetch_add(1);
          }
        });
    ASSERT_TRUE(submitted.ok()) << submitted.ToString();
  }
  service.Stop();  // drains the queue: every callback has fired by now
  EXPECT_EQ(delivered.load(), kRequests);
  EXPECT_EQ(ok_count.load(), kRequests);

  // Post-stop submissions are rejected and the callback never runs.
  std::atomic<bool> ran{false};
  auto rejected = service.SubmitAsync(
      PlanRequest{}, [&](util::Result<PlanResponse>) { ran.store(true); });
  EXPECT_EQ(rejected.code(), util::StatusCode::kFailedPrecondition);
  EXPECT_FALSE(ran.load());
}

TEST(PlanServiceTest, AllocateTraceIdIsUniqueAcrossThreads) {
  ServingFixture fix;
  fix.InstallTrained("default", 17);
  PlanService service(fix.instance, fix.config.reward, fix.registry, {});
  constexpr int kThreads = 4;
  constexpr int kIdsPerThread = 200;
  std::vector<std::vector<std::uint64_t>> ids(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&service, &ids, t] {
      for (int i = 0; i < kIdsPerThread; ++i) {
        ids[t].push_back(service.AllocateTraceId());
      }
    });
  }
  for (auto& thread : threads) thread.join();
  std::set<std::uint64_t> unique;
  for (const auto& per_thread : ids) unique.insert(per_thread.begin(),
                                                   per_thread.end());
  EXPECT_EQ(unique.size(),
            static_cast<std::size_t>(kThreads) * kIdsPerThread);
}

TEST(PlanServiceTest, DrainSettlesQueueAndStopsAdmissions) {
  ServingFixture fix;
  fix.InstallTrained("default", 17);
  PlanServiceConfig service_config;
  service_config.num_workers = 2;
  PlanService service(fix.instance, fix.config.reward, fix.registry,
                      service_config);
  service.Start();

  std::vector<std::future<util::Result<PlanResponse>>> futures;
  for (int i = 0; i < 10; ++i) {
    PlanRequest request;
    request.start_item = fix.dataset.default_start;
    auto submitted = service.Submit(std::move(request));
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted).value());
  }

  EXPECT_TRUE(service.Drain(std::chrono::milliseconds(5000)).ok());
  // Every admitted request was delivered before Drain returned...
  for (auto& future : futures) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_TRUE(future.get().ok());
  }
  EXPECT_EQ(service.queue_depth(), 0u);
  // ...and new admissions are refused from the moment Drain was called.
  auto refused = service.Submit(PlanRequest{});
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), util::StatusCode::kFailedPrecondition);

  // Idempotent, and composes with Stop in either order.
  EXPECT_TRUE(service.Drain(std::chrono::milliseconds(1)).ok());
  service.Stop();
  EXPECT_TRUE(service.Drain(std::chrono::milliseconds(1)).ok());

  const ServeStatsSnapshot stats = service.stats().Collect();
  EXPECT_EQ(stats.accepted, stats.completed + stats.expired_deadline);
  EXPECT_EQ(stats.failed, 0u);
}

TEST(PlanServiceTest, DrainTimeoutFailsLeftoversInsteadOfDroppingThem) {
  ServingFixture fix;
  fix.InstallTrained("default", 17);
  PlanServiceConfig service_config;
  service_config.num_workers = 1;
  service_config.max_queue = 4096;
  PlanService service(fix.instance, fix.config.reward, fix.registry,
                      service_config);
  service.Start();

  // Build a backlog one worker cannot settle instantly, then drain with a
  // zero budget. Whether the worker happens to win the race or not, the
  // ledger must balance: every future resolves, nothing is dropped.
  std::vector<std::future<util::Result<PlanResponse>>> futures;
  for (int i = 0; i < 300; ++i) {
    PlanRequest request;
    request.start_item = fix.dataset.default_start;
    auto submitted = service.Submit(std::move(request));
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted).value());
  }
  const util::Status drained = service.Drain(std::chrono::milliseconds(0));

  std::size_t completed = 0;
  std::size_t deadline_failed = 0;
  for (auto& future : futures) {
    auto result = future.get();  // must not hang: delivered or failed, never lost
    if (result.ok()) {
      ++completed;
    } else {
      EXPECT_EQ(result.status().code(), util::StatusCode::kDeadlineExceeded);
      ++deadline_failed;
    }
  }
  EXPECT_EQ(completed + deadline_failed, futures.size());
  if (deadline_failed > 0) {
    // Leftovers existed at the deadline, so Drain must have reported it.
    EXPECT_EQ(drained.code(), util::StatusCode::kDeadlineExceeded);
  } else {
    EXPECT_TRUE(drained.ok());
  }
  service.Stop();
  EXPECT_EQ(service.queue_depth(), 0u);
}

TEST(ServeStatsTest, HistogramQuantilesAndJson) {
  ServeStats stats;
  for (int i = 1; i <= 100; ++i) {
    stats.RecordCompleted(static_cast<double>(i));  // 1..100 ms
  }
  stats.RecordSubmitted();
  stats.RecordRejectedQueueFull();
  const ServeStatsSnapshot snapshot = stats.Collect();
  EXPECT_EQ(snapshot.latency_count, 100u);
  // Log-linear buckets guarantee <= 12.5% relative quantile error.
  EXPECT_NEAR(snapshot.latency_p50_ms, 50.0, 50.0 * 0.13);
  EXPECT_NEAR(snapshot.latency_p95_ms, 95.0, 95.0 * 0.13);
  EXPECT_NEAR(snapshot.latency_p99_ms, 99.0, 99.0 * 0.13);
  EXPECT_NEAR(snapshot.latency_mean_ms, 50.5, 0.01);
  EXPECT_DOUBLE_EQ(snapshot.latency_max_ms, 100.0);
  // Quantiles never exceed the exact maximum.
  EXPECT_LE(snapshot.latency_p99_ms, snapshot.latency_max_ms);
  const std::string json = snapshot.ToJson();
  EXPECT_NE(json.find("\"rejected_queue_full\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
}

TEST(ServeStatsTest, ResponsesByVersionSnapshotAndJson) {
  ServeStats stats;
  stats.RecordResponseVersion(1);
  stats.RecordResponseVersion(1);
  stats.RecordResponseVersion(2);
  const ServeStatsSnapshot snapshot = stats.Collect();
  const std::map<std::uint64_t, std::uint64_t> expected = {{1, 2}, {2, 1}};
  EXPECT_EQ(snapshot.responses_by_version, expected);
  EXPECT_NE(snapshot.ToJson().find("\"responses_by_version\": {\"1\": 2, "
                                   "\"2\": 1}"),
            std::string::npos);
}

TEST(ServeStatsTest, EmptyHistogramIsAllZero) {
  ServeStats stats;
  const ServeStatsSnapshot snapshot = stats.Collect();
  EXPECT_EQ(snapshot.latency_count, 0u);
  EXPECT_DOUBLE_EQ(snapshot.latency_p50_ms, 0.0);
  EXPECT_DOUBLE_EQ(snapshot.latency_max_ms, 0.0);
}

// --- Flight recorder integration ------------------------------------------

TEST(PlanServiceTest, StalledRequestIsRecordedWithLatencyExemplar) {
  ServingFixture fix;
  fix.InstallTrained("default", 17);
  obs::Registry metrics;
  obs::FlightRecorderConfig recorder_config;
  recorder_config.slo_ms = 5.0;
  obs::FlightRecorder recorder(recorder_config);
  PlanServiceConfig service_config;
  service_config.num_workers = 1;
  service_config.metrics = &metrics;
  service_config.recorder = &recorder;
  PlanService service(fix.instance, fix.config.reward, fix.registry,
                      service_config);
  service.Start();

  // A fast request stays under the SLO; the stalled one must be retained.
  PlanRequest fast;
  fast.start_item = fix.dataset.default_start;
  auto fast_submitted = service.Submit(fast);
  ASSERT_TRUE(fast_submitted.ok());
  ASSERT_TRUE(std::move(fast_submitted).value().get().ok());

  PlanRequest stalled;
  stalled.start_item = fix.dataset.default_start;
  stalled.debug_stall_ms = 25.0;
  auto submitted = service.Submit(stalled);
  ASSERT_TRUE(submitted.ok());
  auto result = std::move(submitted).value().get();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  service.Stop();

  EXPECT_EQ(recorder.requests_observed(), 2u);
  ASSERT_EQ(recorder.slo_violations(), 1u);
  const std::string tracez = recorder.ToJson();
  EXPECT_NE(tracez.find("\"serve_plan\""), std::string::npos) << tracez;
  EXPECT_NE(tracez.find("\"serve_queue_wait\""), std::string::npos);

  // The violating request's trace id was captured as a latency exemplar.
  std::uint64_t exemplar_trace = 0;
  for (const obs::MetricSnapshot& m : metrics.Collect().metrics) {
    if (m.name != "serve_request_latency_us") continue;
    ASSERT_FALSE(m.exemplars.empty());
    // The stall dominates the latency distribution: the top exemplar is the
    // stalled request and its value reflects the injected 25ms.
    const obs::ExemplarSnapshot& top = m.exemplars.back();
    exemplar_trace = top.trace_id;
    EXPECT_GE(top.value, 25000u);
    EXPECT_EQ(top.version, 1u);
  }
  ASSERT_GT(exemplar_trace, 0u);
  EXPECT_NE(tracez.find("\"trace_id\": " + std::to_string(exemplar_trace)),
            std::string::npos);
}

// --- Profiler neutrality --------------------------------------------------

// Acceptance gate: a running profiler must not perturb training — SIGPROF
// with SA_RESTART is invisible to the deterministic scheduler, so the same
// seed yields a bit-identical Q-table with sampling on or off.
TEST(ProfilerNeutralityTest, TrainingIsBitIdenticalUnderSampling) {
  const Dataset dataset = datagen::MakeTableIIToy();
  const model::TaskInstance instance = dataset.Instance();
  core::PlannerConfig config = ToyConfig(dataset, 29, /*episodes=*/200);

  core::RlPlanner baseline(instance, config);
  ASSERT_TRUE(baseline.Train().ok());

  obs::ProfilerConfig profiler_config;
  profiler_config.enabled = true;
  profiler_config.sample_hz = 997;  // oversample to maximize interference
  obs::Profiler profiler(profiler_config);
  ASSERT_TRUE(profiler.Start().ok());
  core::RlPlanner sampled(instance, config);
  ASSERT_TRUE(sampled.Train().ok());
  profiler.Stop();

  EXPECT_TRUE(sampled.q_table() == baseline.q_table());
  auto baseline_plan = baseline.Recommend(dataset.default_start);
  auto sampled_plan = sampled.Recommend(dataset.default_start);
  ASSERT_TRUE(baseline_plan.ok());
  ASSERT_TRUE(sampled_plan.ok());
  EXPECT_TRUE(baseline_plan.value() == sampled_plan.value());
}

}  // namespace
}  // namespace rlplanner::serve

// Tests for the intra-run parallel SARSA learner: bit-determinism of the
// sharded merge mode, bit-exact K=1 delegation to the serial learner, and
// the statistical contract of the Hogwild mode.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/scoring.h"
#include "datagen/course_data.h"
#include "mdp/cmdp.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "obs/training_metrics.h"
#include "rl/parallel_sarsa.h"
#include "rl/recommender.h"
#include "rl/sarsa.h"
#include "util/thread_pool.h"

namespace rlplanner::rl {
namespace {

SarsaConfig ParallelConfig(ParallelMode mode, int workers, int episodes,
                           model::ItemId start) {
  SarsaConfig config;
  config.num_episodes = episodes;
  config.start_item = start;
  config.parallel_mode = mode;
  config.num_workers = workers;
  return config;
}

// ------------------------------------------------- deterministic mode --

TEST(ParallelSarsaTest, SameSeedSameWorkersIsBitIdentical) {
  datagen::Dataset dataset = datagen::MakeUniv1DsCt();
  const model::TaskInstance instance = dataset.Instance();
  const mdp::RewardWeights weights;
  const mdp::RewardFunction reward(instance, weights);
  const SarsaConfig config = ParallelConfig(ParallelMode::kDeterministic, 4,
                                            100, dataset.default_start);

  ParallelSarsaLearner first(instance, reward, config, /*seed=*/123);
  ParallelSarsaLearner second(instance, reward, config, /*seed=*/123);
  const mdp::QTable q1 = first.Learn();
  const mdp::QTable q2 = second.Learn();
  EXPECT_TRUE(q1 == q2);
  EXPECT_EQ(first.episode_returns(), second.episode_returns());
}

TEST(ParallelSarsaTest, TracingDoesNotPerturbDeterministicTraining) {
  // Spans only read the clock — attaching a trace collector (and a metrics
  // registry) must leave the learned table and the per-episode returns
  // bit-identical to an untraced run with the same (seed, K).
  datagen::Dataset dataset = datagen::MakeUniv1DsCt();
  const model::TaskInstance instance = dataset.Instance();
  const mdp::RewardWeights weights;
  const mdp::RewardFunction reward(instance, weights);
  const SarsaConfig config = ParallelConfig(ParallelMode::kDeterministic, 4,
                                            100, dataset.default_start);

  ParallelSarsaLearner untraced(instance, reward, config, /*seed=*/123);
  const mdp::QTable q1 = untraced.Learn();

  obs::Registry registry;
  obs::TrainingMetrics metrics(&registry);
  obs::TraceCollector trace;
  ParallelSarsaLearner traced(instance, reward, config, /*seed=*/123);
  traced.set_metrics(&metrics);
  traced.set_trace(&trace);
  const mdp::QTable q2 = traced.Learn();

  EXPECT_TRUE(q1 == q2);
  EXPECT_EQ(untraced.episode_returns(), traced.episode_returns());
  // The run actually produced a timeline: round, shard, and merge spans.
  EXPECT_GT(trace.emitted_total(), 0u);
  const std::string json = trace.ToChromeTrace();
  EXPECT_NE(json.find("\"name\": \"train_round\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"train_shard\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"train_merge\""), std::string::npos);
  EXPECT_EQ(trace.dropped_total(), 0u);
}

TEST(ParallelSarsaTest, DeterministicResultIndependentOfThreadCount) {
  // The same (seed, K) must learn the same table whether the shards run on
  // an external 2-thread pool or the learner's own K-thread pool — physical
  // threading is a wall-clock concern only.
  datagen::Dataset dataset = datagen::MakeUniv1DsCt();
  const model::TaskInstance instance = dataset.Instance();
  const mdp::RewardWeights weights;
  const mdp::RewardFunction reward(instance, weights);
  const SarsaConfig config = ParallelConfig(ParallelMode::kDeterministic, 4,
                                            100, dataset.default_start);

  util::ThreadPool small_pool(2);
  ParallelSarsaLearner pooled(instance, reward, config, /*seed=*/9,
                              &small_pool);
  ParallelSarsaLearner owned(instance, reward, config, /*seed=*/9);
  const mdp::QTable q1 = pooled.Learn();
  const mdp::QTable q2 = owned.Learn();
  EXPECT_TRUE(q1 == q2);
  EXPECT_EQ(pooled.episode_returns(), owned.episode_returns());
}

TEST(ParallelSarsaTest, SingleWorkerIsBitIdenticalToSerialLearner) {
  datagen::Dataset dataset = datagen::MakeUniv1DsCt();
  const model::TaskInstance instance = dataset.Instance();
  const mdp::RewardWeights weights;
  const mdp::RewardFunction reward(instance, weights);
  const SarsaConfig parallel_config = ParallelConfig(
      ParallelMode::kDeterministic, 1, 100, dataset.default_start);

  ParallelSarsaLearner parallel(instance, reward, parallel_config,
                                /*seed=*/77);
  const mdp::QTable q_parallel = parallel.Learn();

  SarsaConfig serial_config = parallel_config;
  serial_config.parallel_mode = ParallelMode::kSerial;
  serial_config.num_workers = 1;
  SarsaLearner serial(instance, reward, serial_config, /*seed=*/77);
  const mdp::QTable q_serial = serial.Learn();

  EXPECT_TRUE(q_parallel == q_serial);
  EXPECT_EQ(parallel.episode_returns(), serial.episode_returns());
}

TEST(ParallelSarsaTest, RunsExactlyTheConfiguredEpisodeBudget) {
  datagen::Dataset dataset = datagen::MakeTableIIToy();
  const model::TaskInstance instance = dataset.Instance();
  const mdp::RewardWeights weights;
  const mdp::RewardFunction reward(instance, weights);
  // 103 episodes over 4 workers and 5 rounds exercises both the uneven
  // shard remainder and the uneven round remainder.
  const SarsaConfig config =
      ParallelConfig(ParallelMode::kDeterministic, 4, 103, 0);

  ParallelSarsaLearner learner(instance, reward, config, /*seed=*/5);
  const mdp::QTable q = learner.Learn();
  EXPECT_EQ(q.num_items(), dataset.catalog.size());
  EXPECT_EQ(learner.episode_returns().size(), 103u);
}

TEST(ParallelSarsaTest, WorkerSeedsAreDistinctAcrossRoundsAndWorkers) {
  std::set<std::uint64_t> seen;
  for (int round = 0; round < 8; ++round) {
    for (int worker = 0; worker < 16; ++worker) {
      seen.insert(ParallelSarsaLearner::WorkerSeed(17, round, worker));
    }
  }
  EXPECT_EQ(seen.size(), 8u * 16u);
  // Different run seeds decorrelate every shard stream.
  EXPECT_NE(ParallelSarsaLearner::WorkerSeed(17, 0, 0),
            ParallelSarsaLearner::WorkerSeed(18, 0, 0));
}

// ------------------------------------------------------- atomic table --

TEST(AtomicQTableTest, SarsaUpdateMatchesPlainTableSingleThreaded) {
  mdp::QTable plain(4);
  AtomicQTable atomic(4);
  plain.Set(1, 2, 0.5);
  atomic.Set(1, 2, 0.5);
  plain.Set(2, 3, 1.5);
  atomic.Set(2, 3, 1.5);

  plain.SarsaUpdate(1, 2, 0.7, 2, 3, 0.75, 0.95);
  atomic.SarsaUpdate(1, 2, 0.7, 2, 3, 0.75, 0.95);
  EXPECT_DOUBLE_EQ(atomic.Get(1, 2), plain.Get(1, 2));

  // Terminal transition: no continuation value.
  plain.SarsaUpdate(2, 3, -0.2, 3, -1, 0.75, 0.95);
  atomic.SarsaUpdate(2, 3, -0.2, 3, -1, 0.75, 0.95);
  EXPECT_DOUBLE_EQ(atomic.Get(2, 3), plain.Get(2, 3));

  EXPECT_TRUE(atomic.ToQTable() == plain);
}

TEST(AtomicQTableTest, LoadFromRoundTrips) {
  mdp::QTable plain(3);
  plain.Set(0, 1, -1.25);
  plain.Set(2, 2, 3.5);
  AtomicQTable atomic(3);
  atomic.LoadFrom(plain);
  EXPECT_TRUE(atomic.ToQTable() == plain);
}

// ------------------------------------------------------ Hogwild mode --

TEST(ParallelSarsaTest, HogwildPolicySatisfiesHardConstraints) {
  // Hogwild results are scheduling-dependent, so the contract is
  // statistical: across seeds, the greedy rollout of the learned policy
  // must satisfy every hard constraint, and its plan score must be in the
  // same range as the serial learner's.
  datagen::Dataset dataset = datagen::MakeUniv1DsCt();
  const model::TaskInstance instance = dataset.Instance();
  const mdp::RewardWeights weights;
  const mdp::RewardFunction reward(instance, weights);
  const mdp::CmdpSpec spec = mdp::CmdpSpec::FromInstance(instance);

  RecommendConfig rollout;
  rollout.start_item = dataset.default_start;

  for (std::uint64_t seed = 100; seed < 105; ++seed) {
    SarsaConfig serial_config = ParallelConfig(ParallelMode::kSerial, 1, 500,
                                               dataset.default_start);
    SarsaLearner serial(instance, reward, serial_config, seed);
    const mdp::QTable q_serial = serial.Learn();
    const model::Plan serial_plan =
        RecommendPlan(q_serial, instance, reward, rollout);
    ASSERT_TRUE(spec.Satisfied(serial_plan)) << "serial unsafe, seed " << seed;

    const SarsaConfig hogwild_config = ParallelConfig(
        ParallelMode::kHogwild, 4, 500, dataset.default_start);
    ParallelSarsaLearner hogwild(instance, reward, hogwild_config, seed);
    const mdp::QTable q_hogwild = hogwild.Learn();
    const model::Plan hogwild_plan =
        RecommendPlan(q_hogwild, instance, reward, rollout);
    EXPECT_TRUE(spec.Satisfied(hogwild_plan)) << "hogwild unsafe, seed "
                                              << seed;

    const double serial_score = core::ScorePlan(instance, serial_plan);
    const double hogwild_score = core::ScorePlan(instance, hogwild_plan);
    // On Univ-1 the learner's outcome is bimodal: every (seed, budget)
    // combination converges to one of two feasible policies (scores ~4.8
    // and ~10.0), and the *serial* learner itself lands on the low mode at
    // other seeds/budgets. Per-seed parity is therefore not a property
    // even of two serial runs; the statistical contract is "no policy
    // collapse": the Hogwild score must stay inside the serial support,
    // i.e. above a floor set between zero and the low mode.
    EXPECT_GE(hogwild_score, 0.45 * serial_score) << "seed " << seed;
  }
}

// ------------------------------------------------ metrics equivalence --

// Trains once with a live metrics registry and once with none, under a
// caller-supplied execution wrapper, and requires bit-identical results.
void ExpectMetricsDoNotPerturbTraining(
    const model::TaskInstance& instance, const mdp::RewardFunction& reward,
    const SarsaConfig& config, std::uint64_t seed,
    const std::function<mdp::QTable(ParallelSarsaLearner&)>& run) {
  obs::Registry registry;
  obs::TrainingMetrics metrics(&registry);
  ParallelSarsaLearner instrumented(instance, reward, config, seed);
  instrumented.set_metrics(&metrics);
  const mdp::QTable q_instrumented = run(instrumented);

  ParallelSarsaLearner plain(instance, reward, config, seed);
  const mdp::QTable q_plain = run(plain);

  EXPECT_TRUE(q_instrumented == q_plain) << "seed " << seed;
  EXPECT_EQ(instrumented.episode_returns(), plain.episode_returns())
      << "seed " << seed;
  // The instrumented run really recorded: one step counter bump per update.
  std::uint64_t steps = 0;
  for (const auto& m : registry.Collect().metrics) {
    if (m.name == "train_steps_total") steps = static_cast<std::uint64_t>(m.value);
  }
  EXPECT_GT(steps, 0u) << "seed " << seed;
}

TEST(ParallelSarsaTest, MetricsRecordingIsBitExactAcrossSeedsAndModes) {
  // The observability contract: enabling the registry must not change a
  // single bit of what is learned, in any execution mode. TD errors are
  // computed from Q reads only, and no metrics call draws randomness.
  datagen::Dataset dataset = datagen::MakeUniv1DsCt();
  const model::TaskInstance instance = dataset.Instance();
  const mdp::RewardWeights weights;
  const mdp::RewardFunction reward(instance, weights);

  const auto run_direct = [](ParallelSarsaLearner& learner) {
    return learner.Learn();
  };
  // Hogwild tables depend on thread interleaving, so the comparison forces
  // it serial: a nested ParallelFor degrades to an inline loop, making the
  // update order a pure function of the seed while still exercising the
  // Hogwild code path (atomic table, per-worker RNG streams). The outer
  // region needs n >= 2 — a single-index ParallelFor takes the trivial
  // inline fast path without entering a parallel region.
  util::ThreadPool outer_pool(2);
  const auto run_nested = [&outer_pool](ParallelSarsaLearner& learner) {
    mdp::QTable q(0);
    outer_pool.ParallelFor(2, [&](std::size_t i) {
      if (i == 0) q = learner.Learn();
    });
    return q;
  };

  for (std::uint64_t seed = 200; seed < 205; ++seed) {
    ExpectMetricsDoNotPerturbTraining(
        instance, reward,
        ParallelConfig(ParallelMode::kSerial, 1, 100, dataset.default_start),
        seed, run_direct);
    ExpectMetricsDoNotPerturbTraining(
        instance, reward,
        ParallelConfig(ParallelMode::kDeterministic, 4, 100,
                       dataset.default_start),
        seed, run_direct);
    ExpectMetricsDoNotPerturbTraining(
        instance, reward,
        ParallelConfig(ParallelMode::kHogwild, 4, 100, dataset.default_start),
        seed, run_nested);
  }
}

}  // namespace
}  // namespace rlplanner::rl

// Tests for the intra-run parallel SARSA learner: bit-determinism of the
// sharded merge mode, bit-exact K=1 delegation to the serial learner, and
// the statistical contract of the Hogwild mode.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "core/scoring.h"
#include "datagen/course_data.h"
#include "mdp/cmdp.h"
#include "rl/parallel_sarsa.h"
#include "rl/recommender.h"
#include "rl/sarsa.h"
#include "util/thread_pool.h"

namespace rlplanner::rl {
namespace {

SarsaConfig ParallelConfig(ParallelMode mode, int workers, int episodes,
                           model::ItemId start) {
  SarsaConfig config;
  config.num_episodes = episodes;
  config.start_item = start;
  config.parallel_mode = mode;
  config.num_workers = workers;
  return config;
}

// ------------------------------------------------- deterministic mode --

TEST(ParallelSarsaTest, SameSeedSameWorkersIsBitIdentical) {
  datagen::Dataset dataset = datagen::MakeUniv1DsCt();
  const model::TaskInstance instance = dataset.Instance();
  const mdp::RewardWeights weights;
  const mdp::RewardFunction reward(instance, weights);
  const SarsaConfig config = ParallelConfig(ParallelMode::kDeterministic, 4,
                                            100, dataset.default_start);

  ParallelSarsaLearner first(instance, reward, config, /*seed=*/123);
  ParallelSarsaLearner second(instance, reward, config, /*seed=*/123);
  const mdp::QTable q1 = first.Learn();
  const mdp::QTable q2 = second.Learn();
  EXPECT_TRUE(q1 == q2);
  EXPECT_EQ(first.episode_returns(), second.episode_returns());
}

TEST(ParallelSarsaTest, DeterministicResultIndependentOfThreadCount) {
  // The same (seed, K) must learn the same table whether the shards run on
  // an external 2-thread pool or the learner's own K-thread pool — physical
  // threading is a wall-clock concern only.
  datagen::Dataset dataset = datagen::MakeUniv1DsCt();
  const model::TaskInstance instance = dataset.Instance();
  const mdp::RewardWeights weights;
  const mdp::RewardFunction reward(instance, weights);
  const SarsaConfig config = ParallelConfig(ParallelMode::kDeterministic, 4,
                                            100, dataset.default_start);

  util::ThreadPool small_pool(2);
  ParallelSarsaLearner pooled(instance, reward, config, /*seed=*/9,
                              &small_pool);
  ParallelSarsaLearner owned(instance, reward, config, /*seed=*/9);
  const mdp::QTable q1 = pooled.Learn();
  const mdp::QTable q2 = owned.Learn();
  EXPECT_TRUE(q1 == q2);
  EXPECT_EQ(pooled.episode_returns(), owned.episode_returns());
}

TEST(ParallelSarsaTest, SingleWorkerIsBitIdenticalToSerialLearner) {
  datagen::Dataset dataset = datagen::MakeUniv1DsCt();
  const model::TaskInstance instance = dataset.Instance();
  const mdp::RewardWeights weights;
  const mdp::RewardFunction reward(instance, weights);
  const SarsaConfig parallel_config = ParallelConfig(
      ParallelMode::kDeterministic, 1, 100, dataset.default_start);

  ParallelSarsaLearner parallel(instance, reward, parallel_config,
                                /*seed=*/77);
  const mdp::QTable q_parallel = parallel.Learn();

  SarsaConfig serial_config = parallel_config;
  serial_config.parallel_mode = ParallelMode::kSerial;
  serial_config.num_workers = 1;
  SarsaLearner serial(instance, reward, serial_config, /*seed=*/77);
  const mdp::QTable q_serial = serial.Learn();

  EXPECT_TRUE(q_parallel == q_serial);
  EXPECT_EQ(parallel.episode_returns(), serial.episode_returns());
}

TEST(ParallelSarsaTest, RunsExactlyTheConfiguredEpisodeBudget) {
  datagen::Dataset dataset = datagen::MakeTableIIToy();
  const model::TaskInstance instance = dataset.Instance();
  const mdp::RewardWeights weights;
  const mdp::RewardFunction reward(instance, weights);
  // 103 episodes over 4 workers and 5 rounds exercises both the uneven
  // shard remainder and the uneven round remainder.
  const SarsaConfig config =
      ParallelConfig(ParallelMode::kDeterministic, 4, 103, 0);

  ParallelSarsaLearner learner(instance, reward, config, /*seed=*/5);
  const mdp::QTable q = learner.Learn();
  EXPECT_EQ(q.num_items(), dataset.catalog.size());
  EXPECT_EQ(learner.episode_returns().size(), 103u);
}

TEST(ParallelSarsaTest, WorkerSeedsAreDistinctAcrossRoundsAndWorkers) {
  std::set<std::uint64_t> seen;
  for (int round = 0; round < 8; ++round) {
    for (int worker = 0; worker < 16; ++worker) {
      seen.insert(ParallelSarsaLearner::WorkerSeed(17, round, worker));
    }
  }
  EXPECT_EQ(seen.size(), 8u * 16u);
  // Different run seeds decorrelate every shard stream.
  EXPECT_NE(ParallelSarsaLearner::WorkerSeed(17, 0, 0),
            ParallelSarsaLearner::WorkerSeed(18, 0, 0));
}

// ------------------------------------------------------- atomic table --

TEST(AtomicQTableTest, SarsaUpdateMatchesPlainTableSingleThreaded) {
  mdp::QTable plain(4);
  AtomicQTable atomic(4);
  plain.Set(1, 2, 0.5);
  atomic.Set(1, 2, 0.5);
  plain.Set(2, 3, 1.5);
  atomic.Set(2, 3, 1.5);

  plain.SarsaUpdate(1, 2, 0.7, 2, 3, 0.75, 0.95);
  atomic.SarsaUpdate(1, 2, 0.7, 2, 3, 0.75, 0.95);
  EXPECT_DOUBLE_EQ(atomic.Get(1, 2), plain.Get(1, 2));

  // Terminal transition: no continuation value.
  plain.SarsaUpdate(2, 3, -0.2, 3, -1, 0.75, 0.95);
  atomic.SarsaUpdate(2, 3, -0.2, 3, -1, 0.75, 0.95);
  EXPECT_DOUBLE_EQ(atomic.Get(2, 3), plain.Get(2, 3));

  EXPECT_TRUE(atomic.ToQTable() == plain);
}

TEST(AtomicQTableTest, LoadFromRoundTrips) {
  mdp::QTable plain(3);
  plain.Set(0, 1, -1.25);
  plain.Set(2, 2, 3.5);
  AtomicQTable atomic(3);
  atomic.LoadFrom(plain);
  EXPECT_TRUE(atomic.ToQTable() == plain);
}

// ------------------------------------------------------ Hogwild mode --

TEST(ParallelSarsaTest, HogwildPolicySatisfiesHardConstraints) {
  // Hogwild results are scheduling-dependent, so the contract is
  // statistical: across seeds, the greedy rollout of the learned policy
  // must satisfy every hard constraint, and its plan score must be in the
  // same range as the serial learner's.
  datagen::Dataset dataset = datagen::MakeUniv1DsCt();
  const model::TaskInstance instance = dataset.Instance();
  const mdp::RewardWeights weights;
  const mdp::RewardFunction reward(instance, weights);
  const mdp::CmdpSpec spec = mdp::CmdpSpec::FromInstance(instance);

  RecommendConfig rollout;
  rollout.start_item = dataset.default_start;

  for (std::uint64_t seed = 100; seed < 105; ++seed) {
    SarsaConfig serial_config = ParallelConfig(ParallelMode::kSerial, 1, 500,
                                               dataset.default_start);
    SarsaLearner serial(instance, reward, serial_config, seed);
    const mdp::QTable q_serial = serial.Learn();
    const model::Plan serial_plan =
        RecommendPlan(q_serial, instance, reward, rollout);
    ASSERT_TRUE(spec.Satisfied(serial_plan)) << "serial unsafe, seed " << seed;

    const SarsaConfig hogwild_config = ParallelConfig(
        ParallelMode::kHogwild, 4, 500, dataset.default_start);
    ParallelSarsaLearner hogwild(instance, reward, hogwild_config, seed);
    const mdp::QTable q_hogwild = hogwild.Learn();
    const model::Plan hogwild_plan =
        RecommendPlan(q_hogwild, instance, reward, rollout);
    EXPECT_TRUE(spec.Satisfied(hogwild_plan)) << "hogwild unsafe, seed "
                                              << seed;

    const double serial_score = core::ScorePlan(instance, serial_plan);
    const double hogwild_score = core::ScorePlan(instance, hogwild_plan);
    // On Univ-1 the learner's outcome is bimodal: every (seed, budget)
    // combination converges to one of two feasible policies (scores ~4.8
    // and ~10.0), and the *serial* learner itself lands on the low mode at
    // other seeds/budgets. Per-seed parity is therefore not a property
    // even of two serial runs; the statistical contract is "no policy
    // collapse": the Hogwild score must stay inside the serial support,
    // i.e. above a floor set between zero and the low mode.
    EXPECT_GE(hogwild_score, 0.45 * serial_score) << "seed " << seed;
  }
}

}  // namespace
}  // namespace rlplanner::rl

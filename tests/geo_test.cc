// Tests for the geo substrate: haversine distances and path lengths.

#include <gtest/gtest.h>

#include <vector>

#include "geo/latlng.h"

namespace rlplanner::geo {
namespace {

TEST(HaversineTest, ZeroDistanceForSamePoint) {
  const LatLng p{48.8584, 2.2945};
  EXPECT_DOUBLE_EQ(HaversineKm(p, p), 0.0);
}

TEST(HaversineTest, KnownLandmarkDistance) {
  // Eiffel Tower to Louvre: about 3.2 km.
  const LatLng eiffel{48.8584, 2.2945};
  const LatLng louvre{48.8606, 2.3376};
  const double d = HaversineKm(eiffel, louvre);
  EXPECT_NEAR(d, 3.2, 0.2);
}

TEST(HaversineTest, Symmetric) {
  const LatLng a{40.7580, -73.9855};
  const LatLng b{40.7061, -73.9969};
  EXPECT_DOUBLE_EQ(HaversineKm(a, b), HaversineKm(b, a));
}

TEST(HaversineTest, OneDegreeLatitudeIsAbout111Km) {
  const LatLng a{40.0, -74.0};
  const LatLng b{41.0, -74.0};
  EXPECT_NEAR(HaversineKm(a, b), 111.2, 1.0);
}

TEST(HaversineTest, TriangleInequalityHolds) {
  const LatLng a{40.7580, -73.9855};
  const LatLng b{40.7061, -73.9969};
  const LatLng c{40.7484, -73.9857};
  EXPECT_LE(HaversineKm(a, c), HaversineKm(a, b) + HaversineKm(b, c) + 1e-9);
}

TEST(PathLengthTest, EmptyAndSinglePointAreZero) {
  std::vector<LatLng> empty;
  EXPECT_DOUBLE_EQ(PathLengthKm(empty.begin(), empty.end()), 0.0);
  std::vector<LatLng> one = {{40.0, -74.0}};
  EXPECT_DOUBLE_EQ(PathLengthKm(one.begin(), one.end()), 0.0);
}

TEST(PathLengthTest, SumsConsecutiveLegs) {
  std::vector<LatLng> path = {{40.0, -74.0}, {40.1, -74.0}, {40.2, -74.0}};
  const double total = PathLengthKm(path.begin(), path.end());
  const double leg1 = HaversineKm(path[0], path[1]);
  const double leg2 = HaversineKm(path[1], path[2]);
  EXPECT_NEAR(total, leg1 + leg2, 1e-9);
}

}  // namespace
}  // namespace rlplanner::geo

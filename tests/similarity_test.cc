// Tests of the interleaving similarity (Eq. 6/7), including the paper's own
// worked example from Section III-B4.

#include <gtest/gtest.h>

#include "mdp/similarity.h"
#include "util/rng.h"

namespace rlplanner::mdp {
namespace {

using model::InterleavingTemplate;
using model::ItemType;
using model::TypeSequence;

TypeSequence Seq(const std::string& compact) {
  TypeSequence out;
  for (char c : compact) {
    out.push_back(c == 'P' ? ItemType::kPrimary : ItemType::kSecondary);
  }
  return out;
}

InterleavingTemplate Example1Template() {
  auto parsed =
      InterleavingTemplate::FromStrings({"PPSPSS", "PSSSPP", "PSSPPS"});
  EXPECT_TRUE(parsed.ok());
  return parsed.value();
}

TEST(MatchVectorTest, PaperWorkedExample) {
  // Session so far: {primary, secondary, primary, primary}; the paper gives
  // match vectors {[1,0,0,1],[1,1,0,0],[1,1,0,1]} against Example 1's IT.
  const TypeSequence session = Seq("PSPP");
  const InterleavingTemplate it = Example1Template();
  EXPECT_EQ(MatchVector(session, it.permutation(0)),
            (std::vector<int>{1, 0, 0, 1}));
  EXPECT_EQ(MatchVector(session, it.permutation(1)),
            (std::vector<int>{1, 1, 0, 0}));
  EXPECT_EQ(MatchVector(session, it.permutation(2)),
            (std::vector<int>{1, 1, 0, 1}));
}

TEST(SequenceSimilarityTest, PaperWorkedExampleSimValues) {
  // Sim(s, I)^4 = [0.5, 1, 1.5] per the paper.
  const TypeSequence session = Seq("PSPP");
  const InterleavingTemplate it = Example1Template();
  EXPECT_DOUBLE_EQ(SequenceSimilarity(session, it.permutation(0)), 0.5);
  EXPECT_DOUBLE_EQ(SequenceSimilarity(session, it.permutation(1)), 1.0);
  EXPECT_DOUBLE_EQ(SequenceSimilarity(session, it.permutation(2)), 1.5);
}

TEST(AggregateSimilarityTest, PaperWorkedExampleAvgSim) {
  // AvgSim(s, IT)^4 = 1.
  EXPECT_DOUBLE_EQ(AggregateSimilarity(Seq("PSPP"), Example1Template(),
                                       SimilarityMode::kAverage),
                   1.0);
}

TEST(AggregateSimilarityTest, MinimumVariantTakesWorstPermutation) {
  EXPECT_DOUBLE_EQ(AggregateSimilarity(Seq("PSPP"), Example1Template(),
                                       SimilarityMode::kMinimum),
                   0.5);
}

TEST(SequenceSimilarityTest, PerfectMatchScoresK) {
  // A full perfect match of a k-slot permutation scores k (this is why the
  // paper's gold standards score 10 and 15).
  const TypeSequence perm = Seq("PPSPSS");
  EXPECT_DOUBLE_EQ(SequenceSimilarity(perm, perm), 6.0);
}

TEST(SequenceSimilarityTest, EmptySequenceScoresZero) {
  EXPECT_DOUBLE_EQ(SequenceSimilarity({}, Seq("PPS")), 0.0);
}

TEST(SequenceSimilarityTest, TotalMismatchScoresZero) {
  EXPECT_DOUBLE_EQ(SequenceSimilarity(Seq("SSS"), Seq("PPP")), 0.0);
}

TEST(SequenceSimilarityTest, SequenceLongerThanPermutation) {
  // Positions beyond the permutation count as mismatches but still divide k.
  // seq PPPP vs perm PP: matches = 2, zeta = 2, k = 4 -> 1.0.
  EXPECT_DOUBLE_EQ(SequenceSimilarity(Seq("PPPP"), Seq("PP")), 1.0);
}

TEST(SequenceSimilarityTest, ConsecutiveRunWeighting) {
  // Same number of matches, different runs: [1,1,0,0] -> zeta 2 beats
  // [1,0,1,0] -> zeta 1.
  const double grouped = SequenceSimilarity(Seq("PPSS"), Seq("PPPP"));
  const double scattered = SequenceSimilarity(Seq("PSPS"), Seq("PPPP"));
  EXPECT_DOUBLE_EQ(grouped, 2.0 * 2.0 / 4.0);
  EXPECT_DOUBLE_EQ(scattered, 1.0 * 2.0 / 4.0);
  EXPECT_GT(grouped, scattered);
}

TEST(AggregateSimilarityTest, EmptyTemplateScoresZero) {
  InterleavingTemplate empty;
  EXPECT_DOUBLE_EQ(
      AggregateSimilarity(Seq("PS"), empty, SimilarityMode::kAverage), 0.0);
  EXPECT_DOUBLE_EQ(
      AggregateSimilarity(Seq("PS"), empty, SimilarityMode::kMinimum), 0.0);
}

TEST(BestSimilarityTest, PicksBestPermutation) {
  EXPECT_DOUBLE_EQ(BestSimilarity(Seq("PSPP"), Example1Template()), 1.5);
}

TEST(BestSimilarityTest, FullSequenceAgainstExactTemplate) {
  // The paper's m1->m2->m4->m5->m6->m3 example fully satisfies I_2 (PSSSPP).
  EXPECT_DOUBLE_EQ(BestSimilarity(Seq("PSSSPP"), Example1Template()), 6.0);
}

// Randomized equivalence: over 1000 random appends (25 random templates x
// 40 appends each), the incremental tracker must agree bit-for-bit with the
// batch recompute — both for ScoreAppend (the hot path's "what if I add this
// type" query) and for Score after the append is committed.
TEST(SimilarityTrackerTest, MatchesBatchRecomputeOnRandomSequences) {
  util::Rng rng(2024);
  int appends = 0;
  for (int trial = 0; trial < 25; ++trial) {
    InterleavingTemplate it;
    const int perms = 1 + static_cast<int>(rng.NextIndex(4));
    for (int p = 0; p < perms; ++p) {
      TypeSequence perm;
      const int len = 3 + static_cast<int>(rng.NextIndex(6));
      for (int i = 0; i < len; ++i) {
        perm.push_back(rng.NextBernoulli(0.5) ? ItemType::kPrimary
                                              : ItemType::kSecondary);
      }
      it.Add(std::move(perm));
    }
    SimilarityTracker tracker(it);
    TypeSequence seq;
    for (int step = 0; step < 40; ++step, ++appends) {
      const ItemType next = rng.NextBernoulli(0.5) ? ItemType::kPrimary
                                                   : ItemType::kSecondary;
      TypeSequence extended = seq;
      extended.push_back(next);
      for (auto mode : {SimilarityMode::kAverage, SimilarityMode::kMinimum}) {
        EXPECT_EQ(tracker.ScoreAppend(next, mode),
                  AggregateSimilarity(extended, it, mode))
            << "trial " << trial << " step " << step;
      }
      seq.push_back(next);
      tracker.Append(next);
      EXPECT_EQ(tracker.length(), seq.size());
      for (auto mode : {SimilarityMode::kAverage, SimilarityMode::kMinimum}) {
        EXPECT_EQ(tracker.Score(mode), AggregateSimilarity(seq, it, mode))
            << "trial " << trial << " step " << step;
      }
    }
  }
  EXPECT_EQ(appends, 1000);
}

TEST(SimilarityTrackerTest, EmptyTemplateScoresZero) {
  SimilarityTracker tracker{InterleavingTemplate{}};
  EXPECT_EQ(tracker.Score(SimilarityMode::kAverage), 0.0);
  EXPECT_EQ(tracker.ScoreAppend(ItemType::kPrimary, SimilarityMode::kMinimum),
            0.0);
}

// Property sweep: similarity is always within [0, k] and AvgSim <= BestSim.
class SimilarityPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SimilarityPropertyTest, BoundsAndDominance) {
  const int bits = GetParam();
  // Generate a deterministic pseudo-random P/S sequence from the bits.
  TypeSequence seq;
  for (int i = 0; i < 8; ++i) {
    seq.push_back((bits >> i) & 1 ? ItemType::kPrimary
                                  : ItemType::kSecondary);
  }
  auto it = InterleavingTemplate::FromStrings(
                {"PPSPSSPS", "PSPSPSPS", "PPSSPPSS"})
                .value();
  const double avg = AggregateSimilarity(seq, it, SimilarityMode::kAverage);
  const double min = AggregateSimilarity(seq, it, SimilarityMode::kMinimum);
  const double best = BestSimilarity(seq, it);
  EXPECT_GE(min, 0.0);
  EXPECT_LE(best, 8.0);
  EXPECT_LE(min, avg + 1e-12);
  EXPECT_LE(avg, best + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(AllPatterns, SimilarityPropertyTest,
                         ::testing::Range(0, 256));

}  // namespace
}  // namespace rlplanner::mdp

// Tests for the text substrate: tokenizer, stopwords, topic extraction.

#include <gtest/gtest.h>

#include "text/stopwords.h"
#include "text/tokenizer.h"
#include "text/topic_extractor.h"

namespace rlplanner::text {
namespace {

TEST(TokenizerTest, LowercasesAndSplitsOnNonAlnum) {
  EXPECT_EQ(Tokenize("Data Structures & Algorithms"),
            (std::vector<std::string>{"data", "structures", "algorithms"}));
}

TEST(TokenizerTest, DropsPureDigitTokens) {
  EXPECT_EQ(Tokenize("CS 675 Machine Learning"),
            (std::vector<std::string>{"cs", "machine", "learning"}));
}

TEST(TokenizerTest, KeepsAlphanumericMixes) {
  EXPECT_EQ(Tokenize("CS224N NLP"),
            (std::vector<std::string>{"cs224n", "nlp"}));
}

TEST(TokenizerTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("--- !!! 42 7").empty());
}

TEST(StopwordsTest, CommonWordsAreStopwords) {
  EXPECT_TRUE(IsStopword("the"));
  EXPECT_TRUE(IsStopword("and"));
  EXPECT_TRUE(IsStopword("introduction"));
  EXPECT_TRUE(IsStopword("topics"));
  EXPECT_TRUE(IsStopword("advanced"));
}

TEST(StopwordsTest, ContentWordsAreNot) {
  EXPECT_FALSE(IsStopword("clustering"));
  EXPECT_FALSE(IsStopword("machine"));
  EXPECT_FALSE(IsStopword("museum"));
  EXPECT_FALSE(IsStopword(""));
}

TEST(TopicExtractorTest, ExtractsNonStopwordsDeduplicated) {
  TopicExtractor extractor;
  const auto ids = extractor.ExtractTopics("Data Mining and Data Analytics");
  // "and" dropped, "data" deduplicated.
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(extractor.TopicName(ids[0]), "data");
  EXPECT_EQ(extractor.TopicName(ids[1]), "mining");
  EXPECT_EQ(extractor.TopicName(ids[2]), "analytics");
}

TEST(TopicExtractorTest, SharedVocabularyAcrossItems) {
  TopicExtractor extractor;
  const auto a = extractor.ExtractTopics("Machine Learning");
  const auto b = extractor.ExtractTopics("Deep Learning");
  EXPECT_EQ(extractor.vocabulary_size(), 3u);  // machine, learning, deep
  // "learning" has the same id in both.
  EXPECT_EQ(a[1], b[1]);
}

TEST(TopicExtractorTest, InternTopicIdempotent) {
  TopicExtractor extractor;
  const int first = extractor.InternTopic("museum");
  const int second = extractor.InternTopic("museum");
  EXPECT_EQ(first, second);
  EXPECT_EQ(extractor.TopicId("museum"), first);
  EXPECT_EQ(extractor.TopicId("nothere"), -1);
}

TEST(TopicExtractorTest, ToBitsetSetsOnlyGivenIds) {
  TopicExtractor extractor;
  extractor.InternTopic("a");
  extractor.InternTopic("b");
  extractor.InternTopic("c");
  const auto bits = extractor.ToBitset({0, 2});
  EXPECT_TRUE(bits.Test(0));
  EXPECT_FALSE(bits.Test(1));
  EXPECT_TRUE(bits.Test(2));
  EXPECT_EQ(bits.size(), 3u);
}

}  // namespace
}  // namespace rlplanner::text

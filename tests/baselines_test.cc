// Tests for the baselines: adapted OMEGA, greedy EDA, and the gold-standard
// constructor.

#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/eda.h"
#include "baselines/gold.h"
#include "baselines/omega.h"
#include "core/scoring.h"
#include "core/validation.h"
#include "datagen/course_data.h"
#include "datagen/trip_data.h"

namespace rlplanner::baselines {
namespace {

// -------------------------------------------------------------------- EDA --

TEST(EdaTest, ProducesFullLengthCoursePlan) {
  datagen::Dataset dataset = datagen::MakeUniv1DsCt();
  const model::TaskInstance instance = dataset.Instance();
  mdp::RewardWeights weights;
  const EdaGreedy eda(instance, weights);
  const model::Plan plan = eda.BuildPlan(1);
  EXPECT_EQ(static_cast<int>(plan.size()), instance.hard.TotalItems());
  // No repeats.
  auto items = plan.items();
  std::sort(items.begin(), items.end());
  EXPECT_EQ(std::adjacent_find(items.begin(), items.end()), items.end());
}

TEST(EdaTest, RandomTieBreakVariesAcrossSeeds) {
  datagen::Dataset dataset = datagen::MakeUniv1DsCt();
  const model::TaskInstance instance = dataset.Instance();
  mdp::RewardWeights weights;
  const EdaGreedy eda(instance, weights);
  const model::Plan a = eda.BuildPlan(1);
  bool any_different = false;
  for (std::uint64_t seed = 2; seed < 8 && !any_different; ++seed) {
    any_different = !(eda.BuildPlan(seed) == a);
  }
  EXPECT_TRUE(any_different);
}

TEST(EdaTest, DeterministicForSameSeed) {
  datagen::Dataset dataset = datagen::MakeUniv1DsCt();
  const model::TaskInstance instance = dataset.Instance();
  mdp::RewardWeights weights;
  const EdaGreedy eda(instance, weights);
  EXPECT_EQ(eda.BuildPlan(42), eda.BuildPlan(42));
}

TEST(EdaTest, TripPlansStayWithinTimeBudget) {
  datagen::Dataset dataset = datagen::MakeNycTrip();
  const model::TaskInstance instance = dataset.Instance();
  mdp::RewardWeights weights;
  const EdaGreedy eda(instance, weights);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const model::Plan plan = eda.BuildPlan(seed);
    EXPECT_LE(plan.TotalCredits(dataset.catalog),
              instance.hard.min_credits + 1e-9);
  }
}

TEST(EdaTest, SometimesViolatesHardConstraints) {
  // The paper's central observation: the greedy next-step recommender is
  // "unable to generate course plans and trip plans that satisfy the hard
  // constraints most of the time".
  datagen::Dataset dataset = datagen::MakeUniv2Ds();
  const model::TaskInstance instance = dataset.Instance();
  mdp::RewardWeights weights;
  weights.delta = 0.8;
  weights.beta = 0.2;
  weights.category_weights = {0.25, 0.01, 0.15, 0.42, 0.01, 0.16};
  const EdaGreedy eda(instance, weights);
  int violations = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    if (!core::ValidatePlan(instance, eda.BuildPlan(seed)).valid) {
      ++violations;
    }
  }
  EXPECT_GT(violations, 0);
}

// ------------------------------------------------------------------ OMEGA --

TEST(OmegaTest, TopologicalOrderRespectsPrereqs) {
  datagen::Dataset dataset = datagen::MakeUniv1DsCt();
  const model::TaskInstance instance = dataset.Instance();
  const Omega omega(instance);
  const auto order = omega.TopologicalOrder();
  ASSERT_EQ(order.size(), dataset.catalog.size());
  std::vector<int> position(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  for (const model::Item& item : dataset.catalog.items()) {
    for (model::ItemId pre : item.prereqs.ReferencedItems()) {
      EXPECT_LT(position[pre], position[item.id])
          << dataset.catalog.item(pre).code << " should precede "
          << item.code;
    }
  }
}

TEST(OmegaTest, PairUtilityCountsTopicUnion) {
  datagen::Dataset dataset = datagen::MakeTableIIToy();
  const model::TaskInstance instance = dataset.Instance();
  const Omega omega(instance);
  // m1 covers 2 topics, m2 covers 2 disjoint topics -> union 4; ideal
  // touch: m2's both topics are ideal (classification, clustering), m1's
  // none -> 4 + 0.5*2 = 5.
  EXPECT_DOUBLE_EQ(omega.PairUtility(0, 1), 5.0);
}

TEST(OmegaTest, PlanHasTargetLengthForCourses) {
  datagen::Dataset dataset = datagen::MakeUniv1DsCt();
  const model::TaskInstance instance = dataset.Instance();
  const Omega omega(instance);
  const model::Plan plan = omega.BuildPlan(3);
  EXPECT_EQ(static_cast<int>(plan.size()), instance.hard.TotalItems());
}

TEST(OmegaEdgeTest, EdgeVariantProducesBoundedPlan) {
  datagen::Dataset dataset = datagen::MakeUniv1DsCt();
  const model::TaskInstance instance = dataset.Instance();
  const Omega omega(instance);
  const model::Plan plan = omega.BuildPlanEdgeBased(7);
  EXPECT_LE(static_cast<int>(plan.size()), instance.hard.TotalItems());
  EXPECT_GE(plan.size(), 5u);
  // No repeats.
  auto items = plan.items();
  std::sort(items.begin(), items.end());
  EXPECT_EQ(std::adjacent_find(items.begin(), items.end()), items.end());
}

TEST(OmegaEdgeTest, EdgeVariantDiffersFromNodeGreedy) {
  datagen::Dataset dataset = datagen::MakeUniv1Cs();
  const model::TaskInstance instance = dataset.Instance();
  const Omega omega(instance);
  EXPECT_FALSE(omega.BuildPlan(3) == omega.BuildPlanEdgeBased(3));
}

TEST(OmegaEdgeTest, EdgeVariantAlsoConstraintOblivious) {
  // Like OMEGA, the edge-based variant usually violates P_hard.
  datagen::Dataset dataset = datagen::MakeUniv1DsCt();
  const model::TaskInstance instance = dataset.Instance();
  const Omega omega(instance);
  int valid = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    if (core::ValidatePlan(instance, omega.BuildPlanEdgeBased(seed)).valid) {
      ++valid;
    }
  }
  EXPECT_LE(valid, 3);
}

TEST(OmegaEdgeTest, TripEdgeVariantRespectsTimeBudget) {
  datagen::Dataset dataset = datagen::MakeNycTrip();
  const model::TaskInstance instance = dataset.Instance();
  const Omega omega(instance);
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    EXPECT_LE(omega.BuildPlanEdgeBased(seed).TotalCredits(dataset.catalog),
              instance.hard.min_credits + 1e-9);
  }
}

TEST(OmegaTest, UsuallyFailsHardConstraints) {
  // Faithful to Figure 1: "OMEGA fails to produce valid recommendations
  // most of the time, leading to 0 scores".
  for (datagen::Dataset dataset :
       {datagen::MakeUniv1DsCt(), datagen::MakeNycTrip()}) {
    const model::TaskInstance instance = dataset.Instance();
    const Omega omega(instance);
    int valid = 0;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      if (core::ValidatePlan(instance, omega.BuildPlan(seed)).valid) {
        ++valid;
      }
    }
    EXPECT_LE(valid, 3) << dataset.name;
  }
}

// ------------------------------------------------------------------- Gold --

TEST(GoldTest, CourseGoldIsValidAndScoresH) {
  for (datagen::Dataset dataset :
       {datagen::MakeUniv1DsCt(), datagen::MakeUniv1Cybersecurity(),
        datagen::MakeUniv1Cs(), datagen::MakeUniv2Ds()}) {
    const model::TaskInstance instance = dataset.Instance();
    auto gold = BuildGoldStandard(instance);
    ASSERT_TRUE(gold.ok()) << dataset.name;
    EXPECT_TRUE(core::ValidatePlan(instance, gold.value()).valid)
        << dataset.name;
    // "The gold standard scores are 10 for Univ-1 and 15 for Univ-2."
    EXPECT_DOUBLE_EQ(core::ScorePlan(instance, gold.value()),
                     instance.hard.TotalItems())
        << dataset.name;
  }
}

TEST(GoldTest, TripGoldIsValidAndNearPopularityCeiling) {
  for (datagen::Dataset dataset :
       {datagen::MakeNycTrip(), datagen::MakeParisTrip()}) {
    const model::TaskInstance instance = dataset.Instance();
    auto gold = BuildGoldStandard(instance);
    ASSERT_TRUE(gold.ok()) << dataset.name;
    EXPECT_TRUE(core::ValidatePlan(instance, gold.value()).valid)
        << dataset.name;
    // "The average of gold standard score is 5, the highest popularity
    // score of any POI" — allow a small margin for the synthetic POIs.
    EXPECT_GE(core::ScorePlan(instance, gold.value()), 4.5) << dataset.name;
  }
}

TEST(GoldTest, DistinctSeedsGiveDistinctHandcraftedPlans) {
  datagen::Dataset dataset = datagen::MakeUniv1DsCt();
  const model::TaskInstance instance = dataset.Instance();
  auto a = BuildGoldStandard(instance, 1);
  auto b = BuildGoldStandard(instance, 2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(a.value() == b.value());
}

TEST(GoldTest, FailsWhenNoValidPlanExists) {
  // Demand more primaries than the catalog offers by pushing the split.
  datagen::Dataset dataset = datagen::MakeTableIIToy();
  dataset.hard.num_primary = 4;  // only 3 primaries exist
  dataset.hard.num_secondary = 2;
  auto templates = model::InterleavingTemplate::FromStrings({"PPPPSS"});
  dataset.soft.interleaving = std::move(templates).value();
  const model::TaskInstance instance = dataset.Instance();
  auto gold = BuildGoldStandard(instance);
  EXPECT_FALSE(gold.ok());
}

}  // namespace
}  // namespace rlplanner::baselines

// Tests for the observability layer (src/obs/): exactness of the sharded
// counters under concurrent writers, within-bucket-exact histograms, the
// registry's validation and idempotent-registration contract, golden-file
// checks for both exporters (metrics and Chrome traces), ScopedSpan
// nesting, and the trace collector's exact-overflow accounting. The
// concurrency tests double as the sanitizer workload for the sharded cells
// and the single-writer trace rings.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "obs/debugz.h"
#include "obs/export.h"
#include "obs/histogram.h"
#include "obs/metric.h"
#include "obs/profiler.h"
#include "obs/registry.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "obs/training_metrics.h"
#include "util/json.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace rlplanner::obs {
namespace {

// ------------------------------------------------------------ counters --

TEST(ObsCounterTest, ConcurrentIncrementsAreExact) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.Total(), kThreads * kPerThread);
}

TEST(ObsCounterTest, IncrementByNAndDisabled) {
  Counter counter;
  counter.Increment(41);
  counter.Increment();
  EXPECT_EQ(counter.Total(), 42u);

  Counter disabled(/*enabled=*/false);
  disabled.Increment(1000);
  EXPECT_EQ(disabled.Total(), 0u);
  EXPECT_FALSE(disabled.enabled());
}

TEST(ObsGaugeTest, ConcurrentAddsSumExactly) {
  Gauge gauge;
  gauge.Set(100.0);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < kPerThread; ++i) gauge.Add(1.0);
    });
  }
  for (auto& thread : threads) thread.join();
  // Every Add is a CAS loop, and the values are small integers, so the sum
  // is exact in double arithmetic.
  EXPECT_EQ(gauge.Value(), 100.0 + kThreads * kPerThread);
}

// ----------------------------------------------------------- histogram --

TEST(ObsHistogramTest, BucketBoundariesAreConsistent) {
  // Every value must land in a bucket whose inclusive upper bound is >= the
  // value, and (for non-first buckets) whose predecessor's bound is < it —
  // i.e. BucketUpperBound() really is the boundary BucketIndex() uses.
  std::vector<std::uint64_t> probes;
  for (std::uint64_t v = 0; v < 4096; ++v) probes.push_back(v);
  for (int shift = 12; shift < 43; ++shift) {
    const std::uint64_t base = std::uint64_t{1} << shift;
    probes.insert(probes.end(), {base - 1, base, base + 1, base + base / 3});
  }
  probes.push_back((std::uint64_t{1} << 43) - 1);  // top of the range
  for (std::uint64_t value : probes) {
    const int index = Histogram::BucketIndex(value);
    ASSERT_GE(index, 0);
    ASSERT_LT(index, Histogram::kNumBuckets);
    EXPECT_GE(Histogram::BucketUpperBound(index), value) << value;
    if (index > 0) {
      EXPECT_LT(Histogram::BucketUpperBound(index - 1), value) << value;
    }
  }
  // Bounds are strictly increasing across the whole range.
  for (int i = 1; i < Histogram::kNumBuckets; ++i) {
    EXPECT_LT(Histogram::BucketUpperBound(i - 1), Histogram::BucketUpperBound(i));
  }
  // Values past the covered range clamp into the last bucket.
  EXPECT_EQ(Histogram::BucketIndex(std::uint64_t{1} << 43),
            Histogram::kNumBuckets - 1);
  EXPECT_EQ(Histogram::BucketIndex(~std::uint64_t{0}),
            Histogram::kNumBuckets - 1);
}

TEST(ObsHistogramTest, QuantileWithinRelativeErrorAndClampedToMax) {
  Histogram histogram;
  for (std::uint64_t v = 1; v <= 1000; ++v) histogram.Record(v);
  EXPECT_EQ(histogram.count(), 1000u);
  EXPECT_EQ(histogram.sum(), 500500u);
  EXPECT_EQ(histogram.Max(), 1000u);
  EXPECT_NEAR(histogram.Mean(), 500.5, 1e-9);
  // 8 sub-buckets per octave bound the relative quantile error by 12.5%.
  EXPECT_NEAR(histogram.Quantile(0.50), 500.0, 0.125 * 500.0);
  EXPECT_NEAR(histogram.Quantile(0.95), 950.0, 0.125 * 950.0);
  // The top quantile may not exceed the exact observed maximum.
  EXPECT_LE(histogram.Quantile(0.999), 1000.0);
  EXPECT_EQ(histogram.Quantile(1.0), 1000.0);
}

TEST(ObsHistogramTest, QuantileMatchesSortedSampleOracle) {
  // Randomized property check against the exact oracle: for any sample, the
  // histogram quantile is the bucket upper bound of the observation the
  // oracle picks — so it is >= the oracle value and within the documented
  // 12.5% relative error (values below kSubBuckets are bucket-exact).
  std::mt19937_64 rng(20260805);
  const double qs[] = {0.0, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0};
  for (int trial = 0; trial < 25; ++trial) {
    Histogram histogram;
    std::vector<std::uint64_t> values;
    const std::size_t n = 1 + static_cast<std::size_t>(rng() % 3000);
    values.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Random octave spread: anything from single digits to ~2^40.
      const std::uint64_t value = rng() >> (24 + rng() % 40);
      values.push_back(value);
      histogram.Record(value);
    }
    std::sort(values.begin(), values.end());
    for (const double q : qs) {
      const std::size_t rank = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 std::ceil(q * static_cast<double>(n))));
      const auto oracle = static_cast<double>(values[rank - 1]);
      const double estimate = histogram.Quantile(q);
      EXPECT_GE(estimate, oracle) << "n=" << n << " q=" << q;
      EXPECT_LE(estimate, oracle * 1.125 + 1e-9) << "n=" << n << " q=" << q;
    }
    // The top quantile is clamped to the exact maximum, not a bucket bound.
    EXPECT_EQ(histogram.Quantile(1.0), static_cast<double>(values.back()));
  }
}

TEST(ObsHistogramTest, ConcurrentRecordsMatchSerialReplayPerBucket) {
  // 8 writers record deterministic per-thread streams; afterwards every
  // bucket count, the total count, and the sum must equal a serial replay
  // of the same stream — the sharded bookkeeping loses nothing.
  Histogram concurrent;
  Histogram serial;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  auto value_of = [](int t, int i) {
    // SplitMix64-ish scramble for a spread of octaves, deterministic.
    std::uint64_t x = static_cast<std::uint64_t>(t) * 0x9e3779b97f4a7c15ull +
                      static_cast<std::uint64_t>(i);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    return x % 1000000;
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&concurrent, t, &value_of] {
      for (int i = 0; i < kPerThread; ++i) concurrent.Record(value_of(t, i));
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) serial.Record(value_of(t, i));
  }
  EXPECT_EQ(concurrent.count(), serial.count());
  EXPECT_EQ(concurrent.sum(), serial.sum());
  EXPECT_EQ(concurrent.Max(), serial.Max());
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    ASSERT_EQ(concurrent.BucketCount(i), serial.BucketCount(i)) << i;
  }
}

TEST(ObsHistogramTest, RecordRoundedClampsNegativeToZero) {
  Histogram histogram;
  histogram.RecordRounded(-3.7);
  histogram.RecordRounded(0.49);
  histogram.RecordRounded(2.51);
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_EQ(histogram.BucketCount(Histogram::BucketIndex(0)), 2u);
  EXPECT_EQ(histogram.BucketCount(Histogram::BucketIndex(3)), 1u);
}

// ------------------------------------------------------------ registry --

TEST(ObsRegistryTest, RegistrationIsIdempotentSamePointer) {
  Registry registry;
  auto first = registry.GetCounter("demo_total", "Demo.", {{"k", "v"}});
  auto second = registry.GetCounter("demo_total", "Demo.", {{"k", "v"}});
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value(), second.value());
  // A different label set is a distinct instance.
  auto third = registry.GetCounter("demo_total", "Demo.", {{"k", "w"}});
  ASSERT_TRUE(third.ok());
  EXPECT_NE(first.value(), third.value());
}

TEST(ObsRegistryTest, KindConflictIsInvalidArgument) {
  Registry registry;
  ASSERT_TRUE(registry.GetCounter("demo_total", "Demo.").ok());
  auto conflict = registry.GetGauge("demo_total", "Demo.");
  ASSERT_FALSE(conflict.ok());
  EXPECT_EQ(conflict.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(ObsRegistryTest, MalformedNamesAndLabelsAreRejected) {
  Registry registry;
  for (const char* name : {"", "1bad", "bad-dash", "bad name", "bad\xc3\xa9"}) {
    auto result = registry.GetCounter(name, "Help.");
    ASSERT_FALSE(result.ok()) << name;
    EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument)
        << name;
  }
  const std::vector<std::vector<Label>> bad_labels = {
      {{"", "v"}},                  // empty key
      {{"1bad", "v"}},              // bad first char
      {{"bad-dash", "v"}},          // bad char
      {{"__reserved", "v"}},        // reserved prefix
      {{"dup", "a"}, {"dup", "b"}}  // duplicate key
  };
  for (const auto& labels : bad_labels) {
    auto result = registry.GetCounter("ok_total", "Help.", labels);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
  }
  // Colons are legal in metric names (recording rules), not in label keys.
  EXPECT_TRUE(registry.GetCounter("ns:demo_total", "Help.").ok());
}

TEST(ObsRegistryTest, DisabledRegistryRecordsNothingAndCollectsEmpty) {
  Registry registry(/*enabled=*/false);
  auto counter = registry.GetCounter("demo_total", "Demo.");
  auto histogram = registry.GetHistogram("demo_us", "Demo.");
  ASSERT_TRUE(counter.ok());
  ASSERT_TRUE(histogram.ok());
  counter.value()->Increment(100);
  histogram.value()->Record(7);
  EXPECT_EQ(counter.value()->Total(), 0u);
  EXPECT_EQ(histogram.value()->count(), 0u);
  EXPECT_TRUE(registry.Collect().metrics.empty());
}

TEST(ObsRegistryTest, EnabledRegistryStartsWithBuildInfoAndStartTime) {
  Registry registry;
  const MetricsSnapshot snapshot = registry.Collect();
  bool saw_build_info = false;
  bool saw_start_time = false;
  for (const MetricSnapshot& m : snapshot.metrics) {
    if (m.name == "rlplanner_build_info") {
      saw_build_info = true;
      EXPECT_EQ(m.kind, MetricKind::kGauge);
      EXPECT_EQ(m.value, 1.0);  // info pattern: the labels carry the data
      ASSERT_EQ(m.labels.size(), 2u);
      EXPECT_EQ(m.labels[0].key, "build_type");
      EXPECT_EQ(m.labels[0].value, BuildType());
      EXPECT_EQ(m.labels[1].key, "version");
      EXPECT_EQ(m.labels[1].value, kBuildVersion);
    } else if (m.name == "process_start_time_seconds") {
      saw_start_time = true;
      EXPECT_EQ(m.kind, MetricKind::kGauge);
      // A sane Unix timestamp (after 2020), and shared process-wide: a
      // second registry reports the identical value.
      EXPECT_GT(m.value, 1577836800.0);
    }
  }
  EXPECT_TRUE(saw_build_info);
  EXPECT_TRUE(saw_start_time);

  Registry other;
  double first = 0.0, second = 0.0;
  for (const MetricSnapshot& m : registry.Collect().metrics) {
    if (m.name == "process_start_time_seconds") first = m.value;
  }
  for (const MetricSnapshot& m : other.Collect().metrics) {
    if (m.name == "process_start_time_seconds") second = m.value;
  }
  EXPECT_EQ(first, second);
}

TEST(ObsRegistryTest, ConcurrentRegistrationAndWritesAreExact) {
  // Threads race to register the same counter and a per-thread labelled
  // sibling, then hammer both. Registration must converge on one instance
  // per (name, labels) and no increment may be lost.
  Registry registry;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      Counter* shared =
          registry.GetCounter("stress_total", "Shared.").value();
      Counter* mine = registry
                          .GetCounter("stress_by_thread_total", "Per thread.",
                                      {{"thread", std::to_string(t)}})
                          .value();
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        shared->Increment();
        mine->Increment();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const MetricsSnapshot snapshot = registry.Collect();
  std::uint64_t shared_total = 0;
  std::uint64_t labelled_instances = 0;
  for (const MetricSnapshot& m : snapshot.metrics) {
    if (m.name == "stress_total") {
      shared_total = static_cast<std::uint64_t>(m.value);
    } else if (m.name == "stress_by_thread_total") {
      ++labelled_instances;
      EXPECT_EQ(static_cast<std::uint64_t>(m.value), kPerThread);
    }
  }
  EXPECT_EQ(shared_total, kThreads * kPerThread);
  EXPECT_EQ(labelled_instances, static_cast<std::uint64_t>(kThreads));
}

// ----------------------------------------------------------- exporters --

// One registry exercising every exporter feature: several label sets under
// one name, label-value escaping, a gauge with a fractional value, and a
// histogram with known buckets. The registry's two default metrics are part
// of the golden output; process_start_time_seconds is re-Get (registration
// is idempotent) and pinned so the goldens are deterministic.
void FillGoldenRegistry(Registry& registry) {
  registry
      .GetGauge("process_start_time_seconds",
                "Unix time the process started, in seconds.")
      .value()
      ->Set(1234567890.5);
  Counter* escaped = registry
                         .GetCounter("demo_requests_total",
                                     "Total \"demo\" requests.",
                                     {{"path", "a\\b\"c\nd"}})
                         .value();
  escaped->Increment(3);
  registry
      .GetCounter("demo_requests_total", "Total \"demo\" requests.",
                  {{"path", "plain"}})
      .value()
      ->Increment();
  registry.GetGauge("demo_queue_depth", "Current queue depth.")
      .value()
      ->Set(2.5);
  Histogram* histogram =
      registry.GetHistogram("demo_latency_us", "Demo latency.").value();
  histogram->Record(1);
  histogram->Record(2);
  histogram->Record(2);
  histogram->Record(250);  // octave 4, bucket upper bound 255
}

TEST(ObsExportTest, PrometheusTextGolden) {
  Registry registry;
  FillGoldenRegistry(registry);
  const std::string expected =
      "# HELP demo_latency_us Demo latency.\n"
      "# TYPE demo_latency_us histogram\n"
      "demo_latency_us_bucket{le=\"1\"} 1\n"
      "demo_latency_us_bucket{le=\"2\"} 3\n"
      "demo_latency_us_bucket{le=\"255\"} 4\n"
      "demo_latency_us_bucket{le=\"+Inf\"} 4\n"
      "demo_latency_us_sum 255\n"
      "demo_latency_us_count 4\n"
      "# HELP demo_queue_depth Current queue depth.\n"
      "# TYPE demo_queue_depth gauge\n"
      "demo_queue_depth 2.5\n"
      "# HELP demo_requests_total Total \"demo\" requests.\n"
      "# TYPE demo_requests_total counter\n"
      "demo_requests_total{path=\"a\\\\b\\\"c\\nd\"} 3\n"
      "demo_requests_total{path=\"plain\"} 1\n"
      "# HELP process_start_time_seconds Unix time the process started, in "
      "seconds.\n"
      "# TYPE process_start_time_seconds gauge\n"
      "process_start_time_seconds 1234567890.5\n"
      "# HELP rlplanner_build_info Build metadata; the value is always 1 "
      "(Prometheus info pattern).\n"
      "# TYPE rlplanner_build_info gauge\n"
      "rlplanner_build_info{build_type=\"" +
      std::string(BuildType()) + "\",version=\"" + kBuildVersion +
      "\"} 1\n";
  EXPECT_EQ(ToPrometheusText(registry.Collect()), expected);
}

TEST(ObsExportTest, JsonGolden) {
  Registry registry;
  FillGoldenRegistry(registry);
  const std::string expected =
      "{\"metrics\": ["
      "{\"name\": \"demo_latency_us\", \"kind\": \"histogram\", "
      "\"labels\": {}, \"count\": 4, \"sum\": 255, \"max\": 250, "
      "\"mean\": 63.75, \"p50\": 2, \"p95\": 250, \"p99\": 250, "
      "\"buckets\": [{\"le\": 1, \"count\": 1}, {\"le\": 2, \"count\": 3}, "
      "{\"le\": 255, \"count\": 4}]}, "
      "{\"name\": \"demo_queue_depth\", \"kind\": \"gauge\", "
      "\"labels\": {}, \"value\": 2.5}, "
      "{\"name\": \"demo_requests_total\", \"kind\": \"counter\", "
      "\"labels\": {\"path\": \"a\\\\b\\\"c\\nd\"}, \"value\": 3}, "
      "{\"name\": \"demo_requests_total\", \"kind\": \"counter\", "
      "\"labels\": {\"path\": \"plain\"}, \"value\": 1}, "
      "{\"name\": \"process_start_time_seconds\", \"kind\": \"gauge\", "
      "\"labels\": {}, \"value\": 1234567890.5}, "
      "{\"name\": \"rlplanner_build_info\", \"kind\": \"gauge\", "
      "\"labels\": {\"build_type\": \"" +
      std::string(BuildType()) + "\", \"version\": \"" + kBuildVersion +
      "\"}, \"value\": 1}"
      "]}";
  EXPECT_EQ(ToJson(registry.Collect()), expected);
}

TEST(ObsExportTest, FormatMetricValueRoundTrips) {
  EXPECT_EQ(FormatMetricValue(0.0), "0");
  EXPECT_EQ(FormatMetricValue(42.0), "42");
  EXPECT_EQ(FormatMetricValue(-7.0), "-7");
  EXPECT_EQ(FormatMetricValue(2.5), "2.5");
  EXPECT_EQ(FormatMetricValue(0.1), "0.1");
  const double awkward = 1.0 / 3.0;
  EXPECT_EQ(std::strtod(FormatMetricValue(awkward).c_str(), nullptr),
            awkward);
}

// --------------------------------------------------------------- spans --

TEST(ObsSpanTest, NestingLinksParentsAndRecordsDurations) {
  Registry registry;
  EXPECT_EQ(ScopedSpan::Current(), nullptr);
  {
    ScopedSpan outer(&registry, "round");
    EXPECT_EQ(outer.depth(), 0);
    EXPECT_EQ(outer.parent(), nullptr);
    EXPECT_EQ(ScopedSpan::Current(), &outer);
    {
      ScopedSpan inner(&registry, "merge");
      EXPECT_EQ(inner.depth(), 1);
      EXPECT_EQ(inner.parent(), &outer);
      EXPECT_EQ(ScopedSpan::Current(), &inner);
    }
    EXPECT_EQ(ScopedSpan::Current(), &outer);
  }
  EXPECT_EQ(ScopedSpan::Current(), nullptr);

  // Both spans recorded one observation each, linked by the parent label.
  int seen = 0;
  for (const MetricSnapshot& m : registry.Collect().metrics) {
    if (m.name != "span_duration_us") continue;
    ASSERT_EQ(m.labels.size(), 2u);  // parent, span (sorted by key)
    EXPECT_EQ(m.labels[0].key, "parent");
    EXPECT_EQ(m.labels[1].key, "span");
    if (m.labels[1].value == "round") {
      EXPECT_EQ(m.labels[0].value, "");
    }
    if (m.labels[1].value == "merge") {
      EXPECT_EQ(m.labels[0].value, "round");
    }
    EXPECT_EQ(m.count, 1u);
    ++seen;
  }
  EXPECT_EQ(seen, 2);
}

TEST(ObsSpanTest, NullAndDisabledRegistriesAreNoOps) {
  {
    ScopedSpan span(nullptr, "quiet");
    EXPECT_EQ(span.depth(), 0);
  }
  Registry disabled(/*enabled=*/false);
  {
    ScopedSpan span(&disabled, "quiet");
  }
  EXPECT_TRUE(disabled.Collect().metrics.empty());
}

TEST(ObsSpanTest, AttachedCollectorReceivesSpanEventWithArgs) {
  TraceCollector trace;
  {
    ScopedSpan span(nullptr, "plan", &trace);
    EXPECT_TRUE(span.traced());
    span.AddArg("version", std::uint64_t{7});
    span.AddArg("status", "ok");
  }
  EXPECT_EQ(trace.emitted_total(), 1u);
  const std::string json = trace.ToChromeTrace();
  EXPECT_NE(json.find("\"name\": \"plan\""), std::string::npos);
  EXPECT_NE(json.find("\"version\": \"7\""), std::string::npos);
  EXPECT_NE(json.find("\"status\": \"ok\""), std::string::npos);
}

TEST(ObsSpanTest, DisabledCollectorResolvesToUntraced) {
  TraceCollectorConfig config;
  config.enabled = false;
  TraceCollector trace(config);
  {
    ScopedSpan span(nullptr, "quiet", &trace);
    // The constructor resolves a disabled collector to null, so the span is
    // back on the one-branch path and AddArg is a no-op.
    EXPECT_FALSE(span.traced());
    span.AddArg("ignored", "value");
  }
  EXPECT_EQ(trace.emitted_total(), 0u);
  EXPECT_EQ(trace.dropped_total(), 0u);
}

TEST(ObsSpanTest, PoolWorkersGetTheirOwnRootSpans) {
  // The parent chain is thread-local: a span opened on a pool worker is a
  // root even while the submitting thread holds a live span. Indices that
  // run on the caller (ParallelFor callers participate) nest under it.
  Registry registry;
  util::ThreadPool pool(3);
  constexpr std::size_t kTasks = 16;
  struct Seen {
    int depth = -1;
    bool parent_is_outer = false;
    std::thread::id tid;
  };
  std::vector<Seen> seen(kTasks);
  const std::thread::id caller = std::this_thread::get_id();
  {
    ScopedSpan outer(&registry, "outer");
    pool.ParallelFor(kTasks, [&](std::size_t i) {
      ScopedSpan span(&registry, "task");
      seen[i] = {span.depth(), span.parent() == &outer,
                 std::this_thread::get_id()};
    });
  }
  for (const Seen& s : seen) {
    ASSERT_GE(s.depth, 0);
    if (s.tid == caller) {
      EXPECT_EQ(s.depth, 1);
      EXPECT_TRUE(s.parent_is_outer);
    } else {
      EXPECT_EQ(s.depth, 0);
      EXPECT_FALSE(s.parent_is_outer);
    }
  }
}

// --------------------------------------------------------------- traces --

TEST(ObsTraceTest, ChromeTraceGoldenPinsFullJson) {
  // Fixed timestamps via EmitAt make the whole export deterministic, so the
  // golden pins everything: the process/thread metadata records, event
  // ordering, µs conversion, arg rendering, and JSON escaping in names and
  // arg values.
  TraceCollector trace;
  trace.SetCurrentThreadName("main");
  trace.EmitAt("train_round", 1000, 5000, {{"round", "0"}, {"safe", "true"}});
  trace.EmitAt("train_merge", 2500, 3500, {{"round", "0"}});
  trace.EmitAt("note \"q\"\\", 4000, 4000, {{"msg", "line\nbreak"}});
  const std::string expected =
      "{\"traceEvents\": [\n"
      "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, "
      "\"args\": {\"name\": \"rlplanner\"}},\n"
      "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, "
      "\"args\": {\"name\": \"main\"}},\n"
      "{\"name\": \"train_round\", \"ph\": \"X\", \"pid\": 1, \"tid\": 0, "
      "\"ts\": 1, \"dur\": 4, \"args\": {\"round\": \"0\", "
      "\"safe\": \"true\"}},\n"
      "{\"name\": \"train_merge\", \"ph\": \"X\", \"pid\": 1, \"tid\": 0, "
      "\"ts\": 2.5, \"dur\": 1, \"args\": {\"round\": \"0\"}},\n"
      "{\"name\": \"note \\\"q\\\"\\\\\", \"ph\": \"X\", \"pid\": 1, "
      "\"tid\": 0, \"ts\": 4, \"dur\": 0, \"args\": "
      "{\"msg\": \"line\\nbreak\"}}\n"
      "],\n"
      "\"displayTimeUnit\": \"ms\",\n"
      "\"otherData\": {\"trace_events_emitted\": 3, "
      "\"trace_events_dropped\": 0}}";
  EXPECT_EQ(trace.ToChromeTrace(), expected);
  EXPECT_EQ(trace.emitted_total(), 3u);
  EXPECT_EQ(trace.dropped_total(), 0u);
}

TEST(ObsTraceTest, ArgValuesTruncateAndExtraArgsAreDropped) {
  TraceCollector trace;
  const std::string long_value(3 * kTraceArgValueCap, 'x');
  trace.EmitAt("ev", 0, 1,
               {{"k", long_value},
                {"a1", "1"},
                {"a2", "2"},
                {"a3", "3"},
                {"beyond_cap", "dropped"}});
  const std::string json = trace.ToChromeTrace();
  // Values are cut at the fixed cap (kTraceArgValueCap - 1 payload chars)...
  EXPECT_NE(json.find("\"k\": \"" + std::string(kTraceArgValueCap - 1, 'x') +
                      "\""),
            std::string::npos);
  EXPECT_EQ(json.find(std::string(kTraceArgValueCap, 'x')),
            std::string::npos);
  // ...and args past kMaxTraceArgs are silently ignored.
  EXPECT_NE(json.find("\"a3\": \"3\""), std::string::npos);
  EXPECT_EQ(json.find("beyond_cap"), std::string::npos);
}

TEST(ObsTraceTest, DisabledCollectorRecordsNothing) {
  Registry registry;
  TraceCollectorConfig config;
  config.enabled = false;
  config.metrics = &registry;
  TraceCollector trace(config);
  trace.EmitAt("ev", 0, 1);
  trace.SetCurrentThreadName("main");
  EXPECT_FALSE(trace.enabled());
  EXPECT_EQ(trace.emitted_total(), 0u);
  EXPECT_EQ(trace.dropped_total(), 0u);
  // No thread ever registered, so the export is just process metadata.
  EXPECT_EQ(trace.ToChromeTrace().find("thread_name"), std::string::npos);
  // A disabled collector does not register the dropped counter either.
  for (const MetricSnapshot& m : registry.Collect().metrics) {
    EXPECT_NE(m.name, "trace_events_dropped_total");
  }
}

TEST(ObsTraceTest, OverflowAccountingIsExactAcrossThreads) {
  // Four threads hammer a collector whose budget covers exactly two rings:
  // two threads fill 128 events each, the other two get zero-capacity
  // buffers and drop everything. Every attempt must be accounted for, both
  // in the collector and in the registry counter.
  Registry registry;
  TraceCollectorConfig config;
  config.events_per_thread = 128;
  config.memory_budget_bytes = 2 * 128 * sizeof(TraceEvent);
  config.metrics = &registry;
  TraceCollector trace(config);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&trace] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        trace.EmitAt("ev", i, i + 1, {{"i", "x"}});
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const std::uint64_t attempted = kThreads * kPerThread;
  EXPECT_EQ(trace.emitted_total(), 2u * 128u);
  EXPECT_EQ(trace.dropped_total(), attempted - 2u * 128u);
  EXPECT_EQ(trace.emitted_total() + trace.dropped_total(), attempted);
  std::uint64_t counter = 0;
  for (const MetricSnapshot& m : registry.Collect().metrics) {
    if (m.name == "trace_events_dropped_total") {
      counter = static_cast<std::uint64_t>(m.value);
    }
  }
  EXPECT_EQ(counter, trace.dropped_total());
  // The export agrees with the accessors.
  const std::string json = trace.ToChromeTrace();
  EXPECT_NE(json.find("\"trace_events_emitted\": 256"), std::string::npos);
  EXPECT_NE(json.find("\"trace_events_dropped\": " +
                      std::to_string(attempted - 256)),
            std::string::npos);
}

TEST(ObsTraceTest, ConcurrentEmitAndExportAreCoherent) {
  // The exporter may run while emitters are live: it must only see fully
  // published events (acquire/release on the ring size) and never tear.
  // This is the sanitizer workload for the single-writer rings.
  TraceCollectorConfig config;
  config.events_per_thread = 512;
  TraceCollector trace(config);
  std::atomic<bool> stop{false};
  std::thread reader([&trace, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string json = trace.ToChromeTrace();
      ASSERT_NE(json.find("\"traceEvents\""), std::string::npos);
    }
  });
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 2000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&trace] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        trace.EmitAt("ev", i, i + 1, {{"status", "ok"}});
      }
    });
  }
  for (auto& writer : writers) writer.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(trace.emitted_total() + trace.dropped_total(),
            kThreads * kPerThread);
  EXPECT_EQ(trace.emitted_total(), 4u * 512u);
}

// ---------------------------------------------------- training metrics --

TEST(ObsTrainingMetricsTest, NullRegistryRecordingIsANoOp) {
  TrainingMetrics metrics(nullptr);
  metrics.RecordStep(0.5);
  metrics.RecordEpisode();
  metrics.RecordMergeBarrierWait(10);
  TrainingRoundSample sample;
  sample.round = 1;
  sample.episodes = 20;
  sample.safe = false;
  metrics.RecordRound(sample);
  EXPECT_EQ(metrics.registry(), nullptr);
  EXPECT_TRUE(metrics.rounds().empty());
}

TEST(ObsTrainingMetricsTest, RecordsIntoRegistryAndRendersRoundsJson) {
  Registry registry;
  TrainingMetrics metrics(&registry);
  metrics.RecordStep(-0.25);
  metrics.RecordStep(0.5);
  metrics.RecordEpisode();
  TrainingRoundSample sample;
  sample.round = 1;
  sample.episodes = 1;
  sample.seconds = 0.5;
  sample.episodes_per_sec = 2.0;
  sample.epsilon = 0.125;
  sample.safe = true;
  metrics.RecordRound(sample);

  std::uint64_t steps = 0, episodes = 0, rounds = 0, violations = 0;
  std::uint64_t td_count = 0;
  for (const MetricSnapshot& m : registry.Collect().metrics) {
    if (m.name == "train_steps_total") {
      steps = static_cast<std::uint64_t>(m.value);
    } else if (m.name == "train_episodes_total") {
      episodes = static_cast<std::uint64_t>(m.value);
    } else if (m.name == "train_rounds_total") {
      rounds = static_cast<std::uint64_t>(m.value);
    } else if (m.name == "train_round_violations_total") {
      violations = static_cast<std::uint64_t>(m.value);
    } else if (m.name == "train_td_error_abs_micro") {
      td_count = m.count;
    }
  }
  EXPECT_EQ(steps, 2u);
  EXPECT_EQ(episodes, 1u);
  EXPECT_EQ(rounds, 1u);
  EXPECT_EQ(violations, 0u);
  EXPECT_EQ(td_count, 2u);  // |−0.25|·1e6 and |0.5|·1e6

  EXPECT_EQ(TrainingRoundsJsonArray(metrics.rounds()),
            "[{\"round\": 1, \"episodes\": 1, \"seconds\": 0.5, "
            "\"episodes_per_sec\": 2, \"epsilon\": 0.125, "
            "\"safe\": true}]");
}

// --------------------------------------------------------- exemplars --

TEST(ObsExemplarTest, CapturesLatestTracedObservationPerBucket) {
  Histogram histogram;
  histogram.EnableExemplars();
  EXPECT_TRUE(histogram.exemplars_enabled());
  histogram.Record(100, /*trace_id=*/7, /*version=*/3);
  histogram.Record(101, /*trace_id=*/8, /*version=*/4);  // same bucket: wins
  histogram.Record(1u << 20, /*trace_id=*/9, /*version=*/5);

  const std::vector<HistogramExemplar> exemplars =
      histogram.CollectExemplars();
  ASSERT_EQ(exemplars.size(), 2u);
  EXPECT_EQ(exemplars[0].bucket, Histogram::BucketIndex(101));
  EXPECT_EQ(exemplars[0].value, 101u);
  EXPECT_EQ(exemplars[0].trace_id, 8u);
  EXPECT_EQ(exemplars[0].version, 4u);
  EXPECT_EQ(exemplars[1].bucket, Histogram::BucketIndex(1u << 20));
  EXPECT_EQ(exemplars[1].trace_id, 9u);
}

TEST(ObsExemplarTest, UntracedOrDisabledObservationsCaptureNothing) {
  Histogram histogram;
  histogram.Record(100, /*trace_id=*/1, /*version=*/1);  // not enabled yet
  histogram.EnableExemplars();
  histogram.EnableExemplars();                            // idempotent
  histogram.Record(100, /*trace_id=*/0, /*version=*/1);   // trace_id 0 skipped
  EXPECT_TRUE(histogram.CollectExemplars().empty());
  EXPECT_EQ(histogram.count(), 2u);  // plain recording still happened
}

TEST(ObsExemplarTest, ConcurrentRecordAndCollectNeverTears) {
  Histogram histogram;
  histogram.EnableExemplars();
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&histogram, &stop, t] {
      std::uint64_t i = 1;
      while (!stop.load(std::memory_order_relaxed)) {
        // All writers target the same bucket; value/trace/version move in
        // lockstep so a torn read is detectable below.
        const std::uint64_t tick = i++ * 4 + static_cast<std::uint64_t>(t);
        histogram.Record(50 + (tick % 8), tick, tick);
      }
    });
  }
  for (int round = 0; round < 200; ++round) {
    for (const HistogramExemplar& e : histogram.CollectExemplars()) {
      EXPECT_EQ(e.trace_id, e.version) << "torn exemplar read";
    }
  }
  stop.store(true);
  for (std::thread& w : writers) w.join();
}

TEST(ObsExportTest, OpenMetricsRendersExemplarsAndEof) {
  Registry registry;
  auto latency = registry.GetHistogram("rpc_latency_us", "Request latency.");
  ASSERT_TRUE(latency.ok());
  latency.value()->EnableExemplars();
  latency.value()->Record(100, /*trace_id=*/42, /*version=*/7);
  auto requests = registry.GetCounter("rpc_requests_total", "Requests.");
  ASSERT_TRUE(requests.ok());
  requests.value()->Increment();

  const std::string text = ToOpenMetricsText(registry.Collect());
  // Counter families drop the `_total` suffix in TYPE/HELP lines only.
  EXPECT_NE(text.find("# TYPE rpc_requests counter\n"), std::string::npos);
  EXPECT_NE(text.find("rpc_requests_total 1\n"), std::string::npos);
  // The traced bucket carries the exemplar in OpenMetrics syntax.
  const std::uint64_t bound =
      Histogram::BucketUpperBound(Histogram::BucketIndex(100));
  const std::string exemplar_line =
      "rpc_latency_us_bucket{le=\"" + std::to_string(bound) +
      "\"} 1 # {trace_id=\"42\",policy_version=\"7\"} 100\n";
  EXPECT_NE(text.find(exemplar_line), std::string::npos) << text;
  // +Inf bucket has no exemplar, and the exposition is EOF-terminated.
  EXPECT_NE(text.find("rpc_latency_us_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_EQ(text.compare(text.size() - 6, 6, "# EOF\n"), 0);
}

// ---------------------------------------------------------- profiler --

TEST(ObsProfilerTest, DisabledProfilerIsInert) {
  ProfilerConfig config;  // enabled = false
  Profiler profiler(config);
  EXPECT_FALSE(profiler.enabled());
  EXPECT_TRUE(profiler.Start().ok());
  EXPECT_FALSE(profiler.running());
  profiler.RecordNow();
  EXPECT_EQ(profiler.samples_total(), 0u);
  const std::string collapsed = profiler.Collapsed(0.0);
  EXPECT_NE(collapsed.find("# profile: cpu_samples\n"), std::string::npos);
  EXPECT_NE(collapsed.find("# samples: 0\n"), std::string::npos);
  profiler.Stop();
}

TEST(ObsProfilerTest, RecordNowProducesCollapsedStacks) {
  ProfilerConfig config;
  config.enabled = true;
  Profiler profiler(config);
  for (int i = 0; i < 5; ++i) profiler.RecordNow();
  EXPECT_EQ(profiler.samples_total(), 5u);

  const std::string collapsed = profiler.Collapsed(/*window_seconds=*/0.0);
  EXPECT_NE(collapsed.find("# profile: cpu_samples\n"), std::string::npos);
  EXPECT_NE(collapsed.find("# sample_hz: 97\n"), std::string::npos);
  EXPECT_NE(collapsed.find("# samples: 5\n"), std::string::npos);
  // At least one non-header "frames... count" line, collapsed-stack shaped.
  bool found_stack = false;
  std::size_t pos = 0;
  while (pos < collapsed.size()) {
    const std::size_t eol = collapsed.find('\n', pos);
    const std::string line = collapsed.substr(pos, eol - pos);
    pos = (eol == std::string::npos) ? collapsed.size() : eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_GT(std::atoi(line.c_str() + space + 1), 0) << line;
    found_stack = true;
  }
  EXPECT_TRUE(found_stack) << collapsed;
  // A zero-width window keeps nothing but the headers stay shape-stable.
  const std::string empty_window = profiler.Collapsed(1e-9);
  EXPECT_NE(empty_window.find("# samples_total: 5\n"), std::string::npos);

  auto parsed = util::json::Parse(profiler.StatusJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const util::json::Value& status = parsed.value();
  EXPECT_TRUE(status.Find("enabled")->AsBool());
  EXPECT_EQ(status.Find("samples_total")->AsNumber(), 5.0);
}

TEST(ObsProfilerTest, SecondRunningProfilerIsRejected) {
  ProfilerConfig config;
  config.enabled = true;
  Profiler first(config);
  ASSERT_TRUE(first.Start().ok());
  EXPECT_TRUE(first.running());
  Profiler second(config);
  const util::Status status = second.Start();
  EXPECT_EQ(status.code(), util::StatusCode::kFailedPrecondition);
  EXPECT_FALSE(second.running());
  first.Stop();
  EXPECT_FALSE(first.running());
  first.Stop();  // idempotent
}

// The TSan workload for the profiler ring: writers sampling through the
// seqlock slots while a reader symbolizes and renders concurrently.
TEST(ObsProfilerTest, ConcurrentSamplingAndExport) {
  ProfilerConfig config;
  config.enabled = true;
  config.ring_capacity = 64;  // small ring: wraps many times under the test
  Profiler profiler(config);
  std::atomic<bool> stop{false};
  std::vector<std::thread> samplers;
  for (int t = 0; t < 4; ++t) {
    samplers.emplace_back([&profiler, &stop] {
      while (!stop.load(std::memory_order_relaxed)) profiler.RecordNow();
    });
  }
  // Make sure the exports below genuinely race with live sampling.
  while (profiler.samples_total() == 0) std::this_thread::yield();
  for (int round = 0; round < 50; ++round) {
    const std::string collapsed = profiler.Collapsed(0.0);
    EXPECT_NE(collapsed.find("# profile: cpu_samples\n"), std::string::npos);
  }
  stop.store(true);
  for (std::thread& s : samplers) s.join();
  EXPECT_GT(profiler.samples_total(), 0u);
}

#if defined(__SANITIZE_THREAD__)
#define RLPLANNER_TEST_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define RLPLANNER_TEST_UNDER_TSAN 1
#endif
#endif

// SIGPROF-driven sampling calls backtrace() from a signal handler — fine in
// production, but TSan's signal interception makes the timing too flaky to
// assert on, so the end-to-end timer test runs in the non-TSan lanes only
// (RecordNow() above covers the ring under TSan).
#if !defined(RLPLANNER_TEST_UNDER_TSAN)
TEST(ObsProfilerTest, SigprofSamplingCapturesBusyLoop) {
  ProfilerConfig config;
  config.enabled = true;
  config.sample_hz = 997;  // fast so a short spin is enough
  Profiler profiler(config);
  ASSERT_TRUE(profiler.Start().ok());
  // Burn CPU until samples arrive (ITIMER_PROF counts CPU time, not wall).
  volatile double sink = 0.0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (profiler.samples_total() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  }
  profiler.Stop();
  EXPECT_GT(profiler.samples_total(), 0u) << "no SIGPROF samples in 5s of spin";
}
#endif

// ---------------------------------------------------- flight recorder --

RequestRecord MakeRecord(std::uint64_t trace_id, double total_ms) {
  RequestRecord record;
  record.trace_id = trace_id;
  record.policy_version = 1;
  record.slot = "default";
  record.status = "ok";
  record.queue_ms = 0.25;
  record.exec_ms = total_ms - 0.25;
  record.total_ms = total_ms;
  record.spans.push_back({"serve_queue_wait", 0.0, 0.25});
  record.spans.push_back({"serve_plan", 0.25, total_ms - 0.25});
  return record;
}

TEST(ObsFlightRecorderTest, DisabledRecorderRetainsNothing) {
  FlightRecorder recorder(FlightRecorderConfig{});  // slo_ms = 0 → disabled
  EXPECT_FALSE(recorder.enabled());
  recorder.Complete(MakeRecord(1, 100.0));  // whole hook is a no-op
  EXPECT_EQ(recorder.requests_observed(), 0u);
  EXPECT_EQ(recorder.slo_violations(), 0u);
}

TEST(ObsFlightRecorderTest, ReservoirsKeepSlowestAndRecent) {
  FlightRecorderConfig config;
  config.slo_ms = 10.0;
  config.keep_slowest = 2;
  config.keep_recent = 3;
  FlightRecorder recorder(config);
  ASSERT_TRUE(recorder.enabled());
  recorder.Complete(MakeRecord(1, 5.0));  // under SLO: observed, not retained
  recorder.Complete(MakeRecord(2, 50.0));
  recorder.Complete(MakeRecord(3, 30.0));
  recorder.Complete(MakeRecord(4, 70.0));  // evicts 30ms from "slowest"
  recorder.Complete(MakeRecord(5, 20.0));
  recorder.Complete(MakeRecord(6, 40.0));  // recent is now [6, 5, 4]
  EXPECT_EQ(recorder.requests_observed(), 6u);
  EXPECT_EQ(recorder.slo_violations(), 5u);

  auto parsed = util::json::Parse(recorder.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const util::json::Value& root = parsed.value();
  const auto& slowest = root.Find("slowest")->AsArray();
  ASSERT_EQ(slowest.size(), 2u);
  EXPECT_EQ(slowest[0].Find("trace_id")->AsNumber(), 4.0);  // 70ms first
  EXPECT_EQ(slowest[1].Find("trace_id")->AsNumber(), 2.0);  // then 50ms
  const auto& recent = root.Find("recent")->AsArray();
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_EQ(recent[0].Find("trace_id")->AsNumber(), 6.0);  // newest first
  // Span breakdowns survive into the export.
  const auto& spans = slowest[0].Find("spans")->AsArray();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].Find("name")->AsString(), "serve_queue_wait");
  EXPECT_EQ(spans[1].Find("name")->AsString(), "serve_plan");
}

TEST(ObsFlightRecorderTest, ActiveTableTracksInFlight) {
  FlightRecorderConfig config;
  config.slo_ms = 10.0;
  FlightRecorder recorder(config);
  recorder.BeginActive(11, "default", /*start_ns=*/1);
  recorder.BeginActive(12, "canary", /*start_ns=*/2);
  auto during = util::json::Parse(recorder.ToJson());
  ASSERT_TRUE(during.ok());
  EXPECT_EQ(during.value().Find("active")->AsArray().size(), 2u);
  recorder.EndActive(11);
  recorder.EndActive(12);
  recorder.EndActive(12);  // unknown/double end is harmless
  auto after = util::json::Parse(recorder.ToJson());
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after.value().Find("active")->AsArray().empty());
}

// ------------------------------------------------------- debugz pages --

TEST(ObsDebugzTest, StatuszJsonShape) {
  ProfilerConfig profiler_config;
  profiler_config.enabled = true;
  Profiler profiler(profiler_config);
  FlightRecorderConfig recorder_config;
  recorder_config.slo_ms = 25.0;
  FlightRecorder recorder(recorder_config);
  const std::vector<StatuszSection> sections = {
      {"serve", "{\"completed\": 3}"},
      {"fleet", "{\"policies\": 2}"},
  };
  auto parsed = util::json::Parse(StatuszJson(&profiler, &recorder, sections));
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const util::json::Value& root = parsed.value();
  EXPECT_EQ(root.Find("build")->Find("version")->AsString(), kBuildVersion);
  EXPECT_GE(root.Find("uptime_seconds")->AsNumber(), 0.0);
  EXPECT_TRUE(root.Find("profiler")->Find("enabled")->AsBool());
  EXPECT_EQ(root.Find("flight_recorder")->Find("slo_ms")->AsNumber(), 25.0);
  EXPECT_EQ(root.Find("serve")->Find("completed")->AsNumber(), 3.0);
  EXPECT_EQ(root.Find("fleet")->Find("policies")->AsNumber(), 2.0);
  // Absent subsystems export as null, not as missing keys.
  auto bare = util::json::Parse(StatuszJson(nullptr, nullptr, {}));
  ASSERT_TRUE(bare.ok());
  EXPECT_TRUE(bare.value().Find("profiler")->is_null());
  EXPECT_TRUE(bare.value().Find("flight_recorder")->is_null());
}

TEST(ObsDebugzTest, TracezJsonMergesExemplars) {
  FlightRecorderConfig config;
  config.slo_ms = 10.0;
  FlightRecorder recorder(config);
  recorder.Complete(MakeRecord(42, 30.0));

  Registry registry;
  auto latency = registry.GetHistogram("serve_request_latency_us",
                                       "Request latency.");
  ASSERT_TRUE(latency.ok());
  latency.value()->EnableExemplars();
  latency.value()->Record(30000, /*trace_id=*/42, /*version=*/1);

  auto parsed = util::json::Parse(TracezJson(&recorder, registry.Collect()));
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const util::json::Value& root = parsed.value();
  const auto& slowest =
      root.Find("flight_recorder")->Find("slowest")->AsArray();
  ASSERT_EQ(slowest.size(), 1u);
  EXPECT_EQ(slowest[0].Find("trace_id")->AsNumber(), 42.0);
  const auto& exemplars = root.Find("exemplars")->AsArray();
  ASSERT_EQ(exemplars.size(), 1u);
  EXPECT_EQ(exemplars[0].Find("metric")->AsString(),
            "serve_request_latency_us");
  EXPECT_EQ(exemplars[0].Find("trace_id")->AsNumber(), 42.0);
  EXPECT_EQ(exemplars[0].Find("value")->AsNumber(), 30000.0);
  // A null recorder still yields a parseable page with empty reservoirs.
  auto bare = util::json::Parse(TracezJson(nullptr, MetricsSnapshot{}));
  ASSERT_TRUE(bare.ok());
  EXPECT_TRUE(bare.value()
                  .Find("flight_recorder")
                  ->Find("slowest")
                  ->AsArray()
                  .empty());
}

}  // namespace
}  // namespace rlplanner::obs

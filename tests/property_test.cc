// Randomized property tests: core data structures are checked against
// brute-force reference implementations over seeded random inputs.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "mdp/similarity.h"
#include "model/prereq.h"
#include "util/bitset.h"
#include "util/csv.h"
#include "util/rng.h"

namespace rlplanner {
namespace {

// ------------------------------------------------ bitset vs vector<bool> --

class BitsetPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BitsetPropertyTest, MatchesReferenceImplementation) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t size = 1 + rng.NextIndex(200);
  util::DynamicBitset a(size);
  util::DynamicBitset b(size);
  std::vector<bool> ref_a(size, false);
  std::vector<bool> ref_b(size, false);
  for (std::size_t i = 0; i < size; ++i) {
    if (rng.NextBernoulli(0.4)) {
      a.Set(i);
      ref_a[i] = true;
    }
    if (rng.NextBernoulli(0.4)) {
      b.Set(i);
      ref_b[i] = true;
    }
  }

  // Count / Test.
  std::size_t ref_count = 0;
  for (std::size_t i = 0; i < size; ++i) {
    EXPECT_EQ(a.Test(i), ref_a[i]);
    if (ref_a[i]) ++ref_count;
  }
  EXPECT_EQ(a.Count(), ref_count);

  // IntersectCount / Intersects / AndNot.
  std::size_t ref_inter = 0;
  std::size_t ref_andnot = 0;
  for (std::size_t i = 0; i < size; ++i) {
    if (ref_a[i] && ref_b[i]) ++ref_inter;
    if (ref_a[i] && !ref_b[i]) ++ref_andnot;
  }
  EXPECT_EQ(a.IntersectCount(b), ref_inter);
  EXPECT_EQ(a.Intersects(b), ref_inter > 0);
  EXPECT_EQ(a.AndNot(b).Count(), ref_andnot);

  // OR / AND / XOR.
  util::DynamicBitset or_ab = a;
  or_ab |= b;
  util::DynamicBitset and_ab = a;
  and_ab &= b;
  util::DynamicBitset xor_ab = a;
  xor_ab ^= b;
  for (std::size_t i = 0; i < size; ++i) {
    EXPECT_EQ(or_ab.Test(i), ref_a[i] || ref_b[i]);
    EXPECT_EQ(and_ab.Test(i), ref_a[i] && ref_b[i]);
    EXPECT_EQ(xor_ab.Test(i), ref_a[i] != ref_b[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitsetPropertyTest, ::testing::Range(1, 26));

// -------------------------------------------------------- CSV round trips --

class CsvPropertyTest : public ::testing::TestWithParam<int> {};

std::string RandomField(util::Rng& rng) {
  static const char* kAlphabet =
      "abcXYZ019 ,\"\n\r;|\t'~`!@#$%^&*()_+-=[]{}";
  const std::size_t length = rng.NextIndex(12);
  std::string out;
  for (std::size_t i = 0; i < length; ++i) {
    out.push_back(kAlphabet[rng.NextIndex(std::strlen(kAlphabet))]);
  }
  return out;
}

TEST_P(CsvPropertyTest, ArbitraryContentRoundTrips) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 5);
  util::CsvDocument doc;
  const std::size_t columns = 1 + rng.NextIndex(6);
  for (std::size_t c = 0; c < columns; ++c) {
    doc.header.push_back("col" + std::to_string(c));
  }
  const std::size_t rows = rng.NextIndex(15);
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<std::string> row;
    for (std::size_t c = 0; c < columns; ++c) {
      row.push_back(RandomField(rng));
    }
    doc.rows.push_back(std::move(row));
  }

  auto reparsed = util::ParseCsv(util::WriteCsv(doc));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed.value().header, doc.header);
  EXPECT_EQ(reparsed.value().rows, doc.rows);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvPropertyTest, ::testing::Range(1, 31));

TEST(CsvPropertyTest, GarbageInputNeverCrashes) {
  util::Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage;
    const std::size_t length = rng.NextIndex(80);
    for (std::size_t i = 0; i < length; ++i) {
      garbage.push_back(static_cast<char>(rng.NextInt(1, 126)));
    }
    // Must either parse or return an error — never crash or hang.
    (void)util::ParseCsv(garbage);
  }
}

// ------------------------------------------ prereq CNF vs brute semantics --

class PrereqPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PrereqPropertyTest, SatisfiedAtMatchesBruteForce) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7 + 3);
  const int universe = 8;
  // Random CNF with 1-3 groups of 1-3 members each.
  model::PrereqExpr expr;
  std::vector<std::vector<model::ItemId>> groups;
  const int num_groups = rng.NextInt(1, 3);
  for (int g = 0; g < num_groups; ++g) {
    std::vector<model::ItemId> group;
    const int members = rng.NextInt(1, 3);
    for (int m = 0; m < members; ++m) {
      group.push_back(static_cast<model::ItemId>(rng.NextIndex(universe)));
    }
    groups.push_back(group);
    expr.AddGroup(group);
  }

  for (int trial = 0; trial < 30; ++trial) {
    // Random placement of items at positions 0..9 or absent.
    std::vector<int> positions(universe, -1);
    for (int i = 0; i < universe; ++i) {
      if (rng.NextBernoulli(0.6)) positions[i] = rng.NextInt(0, 9);
    }
    const int candidate_pos = rng.NextInt(0, 12);
    const int gap = rng.NextInt(1, 4);

    bool expected = true;
    for (const auto& group : groups) {
      bool group_ok = false;
      for (model::ItemId member : group) {
        if (positions[member] >= 0 &&
            candidate_pos - positions[member] >= gap) {
          group_ok = true;
        }
      }
      expected = expected && group_ok;
    }
    EXPECT_EQ(expr.SatisfiedAt(positions, candidate_pos, gap), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrereqPropertyTest, ::testing::Range(1, 21));

// ------------------------------------------------- similarity vs brute Eq.6

class SimilarityBruteTest : public ::testing::TestWithParam<int> {};

TEST_P(SimilarityBruteTest, MatchesDirectFormula) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 17 + 1);
  auto random_seq = [&rng](std::size_t length) {
    model::TypeSequence seq;
    for (std::size_t i = 0; i < length; ++i) {
      seq.push_back(rng.NextBernoulli(0.5) ? model::ItemType::kPrimary
                                           : model::ItemType::kSecondary);
    }
    return seq;
  };
  const std::size_t k = 1 + rng.NextIndex(12);
  const model::TypeSequence seq = random_seq(k);
  const model::TypeSequence perm = random_seq(1 + rng.NextIndex(12));

  // Direct Eq. 6: zeta * matches / k.
  int matches = 0;
  int zeta = 0;
  int run = 0;
  for (std::size_t j = 0; j < k; ++j) {
    const bool hit = j < perm.size() && seq[j] == perm[j];
    matches += hit ? 1 : 0;
    run = hit ? run + 1 : 0;
    zeta = std::max(zeta, run);
  }
  const double expected =
      static_cast<double>(zeta) * matches / static_cast<double>(k);
  EXPECT_DOUBLE_EQ(mdp::SequenceSimilarity(seq, perm), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimilarityBruteTest, ::testing::Range(1, 41));

}  // namespace
}  // namespace rlplanner

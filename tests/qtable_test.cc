// Tests for the Q-table: accessors, the SARSA update rule (Eq. 9),
// argmax queries, scaling/noise used by policy iteration, and CSV
// round-tripping.

#include <gtest/gtest.h>

#include "mdp/q_table.h"
#include "util/rng.h"

namespace rlplanner::mdp {
namespace {

TEST(QTableTest, StartsAllZero) {
  const QTable q(4);
  EXPECT_EQ(q.num_items(), 4u);
  for (int s = 0; s < 4; ++s) {
    for (int a = 0; a < 4; ++a) {
      EXPECT_DOUBLE_EQ(q.Get(s, a), 0.0);
    }
  }
  EXPECT_DOUBLE_EQ(q.NonZeroFraction(), 0.0);
  EXPECT_DOUBLE_EQ(q.MaxAbsValue(), 0.0);
}

TEST(QTableTest, SetGetRoundTrip) {
  QTable q(3);
  q.Set(1, 2, 0.5);
  EXPECT_DOUBLE_EQ(q.Get(1, 2), 0.5);
  EXPECT_DOUBLE_EQ(q.Get(2, 1), 0.0);  // not symmetric
  EXPECT_NEAR(q.NonZeroFraction(), 1.0 / 9.0, 1e-12);
}

TEST(QTableTest, SarsaUpdateMatchesEquation9) {
  // Q(s,e) += alpha * (r + gamma * Q(s',e') - Q(s,e)).
  QTable q(3);
  q.Set(0, 1, 1.0);
  q.Set(1, 2, 2.0);
  q.SarsaUpdate(/*state=*/0, /*action=*/1, /*reward=*/0.5, /*next_state=*/1,
                /*next_action=*/2, /*alpha=*/0.5, /*gamma=*/0.9);
  // 1.0 + 0.5 * (0.5 + 0.9 * 2.0 - 1.0) = 1.0 + 0.5 * 1.3 = 1.65.
  EXPECT_DOUBLE_EQ(q.Get(0, 1), 1.65);
}

TEST(QTableTest, TerminalUpdateUsesZeroContinuation) {
  QTable q(2);
  q.Set(0, 1, 1.0);
  q.SarsaUpdate(0, 1, 2.0, /*next_state=*/-1, /*next_action=*/-1, 0.5, 0.9);
  // 1.0 + 0.5 * (2.0 + 0 - 1.0) = 1.5.
  EXPECT_DOUBLE_EQ(q.Get(0, 1), 1.5);
}

TEST(QTableTest, ArgmaxRespectsFilterAndBreaksTiesLow) {
  QTable q(4);
  q.Set(0, 1, 3.0);
  q.Set(0, 2, 5.0);
  q.Set(0, 3, 5.0);
  EXPECT_EQ(q.ArgmaxAction(0, [](model::ItemId) { return true; }), 2);
  EXPECT_EQ(q.ArgmaxAction(0, [](model::ItemId a) { return a != 2; }), 3);
  EXPECT_EQ(q.ArgmaxAction(0, [](model::ItemId) { return false; }), -1);
}

TEST(QTableTest, BitsetArgmaxMatchesCallbackOverload) {
  // The word-scan overload must reproduce the callback overload exactly,
  // including the lowest-allowed-id tie-break and the "all-negative row
  // still returns the first allowed id" behavior — checked on randomized
  // tables and randomized admissible sets, sized to cross word boundaries.
  util::Rng rng(99);
  for (const std::size_t n : {1u, 7u, 64u, 65u, 130u}) {
    QTable q(n);
    for (std::size_t s = 0; s < n; ++s) {
      for (std::size_t a = 0; a < n; ++a) {
        // Coarse quantization forces frequent exact ties.
        q.Set(static_cast<model::ItemId>(s), static_cast<model::ItemId>(a),
              (static_cast<double>(rng.NextBounded(7)) - 3.0) / 2.0);
      }
    }
    for (int trial = 0; trial < 20; ++trial) {
      util::DynamicBitset allowed(n);
      for (std::size_t a = 0; a < n; ++a) {
        if (rng.NextBernoulli(trial % 2 == 0 ? 0.3 : 0.9)) allowed.Set(a);
      }
      const auto state =
          static_cast<model::ItemId>(rng.NextIndex(n));
      const model::ItemId via_callback = q.ArgmaxAction(
          state, [&](model::ItemId a) {
            return allowed.Test(static_cast<std::size_t>(a));
          });
      EXPECT_EQ(q.ArgmaxAction(state, allowed), via_callback)
          << "n=" << n << " state=" << state;
    }
  }
}

TEST(QTableTest, AccumulateDeltaFoldsWorkerDeltas) {
  QTable base(2);
  base.Set(0, 1, 1.0);
  QTable merged = base;
  QTable worker_a = base;
  worker_a.Set(0, 1, 1.5);   // delta +0.5
  worker_a.Set(1, 0, 2.0);   // delta +2.0
  QTable worker_b = base;
  worker_b.Set(0, 1, 0.25);  // delta -0.75
  merged.AccumulateDelta(worker_a, base);
  merged.AccumulateDelta(worker_b, base);
  EXPECT_DOUBLE_EQ(merged.Get(0, 1), 1.0 + 0.5 - 0.75);
  EXPECT_DOUBLE_EQ(merged.Get(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(merged.Get(1, 1), 0.0);
}

TEST(QTableTest, ScaleMultipliesEverything) {
  QTable q(2);
  q.Set(0, 1, 4.0);
  q.Set(1, 0, -2.0);
  q.Scale(0.5);
  EXPECT_DOUBLE_EQ(q.Get(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(q.Get(1, 0), -1.0);
}

TEST(QTableTest, AddNoiseBoundedAndNonNegative) {
  QTable q(5);
  util::Rng rng(3);
  q.AddNoise(rng, 0.1);
  for (int s = 0; s < 5; ++s) {
    for (int a = 0; a < 5; ++a) {
      EXPECT_GE(q.Get(s, a), 0.0);
      EXPECT_LT(q.Get(s, a), 0.1);
    }
  }
}

TEST(QTableTest, CsvRoundTrip) {
  QTable q(3);
  q.Set(0, 1, 1.25);
  q.Set(2, 0, -0.5);
  auto restored = QTable::FromCsv(3, q.ToCsv());
  ASSERT_TRUE(restored.ok());
  for (int s = 0; s < 3; ++s) {
    for (int a = 0; a < 3; ++a) {
      EXPECT_NEAR(restored.value().Get(s, a), q.Get(s, a), 1e-9);
    }
  }
}

TEST(QTableTest, CsvRejectsOutOfRangeEntries) {
  QTable q(5);
  q.Set(4, 4, 1.0);
  auto restored = QTable::FromCsv(3, q.ToCsv());
  EXPECT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(QTableTest, CsvRejectsMissingColumns) {
  auto restored = QTable::FromCsv(3, "a,b\n1,2\n");
  EXPECT_FALSE(restored.ok());
}

TEST(QTableTest, CsvRejectsMalformedFieldsWithRowContext) {
  // A non-numeric id.
  auto bad_id = QTable::FromCsv(3, "state,action,q\nx,1,0.5\n");
  ASSERT_FALSE(bad_id.ok());
  EXPECT_EQ(bad_id.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(bad_id.status().message().find("row 1"), std::string::npos)
      << bad_id.status().ToString();

  // A trailing-garbage value field ("0.5abc" must not silently parse as 0.5).
  auto bad_value = QTable::FromCsv(3, "state,action,q\n0,1,0.5abc\n");
  ASSERT_FALSE(bad_value.ok());
  EXPECT_EQ(bad_value.status().code(), util::StatusCode::kInvalidArgument);

  // Extra columns on a row.
  auto extra = QTable::FromCsv(3, "state,action,q\n0,1,0.5,9\n");
  EXPECT_FALSE(extra.ok());

  // An empty field.
  auto empty_field = QTable::FromCsv(3, "state,action,q\n0,,0.5\n");
  EXPECT_FALSE(empty_field.ok());

  // A negative id.
  auto negative = QTable::FromCsv(3, "state,action,q\n-1,0,0.5\n");
  ASSERT_FALSE(negative.ok());
  EXPECT_EQ(negative.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(QTableTest, CsvRejectsDuplicateEntries) {
  auto dup = QTable::FromCsv(3, "state,action,q\n1,2,0.5\n1,2,0.75\n");
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(dup.status().message().find("duplicate"), std::string::npos)
      << dup.status().ToString();
  // Row context names the *second* occurrence (row 2).
  EXPECT_NE(dup.status().message().find("row 2"), std::string::npos)
      << dup.status().ToString();
}

// Pins the documented tie-break contract: ArgmaxAction is deterministic and
// always prefers the lowest allowed id, including on all-zero and
// all-negative rows (unlike SarsaLearner::SelectAction, which randomizes
// exploitation ties during training).
TEST(QTableTest, ArgmaxTieBreakIsLowestAllowedId) {
  QTable q(4);
  // All-zero row: the full tie resolves to the lowest allowed id.
  EXPECT_EQ(q.ArgmaxAction(0, [](model::ItemId) { return true; }), 0);
  EXPECT_EQ(q.ArgmaxAction(0, [](model::ItemId a) { return a >= 2; }), 2);
  // All-negative row: the first allowed action still beats "no action".
  for (int a = 0; a < 4; ++a) q.Set(1, a, -5.0);
  EXPECT_EQ(q.ArgmaxAction(1, [](model::ItemId) { return true; }), 0);
  // A tie between two strict maxima resolves to the earlier id.
  q.Set(2, 1, 3.0);
  q.Set(2, 3, 3.0);
  EXPECT_EQ(q.ArgmaxAction(2, [](model::ItemId) { return true; }), 1);
}

TEST(QTableTest, MaxAbsTracksLargestMagnitude) {
  QTable q(2);
  q.Set(0, 0, -7.0);
  q.Set(1, 1, 3.0);
  EXPECT_DOUBLE_EQ(q.MaxAbsValue(), 7.0);
}

}  // namespace
}  // namespace rlplanner::mdp

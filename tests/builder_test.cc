// Tests for the fluent TaskBuilder, including building and planning over a
// hand-assembled instance end to end.

#include <gtest/gtest.h>

#include "core/planner.h"
#include "model/builder.h"

namespace rlplanner::model {
namespace {

TaskBuilder SmallCourseBuilder() {
  TaskBuilder builder(Domain::kCourse);
  builder.Topics({"algorithms", "databases", "ml", "stats", "viz", "ethics"})
      .Primary("C1", "Algorithms", {"algorithms"})
      .Primary("C2", "Machine Learning", {"ml", "stats"})
      .RequiresAny({"C3", "C4"})
      .Secondary("C3", "Statistics", {"stats"})
      .Secondary("C4", "Databases", {"databases"})
      .Secondary("C5", "Visualization and Ethics", {"viz", "ethics"})
      .Split(2, 2)
      .MinCredits(12)
      .Gap(1)
      .Template("PSPS")
      .Template("PSSP");
  return builder;
}

TEST(BuilderTest, BuildsConsistentInstance) {
  auto built = SmallCourseBuilder().Build();
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const auto& b = built.value();
  EXPECT_EQ(b.catalog.size(), 5u);
  EXPECT_EQ(b.catalog.vocabulary_size(), 6u);
  EXPECT_EQ(b.hard.num_primary, 2);
  EXPECT_EQ(b.soft.interleaving.size(), 2u);
  // Default ideal vector = full vocabulary.
  EXPECT_EQ(b.soft.ideal_topics.Count(), 6u);
  EXPECT_TRUE(b.Instance().Validate().ok());
}

TEST(BuilderTest, ForwardPrereqReferencesResolve) {
  auto built = SmallCourseBuilder().Build();
  ASSERT_TRUE(built.ok());
  // C2 requires (C3 OR C4) — both added after C2.
  const auto c2 = built.value().catalog.FindByCode("C2").value();
  const auto& prereqs = built.value().catalog.item(c2).prereqs;
  ASSERT_EQ(prereqs.groups().size(), 1u);
  EXPECT_EQ(prereqs.groups()[0].size(), 2u);
}

TEST(BuilderTest, ExplicitIdealTopics) {
  TaskBuilder builder = SmallCourseBuilder();
  builder.IdealTopics({"ml", "viz"});
  auto built = builder.Build();
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built.value().soft.ideal_topics.Count(), 2u);
}

TEST(BuilderTest, UnknownTopicFails) {
  TaskBuilder builder(Domain::kCourse);
  builder.Topics({"a"}).Primary("X", "X", {"nope"}).Split(1, 0);
  EXPECT_FALSE(builder.Build().ok());
}

TEST(BuilderTest, UnknownPrereqCodeFails) {
  TaskBuilder builder(Domain::kCourse);
  builder.Topics({"a"})
      .Primary("X", "X", {"a"})
      .Requires({"GHOST"})
      .Split(1, 0)
      .MinCredits(3);
  auto built = builder.Build();
  EXPECT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(BuilderTest, MisuseIsReportedAtBuild) {
  TaskBuilder builder(Domain::kCourse);
  builder.Requires({"X"});  // before any item
  builder.Topics({"a"});
  EXPECT_FALSE(builder.Build().ok());

  TaskBuilder no_vocab(Domain::kCourse);
  EXPECT_FALSE(no_vocab.Build().ok());
}

TEST(BuilderTest, TemplateMismatchFails) {
  TaskBuilder builder = SmallCourseBuilder();
  builder.Template("PPPP");  // 4 primaries, split says 2
  EXPECT_FALSE(builder.Build().ok());
}

TEST(BuilderTest, DuplicateCodeFails) {
  TaskBuilder builder(Domain::kCourse);
  builder.Topics({"a"})
      .Primary("X", "X", {"a"})
      .Primary("X", "again", {"a"})
      .Split(1, 0);
  EXPECT_FALSE(builder.Build().ok());
}

TEST(BuilderTest, TripAttributesApply) {
  TaskBuilder builder(Domain::kTrip);
  builder.Topics({"museum", "park", "cafe"})
      .Primary("louvre", "Louvre", {"museum"}, 2.0)
      .At(48.86, 2.33)
      .Popularity(5.0)
      .Secondary("tuileries", "Tuileries", {"park"}, 1.0)
      .At(48.863, 2.327)
      .Popularity(4.0)
      .Secondary("flore", "Cafe de Flore", {"cafe"}, 1.0)
      .At(48.854, 2.332)
      .Popularity(4.5)
      .Split(1, 2)
      .MinCredits(6.0)
      .DistanceThresholdKm(5.0)
      .NoConsecutiveSameTheme()
      .Template("PSS");
  auto built = builder.Build();
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const auto& louvre = built.value().catalog.item(0);
  EXPECT_DOUBLE_EQ(louvre.popularity, 5.0);
  EXPECT_NEAR(louvre.location.lat, 48.86, 1e-9);
  EXPECT_EQ(louvre.primary_theme,
            built.value().catalog.TopicId("museum"));
  EXPECT_TRUE(built.value().hard.no_consecutive_same_theme);
}

TEST(BuilderTest, BuiltInstanceIsPlannable) {
  auto built = SmallCourseBuilder().Build();
  ASSERT_TRUE(built.ok());
  const TaskInstance instance = built.value().Instance();
  core::PlannerConfig config;
  config.sarsa.num_episodes = 80;
  config.sarsa.start_item = 0;
  core::RlPlanner planner(instance, config);
  ASSERT_TRUE(planner.Train().ok());
  auto plan = planner.Recommend(0);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().size(), 4u);
  EXPECT_TRUE(planner.Validate(plan.value()).valid)
      << planner.Validate(plan.value()).ToString();
}

}  // namespace
}  // namespace rlplanner::model

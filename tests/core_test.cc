// Tests for the public facade: PlannerConfig validation, plan scoring, and
// the RlPlanner train/recommend/score/persistence lifecycle.

#include <gtest/gtest.h>

#include <cstdio>

#include "core/config.h"
#include "geo/latlng.h"
#include "core/planner.h"
#include "core/scoring.h"
#include "datagen/course_data.h"
#include "datagen/trip_data.h"

namespace rlplanner::core {
namespace {

// ----------------------------------------------------------------- Config --

TEST(ConfigTest, DefaultsAreValid) {
  EXPECT_TRUE(DefaultUniv1Config().Validate().ok());
  EXPECT_TRUE(DefaultUniv2Config().Validate().ok());
  EXPECT_TRUE(DefaultTripConfig().Validate().ok());
}

TEST(ConfigTest, TableIIIDefaults) {
  const PlannerConfig univ1 = DefaultUniv1Config();
  EXPECT_EQ(univ1.sarsa.num_episodes, 500);
  EXPECT_DOUBLE_EQ(univ1.sarsa.alpha, 0.75);
  EXPECT_DOUBLE_EQ(univ1.sarsa.gamma, 0.95);
  EXPECT_DOUBLE_EQ(univ1.reward.epsilon, 0.0025);

  const PlannerConfig univ2 = DefaultUniv2Config();
  EXPECT_EQ(univ2.sarsa.num_episodes, 100);
  ASSERT_EQ(univ2.reward.category_weights.size(), 6u);
  EXPECT_DOUBLE_EQ(univ2.reward.category_weights[3], 0.42);
  EXPECT_DOUBLE_EQ(univ2.reward.delta, 0.8);

  const PlannerConfig trip = DefaultTripConfig();
  EXPECT_DOUBLE_EQ(trip.reward.delta, 0.6);
  EXPECT_DOUBLE_EQ(trip.reward.beta, 0.4);
}

TEST(ConfigTest, RejectsBadValues) {
  PlannerConfig config;
  config.sarsa.num_episodes = 0;
  EXPECT_FALSE(config.Validate().ok());
  config.sarsa.num_episodes = 10;
  config.sarsa.alpha = 1.5;
  EXPECT_FALSE(config.Validate().ok());
  config.sarsa.alpha = 0.5;
  config.sarsa.gamma = -0.1;
  EXPECT_FALSE(config.Validate().ok());
  config.sarsa.gamma = 0.9;
  config.reward.delta = 0.9;  // delta + beta != 1
  EXPECT_FALSE(config.Validate().ok());
}

// ---------------------------------------------------------------- Scoring --

TEST(ScoringTest, InvalidPlanScoresZero) {
  datagen::Dataset dataset = datagen::MakeTableIIToy();
  const model::TaskInstance instance = dataset.Instance();
  EXPECT_DOUBLE_EQ(ScorePlan(instance, model::Plan({0, 1})), 0.0);
  EXPECT_DOUBLE_EQ(ScorePlan(instance, model::Plan()), 0.0);
}

TEST(ScoringTest, PerfectTemplateMatchScoresH) {
  datagen::Dataset dataset = datagen::MakeTableIIToy();
  const model::TaskInstance instance = dataset.Instance();
  // m1->m2->m4->m5->m6->m3 fully satisfies permutation I2 (PSSSPP).
  const model::Plan plan({0, 1, 3, 4, 5, 2});
  EXPECT_DOUBLE_EQ(ScorePlan(instance, plan), 6.0);
  EXPECT_DOUBLE_EQ(TemplateScore(instance, plan), 6.0);
}

TEST(ScoringTest, TripScoreIsMeanPopularity) {
  datagen::Dataset dataset = datagen::MakeNycTrip();
  const model::TaskInstance instance = dataset.Instance();
  // Build a tiny valid trip by hand: two primaries + a secondary with
  // different themes, within budgets. Use the gold machinery instead of
  // guessing: TemplateScore/popularity split is what we verify here.
  model::Plan plan;
  double hours = 0.0;
  int last_theme = -1;
  int primaries = 0;
  for (const model::Item& item : dataset.catalog.items()) {
    if (!item.prereqs.empty()) continue;
    if (item.primary_theme == last_theme) continue;
    if (hours + item.credits > instance.hard.min_credits) continue;
    if (item.type == model::ItemType::kPrimary && primaries >= 2) continue;
    if (!plan.empty() &&
        geo::HaversineKm(
            dataset.catalog.item(plan.items().back()).location,
            item.location) > 1.0) {
      continue;  // keep the walking distance trivially small
    }
    plan.Append(item.id);
    hours += item.credits;
    last_theme = item.primary_theme;
    if (item.type == model::ItemType::kPrimary) ++primaries;
    if (plan.size() == 4 && primaries >= 2) break;
  }
  if (primaries >= 2 && plan.size() >= 3) {
    const double expected = plan.MeanPopularity(dataset.catalog);
    EXPECT_DOUBLE_EQ(ScorePlan(instance, plan), expected);
  }
}

TEST(ScoringTest, IdealTopicCoverageFractional) {
  datagen::Dataset dataset = datagen::MakeTableIIToy();
  const model::TaskInstance instance = dataset.Instance();
  // m2 covers classification + clustering = 2 of the 4 ideal topics.
  EXPECT_DOUBLE_EQ(IdealTopicCoverage(instance, model::Plan({1})), 0.5);
}

// ---------------------------------------------------------------- Planner --

TEST(PlannerTest, RecommendBeforeTrainFails) {
  datagen::Dataset dataset = datagen::MakeTableIIToy();
  const model::TaskInstance instance = dataset.Instance();
  RlPlanner planner(instance, PlannerConfig{});
  EXPECT_FALSE(planner.trained());
  auto plan = planner.Recommend(0);
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST(PlannerTest, TrainThenRecommendLifecycle) {
  datagen::Dataset dataset = datagen::MakeTableIIToy();
  const model::TaskInstance instance = dataset.Instance();
  PlannerConfig config;
  config.sarsa.num_episodes = 100;
  config.sarsa.start_item = 0;
  config.reward.epsilon = 1.0;
  RlPlanner planner(instance, config);
  ASSERT_TRUE(planner.Train().ok());
  EXPECT_TRUE(planner.trained());
  EXPECT_GE(planner.train_seconds(), 0.0);
  EXPECT_EQ(planner.episode_returns().size(), 100u);

  auto plan = planner.Recommend(0);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().at(0), 0);
  EXPECT_TRUE(planner.Validate(plan.value()).valid);
  EXPECT_GT(planner.Score(plan.value()), 0.0);
}

TEST(PlannerTest, RecommendRejectsBadStart) {
  datagen::Dataset dataset = datagen::MakeTableIIToy();
  const model::TaskInstance instance = dataset.Instance();
  PlannerConfig config;
  config.sarsa.num_episodes = 20;
  config.reward.epsilon = 1.0;
  RlPlanner planner(instance, config);
  ASSERT_TRUE(planner.Train().ok());
  EXPECT_FALSE(planner.Recommend(-1).ok());
  EXPECT_FALSE(planner.Recommend(99).ok());
}

TEST(PlannerTest, TrainValidatesInstanceAndConfig) {
  datagen::Dataset dataset = datagen::MakeTableIIToy();
  dataset.hard.num_primary = 50;  // impossible
  const model::TaskInstance instance = dataset.Instance();
  RlPlanner planner(instance, PlannerConfig{});
  EXPECT_FALSE(planner.Train().ok());
}

TEST(PlannerTest, AdoptPolicyChecksDimension) {
  datagen::Dataset dataset = datagen::MakeTableIIToy();
  const model::TaskInstance instance = dataset.Instance();
  RlPlanner planner(instance, PlannerConfig{});
  EXPECT_FALSE(planner.AdoptPolicy(mdp::QTable(3)).ok());
  EXPECT_TRUE(planner.AdoptPolicy(mdp::QTable(6)).ok());
  EXPECT_TRUE(planner.trained());
}

TEST(PlannerTest, PolicyPersistenceRoundTrip) {
  datagen::Dataset dataset = datagen::MakeTableIIToy();
  const model::TaskInstance instance = dataset.Instance();
  PlannerConfig config;
  config.sarsa.num_episodes = 60;
  config.sarsa.start_item = 0;
  config.reward.epsilon = 1.0;
  RlPlanner planner(instance, config);
  ASSERT_TRUE(planner.Train().ok());
  const std::string path = "/tmp/rlplanner_core_test_policy.csv";
  ASSERT_TRUE(planner.SavePolicy(path).ok());

  RlPlanner restored(instance, config);
  ASSERT_TRUE(restored.LoadPolicy(path).ok());
  auto original = planner.Recommend(0);
  auto reloaded = restored.Recommend(0);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(original.value(), reloaded.value());
  std::remove(path.c_str());
}

TEST(PlannerTest, SaveWithoutPolicyFails) {
  datagen::Dataset dataset = datagen::MakeTableIIToy();
  const model::TaskInstance instance = dataset.Instance();
  RlPlanner planner(instance, PlannerConfig{});
  EXPECT_FALSE(planner.SavePolicy("/tmp/never_written.csv").ok());
  EXPECT_FALSE(planner.LoadPolicy("/tmp/definitely_missing_policy.csv").ok());
}

}  // namespace
}  // namespace rlplanner::core

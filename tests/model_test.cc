// Tests for the data model: topic vectors, prerequisite expressions,
// catalogs, constraints, interleaving templates, and plans.

#include <gtest/gtest.h>

#include "geo/latlng.h"
#include "model/catalog.h"
#include "model/constraints.h"
#include "model/interleaving_template.h"
#include "model/plan.h"
#include "model/prereq.h"
#include "model/topic_vector.h"

namespace rlplanner::model {
namespace {

using util::DynamicBitset;

// ---------------------------------------------------------------- topics --

TEST(TopicVectorTest, NewlyCoveredIdealTopics) {
  const TopicVector current = DynamicBitset::FromBits({1, 0, 0, 0});
  const TopicVector item = DynamicBitset::FromBits({1, 1, 1, 0});
  const TopicVector ideal = DynamicBitset::FromBits({0, 1, 0, 1});
  // Item newly covers topics 1 and 2; only topic 1 is ideal.
  EXPECT_EQ(NewlyCoveredIdealTopics(current, item, ideal), 1u);
}

TEST(TopicVectorTest, NewCoverageIgnoresAlreadyCovered) {
  const TopicVector current = DynamicBitset::FromBits({1, 1, 0});
  const TopicVector item = DynamicBitset::FromBits({1, 1, 0});
  const TopicVector ideal = DynamicBitset::FromBits({1, 1, 1});
  EXPECT_EQ(NewlyCoveredIdealTopics(current, item, ideal), 0u);
}

TEST(TopicVectorTest, CoverageFraction) {
  const TopicVector ideal = DynamicBitset::FromBits({1, 1, 1, 1});
  EXPECT_DOUBLE_EQ(
      CoverageFraction(DynamicBitset::FromBits({1, 1, 0, 0}), ideal), 0.5);
  EXPECT_DOUBLE_EQ(
      CoverageFraction(DynamicBitset::FromBits({0, 0, 0, 0}), ideal), 0.0);
  // Empty ideal is vacuously covered.
  EXPECT_DOUBLE_EQ(CoverageFraction(DynamicBitset::FromBits({1, 0, 0, 0}),
                                    DynamicBitset(4)),
                   1.0);
}

TEST(TopicVectorTest, JaccardSimilarity) {
  const TopicVector a = DynamicBitset::FromBits({1, 1, 0, 0});
  const TopicVector b = DynamicBitset::FromBits({0, 1, 1, 0});
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, b), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, a), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(DynamicBitset(4), DynamicBitset(4)),
                   1.0);
}

// --------------------------------------------------------------- prereqs --

TEST(PrereqTest, EmptyAlwaysSatisfied) {
  PrereqExpr expr;
  EXPECT_TRUE(expr.SatisfiedAt({-1, -1, -1}, 0, 3));
}

TEST(PrereqTest, AndRequiresAllGroups) {
  // (0) AND (1), gap 1. Candidate at position 2.
  const PrereqExpr expr = PrereqExpr::All({0, 1});
  EXPECT_TRUE(expr.SatisfiedAt({0, 1, -1}, 2, 1));
  EXPECT_FALSE(expr.SatisfiedAt({0, -1, -1}, 2, 1));  // item 1 missing
}

TEST(PrereqTest, OrRequiresAnyMember) {
  const PrereqExpr expr = PrereqExpr::AnyOf({0, 1});
  EXPECT_TRUE(expr.SatisfiedAt({-1, 0, -1}, 2, 1));
  EXPECT_TRUE(expr.SatisfiedAt({0, -1, -1}, 2, 1));
  EXPECT_FALSE(expr.SatisfiedAt({-1, -1, -1}, 2, 1));
}

TEST(PrereqTest, GapMustBeMet) {
  // Prerequisite at position 1, candidate at 3: distance 2.
  const PrereqExpr expr = PrereqExpr::All({0});
  EXPECT_TRUE(expr.SatisfiedAt({1}, 3, 2));
  EXPECT_FALSE(expr.SatisfiedAt({1}, 3, 3));
  EXPECT_TRUE(expr.SatisfiedAt({0}, 3, 3));
}

TEST(PrereqTest, PaperCoursePlanningGapExample) {
  // "r2 = 1 if m2 or m3 is taken 1 semester (gap of 3) before m5".
  // Items: 0=m2, 1=m3 (positions); candidate m5.
  const PrereqExpr expr = PrereqExpr::AnyOf({0, 1});
  // m2 at position 0, m5 would be at position 3: distance 3 >= gap 3.
  EXPECT_TRUE(expr.SatisfiedAt({0, -1}, 3, 3));
  // m2 at position 1, m5 at position 3: distance 2 < 3.
  EXPECT_FALSE(expr.SatisfiedAt({1, -1}, 3, 3));
}

TEST(PrereqTest, ReferencedItemsDeduplicates) {
  PrereqExpr expr;
  expr.AddGroup({3, 1});
  expr.AddGroup({1, 2});
  EXPECT_EQ(expr.ReferencedItems(), (std::vector<ItemId>{1, 2, 3}));
}

TEST(PrereqTest, ToStringRendersCnf) {
  PrereqExpr expr;
  expr.AddGroup({3});
  expr.AddGroup({1, 2});
  EXPECT_EQ(expr.ToString(), "(3) AND (1 OR 2)");
}

TEST(PrereqTest, EmptyGroupsIgnored) {
  PrereqExpr expr;
  expr.AddGroup({});
  EXPECT_TRUE(expr.empty());
}

// --------------------------------------------------------------- catalog --

Catalog TwoItemCatalog() {
  Catalog catalog(Domain::kCourse, {"alpha", "beta"});
  Item a;
  a.code = "A";
  a.name = "Item A";
  a.type = ItemType::kPrimary;
  a.category = 0;
  a.credits = 3.0;
  a.topics = DynamicBitset::FromBits({1, 0});
  EXPECT_TRUE(catalog.AddItem(std::move(a)).ok());
  Item b;
  b.code = "B";
  b.name = "Item B";
  b.type = ItemType::kSecondary;
  b.category = 1;
  b.credits = 3.0;
  b.topics = DynamicBitset::FromBits({0, 1});
  b.prereqs = PrereqExpr::All({0});
  EXPECT_TRUE(catalog.AddItem(std::move(b)).ok());
  return catalog;
}

TEST(CatalogTest, AddAssignsDenseIds) {
  const Catalog catalog = TwoItemCatalog();
  EXPECT_EQ(catalog.size(), 2u);
  EXPECT_EQ(catalog.item(0).code, "A");
  EXPECT_EQ(catalog.item(1).code, "B");
  EXPECT_EQ(catalog.item(1).id, 1);
}

TEST(CatalogTest, DuplicateCodeRejected) {
  Catalog catalog = TwoItemCatalog();
  Item dup;
  dup.code = "A";
  dup.topics = DynamicBitset(2);
  auto added = catalog.AddItem(std::move(dup));
  EXPECT_FALSE(added.ok());
  EXPECT_EQ(added.status().code(), util::StatusCode::kAlreadyExists);
}

TEST(CatalogTest, TopicVectorSizeMismatchRejected) {
  Catalog catalog = TwoItemCatalog();
  Item bad;
  bad.code = "C";
  bad.topics = DynamicBitset(5);
  EXPECT_FALSE(catalog.AddItem(std::move(bad)).ok());
}

TEST(CatalogTest, FindByCode) {
  const Catalog catalog = TwoItemCatalog();
  EXPECT_EQ(catalog.FindByCode("B").value(), 1);
  EXPECT_FALSE(catalog.FindByCode("missing").ok());
}

TEST(CatalogTest, TopicLookupAndMakeVector) {
  const Catalog catalog = TwoItemCatalog();
  EXPECT_EQ(catalog.TopicId("alpha"), 0);
  EXPECT_EQ(catalog.TopicId("nope"), -1);
  auto bits = catalog.MakeTopicVector({"beta"});
  ASSERT_TRUE(bits.ok());
  EXPECT_TRUE(bits.value().Test(1));
  EXPECT_FALSE(catalog.MakeTopicVector({"nope"}).ok());
}

TEST(CatalogTest, CountsAndTypeQueries) {
  const Catalog catalog = TwoItemCatalog();
  EXPECT_EQ(catalog.CountByType(ItemType::kPrimary), 1);
  EXPECT_EQ(catalog.CountByType(ItemType::kSecondary), 1);
  EXPECT_EQ(catalog.CountByCategory(0), 1);
  EXPECT_EQ(catalog.ItemsOfType(ItemType::kPrimary),
            (std::vector<ItemId>{0}));
}

TEST(CatalogTest, ValidatePassesOnConsistentCatalog) {
  EXPECT_TRUE(TwoItemCatalog().Validate().ok());
}

TEST(CatalogTest, ValidateCatchesSelfPrereq) {
  Catalog catalog(Domain::kCourse, {"t"});
  Item item;
  item.code = "X";
  item.topics = DynamicBitset(1);
  item.category = 0;
  item.prereqs = PrereqExpr::All({0});  // itself
  EXPECT_TRUE(catalog.AddItem(std::move(item)).ok());
  EXPECT_FALSE(catalog.Validate().ok());
}

// ------------------------------------------------------------- templates --

TEST(TemplateTest, FromStringsParses) {
  auto parsed = InterleavingTemplate::FromStrings({"PPS", "pss"});
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().size(), 2u);
  EXPECT_EQ(parsed.value().length(), 3u);
  EXPECT_EQ(parsed.value().permutation(0)[0], ItemType::kPrimary);
  EXPECT_EQ(parsed.value().permutation(1)[1], ItemType::kSecondary);
}

TEST(TemplateTest, RejectsUnknownCharacters) {
  EXPECT_FALSE(InterleavingTemplate::FromStrings({"PXS"}).ok());
}

TEST(TemplateTest, ValidateCountsEnforcesSplit) {
  auto parsed = InterleavingTemplate::FromStrings({"PPSS"});
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().ValidateCounts(2, 2).ok());
  EXPECT_FALSE(parsed.value().ValidateCounts(3, 1).ok());
}

TEST(TemplateTest, CompactStringRoundTrip) {
  auto parsed = InterleavingTemplate::FromStrings({"PSPS"});
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(InterleavingTemplate::ToCompactString(
                parsed.value().permutation(0)),
            "PSPS");
}

// ------------------------------------------------------------ constraints --

TEST(HardConstraintsTest, HorizonFromUniformCredits) {
  HardConstraints hard;
  hard.min_credits = 30.0;
  hard.num_primary = 5;
  hard.num_secondary = 5;
  EXPECT_EQ(hard.HorizonForUniformCredits(3.0), 10);
  EXPECT_EQ(hard.TotalItems(), 10);
}

TEST(HardConstraintsTest, ValidateRejectsBadValues) {
  HardConstraints hard;
  hard.gap = 0;
  EXPECT_FALSE(hard.Validate().ok());
  hard.gap = 1;
  hard.num_primary = -1;
  EXPECT_FALSE(hard.Validate().ok());
  hard.num_primary = 2;
  hard.category_min_counts = {5, 5};  // sums beyond total items (2)
  EXPECT_FALSE(hard.Validate().ok());
}

TEST(TaskInstanceTest, ValidateChecksCrossFieldConsistency) {
  Catalog catalog = TwoItemCatalog();
  TaskInstance instance;
  instance.catalog = &catalog;
  instance.hard.min_credits = 6.0;
  instance.hard.num_primary = 1;
  instance.hard.num_secondary = 1;
  instance.hard.gap = 1;
  instance.soft.ideal_topics = DynamicBitset(2);
  EXPECT_TRUE(instance.Validate().ok());

  // Wrong ideal vector size.
  instance.soft.ideal_topics = DynamicBitset(3);
  EXPECT_FALSE(instance.Validate().ok());
  instance.soft.ideal_topics = DynamicBitset(2);

  // More primaries required than the catalog has.
  instance.hard.num_primary = 2;
  EXPECT_FALSE(instance.Validate().ok());
}

TEST(TaskInstanceTest, ValidateRequiresCatalog) {
  TaskInstance instance;
  EXPECT_FALSE(instance.Validate().ok());
}

// ------------------------------------------------------------------ plan --

TEST(PlanTest, BasicAccessors) {
  const Catalog catalog = TwoItemCatalog();
  Plan plan({1, 0});
  EXPECT_EQ(plan.size(), 2u);
  EXPECT_TRUE(plan.Contains(0));
  EXPECT_EQ(plan.PositionOf(1), 0);
  EXPECT_EQ(plan.PositionOf(0), 1);
  EXPECT_EQ(plan.PositionOf(99), -1);
  EXPECT_DOUBLE_EQ(plan.TotalCredits(catalog), 6.0);
  EXPECT_EQ(plan.CountByType(catalog, ItemType::kPrimary), 1);
  EXPECT_EQ(plan.CountByCategory(catalog, 1), 1);
}

TEST(PlanTest, PositionTable) {
  Plan plan({1});
  const auto table = plan.PositionTable(3);
  EXPECT_EQ(table, (std::vector<int>{-1, 0, -1}));
}

TEST(PlanTest, TypeSequenceAndCoveredTopics) {
  const Catalog catalog = TwoItemCatalog();
  Plan plan({0, 1});
  const TypeSequence types = plan.ToTypeSequence(catalog);
  ASSERT_EQ(types.size(), 2u);
  EXPECT_EQ(types[0], ItemType::kPrimary);
  EXPECT_EQ(types[1], ItemType::kSecondary);
  EXPECT_EQ(plan.CoveredTopics(catalog).Count(), 2u);
}

TEST(PlanTest, ToStringRendering) {
  const Catalog catalog = TwoItemCatalog();
  Plan plan({0, 1});
  EXPECT_EQ(plan.ToString(catalog), "A : primary -> B : secondary");
}

TEST(PlanTest, EqualityByItems) {
  EXPECT_EQ(Plan({1, 2}), Plan({1, 2}));
  EXPECT_FALSE(Plan({1, 2}) == Plan({2, 1}));
}

TEST(PlanTest, TotalDistanceOverLocations) {
  Catalog catalog(Domain::kTrip, {"t"});
  auto add = [&catalog](const char* code, double lat, double lng) {
    Item item;
    item.code = code;
    item.topics = DynamicBitset::FromBits({1});
    item.category = 0;
    item.location = {lat, lng};
    EXPECT_TRUE(catalog.AddItem(std::move(item)).ok());
  };
  add("a", 40.0, -74.0);
  add("b", 40.1, -74.0);
  add("c", 40.1, -74.1);
  const Plan plan({0, 1, 2});
  const double leg1 = geo::HaversineKm(catalog.item(0).location,
                                       catalog.item(1).location);
  const double leg2 = geo::HaversineKm(catalog.item(1).location,
                                       catalog.item(2).location);
  EXPECT_NEAR(plan.TotalDistanceKm(catalog), leg1 + leg2, 1e-9);
  EXPECT_DOUBLE_EQ(Plan({0}).TotalDistanceKm(catalog), 0.0);
}

TEST(PlanTest, MeanPopularity) {
  Catalog catalog(Domain::kTrip, {"t"});
  for (double pop : {2.0, 4.0, 5.0}) {
    Item item;
    item.code = "p" + std::to_string(static_cast<int>(pop));
    item.topics = DynamicBitset::FromBits({1});
    item.category = 0;
    item.popularity = pop;
    EXPECT_TRUE(catalog.AddItem(std::move(item)).ok());
  }
  EXPECT_DOUBLE_EQ(Plan({0, 1, 2}).MeanPopularity(catalog), 11.0 / 3.0);
  EXPECT_DOUBLE_EQ(Plan().MeanPopularity(catalog), 0.0);
}

TEST(CatalogTest, ValidateCatchesOutOfRangePrereqAndCategory) {
  Catalog catalog(Domain::kCourse, {"t"});
  Item item;
  item.code = "X";
  item.topics = DynamicBitset(1);
  item.category = 7;  // only {primary, secondary} names exist
  EXPECT_TRUE(catalog.AddItem(std::move(item)).ok());
  EXPECT_FALSE(catalog.Validate().ok());

  Catalog catalog2(Domain::kCourse, {"t"});
  Item bad_pre;
  bad_pre.code = "Y";
  bad_pre.topics = DynamicBitset(1);
  bad_pre.category = 0;
  bad_pre.prereqs = PrereqExpr::All({42});  // out of range
  EXPECT_TRUE(catalog2.AddItem(std::move(bad_pre)).ok());
  EXPECT_FALSE(catalog2.Validate().ok());

  Catalog catalog3(Domain::kCourse, {"t"});
  Item negative;
  negative.code = "Z";
  negative.topics = DynamicBitset(1);
  negative.category = 0;
  negative.credits = -3.0;
  EXPECT_TRUE(catalog3.AddItem(std::move(negative)).ok());
  EXPECT_FALSE(catalog3.Validate().ok());
}

TEST(TemplateTest, EmptyTemplateBehaviour) {
  InterleavingTemplate empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.length(), 0u);
  // Validating counts on an empty template is vacuous.
  EXPECT_TRUE(empty.ValidateCounts(3, 3).ok());
}

TEST(HardConstraintsTest, HorizonFallsBackToSplitForZeroCredits) {
  HardConstraints hard;
  hard.num_primary = 2;
  hard.num_secondary = 3;
  EXPECT_EQ(hard.HorizonForUniformCredits(0.0), 5);
}

TEST(ItemTypeTest, Names) {
  EXPECT_STREQ(ItemTypeName(ItemType::kPrimary), "primary");
  EXPECT_STREQ(ItemTypeName(ItemType::kSecondary), "secondary");
}

}  // namespace
}  // namespace rlplanner::model

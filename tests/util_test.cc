// Unit tests for the utility substrate: Status/Result, DynamicBitset, Rng,
// string helpers, CSV, the ASCII table renderer, HOST:PORT parsing, and the
// strict JSON reader.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "util/bitset.h"
#include "util/csv.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace rlplanner::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusTest, AllCodeNamesDistinct) {
  std::set<std::string> names;
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kFailedPrecondition,
        StatusCode::kAlreadyExists, StatusCode::kInternal,
        StatusCode::kUnimplemented}) {
    names.insert(StatusCodeName(code));
  }
  EXPECT_EQ(names.size(), 8u);
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(result.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("missing"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(BitsetTest, SetTestCount) {
  DynamicBitset bits(130);
  EXPECT_EQ(bits.size(), 130u);
  EXPECT_TRUE(bits.None());
  bits.Set(0);
  bits.Set(64);
  bits.Set(129);
  EXPECT_TRUE(bits.Test(0));
  EXPECT_TRUE(bits.Test(64));
  EXPECT_TRUE(bits.Test(129));
  EXPECT_FALSE(bits.Test(1));
  EXPECT_EQ(bits.Count(), 3u);
  bits.Set(64, false);
  EXPECT_EQ(bits.Count(), 2u);
}

TEST(BitsetTest, FromBitsMatchesToString) {
  DynamicBitset bits = DynamicBitset::FromBits({1, 0, 1, 1, 0});
  EXPECT_EQ(bits.ToString(), "10110");
  EXPECT_EQ(bits.Count(), 3u);
}

TEST(BitsetTest, BitwiseOps) {
  DynamicBitset a = DynamicBitset::FromBits({1, 1, 0, 0});
  DynamicBitset b = DynamicBitset::FromBits({0, 1, 1, 0});
  DynamicBitset or_ab = a;
  or_ab |= b;
  EXPECT_EQ(or_ab.ToString(), "1110");
  DynamicBitset and_ab = a;
  and_ab &= b;
  EXPECT_EQ(and_ab.ToString(), "0100");
  EXPECT_EQ(a.AndNot(b).ToString(), "1000");
  EXPECT_EQ(a.IntersectCount(b), 1u);
  EXPECT_TRUE(a.Intersects(b));
}

TEST(BitsetTest, ResizePreservesPrefixAndTrimsTail) {
  DynamicBitset bits(70);
  bits.Set(69);
  bits.Set(3);
  bits.Resize(64);
  EXPECT_EQ(bits.Count(), 1u);  // bit 69 trimmed away
  bits.Resize(70);
  EXPECT_FALSE(bits.Test(69));  // re-grown bits are zero
  EXPECT_TRUE(bits.Test(3));
}

TEST(BitsetTest, EqualityComparesBits) {
  EXPECT_EQ(DynamicBitset::FromBits({1, 0}), DynamicBitset::FromBits({1, 0}));
  EXPECT_FALSE(DynamicBitset::FromBits({1, 0}) ==
               DynamicBitset::FromBits({1, 1}));
  EXPECT_FALSE(DynamicBitset::FromBits({1, 0}) ==
               DynamicBitset::FromBits({1, 0, 0}));
}

TEST(BitsetTest, SetAllSetsEveryBitAndTrimsTail) {
  DynamicBitset bits(70);
  bits.SetAll();
  EXPECT_EQ(bits.Count(), 70u);
  bits.Resize(71);  // the bit past the old size must have stayed zero
  EXPECT_FALSE(bits.Test(70));
  DynamicBitset empty(0);
  empty.SetAll();
  EXPECT_EQ(empty.Count(), 0u);
}

TEST(BitsetTest, AndNotAssignClearsOtherBitsInPlace) {
  DynamicBitset bits = DynamicBitset::FromBits({1, 1, 0, 1});
  const DynamicBitset mask = DynamicBitset::FromBits({0, 1, 1, 0});
  bits.AndNotAssign(mask);
  EXPECT_EQ(bits, DynamicBitset::FromBits({1, 0, 0, 1}));
}

TEST(BitsetTest, AssignComplementOfFlipsAndResizes) {
  DynamicBitset chosen(130);
  chosen.Set(0);
  chosen.Set(64);
  chosen.Set(129);
  DynamicBitset complement(5);  // wrong size on purpose: must resize
  complement.AssignComplementOf(chosen);
  EXPECT_EQ(complement.size(), 130u);
  EXPECT_EQ(complement.Count(), 127u);
  EXPECT_FALSE(complement.Test(0));
  EXPECT_FALSE(complement.Test(64));
  EXPECT_FALSE(complement.Test(129));
  EXPECT_TRUE(complement.Test(1));
  // The tail bits past 130 stay clear, so Count() cannot overcount.
  complement.Resize(192);
  EXPECT_EQ(complement.Count(), 127u);
}

TEST(BitsetTest, ForEachSetBitVisitsAscendingAcrossWords) {
  DynamicBitset bits(200);
  const std::vector<std::size_t> expected = {0, 1, 63, 64, 65, 127, 199};
  for (std::size_t i : expected) bits.Set(i);
  std::vector<std::size_t> seen;
  bits.ForEachSetBit([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, expected);
}

TEST(BitsetTest, ForEachSetWordSkipsZeroWords) {
  DynamicBitset bits(256);
  bits.Set(2);
  bits.Set(130);
  bits.Set(131);
  std::vector<std::pair<std::size_t, std::uint64_t>> words;
  bits.ForEachSetWord([&](std::size_t base, std::uint64_t word) {
    words.emplace_back(base, word);
  });
  ASSERT_EQ(words.size(), 2u);  // words 1 and 3 are zero and skipped
  EXPECT_EQ(words[0].first, 0u);
  EXPECT_EQ(words[0].second, std::uint64_t{1} << 2);
  EXPECT_EQ(words[1].first, 128u);
  EXPECT_EQ(words[1].second, (std::uint64_t{1} << 2) | (std::uint64_t{1} << 3));
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(10), 10u);
    const int v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, DoubleRangeRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble(2.0, 4.0);
    EXPECT_GE(d, 2.0);
    EXPECT_LT(d, 4.0);
  }
}

TEST(RngTest, GaussianHasRoughMoments) {
  Rng rng(99);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian(1.0, 2.0);
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(5);
  EXPECT_FALSE(rng.NextBernoulli(0.0));
  EXPECT_TRUE(rng.NextBernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(3);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = values;
  rng.Shuffle(shuffled);
  std::multiset<int> a(values.begin(), values.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  const auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, JoinRoundTripsSplit) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ";"), "x;y;z");
  EXPECT_EQ(Split(Join(parts, ";"), ';'), parts);
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hello \t\n"), "hello");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(StringUtilTest, FormatDoubleTrimsZeros) {
  EXPECT_EQ(FormatDouble(4.60, 2), "4.6");
  EXPECT_EQ(FormatDouble(5.00, 2), "5");
  EXPECT_EQ(FormatDouble(3.39, 2), "3.39");
  EXPECT_EQ(FormatDouble(0.0, 2), "0");
}

TEST(CsvTest, ParseSimple) {
  auto doc = ParseCsv("a,b,c\n1,2,3\n4,5,6\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().header, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(doc.value().rows.size(), 2u);
  EXPECT_EQ(doc.value().rows[1][2], "6");
  EXPECT_EQ(doc.value().ColumnIndex("b"), 1);
  EXPECT_EQ(doc.value().ColumnIndex("zzz"), -1);
}

TEST(CsvTest, QuotedFieldsWithCommasAndNewlines) {
  auto doc = ParseCsv("name,notes\n\"doe, jane\",\"line1\nline2\"\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().rows[0][0], "doe, jane");
  EXPECT_EQ(doc.value().rows[0][1], "line1\nline2");
}

TEST(CsvTest, EscapedQuotes) {
  auto doc = ParseCsv("a\n\"say \"\"hi\"\"\"\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().rows[0][0], "say \"hi\"");
}

TEST(CsvTest, RowWidthMismatchRejected) {
  auto doc = ParseCsv("a,b\n1\n");
  EXPECT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, UnterminatedQuoteRejected) {
  auto doc = ParseCsv("a\n\"oops\n");
  EXPECT_FALSE(doc.ok());
}

TEST(CsvTest, WriteThenParseRoundTrips) {
  CsvDocument doc;
  doc.header = {"k", "v"};
  doc.rows = {{"x,1", "plain"}, {"with \"q\"", "line\nbreak"}};
  auto reparsed = ParseCsv(WriteCsv(doc));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.value().header, doc.header);
  EXPECT_EQ(reparsed.value().rows, doc.rows);
}

TEST(CsvTest, MissingTrailingNewlineStillParses) {
  auto doc = ParseCsv("a,b\n1,2");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc.value().rows.size(), 1u);
  EXPECT_EQ(doc.value().rows[0][1], "2");
}

TEST(StatsTest, EmptySampleIsAllZero) {
  const Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(ConfidenceHalfWidth95(s), 0.0);
}

TEST(StatsTest, SummaryOfKnownSample) {
  const Summary s = Summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);  // classic textbook sample
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
}

TEST(StatsTest, MedianOddCount) {
  EXPECT_DOUBLE_EQ(Summarize({3.0, 1.0, 2.0}).median, 2.0);
}

TEST(StatsTest, ConfidenceIntervalShrinksWithN) {
  Summary small = Summarize({1, 2, 3, 4});
  Summary large = small;
  large.count = 400;
  EXPECT_GT(ConfidenceHalfWidth95(small), ConfidenceHalfWidth95(large));
}

TEST(StatsTest, PerfectCorrelation) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  std::vector<double> neg = {10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, neg), -1.0, 1e-12);
}

TEST(StatsTest, CorrelationEdgeCases) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 2}, {1}), 0.0);  // size mismatch
  EXPECT_DOUBLE_EQ(PearsonCorrelation({3, 3, 3}, {1, 2, 3}), 0.0);
}

TEST(StatsTest, LinearSlopeRecoversLine) {
  const std::vector<double> x = {100, 200, 300, 500, 1000};
  std::vector<double> y;
  for (double v : x) y.push_back(3.5 * v + 10.0);
  EXPECT_NEAR(LinearSlope(x, y), 3.5, 1e-9);
  EXPECT_DOUBLE_EQ(LinearSlope({2, 2, 2}, {1, 2, 3}), 0.0);
}

TEST(AsciiTableTest, AlignsColumns) {
  AsciiTable table({"name", "score"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22.5"});
  const std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("| name  | score |"), std::string::npos);
  EXPECT_NE(rendered.find("| alpha | 1     |"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(AsciiTableTest, ShortRowsPadded) {
  AsciiTable table({"a", "b", "c"});
  table.AddRow({"only"});
  EXPECT_NE(table.ToString().find("| only |"), std::string::npos);
}

TEST(ThreadPoolTest, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_GE(pool.num_threads(), 1u);
  std::vector<std::atomic<int>> counts(1000);
  pool.ParallelFor(counts.size(),
                   [&](std::size_t i) { counts[i].fetch_add(1); });
  for (const auto& count : counts) EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, HandlesEmptyAndSingleRanges) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](std::size_t i) { calls += static_cast<int>(i) + 1; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // The caller participates in its own job, so a worker that issues a nested
  // ParallelFor makes progress even when every pool thread is busy.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.ParallelFor(4, [&](std::size_t) {
    pool.ParallelFor(4, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 16);
}

TEST(ThreadPoolTest, DefaultSizeUsesAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, NumWorkersReportsPoolSize) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.NumWorkers(), 3u);
  EXPECT_EQ(pool.NumWorkers(), pool.num_threads());
}

TEST(ParseHostPortTest, AcceptsValidSpecs) {
  auto listen = ParseHostPort("127.0.0.1:8080");
  ASSERT_TRUE(listen.ok()) << listen.status().ToString();
  EXPECT_EQ(listen.value().host, "127.0.0.1");
  EXPECT_EQ(listen.value().port, 8080);
  EXPECT_EQ(listen.value().ToString(), "127.0.0.1:8080");

  // Port 0 is legal (ephemeral bind), as is the max port.
  EXPECT_EQ(ParseHostPort("0.0.0.0:0").value().port, 0);
  EXPECT_EQ(ParseHostPort("localhost:65535").value().port, 65535);
}

TEST(ParseHostPortTest, RejectsMalformedSpecsByName) {
  const struct {
    const char* spec;
    const char* expect_in_message;
  } cases[] = {
      {"nocolon", "HOST:PORT"},      {":8080", "host"},
      {"host:", "port"},             {"host:notaport", "port"},
      {"host:-1", "port"},           {"host:65536", "port"},
      {"host:80x", "port"},          {"", "HOST:PORT"},
  };
  for (const auto& c : cases) {
    auto parsed = ParseHostPort(c.spec);
    ASSERT_FALSE(parsed.ok()) << c.spec;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << c.spec;
    EXPECT_NE(parsed.status().message().find(c.expect_in_message),
              std::string::npos)
        << c.spec << " -> " << parsed.status().ToString();
  }
}

TEST(JsonParseTest, ParsesScalarsArraysAndObjects) {
  auto document = json::Parse(
      " {\"a\": 1, \"b\": -2.5e2, \"c\": [true, false, null], "
      "\"d\": {\"nested\": \"str\\u0041\\n\"}} ");
  ASSERT_TRUE(document.ok()) << document.status().ToString();
  const json::Value& root = document.value();
  ASSERT_TRUE(root.is_object());
  ASSERT_NE(root.Find("a"), nullptr);
  EXPECT_TRUE(root.Find("a")->is_integer());
  EXPECT_EQ(root.Find("a")->AsNumber(), 1.0);
  EXPECT_FALSE(root.Find("b")->is_integer());  // fraction/exponent present
  EXPECT_EQ(root.Find("b")->AsNumber(), -250.0);
  ASSERT_TRUE(root.Find("c")->is_array());
  ASSERT_EQ(root.Find("c")->AsArray().size(), 3u);
  EXPECT_TRUE(root.Find("c")->AsArray()[0].AsBool());
  EXPECT_TRUE(root.Find("c")->AsArray()[2].is_null());
  const json::Value* nested = root.Find("d")->Find("nested");
  ASSERT_NE(nested, nullptr);
  EXPECT_EQ(nested->AsString(), "strA\n");
  EXPECT_EQ(root.Find("missing"), nullptr);
}

TEST(JsonParseTest, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",            "{",           "{\"a\":}",      "[1,]",
      "{\"a\" 1}",   "nul",         "01",            "1.",
      "\"unterminated", "{} trailing", "[1] [2]",    "{\"a\":NaN}",
      "\"bad \\u12 escape\"",
  };
  for (const char* text : bad) {
    auto document = json::Parse(text);
    EXPECT_FALSE(document.ok()) << "accepted: " << text;
    if (!document.ok()) {
      EXPECT_EQ(document.status().code(), StatusCode::kInvalidArgument);
    }
  }
  // Depth bound: 40 nested arrays exceed the 32-level limit.
  std::string deep(40, '[');
  deep += std::string(40, ']');
  EXPECT_FALSE(json::Parse(deep).ok());
}

TEST(ThreadPoolTest, NestedCallsAcrossPoolsDegradeSerially) {
  // A ParallelFor issued from inside *another pool's* task must also run
  // inline: the depth marker is per-thread, not per-pool, so no worker is
  // ever parked on an inner latch.
  ThreadPool outer(2);
  ThreadPool inner(2);
  std::atomic<int> total{0};
  outer.ParallelFor(4, [&](std::size_t) {
    inner.ParallelFor(4, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 16);
}

}  // namespace
}  // namespace rlplanner::util

// Tests for the RL layer: action masking, SARSA learning (Algorithm 1),
// greedy recommendation, and policy transfer.

#include <gtest/gtest.h>

#include <algorithm>

#include "datagen/course_data.h"
#include "datagen/synthetic.h"
#include "datagen/trip_data.h"
#include "mdp/cmdp.h"
#include "rl/action_mask.h"
#include "rl/policy_inspector.h"
#include "rl/recommender.h"
#include "rl/sarsa.h"
#include "rl/transfer.h"

namespace rlplanner::rl {
namespace {

mdp::RewardWeights ToyWeights() {
  mdp::RewardWeights weights;
  weights.epsilon = 1.0;
  return weights;
}

// ------------------------------------------------------------ ActionMask --

TEST(ActionMaskTest, DisallowsChosenItems) {
  datagen::Dataset dataset = datagen::MakeTableIIToy();
  const model::TaskInstance instance = dataset.Instance();
  const mdp::RewardWeights weights = ToyWeights();
  const mdp::RewardFunction reward(instance, weights);
  const ActionMask mask(reward, 6, /*mask_type_overflow=*/true);
  mdp::EpisodeState state(instance);
  state.Add(0);
  EXPECT_FALSE(mask.Allowed(state, 0));
  EXPECT_TRUE(mask.Allowed(state, 1));
  EXPECT_TRUE(mask.AnyAllowed(state));
}

TEST(ActionMaskTest, ForcesPrimariesWhenSlotsRunOut) {
  // Toy: 3 primaries required in 6 slots. After 3 secondaries, only
  // primaries may be chosen.
  datagen::Dataset dataset = datagen::MakeTableIIToy();
  const model::TaskInstance instance = dataset.Instance();
  const mdp::RewardWeights weights = ToyWeights();
  const mdp::RewardFunction reward(instance, weights);
  const ActionMask mask(reward, 6, true);
  mdp::EpisodeState state(instance);
  state.Add(1);  // m2 secondary
  state.Add(3);  // m4 secondary
  state.Add(4);  // m5 secondary
  // Remaining slots = 3, primaries owed = 3: every secondary is masked.
  for (const model::Item& item : dataset.catalog.items()) {
    if (state.Contains(item.id)) continue;
    if (item.type == model::ItemType::kSecondary) {
      EXPECT_FALSE(mask.Allowed(state, item.id)) << item.code;
    } else {
      EXPECT_TRUE(mask.Allowed(state, item.id)) << item.code;
    }
  }
}

TEST(ActionMaskTest, DisabledMaskOnlyChecksFeasibility) {
  datagen::Dataset dataset = datagen::MakeTableIIToy();
  const model::TaskInstance instance = dataset.Instance();
  const mdp::RewardWeights weights = ToyWeights();
  const mdp::RewardFunction reward(instance, weights);
  const ActionMask mask(reward, 6, /*mask_type_overflow=*/false);
  mdp::EpisodeState state(instance);
  state.Add(1);
  state.Add(3);
  state.Add(4);
  // With masking off, the dead-end secondary choice is allowed (this is
  // what lets the EDA baseline walk into invalid splits).
  int allowed_secondaries = 0;
  for (const model::Item& item : dataset.catalog.items()) {
    if (!state.Contains(item.id) &&
        item.type == model::ItemType::kSecondary &&
        mask.Allowed(state, item.id)) {
      ++allowed_secondaries;
    }
  }
  EXPECT_EQ(allowed_secondaries, 0);  // toy has only 3 secondaries, all used
  EXPECT_TRUE(mask.Allowed(state, 0));
}

TEST(ActionMaskTest, TripMaskProtectsPrimaryReachability) {
  datagen::Dataset dataset = datagen::MakeNycTrip();
  const model::TaskInstance instance = dataset.Instance();
  mdp::RewardWeights weights;
  const mdp::RewardFunction reward(instance, weights);
  const ActionMask mask(reward, static_cast<int>(dataset.catalog.size()),
                        true);
  // From an empty state every prereq-free POI within budget should be fine.
  mdp::EpisodeState state(instance);
  EXPECT_TRUE(mask.AnyAllowed(state));
}

TEST(ActionMaskTest, BlocksActionsThatStrandAPendingCore) {
  // DS-CT has exactly 5 cores, so every core must be scheduled. CS 677
  // needs a math/stats elective at least `gap`=3 slots earlier; once the
  // episode is deep enough that no enabler could still precede CS 677 by
  // 3 slots, *any* non-enabling action must be masked.
  datagen::Dataset dataset = datagen::MakeUniv1DsCt();
  const model::TaskInstance instance = dataset.Instance();
  mdp::RewardWeights weights;
  const mdp::RewardFunction reward(instance, weights);
  const ActionMask mask(reward, /*horizon=*/10, true);

  auto id = [&](const char* code) {
    return dataset.catalog.FindByCode(code).value();
  };
  mdp::EpisodeState state(instance);
  // Six slots burned without any CS 677 enabler: 4 cores placed legally
  // (675 @0, 610 @1, 634 @4 via 610, 644 @5? needs 631/634 gap 3 — place
  // 644 last legal spot) — use non-enabler electives elsewhere.
  state.Add(id("CS 675"));   // 0 core
  state.Add(id("CS 610"));   // 1 core
  state.Add(id("CS 608"));   // 2 elective (not an enabler)
  state.Add(id("CS 630"));   // 3 elective
  state.Add(id("CS 634"));   // 4 core (610 @1, gap 3 ok)
  state.Add(id("CS 643"));   // 5 elective
  // Position 6 is next; remaining cores: CS 644 (needs 631 OR 634: 634@4,
  // 6-4=2 <3 — so 644 must go at >=7) and CS 677 (needs a math elective
  // >=3 earlier; none placed, so the enabler must go NOW at 6 for CS 677
  // to fit at 9). A non-enabling elective at slot 6 strands CS 677:
  EXPECT_FALSE(mask.Allowed(state, id("CS 639")));
  EXPECT_FALSE(mask.Allowed(state, id("IS 601")));
  // An enabling elective is allowed:
  EXPECT_TRUE(mask.Allowed(state, id("MATH 663")));
  EXPECT_TRUE(mask.Allowed(state, id("MATH 661")));
}

// Randomized old-vs-new equivalence: the word-level AllowedSet must agree
// bit-for-bit with the per-id Allowed() loop on every state a random
// admissible episode can reach, across both domains and both mask settings.
TEST(ActionMaskTest, AllowedSetMatchesPerIdScanOnRandomEpisodes) {
  const std::vector<datagen::Dataset> datasets = {
      datagen::MakeTableIIToy(), datagen::MakeUniv1DsCt(),
      datagen::MakeUniv2Ds(), datagen::MakeNycTrip()};
  util::Rng rng(2024);
  for (const datagen::Dataset& dataset : datasets) {
    const model::TaskInstance instance = dataset.Instance();
    mdp::RewardWeights weights;
    const mdp::RewardFunction reward(instance, weights);
    const int horizon =
        dataset.catalog.domain() == model::Domain::kTrip
            ? static_cast<int>(dataset.catalog.size())
            : instance.hard.TotalItems();
    for (const bool overflow_mask : {true, false}) {
      const ActionMask mask(reward, horizon, overflow_mask);
      util::DynamicBitset allowed(dataset.catalog.size());
      for (int episode = 0; episode < 8; ++episode) {
        mdp::EpisodeState state(instance);
        state.Add(static_cast<model::ItemId>(
            rng.NextIndex(dataset.catalog.size())));
        while (static_cast<int>(state.Length()) < horizon) {
          mask.AllowedSet(state, &allowed);
          std::vector<model::ItemId> expected;
          for (std::size_t i = 0; i < dataset.catalog.size(); ++i) {
            const auto item = static_cast<model::ItemId>(i);
            EXPECT_EQ(allowed.Test(i), mask.Allowed(state, item))
                << dataset.name << " item " << i << " at length "
                << state.Length();
            if (mask.Allowed(state, item)) expected.push_back(item);
          }
          ASSERT_EQ(allowed.Count(), expected.size());
          if (expected.empty()) break;
          state.Add(expected[rng.NextIndex(expected.size())]);
        }
      }
    }
  }
}

// ------------------------------------------------------------------ SARSA --

TEST(SarsaTest, LearnsNonTrivialQTableOnToy) {
  datagen::Dataset dataset = datagen::MakeTableIIToy();
  const model::TaskInstance instance = dataset.Instance();
  const mdp::RewardWeights weights = ToyWeights();
  const mdp::RewardFunction reward(instance, weights);
  SarsaConfig config;
  config.num_episodes = 100;
  config.start_item = 0;
  SarsaLearner learner(instance, reward, config, 11);
  const mdp::QTable q = learner.Learn();
  EXPECT_GT(q.NonZeroFraction(), 0.05);
  EXPECT_GT(q.MaxAbsValue(), 0.0);
  EXPECT_EQ(learner.episode_returns().size(), 100u);
}

TEST(SarsaTest, EpisodeReturnsAreFiniteAndNonNegative) {
  datagen::Dataset dataset = datagen::MakeUniv1DsCt();
  const model::TaskInstance instance = dataset.Instance();
  mdp::RewardWeights weights;
  const mdp::RewardFunction reward(instance, weights);
  SarsaConfig config;
  config.num_episodes = 50;
  config.start_item = dataset.default_start;
  SarsaLearner learner(instance, reward, config, 5);
  (void)learner.Learn();
  for (double r : learner.episode_returns()) {
    EXPECT_GE(r, 0.0);
    EXPECT_LT(r, 1e6);
  }
}

TEST(SarsaTest, DeterministicForSameSeed) {
  datagen::Dataset dataset = datagen::MakeTableIIToy();
  const model::TaskInstance instance = dataset.Instance();
  const mdp::RewardWeights weights = ToyWeights();
  const mdp::RewardFunction reward(instance, weights);
  SarsaConfig config;
  config.num_episodes = 60;
  config.start_item = 0;
  SarsaLearner a(instance, reward, config, 99);
  SarsaLearner b(instance, reward, config, 99);
  const mdp::QTable qa = a.Learn();
  const mdp::QTable qb = b.Learn();
  for (std::size_t s = 0; s < qa.num_items(); ++s) {
    for (std::size_t t = 0; t < qa.num_items(); ++t) {
      EXPECT_DOUBLE_EQ(qa.Get(s, t), qb.Get(s, t));
    }
  }
}

TEST(SarsaTest, HorizonMatchesDomain) {
  datagen::Dataset courses = datagen::MakeUniv1DsCt();
  const model::TaskInstance course_instance = courses.Instance();
  mdp::RewardWeights weights;
  const mdp::RewardFunction course_reward(course_instance, weights);
  SarsaConfig config;
  SarsaLearner course_learner(course_instance, course_reward, config);
  EXPECT_EQ(course_learner.Horizon(), 10);

  datagen::Dataset trips = datagen::MakeNycTrip();
  const model::TaskInstance trip_instance = trips.Instance();
  const mdp::RewardFunction trip_reward(trip_instance, weights);
  SarsaLearner trip_learner(trip_instance, trip_reward, config);
  EXPECT_EQ(trip_learner.Horizon(), 90);
}

// Policy iteration: with enough rounds the learner returns a policy whose
// greedy rollout satisfies every hard constraint, across seeds.
class SarsaSafetyTest : public ::testing::TestWithParam<int> {};

TEST_P(SarsaSafetyTest, GreedyRolloutSatisfiesHardConstraints) {
  datagen::Dataset dataset = datagen::MakeUniv1DsCt();
  const model::TaskInstance instance = dataset.Instance();
  mdp::RewardWeights weights;
  const mdp::RewardFunction reward(instance, weights);
  SarsaConfig config;
  config.num_episodes = 500;
  config.start_item = dataset.default_start;
  SarsaLearner learner(instance, reward, config,
                       static_cast<std::uint64_t>(GetParam()));
  const mdp::QTable q = learner.Learn();

  RecommendConfig recommend;
  recommend.start_item = dataset.default_start;
  const model::Plan plan = RecommendPlan(q, instance, reward, recommend);
  const mdp::CmdpSpec spec = mdp::CmdpSpec::FromInstance(instance);
  EXPECT_TRUE(spec.Satisfied(plan))
      << "seed " << GetParam() << ": " << plan.ToString(dataset.catalog);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SarsaSafetyTest, ::testing::Range(100, 110));

// TD update-rule variants: all three learn usable policies on the toy.
class UpdateRuleTest : public ::testing::TestWithParam<UpdateRule> {};

TEST_P(UpdateRuleTest, LearnsAndRecommendsValidToyPlan) {
  datagen::Dataset dataset = datagen::MakeTableIIToy();
  const model::TaskInstance instance = dataset.Instance();
  const mdp::RewardWeights weights = ToyWeights();
  const mdp::RewardFunction reward(instance, weights);
  SarsaConfig config;
  config.num_episodes = 120;
  config.start_item = 0;
  config.update_rule = GetParam();
  SarsaLearner learner(instance, reward, config, 7);
  const mdp::QTable q = learner.Learn();
  EXPECT_GT(q.MaxAbsValue(), 0.0);

  RecommendConfig recommend;
  recommend.start_item = 0;
  const model::Plan plan = RecommendPlan(q, instance, reward, recommend);
  const mdp::CmdpSpec spec = mdp::CmdpSpec::FromInstance(instance);
  EXPECT_TRUE(spec.Satisfied(plan));
}

INSTANTIATE_TEST_SUITE_P(Rules, UpdateRuleTest,
                         ::testing::Values(UpdateRule::kSarsa,
                                           UpdateRule::kQLearning,
                                           UpdateRule::kExpectedSarsa));

TEST(UpdateRuleTest, RulesProduceDifferentTables) {
  datagen::Dataset dataset = datagen::MakeUniv1DsCt();
  const model::TaskInstance instance = dataset.Instance();
  mdp::RewardWeights weights;
  const mdp::RewardFunction reward(instance, weights);
  SarsaConfig config;
  config.num_episodes = 100;
  config.start_item = dataset.default_start;
  config.policy_rounds = 1;  // isolate the update rule

  auto learn = [&](UpdateRule rule) {
    SarsaConfig c = config;
    c.update_rule = rule;
    SarsaLearner learner(instance, reward, c, 5);
    return learner.Learn();
  };
  const mdp::QTable sarsa = learn(UpdateRule::kSarsa);
  const mdp::QTable qlearning = learn(UpdateRule::kQLearning);
  bool any_difference = false;
  for (std::size_t s = 0; s < sarsa.num_items() && !any_difference; ++s) {
    for (std::size_t a = 0; a < sarsa.num_items(); ++a) {
      if (std::abs(sarsa.Get(s, a) - qlearning.Get(s, a)) > 1e-9) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

// ------------------------------------------------------------ Beam search --

TEST(BeamSearchTest, DegenerateBeamEqualsGreedy) {
  datagen::Dataset dataset = datagen::MakeUniv1DsCt();
  const model::TaskInstance instance = dataset.Instance();
  mdp::RewardWeights weights;
  const mdp::RewardFunction reward(instance, weights);
  const mdp::QTable q(dataset.catalog.size());
  RecommendConfig config;
  config.start_item = dataset.default_start;
  BeamConfig beam;
  beam.width = 1;
  beam.expansion = 1;
  EXPECT_EQ(RecommendPlanBeam(q, instance, reward, config, beam),
            RecommendPlan(q, instance, reward, config));
}

TEST(BeamSearchTest, RespectsHorizonAndUniqueness) {
  datagen::Dataset dataset = datagen::MakeUniv1Cs();
  const model::TaskInstance instance = dataset.Instance();
  mdp::RewardWeights weights;
  const mdp::RewardFunction reward(instance, weights);
  const mdp::QTable q(dataset.catalog.size());
  RecommendConfig config;
  config.start_item = dataset.default_start;
  BeamConfig beam;
  const model::Plan plan =
      RecommendPlanBeam(q, instance, reward, config, beam);
  EXPECT_EQ(static_cast<int>(plan.size()), instance.hard.TotalItems());
  auto items = plan.items();
  std::sort(items.begin(), items.end());
  EXPECT_EQ(std::adjacent_find(items.begin(), items.end()), items.end());
  EXPECT_EQ(plan.at(0), dataset.default_start);
}

TEST(BeamSearchTest, TripBeamStaysWithinBudgets) {
  datagen::Dataset dataset = datagen::MakeNycTrip();
  const model::TaskInstance instance = dataset.Instance();
  mdp::RewardWeights weights;
  const mdp::RewardFunction reward(instance, weights);
  const mdp::QTable q(dataset.catalog.size());
  RecommendConfig config;
  config.start_item = dataset.default_start;
  BeamConfig beam;
  beam.width = 6;
  const model::Plan plan =
      RecommendPlanBeam(q, instance, reward, config, beam);
  EXPECT_LE(plan.TotalCredits(dataset.catalog),
            instance.hard.min_credits + 1e-9);
  EXPECT_LE(plan.TotalDistanceKm(dataset.catalog),
            instance.hard.distance_threshold_km + 1e-9);
}

TEST(BeamSearchTest, RespectsExclusions) {
  datagen::Dataset dataset = datagen::MakeTableIIToy();
  const model::TaskInstance instance = dataset.Instance();
  const mdp::RewardWeights weights = ToyWeights();
  const mdp::RewardFunction reward(instance, weights);
  const mdp::QTable q(dataset.catalog.size());
  RecommendConfig config;
  config.start_item = 0;
  config.excluded = {2};  // never pick m3
  BeamConfig beam;
  const model::Plan plan =
      RecommendPlanBeam(q, instance, reward, config, beam);
  EXPECT_FALSE(plan.Contains(2));
}

// ------------------------------------------------------------ Recommender --

TEST(RecommenderTest, PlanStartsAtRequestedItemAndHasNoRepeats) {
  datagen::Dataset dataset = datagen::MakeTableIIToy();
  const model::TaskInstance instance = dataset.Instance();
  const mdp::RewardWeights weights = ToyWeights();
  const mdp::RewardFunction reward(instance, weights);
  const mdp::QTable q(dataset.catalog.size());  // all-zero: reward tiebreak
  RecommendConfig config;
  config.start_item = 2;
  const model::Plan plan = RecommendPlan(q, instance, reward, config);
  ASSERT_FALSE(plan.empty());
  EXPECT_EQ(plan.at(0), 2);
  auto items = plan.items();
  std::sort(items.begin(), items.end());
  EXPECT_EQ(std::adjacent_find(items.begin(), items.end()), items.end());
}

TEST(RecommenderTest, CoursePlansHaveExactHorizonLength) {
  datagen::Dataset dataset = datagen::MakeUniv1DsCt();
  const model::TaskInstance instance = dataset.Instance();
  mdp::RewardWeights weights;
  const mdp::RewardFunction reward(instance, weights);
  const mdp::QTable q(dataset.catalog.size());
  RecommendConfig config;
  config.start_item = dataset.default_start;
  const model::Plan plan = RecommendPlan(q, instance, reward, config);
  EXPECT_EQ(static_cast<int>(plan.size()), instance.hard.TotalItems());
}

TEST(RecommenderTest, TripPlansRespectBudgets) {
  datagen::Dataset dataset = datagen::MakeNycTrip();
  const model::TaskInstance instance = dataset.Instance();
  mdp::RewardWeights weights;
  const mdp::RewardFunction reward(instance, weights);
  const mdp::QTable q(dataset.catalog.size());
  RecommendConfig config;
  config.start_item = dataset.default_start;
  const model::Plan plan = RecommendPlan(q, instance, reward, config);
  EXPECT_LE(plan.TotalCredits(dataset.catalog),
            instance.hard.min_credits + 1e-9);
  EXPECT_LE(plan.TotalDistanceKm(dataset.catalog),
            instance.hard.distance_threshold_km + 1e-9);
}

// -------------------------------------------------------- PolicyInspector --

TEST(PolicyInspectorTest, TopActionsSortedAndBounded) {
  datagen::Dataset dataset = datagen::MakeTableIIToy();
  mdp::QTable q(dataset.catalog.size());
  q.Set(0, 1, 3.0);
  q.Set(0, 2, 5.0);
  q.Set(0, 4, 1.0);
  const PolicyInspector inspector(q, dataset.catalog);
  const auto top = inspector.TopActions(0, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].to, 2);
  EXPECT_EQ(top[1].to, 1);
  EXPECT_GT(top[0].q_value, top[1].q_value);
  EXPECT_TRUE(inspector.TopActions(-1, 3).empty());
}

TEST(PolicyInspectorTest, TopTransitionsAcrossRows) {
  datagen::Dataset dataset = datagen::MakeTableIIToy();
  mdp::QTable q(dataset.catalog.size());
  q.Set(0, 1, 1.0);
  q.Set(3, 4, 9.0);
  q.Set(2, 5, 4.0);
  const PolicyInspector inspector(q, dataset.catalog);
  const auto top = inspector.TopTransitions(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].from, 3);
  EXPECT_EQ(top[1].from, 2);
}

TEST(PolicyInspectorTest, GreedySuccessorsAndDot) {
  datagen::Dataset dataset = datagen::MakeTableIIToy();
  mdp::QTable q(dataset.catalog.size());
  q.Set(0, 3, 2.0);
  q.Set(0, 1, 1.0);
  const PolicyInspector inspector(q, dataset.catalog);
  const auto successors = inspector.GreedySuccessors();
  EXPECT_EQ(successors[0], 3);
  EXPECT_EQ(successors[1], -1);  // all-zero row

  const std::string dot = inspector.ToDot(5);
  EXPECT_NE(dot.find("digraph policy"), std::string::npos);
  EXPECT_NE(dot.find("m1"), std::string::npos);  // node label = item code
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(PolicyInspectorTest, TrainedPolicyHasMeaningfulStructure) {
  datagen::Dataset dataset = datagen::MakeTableIIToy();
  const model::TaskInstance instance = dataset.Instance();
  const mdp::RewardWeights weights = ToyWeights();
  const mdp::RewardFunction reward(instance, weights);
  SarsaConfig config;
  config.num_episodes = 150;
  config.start_item = 0;
  SarsaLearner learner(instance, reward, config, 3);
  const mdp::QTable q = learner.Learn();
  const PolicyInspector inspector(q, dataset.catalog);
  EXPECT_FALSE(inspector.TopTransitions(10).empty());
}

// --------------------------------------------------------------- Transfer --

TEST(TransferTest, SharedCodesMapDirectly) {
  const datagen::Dataset ds = datagen::MakeUniv1DsCt();
  const datagen::Dataset cs = datagen::MakeUniv1Cs();
  const auto match = PolicyTransfer::MatchByTopics(ds.catalog, cs.catalog);
  ASSERT_EQ(match.size(), cs.catalog.size());
  // CS 675 exists in both programs and must map to itself by code.
  const auto target_id = cs.catalog.FindByCode("CS 675").value();
  const auto source_id = ds.catalog.FindByCode("CS 675").value();
  EXPECT_EQ(match[target_id], source_id);
}

TEST(TransferTest, DisjointCatalogsMapByThemeSimilarity) {
  const datagen::Dataset nyc = datagen::MakeNycTrip();
  const datagen::Dataset paris = datagen::MakeParisTrip();
  const auto match = PolicyTransfer::MatchByTopics(nyc.catalog, paris.catalog);
  // The Louvre (museum + art gallery + architecture) should map to a NYC
  // POI that is at least a museum.
  const auto louvre = paris.catalog.FindByCode("louvre museum").value();
  ASSERT_GE(match[louvre], 0);
  const model::Item& mapped = nyc.catalog.item(match[louvre]);
  EXPECT_TRUE(mapped.topics.Test(
      static_cast<std::size_t>(nyc.catalog.TopicId("museum"))));
}

TEST(TransferTest, MappedTablePullsSourceValues) {
  const datagen::Dataset nyc = datagen::MakeNycTrip();
  const datagen::Dataset paris = datagen::MakeParisTrip();
  mdp::QTable source(nyc.catalog.size());
  const auto match = PolicyTransfer::MatchByTopics(nyc.catalog, paris.catalog);
  // Put a recognizable value on one mapped pair.
  model::ItemId s = -1;
  model::ItemId a = -1;
  for (std::size_t i = 0; i < match.size() && (s < 0 || a < 0); ++i) {
    if (match[i] >= 0) {
      if (s < 0) {
        s = static_cast<model::ItemId>(i);
      } else if (match[i] != match[s]) {
        a = static_cast<model::ItemId>(i);
      }
    }
  }
  ASSERT_GE(s, 0);
  ASSERT_GE(a, 0);
  source.Set(match[s], match[a], 0.77);
  const mdp::QTable mapped =
      PolicyTransfer::MapAcrossCatalogs(source, nyc.catalog, paris.catalog);
  EXPECT_DOUBLE_EQ(mapped.Get(s, a), 0.77);
  // Diagonal is never populated.
  EXPECT_DOUBLE_EQ(mapped.Get(s, s), 0.0);
}

TEST(TransferTest, SyntheticSelfTransferIsIdentity) {
  datagen::SyntheticSpec spec;
  spec.num_items = 20;
  spec.seed = 31;
  const datagen::Dataset dataset = datagen::GenerateSynthetic(spec);
  const auto match =
      PolicyTransfer::MatchByTopics(dataset.catalog, dataset.catalog);
  for (std::size_t i = 0; i < match.size(); ++i) {
    EXPECT_EQ(match[i], static_cast<model::ItemId>(i));
  }
}

}  // namespace
}  // namespace rlplanner::rl

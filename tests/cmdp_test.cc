// Tests for the CMDP constraint functionals (Eq. 1's D_j(H) <= c_j view of
// P_hard) and the plan validator built on them.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/validation.h"
#include "datagen/course_data.h"
#include "datagen/trip_data.h"
#include "mdp/cmdp.h"

namespace rlplanner::mdp {
namespace {

using model::Plan;

class ToyCmdpTest : public ::testing::Test {
 protected:
  ToyCmdpTest()
      : dataset_(datagen::MakeTableIIToy()), instance_(dataset_.Instance()) {}

  model::ItemId Id(const char* code) {
    return dataset_.catalog.FindByCode(code).value();
  }

  datagen::Dataset dataset_;
  model::TaskInstance instance_;
};

TEST_F(ToyCmdpTest, FullValidPlanSatisfiesEverything) {
  // The paper's own sequence m1->m2->m4->m5->m6->m3: all 6 courses, m5
  // after m2, m6 after m4 AND m2 (gap 1).
  const Plan plan({0, 1, 3, 4, 5, 2});
  const CmdpSpec spec = CmdpSpec::FromInstance(instance_);
  EXPECT_TRUE(spec.Satisfied(plan));
  EXPECT_TRUE(spec.Violations(plan).empty());
  for (double cost : spec.Evaluate(plan)) {
    EXPECT_DOUBLE_EQ(cost, 0.0);
  }
}

TEST_F(ToyCmdpTest, MissingCreditsDetected) {
  const Plan plan({0, 1, 3});  // 9 credits of the required 18
  const CmdpSpec spec = CmdpSpec::FromInstance(instance_);
  EXPECT_FALSE(spec.Satisfied(plan));
  const auto violations = spec.Violations(plan);
  EXPECT_NE(std::find(violations.begin(), violations.end(), "min_credits"),
            violations.end());
  EXPECT_NE(std::find(violations.begin(), violations.end(), "plan_length"),
            violations.end());
}

TEST_F(ToyCmdpTest, GapViolationDetected) {
  // m6 (needs m4 AND m2 before) placed before m4.
  const Plan plan({0, 1, 5, 3, 4, 2});
  const CmdpSpec spec = CmdpSpec::FromInstance(instance_);
  const auto violations = spec.Violations(plan);
  EXPECT_NE(std::find(violations.begin(), violations.end(),
                      "prerequisite_gap"),
            violations.end());
}

TEST_F(ToyCmdpTest, DuplicateItemsDetected) {
  const Plan plan({0, 0, 1, 3, 4, 2});
  const CmdpSpec spec = CmdpSpec::FromInstance(instance_);
  const auto violations = spec.Violations(plan);
  EXPECT_NE(std::find(violations.begin(), violations.end(),
                      "no_duplicate_items"),
            violations.end());
}

TEST_F(ToyCmdpTest, PrimaryShortfallDetected) {
  // Drop a primary: m1, m2, m4, m5 + 2 more secondaries do not exist, so
  // build a 6-item plan with only 2 primaries by replacing m6 (primary)
  // with nothing available -> use 5 items to also trip length; the split
  // cost must be positive.
  const Plan plan({1, 3, 4, 0, 2});  // 2 primaries (m1, m3), needs 3
  const CmdpSpec spec = CmdpSpec::FromInstance(instance_);
  const auto violations = spec.Violations(plan);
  EXPECT_NE(std::find(violations.begin(), violations.end(), "primary_split"),
            violations.end());
}

TEST_F(ToyCmdpTest, ExtraPrimariesAreAllowedByCaseI) {
  // Theorem 1 Case I: more primaries than required is consistent. Toy
  // requires 3 primary / 3 secondary; m1,m3,m6 primary + m2,m4,m5
  // secondary is the only full split, so check the cost function directly:
  // a plan with all three primaries plus three secondaries has cost 0, and
  // the constraint only lower-bounds primaries.
  const CmdpSpec spec = CmdpSpec::FromInstance(instance_);
  const Plan plan({0, 1, 3, 4, 5, 2});
  for (std::size_t i = 0; i < spec.constraints().size(); ++i) {
    if (spec.constraints()[i].name == "primary_split") {
      EXPECT_DOUBLE_EQ(spec.Evaluate(plan)[i], 0.0);
    }
  }
}

TEST(TripCmdpTest, TimeBudgetIsUpperBound) {
  datagen::Dataset dataset = datagen::MakeNycTrip();
  const model::TaskInstance instance = dataset.Instance();
  const CmdpSpec spec = CmdpSpec::FromInstance(instance);

  // Greedily overfill the budget with primaries.
  Plan plan;
  double hours = 0.0;
  for (const model::Item& item : dataset.catalog.items()) {
    plan.Append(item.id);
    hours += item.credits;
    if (hours > instance.hard.min_credits + 2.0) break;
  }
  const auto violations = spec.Violations(plan);
  EXPECT_NE(std::find(violations.begin(), violations.end(), "time_budget"),
            violations.end());
}

TEST(TripCmdpTest, ConsecutiveThemeRuleEnforced) {
  datagen::Dataset dataset = datagen::MakeNycTrip();
  const model::TaskInstance instance = dataset.Instance();
  const CmdpSpec spec = CmdpSpec::FromInstance(instance);

  // Two POIs sharing a primary theme back to back.
  model::ItemId a = -1;
  model::ItemId b = -1;
  for (const auto& first : dataset.catalog.items()) {
    for (const auto& second : dataset.catalog.items()) {
      if (first.id != second.id && first.primary_theme >= 0 &&
          first.primary_theme == second.primary_theme) {
        a = first.id;
        b = second.id;
        break;
      }
    }
    if (a >= 0) break;
  }
  ASSERT_GE(a, 0);
  const Plan plan({a, b});
  const auto violations = spec.Violations(plan);
  EXPECT_NE(std::find(violations.begin(), violations.end(),
                      "consecutive_theme"),
            violations.end());
}

TEST(TripCmdpTest, DistanceThresholdEnforced) {
  datagen::Dataset dataset = datagen::MakeNycTrip();
  dataset.hard.distance_threshold_km = 0.001;  // essentially nothing allowed
  const model::TaskInstance instance = dataset.Instance();
  const CmdpSpec spec = CmdpSpec::FromInstance(instance);
  const Plan plan({0, 1, 2});
  const auto violations = spec.Violations(plan);
  EXPECT_NE(std::find(violations.begin(), violations.end(),
                      "distance_threshold"),
            violations.end());
}

TEST(CategoryCmdpTest, Univ2CategoryMinimaChecked) {
  datagen::Dataset dataset = datagen::MakeUniv2Ds();
  const model::TaskInstance instance = dataset.Instance();
  const CmdpSpec spec = CmdpSpec::FromInstance(instance);
  // 15 items all from category 3 (only 8 exist) -> take first 15 items of
  // the catalog; whatever the mix, removing every elective breaks cat 5's
  // minimum of 4.
  Plan plan;
  for (const model::Item& item : dataset.catalog.items()) {
    if (item.category != 5 && plan.size() < 15) plan.Append(item.id);
  }
  const auto violations = spec.Violations(plan);
  EXPECT_NE(std::find(violations.begin(), violations.end(),
                      "category_minima"),
            violations.end());
}

TEST(ValidationReportTest, ReportsNamesAndCosts) {
  datagen::Dataset dataset = datagen::MakeTableIIToy();
  const model::TaskInstance instance = dataset.Instance();
  const Plan bad({0});
  const auto report = core::ValidatePlan(instance, bad);
  EXPECT_FALSE(report.valid);
  EXPECT_FALSE(report.violations.empty());
  EXPECT_EQ(report.costs.size(), report.constraint_names.size());
  EXPECT_NE(report.ToString().find("INVALID"), std::string::npos);

  const Plan good({0, 1, 3, 4, 5, 2});
  const auto ok_report = core::ValidatePlan(instance, good);
  EXPECT_TRUE(ok_report.valid);
  EXPECT_EQ(ok_report.ToString(), "valid");
}

}  // namespace
}  // namespace rlplanner::mdp

// Tests for the sparse Q representation: unit behavior of SparseQTable, its
// bit-identity contract against the dense QTable (the property that lets
// the learner swap representations without changing any result), and the
// end-to-end dense-vs-sparse training equivalence on the paper datasets —
// serial and deterministic-parallel, pinned per (seed, K).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/config.h"
#include "core/planner.h"
#include "datagen/course_data.h"
#include "datagen/synthetic.h"
#include "mdp/q_table.h"
#include "mdp/sparse_q_table.h"
#include "rl/parallel_sarsa.h"
#include "rl/sarsa.h"
#include "rl/sarsa_config.h"
#include "util/bitset.h"
#include "util/rng.h"

namespace rlplanner::mdp {
namespace {

// A dense/sparse pair filled with the same pseudo-random entries: a mix of
// positive, negative, explicit-zero and absent cells, the full value shape
// ArgmaxAction and the merge have to agree on.
std::pair<QTable, SparseQTable> RandomPair(std::size_t n, std::uint64_t seed,
                                           double fill = 0.3) {
  QTable dense(n);
  SparseQTable sparse(n);
  util::Rng rng(seed);
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t a = 0; a < n; ++a) {
      if (rng.NextDouble() >= fill) continue;
      double value = rng.NextDouble(-2.0, 2.0);
      if (rng.NextDouble() < 0.1) value = 0.0;  // explicit stored zero
      dense.Set(static_cast<model::ItemId>(s), static_cast<model::ItemId>(a),
                value);
      sparse.Set(static_cast<model::ItemId>(s), static_cast<model::ItemId>(a),
                 value);
    }
  }
  return {std::move(dense), std::move(sparse)};
}

bool SameCells(const QTable& dense, const SparseQTable& sparse) {
  if (dense.num_items() != sparse.num_items()) return false;
  for (std::size_t s = 0; s < dense.num_items(); ++s) {
    for (std::size_t a = 0; a < dense.num_items(); ++a) {
      const auto state = static_cast<model::ItemId>(s);
      const auto action = static_cast<model::ItemId>(a);
      if (dense.Get(state, action) != sparse.Get(state, action)) return false;
    }
  }
  return true;
}

TEST(SparseQTableTest, StartsEmptyAndReadsZero) {
  SparseQTable q(16);
  EXPECT_EQ(q.num_items(), 16u);
  EXPECT_EQ(q.entry_count(), 0u);
  EXPECT_EQ(q.Get(3, 7), 0.0);
  EXPECT_EQ(q.MaxAbsValue(), 0.0);
  EXPECT_EQ(q.NonZeroFraction(), 0.0);
}

TEST(SparseQTableTest, SetGetRoundTripAndOverwrite) {
  SparseQTable q(8);
  q.Set(2, 5, 1.25);
  EXPECT_EQ(q.Get(2, 5), 1.25);
  EXPECT_EQ(q.entry_count(), 1u);
  q.Set(2, 5, -0.5);
  EXPECT_EQ(q.Get(2, 5), -0.5);
  EXPECT_EQ(q.entry_count(), 1u);  // overwrite, not a second entry
  EXPECT_EQ(q.Get(5, 2), 0.0);     // (action, state) is a different cell
}

TEST(SparseQTableTest, ManyInsertsSurviveRowGrowth) {
  // Push one row far past the initial capacity so Grow() rehashing runs.
  SparseQTable q(4096);
  QTable dense(4096);
  util::Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    const auto action = static_cast<model::ItemId>(i * 2 + 1);
    const double value = rng.NextDouble(-1.0, 1.0);
    q.Set(0, action, value);
    dense.Set(0, action, value);
  }
  EXPECT_TRUE(SameCells(dense, q));
}

TEST(SparseQTableTest, SarsaUpdateBitIdenticalToDense) {
  auto [dense, sparse] = RandomPair(24, 7);
  util::Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    const auto s = static_cast<model::ItemId>(rng.NextDouble() * 24);
    const auto a = static_cast<model::ItemId>(rng.NextDouble() * 24);
    const auto ns = static_cast<model::ItemId>(rng.NextDouble() * 24);
    const auto na = static_cast<model::ItemId>(rng.NextDouble() * 24);
    const double reward = rng.NextDouble(-1.0, 1.0);
    dense.SarsaUpdate(s, a, reward, ns, na, 0.1, 0.9);
    sparse.SarsaUpdate(s, a, reward, ns, na, 0.1, 0.9);
  }
  EXPECT_TRUE(SameCells(dense, sparse));
}

TEST(SparseQTableTest, BitsetArgmaxMatchesDenseOnRandomTables) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto [dense, sparse] = RandomPair(64, seed);
    util::Rng rng(seed * 31);
    for (int trial = 0; trial < 200; ++trial) {
      util::DynamicBitset allowed(64);
      for (std::size_t a = 0; a < 64; ++a) {
        if (rng.NextDouble() < 0.4) allowed.Set(a);
      }
      const auto state =
          static_cast<model::ItemId>(rng.NextDouble() * 64);
      EXPECT_EQ(dense.ArgmaxAction(state, allowed),
                sparse.ArgmaxAction(state, allowed))
          << "seed " << seed << " trial " << trial << " state " << state;
    }
  }
}

TEST(SparseQTableTest, BitsetArgmaxAllNegativeRowFallsBackToLowestAllowed) {
  // No stored value beats the missing cells' 0.0, so the slow path must
  // reproduce the dense walk: first allowed adopted, strictly-greater wins.
  SparseQTable q(10);
  q.Set(0, 4, -1.0);
  q.Set(0, 7, -0.25);
  util::DynamicBitset allowed(10);
  allowed.Set(4);
  allowed.Set(7);
  // Only stored (negative) cells allowed: dense semantics adopt action 4
  // first, then 7 wins on strictly greater (-0.25 > -1.0).
  EXPECT_EQ(q.ArgmaxAction(0, allowed), 7);
  allowed.Set(2);  // an absent cell (0.0) now beats both stored values
  EXPECT_EQ(q.ArgmaxAction(0, allowed), 2);
  util::DynamicBitset none(10);
  EXPECT_EQ(q.ArgmaxAction(0, none), -1);
}

TEST(SparseQTableTest, BitsetArgmaxTieBreaksToLowestId) {
  SparseQTable q(12);
  q.Set(1, 9, 3.0);
  q.Set(1, 3, 3.0);
  q.Set(1, 6, 3.0);
  util::DynamicBitset allowed(12);
  allowed.SetAll();
  // All three tie at the row max; the winner is the lowest allowed id, as
  // in the dense table (hash rows are unordered, so this exercises the
  // explicit tie-break in the stored-entry scan).
  EXPECT_EQ(q.ArgmaxAction(1, allowed), 3);
  allowed.Set(3, false);
  EXPECT_EQ(q.ArgmaxAction(1, allowed), 6);
}

TEST(SparseQTableTest, AccumulateDeltaMatchesDenseMerge) {
  auto [dense, sparse] = RandomPair(32, 13);
  auto [dense_base, sparse_base] = RandomPair(32, 17, 0.2);
  auto [dense_local, sparse_local] = RandomPair(32, 17, 0.2);
  // Perturb local away from base at a few cells (including one both-absent
  // and one base-only cell) so the key-union merge sees every shape.
  for (int i = 0; i < 40; ++i) {
    const auto s = static_cast<model::ItemId>((i * 5) % 32);
    const auto a = static_cast<model::ItemId>((i * 11) % 32);
    const double v = 0.01 * i - 0.2;
    dense_local.Set(s, a, v);
    sparse_local.Set(s, a, v);
  }
  dense.AccumulateDelta(dense_local, dense_base);
  sparse.AccumulateDelta(sparse_local, sparse_base);
  EXPECT_TRUE(SameCells(dense, sparse));
}

TEST(SparseQTableTest, ScaleMatchesDense) {
  auto [dense, sparse] = RandomPair(20, 23);
  dense.Scale(0.75);
  sparse.Scale(0.75);
  EXPECT_TRUE(SameCells(dense, sparse));
}

TEST(SparseQTableTest, AddNoiseBitIdenticalToDense) {
  // Dense AddNoise draws once per cell in row-major order; the sparse
  // implementation must consume the identical draw sequence.
  auto [dense, sparse] = RandomPair(12, 29);
  util::Rng dense_rng(555);
  util::Rng sparse_rng(555);
  dense.AddNoise(dense_rng, 0.05);
  sparse.AddNoise(sparse_rng, 0.05);
  EXPECT_TRUE(SameCells(dense, sparse));
  // Both RNGs advanced by exactly |I|^2 draws: the next draw agrees.
  EXPECT_EQ(dense_rng.NextDouble(), sparse_rng.NextDouble());
}

TEST(SparseQTableTest, MaxAbsAndNonZeroFractionMatchDense) {
  auto [dense, sparse] = RandomPair(40, 41);
  EXPECT_EQ(dense.MaxAbsValue(), sparse.MaxAbsValue());
  EXPECT_EQ(dense.NonZeroFraction(), sparse.NonZeroFraction());
}

TEST(SparseQTableTest, CsvByteIdenticalToDenseAndRoundTrips) {
  // Byte identity of the serialized form on arbitrary values...
  auto [dense, sparse] = RandomPair(30, 53);
  EXPECT_EQ(dense.ToCsv(), sparse.ToCsv());
  // ...and exact round-trip on values FormatDouble(v, 12) preserves (the
  // CSV path is 12-significant-digit, matching QTable::ToCsv).
  SparseQTable exact(10);
  exact.Set(0, 3, 1.5);
  exact.Set(7, 2, -0.25);
  exact.Set(9, 9, 42.0);
  auto restored = SparseQTable::FromCsv(10, exact.ToCsv());
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored.value() == exact);
}

TEST(SparseQTableTest, FromCsvRejectsMalformedAndDuplicates) {
  EXPECT_FALSE(SparseQTable::FromCsv(4, "state,action,q\n9,0,1.0\n").ok());
  EXPECT_FALSE(SparseQTable::FromCsv(4, "state,action,q\n1,x,1.0\n").ok());
  auto dup =
      SparseQTable::FromCsv(4, "state,action,q\n1,2,1.0\n1,2,2.0\n");
  ASSERT_FALSE(dup.ok());
  EXPECT_NE(dup.status().message().find("duplicate"), std::string::npos);
}

TEST(SparseQTableTest, FromDenseToDenseRoundTrip) {
  auto [dense, sparse] = RandomPair(25, 61);
  EXPECT_TRUE(SparseQTable::FromDense(dense) == sparse);
  EXPECT_TRUE(sparse.ToDense() == dense);
}

TEST(SparseQTableTest, EqualityTreatsStoredZeroAsAbsent) {
  SparseQTable a(6);
  SparseQTable b(6);
  a.Set(1, 2, 0.0);  // stored explicit zero
  EXPECT_TRUE(a == b);
  a.Set(1, 2, 0.5);
  EXPECT_FALSE(a == b);
  EXPECT_TRUE(a != b);
  EXPECT_FALSE(a == SparseQTable(7));
}

TEST(SparseQTableTest, MemoryBytesGrowsWithEntries) {
  SparseQTable q(1000);
  const std::size_t empty = q.MemoryBytes();
  for (int i = 0; i < 100; ++i) q.Set(i, (i * 7) % 1000, 1.0);
  EXPECT_GT(q.MemoryBytes(), empty);
}

// --------------------------------------------- training bit-identity --

// Trains both representations with identical (config, seed) through the
// serial learner and expects bitwise-equal tables.
void ExpectSerialTrainingIdentical(datagen::Dataset dataset,
                                   std::uint64_t seed) {
  const model::TaskInstance instance = dataset.Instance();
  const RewardWeights weights;
  const RewardFunction reward(instance, weights);
  rl::SarsaConfig config;
  config.num_episodes = 150;
  config.start_item = dataset.default_start;

  rl::SarsaLearner dense_learner(instance, reward, config, seed);
  rl::SparseSarsaLearner sparse_learner(instance, reward, config, seed);
  const QTable dense = dense_learner.Learn();
  const SparseQTable sparse = sparse_learner.Learn();
  EXPECT_TRUE(sparse.ToDense() == dense);
  EXPECT_EQ(dense_learner.episode_returns(),
            sparse_learner.episode_returns());
}

TEST(SparseTrainingEquivalenceTest, SerialBitIdenticalOnUniv1) {
  ExpectSerialTrainingIdentical(datagen::MakeUniv1DsCt(), 123);
}

TEST(SparseTrainingEquivalenceTest, SerialBitIdenticalOnUniv2) {
  ExpectSerialTrainingIdentical(datagen::MakeUniv2Ds(), 321);
}

// Deterministic-parallel equivalence pinned per (seed, K): the sharded
// merge iterates sparse rows over the sorted key union, so worker count
// must not perturb the dense-vs-sparse agreement.
void ExpectParallelTrainingIdentical(datagen::Dataset dataset,
                                     std::uint64_t seed, int workers) {
  const model::TaskInstance instance = dataset.Instance();
  const RewardWeights weights;
  const RewardFunction reward(instance, weights);
  rl::SarsaConfig config;
  config.num_episodes = 160;
  config.start_item = dataset.default_start;
  config.parallel_mode = rl::ParallelMode::kDeterministic;
  config.num_workers = workers;

  rl::ParallelSarsaLearner dense_learner(instance, reward, config, seed);
  rl::SparseParallelSarsaLearner sparse_learner(instance, reward, config,
                                                seed);
  const QTable dense = dense_learner.Learn();
  const SparseQTable sparse = sparse_learner.Learn();
  EXPECT_TRUE(sparse.ToDense() == dense)
      << "seed " << seed << " workers " << workers;
}

TEST(SparseTrainingEquivalenceTest, ParallelBitIdenticalOnUniv1) {
  ExpectParallelTrainingIdentical(datagen::MakeUniv1DsCt(), 123, 4);
  ExpectParallelTrainingIdentical(datagen::MakeUniv1DsCt(), 7, 3);
}

TEST(SparseTrainingEquivalenceTest, ParallelBitIdenticalOnUniv2) {
  ExpectParallelTrainingIdentical(datagen::MakeUniv2Ds(), 99, 4);
}

// ------------------------------------------------- RlPlanner dispatch --

TEST(QRepresentationTest, AutoPicksByCatalogSize) {
  using rl::QRepresentation;
  using rl::ResolveQRepresentation;
  EXPECT_EQ(ResolveQRepresentation(QRepresentation::kAuto, 100),
            QRepresentation::kDense);
  // The threshold itself stays dense (32 MiB/table); one item past flips.
  EXPECT_EQ(ResolveQRepresentation(QRepresentation::kAuto,
                                   rl::kSparseAutoThreshold),
            QRepresentation::kDense);
  EXPECT_EQ(ResolveQRepresentation(QRepresentation::kAuto,
                                   rl::kSparseAutoThreshold + 1),
            QRepresentation::kSparse);
  EXPECT_EQ(ResolveQRepresentation(QRepresentation::kDense, 100000),
            QRepresentation::kDense);
  EXPECT_EQ(ResolveQRepresentation(QRepresentation::kSparse, 10),
            QRepresentation::kSparse);
}

TEST(QRepresentationTest, PlannerTrainsIdenticallyOnBothRepresentations) {
  const datagen::Dataset dataset = datagen::MakeUniv1DsCt();
  const model::TaskInstance instance = dataset.Instance();
  core::PlannerConfig config = core::DefaultUniv1Config();
  config.sarsa.num_episodes = 120;
  config.sarsa.start_item = dataset.default_start;
  config.seed = 2024;

  config.sarsa.q_representation = rl::QRepresentation::kDense;
  core::RlPlanner dense_planner(instance, config);
  ASSERT_TRUE(dense_planner.Train().ok());
  ASSERT_FALSE(dense_planner.uses_sparse());

  config.sarsa.q_representation = rl::QRepresentation::kSparse;
  core::RlPlanner sparse_planner(instance, config);
  ASSERT_TRUE(sparse_planner.Train().ok());
  ASSERT_TRUE(sparse_planner.uses_sparse());

  EXPECT_TRUE(sparse_planner.sparse_q_table().ToDense() ==
              dense_planner.q_table());

  // Same recommendation off either representation.
  auto dense_plan = dense_planner.Recommend(dataset.default_start);
  auto sparse_plan = sparse_planner.Recommend(dataset.default_start);
  ASSERT_TRUE(dense_plan.ok());
  ASSERT_TRUE(sparse_plan.ok());
  EXPECT_EQ(dense_plan.value().items(), sparse_plan.value().items());
}

TEST(QRepresentationTest, BigCatalogSparseWithPolicyRoundsIsRejected) {
  // Above the auto threshold the restart path (AddNoise) would materialize
  // all |I|^2 entries, so Train() must fail fast instead of OOM-ing the
  // first time a round's safety rollout fails.
  datagen::SyntheticSpec spec;
  spec.num_items = static_cast<int>(rl::kSparseAutoThreshold) + 1;
  spec.seed = 5;
  const datagen::Dataset dataset = datagen::GenerateSynthetic(spec);
  const model::TaskInstance instance = dataset.Instance();
  core::PlannerConfig config = core::DefaultUniv1Config();
  config.sarsa.start_item = dataset.default_start;
  ASSERT_GT(config.sarsa.policy_rounds, 1);  // the default
  // kAuto resolves to sparse at this size; explicit kSparse fails the same.
  ASSERT_EQ(rl::ResolveQRepresentation(config.sarsa.q_representation,
                                       dataset.catalog.size()),
            rl::QRepresentation::kSparse);
  core::RlPlanner planner(instance, config);
  const auto status = planner.Train();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("policy_rounds"), std::string::npos);

  // policy_rounds == 1 trains the same catalog fine (short run).
  config.sarsa.policy_rounds = 1;
  config.sarsa.num_episodes = 2;
  core::RlPlanner ok_planner(instance, config);
  EXPECT_TRUE(ok_planner.Train().ok());
}

TEST(QRepresentationTest, SparseWithHogwildIsRejected) {
  const datagen::Dataset dataset = datagen::MakeTableIIToy();
  const model::TaskInstance instance = dataset.Instance();
  core::PlannerConfig config = core::DefaultUniv1Config();
  config.sarsa.start_item = dataset.default_start;
  config.sarsa.parallel_mode = rl::ParallelMode::kHogwild;
  config.sarsa.q_representation = rl::QRepresentation::kSparse;
  core::RlPlanner planner(instance, config);
  const auto status = planner.Train();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("Hogwild"), std::string::npos);
}

}  // namespace
}  // namespace rlplanner::mdp

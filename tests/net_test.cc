// Tests for the wire-level serving front end (src/net/): the HTTP/1.1
// parser and serializer, the service-to-wire status contract, the strict
// /v1/plan JSON decoding, and loopback integration against a real
// HttpServer on an ephemeral port — keep-alive reuse, pipelining,
// malformed/oversized requests, 503/504 mapping, concurrent clients, and
// graceful drain under load with zero in-flight loss.
//
// The concurrency tests here run under ThreadSanitizer in tools/check.sh
// (RLPLANNER_SANITIZE=thread).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/config.h"
#include "core/planner.h"
#include "datagen/course_data.h"
#include "net/client.h"
#include "net/http.h"
#include "net/plan_handler.h"
#include "net/server.h"
#include "obs/debugz.h"
#include "obs/profiler.h"
#include "obs/registry.h"
#include "serve/plan_service.h"
#include "serve/policy_registry.h"
#include "serve/stats.h"
#include "util/json.h"
#include "util/status.h"

namespace rlplanner::net {
namespace {

using datagen::Dataset;

// --- HTTP parser ----------------------------------------------------------

constexpr std::size_t kTestMaxRequest = 64 * 1024;

TEST(HttpParserTest, ParsesCompleteRequest) {
  HttpRequestParser parser(kTestMaxRequest);
  const std::string wire =
      "POST /v1/plan HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length: 5\r\n"
      "\r\n"
      "hello";
  HttpRequest request;
  const ParseResult result = parser.Parse(wire, &request);
  ASSERT_EQ(result.status, ParseStatus::kOk) << result.error;
  EXPECT_EQ(result.consumed, wire.size());
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.target, "/v1/plan");
  EXPECT_EQ(request.version, "HTTP/1.1");
  EXPECT_EQ(request.body, "hello");
  EXPECT_TRUE(request.keep_alive);
  ASSERT_NE(request.FindHeader("content-type"), nullptr);
  EXPECT_EQ(*request.FindHeader("CONTENT-TYPE"), "application/json");
  EXPECT_EQ(request.FindHeader("x-absent"), nullptr);
}

TEST(HttpParserTest, IncrementalFeedReportsNeedMore) {
  HttpRequestParser parser(kTestMaxRequest);
  const std::string wire =
      "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
  // Every strict prefix is a "keep reading", never an error.
  for (std::size_t len = 0; len < wire.size(); ++len) {
    HttpRequest request;
    const ParseResult result =
        parser.Parse(std::string_view(wire).substr(0, len), &request);
    EXPECT_EQ(result.status, ParseStatus::kNeedMore)
        << "prefix length " << len << ": " << result.error;
  }
  HttpRequest request;
  EXPECT_EQ(parser.Parse(wire, &request).status, ParseStatus::kOk);
  // A body prefix is also NeedMore until Content-Length bytes arrived.
  const std::string partial_body =
      "POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
  EXPECT_EQ(parser.Parse(partial_body, &request).status,
            ParseStatus::kNeedMore);
}

TEST(HttpParserTest, PipelinedRequestsConsumeExactlyOne) {
  HttpRequestParser parser(kTestMaxRequest);
  const std::string first =
      "POST /v1/plan HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}";
  const std::string second = "GET /healthz HTTP/1.1\r\n\r\n";
  const std::string wire = first + second;
  HttpRequest request;
  const ParseResult one = parser.Parse(wire, &request);
  ASSERT_EQ(one.status, ParseStatus::kOk);
  EXPECT_EQ(one.consumed, first.size());
  EXPECT_EQ(request.target, "/v1/plan");
  const ParseResult two =
      parser.Parse(std::string_view(wire).substr(one.consumed), &request);
  ASSERT_EQ(two.status, ParseStatus::kOk);
  EXPECT_EQ(two.consumed, second.size());
  EXPECT_EQ(request.target, "/healthz");
}

TEST(HttpParserTest, RejectsProtocolViolations) {
  HttpRequestParser parser(256);
  HttpRequest request;
  const char* bad[] = {
      "GET\r\n\r\n",                                        // no target
      "GET / HTTP/2.0\r\n\r\n",                             // bad version
      "GET / HTTP/1.1\r\nContent-Length: -1\r\n\r\n",       // negative length
      "GET / HTTP/1.1\r\nContent-Length: kitten\r\n\r\n",   // non-numeric
      "GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",  // unsupported
      "GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",              // malformed header
  };
  for (const char* wire : bad) {
    const ParseResult result = parser.Parse(wire, &request);
    EXPECT_EQ(result.status, ParseStatus::kError) << wire;
    EXPECT_FALSE(result.error.empty()) << wire;
  }
  // A declared body larger than max_request_bytes is an error up front, not
  // an invitation to buffer.
  const ParseResult oversized = parser.Parse(
      "POST / HTTP/1.1\r\nContent-Length: 100000\r\n\r\n", &request);
  EXPECT_EQ(oversized.status, ParseStatus::kError);
}

TEST(HttpParserTest, ConnectionSemanticsPerVersion) {
  HttpRequestParser parser(kTestMaxRequest);
  HttpRequest request;
  ASSERT_EQ(parser.Parse("GET / HTTP/1.1\r\n\r\n", &request).status,
            ParseStatus::kOk);
  EXPECT_TRUE(request.keep_alive);
  ASSERT_EQ(parser
                .Parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n",
                       &request)
                .status,
            ParseStatus::kOk);
  EXPECT_FALSE(request.keep_alive);
  ASSERT_EQ(parser.Parse("GET / HTTP/1.0\r\n\r\n", &request).status,
            ParseStatus::kOk);
  EXPECT_FALSE(request.keep_alive);
  ASSERT_EQ(parser
                .Parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n",
                       &request)
                .status,
            ParseStatus::kOk);
  EXPECT_TRUE(request.keep_alive);
}

TEST(HttpSerializeTest, ResponseCarriesFramingHeaders) {
  const std::string keep =
      SerializeResponse(200, "application/json", "{}", /*keep_alive=*/true);
  EXPECT_NE(keep.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(keep.find("Content-Length: 2\r\n"), std::string::npos);
  EXPECT_NE(keep.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_EQ(keep.substr(keep.size() - 2), "{}");
  const std::string close =
      SerializeResponse(503, "application/json", "x", /*keep_alive=*/false);
  EXPECT_NE(close.find("HTTP/1.1 503 Service Unavailable\r\n"),
            std::string::npos);
  EXPECT_NE(close.find("Connection: close\r\n"), std::string::npos);
}

// --- Status / JSON contract ----------------------------------------------

TEST(StatusToHttpCodeTest, MapsServiceContract) {
  EXPECT_EQ(StatusToHttpCode(util::Status::Ok()), 200);
  EXPECT_EQ(StatusToHttpCode(util::Status::InvalidArgument("x")), 400);
  EXPECT_EQ(StatusToHttpCode(util::Status::OutOfRange("x")), 400);
  EXPECT_EQ(StatusToHttpCode(util::Status::NotFound("x")), 404);
  EXPECT_EQ(StatusToHttpCode(util::Status::ResourceExhausted("x")), 503);
  EXPECT_EQ(StatusToHttpCode(util::Status::FailedPrecondition("x")), 503);
  EXPECT_EQ(StatusToHttpCode(util::Status::DeadlineExceeded("x")), 504);
  EXPECT_EQ(StatusToHttpCode(util::Status::Internal("x")), 500);
  EXPECT_EQ(StatusToHttpCode(util::Status::Unimplemented("x")), 500);
}

util::Result<serve::PlanRequest> DecodePlan(std::string_view text) {
  auto document = util::json::Parse(text);
  if (!document.ok()) return document.status();
  return PlanRequestFromJson(document.value());
}

TEST(PlanRequestJsonTest, DecodesAllFields) {
  auto decoded = DecodePlan(
      "{\"policy\":\"canary\",\"start_item\":3,\"excluded\":[1,4],"
      "\"ideal_topics\":[\"ai\",\"db\"],\"deadline_ms\":12.5}");
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const serve::PlanRequest& request = decoded.value();
  EXPECT_EQ(request.policy_name, "canary");
  EXPECT_EQ(request.start_item, 3);
  EXPECT_EQ(request.excluded, (std::vector<model::ItemId>{1, 4}));
  ASSERT_TRUE(request.ideal_topics.has_value());
  EXPECT_EQ(*request.ideal_topics, (std::vector<std::string>{"ai", "db"}));
  EXPECT_DOUBLE_EQ(request.deadline_ms, 12.5);

  // Empty object gives the documented defaults.
  auto defaults = DecodePlan("{}");
  ASSERT_TRUE(defaults.ok());
  EXPECT_EQ(defaults.value().policy_name, "default");
  EXPECT_EQ(defaults.value().start_item, 0);
  EXPECT_FALSE(defaults.value().ideal_topics.has_value());
}

TEST(PlanRequestJsonTest, RejectsBadShapes) {
  // Unknown fields are named in the error, not silently ignored.
  auto unknown = DecodePlan("{\"start_itme\":3}");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(unknown.status().message().find("start_itme"), std::string::npos);

  EXPECT_FALSE(DecodePlan("[1,2,3]").ok());                  // not an object
  EXPECT_FALSE(DecodePlan("{\"policy\":7}").ok());           // wrong type
  EXPECT_FALSE(DecodePlan("{\"start_item\":1.5}").ok());     // fractional id
  EXPECT_FALSE(DecodePlan("{\"start_item\":1e12}").ok());    // out of range
  EXPECT_FALSE(DecodePlan("{\"excluded\":[\"a\"]}").ok());   // wrong element
  EXPECT_FALSE(DecodePlan("{\"ideal_topics\":[1]}").ok());   // wrong element
  EXPECT_FALSE(DecodePlan("{\"deadline_ms\":\"soon\"}").ok());
  EXPECT_FALSE(DecodePlan("not json").ok());
}

// --- Loopback: bare HttpServer (no planner) -------------------------------

// A server whose handler answers inline — isolates wire behavior (framing,
// keep-alive, limits, the dropped-Responder 500) from the planning stack.
struct EchoFixture {
  explicit EchoFixture(HttpServerConfig config = {},
                       HttpServer::Handler handler = nullptr) {
    config.host = "127.0.0.1";
    config.port = 0;
    if (config.num_shards == 0) config.num_shards = 2;
    if (handler == nullptr) {
      handler = [](HttpRequest request, Responder responder) {
        responder.Send(
            HttpResponse{200, "text/plain", "echo:" + request.body});
      };
    }
    server = std::make_unique<HttpServer>(config, std::move(handler));
    auto started = server->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }
  ~EchoFixture() { server->Shutdown(); }

  util::Result<ClientResponse> Post(BlockingHttpClient& client,
                                    std::string_view body) {
    if (!client.connected()) {
      auto connected = client.Connect("127.0.0.1", server->port());
      if (!connected.ok()) return connected;
    }
    return client.Request("POST", "/echo", body);
  }

  std::unique_ptr<HttpServer> server;
};

TEST(HttpServerTest, KeepAliveServesSequentialRequests) {
  EchoFixture fix;
  BlockingHttpClient client;
  for (int i = 0; i < 8; ++i) {
    auto response = fix.Post(client, "r" + std::to_string(i));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response.value().status, 200);
    EXPECT_EQ(response.value().body, "echo:r" + std::to_string(i));
    EXPECT_TRUE(response.value().keep_alive);
  }
  // All eight rode one TCP connection.
  EXPECT_TRUE(client.connected());
}

TEST(HttpServerTest, PipelinedRequestsAnsweredInOrder) {
  EchoFixture fix;
  BlockingHttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fix.server->port()).ok());
  ASSERT_TRUE(
      client
          .SendRaw(
              "POST /echo HTTP/1.1\r\nContent-Length: 1\r\n\r\nA"
              "POST /echo HTTP/1.1\r\nContent-Length: 1\r\n\r\nB")
          .ok());
  auto first = client.ReadResponse();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.value().status, 200);
  EXPECT_EQ(first.value().body, "echo:A");
  auto second = client.ReadResponse();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second.value().body, "echo:B");
}

TEST(HttpServerTest, MalformedRequestGets400AndClose) {
  EchoFixture fix;
  BlockingHttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fix.server->port()).ok());
  ASSERT_TRUE(client.SendRaw("THIS IS NOT HTTP\r\n\r\n").ok());
  auto response = client.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().status, 400);
  EXPECT_FALSE(response.value().keep_alive);
}

TEST(HttpServerTest, OversizedRequestGets400) {
  HttpServerConfig config;
  config.max_request_bytes = 512;
  EchoFixture fix(config);
  BlockingHttpClient client;
  auto response = fix.Post(client, std::string(4096, 'x'));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().status, 400);
  EXPECT_FALSE(response.value().keep_alive);
}

TEST(HttpServerTest, TruncatedRequestThenEofIsHarmless) {
  EchoFixture fix;
  {
    BlockingHttpClient half;
    ASSERT_TRUE(half.Connect("127.0.0.1", fix.server->port()).ok());
    ASSERT_TRUE(half.SendRaw("POST /echo HTTP/1.1\r\nContent-Le").ok());
    half.Close();  // mid-request EOF: the server just closes its side
  }
  // The server still serves new connections.
  BlockingHttpClient client;
  auto response = fix.Post(client, "still-up");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().status, 200);
}

TEST(HttpServerTest, DroppedResponderSends500) {
  // A handler that loses its Responder must not wedge the connection.
  EchoFixture fix({}, [](HttpRequest, Responder responder) {
    Responder dropped = std::move(responder);
    (void)dropped;
  });
  BlockingHttpClient client;
  auto response = fix.Post(client, "{}");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().status, 500);
}

TEST(HttpServerTest, ConnectionCloseRequestHonored) {
  EchoFixture fix;
  BlockingHttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fix.server->port()).ok());
  ASSERT_TRUE(
      client
          .SendRaw(
              "POST /echo HTTP/1.1\r\nConnection: close\r\n"
              "Content-Length: 1\r\n\r\nZ")
          .ok());
  auto response = client.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().status, 200);
  EXPECT_FALSE(response.value().keep_alive);
  EXPECT_FALSE(client.connected());
}

TEST(HttpServerTest, StartFailsCleanlyOnBadAddress) {
  HttpServerConfig config;
  config.host = "not-an-address";
  HttpServer server(config, [](HttpRequest, Responder responder) {
    responder.Send(HttpResponse{});
  });
  EXPECT_FALSE(server.Start().ok());
  server.Shutdown();  // harmless on a server that never started
}

// --- Loopback: full plan-serving stack ------------------------------------

core::PlannerConfig ToyConfig(const Dataset& dataset) {
  core::PlannerConfig config = core::DefaultUniv1Config();
  config.sarsa.num_episodes = 60;
  config.sarsa.start_item = dataset.default_start;
  config.seed = 17;
  return config;
}

// The CLI's wire stack in miniature: trained toy policy → PolicyRegistry →
// PlanService → PlanHandler → HttpServer on an ephemeral loopback port,
// all sharing one metrics registry. Destruction follows the CLI's drain
// order (service first, then server, then workers join) so no completion
// can outlive the server.
struct WireFixture {
  explicit WireFixture(serve::PlanServiceConfig service_config = {},
                       HttpServerConfig server_config = {},
                       PlanHandler::Options handler_options = {}) {
    core::RlPlanner planner(instance, ToyConfig(dataset));
    EXPECT_TRUE(planner.Train().ok());
    auto installed = registry.Install("default", planner.q_table(),
                                      ToyConfig(dataset).sarsa, 17);
    EXPECT_TRUE(installed.ok());

    service_config.metrics = &metrics;
    service = std::make_unique<serve::PlanService>(
        instance, ToyConfig(dataset).reward, registry, service_config);
    service->Start();

    handler_options.metrics = &metrics;
    handler_options.slots = &registry;
    handler =
        std::make_unique<PlanHandler>(service.get(), std::move(handler_options));
    server_config.host = "127.0.0.1";
    server_config.port = 0;
    if (server_config.num_shards == 0) server_config.num_shards = 2;
    server_config.metrics = &metrics;
    server = std::make_unique<HttpServer>(server_config, handler->AsHandler());
    auto started = server->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }

  ~WireFixture() {
    (void)service->Drain(std::chrono::milliseconds(2000));
    server->Shutdown();
    service->Stop();
  }

  util::Result<ClientResponse> Plan(BlockingHttpClient& client,
                                    std::string_view body) {
    if (!client.connected()) {
      auto connected = client.Connect("127.0.0.1", server->port());
      if (!connected.ok()) return connected;
    }
    return client.Request("POST", "/v1/plan", body);
  }

  Dataset dataset = datagen::MakeTableIIToy();
  model::TaskInstance instance = dataset.Instance();
  serve::PolicyRegistry registry{serve::CatalogFingerprint(dataset.catalog),
                                 dataset.catalog.size()};
  obs::Registry metrics;
  std::unique_ptr<serve::PlanService> service;
  std::unique_ptr<PlanHandler> handler;
  std::unique_ptr<HttpServer> server;
};

TEST(WireTest, PlanRequestRoundTrip) {
  WireFixture fix;
  BlockingHttpClient client;
  auto response = fix.Plan(
      client,
      "{\"start_item\":" + std::to_string(fix.dataset.default_start) + "}");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response.value().status, 200) << response.value().body;
  auto document = util::json::Parse(response.value().body);
  ASSERT_TRUE(document.ok()) << document.status().ToString();
  const util::json::Value& root = document.value();
  ASSERT_TRUE(root.is_object());
  ASSERT_NE(root.Find("plan"), nullptr);
  EXPECT_FALSE(root.Find("plan")->AsArray().empty());
  ASSERT_NE(root.Find("valid"), nullptr);
  EXPECT_TRUE(root.Find("valid")->AsBool());
  ASSERT_NE(root.Find("policy_version"), nullptr);
  EXPECT_EQ(root.Find("policy_version")->AsNumber(), 1.0);
  ASSERT_NE(root.Find("exec_ms"), nullptr);
}

TEST(WireTest, HealthzMetricsAndRouting) {
  WireFixture fix;
  BlockingHttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fix.server->port()).ok());

  auto health = client.Request("GET", "/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.value().status, 200);
  EXPECT_EQ(health.value().body, "{\"status\":\"ok\"}\n");

  auto missing = client.Request("GET", "/v2/teleport");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing.value().status, 404);

  auto wrong_method = client.Request("GET", "/v1/plan");
  ASSERT_TRUE(wrong_method.ok());
  EXPECT_EQ(wrong_method.value().status, 405);

  // One plan request so the serve_* metrics are non-trivial.
  auto plan = client.Request("POST", "/v1/plan", "{}");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().status, 200);

  auto metrics = client.Request("GET", "/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics.value().status, 200);
  const std::string* content_type = metrics.value().FindHeader("Content-Type");
  ASSERT_NE(content_type, nullptr);
  EXPECT_NE(content_type->find("text/plain"), std::string::npos);
  // One registry serves both layers: net_* (front end) and serve_* (service).
  EXPECT_NE(metrics.value().body.find("net_requests_total"),
            std::string::npos);
  EXPECT_NE(metrics.value().body.find("net_connections_active"),
            std::string::npos);
  EXPECT_NE(metrics.value().body.find("serve_requests_accepted_total"),
            std::string::npos);
  // Everything above rode one keep-alive connection.
  EXPECT_NE(metrics.value().body.find("net_connections_total 1"),
            std::string::npos);
}

TEST(WireTest, MalformedJsonGets400) {
  WireFixture fix;
  BlockingHttpClient client;
  auto response = fix.Plan(client, "{\"start_item\":");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, 400);
  EXPECT_NE(response.value().body.find("InvalidArgument"), std::string::npos);
  // The connection survives a body-level (not protocol-level) error.
  EXPECT_TRUE(response.value().keep_alive);
  auto retry = fix.Plan(client, "{}");
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry.value().status, 200);
}

TEST(WireTest, UnknownPolicyGets404) {
  WireFixture fix;
  BlockingHttpClient client;
  auto response = fix.Plan(client, "{\"policy\":\"nope\"}");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, 404);
  EXPECT_NE(response.value().body.find("NotFound"), std::string::npos);
}

TEST(WireTest, DrainingServiceMapsTo503) {
  WireFixture fix;
  ASSERT_TRUE(fix.service->Drain(std::chrono::milliseconds(1000)).ok());
  BlockingHttpClient client;
  auto response = fix.Plan(client, "{}");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, 503);
  EXPECT_NE(response.value().body.find("FailedPrecondition"),
            std::string::npos);
}

TEST(WireTest, ExpiredDeadlineMapsTo504) {
  WireFixture fix;
  BlockingHttpClient client;
  // A one-nanosecond deadline has always expired by dequeue time.
  auto response = fix.Plan(client, "{\"deadline_ms\":1e-6}");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, 504);
  EXPECT_NE(response.value().body.find("DeadlineExceeded"), std::string::npos);
  EXPECT_EQ(fix.service->stats().Collect().expired_deadline, 1u);
}

TEST(WireTest, ConcurrentClientsAllServed) {
  WireFixture fix;
  constexpr int kThreads = 4;
  constexpr int kRequestsPerThread = 25;
  std::atomic<int> ok_count{0};
  std::atomic<int> error_count{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&fix, &ok_count, &error_count] {
      BlockingHttpClient client;
      for (int i = 0; i < kRequestsPerThread; ++i) {
        auto response = fix.Plan(client, "{}");
        if (response.ok() && response.value().status == 200) {
          ok_count.fetch_add(1);
        } else {
          error_count.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(ok_count.load(), kThreads * kRequestsPerThread);
  EXPECT_EQ(error_count.load(), 0);
  const serve::ServeStatsSnapshot stats = fix.service->stats().Collect();
  EXPECT_EQ(stats.accepted, static_cast<std::uint64_t>(ok_count.load()));
  EXPECT_EQ(stats.completed, stats.accepted);
  EXPECT_EQ(stats.failed, 0u);
}

TEST(WireTest, DrainUnderLoadLosesNoInFlightRequest) {
  auto fix = std::make_unique<WireFixture>();
  constexpr int kThreads = 3;
  std::atomic<bool> server_up{true};
  std::atomic<int> served_200{0};
  std::atomic<int> shed_503{0};
  std::atomic<int> expired_504{0};
  // A transport failure on a connection with a request outstanding would be
  // a dropped in-flight request — the one thing drain must never do.
  std::atomic<int> dropped{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      BlockingHttpClient client;
      while (server_up.load(std::memory_order_relaxed)) {
        if (!client.connected()) {
          if (!client.Connect("127.0.0.1", fix->server->port()).ok()) {
            break;  // listener closed: drain has begun and we were idle
          }
        }
        auto response = client.Request("POST", "/v1/plan", "{}");
        if (!response.ok()) {
          // The request was on the wire and never answered.
          dropped.fetch_add(1);
          client.Close();
          continue;
        }
        switch (response.value().status) {
          case 200:
            served_200.fetch_add(1);
            break;
          case 503:
            shed_503.fetch_add(1);
            break;
          case 504:
            expired_504.fetch_add(1);
            break;
          default:
            dropped.fetch_add(1);
        }
      }
    });
  }

  // Let real load build up, then run the CLI's exact shutdown sequence.
  while (served_200.load() < 50) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  (void)fix->service->Drain(std::chrono::milliseconds(2000));
  fix->server->Shutdown();
  fix->service->Stop();
  server_up.store(false);
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(dropped.load(), 0);
  EXPECT_GE(served_200.load(), 50);

  // Service-side ledger balances exactly: everything admitted was delivered.
  const serve::ServeStatsSnapshot stats = fix->service->stats().Collect();
  EXPECT_EQ(stats.accepted, stats.completed + stats.expired_deadline);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
  fix.reset();  // second drain/shutdown pass in ~WireFixture is idempotent
}

// --- Live introspection endpoints -----------------------------------------

TEST(HttpTargetTest, TargetPathStripsQueryAndFragment) {
  EXPECT_EQ(TargetPath("/debug/pprof?seconds=5"), "/debug/pprof");
  EXPECT_EQ(TargetPath("/metrics"), "/metrics");
  EXPECT_EQ(TargetPath("/x#frag"), "/x");
  EXPECT_EQ(TargetPath("/?a=1"), "/");
}

TEST(HttpTargetTest, QueryParamExtractsRawValues) {
  std::string value;
  EXPECT_TRUE(QueryParam("/debug/pprof?seconds=5", "seconds", &value));
  EXPECT_EQ(value, "5");
  EXPECT_TRUE(QueryParam("/metrics?exemplars=1&x=2", "x", &value));
  EXPECT_EQ(value, "2");
  EXPECT_TRUE(QueryParam("/metrics?exemplars", "exemplars", &value));
  EXPECT_EQ(value, "");  // key without '=' yields empty value
  EXPECT_FALSE(QueryParam("/metrics?exemplars=1", "seconds", &value));
  EXPECT_FALSE(QueryParam("/metrics", "exemplars", &value));
}

TEST(WireTest, StatuszReportsBuildSlotsAndSections) {
  WireFixture fix;
  fix.handler->AddStatuszSection("custom", [] { return "{\"answer\": 42}"; });
  BlockingHttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fix.server->port()).ok());
  auto response = client.Request("GET", "/debug/statusz");
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response.value().status, 200) << response.value().body;
  auto document = util::json::Parse(response.value().body);
  ASSERT_TRUE(document.ok()) << document.status().ToString();
  const util::json::Value& root = document.value();
  EXPECT_TRUE(root.Find("build")->Find("version")->is_string());
  // No profiler/recorder wired: their summaries are null, not absent.
  EXPECT_TRUE(root.Find("profiler")->is_null());
  EXPECT_TRUE(root.Find("flight_recorder")->is_null());
  // The serve stats and the registry slot table ride along.
  EXPECT_TRUE(root.Find("serve")->is_object());
  const util::json::Value& slots = *root.Find("slots");
  EXPECT_EQ(slots.Find("install_count")->AsNumber(), 1.0);
  const auto& table = slots.Find("slots")->AsArray();
  ASSERT_EQ(table.size(), 1u);
  EXPECT_EQ(table[0].Find("slot")->AsString(), "default");
  EXPECT_EQ(table[0].Find("incumbent_version")->AsNumber(), 1.0);
  EXPECT_EQ(root.Find("custom")->Find("answer")->AsNumber(), 42.0);
  // Wrong method on a debug endpoint is 405, not 404.
  auto post = client.Request("POST", "/debug/statusz", "{}");
  ASSERT_TRUE(post.ok());
  EXPECT_EQ(post.value().status, 405);
}

TEST(WireTest, TracezCapturesStalledRequestAndMetricsCarryExemplar) {
  obs::FlightRecorderConfig recorder_config;
  recorder_config.slo_ms = 5.0;
  obs::FlightRecorder recorder(recorder_config);
  serve::PlanServiceConfig service_config;
  service_config.recorder = &recorder;
  PlanHandler::Options options;
  options.recorder = &recorder;
  WireFixture fix(service_config, {}, options);

  BlockingHttpClient client;
  auto plan = fix.Plan(client, "{\"debug_stall_ms\": 25}");
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan.value().status, 200) << plan.value().body;

  auto tracez = client.Request("GET", "/debug/tracez");
  ASSERT_TRUE(tracez.ok());
  ASSERT_EQ(tracez.value().status, 200);
  auto document = util::json::Parse(tracez.value().body);
  ASSERT_TRUE(document.ok()) << document.status().ToString();
  const util::json::Value& flight = *document.value().Find("flight_recorder");
  EXPECT_TRUE(flight.Find("enabled")->AsBool());
  const auto& slowest = flight.Find("slowest")->AsArray();
  ASSERT_EQ(slowest.size(), 1u);
  EXPECT_GE(slowest[0].Find("total_ms")->AsNumber(), 5.0);
  const std::uint64_t trace_id = static_cast<std::uint64_t>(
      slowest[0].Find("trace_id")->AsNumber());
  EXPECT_GT(trace_id, 0u);
  // The span breakdown names the stalled stage.
  bool saw_plan_span = false;
  for (const util::json::Value& span : slowest[0].Find("spans")->AsArray()) {
    if (span.Find("name")->AsString() == "serve_plan") saw_plan_span = true;
  }
  EXPECT_TRUE(saw_plan_span);
  // The same trace id surfaces as a latency exemplar on both pages.
  const std::string needle = "\"trace_id\": " + std::to_string(trace_id);
  EXPECT_NE(tracez.value().body.find("\"exemplars\": ["), std::string::npos);
  EXPECT_NE(tracez.value().body.find(needle), std::string::npos);
  auto metrics = client.Request("GET", "/metrics?exemplars=1");
  ASSERT_TRUE(metrics.ok());
  ASSERT_EQ(metrics.value().status, 200);
  EXPECT_NE(metrics.value().body.find(
                "# {trace_id=\"" + std::to_string(trace_id) + "\""),
            std::string::npos);
}

TEST(WireTest, PprofRequiresProfilerAndValidatesSeconds) {
  {
    WireFixture fix;  // no profiler wired
    BlockingHttpClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", fix.server->port()).ok());
    auto response = client.Request("GET", "/debug/pprof?seconds=1");
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response.value().status, 404);
  }
  obs::ProfilerConfig profiler_config;
  profiler_config.enabled = true;
  obs::Profiler profiler(profiler_config);
  profiler.RecordNow();
  PlanHandler::Options options;
  options.profiler = &profiler;
  WireFixture fix({}, {}, options);
  BlockingHttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fix.server->port()).ok());
  auto profile = client.Request("GET", "/debug/pprof?seconds=1");
  ASSERT_TRUE(profile.ok());
  ASSERT_EQ(profile.value().status, 200) << profile.value().body;
  const std::string* content_type = profile.value().FindHeader("Content-Type");
  ASSERT_NE(content_type, nullptr);
  EXPECT_NE(content_type->find("text/plain"), std::string::npos);
  EXPECT_EQ(profile.value().body.rfind("# profile: cpu_samples\n", 0), 0u);
  EXPECT_NE(profile.value().body.find("# sample_hz: 97\n"), std::string::npos);
  auto bad = client.Request("GET", "/debug/pprof?seconds=banana");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad.value().status, 400);
  auto negative = client.Request("GET", "/debug/pprof?seconds=-3");
  ASSERT_TRUE(negative.ok());
  EXPECT_EQ(negative.value().status, 400);
}

TEST(WireTest, FleetStatusServedOnlyWhenWired) {
  {
    WireFixture fix;
    BlockingHttpClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", fix.server->port()).ok());
    auto response = client.Request("GET", "/fleet/status");
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response.value().status, 404);
  }
  PlanHandler::Options options;
  options.fleet_status = [] {
    return std::string("{\"tick\": 3, \"policies\": []}");
  };
  WireFixture fix({}, {}, options);
  BlockingHttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fix.server->port()).ok());
  auto response = client.Request("GET", "/fleet/status");
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response.value().status, 200);
  auto document = util::json::Parse(response.value().body);
  ASSERT_TRUE(document.ok());
  EXPECT_EQ(document.value().Find("tick")->AsNumber(), 3.0);
}

TEST(WireTest, MetricsContentNegotiation) {
  WireFixture fix;
  BlockingHttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", fix.server->port()).ok());

  auto plain = client.Request("GET", "/metrics");
  ASSERT_TRUE(plain.ok());
  ASSERT_EQ(plain.value().status, 200);
  const std::string* plain_type = plain.value().FindHeader("Content-Type");
  ASSERT_NE(plain_type, nullptr);
  EXPECT_EQ(*plain_type, "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_EQ(plain.value().body.find("# EOF"), std::string::npos);

  auto open = client.Request("GET", "/metrics?exemplars=1");
  ASSERT_TRUE(open.ok());
  ASSERT_EQ(open.value().status, 200);
  const std::string* open_type = open.value().FindHeader("Content-Type");
  ASSERT_NE(open_type, nullptr);
  EXPECT_EQ(*open_type,
            "application/openmetrics-text; version=1.0.0; charset=utf-8");
  EXPECT_NE(open.value().body.find("# EOF\n"), std::string::npos);

  // `exemplars=0` explicitly opts back out.
  auto opted_out = client.Request("GET", "/metrics?exemplars=0");
  ASSERT_TRUE(opted_out.ok());
  const std::string* out_type = opted_out.value().FindHeader("Content-Type");
  ASSERT_NE(out_type, nullptr);
  EXPECT_NE(out_type->find("text/plain"), std::string::npos);
}

}  // namespace
}  // namespace rlplanner::net

// Tests for the util/simd.h kernel layer: the dispatch machinery (CPU
// detection, RLPLANNER_SIMD env override, per-level tables) and randomized
// scalar-vs-vector bit-exact equivalence for every kernel, organized as a
// parameterized matrix (bit pattern x size x seed) in the same idiom as the
// mask/argmax old-vs-new equivalence tests of the parallel-training PR.

#include "util/simd.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "datagen/course_data.h"
#include "mdp/q_table.h"
#include "rl/parallel_sarsa.h"
#include "rl/sarsa.h"
#include "util/bitset.h"
#include "util/rng.h"

namespace rlplanner::util::simd {
namespace {

// Restores the env-resolved dispatch after tests that force a level, so the
// dispatch state never leaks into other tests in this binary.
class SimdTestBase : public ::testing::Test {
 protected:
  void TearDown() override { ResetDispatchForTesting(); }
};

// ------------------------------------------------------------- dispatch --

using DispatchTest = SimdTestBase;

TEST_F(DispatchTest, LevelNames) {
  EXPECT_STREQ(LevelName(Level::kScalar), "scalar");
  EXPECT_STREQ(LevelName(Level::kNeon), "neon");
  EXPECT_STREQ(LevelName(Level::kAvx2), "avx2");
}

TEST_F(DispatchTest, ParseLevel) {
  Level level = Level::kAvx2;
  bool auto_detect = true;
  EXPECT_TRUE(ParseLevel("off", &level, &auto_detect));
  EXPECT_EQ(level, Level::kScalar);
  EXPECT_FALSE(auto_detect);
  EXPECT_TRUE(ParseLevel("scalar", &level, &auto_detect));
  EXPECT_EQ(level, Level::kScalar);
  EXPECT_TRUE(ParseLevel("avx2", &level, &auto_detect));
  EXPECT_EQ(level, Level::kAvx2);
  EXPECT_TRUE(ParseLevel("neon", &level, &auto_detect));
  EXPECT_EQ(level, Level::kNeon);
  EXPECT_TRUE(ParseLevel("auto", &level, &auto_detect));
  EXPECT_TRUE(auto_detect);
  EXPECT_EQ(level, DetectBestLevel());
  EXPECT_TRUE(ParseLevel("", &level, &auto_detect));
  EXPECT_TRUE(auto_detect);
  EXPECT_FALSE(ParseLevel("sse9", &level, &auto_detect));
  EXPECT_FALSE(ParseLevel("AVX2", &level, &auto_detect));
}

TEST_F(DispatchTest, ScalarAlwaysAvailable) {
  EXPECT_TRUE(LevelCompiled(Level::kScalar));
  EXPECT_TRUE(LevelSupported(Level::kScalar));
  EXPECT_EQ(KernelsForLevel(Level::kScalar).level, Level::kScalar);
}

TEST_F(DispatchTest, UnsupportedLevelFallsBackToScalar) {
  for (Level level : {Level::kNeon, Level::kAvx2}) {
    const Kernels& table = KernelsForLevel(level);
    if (LevelSupported(level)) {
      EXPECT_EQ(table.level, level);
    } else {
      EXPECT_EQ(table.level, Level::kScalar);
    }
  }
}

TEST_F(DispatchTest, DetectBestLevelIsSupported) {
  EXPECT_TRUE(LevelSupported(DetectBestLevel()));
}

TEST_F(DispatchTest, ActiveHonorsEnvironment) {
  // ctest runs this binary both with RLPLANNER_SIMD unset (auto-detect) and
  // with RLPLANNER_SIMD=off / =avx2 (the simd_test_scalar / simd_test_avx2
  // entries), so each branch is exercised by the suite.
  ResetDispatchForTesting();
  const char* env = std::getenv("RLPLANNER_SIMD");
  Level expected = DetectBestLevel();
  bool auto_detect = true;
  if (env != nullptr && ParseLevel(env, &expected, &auto_detect) &&
      !LevelSupported(expected)) {
    expected = Level::kScalar;  // forced-but-unsupported falls back
  }
  EXPECT_EQ(ActiveLevel(), expected);
  EXPECT_STREQ(ActiveLevelName(), LevelName(expected));
}

TEST_F(DispatchTest, ForceLevelForTesting) {
  ForceLevelForTesting(Level::kScalar);
  EXPECT_EQ(ActiveLevel(), Level::kScalar);
  ForceLevelForTesting(DetectBestLevel());
  EXPECT_EQ(ActiveLevel(), DetectBestLevel());
}

TEST_F(DispatchTest, ConcurrentFirstUseResolvesOneTable) {
  ResetDispatchForTesting();
  constexpr int kThreads = 4;
  std::vector<const Kernels*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &seen] { seen[t] = &Active(); });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
}

// --------------------------------------------- word-kernel equivalence --

// Bit patterns the matrix crosses with sizes and seeds; the density
// extremes matter because the AVX2 argmax skips zero words/nibbles and the
// scalar one extracts set bits, so sparse and dense inputs take different
// internal paths.
enum class Pattern { kRandom, kSparse, kDense, kAllZero, kAllOnes, kBlocky };

const char* PatternName(Pattern p) {
  switch (p) {
    case Pattern::kRandom:
      return "random";
    case Pattern::kSparse:
      return "sparse";
    case Pattern::kDense:
      return "dense";
    case Pattern::kAllZero:
      return "all_zero";
    case Pattern::kAllOnes:
      return "all_ones";
    case Pattern::kBlocky:
      return "blocky";
  }
  return "?";
}

// Packed words for `bits` bits following `pattern`; tail bits past `bits`
// are zero, matching the DynamicBitset invariant the kernels assume.
std::vector<std::uint64_t> MakeWords(Pattern pattern, std::size_t bits,
                                     Rng& rng) {
  const std::size_t n = (bits + 63) / 64;
  std::vector<std::uint64_t> words(n, 0);
  for (std::size_t i = 0; i < bits; ++i) {
    bool set = false;
    switch (pattern) {
      case Pattern::kRandom:
        set = rng.NextBernoulli(0.5);
        break;
      case Pattern::kSparse:
        set = rng.NextBernoulli(0.02);
        break;
      case Pattern::kDense:
        set = rng.NextBernoulli(0.98);
        break;
      case Pattern::kAllZero:
        set = false;
        break;
      case Pattern::kAllOnes:
        set = true;
        break;
      case Pattern::kBlocky:
        set = (i / 37) % 2 == 0;
        break;
    }
    if (set) words[i / 64] |= std::uint64_t{1} << (i % 64);
  }
  return words;
}

struct MatrixParam {
  Pattern pattern;
  std::size_t bits;
  std::uint64_t seed;
};

// Cross product of patterns x sizes x seeds (the installed googletest
// predates ConvertGenerator, so the matrix is enumerated by hand).
std::vector<MatrixParam> MakeMatrix(std::initializer_list<Pattern> patterns,
                                    std::initializer_list<std::size_t> sizes,
                                    std::initializer_list<std::uint64_t> seeds) {
  std::vector<MatrixParam> params;
  params.reserve(patterns.size() * sizes.size() * seeds.size());
  for (Pattern pattern : patterns) {
    for (std::size_t bits : sizes) {
      for (std::uint64_t seed : seeds) {
        params.push_back(MatrixParam{pattern, bits, seed});
      }
    }
  }
  return params;
}

std::string MatrixParamName(
    const ::testing::TestParamInfo<MatrixParam>& info) {
  return std::string(PatternName(info.param.pattern)) + "_" +
         std::to_string(info.param.bits) + "b_s" +
         std::to_string(info.param.seed);
}

class WordKernelMatrixTest : public SimdTestBase,
                             public ::testing::WithParamInterface<MatrixParam> {
};

// Every vector level compiled into this binary and supported here, plus
// scalar-vs-scalar as a degenerate sanity row on machines with neither.
std::vector<Level> LevelsUnderTest() {
  std::vector<Level> levels;
  for (Level level : {Level::kNeon, Level::kAvx2}) {
    if (LevelSupported(level)) levels.push_back(level);
  }
  if (levels.empty()) levels.push_back(Level::kScalar);
  return levels;
}

TEST_P(WordKernelMatrixTest, AllWordKernelsMatchScalar) {
  const MatrixParam& param = GetParam();
  Rng rng(param.seed);
  const std::vector<std::uint64_t> a = MakeWords(param.pattern, param.bits, rng);
  const std::vector<std::uint64_t> b =
      MakeWords(Pattern::kRandom, param.bits, rng);
  const std::vector<std::uint64_t> c =
      MakeWords(Pattern::kRandom, param.bits, rng);
  const std::size_t n = a.size();
  const Kernels& scalar = KernelsForLevel(Level::kScalar);

  for (Level level : LevelsUnderTest()) {
    SCOPED_TRACE(LevelName(level));
    const Kernels& vec = KernelsForLevel(level);

    EXPECT_EQ(vec.popcount_words(a.data(), n),
              scalar.popcount_words(a.data(), n));
    EXPECT_EQ(vec.intersect_count_words(a.data(), b.data(), n),
              scalar.intersect_count_words(a.data(), b.data(), n));
    EXPECT_EQ(
        vec.andnot_intersect_count_words(a.data(), b.data(), c.data(), n),
        scalar.andnot_intersect_count_words(a.data(), b.data(), c.data(), n));
    EXPECT_EQ(vec.intersects_words(a.data(), b.data(), n),
              scalar.intersects_words(a.data(), b.data(), n));
    EXPECT_EQ(vec.any_words(a.data(), n), scalar.any_words(a.data(), n));

    // Mutating kernels: run both paths on copies, compare the full arrays.
    using MutatingKernel = void (*)(std::uint64_t*, const std::uint64_t*,
                                    std::size_t);
    const struct {
      const char* name;
      MutatingKernel scalar_fn;
      MutatingKernel vector_fn;
    } mutating[] = {
        {"and_assign", scalar.and_assign_words, vec.and_assign_words},
        {"or_assign", scalar.or_assign_words, vec.or_assign_words},
        {"xor_assign", scalar.xor_assign_words, vec.xor_assign_words},
        {"andnot_assign", scalar.andnot_assign_words, vec.andnot_assign_words},
        {"complement", scalar.complement_words, vec.complement_words},
    };
    for (const auto& kernel : mutating) {
      SCOPED_TRACE(kernel.name);
      std::vector<std::uint64_t> want = a;
      std::vector<std::uint64_t> got = a;
      kernel.scalar_fn(want.data(), b.data(), n);
      kernel.vector_fn(got.data(), b.data(), n);
      EXPECT_EQ(got, want);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, WordKernelMatrixTest,
    // Sizes straddle the vector width (4 words = 256 bits), the
    // DynamicBitset inline-vs-kernel cutoff (512 bits), and ragged tails on
    // both sides.
    ::testing::ValuesIn(MakeMatrix(
        {Pattern::kRandom, Pattern::kSparse, Pattern::kDense,
         Pattern::kAllZero, Pattern::kAllOnes, Pattern::kBlocky},
        {0, 1, 63, 64, 65, 127, 128, 192, 255, 256, 257, 511, 512, 1000, 4096,
         4099},
        {7, 99, 20260807})),
    MatrixParamName);

// ---------------------------------------------- f64-kernel equivalence --

std::uint64_t Bits(double v) { return std::bit_cast<std::uint64_t>(v); }

class F64KernelMatrixTest : public SimdTestBase,
                            public ::testing::WithParamInterface<MatrixParam> {
};

TEST_P(F64KernelMatrixTest, AllF64KernelsMatchScalarBitExact) {
  const MatrixParam& param = GetParam();
  const std::size_t n = param.bits;  // reused as the element count
  Rng rng(param.seed);
  std::vector<double> x(n), y(n), base(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Mix of magnitudes, exact zeros (for count_nonzero), negative zeros,
    // and duplicated values (for argmax ties).
    const double quantized =
        std::floor(rng.NextDouble() * 16.0) / 16.0 - 0.5;
    x[i] = rng.NextBernoulli(0.1) ? 0.0 : quantized * 1e3;
    if (rng.NextBernoulli(0.05)) x[i] = -0.0;
    y[i] = (rng.NextDouble() - 0.5) * 1e-3;
    base[i] = (rng.NextDouble() - 0.5) * 1e-3;
  }
  const std::vector<std::uint64_t> mask =
      MakeWords(param.pattern, n, rng);
  const Kernels& scalar = KernelsForLevel(Level::kScalar);

  for (Level level : LevelsUnderTest()) {
    SCOPED_TRACE(LevelName(level));
    const Kernels& vec = KernelsForLevel(level);

    EXPECT_EQ(Bits(vec.dot_f64(x.data(), y.data(), n)),
              Bits(scalar.dot_f64(x.data(), y.data(), n)));
    EXPECT_EQ(Bits(vec.max_abs_f64(x.data(), n)),
              Bits(scalar.max_abs_f64(x.data(), n)));
    EXPECT_EQ(vec.count_nonzero_f64(x.data(), n),
              scalar.count_nonzero_f64(x.data(), n));
    EXPECT_EQ(vec.argmax_masked_f64(x.data(), n, mask.data(), mask.size()),
              scalar.argmax_masked_f64(x.data(), n, mask.data(), mask.size()));

    {
      std::vector<double> want = y;
      std::vector<double> got = y;
      scalar.axpy_f64(0.371, x.data(), want.data(), n);
      vec.axpy_f64(0.371, x.data(), got.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(Bits(got[i]), Bits(want[i])) << "axpy index " << i;
      }
    }
    {
      std::vector<double> want = x;
      std::vector<double> got = x;
      scalar.scale_f64(want.data(), 0.9361, n);
      vec.scale_f64(got.data(), 0.9361, n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(Bits(got[i]), Bits(want[i])) << "scale index " << i;
      }
    }
    {
      std::vector<double> want = y;
      std::vector<double> got = y;
      scalar.accumulate_delta_f64(want.data(), x.data(), base.data(), n);
      vec.accumulate_delta_f64(got.data(), x.data(), base.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(Bits(got[i]), Bits(want[i])) << "accumulate index " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, F64KernelMatrixTest,
    // The mask pattern drives argmax coverage: sparse/dense/empty admissible
    // sets over the same value arrays. Element counts straddle the 4-lane
    // width and ragged tails.
    ::testing::ValuesIn(MakeMatrix(
        {Pattern::kRandom, Pattern::kSparse, Pattern::kDense,
         Pattern::kAllZero, Pattern::kAllOnes},
        {0, 1, 3, 4, 5, 7, 8, 31, 100, 114, 500, 1023, 1024, 4097},
        {11, 42, 20260807})),
    MatrixParamName);

// ------------------------------------------------- argmax edge cases --

using ArgmaxTest = SimdTestBase;

TEST_F(ArgmaxTest, EmptyMaskReturnsMinusOne) {
  const std::vector<double> values(130, 1.0);
  const std::vector<std::uint64_t> mask(3, 0);
  for (Level level : LevelsUnderTest()) {
    EXPECT_EQ(KernelsForLevel(level).argmax_masked_f64(values.data(), 130,
                                                       mask.data(), 3),
              -1)
        << LevelName(level);
  }
}

TEST_F(ArgmaxTest, TiesResolveToLowestAllowedIndex) {
  // All values equal: the first allowed index must win, exactly like the
  // callback overload's strictly-greater replacement rule.
  std::vector<double> values(200, 3.25);
  std::vector<std::uint64_t> mask(4, 0);
  mask[1] |= std::uint64_t{1} << 5;   // bit 69
  mask[2] |= std::uint64_t{1} << 60;  // bit 188
  for (Level level : LevelsUnderTest()) {
    EXPECT_EQ(KernelsForLevel(level).argmax_masked_f64(values.data(), 200,
                                                       mask.data(), 4),
              69)
        << LevelName(level);
  }
}

TEST_F(ArgmaxTest, AllNegativeValuesStillReturnFirstAllowed) {
  std::vector<double> values(100, -7.5);
  values[40] = -7.5;
  std::vector<std::uint64_t> mask(2, 0);
  mask[0] |= std::uint64_t{1} << 40;
  mask[1] |= std::uint64_t{1} << 1;  // bit 65
  for (Level level : LevelsUnderTest()) {
    EXPECT_EQ(KernelsForLevel(level).argmax_masked_f64(values.data(), 100,
                                                       mask.data(), 2),
              40)
        << LevelName(level);
  }
}

TEST_F(ArgmaxTest, MaxInRaggedTail) {
  // 114 values (Univ-1 scale): the maximum sits past the last full 4-lane
  // group, exercising the vector kernel's scalar tail.
  std::vector<double> values(114, 0.0);
  values[113] = 9.0;
  std::vector<std::uint64_t> mask(2, ~std::uint64_t{0});
  mask[1] &= (std::uint64_t{1} << (114 - 64)) - 1;  // trim tail bits
  for (Level level : LevelsUnderTest()) {
    EXPECT_EQ(KernelsForLevel(level).argmax_masked_f64(values.data(), 114,
                                                       mask.data(), 2),
              113)
        << LevelName(level);
  }
}

// ------------------------------------------- bitset + QTable plumbing --

using BitsetSimdTest = SimdTestBase;

// DynamicBitset routes through the dispatched kernels above its inline
// cutoff; a vector<bool> oracle pins the semantics on both sides of it.
TEST_F(BitsetSimdTest, BitsetOpsMatchOracleAcrossInlineCutoff) {
  for (std::size_t bits : {100u, 500u, 700u, 4099u}) {
    SCOPED_TRACE(bits);
    Rng rng(bits);
    DynamicBitset a(bits), b(bits), c(bits);
    std::vector<bool> oa(bits), ob(bits), oc(bits);
    for (std::size_t i = 0; i < bits; ++i) {
      if (rng.NextBernoulli(0.4)) {
        a.Set(i);
        oa[i] = true;
      }
      if (rng.NextBernoulli(0.4)) {
        b.Set(i);
        ob[i] = true;
      }
      if (rng.NextBernoulli(0.3)) {
        c.Set(i);
        oc[i] = true;
      }
    }
    std::size_t count = 0, inter = 0, fused = 0;
    bool intersects = false;
    for (std::size_t i = 0; i < bits; ++i) {
      count += oa[i] ? 1 : 0;
      inter += (oa[i] && ob[i]) ? 1 : 0;
      fused += (oa[i] && !ob[i] && oc[i]) ? 1 : 0;
      intersects = intersects || (oa[i] && ob[i]);
    }
    EXPECT_EQ(a.Count(), count);
    EXPECT_EQ(a.IntersectCount(b), inter);
    EXPECT_EQ(a.AndNotIntersectCount(b, c), fused);
    EXPECT_EQ(a.Intersects(b), intersects);
    EXPECT_EQ(a.AndNotIntersectCount(b, c),
              a.AndNot(b).IntersectCount(c));

    DynamicBitset and_set = a;
    and_set &= b;
    DynamicBitset or_set = a;
    or_set |= b;
    DynamicBitset xor_set = a;
    xor_set ^= b;
    DynamicBitset andnot_set = a;
    andnot_set.AndNotAssign(b);
    DynamicBitset complement;
    complement.AssignComplementOf(a);
    for (std::size_t i = 0; i < bits; ++i) {
      ASSERT_EQ(and_set.Test(i), oa[i] && ob[i]) << i;
      ASSERT_EQ(or_set.Test(i), oa[i] || ob[i]) << i;
      ASSERT_EQ(xor_set.Test(i), oa[i] != ob[i]) << i;
      ASSERT_EQ(andnot_set.Test(i), oa[i] && !ob[i]) << i;
      ASSERT_EQ(complement.Test(i), !oa[i]) << i;
    }
    EXPECT_EQ(complement.Count(), bits - count);  // tail bits stay zero
  }
}

TEST_F(BitsetSimdTest, QTableBitsetArgmaxMatchesCallbackOverload) {
  constexpr std::size_t kItems = 300;
  mdp::QTable q(kItems);
  Rng rng(2024);
  for (std::size_t s = 0; s < kItems; ++s) {
    for (std::size_t a = 0; a < kItems; ++a) {
      // Quantized values force frequent exact ties.
      q.Set(static_cast<int>(s), static_cast<int>(a),
            std::floor(rng.NextDouble() * 8.0) / 8.0);
    }
  }
  for (Level level : LevelsUnderTest()) {
    SCOPED_TRACE(LevelName(level));
    ForceLevelForTesting(level);
    for (double density : {0.0, 0.03, 0.5, 1.0}) {
      Rng mask_rng(static_cast<std::uint64_t>(density * 1000) + 1);
      DynamicBitset allowed(kItems);
      for (std::size_t i = 0; i < kItems; ++i) {
        if (mask_rng.NextBernoulli(density)) allowed.Set(i);
      }
      for (int state = 0; state < 50; ++state) {
        const auto want = q.ArgmaxAction(
            state, [&](model::ItemId id) {
              return allowed.Test(static_cast<std::size_t>(id));
            });
        const auto got = q.ArgmaxAction(state, allowed);
        ASSERT_EQ(got, want) << "state " << state << " density " << density;
      }
    }
  }
}

// --------------------------------------- cross-level training identity --

using TrainingDeterminismTest = SimdTestBase;

// The contract that lets dispatch vary freely across machines: training on
// the scalar table and on the best vector table must produce bit-identical
// policies for the same (seed, K).
TEST_F(TrainingDeterminismTest, ScalarAndVectorTrainingAreBitIdentical) {
  const Level best = DetectBestLevel();
  if (best == Level::kScalar) {
    GTEST_SKIP() << "no vector level supported on this machine";
  }
  datagen::Dataset dataset = datagen::MakeUniv1DsCt();
  const model::TaskInstance instance = dataset.Instance();
  const mdp::RewardWeights weights;
  const mdp::RewardFunction reward(instance, weights);

  rl::SarsaConfig serial_config;
  serial_config.num_episodes = 120;
  serial_config.start_item = dataset.default_start;

  rl::SarsaConfig parallel_config = serial_config;
  parallel_config.parallel_mode = rl::ParallelMode::kDeterministic;
  parallel_config.num_workers = 3;

  ForceLevelForTesting(Level::kScalar);
  rl::SarsaLearner scalar_serial(instance, reward, serial_config, 77);
  const mdp::QTable scalar_serial_q = scalar_serial.Learn();
  rl::ParallelSarsaLearner scalar_parallel(instance, reward, parallel_config,
                                           77);
  const mdp::QTable scalar_parallel_q = scalar_parallel.Learn();

  ForceLevelForTesting(best);
  rl::SarsaLearner vector_serial(instance, reward, serial_config, 77);
  const mdp::QTable vector_serial_q = vector_serial.Learn();
  rl::ParallelSarsaLearner vector_parallel(instance, reward, parallel_config,
                                           77);
  const mdp::QTable vector_parallel_q = vector_parallel.Learn();

  EXPECT_TRUE(scalar_serial_q == vector_serial_q);
  EXPECT_TRUE(scalar_parallel_q == vector_parallel_q);
  EXPECT_EQ(scalar_serial.episode_returns(), vector_serial.episode_returns());
}

}  // namespace
}  // namespace rlplanner::util::simd

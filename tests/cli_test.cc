// Tests for the CLI flag parser (util/flags.h): flag syntaxes, boolean
// flags, last-wins repetition, positional collection, and the
// RequireFlags/AllowFlags validators rlplanner_cli builds its usage
// errors from.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/flags.h"
#include "util/status.h"

namespace rlplanner::util {
namespace {

CommandLine Parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "rlplanner_cli");
  return ParseCommandLine(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, ParsesCommandAndFlagSyntaxes) {
  const CommandLine cmd =
      Parse({"plan", "--dataset", "univ1-dsct", "--episodes=250", "--quiet"});
  EXPECT_EQ(cmd.command, "plan");
  EXPECT_EQ(cmd.GetFlagOr("dataset", ""), "univ1-dsct");
  EXPECT_EQ(cmd.GetFlagOr("episodes", ""), "250");
  // A value-less flag is boolean and binds "1".
  EXPECT_TRUE(cmd.HasFlag("quiet"));
  EXPECT_EQ(cmd.GetFlagOr("quiet", ""), "1");
  EXPECT_TRUE(cmd.positional.empty());
}

TEST(FlagsTest, EmptyArgvHasNoCommand) {
  const CommandLine cmd = Parse({});
  EXPECT_TRUE(cmd.command.empty());
  EXPECT_TRUE(cmd.flags.empty());
}

TEST(FlagsTest, RepeatedFlagKeepsLastValue) {
  const CommandLine cmd = Parse({"plan", "--seed", "1", "--seed", "2"});
  EXPECT_EQ(cmd.GetFlagOr("seed", ""), "2");
}

TEST(FlagsTest, EqualsSyntaxAllowsEmptyAndEmbeddedEquals) {
  const CommandLine cmd = Parse({"plan", "--out=", "--expr=a=b"});
  EXPECT_TRUE(cmd.HasFlag("out"));
  EXPECT_EQ(cmd.GetFlagOr("out", "x"), "");
  EXPECT_EQ(cmd.GetFlagOr("expr", ""), "a=b");
}

TEST(FlagsTest, CollectsPositionalTokens) {
  const CommandLine cmd = Parse({"plan", "stray", "--dataset", "toy", "more"});
  EXPECT_EQ(cmd.command, "plan");
  ASSERT_EQ(cmd.positional.size(), 2u);
  EXPECT_EQ(cmd.positional[0], "stray");
  EXPECT_EQ(cmd.positional[1], "more");
  EXPECT_EQ(cmd.GetFlagOr("dataset", ""), "toy");
}

TEST(FlagsTest, GetFlagReturnsNulloptWhenUnset) {
  const CommandLine cmd = Parse({"plan"});
  EXPECT_FALSE(cmd.GetFlag("dataset").has_value());
  EXPECT_EQ(cmd.GetFlagOr("dataset", "fallback"), "fallback");
}

TEST(FlagsTest, RequireFlagsNamesEveryMissingFlag) {
  const CommandLine cmd = Parse({"export", "--dataset", "toy"});
  EXPECT_TRUE(RequireFlags(cmd, {"dataset"}).ok());

  const Status missing = RequireFlags(cmd, {"dataset", "out", "format"});
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(missing.message().find("--out"), std::string::npos);
  EXPECT_NE(missing.message().find("--format"), std::string::npos);
  EXPECT_EQ(missing.message().find("--dataset"), std::string::npos);
}

TEST(FlagsTest, AllowFlagsCatchesTypos) {
  const CommandLine cmd = Parse({"plan", "--dataest", "toy"});
  const Status typo = AllowFlags(cmd, {"dataset", "seed"});
  ASSERT_FALSE(typo.ok());
  EXPECT_EQ(typo.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(typo.message().find("dataest"), std::string::npos);

  const CommandLine ok = Parse({"plan", "--dataset", "toy"});
  EXPECT_TRUE(AllowFlags(ok, {"dataset", "seed"}).ok());
}

}  // namespace
}  // namespace rlplanner::util

// Tests for the evaluation harness: experiment runner, sweep harness,
// simulated user study, and transfer case studies.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "baselines/gold.h"
#include "core/config.h"
#include "datagen/course_data.h"
#include "datagen/trip_data.h"
#include "eval/experiment.h"
#include "eval/convergence.h"
#include "eval/report.h"
#include "eval/sweep.h"
#include "eval/transfer_study.h"
#include "eval/user_study.h"

namespace rlplanner::eval {
namespace {

core::PlannerConfig FastToyConfig() {
  core::PlannerConfig config;
  config.sarsa.num_episodes = 60;
  config.reward.epsilon = 1.0;
  return config;
}

// -------------------------------------------------------------- Experiment --

TEST(ExperimentTest, MethodNamesDistinct) {
  EXPECT_STRNE(MethodName(Method::kRlPlannerAvg),
               MethodName(Method::kRlPlannerMin));
  EXPECT_STRNE(MethodName(Method::kOmega), MethodName(Method::kEda));
}

TEST(ExperimentTest, RunsRequestedNumberOfRuns) {
  const datagen::Dataset toy = datagen::MakeTableIIToy();
  const auto result =
      RunMethod(toy, Method::kRlPlannerAvg, FastToyConfig(), 4);
  EXPECT_EQ(result.scores.size(), 4u);
  EXPECT_GE(result.valid_fraction, 0.0);
  EXPECT_LE(result.valid_fraction, 1.0);
  EXPECT_GE(result.mean_score, 0.0);
}

TEST(ExperimentTest, GoldScoresMaxOnToy) {
  const datagen::Dataset toy = datagen::MakeTableIIToy();
  const auto result = RunMethod(toy, Method::kGold, FastToyConfig(), 3);
  EXPECT_DOUBLE_EQ(result.mean_score, 6.0);
  EXPECT_DOUBLE_EQ(result.valid_fraction, 1.0);
}

TEST(ExperimentTest, StatsAreConsistent) {
  const datagen::Dataset toy = datagen::MakeTableIIToy();
  const auto result = RunMethod(toy, Method::kEda, FastToyConfig(), 5);
  double mean = 0.0;
  for (double s : result.scores) mean += s;
  mean /= result.scores.size();
  EXPECT_NEAR(result.mean_score, mean, 1e-12);
  EXPECT_GE(result.stddev_score, 0.0);
}

TEST(ExperimentTest, DeterministicForSameSeedBase) {
  const datagen::Dataset toy = datagen::MakeTableIIToy();
  const auto a = RunMethod(toy, Method::kRlPlannerAvg, FastToyConfig(), 3, 77);
  const auto b = RunMethod(toy, Method::kRlPlannerAvg, FastToyConfig(), 3, 77);
  EXPECT_EQ(a.scores, b.scores);
}

TEST(ExperimentTest, ParallelRunsBitIdenticalToSerial) {
  const datagen::Dataset toy = datagen::MakeTableIIToy();
  util::ThreadPool pool(4);
  const auto serial =
      RunMethod(toy, Method::kRlPlannerAvg, FastToyConfig(), 6, 77);
  const auto parallel =
      RunMethod(toy, Method::kRlPlannerAvg, FastToyConfig(), 6, 77, &pool);
  EXPECT_EQ(serial.scores, parallel.scores);
  EXPECT_DOUBLE_EQ(serial.mean_score, parallel.mean_score);
  EXPECT_DOUBLE_EQ(serial.stddev_score, parallel.stddev_score);
  EXPECT_DOUBLE_EQ(serial.valid_fraction, parallel.valid_fraction);
  EXPECT_EQ(serial.last_plan.items(), parallel.last_plan.items());
}

TEST(ExperimentTest, ConvenienceWrappersMatchRunMethod) {
  const datagen::Dataset toy = datagen::MakeTableIIToy();
  const core::PlannerConfig config = FastToyConfig();
  EXPECT_DOUBLE_EQ(
      MeanRlScore(toy, config, mdp::SimilarityMode::kAverage, 3, 42),
      RunMethod(toy, Method::kRlPlannerAvg, config, 3, 42).mean_score);
  EXPECT_DOUBLE_EQ(
      MeanEdaScore(toy, config.reward, 3, 42),
      RunMethod(toy, Method::kEda, config, 3, 42).mean_score);
}

// ------------------------------------------------------------------- Sweep --

TEST(SweepTest, AppliesMutatorsPerValue) {
  const auto make = [] { return datagen::MakeTableIIToy(); };
  const core::PlannerConfig base = FastToyConfig();
  SweepValue low{"N=1",
                 [](core::PlannerConfig& c) { c.sarsa.num_episodes = 1; },
                 nullptr, false};
  SweepValue high{"N=60", nullptr, nullptr, true};
  const SweepRow row = RunSweep(make, base, "N", {low, high}, 2);
  EXPECT_EQ(row.parameter, "N");
  ASSERT_EQ(row.value_labels.size(), 2u);
  EXPECT_EQ(row.value_labels[0], "N=1");
  // EDA column: NaN where not applicable, a number where it is.
  EXPECT_TRUE(std::isnan(row.eda[0]));
  EXPECT_FALSE(std::isnan(row.eda[1]));
}

TEST(SweepTest, ParallelSweepBitIdenticalToSerial) {
  const auto make = [] { return datagen::MakeTableIIToy(); };
  const core::PlannerConfig base = FastToyConfig();
  SweepValue low{"N=1",
                 [](core::PlannerConfig& c) { c.sarsa.num_episodes = 1; },
                 nullptr, false};
  SweepValue high{"N=60", nullptr, nullptr, true};
  util::ThreadPool pool(4);
  const SweepRow serial = RunSweep(make, base, "N", {low, high}, 3);
  const SweepRow parallel =
      RunSweep(make, base, "N", {low, high}, 3, 1000, &pool);
  EXPECT_EQ(serial.rl_avg, parallel.rl_avg);
  EXPECT_EQ(serial.rl_min, parallel.rl_min);
  ASSERT_EQ(serial.eda.size(), parallel.eda.size());
  for (std::size_t i = 0; i < serial.eda.size(); ++i) {
    if (std::isnan(serial.eda[i])) {
      EXPECT_TRUE(std::isnan(parallel.eda[i]));
    } else {
      EXPECT_EQ(serial.eda[i], parallel.eda[i]);
    }
  }
}

TEST(SweepTest, FormatRendersDashesForNaN) {
  SweepRow row;
  row.parameter = "x";
  row.value_labels = {"a"};
  row.rl_avg = {1.0};
  row.rl_min = {2.0};
  row.eda = {std::numeric_limits<double>::quiet_NaN()};
  const std::string text = FormatSweepTable("T", {row});
  EXPECT_NE(text.find("—"), std::string::npos);
  EXPECT_NE(text.find("T"), std::string::npos);
}

// -------------------------------------------------------------- User study --

TEST(UserStudyTest, GoldRatesAboveInvalidPlan) {
  const datagen::Dataset toy = datagen::MakeTableIIToy();
  const model::TaskInstance instance = toy.Instance();
  auto gold = baselines::BuildGoldStandard(instance);
  ASSERT_TRUE(gold.ok());
  const auto good = SimulateRatings(instance, gold.value(), 25, 1);
  const auto bad = SimulateRatings(instance, model::Plan({0, 1}), 25, 1);
  EXPECT_GT(good.overall, bad.overall);
  EXPECT_GT(good.interleaving, bad.interleaving);
}

TEST(UserStudyTest, RatingsStayOnTheScale) {
  const datagen::Dataset toy = datagen::MakeTableIIToy();
  const model::TaskInstance instance = toy.Instance();
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto r = SimulateRatings(instance, model::Plan({0, 1, 3}), 10, seed);
    for (double v : {r.overall, r.ordering, r.topic_coverage,
                     r.interleaving}) {
      EXPECT_GE(v, 1.0);
      EXPECT_LE(v, 5.0);
    }
  }
}

TEST(UserStudyTest, DeterministicPerSeed) {
  const datagen::Dataset toy = datagen::MakeTableIIToy();
  const model::TaskInstance instance = toy.Instance();
  const model::Plan plan({0, 1, 3, 4, 5, 2});
  const auto a = SimulateRatings(instance, plan, 25, 7);
  const auto b = SimulateRatings(instance, plan, 25, 7);
  EXPECT_DOUBLE_EQ(a.overall, b.overall);
  EXPECT_DOUBLE_EQ(a.ordering, b.ordering);
}

TEST(UserStudyTest, MoreRatersLessVariance) {
  const datagen::Dataset toy = datagen::MakeTableIIToy();
  const model::TaskInstance instance = toy.Instance();
  const model::Plan plan({0, 1, 3, 4, 5, 2});
  auto spread = [&](int raters) {
    double lo = 5.0;
    double hi = 1.0;
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
      const double v = SimulateRatings(instance, plan, raters, seed).overall;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    return hi - lo;
  };
  EXPECT_LT(spread(200), spread(2));
}

// ------------------------------------------------------------- Convergence --

TEST(ConvergenceTest, MeasuresAndSmoothsReturns) {
  const datagen::Dataset toy = datagen::MakeTableIIToy();
  core::PlannerConfig config = FastToyConfig();
  config.sarsa.num_episodes = 100;
  const ConvergenceCurve curve = MeasureConvergence(toy, config, 10, 0.2);
  ASSERT_EQ(curve.episode_returns.size(), 100u);
  ASSERT_EQ(curve.smoothed.size(), 100u);
  EXPECT_GT(curve.final_level, 0.0);
  // The smoothed curve is bounded by the raw extremes.
  double lo = curve.episode_returns[0];
  double hi = curve.episode_returns[0];
  for (double r : curve.episode_returns) {
    lo = std::min(lo, r);
    hi = std::max(hi, r);
  }
  for (double s : curve.smoothed) {
    EXPECT_GE(s, lo - 1e-9);
    EXPECT_LE(s, hi + 1e-9);
  }
  // The reward-greedy behavior converges quickly on the toy.
  EXPECT_GE(curve.converged_at, 0);
  EXPECT_LT(curve.converged_at, 60);
}

TEST(ConvergenceTest, FormatCurvesRendersNamesAndConvergence) {
  const datagen::Dataset toy = datagen::MakeTableIIToy();
  core::PlannerConfig config = FastToyConfig();
  config.sarsa.num_episodes = 40;
  const ConvergenceCurve curve = MeasureConvergence(toy, config);
  const std::string text = FormatCurves({{"sarsa", curve}}, 8);
  EXPECT_NE(text.find("sarsa"), std::string::npos);
  EXPECT_NE(text.find("converged at episode"), std::string::npos);
  EXPECT_NE(text.find("episode"), std::string::npos);
}

TEST(ConvergenceTest, InvalidConfigYieldsEmptyCurve) {
  datagen::Dataset toy = datagen::MakeTableIIToy();
  core::PlannerConfig config = FastToyConfig();
  config.sarsa.num_episodes = 0;  // invalid
  const ConvergenceCurve curve = MeasureConvergence(toy, config);
  EXPECT_TRUE(curve.episode_returns.empty());
  EXPECT_EQ(curve.converged_at, -1);
}

// ------------------------------------------------------------------ Report --

TEST(ReportTest, ContainsAllSections) {
  ReportOptions options;
  options.runs = 1;
  options.course_raters = 3;
  options.trip_raters = 3;
  const std::string report = BuildEvaluationReport(options);
  for (const char* needle :
       {"# RL-Planner evaluation report", "Course planning (Figure 1a)",
        "Trip planning (Figure 1b)", "Simulated user study",
        "Transfer learning", "## Timing", "Univ-2 DS", "Paris", "Gold"}) {
    EXPECT_NE(report.find(needle), std::string::npos) << needle;
  }
}

TEST(ReportTest, WritesToDisk) {
  ReportOptions options;
  options.runs = 1;
  options.course_raters = 2;
  options.trip_raters = 2;
  const std::string path = "/tmp/rlplanner_report_test.md";
  ASSERT_TRUE(WriteEvaluationReport(options, path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first_line;
  std::getline(in, first_line);
  EXPECT_EQ(first_line, "# RL-Planner evaluation report");
  in.close();
  std::remove(path.c_str());
}

// ---------------------------------------------------------------- Transfer --

TEST(TransferStudyTest, ProducesCasesSortedValidFirst) {
  const datagen::Dataset ds = datagen::MakeUniv1DsCt();
  const datagen::Dataset cs = datagen::MakeUniv1Cs();
  auto config = rlplanner::core::DefaultUniv1Config();
  config.sarsa.num_episodes = 200;
  std::vector<model::ItemId> starts = {cs.default_start};
  for (const model::Item& item : cs.catalog.items()) {
    if (item.prereqs.empty() && item.id != cs.default_start) {
      starts.push_back(item.id);
    }
    if (starts.size() == 4) break;
  }
  const auto cases = RunTransferStudy(ds, cs, config, starts);
  ASSERT_EQ(cases.size(), starts.size());
  for (std::size_t i = 1; i < cases.size(); ++i) {
    // valid cases come first.
    EXPECT_GE(cases[i - 1].valid, cases[i].valid);
  }
  for (const auto& c : cases) {
    EXPECT_EQ(c.source_name, ds.name);
    EXPECT_EQ(c.target_name, cs.name);
    EXPECT_FALSE(c.rendered.empty());
    EXPECT_EQ(c.valid, c.violations.empty());
  }
}

TEST(TransferStudyTest, DefaultStartUsedWhenStartsEmpty) {
  const datagen::Dataset nyc = datagen::MakeNycTrip();
  const datagen::Dataset paris = datagen::MakeParisTrip();
  auto config = rlplanner::core::DefaultTripConfig();
  config.sarsa.num_episodes = 100;
  const auto cases = RunTransferStudy(nyc, paris, config, {});
  ASSERT_EQ(cases.size(), 1u);
  EXPECT_EQ(cases[0].plan.at(0), paris.default_start);
}

}  // namespace
}  // namespace rlplanner::eval

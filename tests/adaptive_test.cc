// Tests for the adaptive extensions (the paper's Section VI future work):
// feedback model, feedback-adapted recommendation loop, and interactive
// advising sessions.

#include <gtest/gtest.h>

#include <algorithm>

#include "adaptive/adaptive_planner.h"
#include "adaptive/feedback.h"
#include "adaptive/interactive.h"
#include "core/config.h"
#include "core/planner.h"
#include "core/validation.h"
#include "datagen/course_data.h"
#include "mdp/reward.h"
#include "rl/recommender.h"
#include "rl/sarsa.h"
#include "util/rng.h"

namespace rlplanner::adaptive {
namespace {

// ---------------------------------------------------------- FeedbackModel --

TEST(FeedbackModelTest, StartsNeutral) {
  FeedbackModel feedback(5);
  for (model::ItemId i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(feedback.Affinity(i), 0.5);
    EXPECT_EQ(feedback.ObservationCount(i), 0);
  }
  EXPECT_DOUBLE_EQ(feedback.Affinity(-1), 0.5);  // unknown item -> neutral
}

TEST(FeedbackModelTest, BinaryFeedbackShiftsAffinity) {
  FeedbackModel feedback(3, 0.5);
  ASSERT_TRUE(feedback.AddBinary(0, true).ok());
  EXPECT_DOUBLE_EQ(feedback.Affinity(0), 0.75);
  ASSERT_TRUE(feedback.AddBinary(1, false).ok());
  EXPECT_DOUBLE_EQ(feedback.Affinity(1), 0.25);
  EXPECT_EQ(feedback.ObservationCount(0), 1);
}

TEST(FeedbackModelTest, RatingNormalization) {
  FeedbackModel feedback(2, 1.0);  // full weight: affinity = last value
  ASSERT_TRUE(feedback.AddRating(0, 5.0).ok());
  EXPECT_DOUBLE_EQ(feedback.Affinity(0), 1.0);
  ASSERT_TRUE(feedback.AddRating(0, 1.0).ok());
  EXPECT_DOUBLE_EQ(feedback.Affinity(0), 0.0);
  ASSERT_TRUE(feedback.AddRating(0, 3.0).ok());
  EXPECT_DOUBLE_EQ(feedback.Affinity(0), 0.5);
  EXPECT_FALSE(feedback.AddRating(0, 0.5).ok());
  EXPECT_FALSE(feedback.AddRating(0, 6.0).ok());
}

TEST(FeedbackModelTest, DistributionUsesExpectation) {
  FeedbackModel feedback(2, 1.0);
  // All mass on rating 5.
  ASSERT_TRUE(feedback.AddDistribution(0, {0, 0, 0, 0, 1}).ok());
  EXPECT_DOUBLE_EQ(feedback.Affinity(0), 1.0);
  // Uniform distribution -> expectation 3 -> affinity 0.5.
  ASSERT_TRUE(feedback.AddDistribution(0, {1, 1, 1, 1, 1}).ok());
  EXPECT_DOUBLE_EQ(feedback.Affinity(0), 0.5);
  // Unnormalized mass is fine.
  ASSERT_TRUE(feedback.AddDistribution(1, {0, 0, 0, 0, 10}).ok());
  EXPECT_DOUBLE_EQ(feedback.Affinity(1), 1.0);
}

TEST(FeedbackModelTest, DistributionValidation) {
  FeedbackModel feedback(1);
  EXPECT_FALSE(feedback.AddDistribution(0, {1, 1}).ok());
  EXPECT_FALSE(feedback.AddDistribution(0, {0, 0, 0, 0, 0}).ok());
  EXPECT_FALSE(feedback.AddDistribution(0, {-1, 0, 0, 0, 2}).ok());
}

TEST(FeedbackModelTest, EmaBlendsHistory) {
  FeedbackModel feedback(1, 0.5);
  ASSERT_TRUE(feedback.AddBinary(0, true).ok());   // 0.75
  ASSERT_TRUE(feedback.AddBinary(0, true).ok());   // 0.875
  ASSERT_TRUE(feedback.AddBinary(0, false).ok());  // 0.4375
  EXPECT_DOUBLE_EQ(feedback.Affinity(0), 0.4375);
}

TEST(FeedbackModelTest, ResetForgets) {
  FeedbackModel feedback(1);
  ASSERT_TRUE(feedback.AddBinary(0, true).ok());
  ASSERT_TRUE(feedback.Reset(0).ok());
  EXPECT_DOUBLE_EQ(feedback.Affinity(0), 0.5);
  EXPECT_EQ(feedback.ObservationCount(0), 0);
  EXPECT_FALSE(feedback.Reset(9).ok());
}

TEST(FeedbackModelTest, RejectsUnknownItems) {
  FeedbackModel feedback(2);
  EXPECT_FALSE(feedback.AddBinary(5, true).ok());
  EXPECT_FALSE(feedback.AddRating(-1, 3.0).ok());
}

// -------------------------------------------------------- AdaptivePlanner --

class AdaptiveFixture : public ::testing::Test {
 protected:
  AdaptiveFixture()
      : dataset_(datagen::MakeUniv1DsCt()), instance_(dataset_.Instance()) {
    config_ = core::DefaultUniv1Config();
    config_.sarsa.start_item = dataset_.default_start;
    config_.seed = 1000;  // a seed whose plan is valid
    planner_ = std::make_unique<core::RlPlanner>(instance_, config_);
    EXPECT_TRUE(planner_->Train().ok());
  }

  datagen::Dataset dataset_;
  model::TaskInstance instance_;
  core::PlannerConfig config_;
  std::unique_ptr<core::RlPlanner> planner_;
};

TEST_F(AdaptiveFixture, NeutralFeedbackReproducesBasePlan) {
  AdaptivePlanner adaptive(*planner_);
  auto base = planner_->Recommend(dataset_.default_start);
  auto adapted = adaptive.Recommend(dataset_.default_start);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(adapted.ok());
  EXPECT_EQ(base.value(), adapted.value());
}

// A secondary item in the plan that no primary's prerequisite expression
// references — safe to substitute without endangering a core's antecedents.
model::ItemId FindSubstitutableSecondary(const datagen::Dataset& dataset,
                                         const model::Plan& plan) {
  for (model::ItemId item : plan.items()) {
    if (dataset.catalog.item(item).type != model::ItemType::kSecondary) {
      continue;
    }
    bool enabler = false;
    for (const model::Item& other : dataset.catalog.items()) {
      if (other.type != model::ItemType::kPrimary) continue;
      for (const auto& group : other.prereqs.groups()) {
        for (model::ItemId member : group) {
          if (member == item) enabler = true;
        }
      }
    }
    if (!enabler) return item;
  }
  return -1;
}

TEST_F(AdaptiveFixture, NegativeFeedbackRemovesDislikedElective) {
  AdaptivePlanner adaptive(*planner_, /*strength=*/2.0);
  auto base = planner_->Recommend(dataset_.default_start);
  ASSERT_TRUE(base.ok());
  // Dislike a substitutable secondary item of the base plan.
  const model::ItemId disliked =
      FindSubstitutableSecondary(dataset_, base.value());
  ASSERT_GE(disliked, 0);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(adaptive.feedback().AddBinary(disliked, false).ok());
  }
  auto adapted = adaptive.Recommend(dataset_.default_start);
  ASSERT_TRUE(adapted.ok());
  EXPECT_FALSE(adapted.value().Contains(disliked))
      << dataset_.catalog.item(disliked).code;
  // The adapted plan must still satisfy the hard constraints.
  EXPECT_TRUE(planner_->Validate(adapted.value()).valid);
}

TEST_F(AdaptiveFixture, PositiveFeedbackPullsItemIn) {
  AdaptivePlanner adaptive(*planner_, 2.0);
  auto base = planner_->Recommend(dataset_.default_start);
  ASSERT_TRUE(base.ok());
  // Find a prerequisite-free elective NOT in the base plan and praise it.
  model::ItemId liked = -1;
  for (const model::Item& item : dataset_.catalog.items()) {
    if (item.type == model::ItemType::kSecondary && item.prereqs.empty() &&
        !base.value().Contains(item.id)) {
      liked = item.id;
      break;
    }
  }
  ASSERT_GE(liked, 0);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(adaptive.feedback().AddRating(liked, 5.0).ok());
  }
  auto adapted = adaptive.Recommend(dataset_.default_start);
  ASSERT_TRUE(adapted.ok());
  EXPECT_TRUE(adapted.value().Contains(liked))
      << dataset_.catalog.item(liked).code;
}

TEST_F(AdaptiveFixture, LoopConvergesWithConsistentRater) {
  AdaptivePlanner adaptive(*planner_, 1.0);
  // A rater who dislikes one specific elective and likes everything else.
  auto base = planner_->Recommend(dataset_.default_start);
  ASSERT_TRUE(base.ok());
  const model::ItemId disliked =
      FindSubstitutableSecondary(dataset_, base.value());
  ASSERT_GE(disliked, 0);
  auto plan = adaptive.RunLoop(
      dataset_.default_start, 10,
      [&](model::ItemId item) { return item == disliked ? 1.0 : 5.0; });
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan.value().Contains(disliked));
  EXPECT_TRUE(planner_->Validate(plan.value()).valid);
}

TEST_F(AdaptiveFixture, DistributionFeedbackSteersLikeRatings) {
  AdaptivePlanner by_rating(*planner_, 2.0);
  AdaptivePlanner by_distribution(*planner_, 2.0);
  auto base = planner_->Recommend(dataset_.default_start);
  ASSERT_TRUE(base.ok());
  const model::ItemId disliked =
      FindSubstitutableSecondary(dataset_, base.value());
  ASSERT_GE(disliked, 0);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(by_rating.feedback().AddRating(disliked, 1.0).ok());
    // All probability mass on rating 1 — the same signal.
    ASSERT_TRUE(
        by_distribution.feedback().AddDistribution(disliked, {1, 0, 0, 0, 0})
            .ok());
  }
  EXPECT_DOUBLE_EQ(by_rating.feedback().Affinity(disliked),
                   by_distribution.feedback().Affinity(disliked));
  auto a = by_rating.Recommend(dataset_.default_start);
  auto b = by_distribution.Recommend(dataset_.default_start);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
}

TEST_F(AdaptiveFixture, ZeroStrengthIgnoresFeedback) {
  AdaptivePlanner adaptive(*planner_, /*strength=*/0.0);
  auto base = planner_->Recommend(dataset_.default_start);
  ASSERT_TRUE(base.ok());
  const model::ItemId disliked =
      FindSubstitutableSecondary(dataset_, base.value());
  ASSERT_GE(disliked, 0);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(adaptive.feedback().AddBinary(disliked, false).ok());
  }
  auto adapted = adaptive.Recommend(dataset_.default_start);
  ASSERT_TRUE(adapted.ok());
  EXPECT_EQ(adapted.value(), base.value());
}

TEST_F(AdaptiveFixture, InteractiveSuggestionSignalsAreConsistent) {
  InteractiveSession session(*planner_);
  ASSERT_TRUE(session.Pin(dataset_.default_start).ok());
  const auto suggestions = session.SuggestNext(-1);  // all candidates
  for (const auto& s : suggestions) {
    EXPECT_GE(s.theta, 0);
    EXPECT_LE(s.theta, 1);
    EXPECT_GE(s.reward, 0.0);
    // theta = 0 forces reward 0 (Eq. 2).
    if (s.theta == 0) {
      EXPECT_DOUBLE_EQ(s.reward, 0.0);
    }
  }
}

TEST(AdaptivePlannerTest, RequiresTrainedPlanner) {
  datagen::Dataset dataset = datagen::MakeTableIIToy();
  const model::TaskInstance instance = dataset.Instance();
  core::RlPlanner planner(instance, core::PlannerConfig{});
  AdaptivePlanner adaptive(planner);
  EXPECT_FALSE(adaptive.Recommend(0).ok());
}

// ----------------------------------------------------- InteractiveSession --

TEST_F(AdaptiveFixture, InteractiveCompleteMatchesAutomaticPlan) {
  InteractiveSession session(*planner_);
  ASSERT_TRUE(session.Pin(dataset_.default_start).ok());
  const model::Plan interactive = session.Complete();
  auto automatic = planner_->Recommend(dataset_.default_start);
  ASSERT_TRUE(automatic.ok());
  EXPECT_EQ(interactive, automatic.value());
}

TEST_F(AdaptiveFixture, SuggestionsAreRankedAndAdmissible) {
  InteractiveSession session(*planner_);
  ASSERT_TRUE(session.Pin(dataset_.default_start).ok());
  const auto suggestions = session.SuggestNext(5);
  ASSERT_FALSE(suggestions.empty());
  EXPECT_LE(suggestions.size(), 5u);
  for (std::size_t i = 1; i < suggestions.size(); ++i) {
    EXPECT_GE(suggestions[i - 1].theta, suggestions[i].theta);
  }
  // Top suggestion must be admissible to pin.
  EXPECT_TRUE(session.Pin(suggestions.front().item).ok());
}

TEST_F(AdaptiveFixture, PinRejectsInadmissibleItems) {
  InteractiveSession session(*planner_);
  ASSERT_TRUE(session.Pin(dataset_.default_start).ok());
  // Repeating the same item is inadmissible.
  EXPECT_FALSE(session.Pin(dataset_.default_start).ok());
  EXPECT_FALSE(session.Pin(-3).ok());
  EXPECT_FALSE(session.Pin(999).ok());
}

TEST_F(AdaptiveFixture, PinnedPrefixIsRespected) {
  InteractiveSession session(*planner_);
  // Pin two prerequisite-free items of the student's own choosing.
  const auto math661 = dataset_.catalog.FindByCode("MATH 661").value();
  ASSERT_TRUE(session.Pin(dataset_.default_start).ok());
  ASSERT_TRUE(session.Pin(math661).ok());
  const model::Plan plan = session.Complete();
  EXPECT_EQ(plan.at(0), dataset_.default_start);
  EXPECT_EQ(plan.at(1), math661);
  EXPECT_EQ(static_cast<int>(plan.size()), instance_.hard.TotalItems());
}

TEST_F(AdaptiveFixture, DoneAfterHorizonAndAcceptFails) {
  InteractiveSession session(*planner_);
  ASSERT_TRUE(session.Pin(dataset_.default_start).ok());
  while (!session.Done()) {
    ASSERT_TRUE(session.AcceptSuggestion().ok());
  }
  EXPECT_EQ(static_cast<int>(session.Length()),
            instance_.hard.TotalItems());
  EXPECT_FALSE(session.AcceptSuggestion().ok());
  EXPECT_FALSE(session.Pin(0).ok());
}

// ------------------------------------------------- FoldFeedback property --

// Property: folding ANY feedback batch into a retrain preserves
// hard-constraint satisfaction. FoldFeedback only shapes the warm start —
// the SARSA safety loop and the theta-gated rollout still stand between the
// shaped table and the served plan, so no batch of user opinions, however
// adversarial, can push a published policy into violating P_hard (the
// paper's inviolable constraint set).
class FeedbackFoldPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(FeedbackFoldPropertyTest, FoldedRetrainPreservesHardConstraints) {
  const int seed = GetParam();
  const datagen::Dataset dataset = datagen::MakeUniv1DsCt();
  const model::TaskInstance instance = dataset.Instance();
  core::PlannerConfig config = core::DefaultUniv1Config();
  config.sarsa.start_item = dataset.default_start;
  config.seed = 1000;  // a seed whose base plan is valid
  core::RlPlanner planner(instance, config);
  ASSERT_TRUE(planner.Train().ok());

  // A random batch mixing every feedback kind over random items.
  util::Rng rng(static_cast<std::uint64_t>(seed) * 7919u + 1u);
  FeedbackModel feedback(dataset.catalog.size(), /*smoothing=*/0.5);
  for (int i = 0; i < 24; ++i) {
    FeedbackEvent event;
    event.item =
        static_cast<model::ItemId>(rng.NextBounded(dataset.catalog.size()));
    switch (rng.NextInt(0, 2)) {
      case 0:
        event.kind = FeedbackKind::kBinary;
        event.value = rng.NextBernoulli(0.5) ? 1.0 : 0.0;
        break;
      case 1:
        event.kind = FeedbackKind::kRating;
        event.value = rng.NextDouble(1.0, 5.0);
        break;
      default:
        event.kind = FeedbackKind::kDistribution;
        event.distribution = {rng.NextDouble() + 0.01, rng.NextDouble(),
                              rng.NextDouble(), rng.NextDouble(),
                              rng.NextDouble()};
        break;
    }
    ASSERT_TRUE(feedback.Apply(event).ok());
  }

  const mdp::QTable shaped =
      FoldFeedback(planner.q_table(), feedback, /*strength=*/0.8);
  const mdp::RewardFunction reward(instance, config.reward);
  rl::SarsaLearnerT<mdp::QTable> learner(
      instance, reward, config.sarsa,
      config.seed + static_cast<std::uint64_t>(seed));
  const mdp::QTable retrained = learner.LearnFrom(shaped);

  rl::RecommendConfig recommend;
  recommend.start_item = dataset.default_start;
  recommend.gamma = config.sarsa.gamma;
  recommend.mask_type_overflow = config.sarsa.mask_type_overflow;
  const model::Plan plan =
      rl::RecommendPlan(retrained, instance, reward, recommend);
  const core::ValidationReport report = core::ValidatePlan(instance, plan);
  EXPECT_TRUE(report.valid)
      << "feedback batch seed " << seed
      << " broke hard-constraint satisfaction: " << report.violations.size()
      << " violated constraints";
}

INSTANTIATE_TEST_SUITE_P(Seeds, FeedbackFoldPropertyTest,
                         ::testing::Range(1, 6));

}  // namespace
}  // namespace rlplanner::adaptive

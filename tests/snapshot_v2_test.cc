// Tests for snapshot format v2 and the zero-copy serving path: round-trip
// exactness, the strict-validation matrix (truncation, corrupted section
// tables, checksum mismatches, fingerprint drift), v1→v2 policy
// equivalence, mmap-vs-deserialize install parity, and snapshot-file
// inspection for both formats.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/config.h"
#include "core/planner.h"
#include "datagen/course_data.h"
#include "mdp/q_table.h"
#include "mdp/sparse_q_table.h"
#include "serve/plan_service.h"
#include "serve/policy_registry.h"
#include "serve/policy_snapshot.h"
#include "util/bitset.h"
#include "util/rng.h"
#include "util/status.h"

namespace rlplanner::serve {
namespace {

using datagen::Dataset;

core::PlannerConfig SparseConfig(const Dataset& dataset,
                                 std::uint64_t seed = 17,
                                 int episodes = 80) {
  core::PlannerConfig config = core::DefaultUniv1Config();
  config.sarsa.num_episodes = episodes;
  config.sarsa.start_item = dataset.default_start;
  config.sarsa.q_representation = rl::QRepresentation::kSparse;
  config.seed = seed;
  return config;
}

std::unique_ptr<core::RlPlanner> TrainPlanner(const model::TaskInstance&
                                                  instance,
                                              core::PlannerConfig config) {
  auto planner = std::make_unique<core::RlPlanner>(instance, config);
  EXPECT_TRUE(planner->Train().ok());
  return planner;
}

// The on-disk census: the file stores only non-zero entries, while the
// in-memory table may also hold explicit zeros (SARSA updates that landed
// back on 0.0) that serialize as absent.
std::uint64_t NonZeroCount(const mdp::SparseQTable& table) {
  std::uint64_t count = 0;
  table.ForEachNonZeroEntrySorted(
      [&](model::ItemId, model::ItemId, double) { ++count; });
  return count;
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

// Recomputes the v2 header checksum after a deliberate header patch, so a
// test can reach the *structural* validators behind the checksum gate.
void FixHeaderChecksum(std::string* bytes) {
  const std::uint64_t checksum = Fnv1a64(bytes->data(), 192);
  std::memcpy(bytes->data() + 192, &checksum, sizeof(checksum));
}

TEST(SnapshotV2Test, SerializeDeserializeRoundTripIsExact) {
  const Dataset dataset = datagen::MakeTableIIToy();
  const model::TaskInstance instance = dataset.Instance();
  const auto planner = TrainPlanner(instance, SparseConfig(dataset));
  auto snapshot = MakeSnapshotV2(*planner);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();

  const std::string bytes = snapshot.value().Serialize();
  // Page-aligned layout: header page plus page-aligned sections.
  EXPECT_EQ(bytes.size() % kSnapshotV2PageBytes, 0u);
  EXPECT_EQ(bytes.compare(0, 8, "RLPSNAP2"), 0);

  auto restored = SparsePolicySnapshotV2::Deserialize(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(restored.value().table == snapshot.value().table);
  EXPECT_EQ(restored.value().catalog_fingerprint,
            snapshot.value().catalog_fingerprint);
  EXPECT_EQ(restored.value().seed, snapshot.value().seed);
  EXPECT_EQ(restored.value().provenance.num_episodes,
            snapshot.value().provenance.num_episodes);
  EXPECT_EQ(restored.value().provenance.alpha,
            snapshot.value().provenance.alpha);
  EXPECT_EQ(restored.value().provenance.gamma,
            snapshot.value().provenance.gamma);
}

TEST(SnapshotV2Test, MappedPolicyServesIdenticalValues) {
  const Dataset dataset = datagen::MakeTableIIToy();
  const model::TaskInstance instance = dataset.Instance();
  const auto planner = TrainPlanner(instance, SparseConfig(dataset));
  auto snapshot = MakeSnapshotV2(*planner);
  ASSERT_TRUE(snapshot.ok());
  const std::string path = testing::TempDir() + "/toy_policy_v2.snap";
  ASSERT_TRUE(snapshot.value().SaveToFile(path).ok());

  auto mapped = MappedPolicy::Map(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  const mdp::SparseQTable& table = snapshot.value().table;
  const std::size_t n = table.num_items();
  ASSERT_EQ(mapped.value().num_items(), n);
  EXPECT_EQ(mapped.value().entry_count(), NonZeroCount(table));
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t a = 0; a < n; ++a) {
      EXPECT_EQ(mapped.value().Get(static_cast<model::ItemId>(s),
                                   static_cast<model::ItemId>(a)),
                table.Get(static_cast<model::ItemId>(s),
                          static_cast<model::ItemId>(a)));
    }
  }
  // ArgmaxAction parity against the in-memory sparse table under random
  // admissible masks (which themselves pin to the dense semantics).
  util::Rng rng(77);
  for (int trial = 0; trial < 100; ++trial) {
    util::DynamicBitset allowed(n);
    for (std::size_t a = 0; a < n; ++a) {
      if (rng.NextDouble() < 0.5) allowed.Set(a);
    }
    for (std::size_t s = 0; s < n; ++s) {
      const auto state = static_cast<model::ItemId>(s);
      EXPECT_EQ(mapped.value().ArgmaxAction(state, allowed),
                table.ArgmaxAction(state, allowed));
    }
  }
  EXPECT_EQ(mapped.value().NonZeroFraction(), table.NonZeroFraction());
}

TEST(SnapshotV2Test, V1AndV2SnapshotsOfOnePolicyAgreeOnEveryArgmax) {
  // Train dense, snapshot both ways; the v2 (sparse) artifact must induce
  // the same greedy action as the v1 (dense) artifact on every state.
  const Dataset dataset = datagen::MakeTableIIToy();
  const model::TaskInstance instance = dataset.Instance();
  core::PlannerConfig config = SparseConfig(dataset);
  config.sarsa.q_representation = rl::QRepresentation::kDense;
  const auto planner = TrainPlanner(instance, config);

  auto v1 = MakeSnapshot(*planner);
  ASSERT_TRUE(v1.ok());
  auto v2 = MakeSnapshotV2(*planner);
  ASSERT_TRUE(v2.ok());
  const std::string path = testing::TempDir() + "/toy_v1_to_v2.snap";
  ASSERT_TRUE(v2.value().SaveToFile(path).ok());
  auto mapped = MappedPolicy::Map(path);
  ASSERT_TRUE(mapped.ok());

  const std::size_t n = v1.value().table.num_items();
  util::Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    util::DynamicBitset allowed(n);
    if (trial == 0) {
      allowed.SetAll();
    } else {
      for (std::size_t a = 0; a < n; ++a) {
        if (rng.NextDouble() < 0.6) allowed.Set(a);
      }
    }
    for (std::size_t s = 0; s < n; ++s) {
      const auto state = static_cast<model::ItemId>(s);
      EXPECT_EQ(v1.value().table.ArgmaxAction(state, allowed),
                mapped.value().ArgmaxAction(state, allowed));
    }
  }
}

TEST(SnapshotV2Test, TruncatedBytesAreRejected) {
  const Dataset dataset = datagen::MakeTableIIToy();
  const model::TaskInstance instance = dataset.Instance();
  const auto planner = TrainPlanner(instance, SparseConfig(dataset));
  auto snapshot = MakeSnapshotV2(*planner);
  ASSERT_TRUE(snapshot.ok());
  const std::string bytes = snapshot.value().Serialize();
  // Cut inside the magic, the header, at the header boundary, and inside
  // the payload — every prefix must be rejected, by parse or checksum.
  for (const std::size_t cut :
       {std::size_t{4}, std::size_t{100}, std::size_t{4095},
        std::size_t{4096}, bytes.size() - 1}) {
    auto result = SparsePolicySnapshotV2::Deserialize(bytes.substr(0, cut));
    EXPECT_FALSE(result.ok()) << "cut at " << cut;
  }
  // The mmap path rejects a truncated file too.
  const std::string path = testing::TempDir() + "/truncated_v2.snap";
  WriteFileBytes(path, bytes.substr(0, 4096));
  auto mapped = MappedPolicy::Map(path);
  EXPECT_FALSE(mapped.ok());
}

TEST(SnapshotV2Test, CorruptedHeaderFailsTheHeaderChecksum) {
  const Dataset dataset = datagen::MakeTableIIToy();
  const model::TaskInstance instance = dataset.Instance();
  const auto planner = TrainPlanner(instance, SparseConfig(dataset));
  auto snapshot = MakeSnapshotV2(*planner);
  ASSERT_TRUE(snapshot.ok());
  std::string bytes = snapshot.value().Serialize();
  bytes[24] ^= 0x01;  // num_items field
  auto result = SparsePolicySnapshotV2::Deserialize(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("header checksum"),
            std::string::npos);
}

TEST(SnapshotV2Test, CorruptedSectionOffsetIsRejectedByBoundsChecks) {
  const Dataset dataset = datagen::MakeTableIIToy();
  const model::TaskInstance instance = dataset.Instance();
  const auto planner = TrainPlanner(instance, SparseConfig(dataset));
  auto snapshot = MakeSnapshotV2(*planner);
  ASSERT_TRUE(snapshot.ok());
  std::string bytes = snapshot.value().Serialize();
  // Section table entry 0 starts at 112: {u32 kind, u32 reserved,
  // u64 offset, u64 length}. Point the row-index section past EOF and
  // re-sign the header so the *bounds* validator (not the checksum) trips.
  const std::uint64_t bogus_offset = bytes.size() + kSnapshotV2PageBytes;
  std::memcpy(bytes.data() + 112 + 8, &bogus_offset, sizeof(bogus_offset));
  FixHeaderChecksum(&bytes);

  auto result = SparsePolicySnapshotV2::Deserialize(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);

  const std::string path = testing::TempDir() + "/bad_offset_v2.snap";
  WriteFileBytes(path, bytes);
  auto mapped = MappedPolicy::Map(path);
  EXPECT_FALSE(mapped.ok());

  // A misaligned (non-page-multiple) offset is rejected too.
  std::string misaligned = snapshot.value().Serialize();
  const std::uint64_t odd_offset = 4100;
  std::memcpy(misaligned.data() + 112 + 8, &odd_offset, sizeof(odd_offset));
  FixHeaderChecksum(&misaligned);
  EXPECT_FALSE(SparsePolicySnapshotV2::Deserialize(misaligned).ok());
}

TEST(SnapshotV2Test, OverlappingSectionsAreRejected) {
  const Dataset dataset = datagen::MakeTableIIToy();
  const model::TaskInstance instance = dataset.Instance();
  const auto planner = TrainPlanner(instance, SparseConfig(dataset));
  auto snapshot = MakeSnapshotV2(*planner);
  ASSERT_TRUE(snapshot.ok());
  std::string bytes = snapshot.value().Serialize();
  // Alias the packed-keys section (entry 1, offset at 112 + 24 + 8) onto
  // the row-index section's pages. Every per-section check (alignment,
  // bounds) still passes, so only the non-overlap validator can catch it.
  std::uint64_t rows_offset = 0;
  std::memcpy(&rows_offset, bytes.data() + 112 + 8, sizeof(rows_offset));
  std::memcpy(bytes.data() + 112 + 24 + 8, &rows_offset,
              sizeof(rows_offset));
  FixHeaderChecksum(&bytes);

  auto result = SparsePolicySnapshotV2::Deserialize(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("overlaps section"),
            std::string::npos);

  const std::string path = testing::TempDir() + "/overlap_v2.snap";
  WriteFileBytes(path, bytes);
  EXPECT_FALSE(MappedPolicy::Map(path).ok());
}

TEST(SnapshotV2Test, MapRejectsOutOfRangeAndUnsortedKeys) {
  // Map() skips the payload checksum by design, so a corrupted keys page
  // must be caught by the map-time key validation itself — otherwise a
  // hostile u32 key would index the allowed bitset out of bounds in the
  // serving hot loop.
  const Dataset dataset = datagen::MakeTableIIToy();
  const model::TaskInstance instance = dataset.Instance();
  const auto planner = TrainPlanner(instance, SparseConfig(dataset));
  auto snapshot = MakeSnapshotV2(*planner);
  ASSERT_TRUE(snapshot.ok());
  const std::string bytes = snapshot.value().Serialize();
  std::uint64_t num_items = 0, entry_count = 0;
  std::uint64_t rows_offset = 0, keys_offset = 0;
  std::memcpy(&num_items, bytes.data() + 24, sizeof(num_items));
  std::memcpy(&entry_count, bytes.data() + 40, sizeof(entry_count));
  std::memcpy(&rows_offset, bytes.data() + 112 + 8, sizeof(rows_offset));
  std::memcpy(&keys_offset, bytes.data() + 112 + 24 + 8,
              sizeof(keys_offset));
  ASSERT_GT(entry_count, 0u);

  // Out of range: point the first stored key one past the catalog.
  std::string oob = bytes;
  const auto bad_key = static_cast<std::uint32_t>(num_items);
  std::memcpy(oob.data() + keys_offset, &bad_key, sizeof(bad_key));
  const std::string oob_path = testing::TempDir() + "/oob_key_v2.snap";
  WriteFileBytes(oob_path, oob);
  auto mapped = MappedPolicy::Map(oob_path);
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(mapped.status().message().find("outside the"),
            std::string::npos);

  // Unsorted: duplicate the first key of a row with >= 2 entries, breaking
  // the strict ascent Get()'s binary search depends on.
  std::string unsorted = bytes;
  bool found = false;
  for (std::uint64_t s = 0; s < num_items && !found; ++s) {
    std::uint64_t begin = 0, count = 0;
    std::memcpy(&begin, unsorted.data() + rows_offset + 16 * s,
                sizeof(begin));
    std::memcpy(&count, unsorted.data() + rows_offset + 16 * s + 8,
                sizeof(count));
    if (count < 2) continue;
    std::memcpy(unsorted.data() + keys_offset + 4 * (begin + 1),
                unsorted.data() + keys_offset + 4 * begin, 4);
    found = true;
  }
  ASSERT_TRUE(found) << "trained toy policy has no row with >= 2 entries";
  const std::string unsorted_path =
      testing::TempDir() + "/unsorted_keys_v2.snap";
  WriteFileBytes(unsorted_path, unsorted);
  auto mapped_unsorted = MappedPolicy::Map(unsorted_path);
  ASSERT_FALSE(mapped_unsorted.ok());
  EXPECT_NE(mapped_unsorted.status().message().find("strictly ascending"),
            std::string::npos);
}

TEST(SnapshotV2Test, MapRejectsFileSmallerThanHeaderPage) {
  const std::string path = testing::TempDir() + "/empty_v2.snap";
  WriteFileBytes(path, "");
  auto mapped = MappedPolicy::Map(path);
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(mapped.status().message().find("header page"),
            std::string::npos);
}

TEST(SnapshotV2Test, PayloadCorruptionFailsDeserializeAndInspect) {
  const Dataset dataset = datagen::MakeTableIIToy();
  const model::TaskInstance instance = dataset.Instance();
  const auto planner = TrainPlanner(instance, SparseConfig(dataset));
  auto snapshot = MakeSnapshotV2(*planner);
  ASSERT_TRUE(snapshot.ok());
  std::string bytes = snapshot.value().Serialize();
  ASSERT_GT(bytes.size(), std::size_t{2} * kSnapshotV2PageBytes);
  bytes[kSnapshotV2PageBytes + 3] ^= 0x40;  // inside the row-index section

  auto result = SparsePolicySnapshotV2::Deserialize(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("checksum"), std::string::npos);

  const std::string path = testing::TempDir() + "/bad_payload_v2.snap";
  WriteFileBytes(path, bytes);
  auto info = InspectSnapshotFile(path);
  // The header still parses, so inspection reports the dimensions but
  // flags the integrity failure instead of erroring out.
  if (info.ok()) {
    EXPECT_FALSE(info.value().checksum_ok);
  }
}

TEST(SnapshotV2Test, RegistryRefusesDriftedFingerprints) {
  const Dataset dataset = datagen::MakeTableIIToy();
  const model::TaskInstance instance = dataset.Instance();
  const auto planner = TrainPlanner(instance, SparseConfig(dataset));
  auto snapshot = MakeSnapshotV2(*planner);
  ASSERT_TRUE(snapshot.ok());

  // A registry pinned to a *different* catalog fingerprint.
  PolicyRegistry drifted(CatalogFingerprint(dataset.catalog) ^ 1,
                         dataset.catalog.size());
  auto refused = drifted.InstallSnapshotV2("default", snapshot.value());
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), util::StatusCode::kFailedPrecondition);
  EXPECT_NE(refused.status().message().find("fingerprint"),
            std::string::npos);

  const std::string path = testing::TempDir() + "/drift_v2.snap";
  ASSERT_TRUE(snapshot.value().SaveToFile(path).ok());
  auto mapped = MappedPolicy::Map(path);
  ASSERT_TRUE(mapped.ok());
  auto refused_mapped =
      drifted.InstallMapped("default", std::move(mapped).value());
  ASSERT_FALSE(refused_mapped.ok());
  EXPECT_EQ(refused_mapped.status().code(),
            util::StatusCode::kFailedPrecondition);
}

TEST(SnapshotV2Test, InstallSnapshotFileServesBothLoadModes) {
  const Dataset dataset = datagen::MakeTableIIToy();
  const model::TaskInstance instance = dataset.Instance();
  const auto planner = TrainPlanner(instance, SparseConfig(dataset));
  auto snapshot = MakeSnapshotV2(*planner);
  ASSERT_TRUE(snapshot.ok());
  const std::string path = testing::TempDir() + "/modes_v2.snap";
  ASSERT_TRUE(snapshot.value().SaveToFile(path).ok());

  PolicyRegistry registry(CatalogFingerprint(dataset.catalog),
                          dataset.catalog.size());
  ASSERT_TRUE(registry
                  .InstallSnapshotFile("deser", path,
                                       SnapshotLoadMode::kDeserialize)
                  .ok());
  ASSERT_TRUE(
      registry.InstallSnapshotFile("mmap", path, SnapshotLoadMode::kMmap)
          .ok());
  auto deser = registry.Current("deser");
  auto mapped = registry.Current("mmap");
  ASSERT_NE(deser, nullptr);
  ASSERT_NE(mapped, nullptr);
  EXPECT_TRUE(deser->sparse.has_value());
  EXPECT_TRUE(mapped->mapped.has_value());
  EXPECT_STREQ(deser->representation(), "sparse");
  EXPECT_STREQ(mapped->representation(), "mmap");

  // Both modes serve the identical plan through the PlanService.
  const mdp::RewardWeights weights;
  PlanServiceConfig service_config;
  service_config.num_workers = 2;
  PlanService service(instance, weights, registry, service_config);
  service.Start();
  PlanRequest a;
  a.policy_name = "deser";
  a.start_item = dataset.default_start;
  PlanRequest b;
  b.policy_name = "mmap";
  b.start_item = dataset.default_start;
  auto fa = service.Submit(std::move(a));
  auto fb = service.Submit(std::move(b));
  ASSERT_TRUE(fa.ok());
  ASSERT_TRUE(fb.ok());
  auto ra = fa.value().get();
  auto rb = fb.value().get();
  service.Stop();
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();
  EXPECT_EQ(ra.value().plan.items(), rb.value().plan.items());
}

TEST(SnapshotV2Test, HotSwapToMappedKeepsOldPolicyAliveForHolders) {
  const Dataset dataset = datagen::MakeTableIIToy();
  const model::TaskInstance instance = dataset.Instance();
  core::PlannerConfig dense_config = SparseConfig(dataset);
  dense_config.sarsa.q_representation = rl::QRepresentation::kDense;
  const auto planner = TrainPlanner(instance, dense_config);

  PolicyRegistry registry(CatalogFingerprint(dataset.catalog),
                          dataset.catalog.size());
  ASSERT_TRUE(
      registry.Install("default", planner->q_table(), dense_config.sarsa)
          .ok());
  auto held = registry.Current("default");
  ASSERT_TRUE(held->dense.has_value());

  auto snapshot = MakeSnapshotV2(*planner);
  ASSERT_TRUE(snapshot.ok());
  const std::string path = testing::TempDir() + "/swap_v2.snap";
  ASSERT_TRUE(snapshot.value().SaveToFile(path).ok());
  ASSERT_TRUE(
      registry.InstallSnapshotFile("default", path, SnapshotLoadMode::kMmap)
          .ok());

  // The holder still reads the dense version; fresh readers get the mmap.
  EXPECT_EQ(held->version, 1u);
  EXPECT_TRUE(held->dense.has_value());
  auto fresh = registry.Current("default");
  EXPECT_EQ(fresh->version, 2u);
  ASSERT_TRUE(fresh->mapped.has_value());
  // Identical policy either way.
  util::DynamicBitset allowed(dataset.catalog.size());
  allowed.SetAll();
  for (std::size_t s = 0; s < dataset.catalog.size(); ++s) {
    const auto state = static_cast<model::ItemId>(s);
    EXPECT_EQ(held->dense->ArgmaxAction(state, allowed),
              fresh->mapped->ArgmaxAction(state, allowed));
  }
}

TEST(SnapshotV2Test, InspectReportsBothFormats) {
  const Dataset dataset = datagen::MakeTableIIToy();
  const model::TaskInstance instance = dataset.Instance();
  core::PlannerConfig dense_config = SparseConfig(dataset);
  dense_config.sarsa.q_representation = rl::QRepresentation::kDense;
  const auto planner = TrainPlanner(instance, dense_config);

  const std::string v1_path = testing::TempDir() + "/inspect_v1.snap";
  const std::string v2_path = testing::TempDir() + "/inspect_v2.snap";
  auto v1 = MakeSnapshot(*planner);
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(v1.value().SaveToFile(v1_path).ok());
  auto v2 = MakeSnapshotV2(*planner);
  ASSERT_TRUE(v2.ok());
  ASSERT_TRUE(v2.value().SaveToFile(v2_path).ok());

  auto info1 = InspectSnapshotFile(v1_path);
  ASSERT_TRUE(info1.ok()) << info1.status().ToString();
  EXPECT_EQ(info1.value().format_version, 1u);
  EXPECT_EQ(info1.value().format, "dense-v1");
  EXPECT_EQ(info1.value().num_items, dataset.catalog.size());
  EXPECT_TRUE(info1.value().checksum_ok);
  EXPECT_EQ(info1.value().catalog_fingerprint,
            CatalogFingerprint(dataset.catalog));

  auto info2 = InspectSnapshotFile(v2_path);
  ASSERT_TRUE(info2.ok()) << info2.status().ToString();
  EXPECT_EQ(info2.value().format_version, 2u);
  EXPECT_EQ(info2.value().format, "sparse-v2");
  EXPECT_EQ(info2.value().num_items, dataset.catalog.size());
  EXPECT_EQ(info2.value().entry_count, NonZeroCount(v2.value().table));
  EXPECT_TRUE(info2.value().checksum_ok);
  // Same policy → the two formats agree on the non-zero census.
  EXPECT_EQ(info1.value().entry_count, info2.value().entry_count);

  auto missing = InspectSnapshotFile(testing::TempDir() + "/nope.snap");
  EXPECT_FALSE(missing.ok());
}

TEST(SnapshotV2Test, V1FileUnderMmapModeFallsBackToDeserialize) {
  const Dataset dataset = datagen::MakeTableIIToy();
  const model::TaskInstance instance = dataset.Instance();
  core::PlannerConfig dense_config = SparseConfig(dataset);
  dense_config.sarsa.q_representation = rl::QRepresentation::kDense;
  const auto planner = TrainPlanner(instance, dense_config);
  auto v1 = MakeSnapshot(*planner);
  ASSERT_TRUE(v1.ok());
  const std::string path = testing::TempDir() + "/fallback_v1.snap";
  ASSERT_TRUE(v1.value().SaveToFile(path).ok());

  PolicyRegistry registry(CatalogFingerprint(dataset.catalog),
                          dataset.catalog.size());
  auto installed =
      registry.InstallSnapshotFile("default", path, SnapshotLoadMode::kMmap);
  ASSERT_TRUE(installed.ok()) << installed.status().ToString();
  auto current = registry.Current("default");
  ASSERT_NE(current, nullptr);
  EXPECT_TRUE(current->dense.has_value());  // deserialized, not mapped
}

}  // namespace
}  // namespace rlplanner::serve

// Tests for the policy-fleet orchestrator: deterministic republication
// (same seeds + same feedback stream -> bit-identical published snapshots),
// the canary publication gate, exact-prior-version rollback, the
// fault-injection seams (failed retrains, corrupted candidates, stalled
// canaries), and the serve-while-republishing stress.
//
// The stress test here runs in the ThreadSanitizer lane alongside
// serve_test (see tools/check.sh): the registry's canary router is the
// serve hot path and must stay lock-free while the fleet republishes.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "adaptive/feedback.h"
#include "core/config.h"
#include "core/planner.h"
#include "datagen/course_data.h"
#include "fleet/fleet.h"
#include "fleet/gate.h"
#include "mdp/q_table.h"
#include "mdp/reward.h"
#include "serve/plan_service.h"
#include "serve/policy_registry.h"
#include "serve/policy_snapshot.h"
#include "util/json.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace rlplanner::fleet {
namespace {

using datagen::Dataset;

core::PlannerConfig ToyConfig(const Dataset& dataset, std::uint64_t seed = 17,
                              int episodes = 60) {
  core::PlannerConfig config = core::DefaultUniv1Config();
  config.sarsa.num_episodes = episodes;
  config.sarsa.start_item = dataset.default_start;
  config.seed = seed;
  return config;
}

adaptive::FeedbackEvent Binary(model::ItemId item, bool useful) {
  adaptive::FeedbackEvent event;
  event.item = item;
  event.kind = adaptive::FeedbackKind::kBinary;
  event.value = useful ? 1.0 : 0.0;
  return event;
}

// Provenance that makes any candidate constraint-violating when served: it
// pins the rollout start to m5 ("Big Data", toy item 4), whose prerequisite
// (m2 OR m3) can never be satisfied at position 0, so every plan the
// (table, provenance) pair produces carries a prerequisite-gap violation.
// The table itself can be perfectly trained — the violation lives in the
// pair the slot would actually serve, which is exactly what the gate rolls
// out.
rl::SarsaConfig ViolatingProvenance(const core::PlannerConfig& config) {
  rl::SarsaConfig provenance = config.sarsa;
  provenance.start_item = 4;
  return provenance;
}

struct FleetFixture {
  Dataset dataset = datagen::MakeTableIIToy();
  model::TaskInstance instance = dataset.Instance();
  core::PlannerConfig config = ToyConfig(dataset);
  std::uint64_t fingerprint = serve::CatalogFingerprint(dataset.catalog);
  serve::PolicyRegistry registry{fingerprint, dataset.catalog.size()};
  util::ThreadPool pool{2};

  FleetConfig BaseConfig() {
    FleetConfig fc;
    fc.canary_permille = 500;
    fc.canary_hold_ticks = 1;
    fc.probe_count = 4;
    // These tests target pipeline mechanics, not score tuning: a generous
    // band keeps a healthy retrain from flaking the reward criterion while
    // the zero-violation criterion stays exact.
    fc.reward_band = 1.0;
    return fc;
  }

  PolicySpec Spec(const std::string& slot, std::uint64_t seed,
                  int freshness = 2) {
    PolicySpec spec;
    spec.slot = slot;
    spec.segment_id = slot;
    spec.catalog_fingerprint = fingerprint;
    spec.sarsa = config.sarsa;
    spec.seed = seed;
    spec.freshness_ticks = freshness;
    return spec;
  }
};

// --- Determinism ----------------------------------------------------------

TEST(FleetDeterminismTest, SameSeedsAndFeedbackPublishBitIdenticalSnapshots) {
  using Published = std::vector<
      std::tuple<std::string, std::uint64_t, std::string>>;
  auto run = []() {
    FleetFixture fix;
    FleetConfig fc = fix.BaseConfig();
    Published published;
    FleetOrchestrator fleet(fix.instance, fix.config.reward, fix.registry,
                            fix.pool, fc);
    fleet.set_publish_observer([&](const PolicySpec& spec, std::uint64_t v,
                                   const std::string& bytes) {
      published.emplace_back(spec.slot, v, bytes);
    });
    EXPECT_TRUE(fleet.AddSpec(fix.Spec("alpha", 17)).ok());
    EXPECT_TRUE(fleet.AddSpec(fix.Spec("beta", 23)).ok());
    for (int t = 0; t < 6; ++t) {
      // The same feedback stream at the same points in both runs.
      if (t == 1) {
        EXPECT_TRUE(fleet.EnqueueFeedback("alpha", Binary(0, true)).ok());
        EXPECT_TRUE(fleet.EnqueueFeedback("alpha", Binary(3, false)).ok());
        EXPECT_TRUE(fleet.EnqueueFeedback("beta", Binary(2, true)).ok());
      }
      if (t == 3) {
        EXPECT_TRUE(fleet.EnqueueFeedback("beta", Binary(5, false)).ok());
      }
      fleet.Tick();
    }
    return published;
  };

  const Published first = run();
  const Published second = run();
  ASSERT_EQ(first.size(), second.size());
  // Both slots publish initially and then republish at least once over the
  // freshness cadence — the pin is meaningless on an empty sequence.
  EXPECT_GE(first.size(), 4u);
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(std::get<0>(first[i]), std::get<0>(second[i])) << "entry " << i;
    EXPECT_EQ(std::get<1>(first[i]), std::get<1>(second[i])) << "entry " << i;
    EXPECT_EQ(std::get<2>(first[i]), std::get<2>(second[i]))
        << "published snapshot bytes diverge at entry " << i;
  }
}

// --- Gate -----------------------------------------------------------------

TEST(CanaryGateTest, RejectsConstraintViolatingCandidate) {
  FleetFixture fix;
  core::RlPlanner trained(fix.instance, fix.config);
  ASSERT_TRUE(trained.Train().ok());

  const ProbeSet probes = ProbeSet::Deterministic(fix.instance, 4, 99);
  ASSERT_EQ(probes.probes.size(), 4u);
  const mdp::RewardFunction reward(fix.instance, fix.config.reward);
  const GateReport report =
      EvaluateGate(fix.instance, reward, trained.q_table(),
                   ViolatingProvenance(fix.config), nullptr, probes,
                   GateConfig{});
  EXPECT_FALSE(report.passed);
  // Every probe rolls out from the unsatisfiable pinned start.
  EXPECT_EQ(report.violations, probes.probes.size());
  EXPECT_NE(report.reason.find("hard-constraint"), std::string::npos)
      << report.reason;

  // The identical table served under its real provenance passes the same
  // gate: the verdict is about what the slot would serve, not the table.
  const GateReport ok =
      EvaluateGate(fix.instance, reward, trained.q_table(), fix.config.sarsa,
                   nullptr, probes, GateConfig{});
  EXPECT_TRUE(ok.passed) << ok.reason;
  EXPECT_EQ(ok.violations, 0u);
}

TEST(CanaryGateTest, ProbeSetIsDeterministic) {
  FleetFixture fix;
  const ProbeSet a = ProbeSet::Deterministic(fix.instance, 6, 42);
  const ProbeSet b = ProbeSet::Deterministic(fix.instance, 6, 42);
  ASSERT_EQ(a.probes.size(), b.probes.size());
  for (std::size_t i = 0; i < a.probes.size(); ++i) {
    EXPECT_EQ(a.probes[i].start_item, b.probes[i].start_item);
  }
}

TEST(FleetOrchestratorTest, GateBlocksInjectedConstraintViolatingCandidate) {
  FleetFixture fix;
  // A checksum-VALID snapshot of a constraint-violating policy, swapped in
  // for the real candidate mid-publish: integrity validation cannot catch
  // it, so the gate is the only thing standing between it and the registry.
  core::RlPlanner trained(fix.instance, fix.config);
  ASSERT_TRUE(trained.Train().ok());
  serve::PolicySnapshot bad_snapshot;
  bad_snapshot.catalog_fingerprint = fix.fingerprint;
  bad_snapshot.provenance = ViolatingProvenance(fix.config);
  bad_snapshot.seed = 1;
  bad_snapshot.table = trained.q_table();
  const std::string bad_bytes = bad_snapshot.Serialize();

  FleetConfig fc = fix.BaseConfig();
  fc.hooks.on_candidate_serialized = [&](const PolicySpec&,
                                         std::string* bytes) {
    *bytes = bad_bytes;
  };
  FleetOrchestrator fleet(fix.instance, fix.config.reward, fix.registry,
                          fix.pool, fc);
  ASSERT_TRUE(fleet.AddSpec(fix.Spec("a", 17)).ok());
  fleet.Tick();

  // The gate blocked it: nothing was ever installed.
  EXPECT_EQ(fix.registry.install_count(), 0u);
  EXPECT_EQ(fix.registry.Current("a"), nullptr);
  const std::vector<PolicyStatus> statuses = fleet.Statuses();
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0].gate_failures, 1u);
  EXPECT_EQ(statuses[0].publishes, 0u);
  EXPECT_EQ(statuses[0].phase, PolicyPhase::kBackoff);
  EXPECT_NE(statuses[0].last_error.find("gate"), std::string::npos);
}

// --- Rollback -------------------------------------------------------------

TEST(FleetOrchestratorTest, ForcedRollbackRestoresExactPriorVersion) {
  FleetFixture fix;
  FleetConfig fc = fix.BaseConfig();
  fc.hooks.override_canary_verdict = [](const PolicySpec&) {
    return std::optional<bool>(false);
  };
  FleetOrchestrator fleet(fix.instance, fix.config.reward, fix.registry,
                          fix.pool, fc);
  ASSERT_TRUE(fleet.AddSpec(fix.Spec("a", 17, /*freshness=*/1)).ok());

  fleet.Tick();  // tick 0: first publication -> direct install v1
  const std::shared_ptr<const serve::ServablePolicy> incumbent =
      fix.registry.Current("a");
  ASSERT_NE(incumbent, nullptr);
  EXPECT_EQ(incumbent->version, 1u);

  fleet.Tick();  // tick 1: stale -> retrain -> canary v2 staged
  {
    const auto info = fix.registry.Info("a");
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->incumbent_version, 1u);
    EXPECT_EQ(info->canary_version, 2u);
  }
  fleet.Tick();  // tick 2: hold elapsed -> forced rollback

  // The incumbent is the exact prior policy object — same version, same
  // pointer, not a re-publication.
  const std::shared_ptr<const serve::ServablePolicy> restored =
      fix.registry.Current("a");
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->version, 1u);
  EXPECT_EQ(restored.get(), incumbent.get());
  EXPECT_EQ(fix.registry.Canary("a"), nullptr);
  const std::vector<PolicyStatus> statuses = fleet.Statuses();
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0].rollbacks, 1u);
  EXPECT_EQ(statuses[0].phase, PolicyPhase::kIdle);
}

// --- Fault injection ------------------------------------------------------

TEST(FleetHooksTest, FailedRetrainRetriesWithExponentialBackoff) {
  FleetFixture fix;
  FleetConfig fc = fix.BaseConfig();
  fc.backoff_base_ticks = 1;
  fc.max_publish_retries = 5;
  std::atomic<int> attempts{0};
  fc.hooks.on_retrain_start = [&](const PolicySpec&) {
    return ++attempts <= 2 ? util::Status::Internal("injected retrain fault")
                           : util::Status::Ok();
  };
  FleetOrchestrator fleet(fix.instance, fix.config.reward, fix.registry,
                          fix.pool, fc);
  ASSERT_TRUE(fleet.AddSpec(fix.Spec("a", 17)).ok());

  // Attempt schedule under base-1 exponential backoff: fail at tick 0
  // (wait 1), fail at tick 1 (wait 2), succeed at tick 3. Tick 2 must be
  // silent — that is the backoff actually holding the spec back.
  fleet.RunTicks(5);
  EXPECT_EQ(attempts.load(), 3);
  const std::vector<PolicyStatus> statuses = fleet.Statuses();
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0].retrain_failures, 2u);
  EXPECT_EQ(statuses[0].publishes, 1u);
  EXPECT_EQ(statuses[0].last_published_tick, 3);
  EXPECT_EQ(statuses[0].consecutive_failures, 0);
  EXPECT_TRUE(statuses[0].last_error.empty());
  ASSERT_NE(fix.registry.Current("a"), nullptr);
  EXPECT_EQ(fix.registry.Current("a")->version, 1u);
}

TEST(FleetHooksTest, CorruptedCandidateIsNeverPublished) {
  FleetFixture fix;
  FleetConfig fc = fix.BaseConfig();
  fc.backoff_base_ticks = 1;
  std::atomic<int> publishes_seen{0};
  fc.hooks.on_candidate_serialized = [&](const PolicySpec&,
                                         std::string* bytes) {
    // Corrupt the first candidate only: flip one payload byte mid-blob.
    if (publishes_seen.fetch_add(1) == 0) {
      (*bytes)[bytes->size() / 2] ^= 0x5a;
    }
  };
  FleetOrchestrator fleet(fix.instance, fix.config.reward, fix.registry,
                          fix.pool, fc);
  ASSERT_TRUE(fleet.AddSpec(fix.Spec("a", 17)).ok());

  fleet.Tick();  // tick 0: candidate corrupted -> rejected pre-registry
  EXPECT_EQ(fix.registry.install_count(), 0u);
  EXPECT_EQ(fix.registry.Current("a"), nullptr);
  {
    const std::vector<PolicyStatus> statuses = fleet.Statuses();
    ASSERT_EQ(statuses.size(), 1u);
    EXPECT_EQ(statuses[0].candidate_rejections, 1u);
    EXPECT_EQ(statuses[0].phase, PolicyPhase::kBackoff);
    EXPECT_NE(statuses[0].last_error.find("integrity"), std::string::npos);
  }
  fleet.Tick();  // tick 1: backoff elapsed -> clean retry publishes
  EXPECT_EQ(fix.registry.install_count(), 1u);
  ASSERT_NE(fix.registry.Current("a"), nullptr);
  EXPECT_EQ(fix.registry.Current("a")->version, 1u);
}

TEST(FleetHooksTest, StalledCanaryHoldsWithoutExposingPartialState) {
  FleetFixture fix;
  FleetConfig fc = fix.BaseConfig();
  fc.canary_hold_ticks = 0;
  std::atomic<bool> hold{true};
  fc.hooks.hold_canary = [&](const PolicySpec&) { return hold.load(); };
  FleetOrchestrator fleet(fix.instance, fix.config.reward, fix.registry,
                          fix.pool, fc);
  ASSERT_TRUE(fleet.AddSpec(fix.Spec("a", 17, /*freshness=*/1)).ok());

  fleet.Tick();  // tick 0: direct install v1
  fleet.Tick();  // tick 1: canary v2 staged, immediately held
  fleet.RunTicks(3);  // stalled: the verdict must not advance
  {
    const auto info = fix.registry.Info("a");
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->incumbent_version, 1u);
    EXPECT_EQ(info->canary_version, 2u);
    // Current() never exposes the held canary.
    EXPECT_EQ(fix.registry.Current("a")->version, 1u);
    const std::vector<PolicyStatus> statuses = fleet.Statuses();
    EXPECT_EQ(statuses[0].phase, PolicyPhase::kCanary);
    EXPECT_EQ(statuses[0].promotes, 0u);
  }
  hold.store(false);
  fleet.Tick();  // released: the held canary promotes
  EXPECT_EQ(fix.registry.Current("a")->version, 2u);
  EXPECT_EQ(fix.registry.Canary("a"), nullptr);
  EXPECT_EQ(fleet.Statuses()[0].promotes, 1u);
}

// --- Feedback and transfer seams ------------------------------------------

TEST(FleetOrchestratorTest, FeedbackValidationAndAccounting) {
  FleetFixture fix;
  FleetConfig fc = fix.BaseConfig();
  FleetOrchestrator fleet(fix.instance, fix.config.reward, fix.registry,
                          fix.pool, fc);
  ASSERT_TRUE(fleet.AddSpec(fix.Spec("a", 17)).ok());
  EXPECT_FALSE(fleet.EnqueueFeedback("missing", Binary(0, true)).ok());
  EXPECT_TRUE(fleet.EnqueueFeedback("a", Binary(0, true)).ok());
  EXPECT_TRUE(fleet.EnqueueFeedback("a", Binary(1, false)).ok());
  fleet.Tick();
  EXPECT_EQ(fleet.Statuses()[0].feedback_events, 2u);
}

TEST(FleetOrchestratorTest, AddSpecValidation) {
  FleetFixture fix;
  FleetConfig fc = fix.BaseConfig();
  FleetOrchestrator fleet(fix.instance, fix.config.reward, fix.registry,
                          fix.pool, fc);
  ASSERT_TRUE(fleet.AddSpec(fix.Spec("a", 17)).ok());
  EXPECT_FALSE(fleet.AddSpec(fix.Spec("a", 18)).ok());  // duplicate slot
  PolicySpec wrong = fix.Spec("b", 18);
  wrong.catalog_fingerprint ^= 1;  // drifted catalog
  EXPECT_FALSE(fleet.AddSpec(std::move(wrong)).ok());
  PolicySpec unnamed = fix.Spec("", 19);
  EXPECT_FALSE(fleet.AddSpec(std::move(unnamed)).ok());
}

TEST(FleetOrchestratorTest, StatusJsonHasTheDocumentedShape) {
  FleetFixture fix;
  FleetConfig fc = fix.BaseConfig();
  FleetOrchestrator fleet(fix.instance, fix.config.reward, fix.registry,
                          fix.pool, fc);
  ASSERT_TRUE(fleet.AddSpec(fix.Spec("a", 17)).ok());
  fleet.Tick();

  const auto parsed = util::json::Parse(fleet.StatusJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const util::json::Value& doc = parsed.value();
  ASSERT_TRUE(doc.is_object());
  ASSERT_NE(doc.Find("tick"), nullptr);
  EXPECT_EQ(doc.Find("tick")->AsNumber(), 1.0);
  const util::json::Value* policies = doc.Find("policies");
  ASSERT_NE(policies, nullptr);
  ASSERT_TRUE(policies->is_array());
  ASSERT_EQ(policies->AsArray().size(), 1u);
  const util::json::Value& policy = policies->AsArray().front();
  for (const char* key :
       {"slot", "segment", "phase", "generation", "last_published_tick",
        "staleness", "incumbent_version", "canary_version", "canary_permille",
        "publishes", "promotes", "rollbacks", "gate_failures",
        "retrain_failures", "candidate_rejections", "feedback_events",
        "consecutive_failures", "last_error"}) {
    EXPECT_NE(policy.Find(key), nullptr) << "missing status field " << key;
  }
  EXPECT_EQ(policy.Find("slot")->AsString(), "a");
  EXPECT_EQ(policy.Find("publishes")->AsNumber(), 1.0);
}

// --- Serve-while-republishing stress (TSan lane) --------------------------

// The full publish -> canary -> promote/rollback cycle under concurrent
// load, extending serve_test's hot-swap stress to the canary pipeline:
//  - zero dropped or spuriously failed requests across every transition;
//  - every response attributed to a version that was actually installed,
//    with the plan matching that version's rollout exactly;
//  - after a Rollback() call returns, no subsequently admitted request is
//    ever served by the rolled-back version.
TEST(FleetStressTest, ServeWhileRepublishingCanaryCycles) {
  FleetFixture fix;
  constexpr int kCycles = 6;
  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 50;
  constexpr std::uint32_t kPermille = 500;

  std::vector<mdp::QTable> tables;
  std::vector<model::Plan> plans;
  for (int i = 0; i <= kCycles; ++i) {
    fix.config.seed = 100 + static_cast<std::uint64_t>(i);
    core::RlPlanner planner(fix.instance, fix.config);
    ASSERT_TRUE(planner.Train().ok());
    tables.push_back(planner.q_table());
    auto plan = planner.Recommend(fix.dataset.default_start);
    ASSERT_TRUE(plan.ok());
    plans.push_back(plan.value());
  }

  std::map<std::uint64_t, model::Plan> plan_of_version;
  auto first = fix.registry.Install("default", tables[0], fix.config.sarsa);
  ASSERT_TRUE(first.ok());
  plan_of_version[first.value()] = plans[0];

  serve::PlanServiceConfig service_config;
  service_config.num_workers = kClients;
  service_config.max_queue = 1024;
  serve::PlanService service(fix.instance, fix.config.reward, fix.registry,
                             service_config);
  service.Start();

  std::atomic<std::uint64_t> failures{0};
  std::atomic<bool> publishing{true};
  std::vector<std::vector<std::pair<std::uint64_t, model::Plan>>> responses(
      kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        serve::PlanRequest request;
        request.start_item = fix.dataset.default_start;
        // Distinct sticky keys spread requests across both router sides.
        request.route_key =
            static_cast<std::uint64_t>(c) * 1000003ull +
            static_cast<std::uint64_t>(i) + 1;
        auto submitted = service.Submit(std::move(request));
        if (!submitted.ok()) {
          ++failures;
          continue;
        }
        auto result = std::move(submitted).value().get();
        if (!result.ok()) {
          ++failures;
          continue;
        }
        responses[static_cast<std::size_t>(c)].emplace_back(
            result.value().policy_version, result.value().plan);
      }
    });
  }

  // Publisher: run kCycles full canary cycles while the clients hammer the
  // service. Odd cycles promote, even cycles roll back; after each
  // Rollback() returns, synchronously verify the rolled-back version has
  // vanished from routing for freshly admitted requests.
  std::thread publisher([&] {
    for (int i = 1; i <= kCycles; ++i) {
      auto staged = fix.registry.InstallCanary(
          "default", tables[static_cast<std::size_t>(i)], kPermille,
          fix.config.sarsa);
      ASSERT_TRUE(staged.ok());
      plan_of_version[staged.value()] = plans[static_cast<std::size_t>(i)];
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      if (i % 2 == 1) {
        ASSERT_TRUE(fix.registry.PromoteCanary("default").ok());
        continue;
      }
      const std::uint64_t rolled_back = staged.value();
      ASSERT_TRUE(fix.registry.Rollback("default").ok());
      // Requests admitted from here on must never see the rolled-back
      // version: Execute() resolves the policy at call time, after the
      // rollback returned.
      for (std::uint64_t key = 1; key <= 200; ++key) {
        serve::PlanRequest probe;
        probe.start_item = fix.dataset.default_start;
        probe.route_key = key;
        auto served = service.Execute(probe);
        ASSERT_TRUE(served.ok());
        EXPECT_NE(served.value().policy_version, rolled_back)
            << "request admitted after Rollback() returned was served by "
               "the rolled-back version";
      }
    }
    publishing.store(false);
  });

  for (auto& client : clients) client.join();
  publisher.join();
  service.Stop();
  EXPECT_FALSE(publishing.load());

  // Zero dropped requests across every publication transition.
  EXPECT_EQ(failures.load(), 0u);
  std::size_t total = 0;
  std::map<std::uint64_t, std::uint64_t> client_tallies;
  for (const auto& per_client : responses) {
    for (const auto& [version, plan] : per_client) {
      ++total;
      ++client_tallies[version];
      const auto it = plan_of_version.find(version);
      ASSERT_NE(it, plan_of_version.end())
          << "response attributed to unknown version " << version;
      EXPECT_TRUE(plan == it->second)
          << "response plan does not match the rollout of version "
          << version;
    }
  }
  EXPECT_EQ(total,
            static_cast<std::size_t>(kClients) * kRequestsPerClient);
  // Direct install + kCycles canary stages; promotions and rollbacks assign
  // no versions.
  EXPECT_EQ(fix.registry.install_count(),
            static_cast<std::uint64_t>(kCycles) + 1);
  // Per-version attribution in the shared stats agrees with what the
  // clients actually observed (the Execute() probes bypass the queue and
  // the stats, so the two tallies match exactly).
  const serve::ServeStatsSnapshot stats = service.stats().Collect();
  EXPECT_EQ(stats.completed, total);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.rejected_queue_full, 0u);
  EXPECT_EQ(stats.responses_by_version, client_tallies);
}

}  // namespace
}  // namespace rlplanner::fleet

// rlplanner_cli — command-line front end for the RL-Planner library.
//
// Subcommands:
//   list                                  show the built-in datasets
//   info    --dataset <name|file.csv>     dataset statistics
//   export  --dataset <name> --out <csv>  dump a built-in dataset to CSV
//   gold    --dataset <name|file.csv>     print the gold-standard plan
//   plan    --dataset <name|file.csv>     train RL-Planner and recommend
//           [--start CODE] [--episodes N] [--alpha A] [--gamma G]
//           [--epsilon E] [--similarity avg|min] [--beam] [--seed S]
//
// Datasets can be the built-in names (toy, univ1-dsct, univ1-cyber,
// univ1-cs, univ2-ds, nyc, paris) or a CSV file produced by `export` /
// `datagen::SaveDatasetCsv` — so the tool plans over user-edited catalogs.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>

#include "baselines/gold.h"
#include "core/config.h"
#include "core/planner.h"
#include "core/scoring.h"
#include "datagen/course_data.h"
#include "datagen/io.h"
#include "datagen/trip_data.h"
#include "rl/policy_inspector.h"
#include "util/string_util.h"

namespace {

using rlplanner::datagen::Dataset;

int Usage() {
  std::fprintf(
      stderr,
      "usage: rlplanner_cli <list|info|export|gold|plan|inspect> "
      "[options]\n"
      "  --dataset <name|file.csv>   (toy, univ1-dsct, univ1-cyber,\n"
      "                               univ1-cs, univ2-ds, nyc, paris)\n"
      "  --start CODE  --episodes N  --alpha A  --gamma G  --epsilon E\n"
      "  --similarity avg|min  --beam  --seed S  --out FILE\n");
  return 2;
}

std::optional<Dataset> LoadDataset(const std::string& spec) {
  using namespace rlplanner::datagen;
  if (spec == "toy") return MakeTableIIToy();
  if (spec == "univ1-dsct") return MakeUniv1DsCt();
  if (spec == "univ1-cyber") return MakeUniv1Cybersecurity();
  if (spec == "univ1-cs") return MakeUniv1Cs();
  if (spec == "univ2-ds") return MakeUniv2Ds();
  if (spec == "nyc") return MakeNycTrip();
  if (spec == "paris") return MakeParisTrip();
  auto loaded = LoadDatasetCsv(spec);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot load dataset '%s': %s\n", spec.c_str(),
                 loaded.status().ToString().c_str());
    return std::nullopt;
  }
  return std::move(loaded).value();
}

std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && argv[i + 1][0] != '-') {
      flags[arg] = argv[++i];
    } else {
      flags[arg] = "1";  // boolean flag
    }
  }
  return flags;
}

int CmdList() {
  std::printf("built-in datasets:\n");
  const char* rows[][2] = {
      {"toy", "Table II toy program (6 courses, 13 topics)"},
      {"univ1-dsct", "Univ-1 M.S. DS-CT (31 courses, 60 topics)"},
      {"univ1-cyber", "Univ-1 M.S. Cybersecurity (30 courses, 61 topics)"},
      {"univ1-cs", "Univ-1 M.S. CS (32 courses, 100 topics)"},
      {"univ2-ds", "Univ-2 M.S. DS (36 courses, 73 topics, 6 categories)"},
      {"nyc", "NYC trip (90 POIs, 21 themes)"},
      {"paris", "Paris trip (114 POIs, 16 themes)"},
  };
  for (const auto& row : rows) std::printf("  %-12s %s\n", row[0], row[1]);
  return 0;
}

int CmdInfo(const Dataset& dataset) {
  const auto& catalog = dataset.catalog;
  std::printf("dataset:     %s\n", dataset.name.c_str());
  std::printf("domain:      %s\n",
              catalog.domain() == rlplanner::model::Domain::kTrip
                  ? "trip"
                  : "course");
  std::printf("items:       %zu (%d primary, %d secondary)\n",
              catalog.size(),
              catalog.CountByType(rlplanner::model::ItemType::kPrimary),
              catalog.CountByType(rlplanner::model::ItemType::kSecondary));
  std::printf("topics:      %zu\n", catalog.vocabulary_size());
  std::printf("constraints: min_credits=%.1f  split=%d/%d  gap=%d\n",
              dataset.hard.min_credits, dataset.hard.num_primary,
              dataset.hard.num_secondary, dataset.hard.gap);
  std::printf("templates:   %zu permutations of length %zu\n",
              dataset.soft.interleaving.size(),
              dataset.soft.interleaving.length());
  std::printf("start:       %s\n",
              catalog.item(dataset.default_start).code.c_str());
  int with_prereqs = 0;
  for (const auto& item : catalog.items()) {
    if (!item.prereqs.empty()) ++with_prereqs;
  }
  std::printf("prereqs:     %d items carry antecedents\n", with_prereqs);
  return 0;
}

int CmdExport(const Dataset& dataset, const std::string& out) {
  const auto status = rlplanner::datagen::SaveDatasetCsv(dataset, out);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

int CmdGold(const Dataset& dataset) {
  const rlplanner::model::TaskInstance instance = dataset.Instance();
  auto gold = rlplanner::baselines::BuildGoldStandard(instance);
  if (!gold.ok()) {
    std::fprintf(stderr, "no gold standard: %s\n",
                 gold.status().ToString().c_str());
    return 1;
  }
  std::printf("gold standard (score %.2f):\n  %s\n",
              rlplanner::core::ScorePlan(instance, gold.value()),
              gold.value().ToString(dataset.catalog).c_str());
  return 0;
}

int CmdPlan(const Dataset& dataset,
            const std::map<std::string, std::string>& flags) {
  const rlplanner::model::TaskInstance instance = dataset.Instance();
  rlplanner::core::PlannerConfig config;
  // Pick Table III defaults by dataset shape.
  if (dataset.catalog.domain() == rlplanner::model::Domain::kTrip) {
    config = rlplanner::core::DefaultTripConfig();
  } else if (dataset.catalog.category_names().size() > 2) {
    config = rlplanner::core::DefaultUniv2Config();
  } else {
    config = rlplanner::core::DefaultUniv1Config();
  }
  if (dataset.catalog.category_names().size() !=
      config.reward.category_weights.size()) {
    const std::size_t c = dataset.catalog.category_names().size();
    config.reward.category_weights.assign(c, 1.0 / static_cast<double>(c));
  }

  auto get = [&flags](const char* key) -> std::optional<std::string> {
    auto it = flags.find(key);
    if (it == flags.end()) return std::nullopt;
    return it->second;
  };
  if (auto v = get("episodes")) config.sarsa.num_episodes = std::atoi(v->c_str());
  if (auto v = get("alpha")) config.sarsa.alpha = std::atof(v->c_str());
  if (auto v = get("gamma")) config.sarsa.gamma = std::atof(v->c_str());
  if (auto v = get("epsilon")) config.reward.epsilon = std::atof(v->c_str());
  if (auto v = get("seed")) config.seed = std::strtoull(v->c_str(), nullptr, 10);
  if (auto v = get("similarity")) {
    config.reward.similarity = *v == "min"
                                   ? rlplanner::mdp::SimilarityMode::kMinimum
                                   : rlplanner::mdp::SimilarityMode::kAverage;
  }
  if (get("beam")) config.use_beam_search = true;

  rlplanner::model::ItemId start = dataset.default_start;
  if (auto v = get("start")) {
    auto found = dataset.catalog.FindByCode(*v);
    if (!found.ok()) {
      std::fprintf(stderr, "unknown start item '%s'\n", v->c_str());
      return 1;
    }
    start = found.value();
  }
  config.sarsa.start_item = start;

  rlplanner::core::RlPlanner planner(instance, config);
  if (const auto status = planner.Train(); !status.ok()) {
    std::fprintf(stderr, "training failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("trained %d episodes in %.3f s\n", config.sarsa.num_episodes,
              planner.train_seconds());
  auto plan = planner.Recommend(start);
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("plan:  %s\n", plan.value().ToString(dataset.catalog).c_str());
  std::printf("check: %s\n",
              planner.Validate(plan.value()).ToString().c_str());
  std::printf("score: %.2f\n", planner.Score(plan.value()));
  if (auto v = get("save-policy")) {
    const auto status = planner.SavePolicy(*v);
    std::printf("policy: %s\n", status.ok() ? v->c_str()
                                            : status.ToString().c_str());
  }
  return 0;
}

// Trains a policy and prints its strongest transitions; with --out, also
// writes a Graphviz DOT rendering.
int CmdInspect(const Dataset& dataset,
               const std::map<std::string, std::string>& flags) {
  const rlplanner::model::TaskInstance instance = dataset.Instance();
  rlplanner::core::PlannerConfig config;
  config.sarsa.num_episodes = 500;
  config.sarsa.start_item = dataset.default_start;
  auto it = flags.find("episodes");
  if (it != flags.end()) config.sarsa.num_episodes = std::atoi(it->second.c_str());
  if (dataset.catalog.category_names().size() !=
      config.reward.category_weights.size()) {
    const std::size_t c = dataset.catalog.category_names().size();
    config.reward.category_weights.assign(c, 1.0 / static_cast<double>(c));
  }
  rlplanner::core::RlPlanner planner(instance, config);
  if (const auto status = planner.Train(); !status.ok()) {
    std::fprintf(stderr, "training failed: %s\n", status.ToString().c_str());
    return 1;
  }
  const rlplanner::rl::PolicyInspector inspector(planner.q_table(),
                                                 dataset.catalog);
  std::printf("strongest learned transitions:\n");
  for (const auto& edge : inspector.TopTransitions(15)) {
    std::printf("  %-28s -> %-28s Q=%.2f\n",
                dataset.catalog.item(edge.from).code.c_str(),
                dataset.catalog.item(edge.to).code.c_str(), edge.q_value);
  }
  const auto out = flags.find("out");
  if (out != flags.end()) {
    FILE* f = std::fopen(out->second.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out->second.c_str());
      return 1;
    }
    const std::string dot = inspector.ToDot(40);
    std::fwrite(dot.data(), 1, dot.size(), f);
    std::fclose(f);
    std::printf("wrote %s (render with: dot -Tsvg %s)\n",
                out->second.c_str(), out->second.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "list") return CmdList();

  const auto flags = ParseFlags(argc, argv, 2);
  const auto dataset_flag = flags.find("dataset");
  if (dataset_flag == flags.end()) return Usage();
  auto dataset = LoadDataset(dataset_flag->second);
  if (!dataset.has_value()) return 1;

  if (command == "info") return CmdInfo(*dataset);
  if (command == "export") {
    const auto out = flags.find("out");
    if (out == flags.end()) return Usage();
    return CmdExport(*dataset, out->second);
  }
  if (command == "gold") return CmdGold(*dataset);
  if (command == "plan") return CmdPlan(*dataset, flags);
  if (command == "inspect") return CmdInspect(*dataset, flags);
  return Usage();
}

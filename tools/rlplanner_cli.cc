// rlplanner_cli — command-line front end for the RL-Planner library.
//
// Subcommands:
//   list                                  show the built-in datasets
//   info    --dataset <name|file.csv>     dataset statistics
//   export  --dataset <name> --out <csv>  dump a built-in dataset to CSV
//   gold    --dataset <name|file.csv>     print the gold-standard plan
//   plan    --dataset <name|file.csv>     train RL-Planner and recommend
//           [--start CODE] [--episodes N] [--alpha A] [--gamma G]
//           [--epsilon E] [--similarity avg|min] [--beam] [--seed S]
//           [--save-policy CSV] [--metrics-out JSON] [--trace-out JSON]
//   train   --dataset <name|file.csv>     train only, with per-round
//           [training flags as for plan]  progress from the metrics
//           [--workers K] [--mode serial|det|hogwild]
//           [--save-policy CSV] [--metrics-out JSON] [--trace-out JSON]
//   metrics --dataset <name|file.csv>     train and dump the registry
//           [--format prom|json]          snapshot to stdout
//           [training flags as for train]
//   inspect --dataset <name|file.csv>     strongest learned transitions
//           [--episodes N] [--out DOT]
//   save-snapshot --dataset D --out FILE  train and write a binary policy
//           [training flags as for plan]  snapshot (Q-table + fingerprint +
//                                         provenance + checksum)
//   snapshot-info FILE                    inspect a snapshot file of either
//                                         format (v1 dense / v2 sparse):
//                                         version, dimensions, non-zero
//                                         fraction, checksum status — no
//                                         dataset needed
//   load-snapshot --dataset D --in FILE   load a snapshot, verify it against
//           [--start CODE]                the catalog, and recommend
//   serve   --dataset D                   run the concurrent PlanService over
//           [--snapshot FILE]             synthetic traffic and print the
//           [--requests N] [--threads T]  stats JSON (hot-path smoke test of
//           [--queue Q] [--deadline-ms D] the serving layer); training and
//           [--metrics-out JSON]          serving share one metrics registry
//           [--metrics-interval-s N]      (periodic atomic rewrites of
//           [--trace-out JSON]            --metrics-out while serving)
//           [training flags as for plan]
//           [--listen HOST:PORT]          wire mode: serve HTTP instead of
//           [--shards N]                  synthetic traffic — POST /v1/plan,
//           [--duration-s S]              GET /metrics, GET /healthz on an
//           [--drain-timeout-ms D]        epoll front end (see docs/serving.md)
//                                         until SIGTERM/SIGINT or --duration-s,
//                                         then drain gracefully
//           [--profile-hz HZ]             arm the sampling CPU profiler and
//                                         serve GET /debug/pprof?seconds=N
//           [--slo-ms MS]                 arm the tail-latency flight recorder
//                                         (GET /debug/tracez + histogram
//                                         exemplars); /debug/statusz is always
//                                         on in wire mode
//           [--fleet-policies N]          run an in-process fleet (N slots,
//           [--fleet-ticks T]             T orchestrator ticks before serving)
//                                         and serve GET /fleet/status
//   profile --dataset D --out FILE        train under the sampling profiler
//           [--profile-hz HZ]             and write the collapsed-stack
//           [training flags as for plan]  profile (flamegraph.pl/speedscope
//                                         input) — see docs/observability.md
//   fleet run --dataset D                 run the multi-policy fleet
//           [--policies N] [--ticks T]    orchestrator: N specs retrained on
//           [--freshness-ticks F]         staleness priority, published
//           [--canary-permille P]         through the canary gate pipeline
//           [--hold-ticks H]              (see docs/fleet.md); prints per-tick
//           [--reward-band B]             progress and the final status JSON
//           [--force-rollback]            (--force-rollback vetoes every
//           [--metrics-out JSON]          canary verdict — rollback drill)
//           [training flags as for plan]
//   fleet status --dataset D              same fleet, machine-readable: runs
//           [flags as for fleet run]      the ticks quietly and prints ONLY
//                                         the status JSON document
//
// `--trace-out FILE` records a Chrome trace-event timeline of the run
// (training rounds / worker shards / serve request lifecycles) loadable in
// Perfetto (https://ui.perfetto.dev) or chrome://tracing — see
// docs/observability.md.
//
// Unknown commands and missing required flags print a usage message on
// stderr and exit 2. Datasets can be the built-in names (toy, univ1-dsct,
// univ1-cyber, univ1-cs, univ2-ds, nyc, paris) or a CSV file produced by
// `export` / `datagen::SaveDatasetCsv`.

#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "baselines/gold.h"
#include "core/config.h"
#include "core/planner.h"
#include "core/scoring.h"
#include "datagen/course_data.h"
#include "datagen/io.h"
#include "datagen/trip_data.h"
#include "fleet/fleet.h"
#include "obs/debugz.h"
#include "obs/export.h"
#include "obs/profiler.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "obs/training_metrics.h"
#include "net/plan_handler.h"
#include "net/server.h"
#include "rl/policy_inspector.h"
#include "serve/plan_service.h"
#include "serve/policy_registry.h"
#include "serve/policy_snapshot.h"
#include "util/flags.h"

namespace {

using rlplanner::datagen::Dataset;
using rlplanner::util::CommandLine;

int Usage(const std::string& error) {
  if (!error.empty()) std::fprintf(stderr, "error: %s\n", error.c_str());
  std::fprintf(
      stderr,
      "usage: rlplanner_cli <list|info|export|gold|plan|train|metrics|"
      "inspect|save-snapshot|load-snapshot|snapshot-info|serve|fleet|"
      "profile> [options]\n"
      "       rlplanner_cli snapshot-info FILE\n"
      "       rlplanner_cli fleet <run|status> --dataset D [options]\n"
      "       rlplanner_cli profile --dataset D --out FILE [options]\n"
      "  --dataset <name|file.csv>   (toy, univ1-dsct, univ1-cyber,\n"
      "                               univ1-cs, univ2-ds, nyc, paris)\n"
      "  --start CODE  --episodes N  --alpha A  --gamma G  --epsilon E\n"
      "  --similarity avg|min  --beam  --seed S  --out FILE  --in FILE\n"
      "  --snapshot FILE  --requests N  --threads T  --queue Q\n"
      "  --deadline-ms D  --save-policy FILE  --metrics-out FILE\n"
      "  --metrics-interval-s N  --trace-out FILE\n"
      "  --workers K  --mode serial|det|hogwild  --format prom|json\n"
      "  --q-repr auto|dense|sparse  --snapshot-mode deserialize|mmap\n"
      "  --listen HOST:PORT  --shards N  --duration-s S\n"
      "  --drain-timeout-ms D  --profile-hz HZ  --slo-ms MS\n"
      "  --fleet-policies N  --fleet-ticks T\n"
      "  --policies N  --ticks T  --freshness-ticks F  --canary-permille P\n"
      "  --hold-ticks H  --reward-band B  --force-rollback\n");
  return 2;
}

std::optional<Dataset> LoadDataset(const std::string& spec) {
  using namespace rlplanner::datagen;
  if (spec == "toy") return MakeTableIIToy();
  if (spec == "univ1-dsct") return MakeUniv1DsCt();
  if (spec == "univ1-cyber") return MakeUniv1Cybersecurity();
  if (spec == "univ1-cs") return MakeUniv1Cs();
  if (spec == "univ2-ds") return MakeUniv2Ds();
  if (spec == "nyc") return MakeNycTrip();
  if (spec == "paris") return MakeParisTrip();
  auto loaded = LoadDatasetCsv(spec);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot load dataset '%s': %s\n", spec.c_str(),
                 loaded.status().ToString().c_str());
    return std::nullopt;
  }
  return std::move(loaded).value();
}

// Table III defaults by dataset shape, adjusted by the shared training
// flags (--episodes/--alpha/--gamma/--epsilon/--similarity/--seed/--beam).
rlplanner::core::PlannerConfig BuildConfig(const Dataset& dataset,
                                           const CommandLine& cmd) {
  rlplanner::core::PlannerConfig config;
  if (dataset.catalog.domain() == rlplanner::model::Domain::kTrip) {
    config = rlplanner::core::DefaultTripConfig();
  } else if (dataset.catalog.category_names().size() > 2) {
    config = rlplanner::core::DefaultUniv2Config();
  } else {
    config = rlplanner::core::DefaultUniv1Config();
  }
  if (dataset.catalog.category_names().size() !=
      config.reward.category_weights.size()) {
    const std::size_t c = dataset.catalog.category_names().size();
    config.reward.category_weights.assign(c, 1.0 / static_cast<double>(c));
  }
  if (auto v = cmd.GetFlag("episodes")) {
    config.sarsa.num_episodes = std::atoi(v->c_str());
  }
  if (auto v = cmd.GetFlag("alpha")) config.sarsa.alpha = std::atof(v->c_str());
  if (auto v = cmd.GetFlag("gamma")) config.sarsa.gamma = std::atof(v->c_str());
  if (auto v = cmd.GetFlag("epsilon")) {
    config.reward.epsilon = std::atof(v->c_str());
  }
  if (auto v = cmd.GetFlag("seed")) {
    config.seed = std::strtoull(v->c_str(), nullptr, 10);
  }
  if (auto v = cmd.GetFlag("similarity")) {
    config.reward.similarity = *v == "min"
                                   ? rlplanner::mdp::SimilarityMode::kMinimum
                                   : rlplanner::mdp::SimilarityMode::kAverage;
  }
  if (cmd.HasFlag("beam")) config.use_beam_search = true;
  if (auto v = cmd.GetFlag("workers")) {
    config.sarsa.num_workers = std::atoi(v->c_str());
  }
  if (auto v = cmd.GetFlag("mode")) {
    if (*v == "det") {
      config.sarsa.parallel_mode = rlplanner::rl::ParallelMode::kDeterministic;
    } else if (*v == "hogwild") {
      config.sarsa.parallel_mode = rlplanner::rl::ParallelMode::kHogwild;
    } else {
      config.sarsa.parallel_mode = rlplanner::rl::ParallelMode::kSerial;
    }
  }
  if (auto v = cmd.GetFlag("q-repr")) {
    config.sarsa.q_representation =
        *v == "sparse" ? rlplanner::rl::QRepresentation::kSparse
        : *v == "dense" ? rlplanner::rl::QRepresentation::kDense
                        : rlplanner::rl::QRepresentation::kAuto;
  }
  config.sarsa.start_item = dataset.default_start;
  return config;
}

// Writes `payload` to `path`, reporting the path (or the failure) on stdout.
bool WriteTextFile(const std::string& path, const std::string& payload) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(payload.data(), 1, payload.size(), f);
  std::fclose(f);
  return true;
}

// Crash-safe replacement of `path`: the payload goes to `path + ".tmp"`
// first and is renamed over the target, so a reader (or a crash mid-write)
// never observes a torn file.
bool AtomicWriteTextFile(const std::string& path, const std::string& payload) {
  const std::string tmp = path + ".tmp";
  if (!WriteTextFile(tmp, payload)) return false;
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::fprintf(stderr, "cannot rename %s to %s\n", tmp.c_str(),
                 path.c_str());
    return false;
  }
  return true;
}

// Constructs the `--trace-out` collector when requested (null disables
// tracing entirely — emitters resolve the null pointer to one predictable
// branch per span).
std::unique_ptr<rlplanner::obs::TraceCollector> MakeTraceCollector(
    const CommandLine& cmd, rlplanner::obs::Registry* metrics) {
  if (!cmd.HasFlag("trace-out")) return nullptr;
  rlplanner::obs::TraceCollectorConfig config;
  config.metrics = metrics;
  auto trace = std::make_unique<rlplanner::obs::TraceCollector>(config);
  trace->SetCurrentThreadName("main");
  return trace;
}

// Writes the Chrome-trace JSON when `--trace-out` was given.
bool WriteTraceOut(const CommandLine& cmd,
                   const rlplanner::obs::TraceCollector* trace) {
  const auto path = cmd.GetFlag("trace-out");
  if (!path.has_value() || trace == nullptr) return true;
  if (!WriteTextFile(*path, trace->ToChromeTrace())) return false;
  std::printf("trace: %s (%llu events, %llu dropped)\n", path->c_str(),
              static_cast<unsigned long long>(trace->emitted_total()),
              static_cast<unsigned long long>(trace->dropped_total()));
  return true;
}

// The `--metrics-out` payload: the full registry snapshot plus the
// per-round training progression.
std::string MetricsOutJson(const rlplanner::obs::Registry& registry,
                           const rlplanner::core::RlPlanner& planner) {
  std::string out = "{\"metrics\": ";
  out += rlplanner::obs::MetricsJsonArray(registry.Collect());
  out += ", \"training_rounds\": ";
  out += rlplanner::obs::TrainingRoundsJsonArray(
      planner.training_metrics() != nullptr
          ? planner.training_metrics()->rounds()
          : std::vector<rlplanner::obs::TrainingRoundSample>{});
  out += "}";
  return out;
}

// Resolves --start to an item id, or the dataset default.
rlplanner::util::Result<rlplanner::model::ItemId> ResolveStart(
    const Dataset& dataset, const CommandLine& cmd) {
  const auto v = cmd.GetFlag("start");
  if (!v.has_value()) return dataset.default_start;
  auto found = dataset.catalog.FindByCode(*v);
  if (!found.ok()) {
    return rlplanner::util::Status::NotFound("unknown start item '" + *v +
                                             "'");
  }
  return found.value();
}

int CmdList() {
  std::printf("built-in datasets:\n");
  const char* rows[][2] = {
      {"toy", "Table II toy program (6 courses, 13 topics)"},
      {"univ1-dsct", "Univ-1 M.S. DS-CT (31 courses, 60 topics)"},
      {"univ1-cyber", "Univ-1 M.S. Cybersecurity (30 courses, 61 topics)"},
      {"univ1-cs", "Univ-1 M.S. CS (32 courses, 100 topics)"},
      {"univ2-ds", "Univ-2 M.S. DS (36 courses, 73 topics, 6 categories)"},
      {"nyc", "NYC trip (90 POIs, 21 themes)"},
      {"paris", "Paris trip (114 POIs, 16 themes)"},
  };
  for (const auto& row : rows) std::printf("  %-12s %s\n", row[0], row[1]);
  return 0;
}

int CmdInfo(const Dataset& dataset) {
  const auto& catalog = dataset.catalog;
  std::printf("dataset:     %s\n", dataset.name.c_str());
  std::printf("domain:      %s\n",
              catalog.domain() == rlplanner::model::Domain::kTrip
                  ? "trip"
                  : "course");
  std::printf("items:       %zu (%d primary, %d secondary)\n",
              catalog.size(),
              catalog.CountByType(rlplanner::model::ItemType::kPrimary),
              catalog.CountByType(rlplanner::model::ItemType::kSecondary));
  std::printf("topics:      %zu\n", catalog.vocabulary_size());
  std::printf("constraints: min_credits=%.1f  split=%d/%d  gap=%d\n",
              dataset.hard.min_credits, dataset.hard.num_primary,
              dataset.hard.num_secondary, dataset.hard.gap);
  std::printf("templates:   %zu permutations of length %zu\n",
              dataset.soft.interleaving.size(),
              dataset.soft.interleaving.length());
  std::printf("start:       %s\n",
              catalog.item(dataset.default_start).code.c_str());
  std::printf("fingerprint: %016llx\n",
              static_cast<unsigned long long>(
                  rlplanner::serve::CatalogFingerprint(catalog)));
  int with_prereqs = 0;
  for (const auto& item : catalog.items()) {
    if (!item.prereqs.empty()) ++with_prereqs;
  }
  std::printf("prereqs:     %d items carry antecedents\n", with_prereqs);
  return 0;
}

int CmdExport(const Dataset& dataset, const std::string& out) {
  const auto status = rlplanner::datagen::SaveDatasetCsv(dataset, out);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

int CmdGold(const Dataset& dataset) {
  const rlplanner::model::TaskInstance instance = dataset.Instance();
  auto gold = rlplanner::baselines::BuildGoldStandard(instance);
  if (!gold.ok()) {
    std::fprintf(stderr, "no gold standard: %s\n",
                 gold.status().ToString().c_str());
    return 1;
  }
  std::printf("gold standard (score %.2f):\n  %s\n",
              rlplanner::core::ScorePlan(instance, gold.value()),
              gold.value().ToString(dataset.catalog).c_str());
  return 0;
}

int CmdPlan(const Dataset& dataset, const CommandLine& cmd) {
  const rlplanner::model::TaskInstance instance = dataset.Instance();
  rlplanner::core::PlannerConfig config = BuildConfig(dataset, cmd);
  auto start = ResolveStart(dataset, cmd);
  if (!start.ok()) {
    std::fprintf(stderr, "%s\n", start.status().ToString().c_str());
    return 1;
  }
  config.sarsa.start_item = start.value();

  rlplanner::obs::Registry registry;
  if (cmd.HasFlag("metrics-out")) config.metrics = &registry;
  const auto trace = MakeTraceCollector(cmd, config.metrics);
  config.trace = trace.get();
  rlplanner::core::RlPlanner planner(instance, config);
  if (const auto status = planner.Train(); !status.ok()) {
    std::fprintf(stderr, "training failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("trained %d episodes in %.3f s\n", config.sarsa.num_episodes,
              planner.train_seconds());
  auto plan = planner.Recommend(start.value());
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("plan:  %s\n", plan.value().ToString(dataset.catalog).c_str());
  std::printf("check: %s\n",
              planner.Validate(plan.value()).ToString().c_str());
  std::printf("score: %.2f\n", planner.Score(plan.value()));
  if (auto v = cmd.GetFlag("save-policy")) {
    const auto status = planner.SavePolicy(*v);
    std::printf("policy: %s\n", status.ok() ? v->c_str()
                                            : status.ToString().c_str());
  }
  if (auto v = cmd.GetFlag("metrics-out")) {
    if (!WriteTextFile(*v, MetricsOutJson(registry, planner))) return 1;
    std::printf("metrics: %s\n", v->c_str());
  }
  if (!WriteTraceOut(cmd, trace.get())) return 1;
  return 0;
}

// Trains only, reporting per-round progress from the metrics registry —
// the observability-first counterpart of `plan`.
int CmdTrain(const Dataset& dataset, const CommandLine& cmd) {
  const rlplanner::model::TaskInstance instance = dataset.Instance();
  rlplanner::core::PlannerConfig config = BuildConfig(dataset, cmd);
  rlplanner::obs::Registry registry;
  config.metrics = &registry;
  const auto trace = MakeTraceCollector(cmd, config.metrics);
  config.trace = trace.get();

  rlplanner::core::RlPlanner planner(instance, config);
  if (const auto status = planner.Train(); !status.ok()) {
    std::fprintf(stderr, "training failed: %s\n", status.ToString().c_str());
    return 1;
  }
  const char* mode =
      config.sarsa.parallel_mode == rlplanner::rl::ParallelMode::kHogwild
          ? "hogwild"
          : config.sarsa.parallel_mode ==
                    rlplanner::rl::ParallelMode::kDeterministic
                ? "det"
                : "serial";
  std::printf("trained %d episodes in %.3f s (mode %s, %d workers)\n",
              config.sarsa.num_episodes, planner.train_seconds(), mode,
              config.sarsa.num_workers);
  for (const auto& round : planner.training_metrics()->rounds()) {
    std::printf(
        "  round %d: %llu episodes, %.1f eps/sec, epsilon %.4f, %s\n",
        round.round, static_cast<unsigned long long>(round.episodes),
        round.episodes_per_sec, round.epsilon,
        round.safe ? "safe" : "VIOLATION");
  }
  if (auto v = cmd.GetFlag("save-policy")) {
    const auto status = planner.SavePolicy(*v);
    std::printf("policy: %s\n", status.ok() ? v->c_str()
                                            : status.ToString().c_str());
  }
  if (auto v = cmd.GetFlag("metrics-out")) {
    if (!WriteTextFile(*v, MetricsOutJson(registry, planner))) return 1;
    std::printf("metrics: %s\n", v->c_str());
  }
  if (!WriteTraceOut(cmd, trace.get())) return 1;
  return 0;
}

// Trains and dumps the registry snapshot to stdout in the requested format
// — the quickest way to see what the exporters produce.
int CmdMetrics(const Dataset& dataset, const CommandLine& cmd) {
  const rlplanner::model::TaskInstance instance = dataset.Instance();
  rlplanner::core::PlannerConfig config = BuildConfig(dataset, cmd);
  rlplanner::obs::Registry registry;
  config.metrics = &registry;

  rlplanner::core::RlPlanner planner(instance, config);
  if (const auto status = planner.Train(); !status.ok()) {
    std::fprintf(stderr, "training failed: %s\n", status.ToString().c_str());
    return 1;
  }
  const std::string format = cmd.GetFlagOr("format", "prom");
  if (format == "json") {
    std::printf("%s\n", rlplanner::obs::ToJson(registry.Collect()).c_str());
  } else {
    std::printf("%s",
                rlplanner::obs::ToPrometheusText(registry.Collect()).c_str());
  }
  return 0;
}

// Trains a policy and prints its strongest transitions; with --out, also
// writes a Graphviz DOT rendering.
int CmdInspect(const Dataset& dataset, const CommandLine& cmd) {
  const rlplanner::model::TaskInstance instance = dataset.Instance();
  rlplanner::core::PlannerConfig config = BuildConfig(dataset, cmd);
  rlplanner::core::RlPlanner planner(instance, config);
  if (const auto status = planner.Train(); !status.ok()) {
    std::fprintf(stderr, "training failed: %s\n", status.ToString().c_str());
    return 1;
  }
  const rlplanner::rl::PolicyInspector inspector(planner.q_table(),
                                                 dataset.catalog);
  std::printf("strongest learned transitions:\n");
  for (const auto& edge : inspector.TopTransitions(15)) {
    std::printf("  %-28s -> %-28s Q=%.2f\n",
                dataset.catalog.item(edge.from).code.c_str(),
                dataset.catalog.item(edge.to).code.c_str(), edge.q_value);
  }
  if (auto out = cmd.GetFlag("out")) {
    FILE* f = std::fopen(out->c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out->c_str());
      return 1;
    }
    const std::string dot = inspector.ToDot(40);
    std::fwrite(dot.data(), 1, dot.size(), f);
    std::fclose(f);
    std::printf("wrote %s (render with: dot -Tsvg %s)\n", out->c_str(),
                out->c_str());
  }
  return 0;
}

// Trains a policy and writes it as a checksummed binary snapshot.
int CmdSaveSnapshot(const Dataset& dataset, const CommandLine& cmd) {
  const rlplanner::model::TaskInstance instance = dataset.Instance();
  const rlplanner::core::PlannerConfig config = BuildConfig(dataset, cmd);
  rlplanner::core::RlPlanner planner(instance, config);
  if (const auto status = planner.Train(); !status.ok()) {
    std::fprintf(stderr, "training failed: %s\n", status.ToString().c_str());
    return 1;
  }
  const std::string out = *cmd.GetFlag("out");
  // Sparse-trained planners (and --v2) write the mmap-servable v2 format;
  // dense planners default to v1 for compatibility with older loaders.
  if (planner.uses_sparse() || cmd.HasFlag("v2")) {
    auto snapshot = rlplanner::serve::MakeSnapshotV2(planner);
    if (!snapshot.ok()) {
      std::fprintf(stderr, "%s\n", snapshot.status().ToString().c_str());
      return 1;
    }
    if (const auto status = snapshot.value().SaveToFile(out); !status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (sparse-v2, %zu items, fingerprint %016llx, "
                "%d episodes, seed %llu)\n",
                out.c_str(), snapshot.value().table.num_items(),
                static_cast<unsigned long long>(
                    snapshot.value().catalog_fingerprint),
                snapshot.value().provenance.num_episodes,
                static_cast<unsigned long long>(snapshot.value().seed));
    return 0;
  }
  auto snapshot = rlplanner::serve::MakeSnapshot(planner);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "%s\n", snapshot.status().ToString().c_str());
    return 1;
  }
  if (const auto status = snapshot.value().SaveToFile(out); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (dense-v1, %zu items, fingerprint %016llx, "
              "%d episodes, seed %llu)\n",
              out.c_str(), snapshot.value().table.num_items(),
              static_cast<unsigned long long>(
                  snapshot.value().catalog_fingerprint),
              snapshot.value().provenance.num_episodes,
              static_cast<unsigned long long>(snapshot.value().seed));
  return 0;
}

// Loads a snapshot, validates it against the dataset catalog, and rolls out
// the greedy plan — the offline check that a snapshot is servable.
int CmdLoadSnapshot(const Dataset& dataset, const CommandLine& cmd) {
  const rlplanner::model::TaskInstance instance = dataset.Instance();
  auto snapshot =
      rlplanner::serve::PolicySnapshot::LoadFromFile(*cmd.GetFlag("in"));
  if (!snapshot.ok()) {
    std::fprintf(stderr, "%s\n", snapshot.status().ToString().c_str());
    return 1;
  }
  const auto fingerprint =
      rlplanner::serve::CatalogFingerprint(dataset.catalog);
  if (snapshot.value().catalog_fingerprint != fingerprint) {
    std::fprintf(stderr,
                 "snapshot fingerprint %016llx does not match dataset "
                 "fingerprint %016llx: refusing to serve\n",
                 static_cast<unsigned long long>(
                     snapshot.value().catalog_fingerprint),
                 static_cast<unsigned long long>(fingerprint));
    return 1;
  }
  rlplanner::core::PlannerConfig config = BuildConfig(dataset, cmd);
  config.sarsa = snapshot.value().provenance;
  config.seed = snapshot.value().seed;
  rlplanner::core::RlPlanner planner(instance, config);
  if (const auto status = planner.AdoptPolicy(snapshot.value().table);
      !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  auto start = ResolveStart(dataset, cmd);
  if (!start.ok()) {
    std::fprintf(stderr, "%s\n", start.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded snapshot (%zu items, %d episodes, seed %llu)\n",
              snapshot.value().table.num_items(),
              snapshot.value().provenance.num_episodes,
              static_cast<unsigned long long>(snapshot.value().seed));
  auto plan = planner.Recommend(start.value());
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("plan:  %s\n", plan.value().ToString(dataset.catalog).c_str());
  std::printf("check: %s\n",
              planner.Validate(plan.value()).ToString().c_str());
  std::printf("score: %.2f\n", planner.Score(plan.value()));
  return 0;
}

// Inspects a snapshot file of either format without needing the dataset:
// the header carries everything but the catalog itself, and the full-file
// checksum pass reports integrity without deserializing into a planner.
int CmdSnapshotInfo(const std::string& path) {
  auto info = rlplanner::serve::InspectSnapshotFile(path);
  if (!info.ok()) {
    std::fprintf(stderr, "%s\n", info.status().ToString().c_str());
    return 1;
  }
  const auto& i = info.value();
  std::printf("file:        %s\n", path.c_str());
  std::printf("format:      %s (version %u)\n", i.format.c_str(),
              i.format_version);
  std::printf("items:       %llu\n",
              static_cast<unsigned long long>(i.num_items));
  std::printf("entries:     %llu\n",
              static_cast<unsigned long long>(i.entry_count));
  std::printf("nonzero:     %.6f\n", i.nonzero_fraction);
  std::printf("checksum:    %s\n", i.checksum_ok ? "OK" : "MISMATCH");
  std::printf("fingerprint: %016llx\n",
              static_cast<unsigned long long>(i.catalog_fingerprint));
  std::printf("seed:        %llu\n",
              static_cast<unsigned long long>(i.seed));
  std::printf("size:        %llu bytes\n",
              static_cast<unsigned long long>(i.file_bytes));
  return i.checksum_ok ? 0 : 1;
}

volatile std::sig_atomic_t g_shutdown_signal = 0;
void OnShutdownSignal(int) { g_shutdown_signal = 1; }

// Wire mode of `serve`: an epoll HTTP front end over the PlanService until
// SIGINT/SIGTERM (or --duration-s), then a graceful drain. The drain order
// matters: the service drains first so every admitted plan is delivered
// while its connection is still open (new wire requests map to 503
// meanwhile), then the server drains its connections, then the workers join.
int RunWireServer(rlplanner::serve::PlanService& service,
                  const rlplanner::util::HostPort& listen,
                  rlplanner::net::PlanHandler::Options options,
                  const CommandLine& cmd) {
  rlplanner::net::HttpServerConfig server_config;
  server_config.host = listen.host;
  server_config.port = listen.port;
  server_config.num_shards = static_cast<std::size_t>(
      std::atoi(cmd.GetFlagOr("shards", "0").c_str()));
  server_config.metrics = options.metrics;
  server_config.trace = options.trace;
  rlplanner::net::PlanHandler handler(&service, std::move(options));
  rlplanner::net::HttpServer server(server_config, handler.AsHandler());
  if (const auto status = server.Start(); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  // The front end's own statusz section: bound address, shard count, and the
  // service's live queue depth (the "shard/queue depths" line of the issue).
  handler.AddStatuszSection("server", [&server, &service] {
    return "{\"host\": \"" + server.config().host +
           "\", \"port\": " + std::to_string(server.port()) +
           ", \"shards\": " + std::to_string(server.num_shards()) +
           ", \"queue_depth\": " + std::to_string(service.queue_depth()) +
           ", \"workers\": " +
           std::to_string(service.config().num_workers) + "}";
  });
  // check.sh and the CI smoke lane parse this exact line for the bound port.
  std::printf("listening on %s:%u (%zu shards)\n", server.config().host.c_str(),
              static_cast<unsigned>(server.port()), server.num_shards());
  std::fflush(stdout);

  g_shutdown_signal = 0;
  std::signal(SIGINT, OnShutdownSignal);
  std::signal(SIGTERM, OnShutdownSignal);
  const double duration_s =
      std::atof(cmd.GetFlagOr("duration-s", "0").c_str());
  const auto begin = std::chrono::steady_clock::now();
  while (g_shutdown_signal == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (duration_s > 0.0 &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
                .count() >= duration_s) {
      break;
    }
  }
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);

  const double drain_timeout_ms =
      std::atof(cmd.GetFlagOr("drain-timeout-ms", "5000").c_str());
  const auto drained = service.Drain(std::chrono::milliseconds(
      static_cast<long long>(drain_timeout_ms < 0.0 ? 0.0 : drain_timeout_ms)));
  server.Shutdown();
  service.Stop();
  if (!drained.ok()) {
    std::fprintf(stderr, "drain: %s\n", drained.ToString().c_str());
  }
  std::printf("%s\n", service.stats().ToJson().c_str());
  return 0;
}

// Runs the concurrent PlanService over synthetic round-robin traffic and
// prints the stats JSON — a smoke test / demo of the serving layer.
int CmdServe(const Dataset& dataset, const CommandLine& cmd) {
  // Validate --listen before spending time on training: a malformed spec is
  // a usage error (exit 2), not a runtime failure.
  std::optional<rlplanner::util::HostPort> listen;
  if (const auto spec = cmd.GetFlag("listen")) {
    auto parsed = rlplanner::util::ParseHostPort(*spec);
    if (!parsed.ok()) return Usage(parsed.status().message());
    listen = parsed.value();
  }
  const rlplanner::model::TaskInstance instance = dataset.Instance();
  rlplanner::core::PlannerConfig config = BuildConfig(dataset, cmd);

  // Training (when no snapshot is supplied) and serving record into the
  // same registry, so the final snapshot covers the whole process. Likewise
  // one trace collector covers training rounds and request lifecycles.
  rlplanner::obs::Registry metrics_registry;
  config.metrics = &metrics_registry;
  const auto trace = MakeTraceCollector(cmd, config.metrics);
  config.trace = trace.get();

  // --profile-hz arms the sampling CPU profiler for the whole process
  // (training included) and exposes GET /debug/pprof in wire mode. 0 (the
  // default) leaves the hot paths bit-for-bit unprofiled.
  const int profile_hz = std::atoi(cmd.GetFlagOr("profile-hz", "0").c_str());
  rlplanner::obs::ProfilerConfig profiler_config;
  profiler_config.enabled = profile_hz > 0;
  if (profile_hz > 0) profiler_config.sample_hz = profile_hz;
  rlplanner::obs::Profiler profiler(profiler_config);
  if (profiler.enabled()) {
    if (const auto status = profiler.Start(); !status.ok()) {
      std::fprintf(stderr, "profiler: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  // --slo-ms arms the tail-latency flight recorder: requests slower than
  // this retain their span breakdown for GET /debug/tracez, and the latency
  // histogram starts capturing exemplars.
  rlplanner::obs::FlightRecorderConfig recorder_config;
  recorder_config.slo_ms = std::atof(cmd.GetFlagOr("slo-ms", "0").c_str());
  rlplanner::obs::FlightRecorder recorder(recorder_config);

  rlplanner::serve::PolicyRegistry registry(
      rlplanner::serve::CatalogFingerprint(dataset.catalog),
      dataset.catalog.size());
  // Snapshot-install latency to surface in the stats once the service
  // exists (the install necessarily precedes service construction).
  double snapshot_load_seconds = -1.0;
  bool snapshot_load_mmap = false;
  if (auto path = cmd.GetFlag("snapshot")) {
    snapshot_load_mmap =
        cmd.GetFlagOr("snapshot-mode", "deserialize") == "mmap";
    const auto load_mode = snapshot_load_mmap
                               ? rlplanner::serve::SnapshotLoadMode::kMmap
                               : rlplanner::serve::SnapshotLoadMode::kDeserialize;
    const auto load_begin = std::chrono::steady_clock::now();
    auto installed = registry.InstallSnapshotFile("default", *path, load_mode);
    if (!installed.ok()) {
      std::fprintf(stderr, "%s\n", installed.status().ToString().c_str());
      return 1;
    }
    snapshot_load_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      load_begin)
            .count();
  } else {
    rlplanner::core::RlPlanner planner(instance, config);
    if (const auto status = planner.Train(); !status.ok()) {
      std::fprintf(stderr, "training failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    // Install the trained table directly (no serialize/deserialize round
    // trip); the registry applies the same dimension validation.
    auto installed =
        planner.uses_sparse()
            ? registry.Install("default", planner.sparse_q_table(),
                               config.sarsa, config.seed)
            : registry.Install("default", planner.q_table(), config.sarsa,
                               config.seed);
    if (!installed.ok()) {
      std::fprintf(stderr, "%s\n", installed.status().ToString().c_str());
      return 1;
    }
  }

  // --fleet-policies spins up an in-process fleet orchestrator sharing the
  // serving registry: N extra slots are retrained/published through the
  // canary pipeline for --fleet-ticks ticks, then wire mode serves the live
  // status document at GET /fleet/status (and in /debug/statusz).
  std::unique_ptr<rlplanner::util::ThreadPool> fleet_pool;
  std::unique_ptr<rlplanner::fleet::FleetOrchestrator> fleet;
  const int fleet_policies =
      std::atoi(cmd.GetFlagOr("fleet-policies", "0").c_str());
  if (fleet_policies > 0) {
    fleet_pool = std::make_unique<rlplanner::util::ThreadPool>();
    rlplanner::fleet::FleetConfig fleet_config;
    fleet_config.canary_permille = static_cast<std::uint32_t>(
        std::atoi(cmd.GetFlagOr("canary-permille", "200").c_str()));
    fleet_config.canary_hold_ticks =
        std::atoi(cmd.GetFlagOr("hold-ticks", "1").c_str());
    fleet_config.reward_band =
        std::atof(cmd.GetFlagOr("reward-band", "0.5").c_str());
    fleet_config.metrics = &metrics_registry;
    fleet_config.trace = trace.get();
    if (cmd.HasFlag("force-rollback")) {
      fleet_config.hooks.override_canary_verdict =
          [](const rlplanner::fleet::PolicySpec&) {
            return std::optional<bool>(false);
          };
    }
    fleet = std::make_unique<rlplanner::fleet::FleetOrchestrator>(
        instance, config.reward, registry, *fleet_pool, fleet_config);
    const std::uint64_t fingerprint =
        rlplanner::serve::CatalogFingerprint(dataset.catalog);
    for (int i = 0; i < fleet_policies; ++i) {
      rlplanner::fleet::PolicySpec spec;
      spec.slot = "policy-" + std::to_string(i);
      spec.segment_id = "segment-" + std::to_string(i);
      spec.catalog_fingerprint = fingerprint;
      spec.sarsa = config.sarsa;
      spec.seed = config.seed + static_cast<std::uint64_t>(i);
      spec.freshness_ticks =
          std::max(1, std::atoi(cmd.GetFlagOr("freshness-ticks", "3").c_str()));
      if (const auto status = fleet->AddSpec(std::move(spec)); !status.ok()) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        return 1;
      }
    }
    fleet->RunTicks(
        std::max(1, std::atoi(cmd.GetFlagOr("fleet-ticks", "4").c_str())));
  }

  rlplanner::serve::PlanServiceConfig service_config;
  service_config.num_workers = static_cast<std::size_t>(
      std::atoi(cmd.GetFlagOr("threads", "4").c_str()));
  service_config.max_queue = static_cast<std::size_t>(
      std::atoi(cmd.GetFlagOr("queue", "256").c_str()));
  service_config.default_deadline_ms =
      std::atof(cmd.GetFlagOr("deadline-ms", "0").c_str());
  service_config.metrics = &metrics_registry;
  service_config.trace = trace.get();
  service_config.recorder = &recorder;
  const int num_requests = std::atoi(cmd.GetFlagOr("requests", "200").c_str());

  rlplanner::serve::PlanService service(instance, config.reward, registry,
                                        service_config);
  if (snapshot_load_seconds >= 0.0) {
    service.stats().RecordSnapshotLoad(snapshot_load_mmap,
                                       snapshot_load_seconds);
  }
  service.Start();

  // --metrics-interval-s: rewrite --metrics-out periodically while serving,
  // always via temp-file + atomic rename so a crash mid-interval never
  // leaves a torn JSON for a scraper to trip over.
  const double metrics_interval_s =
      std::atof(cmd.GetFlagOr("metrics-interval-s", "0").c_str());
  const auto metrics_path = cmd.GetFlag("metrics-out");
  std::mutex writer_mutex;
  std::condition_variable writer_cv;
  bool writer_stop = false;
  std::thread metrics_writer;
  if (metrics_interval_s > 0.0 && metrics_path.has_value()) {
    metrics_writer = std::thread([&] {
      std::unique_lock<std::mutex> lock(writer_mutex);
      while (!writer_cv.wait_for(
          lock, std::chrono::duration<double>(metrics_interval_s),
          [&] { return writer_stop; })) {
        lock.unlock();
        AtomicWriteTextFile(
            *metrics_path,
            rlplanner::obs::ToJson(metrics_registry.Collect()));
        lock.lock();
      }
    });
  }
  if (listen.has_value()) {
    rlplanner::net::PlanHandler::Options handler_options;
    handler_options.metrics = &metrics_registry;
    handler_options.trace = trace.get();
    handler_options.profiler = &profiler;
    handler_options.recorder = &recorder;
    handler_options.slots = &registry;
    if (fleet != nullptr) {
      handler_options.fleet_status =
          [fleet_ptr = fleet.get()] { return fleet_ptr->StatusJson(); };
    }
    const int wire_rc =
        RunWireServer(service, *listen, std::move(handler_options), cmd);
    if (fleet != nullptr) {
      std::fprintf(stderr, "fleet: %s\n", fleet->SummaryJson().c_str());
    }
    if (metrics_writer.joinable()) {
      {
        std::lock_guard<std::mutex> lock(writer_mutex);
        writer_stop = true;
      }
      writer_cv.notify_all();
      metrics_writer.join();
    }
    if (metrics_path.has_value()) {
      if (!AtomicWriteTextFile(
              *metrics_path,
              rlplanner::obs::ToJson(metrics_registry.Collect()))) {
        return 1;
      }
      std::printf("metrics: %s\n", metrics_path->c_str());
    }
    if (!WriteTraceOut(cmd, trace.get())) return 1;
    return wire_rc;
  }
  std::vector<std::future<
      rlplanner::util::Result<rlplanner::serve::PlanResponse>>> futures;
  futures.reserve(static_cast<std::size_t>(num_requests));
  int valid = 0, errors = 0, retried = 0;
  for (int i = 0; i < num_requests; ++i) {
    rlplanner::serve::PlanRequest request;
    request.start_item = static_cast<rlplanner::model::ItemId>(
        static_cast<std::size_t>(i) % dataset.catalog.size());
    auto submitted = service.Submit(std::move(request));
    while (!submitted.ok() &&
           submitted.status().code() ==
               rlplanner::util::StatusCode::kResourceExhausted) {
      // Closed-loop backpressure: drain one in-flight response, retry.
      ++retried;
      if (!futures.empty()) {
        auto result = futures.back().get();
        futures.pop_back();
        if (result.ok() && result.value().valid) ++valid;
        if (!result.ok()) ++errors;
      }
      rlplanner::serve::PlanRequest retry;
      retry.start_item = static_cast<rlplanner::model::ItemId>(
          static_cast<std::size_t>(i) % dataset.catalog.size());
      submitted = service.Submit(std::move(retry));
    }
    if (!submitted.ok()) {
      std::fprintf(stderr, "%s\n", submitted.status().ToString().c_str());
      return 1;
    }
    futures.push_back(std::move(submitted).value());
  }
  for (auto& future : futures) {
    auto result = future.get();
    if (result.ok() && result.value().valid) ++valid;
    if (!result.ok()) ++errors;
  }
  service.Stop();
  if (metrics_writer.joinable()) {
    {
      std::lock_guard<std::mutex> lock(writer_mutex);
      writer_stop = true;
    }
    writer_cv.notify_all();
    metrics_writer.join();
  }
  std::printf("served %d requests (%d valid plans, %d errors, %d retries) "
              "on %zu workers\n",
              num_requests, valid, errors, retried,
              service.config().num_workers);
  std::printf("%s\n", service.stats().ToJson().c_str());
  if (metrics_path.has_value()) {
    // The final write is atomic too: the periodic writer may have left a
    // mid-run snapshot in place, and this replaces it wholesale.
    if (!AtomicWriteTextFile(
            *metrics_path,
            rlplanner::obs::ToJson(metrics_registry.Collect()))) {
      return 1;
    }
    std::printf("metrics: %s\n", metrics_path->c_str());
  }
  if (!WriteTraceOut(cmd, trace.get())) return 1;
  return errors == 0 ? 0 : 1;
}

// Trains under the sampling profiler and writes the collapsed-stack profile
// to --out — the offline flamegraph path (flamegraph.pl or speedscope read
// the output directly; see docs/observability.md).
int CmdProfile(const Dataset& dataset, const CommandLine& cmd) {
  const std::string out = *cmd.GetFlag("out");
  const rlplanner::model::TaskInstance instance = dataset.Instance();
  rlplanner::core::PlannerConfig config = BuildConfig(dataset, cmd);

  rlplanner::obs::ProfilerConfig profiler_config;
  profiler_config.enabled = true;
  profiler_config.sample_hz =
      std::max(1, std::atoi(cmd.GetFlagOr("profile-hz", "97").c_str()));
  rlplanner::obs::Profiler profiler(profiler_config);
  if (const auto status = profiler.Start(); !status.ok()) {
    std::fprintf(stderr, "profiler: %s\n", status.ToString().c_str());
    return 1;
  }
  rlplanner::core::RlPlanner planner(instance, config);
  const auto trained = planner.Train();
  profiler.Stop();
  if (!trained.ok()) {
    std::fprintf(stderr, "training failed: %s\n", trained.ToString().c_str());
    return 1;
  }
  if (!WriteTextFile(out, profiler.Collapsed(0.0))) return 1;
  std::printf("trained %d episodes in %.3f s under %d Hz sampling "
              "(%llu samples)\n",
              config.sarsa.num_episodes, planner.train_seconds(),
              profiler.sample_hz(),
              static_cast<unsigned long long>(profiler.samples_total()));
  std::printf("profile: %s\n", out.c_str());
  return 0;
}

// Runs the continuous-training fleet orchestrator over a small multi-policy
// fleet and prints its status. `mode` is "run" (per-tick progress on stderr,
// final status JSON on stdout) or "status" (status JSON only — the
// machine-readable flavor the smoke lane parses).
int CmdFleet(const Dataset& dataset, const CommandLine& cmd,
             const std::string& mode) {
  const rlplanner::model::TaskInstance instance = dataset.Instance();
  rlplanner::core::PlannerConfig config = BuildConfig(dataset, cmd);
  const bool verbose = mode == "run";

  rlplanner::obs::Registry metrics_registry;
  const auto trace = MakeTraceCollector(cmd, &metrics_registry);

  const std::uint64_t fingerprint =
      rlplanner::serve::CatalogFingerprint(dataset.catalog);
  rlplanner::serve::PolicyRegistry registry(fingerprint,
                                            dataset.catalog.size());
  rlplanner::util::ThreadPool pool;

  rlplanner::fleet::FleetConfig fleet_config;
  fleet_config.canary_permille = static_cast<std::uint32_t>(
      std::atoi(cmd.GetFlagOr("canary-permille", "200").c_str()));
  fleet_config.canary_hold_ticks =
      std::atoi(cmd.GetFlagOr("hold-ticks", "1").c_str());
  fleet_config.reward_band =
      std::atof(cmd.GetFlagOr("reward-band", "0.5").c_str());
  fleet_config.metrics = &metrics_registry;
  fleet_config.trace = trace.get();
  if (cmd.HasFlag("force-rollback")) {
    // Rollback drill: veto every canary verdict so each publication beyond
    // the first exercises the full publish -> canary -> rollback cycle.
    fleet_config.hooks.override_canary_verdict =
        [](const rlplanner::fleet::PolicySpec&) {
          return std::optional<bool>(false);
        };
  }
  rlplanner::fleet::FleetOrchestrator fleet(instance, config.reward, registry,
                                            pool, fleet_config);

  const int num_policies =
      std::max(1, std::atoi(cmd.GetFlagOr("policies", "3").c_str()));
  const int freshness =
      std::max(1, std::atoi(cmd.GetFlagOr("freshness-ticks", "3").c_str()));
  for (int i = 0; i < num_policies; ++i) {
    rlplanner::fleet::PolicySpec spec;
    spec.slot = "policy-" + std::to_string(i);
    spec.segment_id = "segment-" + std::to_string(i);
    spec.catalog_fingerprint = fingerprint;
    spec.sarsa = config.sarsa;
    spec.seed = config.seed + static_cast<std::uint64_t>(i);
    spec.freshness_ticks = freshness;
    if (const auto status = fleet.AddSpec(std::move(spec)); !status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }

  const int ticks = std::max(1, std::atoi(cmd.GetFlagOr("ticks", "6").c_str()));
  for (int t = 0; t < ticks; ++t) {
    fleet.Tick();
    if (verbose) {
      for (const auto& s : fleet.Statuses()) {
        std::fprintf(stderr,
                     "tick %d  %s phase=%s incumbent=v%llu canary=v%llu "
                     "publishes=%llu promotes=%llu rollbacks=%llu\n",
                     t, s.slot.c_str(),
                     rlplanner::fleet::PolicyPhaseName(s.phase),
                     static_cast<unsigned long long>(s.incumbent_version),
                     static_cast<unsigned long long>(s.canary_version),
                     static_cast<unsigned long long>(s.publishes),
                     static_cast<unsigned long long>(s.promotes),
                     static_cast<unsigned long long>(s.rollbacks));
      }
    }
  }

  std::printf("%s\n", fleet.StatusJson().c_str());
  if (const auto metrics_path = cmd.GetFlag("metrics-out")) {
    if (!AtomicWriteTextFile(
            *metrics_path,
            rlplanner::obs::ToJson(metrics_registry.Collect()))) {
      return 1;
    }
    if (verbose) std::fprintf(stderr, "metrics: %s\n", metrics_path->c_str());
  }
  if (!WriteTraceOut(cmd, trace.get())) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CommandLine cmd = rlplanner::util::ParseCommandLine(argc, argv);
  if (cmd.command.empty()) return Usage("missing subcommand");
  if (cmd.command == "list") return CmdList();
  if (cmd.command == "snapshot-info") {
    // The only positional-argument command: `snapshot-info FILE`.
    if (cmd.positional.size() != 1) {
      return Usage(cmd.positional.empty()
                       ? "snapshot-info requires a FILE argument"
                       : "snapshot-info takes exactly one FILE argument");
    }
    return CmdSnapshotInfo(cmd.positional.front());
  }

  std::string fleet_mode;
  if (cmd.command == "fleet") {
    // `fleet <run|status>`: the verb rides in as the single positional.
    if (cmd.positional.size() != 1 ||
        (cmd.positional.front() != "run" &&
         cmd.positional.front() != "status")) {
      return Usage("fleet requires a mode: fleet <run|status> --dataset D");
    }
    fleet_mode = cmd.positional.front();
  }

  // Required flags per subcommand; anything else is an unknown command.
  std::vector<std::string> required = {"dataset"};
  if (cmd.command == "export" || cmd.command == "save-snapshot" ||
      cmd.command == "profile") {
    required.push_back("out");
  } else if (cmd.command == "load-snapshot") {
    required.push_back("in");
  } else if (cmd.command != "info" && cmd.command != "gold" &&
             cmd.command != "plan" && cmd.command != "train" &&
             cmd.command != "metrics" && cmd.command != "inspect" &&
             cmd.command != "serve" && cmd.command != "fleet") {
    return Usage("unknown command '" + cmd.command + "'");
  }
  if (const auto status = rlplanner::util::RequireFlags(cmd, required);
      !status.ok()) {
    return Usage(status.message());
  }

  auto dataset = LoadDataset(*cmd.GetFlag("dataset"));
  if (!dataset.has_value()) return 1;

  if (cmd.command == "info") return CmdInfo(*dataset);
  if (cmd.command == "export") return CmdExport(*dataset, *cmd.GetFlag("out"));
  if (cmd.command == "gold") return CmdGold(*dataset);
  if (cmd.command == "plan") return CmdPlan(*dataset, cmd);
  if (cmd.command == "train") return CmdTrain(*dataset, cmd);
  if (cmd.command == "metrics") return CmdMetrics(*dataset, cmd);
  if (cmd.command == "inspect") return CmdInspect(*dataset, cmd);
  if (cmd.command == "save-snapshot") return CmdSaveSnapshot(*dataset, cmd);
  if (cmd.command == "load-snapshot") return CmdLoadSnapshot(*dataset, cmd);
  if (cmd.command == "profile") return CmdProfile(*dataset, cmd);
  if (cmd.command == "fleet") return CmdFleet(*dataset, cmd, fleet_mode);
  return CmdServe(*dataset, cmd);
}

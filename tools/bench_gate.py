#!/usr/bin/env python3
"""Perf-regression gate over the checked-in benchmark baselines.

Compares a fresh benchmark run (BENCH_micro.json / BENCH_train.json /
BENCH_serve.json / BENCH_scalability.json, as written by
build/bench/{micro_benchmarks,train_bench,serve_bench,fig2_scalability})
against the baselines checked into the repo root, and fails (exit 1) when
any comparable entry regressed beyond the tolerance.

Design constraints, in order:

  * No false failures on shared/noisy runners. Entries measured over tiny
    wall-clock windows (the sub-10ms train_bench scenarios vary 4x run-to-run
    on a 1-core container) are skipped via --min-seconds; everything else
    gets a generous multiplicative --tolerance.
  * Like-for-like only. A baseline recorded at a different SIMD dispatch
    level, hardware thread count, catalog size, or smoke setting is not
    comparable; mismatched files are skipped with a warning instead of
    producing nonsense verdicts. (Refresh the baseline on the new hardware
    rather than loosening the tolerance.) Entries that carry a `q_repr`
    field (the dense-vs-sparse Q representation) bake it into the entry
    key, so a representation switch shows up as an addition + a missing
    entry — both skips — never as a bogus regression verdict.
  * Additions are free. Entries present on only one side are reported but
    never fail the gate, so adding a benchmark does not require regenerating
    every baseline in the same commit.

Usage:
  tools/bench_gate.py --baseline-dir . --fresh-dir build/bench
  tools/bench_gate.py --self-test

Refreshing a baseline after an intentional change (new kernel, different
benchmark budget): rerun the three binaries from build/bench and copy the
JSON files over the repo-root copies (see EXPERIMENTS.md).
"""

import argparse
import json
import os
import sys

# (file, context keys that must match, [(section, entry key fn, metrics)]).
# Each metric is (json field, direction): "lower" = smaller is better
# (ns/op), "higher" = larger is better (throughput).
GATE_SPEC = {
    "BENCH_micro.json": {
        "context": ["simd", "catalog_items"],
        "sections": [
            ("benchmarks", lambda e: e["name"],
             [("ns_per_op", "lower")], None),
            ("kernels", lambda e: e["name"],
             [("scalar_ns_per_op", "lower"), ("simd_ns_per_op", "lower")],
             None),
        ],
    },
    "BENCH_train.json": {
        "context": ["simd", "hardware_threads", "smoke"],
        "sections": [
            ("benchmarks",
             lambda e: f"{e['name']}/{e.get('q_repr', 'dense')}",
             [("episodes_per_sec", "higher")], "seconds"),
        ],
    },
    "BENCH_scalability.json": {
        "context": ["simd", "smoke"],
        "sections": [
            ("benchmarks",
             lambda e: f"{e['name']}/{e.get('q_repr', 'dense')}",
             [("ops_per_sec", "higher")], "seconds"),
        ],
    },
    "BENCH_serve.json": {
        "context": ["simd", "catalog_items", "hardware_threads", "smoke"],
        "sections": [
            ("throughput",
             lambda e: f"workers{e['workers']}/clients{e['clients']}",
             [("requests_per_sec", "higher")], "wall_s"),
            ("wire",
             lambda e: f"shards{e['shards']}/connections{e['connections']}",
             [("requests_per_sec", "higher")], "wall_s"),
            ("snapshot_load",
             lambda e: f"{e['format']}/{e['mode']}",
             [("seconds", "lower")], "seconds"),
        ],
        # Absolute floors: (object section, field, floor, window field).
        # Judged against the fresh run alone — the profiler-overhead ratio
        # is on-vs-off on the *same* machine in the *same* run, so neither
        # the checked-in baseline nor --tolerance may loosen it, and a
        # context mismatch that skips the relative sections leaves floors
        # armed. The 0.98 floor is the serving layer's <= 2% profiler
        # overhead budget.
        "floors": [
            ("profiler_overhead", "on_off_ratio", 0.98, "wall_s"),
        ],
    },
    "BENCH_fleet.json": {
        "context": ["simd", "catalog_items", "hardware_threads", "smoke"],
        "sections": [
            ("retrain", lambda e: f"policies{e['policies']}",
             [("retrains_per_sec", "higher")], "wall_s"),
            ("routing", lambda e: e["name"],
             [("ns_per_op", "lower")], None),
            ("cycle", lambda e: f"clients{e['clients']}",
             [("requests_per_sec", "higher")], "wall_s"),
        ],
    },
}


def load(path):
    with open(path) as f:
        return json.load(f)


def compare_file(name, baseline, fresh, tolerance, min_seconds):
    """Returns (failures, skipped, compared) for one benchmark file."""
    spec = GATE_SPEC[name]
    failures, skipped, compared = [], [], []

    # Floors first: absolute, baseline-independent, and deliberately outside
    # the context gate (a self-relative ratio is comparable on any machine).
    for section, field, floor, window_field in spec.get("floors", []):
        label = f"{name}:{section}.{field}"
        entry = fresh.get(section)
        if not isinstance(entry, dict) or field not in entry:
            skipped.append(f"{label}: not present in fresh run")
            continue
        window = entry.get(window_field)
        if window is None or window < min_seconds:
            skipped.append(
                f"{label}: {window_field}={window} below "
                f"--min-seconds={min_seconds} (too noisy to judge)")
            continue
        value = entry[field]
        verdict = (f"{label}: {value:.4f} vs absolute floor {floor:.4f} "
                   f"(tolerance does not apply)")
        compared.append(verdict)
        if value < floor:
            failures.append("FLOOR " + verdict)

    for key in spec["context"]:
        base_ctx, fresh_ctx = baseline.get(key), fresh.get(key)
        if base_ctx != fresh_ctx:
            skipped.append(
                f"{name}: context {key!r} differs "
                f"(baseline {base_ctx!r}, fresh {fresh_ctx!r}) — "
                f"file skipped; refresh the baseline to re-arm the gate")
            return failures, skipped, compared

    for section, key_fn, metrics, seconds_field in spec["sections"]:
        base_entries = {key_fn(e): e for e in baseline.get(section, [])}
        fresh_entries = {key_fn(e): e for e in fresh.get(section, [])}
        for key in sorted(set(base_entries) | set(fresh_entries)):
            label = f"{name}:{section}:{key}"
            if key not in base_entries:
                skipped.append(f"{label}: new entry (no baseline)")
                continue
            if key not in fresh_entries:
                skipped.append(f"{label}: missing from fresh run")
                continue
            base_e, fresh_e = base_entries[key], fresh_entries[key]
            if seconds_field is not None:
                window = min(base_e.get(seconds_field, 0.0),
                             fresh_e.get(seconds_field, 0.0))
                if window < min_seconds:
                    skipped.append(
                        f"{label}: {seconds_field}={window:.4f}s below "
                        f"--min-seconds={min_seconds} (too noisy to judge)")
                    continue
            for field, direction in metrics:
                base_v, fresh_v = base_e.get(field), fresh_e.get(field)
                if not base_v or fresh_v is None:
                    skipped.append(f"{label}.{field}: value missing or zero")
                    continue
                if direction == "lower":
                    ratio = fresh_v / base_v
                    regressed = fresh_v > base_v * (1.0 + tolerance)
                else:
                    ratio = base_v / fresh_v if fresh_v else float("inf")
                    regressed = fresh_v < base_v * (1.0 - tolerance)
                verdict = (f"{label}.{field}: baseline {base_v:.2f} -> "
                           f"fresh {fresh_v:.2f} ({ratio:.2f}x of baseline "
                           f"cost, tolerance {1.0 + tolerance:.2f}x)")
                compared.append(verdict)
                if regressed:
                    failures.append("REGRESSION " + verdict)
    return failures, skipped, compared


def run_gate(baseline_dir, fresh_dir, tolerance, min_seconds, verbose=True):
    failures, skipped, compared = [], [], []
    seen_any = False
    for name in GATE_SPEC:
        base_path = os.path.join(baseline_dir, name)
        fresh_path = os.path.join(fresh_dir, name)
        if not os.path.exists(base_path):
            skipped.append(f"{name}: no checked-in baseline — skipped")
            continue
        if not os.path.exists(fresh_path):
            failures.append(
                f"MISSING {name}: baseline exists but the fresh run did not "
                f"produce it (looked in {fresh_dir})")
            continue
        seen_any = True
        f, s, c = compare_file(name, load(base_path), load(fresh_path),
                               tolerance, min_seconds)
        failures += f
        skipped += s
        compared += c

    if verbose:
        for line in compared:
            print("  ok " + line)
        for line in skipped:
            print("skip " + line)
        for line in failures:
            print("FAIL " + line, file=sys.stderr)
        print(f"bench gate: {len(compared)} compared, {len(skipped)} "
              f"skipped, {len(failures)} failures")
    if not seen_any and not failures:
        print("bench gate: nothing to compare (no baselines found)",
              file=sys.stderr)
    return len(failures) == 0


def self_test():
    """Proves the gate trips on an injected regression and stays quiet on
    identical results, without touching real benchmark output."""
    import copy
    import tempfile

    baseline = {
        "BENCH_micro.json": {
            "catalog_items": 114,
            "simd": "avx2",
            "benchmarks": [
                {"name": "learn/optimized", "ns_per_op": 100.0,
                 "items_per_sec": 1e6},
            ],
            "kernels": [
                {"name": "popcount_words/16384b", "scalar_ns_per_op": 900.0,
                 "simd_ns_per_op": 90.0, "speedup": 10.0},
            ],
        },
        "BENCH_train.json": {
            "hardware_threads": 1,
            "simd": "avx2",
            "smoke": False,
            "benchmarks": [
                {"name": "synthetic_1k/serial", "seconds": 0.25,
                 "episodes_per_sec": 400.0},
                {"name": "univ1_dsct/serial", "seconds": 0.003,
                 "episodes_per_sec": 20000.0},
            ],
        },
        "BENCH_serve.json": {
            "catalog_items": 114,
            "hardware_threads": 1,
            "smoke": False,
            "simd": "avx2",
            "throughput": [
                {"workers": 4, "clients": 8, "wall_s": 1.2,
                 "requests_per_sec": 5000.0},
            ],
            "wire": [
                {"shards": 2, "connections": 8, "wall_s": 0.8,
                 "requests_per_sec": 20000.0},
            ],
            "snapshot_load": [
                {"format": "sparse-v2", "mode": "deserialize",
                 "items": 10000, "snapshot_bytes": 105906176,
                 "seconds": 1.0},
                {"format": "sparse-v2", "mode": "mmap", "items": 10000,
                 "snapshot_bytes": 105906176, "seconds": 0.0001},
            ],
            "profiler_overhead": {
                "sample_hz": 97, "shards": 2, "connections": 4,
                "off_requests_per_sec": 11000.0,
                "on_requests_per_sec": 10950.0,
                "off2_requests_per_sec": 11020.0,
                "samples": 300, "wall_s": 0.8, "on_off_ratio": 0.995,
            },
        },
        "BENCH_scalability.json": {
            "simd": "avx2",
            "smoke": False,
            "benchmarks": [
                {"name": "learn_synth10k/N100", "items": 10000,
                 "q_repr": "sparse", "seconds": 1.0,
                 "ops_per_sec": 100.0},
            ],
        },
        "BENCH_fleet.json": {
            "catalog_items": 114,
            "hardware_threads": 1,
            "smoke": False,
            "simd": "avx2",
            "retrain": [
                {"policies": 4, "ticks": 6, "retrains": 24,
                 "publishes": 24, "gate_failures": 0, "wall_s": 0.2,
                 "retrains_per_sec": 150.0},
            ],
            "routing": [
                {"name": "canary_split", "ops": 2000000, "wall_s": 0.16,
                 "ns_per_op": 80.0},
            ],
            "cycle": [
                {"clients": 4, "cycles": 12, "completed": 1200,
                 "failed": 0, "dropped": 0, "stale_after_rollback": 0,
                 "wall_s": 0.15, "requests_per_sec": 8000.0},
            ],
        },
    }

    def write_tree(directory, docs):
        for name, doc in docs.items():
            with open(os.path.join(directory, name), "w") as f:
                json.dump(doc, f)

    checks = []
    with tempfile.TemporaryDirectory() as tmp:
        base_dir = os.path.join(tmp, "base")
        fresh_dir = os.path.join(tmp, "fresh")
        os.mkdir(base_dir)
        os.mkdir(fresh_dir)
        write_tree(base_dir, baseline)

        # 1. Identical runs pass.
        write_tree(fresh_dir, baseline)
        checks.append(("identical runs pass",
                       run_gate(base_dir, fresh_dir, 0.30, 0.05,
                                verbose=False)))

        # 2. A kernel artificially slowed beyond tolerance fails.
        slowed = copy.deepcopy(baseline)
        slowed["BENCH_micro.json"]["kernels"][0]["simd_ns_per_op"] = 200.0
        write_tree(fresh_dir, slowed)
        checks.append(("slowed kernel fails",
                       not run_gate(base_dir, fresh_dir, 0.30, 0.05,
                                    verbose=False)))

        # 3. A throughput drop beyond tolerance fails.
        dropped = copy.deepcopy(baseline)
        dropped["BENCH_train.json"]["benchmarks"][0][
            "episodes_per_sec"] = 100.0
        write_tree(fresh_dir, dropped)
        checks.append(("throughput drop fails",
                       not run_gate(base_dir, fresh_dir, 0.30, 0.05,
                                    verbose=False)))

        # 3b. A wire (socket-path) throughput drop beyond tolerance fails.
        wire_dropped = copy.deepcopy(baseline)
        wire_dropped["BENCH_serve.json"]["wire"][0][
            "requests_per_sec"] = 5000.0
        write_tree(fresh_dir, wire_dropped)
        checks.append(("wire throughput drop fails",
                       not run_gate(base_dir, fresh_dir, 0.30, 0.05,
                                    verbose=False)))

        # 3c. A slower snapshot load beyond tolerance fails (the mmap entry
        # sits below --min-seconds, so only the deserialize entry is armed).
        slow_load = copy.deepcopy(baseline)
        slow_load["BENCH_serve.json"]["snapshot_load"][0]["seconds"] = 2.0
        write_tree(fresh_dir, slow_load)
        checks.append(("slow snapshot load fails",
                       not run_gate(base_dir, fresh_dir, 0.30, 0.05,
                                    verbose=False)))

        # 3d. A scalability throughput drop beyond tolerance fails.
        scale_dropped = copy.deepcopy(baseline)
        scale_dropped["BENCH_scalability.json"]["benchmarks"][0][
            "ops_per_sec"] = 10.0
        write_tree(fresh_dir, scale_dropped)
        checks.append(("scalability throughput drop fails",
                       not run_gate(base_dir, fresh_dir, 0.30, 0.05,
                                    verbose=False)))

        # 3e. The same drop under a flipped q_repr is a representation
        # switch, not a regression: the keys no longer match, so both sides
        # are reported as skips.
        switched = copy.deepcopy(scale_dropped)
        switched["BENCH_scalability.json"]["benchmarks"][0][
            "q_repr"] = "dense"
        write_tree(fresh_dir, switched)
        checks.append(("q_repr switch skips, never fails",
                       run_gate(base_dir, fresh_dir, 0.30, 0.05,
                                verbose=False)))

        # 3f. A fleet retrain-throughput drop beyond tolerance fails.
        fleet_dropped = copy.deepcopy(baseline)
        fleet_dropped["BENCH_fleet.json"]["retrain"][0][
            "retrains_per_sec"] = 50.0
        write_tree(fresh_dir, fleet_dropped)
        checks.append(("fleet retrain throughput drop fails",
                       not run_gate(base_dir, fresh_dir, 0.30, 0.05,
                                    verbose=False)))

        # 3g. A slower canary route beyond tolerance fails — the serve hot
        # path must not pay for the fleet's publication machinery.
        route_slowed = copy.deepcopy(baseline)
        route_slowed["BENCH_fleet.json"]["routing"][0]["ns_per_op"] = 160.0
        write_tree(fresh_dir, route_slowed)
        checks.append(("slower canary routing fails",
                       not run_gate(base_dir, fresh_dir, 0.30, 0.05,
                                    verbose=False)))

        # 3h. Profiler overhead past the 2% budget trips the absolute floor
        # even though 0.90 is well inside the 30% relative tolerance of the
        # baseline's 0.995 — floors ignore both baseline and tolerance.
        slow_profiler = copy.deepcopy(baseline)
        slow_profiler["BENCH_serve.json"]["profiler_overhead"][
            "on_off_ratio"] = 0.90
        write_tree(fresh_dir, slow_profiler)
        checks.append(("profiler overhead past floor fails",
                       not run_gate(base_dir, fresh_dir, 0.30, 0.05,
                                    verbose=False)))

        # 3i. The same ratio over a sub-min-seconds window is skipped — a
        # 10ms wire run cannot judge a 2% budget.
        noisy_profiler = copy.deepcopy(slow_profiler)
        noisy_profiler["BENCH_serve.json"]["profiler_overhead"][
            "wall_s"] = 0.01
        write_tree(fresh_dir, noisy_profiler)
        checks.append(("noisy profiler window skipped",
                       run_gate(base_dir, fresh_dir, 0.30, 0.05,
                                verbose=False)))

        # 3j. Floors stay armed when a context mismatch skips the relative
        # sections: the on-vs-off ratio is self-relative, so it is
        # comparable on any machine.
        mismatched_profiler = copy.deepcopy(slow_profiler)
        mismatched_profiler["BENCH_serve.json"]["hardware_threads"] = 64
        write_tree(fresh_dir, mismatched_profiler)
        checks.append(("floor survives context mismatch",
                       not run_gate(base_dir, fresh_dir, 0.30, 0.05,
                                    verbose=False)))

        # 4. The same drop on a sub-min-seconds entry is skipped, not failed.
        noisy = copy.deepcopy(baseline)
        noisy["BENCH_train.json"]["benchmarks"][1]["episodes_per_sec"] = 100.0
        write_tree(fresh_dir, noisy)
        checks.append(("noisy short entry skipped",
                       run_gate(base_dir, fresh_dir, 0.30, 0.05,
                                verbose=False)))

        # 5. A dispatch-level mismatch skips the file instead of failing.
        other_level = copy.deepcopy(slowed)
        other_level["BENCH_micro.json"]["simd"] = "scalar"
        write_tree(fresh_dir, other_level)
        checks.append(("simd-level mismatch skips file",
                       run_gate(base_dir, fresh_dir, 0.30, 0.05,
                                verbose=False)))

        # 6. A regression within tolerance passes.
        mild = copy.deepcopy(baseline)
        mild["BENCH_micro.json"]["kernels"][0]["simd_ns_per_op"] = 110.0
        write_tree(fresh_dir, mild)
        checks.append(("within-tolerance drift passes",
                       run_gate(base_dir, fresh_dir, 0.30, 0.05,
                                verbose=False)))

        # 7. A missing fresh file fails (the bench crashed or was skipped).
        os.remove(os.path.join(fresh_dir, "BENCH_serve.json"))
        checks.append(("missing fresh file fails",
                       not run_gate(base_dir, fresh_dir, 0.30, 0.05,
                                    verbose=False)))

    ok = True
    for name, passed in checks:
        print(f"{'PASS' if passed else 'FAIL'} self-test: {name}")
        ok = ok and passed
    return ok


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--baseline-dir", default=".",
                        help="directory with the checked-in BENCH_*.json")
    parser.add_argument("--fresh-dir", default="build/bench",
                        help="directory with the freshly generated JSON")
    parser.add_argument("--tolerance", type=float, default=0.35,
                        help="allowed multiplicative regression (0.35 = "
                             "fail beyond 35%% worse than baseline)")
    parser.add_argument("--min-seconds", type=float, default=0.05,
                        help="skip entries whose measurement window is "
                             "shorter than this on either side")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate trips on synthetic "
                             "regressions, then exit")
    args = parser.parse_args()

    if args.self_test:
        sys.exit(0 if self_test() else 1)
    sys.exit(0 if run_gate(args.baseline_dir, args.fresh_dir,
                           args.tolerance, args.min_seconds) else 1)


if __name__ == "__main__":
    main()

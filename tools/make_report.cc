// make_report — regenerates the headline evaluation as a Markdown report.
//
//   make_report [output.md] [--runs N] [--seed S]
//
// Writes to stdout when no output path is given.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "eval/report.h"

int main(int argc, char** argv) {
  rlplanner::eval::ReportOptions options;
  std::string output;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--runs") == 0 && i + 1 < argc) {
      options.runs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      options.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (argv[i][0] != '-') {
      output = argv[i];
    }
  }

  if (output.empty()) {
    std::printf("%s", rlplanner::eval::BuildEvaluationReport(options).c_str());
    return 0;
  }
  const auto status = rlplanner::eval::WriteEvaluationReport(options, output);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", output.c_str());
  return 0;
}

#!/usr/bin/env bash
# Full pre-merge check: build and run the tier-1 test suite under three
# configurations —
#   1. Release (the configuration benchmarks and experiments use),
#   2. ASan + UBSan (-DRLPLANNER_SANITIZE=ON) to catch memory and UB bugs
#      the optimized hot path could otherwise hide, and
#   3. TSan (-DRLPLANNER_SANITIZE=thread) over the concurrency-heavy tests
#      (the serving layer, the parallel SARSA trainer, and their
#      thread-pool substrate).
# The Release lane also smoke-runs bench/train_bench and
# bench/fig2_scalability (the latter keeps its 10k-item sparse lane even in
# smoke mode) with tiny episode budgets and validates the BENCH_*.json they
# emit, so a malformed benchmark artifact fails the check rather than the
# downstream plots —
# and likewise validates the CLI's --metrics-out JSON and --trace-out
# Chrome trace-event file (the artifact docs/observability.md documents).
# A fleet smoke lane runs `rlplanner_cli fleet status` as a three-policy
# rollback drill (--force-rollback) and validates the status JSON document
# docs/fleet.md specifies.
# It then boots `rlplanner_cli serve --listen` on an ephemeral port with the
# sampling profiler, the flight recorder, and an in-process fleet enabled,
# drives it with bench/load_gen over real sockets, round-trips GET /metrics
# as Prometheus text exposition, validates the live-introspection surface
# (/debug/statusz, /debug/tracez with an injected SLO violation, a 1-second
# /debug/pprof collapsed profile, /metrics?exemplars=1 as OpenMetrics, and
# /fleet/status as the wire view of the rollback drill), and SIGINTs the
# server to prove the graceful drain exits 0 with a balanced, zero-loss
# stats ledger.
# Set RLPLANNER_SANITIZE=thread to run only the TSan lane (the mode CI's
# sanitizer matrix uses); any other value runs everything.
# Usage: tools/check.sh  (from the repo root; build trees go to build/,
# build-sanitize/, and build-tsan/).
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"
MODE="${RLPLANNER_SANITIZE:-all}"

run_tsan_lane() {
  echo "==> TSan build + concurrency tests"
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DRLPLANNER_SANITIZE=thread
  cmake --build build-tsan -j "${JOBS}"
  # The serving layer and the parallel trainer are where the threads are;
  # util_test covers the ThreadPool substrate both run on. The
  # parallel_sarsa tests drive the sharded-merge barrier and the Hogwild
  # CAS loop under TSan; obs_test hammers the sharded metric cells, the
  # registry's concurrent registration path, and the trace collector's
  # single-writer rings (concurrent emit + export); simd_test covers the
  # dispatch table's concurrent first-use resolution (and its _scalar ctest
  # variant keeps the scalar kernels sanitized too); net_test crosses the
  # epoll shards' completion-queue/eventfd edge under concurrent clients
  # and drains the server under live load; fleet_test stresses the
  # orchestrator's publish/canary/rollback pipeline against concurrent
  # serving clients. The ASan/UBSan lane below runs the complete suite,
  # obs_test included — no filter there.
  ctest --test-dir build-tsan --output-on-failure -j "${JOBS}" \
    -R 'serve_test|net_test|util_test|parallel_sarsa_test|obs_test|simd_test|fleet_test'
}

run_bench_gate() {
  echo "==> Bench gate (regression check against checked-in baselines)"
  python3 tools/bench_gate.py --self-test
  # Full (non-smoke) runs: the checked-in baselines are full runs, and the
  # gate skips cross-context comparisons. The big-catalog lanes (100k-item
  # training, the ~100 MB snapshot fixture) push this to a couple minutes.
  (cd build/bench && ./micro_benchmarks > /dev/null \
    && ./train_bench > /dev/null && ./serve_bench > /dev/null \
    && ./fleet_bench > /dev/null && ./fig2_scalability > /dev/null)
  python3 tools/bench_gate.py --baseline-dir . --fresh-dir build/bench
}

run_scalability_smoke() {
  echo "==> Scalability-bench smoke run (10k sparse lane + JSON shape check)"
  # --smoke keeps the 10k-item sparse catalog but trims episode/rep budgets,
  # so the big-catalog path (sparse SARSA end to end) runs on every check.
  (cd build/bench && ./fig2_scalability --smoke)
  python3 - <<'EOF'
import json
with open("build/bench/BENCH_scalability.json") as f:
    doc = json.load(f)
assert doc["smoke"] is True
runs = doc["benchmarks"]
assert runs, "no benchmark entries"
for run in runs:
    for key in ("name", "items", "q_repr", "seconds", "ops_per_sec"):
        assert key in run, f"missing {key} in {run.get('name', '?')}"
    assert run["ops_per_sec"] > 0, run["name"]
sparse_10k = [r for r in runs
              if r["items"] == 10000 and r["q_repr"] == "sparse"]
assert sparse_10k, "no 10k-item sparse entries — big-catalog lane missing"
assert any(r["name"].startswith("learn_") for r in sparse_10k), sparse_10k
assert any(r["name"].startswith("recommend_") for r in sparse_10k), sparse_10k
print(f"BENCH_scalability.json OK ({len(runs)} entries, "
      f"{len(sparse_10k)} sparse 10k lanes)")
EOF
}

run_bench_smoke() {
  echo "==> Training-bench smoke run (JSON shape check)"
  # Run from build/bench so the artifact lands next to the binary (the same
  # path the validator and CI's artifact upload read).
  (cd build/bench && ./train_bench --smoke)
  python3 - <<'EOF'
import json
with open("build/bench/BENCH_train.json") as f:
    doc = json.load(f)
assert isinstance(doc["hardware_threads"], int) and doc["hardware_threads"] >= 1
assert doc["smoke"] is True
runs = doc["benchmarks"]
assert runs, "no benchmark entries"
for run in runs:
    for key in ("name", "mode", "workers", "episodes", "seconds",
                "episodes_per_sec", "time_to_safe_seconds", "steps",
                "td_error_abs_p95", "merge_wait_p95_us"):
        assert key in run, f"missing {key} in {run.get('name', '?')}"
    assert run["episodes_per_sec"] > 0, run["name"]
    assert run["steps"] > 0, run["name"]
print(f"BENCH_train.json OK ({len(runs)} entries)")
EOF
}

run_metrics_smoke() {
  echo "==> CLI --metrics-out smoke run (JSON shape check)"
  ./build/tools/rlplanner_cli train --dataset toy --episodes 40 \
    --metrics-out build/metrics-smoke.json > /dev/null
  python3 - <<'EOF'
import json
with open("build/metrics-smoke.json") as f:
    doc = json.load(f)
names = {m["name"] for m in doc["metrics"]}
for required in ("train_episodes_total", "train_steps_total",
                 "train_rounds_total", "train_td_error_abs_micro"):
    assert required in names, f"missing metric {required}"
episodes = next(m for m in doc["metrics"]
                if m["name"] == "train_episodes_total")
assert episodes["value"] == 40, episodes
rounds = doc["training_rounds"]
assert rounds, "no per-round samples"
for r in rounds:
    for key in ("round", "episodes", "seconds", "episodes_per_sec",
                "epsilon", "safe"):
        assert key in r, f"missing {key} in round sample"
print(f"metrics-smoke.json OK ({len(names)} metric names, "
      f"{len(rounds)} rounds)")
EOF
}

run_trace_smoke() {
  echo "==> CLI --trace-out smoke run (Chrome trace-event shape check)"
  ./build/tools/rlplanner_cli train --dataset toy --episodes 40 \
    --trace-out build/trace-smoke.json > /dev/null
  python3 - <<'EOF'
import json
with open("build/trace-smoke.json") as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert events, "empty traceEvents"
assert {e["ph"] for e in events} <= {"M", "X"}, "unexpected phases"
names = {e["name"] for e in events}
for required in ("process_name", "thread_name", "train", "train_round"):
    assert required in names, f"missing event {required}"
for e in events:
    if e["ph"] != "X":
        continue
    assert e["ts"] >= 0 and e["dur"] >= 0, e
    assert isinstance(e["args"], dict), e
assert doc["otherData"]["trace_events_dropped"] == 0
print(f"trace-smoke.json OK ({len(events)} events)")
EOF
}

run_fleet_smoke() {
  echo "==> Fleet orchestrator smoke run (rollback drill + status JSON check)"
  # A tiny three-policy fleet over the toy catalog; --force-rollback vetoes
  # every canary verdict so each publication beyond the first walks the full
  # publish -> canary -> rollback path. `fleet status` prints ONLY the final
  # status JSON, which is the artifact this lane validates.
  ./build/tools/rlplanner_cli fleet status --dataset toy --policies 3 \
    --ticks 8 --freshness-ticks 2 --episodes 40 --canary-permille 500 \
    --hold-ticks 1 --force-rollback > build/fleet-smoke.json
  python3 - <<'EOF'
import json
with open("build/fleet-smoke.json") as f:
    doc = json.load(f)
assert doc["tick"] == 8, doc["tick"]
policies = doc["policies"]
assert len(policies) == 3, f"expected 3 policies, got {len(policies)}"
phases = {"idle", "canary", "backoff"}
for p in policies:
    for key in ("slot", "segment", "phase", "generation",
                "last_published_tick", "staleness", "incumbent_version",
                "canary_version", "canary_permille", "publishes", "promotes",
                "rollbacks", "gate_failures", "retrain_failures",
                "candidate_rejections", "feedback_events",
                "consecutive_failures", "last_error"):
        assert key in p, f"missing {key} in {p.get('slot', '?')}"
    assert p["phase"] in phases, p["phase"]
    # Every slot must have published at least its first incumbent.
    assert p["publishes"] >= 1, p
    assert p["incumbent_version"] >= 1, p
    # The drill vetoes every canary, so nothing may ever promote.
    assert p["promotes"] == 0, p
rollbacks = sum(p["rollbacks"] for p in policies)
assert rollbacks >= 1, f"rollback drill rolled nothing back: {policies}"
print(f"fleet-smoke.json OK ({len(policies)} policies, "
      f"{rollbacks} rollbacks)")
EOF
}

run_serve_smoke() {
  echo "==> Wire serving smoke run (live server + load_gen + introspection)"
  # Train a toy policy and put the epoll front end on an ephemeral port;
  # --duration-s is a watchdog in case the SIGINT below never lands. The
  # profiler, the flight recorder, and a two-policy rollback-drill fleet
  # are all on so every /debug endpoint has real content to serve.
  rm -f build/serve-smoke.log
  ./build/tools/rlplanner_cli serve --dataset toy --listen 127.0.0.1:0 \
    --duration-s 60 --profile-hz 97 --slo-ms 5 \
    --fleet-policies 2 --fleet-ticks 3 --force-rollback \
    > build/serve-smoke.log &
  local server_pid=$!
  local target=""
  for _ in $(seq 1 200); do
    target="$(sed -n 's/^listening on \([0-9.]*:[0-9]*\) .*/\1/p' \
      build/serve-smoke.log 2>/dev/null || true)"
    [ -n "${target}" ] && break
    if ! kill -0 "${server_pid}" 2>/dev/null; then
      echo "server died before listening:" >&2
      cat build/serve-smoke.log >&2
      return 1
    fi
    sleep 0.05
  done
  if [ -z "${target}" ]; then
    echo "server never printed its listen address" >&2
    kill "${server_pid}" 2>/dev/null || true
    return 1
  fi

  # ~2 s of closed-loop load over real sockets; load_gen exits non-zero on
  # any transport error or unexpected status, and its JSON is the artifact.
  ./build/bench/load_gen closed --target "${target}" --connections 4 \
    --duration-s 2 > build/load-smoke.json
  python3 - <<'EOF'
import json
with open("build/load-smoke.json") as f:
    doc = json.load(f)
assert doc["mode"] == "closed" and doc["connections"] == 4, doc
assert doc["completed"] > 0 and doc["requests_per_sec"] > 0, doc
assert doc["errors"] == 0 and doc["transport_errors"] == 0, doc
# Closed-loop smoke against a healthy toy server: only 200s (a 503 here
# would mean admission control sheds load at 4 concurrent clients).
assert set(doc["status_counts"]) == {"200"}, doc["status_counts"]
for key in ("p50", "p95", "p99", "mean", "max"):
    assert doc["latency_ms"][key] >= 0.0, doc["latency_ms"]
print(f"load-smoke.json OK ({doc['completed']} requests, "
      f"{doc['requests_per_sec']:.0f} req/s)")
EOF

  # The live /metrics endpoint must round-trip as well-formed Prometheus
  # text exposition carrying both layers' metric families.
  ./build/bench/load_gen get --target "${target}" > build/metrics-wire.txt
  python3 - <<'EOF'
import re
with open("build/metrics-wire.txt") as f:
    lines = f.read().splitlines()
assert lines, "empty /metrics body"
sample = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z0-9_]+=\"[^\"]*\""
    r"(,[a-zA-Z0-9_]+=\"[^\"]*\")*\})? -?[0-9.eE+-]+$")
typed = set()
names = set()
for line in lines:
    if not line:
        continue
    if line.startswith("# TYPE "):
        parts = line.split()
        assert len(parts) == 4 and parts[3] in (
            "counter", "gauge", "histogram"), line
        typed.add(parts[2])
        continue
    if line.startswith("#"):
        continue
    assert sample.match(line), f"malformed sample line: {line!r}"
    names.add(line.split("{")[0].split()[0])
for required in ("net_requests_total", "net_connections_active",
                 "net_request_latency_us", "serve_requests_accepted_total",
                 "serve_request_latency_us"):
    assert any(n.startswith(required) for n in names), f"missing {required}"
    assert any(required == t for t in typed), f"no TYPE line for {required}"
print(f"metrics-wire.txt OK ({len(typed)} typed families, "
      f"{len(names)} sample names)")
EOF

  # Inject one forced-slow request (debug_stall_ms >> --slo-ms) so the
  # flight recorder has a violation to retain, then walk the introspection
  # surface end to end.
  ./build/bench/load_gen closed --target "${target}" --connections 1 \
    --requests 1 --body '{"debug_stall_ms": 25}' > build/stall-smoke.json
  ./build/bench/load_gen get --target "${target}" \
    --target-path /debug/statusz > build/statusz-smoke.json
  ./build/bench/load_gen get --target "${target}" \
    --target-path /debug/tracez > build/tracez-smoke.json
  ./build/bench/load_gen get --target "${target}" \
    --target-path '/debug/pprof?seconds=1' > build/pprof-smoke.txt
  ./build/bench/load_gen get --target "${target}" \
    --target-path '/metrics?exemplars=1' > build/metrics-openmetrics.txt
  ./build/bench/load_gen get --target "${target}" \
    --target-path /fleet/status > build/fleet-wire.json
  python3 - <<'EOF'
import json

with open("build/statusz-smoke.json") as f:
    statusz = json.load(f)
assert statusz["build"]["version"], statusz["build"]
assert statusz["uptime_seconds"] >= 0.0, statusz
assert statusz["profiler"]["enabled"] is True, statusz["profiler"]
assert statusz["profiler"]["running"] is True, statusz["profiler"]
assert statusz["flight_recorder"]["slo_ms"] == 5.0, statusz["flight_recorder"]
assert statusz["serve"]["completed"] >= 1, statusz["serve"]
slots = statusz["slots"]["slots"]
assert any(s["slot"] == "default" for s in slots), slots
assert statusz["server"]["shards"] >= 1, statusz["server"]
assert statusz["fleet"]["tick"] == 3, statusz["fleet"]

with open("build/tracez-smoke.json") as f:
    tracez = json.load(f)
flight = tracez["flight_recorder"]
assert flight["enabled"] is True, flight
assert flight["slowest"], "stalled request missing from tracez reservoirs"
stalled = flight["slowest"][0]
assert stalled["total_ms"] >= 5.0, stalled
assert {s["name"] for s in stalled["spans"]} >= {"serve_plan"}, stalled
# The violating trace id surfaces as a latency exemplar on the same page...
exemplars = [e for e in tracez["exemplars"]
             if e["trace_id"] == stalled["trace_id"]]
assert exemplars, (stalled["trace_id"], tracez["exemplars"])

with open("build/pprof-smoke.txt") as f:
    pprof = f.read()
assert pprof.startswith("# profile: cpu_samples\n"), pprof[:80]
for header in ("# sample_hz: 97", "# window_seconds: 1.000", "# samples:"):
    assert header in pprof, f"missing {header!r} in pprof header"

with open("build/metrics-openmetrics.txt") as f:
    openmetrics = f.read()
assert openmetrics.rstrip().endswith("# EOF"), "OpenMetrics body not EOF-terminated"
# ...and on the OpenMetrics exposition as `# {trace_id="..."}`.
needle = '# {trace_id="%d"' % stalled["trace_id"]
assert needle in openmetrics, f"missing exemplar {needle!r} on /metrics"

with open("build/fleet-wire.json") as f:
    fleet = json.load(f)
assert fleet["tick"] == 3, fleet
assert len(fleet["policies"]) == 2, fleet
# The drill vetoes every canary: the wire view must agree with the CLI one.
assert all(p["promotes"] == 0 for p in fleet["policies"]), fleet
assert sum(p["publishes"] for p in fleet["policies"]) >= 2, fleet
print("introspection smoke OK (statusz/tracez/pprof/openmetrics/fleet)")
EOF

  # Graceful shutdown: SIGINT → service drain → connection drain → exit 0,
  # and the final stats ledger must balance with nothing dropped.
  kill -INT "${server_pid}"
  local server_rc=0
  wait "${server_pid}" || server_rc=$?
  if [ "${server_rc}" -ne 0 ]; then
    echo "server exited with ${server_rc}:" >&2
    cat build/serve-smoke.log >&2
    return 1
  fi
  python3 - <<'EOF'
import json
with open("build/serve-smoke.log") as f:
    stats = json.loads(f.read().splitlines()[-1])
assert stats["failed"] == 0, stats
assert stats["accepted"] == stats["completed"] + stats["expired_deadline"], stats
assert stats["queue_depth"] == 0, stats
print(f"serve-smoke stats OK ({stats['completed']} completed, 0 failed)")
EOF
}

if [ "${MODE}" = "thread" ]; then
  run_tsan_lane
  echo "==> TSan checks passed"
  exit 0
fi

echo "==> Release build + tests"
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}"

run_bench_smoke
run_scalability_smoke
run_bench_gate
run_metrics_smoke
run_trace_smoke
run_fleet_smoke
run_serve_smoke

echo "==> ASan/UBSan build + tests"
cmake -B build-sanitize -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DRLPLANNER_SANITIZE=ON
cmake --build build-sanitize -j "${JOBS}"
ctest --test-dir build-sanitize --output-on-failure -j "${JOBS}"

run_tsan_lane

echo "==> All checks passed"

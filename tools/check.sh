#!/usr/bin/env bash
# Full pre-merge check: build and run the tier-1 test suite under three
# configurations —
#   1. Release (the configuration benchmarks and experiments use),
#   2. ASan + UBSan (-DRLPLANNER_SANITIZE=ON) to catch memory and UB bugs
#      the optimized hot path could otherwise hide, and
#   3. TSan (-DRLPLANNER_SANITIZE=thread) over the concurrency-heavy tests
#      (the serving layer and its thread-pool substrate).
# Set RLPLANNER_SANITIZE=thread to run only the TSan lane (the mode CI's
# sanitizer matrix uses); any other value runs everything.
# Usage: tools/check.sh  (from the repo root; build trees go to build/,
# build-sanitize/, and build-tsan/).
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"
MODE="${RLPLANNER_SANITIZE:-all}"

run_tsan_lane() {
  echo "==> TSan build + concurrency tests"
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DRLPLANNER_SANITIZE=thread
  cmake --build build-tsan -j "${JOBS}"
  # The serving layer is where the threads are; util_test covers the
  # ThreadPool substrate it runs on.
  ctest --test-dir build-tsan --output-on-failure -j "${JOBS}" \
    -R 'serve_test|util_test'
}

if [ "${MODE}" = "thread" ]; then
  run_tsan_lane
  echo "==> TSan checks passed"
  exit 0
fi

echo "==> Release build + tests"
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}"

echo "==> ASan/UBSan build + tests"
cmake -B build-sanitize -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DRLPLANNER_SANITIZE=ON
cmake --build build-sanitize -j "${JOBS}"
ctest --test-dir build-sanitize --output-on-failure -j "${JOBS}"

run_tsan_lane

echo "==> All checks passed"

#!/usr/bin/env bash
# Full pre-merge check: build and run the tier-1 test suite twice —
#   1. Release (the configuration benchmarks and experiments use), and
#   2. ASan + UBSan (-DRLPLANNER_SANITIZE=ON) to catch memory and UB bugs
#      the optimized hot path could otherwise hide.
# Usage: tools/check.sh  (from the repo root; build trees go to build/ and
# build-sanitize/).
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "==> Release build + tests"
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}"

echo "==> ASan/UBSan build + tests"
cmake -B build-sanitize -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DRLPLANNER_SANITIZE=ON
cmake --build build-sanitize -j "${JOBS}"
ctest --test-dir build-sanitize --output-on-failure -j "${JOBS}"

echo "==> All checks passed"

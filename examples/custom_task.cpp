// Building a task of your own with the fluent TaskBuilder: a small
// "data-engineering bootcamp" curriculum defined in ~30 lines, planned with
// RL-Planner, compared against the constructed gold standard, and exported
// to CSV for editing outside C++.

#include <cstdio>

#include "baselines/gold.h"
#include "core/planner.h"
#include "core/scoring.h"
#include "datagen/dataset.h"
#include "datagen/io.h"
#include "model/builder.h"

int main() {
  using namespace rlplanner;

  model::TaskBuilder builder(model::Domain::kCourse);
  builder
      .Topics({"sql", "python", "pipelines", "warehousing", "streaming",
               "orchestration", "testing", "cloud", "governance", "ml"})
      // Core modules.
      .Primary("DE100", "SQL Foundations", {"sql"})
      .Primary("DE200", "Python for Data", {"python"})
      .Primary("DE300", "Batch Pipelines", {"pipelines", "orchestration"})
      .RequiresAny({"DE100", "DE200"})
      .Primary("DE400", "Stream Processing", {"streaming"})
      .Requires({"DE300"})
      // Electives.
      .Secondary("EL110", "Data Warehousing", {"warehousing", "sql"})
      .Secondary("EL120", "Pipeline Testing", {"testing", "pipelines"})
      .Secondary("EL130", "Cloud Deployments", {"cloud"})
      .Secondary("EL140", "Data Governance", {"governance"})
      .Secondary("EL150", "ML Handoff", {"ml", "python"})
      // The program: 4 core + 3 electives, prerequisite one block earlier.
      .Split(4, 3)
      .MinCredits(21)
      .Gap(2)
      .Template("PPSPSPS")
      .Template("PSPSPSP")
      .IdealTopics({"sql", "python", "pipelines", "streaming", "testing",
                    "cloud"});

  auto built = builder.Build();
  if (!built.ok()) {
    std::fprintf(stderr, "bad task definition: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  const model::TaskInstance instance = built.value().Instance();
  std::printf("custom catalog: %zu items over %zu topics\n",
              built.value().catalog.size(),
              built.value().catalog.vocabulary_size());

  core::PlannerConfig config;
  config.sarsa.num_episodes = 300;
  config.sarsa.start_item =
      built.value().catalog.FindByCode("DE100").value();
  core::RlPlanner planner(instance, config);
  if (const auto status = planner.Train(); !status.ok()) {
    std::fprintf(stderr, "training failed: %s\n", status.ToString().c_str());
    return 1;
  }
  auto plan = planner.Recommend(config.sarsa.start_item);
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("RL-Planner (%s, score %.2f of 7):\n  %s\n",
              planner.Validate(plan.value()).ToString().c_str(),
              planner.Score(plan.value()),
              plan.value().ToString(built.value().catalog).c_str());

  auto gold = baselines::BuildGoldStandard(instance);
  if (gold.ok()) {
    std::printf("gold standard (score %.2f):\n  %s\n",
                core::ScorePlan(instance, gold.value()),
                gold.value().ToString(built.value().catalog).c_str());
  }

  // Export the whole task for editing in a spreadsheet.
  datagen::Dataset dataset;
  dataset.name = "data-engineering bootcamp";
  dataset.catalog = std::move(built.value().catalog);
  dataset.hard = built.value().hard;
  dataset.soft = built.value().soft;
  dataset.default_start = config.sarsa.start_item;
  const char* path = "/tmp/bootcamp.csv";
  if (datagen::SaveDatasetCsv(dataset, path).ok()) {
    std::printf("exported to %s — edit it and replan with:\n"
                "  rlplanner_cli plan --dataset %s\n",
                path, path);
  }
  return 0;
}

// Transfer learning (Section IV-D): learn a policy on one task instance
// and apply it to another.
//
// Two regimes are shown:
//  1. M.S. DS-CT -> M.S. CS: the programs share course codes, so the
//     learned Q-table transfers through exact code matching;
//  2. NYC -> Paris: the POI sets are disjoint, so each Paris POI is matched
//     to its most theme-similar NYC POI and Q-values are pulled through
//     that mapping.
// The example also saves and reloads a policy from disk (CSV), which is how
// a deployment would ship pre-trained policies.

#include <cstdio>

#include "core/planner.h"
#include "datagen/course_data.h"
#include "datagen/trip_data.h"
#include "rl/transfer.h"

namespace {

void ShowTransfer(const rlplanner::datagen::Dataset& source,
                  const rlplanner::datagen::Dataset& target,
                  const rlplanner::core::PlannerConfig& base_config) {
  using namespace rlplanner;
  std::printf("== learn on %s, plan for %s ==\n", source.name.c_str(),
              target.name.c_str());

  const model::TaskInstance source_instance = source.Instance();
  core::PlannerConfig config = base_config;
  config.sarsa.start_item = source.default_start;
  core::RlPlanner source_planner(source_instance, config);
  if (const auto status = source_planner.Train(); !status.ok()) {
    std::fprintf(stderr, "training failed: %s\n", status.ToString().c_str());
    return;
  }

  // Map the policy into the target catalog and adopt it.
  const model::TaskInstance target_instance = target.Instance();
  core::PlannerConfig target_config = base_config;
  core::RlPlanner target_planner(target_instance, target_config);
  auto adopted = target_planner.AdoptPolicy(rl::PolicyTransfer::MapAcrossCatalogs(
      source_planner.q_table(), source.catalog, target.catalog));
  if (!adopted.ok()) {
    std::fprintf(stderr, "%s\n", adopted.ToString().c_str());
    return;
  }

  auto plan = target_planner.Recommend(target.default_start);
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return;
  }
  std::printf("  plan:  %s\n", plan.value().ToString(target.catalog).c_str());
  std::printf("  check: %s, score %.2f\n\n",
              target_planner.Validate(plan.value()).ToString().c_str(),
              target_planner.Score(plan.value()));
}

}  // namespace

int main() {
  using namespace rlplanner;

  const datagen::Dataset ds_ct = datagen::MakeUniv1DsCt();
  const datagen::Dataset cs = datagen::MakeUniv1Cs();
  ShowTransfer(ds_ct, cs, core::DefaultUniv1Config());

  const datagen::Dataset nyc = datagen::MakeNycTrip();
  const datagen::Dataset paris = datagen::MakeParisTrip();
  ShowTransfer(nyc, paris, core::DefaultTripConfig());

  // Persistence: train once, save the policy, reload it elsewhere.
  const model::TaskInstance instance = ds_ct.Instance();
  core::PlannerConfig config = core::DefaultUniv1Config();
  config.sarsa.start_item = ds_ct.default_start;
  core::RlPlanner trained(instance, config);
  if (trained.Train().ok() &&
      trained.SavePolicy("/tmp/rlplanner_policy.csv").ok()) {
    core::RlPlanner reloaded(instance, config);
    if (reloaded.LoadPolicy("/tmp/rlplanner_policy.csv").ok()) {
      auto plan = reloaded.Recommend(ds_ct.default_start);
      std::printf("== reloaded policy from CSV ==\n  score %.2f (%s)\n",
                  plan.ok() ? reloaded.Score(plan.value()) : -1.0,
                  plan.ok()
                      ? reloaded.Validate(plan.value()).ToString().c_str()
                      : "recommendation failed");
    }
  }
  return 0;
}

// Trip planning in Paris: the scenario of the paper's Example 2 — a
// first-time traveler with 6 hours, who must see the must-visit POIs
// (2 primary), wants variety (no two consecutive POIs of the same theme),
// a restaurant only after a museum, and at most 5 km of walking.
//
// The example trains RL-Planner on the Paris dataset, prints the itinerary
// with running time/distance, and shows how tightening the budgets changes
// the plan.

#include <cstdio>

#include "core/planner.h"
#include "datagen/trip_data.h"
#include "geo/latlng.h"

namespace {

void PrintItinerary(const rlplanner::model::Plan& plan,
                    const rlplanner::model::Catalog& catalog) {
  double hours = 0.0;
  double km = 0.0;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const auto& poi = catalog.item(plan.at(i));
    if (i > 0) {
      km += rlplanner::geo::HaversineKm(
          catalog.item(plan.at(i - 1)).location, poi.location);
    }
    hours += poi.credits;
    std::printf("  %zu. %-32s %-12s %.1fh visit  (%.1fh / %.1fkm so far, "
                "popularity %.0f)\n",
                i + 1, poi.name.c_str(),
                poi.primary_theme >= 0
                    ? catalog.vocabulary()[poi.primary_theme].c_str()
                    : "?",
                poi.credits, hours, km, poi.popularity);
  }
}

}  // namespace

int main() {
  using namespace rlplanner;

  datagen::Dataset dataset = datagen::MakeParisTrip();
  std::printf("city: %s (%zu POIs, %zu themes)\n", dataset.name.c_str(),
              dataset.catalog.size(), dataset.catalog.vocabulary_size());

  const model::TaskInstance instance = dataset.Instance();
  core::PlannerConfig config = core::DefaultTripConfig();
  config.sarsa.start_item = dataset.default_start;
  core::RlPlanner planner(instance, config);
  if (const auto status = planner.Train(); !status.ok()) {
    std::fprintf(stderr, "training failed: %s\n", status.ToString().c_str());
    return 1;
  }

  auto plan = planner.Recommend(dataset.default_start);
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("\nitinerary from the Louvre (t <= %.0f h, d <= %.0f km, "
              "mean popularity %.2f, %s):\n",
              instance.hard.min_credits,
              instance.hard.distance_threshold_km,
              planner.Score(plan.value()),
              planner.Validate(plan.value()).ToString().c_str());
  PrintItinerary(plan.value(), dataset.catalog);

  // A shorter afternoon: 4 hours and 3 km.
  dataset.hard.min_credits = 4.0;
  dataset.hard.distance_threshold_km = 3.0;
  dataset.hard.num_secondary = 2;
  const model::TaskInstance tight = dataset.Instance();
  core::PlannerConfig tight_config = config;
  core::RlPlanner tight_planner(tight, tight_config);
  if (tight_planner.Train().ok()) {
    auto short_trip = tight_planner.Recommend(dataset.default_start);
    if (short_trip.ok()) {
      std::printf("\ntightened budgets (t <= 4 h, d <= 3 km):\n");
      PrintItinerary(short_trip.value(), dataset.catalog);
    }
  }
  return 0;
}

// Course planning on the Univ-1 M.S. DS-CT program: the scenario of the
// paper's Example 1 — a student starting from Machine Learning (CS 675)
// who wants a 10-course plan (5 core + 5 elective, 30 credits) whose
// prerequisites are all scheduled at least a semester (gap = 3) earlier.
//
// The example trains RL-Planner, prints the plan semester by semester,
// compares it with the advisor gold standard, and shows what happens when
// the student instead asks to start from a different course.

#include <cstdio>

#include "baselines/gold.h"
#include "core/planner.h"
#include "core/scoring.h"
#include "datagen/course_data.h"

namespace {

void PrintBySemester(const rlplanner::model::Plan& plan,
                     const rlplanner::model::Catalog& catalog) {
  // gap = 3 models three courses per semester.
  for (std::size_t i = 0; i < plan.size(); ++i) {
    if (i % 3 == 0) std::printf("  semester %zu:\n", i / 3 + 1);
    const auto& item = catalog.item(plan.at(i));
    std::printf("    %-9s %-45s [%s]\n", item.code.c_str(),
                item.name.c_str(), ItemTypeName(item.type));
  }
}

}  // namespace

int main() {
  using namespace rlplanner;

  const datagen::Dataset dataset = datagen::MakeUniv1DsCt();
  const model::TaskInstance instance = dataset.Instance();
  std::printf("program: %s (%zu courses, %zu topics)\n",
              dataset.name.c_str(), dataset.catalog.size(),
              dataset.catalog.vocabulary_size());

  core::PlannerConfig config = core::DefaultUniv1Config();
  config.sarsa.start_item = dataset.default_start;
  core::RlPlanner planner(instance, config);
  if (const auto status = planner.Train(); !status.ok()) {
    std::fprintf(stderr, "training failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("learned policy: %d episodes, %.3f s, %.0f%% of the Q-table "
              "visited\n\n",
              config.sarsa.num_episodes, planner.train_seconds(),
              100.0 * planner.q_table().NonZeroFraction());

  auto plan = planner.Recommend(dataset.default_start);
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("RL-Planner plan starting from CS 675 "
              "(score %.2f of %d, %s):\n",
              planner.Score(plan.value()), instance.hard.TotalItems(),
              planner.Validate(plan.value()).ToString().c_str());
  PrintBySemester(plan.value(), dataset.catalog);

  auto gold = baselines::BuildGoldStandard(instance);
  if (gold.ok()) {
    std::printf("\nadvisor gold standard (score %.2f):\n",
                core::ScorePlan(instance, gold.value()));
    PrintBySemester(gold.value(), dataset.catalog);
  }

  // Personalization: the same policy answers requests for other starts.
  std::printf("\nalternative starting courses:\n");
  for (const char* code : {"CS 610", "MATH 661"}) {
    const auto id = dataset.catalog.FindByCode(code);
    if (!id.ok()) continue;
    auto alternative = planner.Recommend(id.value());
    if (!alternative.ok()) continue;
    std::printf("  from %-9s -> score %.2f (%s)\n", code,
                planner.Score(alternative.value()),
                planner.Validate(alternative.value()).ToString().c_str());
  }
  return 0;
}

// Quickstart: plan the paper's Table II toy program end to end.
//
// Builds the six-course catalog of Table II, trains RL-Planner with the
// default parameters, recommends a plan starting from m1, and prints the
// plan, its hard-constraint report and its score.

#include <cstdio>

#include "core/planner.h"
#include "datagen/course_data.h"

int main() {
  using namespace rlplanner;

  const datagen::Dataset dataset = datagen::MakeTableIIToy();
  const model::TaskInstance instance = dataset.Instance();

  core::PlannerConfig config;
  config.sarsa.num_episodes = 200;
  config.reward.epsilon = 1.0;  // Example 1 uses an absolute threshold of 1

  core::RlPlanner planner(instance, config);
  const util::Status trained = planner.Train();
  if (!trained.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 trained.ToString().c_str());
    return 1;
  }
  std::printf("trained %d episodes in %.3f s\n",
              config.sarsa.num_episodes, planner.train_seconds());

  auto plan = planner.Recommend(dataset.default_start);
  if (!plan.ok()) {
    std::fprintf(stderr, "recommendation failed: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }

  std::printf("plan:  %s\n", plan.value().ToString(dataset.catalog).c_str());
  std::printf("check: %s\n",
              planner.Validate(plan.value()).ToString().c_str());
  std::printf("score: %.2f (max %d)\n", planner.Score(plan.value()),
              instance.hard.TotalItems());
  return 0;
}

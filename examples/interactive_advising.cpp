// An interactive advising session with feedback (the paper's Section VI
// extension): a student co-builds a DS-CT course plan with the planner —
// pinning their own choices, accepting suggestions — and then iterates
// with ratings until the plan reflects their taste.

#include <cstdio>

#include "adaptive/adaptive_planner.h"
#include "adaptive/interactive.h"
#include "core/planner.h"
#include "datagen/course_data.h"

int main() {
  using namespace rlplanner;

  const datagen::Dataset dataset = datagen::MakeUniv1DsCt();
  const model::TaskInstance instance = dataset.Instance();
  core::PlannerConfig config = core::DefaultUniv1Config();
  config.sarsa.start_item = dataset.default_start;
  core::RlPlanner planner(instance, config);
  if (const auto status = planner.Train(); !status.ok()) {
    std::fprintf(stderr, "training failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // --- Part 1: interactive session -------------------------------------
  std::printf("== interactive session ==\n");
  adaptive::InteractiveSession session(planner);
  // The student insists on starting with Machine Learning and taking
  // Applied Statistics early.
  (void)session.Pin(dataset.default_start);
  const auto math661 = dataset.catalog.FindByCode("MATH 661").value();
  if (!session.Pin(math661).ok()) {
    std::printf("(MATH 661 was not admissible here)\n");
  }

  // Show the planner's top-3 suggestions for the third slot.
  std::printf("suggestions for slot 3:\n");
  for (const auto& s : session.SuggestNext(3)) {
    const auto& item = dataset.catalog.item(s.item);
    std::printf("  %-9s %-40s theta=%d reward=%.2f q=%.2f\n",
                item.code.c_str(), item.name.c_str(), s.theta, s.reward,
                s.q_value);
  }
  // Accept suggestions for the rest of the degree.
  const model::Plan plan = session.Complete();
  std::printf("final plan (%s, score %.2f):\n  %s\n\n",
              planner.Validate(plan).ToString().c_str(), planner.Score(plan),
              plan.ToString(dataset.catalog).c_str());

  // --- Part 2: feedback loop -------------------------------------------
  std::printf("== feedback loop ==\n");
  adaptive::AdaptivePlanner adaptive_planner(planner, /*strength=*/1.0);
  auto base = planner.Recommend(dataset.default_start);
  if (!base.ok()) return 1;
  std::printf("before feedback: %s\n",
              base.value().ToString(dataset.catalog).c_str());

  // The student already knows they love the math electives...
  for (const char* code : {"MATH 663", "MATH 678", "MATH 644"}) {
    const auto id = dataset.catalog.FindByCode(code);
    if (id.ok()) (void)adaptive_planner.feedback().AddRating(id.value(), 5.0);
  }
  // ...and rates each recommended course: networking and records courses
  // bore them, everything else is fine.
  const int networks = dataset.catalog.TopicId("networks");
  const int records = dataset.catalog.TopicId("records");
  auto rate = [&](model::ItemId id) {
    const auto& item = dataset.catalog.item(id);
    for (int topic : {networks, records}) {
      if (topic >= 0 && item.topics.Test(static_cast<std::size_t>(topic))) {
        return 1.0;
      }
    }
    return 4.0;
  };
  auto adapted = adaptive_planner.RunLoop(dataset.default_start, 5, rate);
  if (adapted.ok()) {
    std::printf("after feedback:  %s\n",
                adapted.value().ToString(dataset.catalog).c_str());
    std::printf("check: %s, score %.2f\n",
                planner.Validate(adapted.value()).ToString().c_str(),
                planner.Score(adapted.value()));
  }
  return 0;
}

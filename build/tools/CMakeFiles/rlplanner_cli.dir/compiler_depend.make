# Empty compiler generated dependencies file for rlplanner_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rlplanner_cli.dir/rlplanner_cli.cc.o"
  "CMakeFiles/rlplanner_cli.dir/rlplanner_cli.cc.o.d"
  "rlplanner_cli"
  "rlplanner_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlplanner_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

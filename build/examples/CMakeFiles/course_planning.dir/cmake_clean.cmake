file(REMOVE_RECURSE
  "CMakeFiles/course_planning.dir/course_planning.cpp.o"
  "CMakeFiles/course_planning.dir/course_planning.cpp.o.d"
  "course_planning"
  "course_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/course_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for course_planning.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for interactive_advising.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/interactive_advising.dir/interactive_advising.cpp.o"
  "CMakeFiles/interactive_advising.dir/interactive_advising.cpp.o.d"
  "interactive_advising"
  "interactive_advising.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactive_advising.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for table4_user_study.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table4_user_study.dir/table4_user_study.cc.o"
  "CMakeFiles/table4_user_study.dir/table4_user_study.cc.o.d"
  "table4_user_study"
  "table4_user_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_user_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

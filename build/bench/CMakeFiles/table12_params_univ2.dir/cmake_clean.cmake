file(REMOVE_RECURSE
  "CMakeFiles/table12_params_univ2.dir/table12_params_univ2.cc.o"
  "CMakeFiles/table12_params_univ2.dir/table12_params_univ2.cc.o.d"
  "table12_params_univ2"
  "table12_params_univ2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table12_params_univ2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

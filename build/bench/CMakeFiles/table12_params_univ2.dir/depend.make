# Empty dependencies file for table12_params_univ2.
# This may be replaced when dependencies are built.

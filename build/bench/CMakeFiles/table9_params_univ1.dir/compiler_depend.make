# Empty compiler generated dependencies file for table9_params_univ1.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table9_params_univ1.dir/table9_params_univ1.cc.o"
  "CMakeFiles/table9_params_univ1.dir/table9_params_univ1.cc.o.d"
  "table9_params_univ1"
  "table9_params_univ1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_params_univ1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/table15_params_trips.dir/table15_params_trips.cc.o"
  "CMakeFiles/table15_params_trips.dir/table15_params_trips.cc.o.d"
  "table15_params_trips"
  "table15_params_trips.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table15_params_trips.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

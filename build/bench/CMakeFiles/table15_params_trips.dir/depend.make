# Empty dependencies file for table15_params_trips.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table7_transfer_trips.dir/table7_transfer_trips.cc.o"
  "CMakeFiles/table7_transfer_trips.dir/table7_transfer_trips.cc.o.d"
  "table7_transfer_trips"
  "table7_transfer_trips.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_transfer_trips.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for table7_transfer_trips.
# This may be replaced when dependencies are built.

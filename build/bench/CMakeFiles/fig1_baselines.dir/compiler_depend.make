# Empty compiler generated dependencies file for fig1_baselines.
# This may be replaced when dependencies are built.

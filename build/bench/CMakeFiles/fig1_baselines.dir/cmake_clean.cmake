file(REMOVE_RECURSE
  "CMakeFiles/fig1_baselines.dir/fig1_baselines.cc.o"
  "CMakeFiles/fig1_baselines.dir/fig1_baselines.cc.o.d"
  "fig1_baselines"
  "fig1_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for table5_transfer_courses.
# This may be replaced when dependencies are built.

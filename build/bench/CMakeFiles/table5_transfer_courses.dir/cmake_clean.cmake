file(REMOVE_RECURSE
  "CMakeFiles/table5_transfer_courses.dir/table5_transfer_courses.cc.o"
  "CMakeFiles/table5_transfer_courses.dir/table5_transfer_courses.cc.o.d"
  "table5_transfer_courses"
  "table5_transfer_courses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_transfer_courses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

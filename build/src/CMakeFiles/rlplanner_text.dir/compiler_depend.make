# Empty compiler generated dependencies file for rlplanner_text.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "librlplanner_text.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/rlplanner_text.dir/text/stopwords.cc.o"
  "CMakeFiles/rlplanner_text.dir/text/stopwords.cc.o.d"
  "CMakeFiles/rlplanner_text.dir/text/tokenizer.cc.o"
  "CMakeFiles/rlplanner_text.dir/text/tokenizer.cc.o.d"
  "CMakeFiles/rlplanner_text.dir/text/topic_extractor.cc.o"
  "CMakeFiles/rlplanner_text.dir/text/topic_extractor.cc.o.d"
  "librlplanner_text.a"
  "librlplanner_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlplanner_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for rlplanner_mdp.
# This may be replaced when dependencies are built.

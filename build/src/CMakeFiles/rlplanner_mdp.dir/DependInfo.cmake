
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mdp/cmdp.cc" "src/CMakeFiles/rlplanner_mdp.dir/mdp/cmdp.cc.o" "gcc" "src/CMakeFiles/rlplanner_mdp.dir/mdp/cmdp.cc.o.d"
  "/root/repo/src/mdp/episode_state.cc" "src/CMakeFiles/rlplanner_mdp.dir/mdp/episode_state.cc.o" "gcc" "src/CMakeFiles/rlplanner_mdp.dir/mdp/episode_state.cc.o.d"
  "/root/repo/src/mdp/q_table.cc" "src/CMakeFiles/rlplanner_mdp.dir/mdp/q_table.cc.o" "gcc" "src/CMakeFiles/rlplanner_mdp.dir/mdp/q_table.cc.o.d"
  "/root/repo/src/mdp/reward.cc" "src/CMakeFiles/rlplanner_mdp.dir/mdp/reward.cc.o" "gcc" "src/CMakeFiles/rlplanner_mdp.dir/mdp/reward.cc.o.d"
  "/root/repo/src/mdp/similarity.cc" "src/CMakeFiles/rlplanner_mdp.dir/mdp/similarity.cc.o" "gcc" "src/CMakeFiles/rlplanner_mdp.dir/mdp/similarity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rlplanner_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlplanner_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlplanner_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlplanner_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "librlplanner_mdp.a"
)

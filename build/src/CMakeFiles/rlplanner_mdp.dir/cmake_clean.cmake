file(REMOVE_RECURSE
  "CMakeFiles/rlplanner_mdp.dir/mdp/cmdp.cc.o"
  "CMakeFiles/rlplanner_mdp.dir/mdp/cmdp.cc.o.d"
  "CMakeFiles/rlplanner_mdp.dir/mdp/episode_state.cc.o"
  "CMakeFiles/rlplanner_mdp.dir/mdp/episode_state.cc.o.d"
  "CMakeFiles/rlplanner_mdp.dir/mdp/q_table.cc.o"
  "CMakeFiles/rlplanner_mdp.dir/mdp/q_table.cc.o.d"
  "CMakeFiles/rlplanner_mdp.dir/mdp/reward.cc.o"
  "CMakeFiles/rlplanner_mdp.dir/mdp/reward.cc.o.d"
  "CMakeFiles/rlplanner_mdp.dir/mdp/similarity.cc.o"
  "CMakeFiles/rlplanner_mdp.dir/mdp/similarity.cc.o.d"
  "librlplanner_mdp.a"
  "librlplanner_mdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlplanner_mdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

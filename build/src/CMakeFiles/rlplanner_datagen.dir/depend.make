# Empty dependencies file for rlplanner_datagen.
# This may be replaced when dependencies are built.

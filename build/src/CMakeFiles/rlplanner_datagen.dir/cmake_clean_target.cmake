file(REMOVE_RECURSE
  "librlplanner_datagen.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/rlplanner_datagen.dir/datagen/course_data.cc.o"
  "CMakeFiles/rlplanner_datagen.dir/datagen/course_data.cc.o.d"
  "CMakeFiles/rlplanner_datagen.dir/datagen/io.cc.o"
  "CMakeFiles/rlplanner_datagen.dir/datagen/io.cc.o.d"
  "CMakeFiles/rlplanner_datagen.dir/datagen/synthetic.cc.o"
  "CMakeFiles/rlplanner_datagen.dir/datagen/synthetic.cc.o.d"
  "CMakeFiles/rlplanner_datagen.dir/datagen/trip_data.cc.o"
  "CMakeFiles/rlplanner_datagen.dir/datagen/trip_data.cc.o.d"
  "librlplanner_datagen.a"
  "librlplanner_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlplanner_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/rlplanner_baselines.dir/baselines/eda.cc.o"
  "CMakeFiles/rlplanner_baselines.dir/baselines/eda.cc.o.d"
  "CMakeFiles/rlplanner_baselines.dir/baselines/gold.cc.o"
  "CMakeFiles/rlplanner_baselines.dir/baselines/gold.cc.o.d"
  "CMakeFiles/rlplanner_baselines.dir/baselines/omega.cc.o"
  "CMakeFiles/rlplanner_baselines.dir/baselines/omega.cc.o.d"
  "librlplanner_baselines.a"
  "librlplanner_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlplanner_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

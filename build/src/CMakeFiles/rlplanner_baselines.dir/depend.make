# Empty dependencies file for rlplanner_baselines.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "librlplanner_baselines.a"
)

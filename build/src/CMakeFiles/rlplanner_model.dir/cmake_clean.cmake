file(REMOVE_RECURSE
  "CMakeFiles/rlplanner_model.dir/model/builder.cc.o"
  "CMakeFiles/rlplanner_model.dir/model/builder.cc.o.d"
  "CMakeFiles/rlplanner_model.dir/model/catalog.cc.o"
  "CMakeFiles/rlplanner_model.dir/model/catalog.cc.o.d"
  "CMakeFiles/rlplanner_model.dir/model/constraints.cc.o"
  "CMakeFiles/rlplanner_model.dir/model/constraints.cc.o.d"
  "CMakeFiles/rlplanner_model.dir/model/interleaving_template.cc.o"
  "CMakeFiles/rlplanner_model.dir/model/interleaving_template.cc.o.d"
  "CMakeFiles/rlplanner_model.dir/model/item.cc.o"
  "CMakeFiles/rlplanner_model.dir/model/item.cc.o.d"
  "CMakeFiles/rlplanner_model.dir/model/plan.cc.o"
  "CMakeFiles/rlplanner_model.dir/model/plan.cc.o.d"
  "CMakeFiles/rlplanner_model.dir/model/prereq.cc.o"
  "CMakeFiles/rlplanner_model.dir/model/prereq.cc.o.d"
  "CMakeFiles/rlplanner_model.dir/model/topic_vector.cc.o"
  "CMakeFiles/rlplanner_model.dir/model/topic_vector.cc.o.d"
  "librlplanner_model.a"
  "librlplanner_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlplanner_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for rlplanner_model.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/builder.cc" "src/CMakeFiles/rlplanner_model.dir/model/builder.cc.o" "gcc" "src/CMakeFiles/rlplanner_model.dir/model/builder.cc.o.d"
  "/root/repo/src/model/catalog.cc" "src/CMakeFiles/rlplanner_model.dir/model/catalog.cc.o" "gcc" "src/CMakeFiles/rlplanner_model.dir/model/catalog.cc.o.d"
  "/root/repo/src/model/constraints.cc" "src/CMakeFiles/rlplanner_model.dir/model/constraints.cc.o" "gcc" "src/CMakeFiles/rlplanner_model.dir/model/constraints.cc.o.d"
  "/root/repo/src/model/interleaving_template.cc" "src/CMakeFiles/rlplanner_model.dir/model/interleaving_template.cc.o" "gcc" "src/CMakeFiles/rlplanner_model.dir/model/interleaving_template.cc.o.d"
  "/root/repo/src/model/item.cc" "src/CMakeFiles/rlplanner_model.dir/model/item.cc.o" "gcc" "src/CMakeFiles/rlplanner_model.dir/model/item.cc.o.d"
  "/root/repo/src/model/plan.cc" "src/CMakeFiles/rlplanner_model.dir/model/plan.cc.o" "gcc" "src/CMakeFiles/rlplanner_model.dir/model/plan.cc.o.d"
  "/root/repo/src/model/prereq.cc" "src/CMakeFiles/rlplanner_model.dir/model/prereq.cc.o" "gcc" "src/CMakeFiles/rlplanner_model.dir/model/prereq.cc.o.d"
  "/root/repo/src/model/topic_vector.cc" "src/CMakeFiles/rlplanner_model.dir/model/topic_vector.cc.o" "gcc" "src/CMakeFiles/rlplanner_model.dir/model/topic_vector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rlplanner_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlplanner_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlplanner_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

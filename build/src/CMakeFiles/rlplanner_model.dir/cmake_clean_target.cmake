file(REMOVE_RECURSE
  "librlplanner_model.a"
)

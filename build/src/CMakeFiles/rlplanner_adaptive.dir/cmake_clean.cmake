file(REMOVE_RECURSE
  "CMakeFiles/rlplanner_adaptive.dir/adaptive/adaptive_planner.cc.o"
  "CMakeFiles/rlplanner_adaptive.dir/adaptive/adaptive_planner.cc.o.d"
  "CMakeFiles/rlplanner_adaptive.dir/adaptive/feedback.cc.o"
  "CMakeFiles/rlplanner_adaptive.dir/adaptive/feedback.cc.o.d"
  "CMakeFiles/rlplanner_adaptive.dir/adaptive/interactive.cc.o"
  "CMakeFiles/rlplanner_adaptive.dir/adaptive/interactive.cc.o.d"
  "librlplanner_adaptive.a"
  "librlplanner_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlplanner_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

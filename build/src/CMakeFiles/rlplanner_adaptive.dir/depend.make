# Empty dependencies file for rlplanner_adaptive.
# This may be replaced when dependencies are built.

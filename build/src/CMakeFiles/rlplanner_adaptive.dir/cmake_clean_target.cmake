file(REMOVE_RECURSE
  "librlplanner_adaptive.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/rlplanner_core.dir/core/config.cc.o"
  "CMakeFiles/rlplanner_core.dir/core/config.cc.o.d"
  "CMakeFiles/rlplanner_core.dir/core/planner.cc.o"
  "CMakeFiles/rlplanner_core.dir/core/planner.cc.o.d"
  "CMakeFiles/rlplanner_core.dir/core/scoring.cc.o"
  "CMakeFiles/rlplanner_core.dir/core/scoring.cc.o.d"
  "CMakeFiles/rlplanner_core.dir/core/validation.cc.o"
  "CMakeFiles/rlplanner_core.dir/core/validation.cc.o.d"
  "librlplanner_core.a"
  "librlplanner_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlplanner_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "librlplanner_core.a"
)

# Empty dependencies file for rlplanner_core.
# This may be replaced when dependencies are built.

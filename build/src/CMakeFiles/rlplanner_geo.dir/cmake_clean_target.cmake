file(REMOVE_RECURSE
  "librlplanner_geo.a"
)

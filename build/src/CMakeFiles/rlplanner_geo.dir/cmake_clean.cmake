file(REMOVE_RECURSE
  "CMakeFiles/rlplanner_geo.dir/geo/latlng.cc.o"
  "CMakeFiles/rlplanner_geo.dir/geo/latlng.cc.o.d"
  "librlplanner_geo.a"
  "librlplanner_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlplanner_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

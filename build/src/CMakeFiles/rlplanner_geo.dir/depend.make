# Empty dependencies file for rlplanner_geo.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "librlplanner_rl.a"
)

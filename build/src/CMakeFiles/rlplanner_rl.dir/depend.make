# Empty dependencies file for rlplanner_rl.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rlplanner_rl.dir/rl/action_mask.cc.o"
  "CMakeFiles/rlplanner_rl.dir/rl/action_mask.cc.o.d"
  "CMakeFiles/rlplanner_rl.dir/rl/policy_inspector.cc.o"
  "CMakeFiles/rlplanner_rl.dir/rl/policy_inspector.cc.o.d"
  "CMakeFiles/rlplanner_rl.dir/rl/recommender.cc.o"
  "CMakeFiles/rlplanner_rl.dir/rl/recommender.cc.o.d"
  "CMakeFiles/rlplanner_rl.dir/rl/sarsa.cc.o"
  "CMakeFiles/rlplanner_rl.dir/rl/sarsa.cc.o.d"
  "CMakeFiles/rlplanner_rl.dir/rl/transfer.cc.o"
  "CMakeFiles/rlplanner_rl.dir/rl/transfer.cc.o.d"
  "librlplanner_rl.a"
  "librlplanner_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlplanner_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rl/action_mask.cc" "src/CMakeFiles/rlplanner_rl.dir/rl/action_mask.cc.o" "gcc" "src/CMakeFiles/rlplanner_rl.dir/rl/action_mask.cc.o.d"
  "/root/repo/src/rl/policy_inspector.cc" "src/CMakeFiles/rlplanner_rl.dir/rl/policy_inspector.cc.o" "gcc" "src/CMakeFiles/rlplanner_rl.dir/rl/policy_inspector.cc.o.d"
  "/root/repo/src/rl/recommender.cc" "src/CMakeFiles/rlplanner_rl.dir/rl/recommender.cc.o" "gcc" "src/CMakeFiles/rlplanner_rl.dir/rl/recommender.cc.o.d"
  "/root/repo/src/rl/sarsa.cc" "src/CMakeFiles/rlplanner_rl.dir/rl/sarsa.cc.o" "gcc" "src/CMakeFiles/rlplanner_rl.dir/rl/sarsa.cc.o.d"
  "/root/repo/src/rl/transfer.cc" "src/CMakeFiles/rlplanner_rl.dir/rl/transfer.cc.o" "gcc" "src/CMakeFiles/rlplanner_rl.dir/rl/transfer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rlplanner_mdp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlplanner_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlplanner_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlplanner_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlplanner_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

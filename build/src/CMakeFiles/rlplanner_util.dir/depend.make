# Empty dependencies file for rlplanner_util.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rlplanner_util.dir/util/bitset.cc.o"
  "CMakeFiles/rlplanner_util.dir/util/bitset.cc.o.d"
  "CMakeFiles/rlplanner_util.dir/util/csv.cc.o"
  "CMakeFiles/rlplanner_util.dir/util/csv.cc.o.d"
  "CMakeFiles/rlplanner_util.dir/util/rng.cc.o"
  "CMakeFiles/rlplanner_util.dir/util/rng.cc.o.d"
  "CMakeFiles/rlplanner_util.dir/util/stats.cc.o"
  "CMakeFiles/rlplanner_util.dir/util/stats.cc.o.d"
  "CMakeFiles/rlplanner_util.dir/util/status.cc.o"
  "CMakeFiles/rlplanner_util.dir/util/status.cc.o.d"
  "CMakeFiles/rlplanner_util.dir/util/string_util.cc.o"
  "CMakeFiles/rlplanner_util.dir/util/string_util.cc.o.d"
  "CMakeFiles/rlplanner_util.dir/util/table.cc.o"
  "CMakeFiles/rlplanner_util.dir/util/table.cc.o.d"
  "librlplanner_util.a"
  "librlplanner_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlplanner_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

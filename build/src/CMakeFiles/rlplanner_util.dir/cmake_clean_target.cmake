file(REMOVE_RECURSE
  "librlplanner_util.a"
)

# Empty compiler generated dependencies file for rlplanner_eval.
# This may be replaced when dependencies are built.

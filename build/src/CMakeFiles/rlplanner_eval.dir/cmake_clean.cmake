file(REMOVE_RECURSE
  "CMakeFiles/rlplanner_eval.dir/eval/convergence.cc.o"
  "CMakeFiles/rlplanner_eval.dir/eval/convergence.cc.o.d"
  "CMakeFiles/rlplanner_eval.dir/eval/experiment.cc.o"
  "CMakeFiles/rlplanner_eval.dir/eval/experiment.cc.o.d"
  "CMakeFiles/rlplanner_eval.dir/eval/report.cc.o"
  "CMakeFiles/rlplanner_eval.dir/eval/report.cc.o.d"
  "CMakeFiles/rlplanner_eval.dir/eval/sweep.cc.o"
  "CMakeFiles/rlplanner_eval.dir/eval/sweep.cc.o.d"
  "CMakeFiles/rlplanner_eval.dir/eval/transfer_study.cc.o"
  "CMakeFiles/rlplanner_eval.dir/eval/transfer_study.cc.o.d"
  "CMakeFiles/rlplanner_eval.dir/eval/user_study.cc.o"
  "CMakeFiles/rlplanner_eval.dir/eval/user_study.cc.o.d"
  "librlplanner_eval.a"
  "librlplanner_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlplanner_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/convergence.cc" "src/CMakeFiles/rlplanner_eval.dir/eval/convergence.cc.o" "gcc" "src/CMakeFiles/rlplanner_eval.dir/eval/convergence.cc.o.d"
  "/root/repo/src/eval/experiment.cc" "src/CMakeFiles/rlplanner_eval.dir/eval/experiment.cc.o" "gcc" "src/CMakeFiles/rlplanner_eval.dir/eval/experiment.cc.o.d"
  "/root/repo/src/eval/report.cc" "src/CMakeFiles/rlplanner_eval.dir/eval/report.cc.o" "gcc" "src/CMakeFiles/rlplanner_eval.dir/eval/report.cc.o.d"
  "/root/repo/src/eval/sweep.cc" "src/CMakeFiles/rlplanner_eval.dir/eval/sweep.cc.o" "gcc" "src/CMakeFiles/rlplanner_eval.dir/eval/sweep.cc.o.d"
  "/root/repo/src/eval/transfer_study.cc" "src/CMakeFiles/rlplanner_eval.dir/eval/transfer_study.cc.o" "gcc" "src/CMakeFiles/rlplanner_eval.dir/eval/transfer_study.cc.o.d"
  "/root/repo/src/eval/user_study.cc" "src/CMakeFiles/rlplanner_eval.dir/eval/user_study.cc.o" "gcc" "src/CMakeFiles/rlplanner_eval.dir/eval/user_study.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rlplanner_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlplanner_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlplanner_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlplanner_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlplanner_mdp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlplanner_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlplanner_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlplanner_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlplanner_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "librlplanner_eval.a"
)

# Empty compiler generated dependencies file for cmdp_test.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cmdp_test.cc" "tests/CMakeFiles/cmdp_test.dir/cmdp_test.cc.o" "gcc" "tests/CMakeFiles/cmdp_test.dir/cmdp_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rlplanner_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlplanner_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlplanner_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlplanner_adaptive.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlplanner_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlplanner_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlplanner_mdp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlplanner_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlplanner_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlplanner_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlplanner_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/cmdp_test.dir/cmdp_test.cc.o"
  "CMakeFiles/cmdp_test.dir/cmdp_test.cc.o.d"
  "cmdp_test"
  "cmdp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmdp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

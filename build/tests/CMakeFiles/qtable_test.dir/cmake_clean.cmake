file(REMOVE_RECURSE
  "CMakeFiles/qtable_test.dir/qtable_test.cc.o"
  "CMakeFiles/qtable_test.dir/qtable_test.cc.o.d"
  "qtable_test"
  "qtable_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qtable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

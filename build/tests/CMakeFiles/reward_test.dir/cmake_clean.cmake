file(REMOVE_RECURSE
  "CMakeFiles/reward_test.dir/reward_test.cc.o"
  "CMakeFiles/reward_test.dir/reward_test.cc.o.d"
  "reward_test"
  "reward_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reward_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

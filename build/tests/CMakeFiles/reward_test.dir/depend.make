# Empty dependencies file for reward_test.
# This may be replaced when dependencies are built.

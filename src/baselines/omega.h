#ifndef RLPLANNER_BASELINES_OMEGA_H_
#define RLPLANNER_BASELINES_OMEGA_H_

#include <cstdint>
#include <vector>

#include "model/constraints.h"
#include "model/plan.h"

namespace rlplanner::baselines {

/// The adapted OMEGA sequence-recommendation baseline (Section IV-A2).
///
/// OMEGA [Tschiatschek et al., AAAI'17] greedily selects edges of an item
/// graph to maximize a utility function over the induced sequence, after a
/// topological ordering. It is not designed for constraints, so the paper
/// adapts it into a two-step process:
///  1. a first sub-sequence is generated greedily to satisfy the gap
///     constraint (antecedents in topological order);
///  2. a second sub-sequence is produced by OMEGA proper to optimize the
///     soft constraint, using a redesigned co-utility matrix that captures
///     "the total number of topics covered by i and j";
/// and the two are concatenated to meet the length constraint.
///
/// Faithful to the paper's findings, this adaptation still ignores the
/// primary/secondary split, the epsilon-gated topic coverage, and the
/// interleaving template, so it usually violates `P_hard` and scores 0.
class Omega {
 public:
  /// `instance` must outlive the baseline.
  explicit Omega(const model::TaskInstance& instance);

  /// Runs the two-step adapted OMEGA and returns the concatenated plan.
  model::Plan BuildPlan(std::uint64_t seed) const;

  /// The edge-based greedy variant (Benouaret et al., DEXA'19 — cited by
  /// the paper as an efficiency improvement over OMEGA): instead of
  /// extending a single walk from its last node, it repeatedly commits the
  /// globally highest-utility edge, stitching path fragments together, and
  /// then applies the same two-step gap-prefix adaptation. Like OMEGA it
  /// is constraint-oblivious and usually violates `P_hard`.
  model::Plan BuildPlanEdgeBased(std::uint64_t seed) const;

  /// The redesigned utility matrix entry for a pair of items:
  /// |T_i ∪ T_j| weighted by overlap with the ideal topic vector.
  double PairUtility(model::ItemId i, model::ItemId j) const;

  /// Topological order of the catalog under the prerequisite DAG (items
  /// before their dependents); cycles are broken arbitrarily by id.
  std::vector<model::ItemId> TopologicalOrder() const;

 private:
  // Step 1: the gap-satisfying antecedent prefix.
  std::vector<model::ItemId> GapPrefix() const;
  // Step 2: greedy edge-selection sequence maximizing PairUtility.
  std::vector<model::ItemId> UtilitySequence(
      const std::vector<model::ItemId>& exclude, std::size_t length,
      std::uint64_t seed) const;

  const model::TaskInstance* instance_;
};

}  // namespace rlplanner::baselines

#endif  // RLPLANNER_BASELINES_OMEGA_H_

#include "baselines/gold.h"

#include <algorithm>
#include <vector>

#include "core/validation.h"
#include "mdp/episode_state.h"
#include "mdp/reward.h"
#include "model/topic_vector.h"
#include "util/rng.h"

namespace rlplanner::baselines {

namespace {

// Expert preference used to order candidates at each slot.
double Desirability(const model::TaskInstance& instance,
                    const mdp::EpisodeState& state, const model::Item& item) {
  if (instance.catalog->domain() == model::Domain::kTrip) {
    return item.popularity;
  }
  double score = static_cast<double>(model::NewlyCoveredIdealTopics(
      state.covered_topics(), item.topics, instance.soft.ideal_topics));
  // An advisor schedules prerequisites of still-pending primary items early
  // ("take Linear Algebra before Machine Learning").
  for (const model::Item& other : instance.catalog->items()) {
    if (other.type != model::ItemType::kPrimary || state.Contains(other.id)) {
      continue;
    }
    for (const auto& group : other.prereqs.groups()) {
      for (model::ItemId member : group) {
        if (member == item.id) score += 5.0;
      }
    }
  }
  // Strongly prefer categories still below their hard minimum so the
  // search does not dead-end on the Univ-2 sub-discipline requirements.
  const auto& minima = instance.hard.category_min_counts;
  if (!minima.empty() && item.category >= 0 &&
      static_cast<std::size_t>(item.category) < minima.size() &&
      state.CategoryCount(item.category) < minima[item.category]) {
    score += 100.0;
  }
  return score;
}

// Hard admissibility of `item` at the next slot: correct type, unchosen,
// prerequisite gap satisfied *at placement time*, theme gap, trip budgets.
bool Admissible(const mdp::RewardFunction& reward,
                const mdp::EpisodeState& state, const model::Item& item,
                model::ItemType slot_type) {
  if (item.type != slot_type) return false;
  if (!reward.IsFeasible(state, item.id)) return false;
  return reward.PrerequisiteReward(state, item.id) == 1;
}

struct SearchContext {
  const model::TaskInstance* instance;
  const mdp::RewardFunction* reward;
  const model::TypeSequence* slots;
  std::size_t max_nodes;
  std::size_t nodes = 0;
  util::Rng* rng;
};

bool FillSlots(SearchContext& ctx, mdp::EpisodeState& state,
               std::vector<model::ItemId>& chosen) {
  if (chosen.size() == ctx.slots->size()) return true;
  if (++ctx.nodes > ctx.max_nodes) return false;

  const model::ItemType slot_type = (*ctx.slots)[chosen.size()];
  std::vector<const model::Item*> candidates;
  for (const model::Item& item : ctx.instance->catalog->items()) {
    if (Admissible(*ctx.reward, state, item, slot_type)) {
      candidates.push_back(&item);
    }
  }
  // Best candidates first; jitter breaks ties so distinct seeds yield the
  // distinct handcrafted gold plans the user studies rate.
  std::vector<double> keys(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    keys[i] = Desirability(*ctx.instance, state, *candidates[i]) +
              ctx.rng->NextDouble() * 1e-3;
  }
  std::vector<std::size_t> order(candidates.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return keys[a] > keys[b]; });

  for (std::size_t rank : order) {
    const model::Item* item = candidates[rank];
    mdp::EpisodeState next_state = state;  // copy: cheap at these sizes
    next_state.Add(item->id);
    chosen.push_back(item->id);
    if (FillSlots(ctx, next_state, chosen)) {
      state = std::move(next_state);
      return true;
    }
    chosen.pop_back();
    if (ctx.nodes > ctx.max_nodes) return false;
  }
  return false;
}

}  // namespace

util::Result<model::Plan> BuildGoldStandard(
    const model::TaskInstance& instance, std::uint64_t seed,
    std::size_t max_nodes) {
  RLP_RETURN_IF_ERROR(instance.Validate());
  mdp::RewardWeights weights;  // only feasibility/prereq components are used
  if (!instance.catalog->category_names().empty()) {
    const std::size_t c = instance.catalog->category_names().size();
    weights.category_weights.assign(c, 1.0 / static_cast<double>(c));
  }
  const mdp::RewardFunction reward(instance, weights);
  util::Rng rng(seed);

  for (const model::TypeSequence& slots :
       instance.soft.interleaving.permutations()) {
    SearchContext ctx{&instance, &reward, &slots, max_nodes, 0, &rng};
    mdp::EpisodeState state(instance);
    std::vector<model::ItemId> chosen;
    if (FillSlots(ctx, state, chosen)) {
      model::Plan plan(chosen);
      // The DFS enforces type/gap/budget; double-check the rest (category
      // minima etc.) and only accept fully valid plans.
      if (core::ValidatePlan(instance, plan).valid) return plan;
    }
  }
  return util::Status::NotFound(
      "no gold-standard plan exists under any template permutation");
}

}  // namespace rlplanner::baselines

#include "baselines/omega.h"

#include <algorithm>
#include <queue>
#include <vector>

#include "util/rng.h"

namespace rlplanner::baselines {

Omega::Omega(const model::TaskInstance& instance) : instance_(&instance) {}

double Omega::PairUtility(model::ItemId i, model::ItemId j) const {
  const model::Catalog& catalog = *instance_->catalog;
  const model::TopicVector& ti = catalog.item(i).topics;
  const model::TopicVector& tj = catalog.item(j).topics;
  // |T_i ∪ T_j|: "the total number of topics covered by i and j".
  const double union_size = static_cast<double>(
      ti.Count() + tj.Count() - ti.IntersectCount(tj));
  // Mild preference for pairs that touch the ideal vector, so the soft
  // constraint is "optimized" as the adaptation requires.
  const double ideal_touch = static_cast<double>(
      ti.IntersectCount(instance_->soft.ideal_topics) +
      tj.IntersectCount(instance_->soft.ideal_topics));
  return union_size + 0.5 * ideal_touch;
}

std::vector<model::ItemId> Omega::TopologicalOrder() const {
  const model::Catalog& catalog = *instance_->catalog;
  const std::size_t n = catalog.size();
  // Edge u -> v when u appears in v's prerequisite expression.
  std::vector<std::vector<model::ItemId>> dependents(n);
  std::vector<int> in_degree(n, 0);
  for (const model::Item& item : catalog.items()) {
    for (model::ItemId pre : item.prereqs.ReferencedItems()) {
      dependents[pre].push_back(item.id);
      in_degree[item.id] += 1;
    }
  }
  std::priority_queue<model::ItemId, std::vector<model::ItemId>,
                      std::greater<>>
      ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (in_degree[i] == 0) ready.push(static_cast<model::ItemId>(i));
  }
  std::vector<model::ItemId> order;
  order.reserve(n);
  std::vector<char> emitted(n, 0);
  while (!ready.empty()) {
    const model::ItemId u = ready.top();
    ready.pop();
    order.push_back(u);
    emitted[u] = 1;
    for (model::ItemId v : dependents[u]) {
      if (--in_degree[v] == 0) ready.push(v);
    }
  }
  // Cycle fallback: append leftovers by id (synthetic catalogs are acyclic,
  // but user-supplied ones may not be).
  for (std::size_t i = 0; i < n; ++i) {
    if (!emitted[i]) order.push_back(static_cast<model::ItemId>(i));
  }
  return order;
}

std::vector<model::ItemId> Omega::GapPrefix() const {
  // Items that serve as antecedents, in topological order, so that each
  // appears `gap` slots before any dependent that ends up in the plan.
  const model::Catalog& catalog = *instance_->catalog;
  std::vector<char> is_antecedent(catalog.size(), 0);
  for (const model::Item& item : catalog.items()) {
    for (model::ItemId pre : item.prereqs.ReferencedItems()) {
      is_antecedent[pre] = 1;
    }
  }
  std::vector<model::ItemId> prefix;
  for (model::ItemId id : TopologicalOrder()) {
    if (is_antecedent[id]) prefix.push_back(id);
  }
  // Keep the prefix at no more than half the plan so step 2 contributes.
  const std::size_t cap =
      std::max<std::size_t>(1, instance_->hard.TotalItems() / 2);
  if (prefix.size() > cap) prefix.resize(cap);
  return prefix;
}

std::vector<model::ItemId> Omega::UtilitySequence(
    const std::vector<model::ItemId>& exclude, std::size_t length,
    std::uint64_t seed) const {
  const model::Catalog& catalog = *instance_->catalog;
  const std::size_t n = catalog.size();
  std::vector<char> used(n, 0);
  for (model::ItemId id : exclude) used[id] = 1;
  util::Rng rng(seed);

  std::vector<model::ItemId> sequence;
  if (length == 0) return sequence;

  // Start from the unused item with the largest ideal-topic overlap.
  model::ItemId current = -1;
  std::size_t best_overlap = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (used[i]) continue;
    const std::size_t overlap = catalog.item(static_cast<model::ItemId>(i))
                                    .topics.IntersectCount(
                                        instance_->soft.ideal_topics);
    if (current < 0 || overlap > best_overlap) {
      current = static_cast<model::ItemId>(i);
      best_overlap = overlap;
    }
  }
  if (current < 0) return sequence;
  sequence.push_back(current);
  used[current] = 1;

  // Greedy edge selection: repeatedly take the highest-utility edge out of
  // the current item (random tie-break).
  while (sequence.size() < length) {
    std::vector<model::ItemId> best;
    double best_utility = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      const auto candidate = static_cast<model::ItemId>(i);
      const double utility = PairUtility(current, candidate);
      if (best.empty() || utility > best_utility + 1e-12) {
        best.assign(1, candidate);
        best_utility = utility;
      } else if (utility >= best_utility - 1e-12) {
        best.push_back(candidate);
      }
    }
    if (best.empty()) break;
    current = best[rng.NextIndex(best.size())];
    sequence.push_back(current);
    used[current] = 1;
  }
  return sequence;
}

model::Plan Omega::BuildPlan(std::uint64_t seed) const {
  const bool is_trip =
      instance_->catalog->domain() == model::Domain::kTrip;
  const std::vector<model::ItemId> prefix = GapPrefix();

  std::size_t target_length =
      static_cast<std::size_t>(instance_->hard.TotalItems());
  model::Plan plan;
  double time_used = 0.0;
  auto try_append = [&](model::ItemId id) {
    const model::Item& item = instance_->catalog->item(id);
    if (is_trip &&
        time_used + item.credits > instance_->hard.min_credits + 1e-9) {
      return false;
    }
    plan.Append(id);
    time_used += item.credits;
    return true;
  };

  for (model::ItemId id : prefix) {
    if (plan.size() >= target_length) break;
    try_append(id);
  }
  const std::vector<model::ItemId> suffix = UtilitySequence(
      plan.items(), target_length - plan.size(), seed);
  for (model::ItemId id : suffix) {
    if (plan.size() >= target_length) break;
    if (!try_append(id) && is_trip) break;
  }
  return plan;
}

model::Plan Omega::BuildPlanEdgeBased(std::uint64_t seed) const {
  const model::Catalog& catalog = *instance_->catalog;
  const std::size_t n = catalog.size();
  const bool is_trip = catalog.domain() == model::Domain::kTrip;
  const std::size_t target_length =
      static_cast<std::size_t>(instance_->hard.TotalItems());
  util::Rng rng(seed);

  // Union-find-ish fragment bookkeeping: every item starts as its own
  // fragment; committing an edge (u, v) requires u to be some fragment's
  // tail and v some *other* fragment's head.
  std::vector<model::ItemId> next(n, -1);
  std::vector<model::ItemId> prev(n, -1);
  auto head_of = [&](model::ItemId item) {
    while (prev[item] >= 0) item = prev[item];
    return item;
  };

  // All edges sorted by utility descending (jittered so distinct seeds
  // explore distinct tie orders, as the random tie-break of the original).
  struct Edge {
    model::ItemId from;
    model::ItemId to;
    double utility;
  };
  std::vector<Edge> edges;
  edges.reserve(n * (n - 1));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      edges.push_back({static_cast<model::ItemId>(i),
                       static_cast<model::ItemId>(j),
                       PairUtility(static_cast<model::ItemId>(i),
                                   static_cast<model::ItemId>(j)) +
                           rng.NextDouble() * 1e-6});
    }
  }
  std::sort(edges.begin(), edges.end(),
            [](const Edge& a, const Edge& b) { return a.utility > b.utility; });

  // Commit edges until one fragment reaches the target length.
  std::size_t longest = 1;
  model::ItemId longest_head = 0;
  for (const Edge& edge : edges) {
    if (longest >= target_length) break;
    if (next[edge.from] >= 0 || prev[edge.to] >= 0) continue;  // not tail/head
    if (head_of(edge.from) == edge.to) continue;               // would cycle
    next[edge.from] = edge.to;
    prev[edge.to] = edge.from;
    // Measure the merged fragment.
    const model::ItemId head = head_of(edge.from);
    std::size_t length = 1;
    for (model::ItemId item = head; next[item] >= 0; item = next[item]) {
      ++length;
    }
    if (length > longest) {
      longest = length;
      longest_head = head;
    }
  }

  // Assemble: gap prefix first (step 1 of the adaptation), then the best
  // fragment, truncated to the length / time budget.
  model::Plan plan;
  double time_used = 0.0;
  auto try_append = [&](model::ItemId id) {
    if (plan.Contains(id)) return;
    const model::Item& item = catalog.item(id);
    if (is_trip &&
        time_used + item.credits > instance_->hard.min_credits + 1e-9) {
      return;
    }
    plan.Append(id);
    time_used += item.credits;
  };
  for (model::ItemId id : GapPrefix()) {
    if (plan.size() >= target_length / 2) break;
    try_append(id);
  }
  for (model::ItemId item = longest_head;
       item >= 0 && plan.size() < target_length; item = next[item]) {
    try_append(item);
  }
  // Top up from the plain utility sequence if the fragment fell short.
  if (plan.size() < target_length) {
    for (model::ItemId id :
         UtilitySequence(plan.items(), target_length - plan.size(), seed)) {
      if (plan.size() >= target_length) break;
      try_append(id);
    }
  }
  return plan;
}

}  // namespace rlplanner::baselines

#ifndef RLPLANNER_BASELINES_EDA_H_
#define RLPLANNER_BASELINES_EDA_H_

#include <cstdint>

#include "mdp/reward.h"
#include "model/plan.h"

namespace rlplanner::baselines {

/// The adapted next-step EDA baseline (Section IV-A2): "a greedy method
/// that chooses the action with the highest reward based on Equation 2 in
/// each step. If two actions provide the same result, one will be picked at
/// random."
///
/// EDA is model-free: there is no learning phase, no N/alpha/gamma/s_1, and
/// no lookahead, which is exactly why it frequently violates the hard
/// constraints the paper reports it failing.
class EdaGreedy {
 public:
  /// `instance` and `weights` must outlive the baseline.
  EdaGreedy(const model::TaskInstance& instance,
            const mdp::RewardWeights& weights);

  /// Builds a plan greedily. The first item is chosen greedily as well
  /// (highest Eq. 2 reward from the empty session). Courses stop at
  /// H = #primary + #secondary items; trips stop when the time budget is
  /// exhausted.
  model::Plan BuildPlan(std::uint64_t seed) const;

 private:
  const model::TaskInstance* instance_;
  const mdp::RewardWeights* weights_;
};

}  // namespace rlplanner::baselines

#endif  // RLPLANNER_BASELINES_EDA_H_

#include "baselines/eda.h"

#include <vector>

#include "mdp/episode_state.h"
#include "util/rng.h"

namespace rlplanner::baselines {

EdaGreedy::EdaGreedy(const model::TaskInstance& instance,
                     const mdp::RewardWeights& weights)
    : instance_(&instance), weights_(&weights) {}

model::Plan EdaGreedy::BuildPlan(std::uint64_t seed) const {
  const mdp::RewardFunction reward(*instance_, *weights_);
  util::Rng rng(seed);
  const std::size_t n = instance_->catalog->size();
  const int horizon = instance_->catalog->domain() == model::Domain::kTrip
                          ? static_cast<int>(n)
                          : instance_->hard.TotalItems();

  mdp::EpisodeState state(*instance_);
  while (static_cast<int>(state.Length()) < horizon) {
    std::vector<model::ItemId> best;
    double best_value = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto item = static_cast<model::ItemId>(i);
      if (!reward.IsFeasible(state, item)) continue;
      const double value = reward.Reward(state, item);
      if (best.empty() || value > best_value + 1e-12) {
        best.assign(1, item);
        best_value = value;
      } else if (value >= best_value - 1e-12) {
        best.push_back(item);
      }
    }
    if (best.empty()) break;
    state.Add(best[rng.NextIndex(best.size())]);
  }
  return state.ToPlan();
}

}  // namespace rlplanner::baselines

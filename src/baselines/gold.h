#ifndef RLPLANNER_BASELINES_GOLD_H_
#define RLPLANNER_BASELINES_GOLD_H_

#include <cstdint>

#include "model/constraints.h"
#include "model/plan.h"
#include "util/status.h"

namespace rlplanner::baselines {

/// Constructs the "fully manual gold standard" (Section IV-A2) for an
/// instance. The paper's gold standards are handcrafted by advisors/agents;
/// since the algorithms only ever see the finished sequences, we reproduce
/// them with a constrained depth-first search that emulates the expert:
/// - the plan follows one template permutation slot-by-slot (so its score is
///   exactly H, matching the paper's stated gold scores 10 and 15);
/// - every hard constraint (prerequisite gap, split, budget, theme gap,
///   distance) holds by construction;
/// - among admissible items the expert prefers high ideal-topic gain
///   (courses) or high popularity (trips).
///
/// Fails with NotFound when no valid plan exists under any permutation
/// within the search budget.
util::Result<model::Plan> BuildGoldStandard(
    const model::TaskInstance& instance, std::uint64_t seed = 7,
    std::size_t max_nodes = 200000);

}  // namespace rlplanner::baselines

#endif  // RLPLANNER_BASELINES_GOLD_H_

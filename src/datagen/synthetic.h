#ifndef RLPLANNER_DATAGEN_SYNTHETIC_H_
#define RLPLANNER_DATAGEN_SYNTHETIC_H_

#include <cstdint>

#include "datagen/dataset.h"

namespace rlplanner::datagen {

/// Parameters for a random task instance of arbitrary size. Used by the
/// property-test suites (sweeps over shapes) and the scalability benchmarks
/// (catalogs far larger than the paper's programs).
struct SyntheticSpec {
  model::Domain domain = model::Domain::kCourse;
  int num_items = 40;
  int vocab_size = 80;
  /// Fraction of items marked primary.
  double primary_fraction = 0.3;
  /// Topics assigned per item (at least 1).
  int topics_per_item = 3;
  /// Probability that an item gains a prerequisite group over earlier items.
  double prereq_probability = 0.2;
  /// Hard-constraint split of the generated instance.
  int num_primary_required = 5;
  int num_secondary_required = 5;
  int gap = 3;
  /// Number of template permutations in IT.
  int num_templates = 3;
  /// Trip domain only: time budget hours; items get 0.5..2.0 h durations.
  double time_budget = 6.0;
  std::uint64_t seed = 42;
};

/// Generates a random but internally consistent dataset: prerequisites only
/// reference earlier items (acyclic), template permutations match the
/// required split, every item covers at least one topic, and the ideal
/// vector is the full vocabulary.
Dataset GenerateSynthetic(const SyntheticSpec& spec);

}  // namespace rlplanner::datagen

#endif  // RLPLANNER_DATAGEN_SYNTHETIC_H_

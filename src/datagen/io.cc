#include "datagen/io.h"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <fstream>
#include <sstream>

#include "util/csv.h"
#include "util/string_util.h"

namespace rlplanner::datagen {

namespace {

constexpr char kVocabularyRow[] = "__vocabulary__";
constexpr char kCategoriesRow[] = "__categories__";

std::string RenderPrereqs(const model::Catalog& catalog,
                          const model::PrereqExpr& prereqs) {
  std::vector<std::string> groups;
  for (const auto& group : prereqs.groups()) {
    std::vector<std::string> codes;
    for (model::ItemId id : group) codes.push_back(catalog.item(id).code);
    groups.push_back(util::Join(codes, " OR "));
  }
  return util::Join(groups, " AND ");
}

util::Result<model::PrereqExpr> ParsePrereqs(const model::Catalog& catalog,
                                             const std::string& text) {
  model::PrereqExpr expr;
  if (util::StripWhitespace(text).empty()) return expr;
  // " AND " separates groups; " OR " separates members.
  std::vector<std::string> groups;
  std::string remaining = text;
  std::size_t pos;
  while ((pos = remaining.find(" AND ")) != std::string::npos) {
    groups.push_back(remaining.substr(0, pos));
    remaining = remaining.substr(pos + 5);
  }
  groups.push_back(remaining);
  for (const std::string& group_text : groups) {
    std::vector<model::ItemId> members;
    std::string rest = group_text;
    for (;;) {
      const std::size_t or_pos = rest.find(" OR ");
      const std::string code(util::StripWhitespace(
          or_pos == std::string::npos ? rest : rest.substr(0, or_pos)));
      auto found = catalog.FindByCode(code);
      if (!found.ok()) return found.status();
      members.push_back(found.value());
      if (or_pos == std::string::npos) break;
      rest = rest.substr(or_pos + 4);
    }
    expr.AddGroup(std::move(members));
  }
  return expr;
}

std::string RenderTopics(const model::Catalog& catalog,
                         const model::TopicVector& topics) {
  std::vector<std::string> names;
  for (std::size_t t = 0; t < topics.size(); ++t) {
    if (topics.Test(t)) names.push_back(catalog.vocabulary()[t]);
  }
  return util::Join(names, ";");
}

}  // namespace

std::string SerializeCatalog(const model::Catalog& catalog) {
  util::CsvDocument doc;
  doc.header = {"code", "name",   "type", "category", "credits", "prereqs",
                "topics", "lat", "lng",  "popularity", "theme"};
  auto blank_row = [&doc]() {
    return std::vector<std::string>(doc.header.size());
  };

  {
    auto row = blank_row();
    row[0] = kVocabularyRow;
    std::vector<std::string> vocab = catalog.vocabulary();
    row[6] = util::Join(vocab, ";");
    doc.rows.push_back(std::move(row));
  }
  {
    auto row = blank_row();
    row[0] = kCategoriesRow;
    row[6] = util::Join(catalog.category_names(), ";");
    doc.rows.push_back(std::move(row));
  }

  for (const model::Item& item : catalog.items()) {
    auto row = blank_row();
    row[0] = item.code;
    row[1] = item.name;
    row[2] = item.type == model::ItemType::kPrimary ? "primary" : "secondary";
    row[3] = std::to_string(item.category);
    row[4] = util::FormatDouble(item.credits, 4);
    row[5] = RenderPrereqs(catalog, item.prereqs);
    row[6] = RenderTopics(catalog, item.topics);
    row[7] = util::FormatDouble(item.location.lat, 6);
    row[8] = util::FormatDouble(item.location.lng, 6);
    row[9] = util::FormatDouble(item.popularity, 3);
    row[10] = std::to_string(item.primary_theme);
    doc.rows.push_back(std::move(row));
  }
  return util::WriteCsv(doc);
}

util::Result<model::Catalog> ParseCatalog(model::Domain domain,
                                          const std::string& csv_text) {
  auto parsed = util::ParseCsv(csv_text);
  if (!parsed.ok()) return parsed.status();
  const util::CsvDocument& doc = parsed.value();
  if (doc.rows.size() < 2 || doc.rows[0][0] != kVocabularyRow ||
      doc.rows[1][0] != kCategoriesRow) {
    return util::Status::InvalidArgument(
        "catalog CSV must start with __vocabulary__ and __categories__ rows");
  }
  std::vector<std::string> vocabulary;
  if (!doc.rows[0][6].empty()) {
    vocabulary = util::Split(doc.rows[0][6], ';');
  }
  model::Catalog catalog(domain, vocabulary);
  if (!doc.rows[1][6].empty()) {
    catalog.set_category_names(util::Split(doc.rows[1][6], ';'));
  }

  // First pass: items without prereqs (codes may reference later rows).
  for (std::size_t r = 2; r < doc.rows.size(); ++r) {
    const auto& row = doc.rows[r];
    model::Item item;
    item.code = row[0];
    item.name = row[1];
    if (row[2] != "primary" && row[2] != "secondary") {
      return util::Status::InvalidArgument("bad type in row for " + row[0]);
    }
    item.type = row[2] == "primary" ? model::ItemType::kPrimary
                                    : model::ItemType::kSecondary;
    item.category = std::atoi(row[3].c_str());
    item.credits = std::strtod(row[4].c_str(), nullptr);
    model::TopicVector topics(catalog.vocabulary_size());
    if (!row[6].empty()) {
      for (const std::string& name : util::Split(row[6], ';')) {
        const int id = catalog.TopicId(name);
        if (id < 0) {
          return util::Status::InvalidArgument("unknown topic: " + name);
        }
        topics.Set(static_cast<std::size_t>(id));
      }
    }
    item.topics = std::move(topics);
    item.location.lat = std::strtod(row[7].c_str(), nullptr);
    item.location.lng = std::strtod(row[8].c_str(), nullptr);
    item.popularity = std::strtod(row[9].c_str(), nullptr);
    item.primary_theme = std::atoi(row[10].c_str());
    auto added = catalog.AddItem(std::move(item));
    if (!added.ok()) return added.status();
  }

  // Second pass: prereqs, rebuilt into a fresh catalog.
  model::Catalog final_catalog(domain, vocabulary);
  final_catalog.set_category_names(catalog.category_names());
  for (std::size_t r = 2; r < doc.rows.size(); ++r) {
    model::Item item = catalog.item(static_cast<model::ItemId>(r - 2));
    auto prereqs = ParsePrereqs(catalog, doc.rows[r][5]);
    if (!prereqs.ok()) return prereqs.status();
    item.prereqs = std::move(prereqs).value();
    auto added = final_catalog.AddItem(std::move(item));
    if (!added.ok()) return added.status();
  }
  return final_catalog;
}

std::string SerializeDataset(const Dataset& dataset) {
  // Reuse the catalog serialization and prepend three reserved rows.
  auto parsed = util::ParseCsv(SerializeCatalog(dataset.catalog));
  util::CsvDocument doc = std::move(parsed).value();
  auto blank_row = [&doc]() {
    return std::vector<std::string>(doc.header.size());
  };

  std::vector<std::vector<std::string>> extra;
  {
    auto row = blank_row();
    row[0] = "__meta__";
    row[1] = dataset.name;
    row[2] = dataset.catalog.domain() == model::Domain::kTrip ? "trip"
                                                              : "course";
    row[6] = dataset.catalog.empty()
                 ? ""
                 : dataset.catalog.item(dataset.default_start).code;
    extra.push_back(std::move(row));
  }
  {
    const model::HardConstraints& hard = dataset.hard;
    auto row = blank_row();
    row[0] = "__hard__";
    row[1] = util::FormatDouble(hard.min_credits, 4);
    row[2] = std::to_string(hard.num_primary);
    row[3] = std::to_string(hard.num_secondary);
    row[4] = std::to_string(hard.gap);
    row[5] = std::isfinite(hard.distance_threshold_km)
                 ? util::FormatDouble(hard.distance_threshold_km, 4)
                 : "inf";
    std::vector<std::string> minima;
    for (int m : hard.category_min_counts) minima.push_back(std::to_string(m));
    row[6] = util::Join(minima, ";");
    row[7] = hard.no_consecutive_same_theme ? "1" : "0";
    extra.push_back(std::move(row));
  }
  {
    auto row = blank_row();
    row[0] = "__soft__";
    std::vector<std::string> templates;
    for (const auto& permutation :
         dataset.soft.interleaving.permutations()) {
      templates.push_back(
          model::InterleavingTemplate::ToCompactString(permutation));
    }
    row[1] = util::Join(templates, ";");
    row[6] = RenderTopics(dataset.catalog, dataset.soft.ideal_topics);
    extra.push_back(std::move(row));
  }
  doc.rows.insert(doc.rows.begin(), extra.begin(), extra.end());
  return util::WriteCsv(doc);
}

util::Result<Dataset> ParseDataset(const std::string& csv_text) {
  auto parsed = util::ParseCsv(csv_text);
  if (!parsed.ok()) return parsed.status();
  util::CsvDocument doc = std::move(parsed).value();
  if (doc.rows.size() < 3 || doc.rows[0][0] != "__meta__" ||
      doc.rows[1][0] != "__hard__" || doc.rows[2][0] != "__soft__") {
    return util::Status::InvalidArgument(
        "dataset CSV must start with __meta__, __hard__, __soft__ rows");
  }
  const std::vector<std::string> meta = doc.rows[0];
  const std::vector<std::string> hard_row = doc.rows[1];
  const std::vector<std::string> soft_row = doc.rows[2];

  const model::Domain domain =
      meta[2] == "trip" ? model::Domain::kTrip : model::Domain::kCourse;
  if (meta[2] != "trip" && meta[2] != "course") {
    return util::Status::InvalidArgument("unknown domain: " + meta[2]);
  }

  // Strip the three dataset rows, re-serialize the remainder as a catalog
  // document, and reuse the catalog parser.
  util::CsvDocument catalog_doc;
  catalog_doc.header = doc.header;
  catalog_doc.rows.assign(doc.rows.begin() + 3, doc.rows.end());
  auto catalog = ParseCatalog(domain, util::WriteCsv(catalog_doc));
  if (!catalog.ok()) return catalog.status();

  Dataset dataset;
  dataset.name = meta[1];
  dataset.catalog = std::move(catalog).value();

  dataset.hard.min_credits = std::strtod(hard_row[1].c_str(), nullptr);
  dataset.hard.num_primary = std::atoi(hard_row[2].c_str());
  dataset.hard.num_secondary = std::atoi(hard_row[3].c_str());
  dataset.hard.gap = std::atoi(hard_row[4].c_str());
  dataset.hard.distance_threshold_km =
      hard_row[5] == "inf" ? std::numeric_limits<double>::infinity()
                           : std::strtod(hard_row[5].c_str(), nullptr);
  if (!hard_row[6].empty()) {
    for (const std::string& m : util::Split(hard_row[6], ';')) {
      dataset.hard.category_min_counts.push_back(std::atoi(m.c_str()));
    }
  }
  dataset.hard.no_consecutive_same_theme = hard_row[7] == "1";

  if (!soft_row[1].empty()) {
    auto templates = model::InterleavingTemplate::FromStrings(
        util::Split(soft_row[1], ';'));
    if (!templates.ok()) return templates.status();
    dataset.soft.interleaving = std::move(templates).value();
  }
  model::TopicVector ideal(dataset.catalog.vocabulary_size());
  if (!soft_row[6].empty()) {
    for (const std::string& name : util::Split(soft_row[6], ';')) {
      const int id = dataset.catalog.TopicId(name);
      if (id < 0) {
        return util::Status::InvalidArgument("unknown ideal topic: " + name);
      }
      ideal.Set(static_cast<std::size_t>(id));
    }
  }
  dataset.soft.ideal_topics = std::move(ideal);

  if (!meta[6].empty()) {
    auto start = dataset.catalog.FindByCode(meta[6]);
    if (!start.ok()) return start.status();
    dataset.default_start = start.value();
  }
  return dataset;
}

util::Status SaveDatasetCsv(const Dataset& dataset,
                            const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return util::Status::Internal("cannot open for write: " + path);
  out << SerializeDataset(dataset);
  if (!out) return util::Status::Internal("write failed: " + path);
  return util::Status::Ok();
}

util::Result<Dataset> LoadDatasetCsv(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Status::NotFound("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseDataset(buffer.str());
}

util::Status SaveCatalogCsv(const model::Catalog& catalog,
                            const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return util::Status::Internal("cannot open for write: " + path);
  out << SerializeCatalog(catalog);
  if (!out) return util::Status::Internal("write failed: " + path);
  return util::Status::Ok();
}

util::Result<model::Catalog> LoadCatalogCsv(model::Domain domain,
                                            const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Status::NotFound("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCatalog(domain, buffer.str());
}

}  // namespace rlplanner::datagen

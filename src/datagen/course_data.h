#ifndef RLPLANNER_DATAGEN_COURSE_DATA_H_
#define RLPLANNER_DATAGEN_COURSE_DATA_H_

#include "datagen/dataset.h"

namespace rlplanner::datagen {

/// The Univ-1 (NJIT) M.S. programs of Section IV-A1. Each builds a
/// deterministic synthetic catalog with the paper's program size and topic
/// vocabulary size; the DS-CT and CS programs share the course codes of the
/// paper's own Table VI so policy transfer between them is meaningful.
///
/// Program shapes (paper / here):
///   DS-CT:          31 courses, 60 topics
///   Cybersecurity:  30 courses, 61 topics
///   CS:             32 courses, 100 topics
/// Hard constraints: 30 credit hours (10 courses of 3), 5 core + 5
/// elective, gap = 3 (prerequisite at least one semester earlier).
Dataset MakeUniv1DsCt();
Dataset MakeUniv1Cybersecurity();
Dataset MakeUniv1Cs();

/// The Univ-2 (Stanford) M.S. Data Science program: 36 courses, 73 topics,
/// six sub-discipline categories (Mathematical & Statistical Foundations,
/// Experimentation, Scientific Computing, Applied ML & DS, Practical
/// Component, Elective) with per-category unit minima; 45 units = 15
/// courses, 9 primary + 6 secondary, gap = 3.
Dataset MakeUniv2Ds();

/// The six-course toy catalog of the paper's Table II, verbatim (13 topics,
/// Example-1 ideal vector and interleaving template). Used by quickstart
/// and by the unit tests that check the paper's worked examples.
Dataset MakeTableIIToy();

}  // namespace rlplanner::datagen

#endif  // RLPLANNER_DATAGEN_COURSE_DATA_H_

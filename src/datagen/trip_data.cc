#include "datagen/trip_data.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <string>
#include <vector>

#include "util/rng.h"

namespace rlplanner::datagen {

namespace {

// A handcrafted landmark; the remainder of each city is generated.
struct PoiSpec {
  const char* name;
  bool primary;
  std::vector<const char*> themes;  // first = primary theme
  double visit_hours;
  double popularity;
};

struct CitySpec {
  const char* name;
  std::vector<const char*> themes;
  std::vector<PoiSpec> landmarks;
  std::size_t total_pois;
  double center_lat;
  double center_lng;
  std::uint64_t seed;
  const char* default_start;  // landmark name
};

Dataset BuildTripDataset(const CitySpec& city) {
  std::vector<std::string> vocabulary(city.themes.begin(), city.themes.end());
  model::Catalog catalog(model::Domain::kTrip, vocabulary);
  util::Rng rng(city.seed);

  auto theme_id = [&catalog](const char* theme) {
    const int id = catalog.TopicId(theme);
    assert(id >= 0 && "landmark theme missing from the city's theme list");
    return id;
  };

  auto add_poi = [&](const std::string& name, bool primary,
                     const std::vector<int>& themes, double visit_hours,
                     double popularity) {
    model::Item item;
    item.code = name;
    item.name = name;
    item.type =
        primary ? model::ItemType::kPrimary : model::ItemType::kSecondary;
    item.category = primary ? 0 : 1;
    item.credits = visit_hours;
    item.popularity = popularity;
    item.primary_theme = themes.empty() ? -1 : themes.front();
    model::TopicVector bits(catalog.vocabulary_size());
    for (int t : themes) bits.Set(static_cast<std::size_t>(t));
    item.topics = std::move(bits);
    // Scatter within ~3 km of the center (1 deg lat ~= 111 km).
    item.location.lat = city.center_lat + rng.NextGaussian(0.0, 0.012);
    item.location.lng = city.center_lng + rng.NextGaussian(0.0, 0.016);
    auto added = catalog.AddItem(std::move(item));
    assert(added.ok());
    (void)added;
  };

  for (const PoiSpec& poi : city.landmarks) {
    std::vector<int> themes;
    for (const char* theme : poi.themes) themes.push_back(theme_id(theme));
    add_poi(poi.name, poi.primary, themes, poi.visit_hours, poi.popularity);
  }

  // Generated long tail: "<theme> <nn>" POIs with 1-2 themes, modest
  // popularity, mostly secondary. Roughly 15% of the tail is primary so
  // transfers and splits stay satisfiable from many starting points.
  std::size_t counter = 0;
  while (catalog.size() < city.total_pois) {
    const std::size_t theme = rng.NextIndex(vocabulary.size());
    char name[96];
    std::snprintf(name, sizeof(name), "%s %s %02zu", city.name,
                  vocabulary[theme].c_str(), ++counter);
    std::vector<int> themes = {static_cast<int>(theme)};
    if (rng.NextBernoulli(0.5)) {
      const std::size_t extra = rng.NextIndex(vocabulary.size());
      if (extra != theme) themes.push_back(static_cast<int>(extra));
    }
    const bool primary = rng.NextBernoulli(0.15);
    const double visit_hours = 0.5 + 0.25 * rng.NextInt(0, 6);  // 0.5..2.0
    // Popularity correlates with thematic richness, as in Flickr-derived
    // data where the heavily photographed POIs are the multi-faceted ones;
    // landmarks above own most of the 5s.
    const double popularity = std::min(
        5.0, static_cast<double>(rng.NextInt(1, 3)) +
                 1.5 * static_cast<double>(themes.size()) - 0.5);
    add_poi(name, primary, themes, visit_hours, popularity);
  }

  // Antecedents: most restaurants/cafes should be preceded by a museum or
  // art gallery ("start the day with POIs that are time consuming ...
  // following which one can experience some relaxation time", Example 2).
  const int restaurant = catalog.TopicId("restaurant");
  const int cafe = catalog.TopicId("cafe");
  const int museum = catalog.TopicId("museum");
  const int gallery = catalog.TopicId("art gallery");
  std::vector<model::ItemId> anchors;
  for (const model::Item& item : catalog.items()) {
    if (item.primary_theme == museum ||
        (gallery >= 0 && item.primary_theme == gallery)) {
      anchors.push_back(item.id);
    }
  }
  model::Catalog final_catalog(model::Domain::kTrip, vocabulary);
  for (const model::Item& original : catalog.items()) {
    model::Item item = original;
    const bool eats = item.primary_theme == restaurant ||
                      (cafe >= 0 && item.primary_theme == cafe);
    if (eats && !anchors.empty() && rng.NextBernoulli(0.6)) {
      item.prereqs = model::PrereqExpr::AnyOf(anchors);
    }
    auto added = final_catalog.AddItem(std::move(item));
    assert(added.ok());
    (void)added;
  }

  Dataset dataset;
  dataset.name = city.name;
  dataset.catalog = std::move(final_catalog);

  dataset.hard.min_credits = 6.0;  // time threshold t
  dataset.hard.num_primary = 2;
  dataset.hard.num_secondary = 3;
  dataset.hard.gap = 1;
  dataset.hard.distance_threshold_km = 5.0;  // distance threshold d
  dataset.hard.no_consecutive_same_theme = true;

  model::TopicVector ideal(dataset.catalog.vocabulary_size());
  for (std::size_t t = 0; t < ideal.size(); ++t) ideal.Set(t);
  dataset.soft.ideal_topics = std::move(ideal);

  auto parsed =
      model::InterleavingTemplate::FromStrings({"PSPSS", "PSSSP", "PSSPS"});
  assert(parsed.ok());
  dataset.soft.interleaving = std::move(parsed).value();

  auto start = dataset.catalog.FindByCode(city.default_start);
  assert(start.ok());
  dataset.default_start = start.value();
  return dataset;
}

}  // namespace

Dataset MakeNycTrip() {
  CitySpec city;
  city.name = "NYC";
  city.themes = {"park",        "museum",      "establishment", "church",
                 "bridge",      "art gallery", "restaurant",    "cafe",
                 "river",       "street",      "architecture",  "theater",
                 "library",     "market",      "observatory",   "zoo",
                 "aquarium",    "stadium",     "memorial",      "garden",
                 "square"};
  city.landmarks = {
      {"battery park", false, {"park"}, 1.0, 4.0},
      {"brooklyn bridge", true, {"bridge", "architecture"}, 1.0, 5.0},
      {"colonnade row", false, {"architecture", "street"}, 0.5, 3.0},
      {"flatiron building", false, {"architecture", "establishment"}, 0.5, 4.0},
      {"hudson river park", false, {"park", "river"}, 1.0, 4.0},
      {"rockefeller center", true, {"establishment", "architecture"}, 1.5, 5.0},
      {"museum of television and radio", false, {"museum"}, 1.5, 4.0},
      {"new york university", false, {"establishment"}, 1.0, 3.0},
      {"metropolitan museum of art", true, {"museum", "art gallery"}, 2.0, 5.0},
      {"museum of modern art", true, {"museum", "art gallery"}, 1.5, 5.0},
      {"central park", true, {"park", "garden"}, 1.5, 5.0},
      {"times square", false, {"square", "street"}, 0.5, 5.0},
      {"empire state building", true, {"observatory", "architecture"}, 1.0, 5.0},
      {"statue of liberty", true, {"memorial", "architecture"}, 2.0, 5.0},
      {"high line", false, {"park", "street"}, 1.0, 5.0},
      {"grand central terminal", false, {"establishment", "architecture"}, 0.5, 5.0},
      {"new york public library", false, {"library", "architecture"}, 1.0, 5.0},
      {"one world observatory", true, {"observatory"}, 1.0, 4.0},
      {"bryant park cafe", false, {"cafe", "park"}, 1.0, 5.0},
      {"chelsea market", false, {"market", "restaurant"}, 1.0, 5.0},
      {"katz delicatessen", false, {"restaurant"}, 1.0, 5.0},
      {"le bernardin", false, {"restaurant"}, 1.5, 5.0},
      {"brooklyn botanic garden", false, {"garden", "park"}, 1.5, 4.0},
      {"yankee stadium", false, {"stadium"}, 2.0, 4.0},
      {"bronx zoo", false, {"zoo", "park"}, 2.5, 4.0},
      {"new york aquarium", false, {"aquarium"}, 1.5, 3.0},
      {"broadway theatre", true, {"theater"}, 2.5, 5.0},
      {"trinity church", false, {"church", "architecture"}, 0.5, 4.0},
      {"st patricks cathedral", false, {"church", "architecture"}, 0.5, 5.0},
      {"east river esplanade", false, {"river", "park"}, 1.0, 3.0},
      {"wall street", false, {"street", "establishment"}, 0.5, 4.0},
      {"whitney museum", true, {"museum", "art gallery"}, 1.5, 4.0},
  };
  city.total_pois = 90;
  city.center_lat = 40.7589;
  city.center_lng = -73.9851;
  city.seed = 0x9C0FFEE;
  city.default_start = "metropolitan museum of art";
  return BuildTripDataset(city);
}

Dataset MakeParisTrip() {
  CitySpec city;
  city.name = "Paris";
  city.themes = {"museum",  "art gallery", "cathedral",    "palace",
                 "river",   "street",      "restaurant",   "architecture",
                 "church",  "park",        "cafe",         "bridge",
                 "establishment", "garden", "tower",       "market"};
  city.landmarks = {
      {"eiffel tower", true, {"tower", "architecture"}, 2.0, 5.0},
      {"louvre museum", true, {"museum", "art gallery", "architecture"}, 2.5, 5.0},
      {"pantheon", false, {"architecture", "church"}, 1.0, 4.0},
      {"rue des martyrs", false, {"street", "market"}, 1.0, 4.0},
      {"musee d'orsay", true, {"museum", "art gallery"}, 2.0, 5.0},
      {"cathedrale notre-dame de paris", true, {"cathedral", "architecture"}, 1.0, 5.0},
      {"palais garnier", true, {"palace", "architecture"}, 1.0, 5.0},
      {"the river seine", false, {"river"}, 1.0, 5.0},
      {"le cinq", false, {"restaurant"}, 1.5, 5.0},
      {"musee du luxembourg", false, {"museum", "garden"}, 1.5, 4.0},
      {"musee des egouts de paris", false, {"museum"}, 1.0, 3.0},
      {"eglise st-sulpice", false, {"church", "architecture"}, 0.5, 4.0},
      {"pont neuf", false, {"bridge", "river"}, 0.5, 5.0},
      {"promenade plantee", false, {"park", "street"}, 1.0, 4.0},
      {"sainte chapelle", false, {"church", "architecture"}, 1.0, 5.0},
      {"tour montparnasse", false, {"establishment", "tower"}, 1.0, 4.0},
      {"eglise st-eustache", false, {"church"}, 0.5, 4.0},
      {"viaduc des arts", false, {"establishment", "bridge"}, 1.0, 3.0},
      {"eglise st-germain des pres", false, {"church"}, 0.5, 4.0},
      {"arc de triomphe", true, {"architecture", "street"}, 1.0, 5.0},
      {"centre pompidou", true, {"museum", "art gallery"}, 1.5, 5.0},
      {"jardin des tuileries", false, {"garden", "park"}, 1.0, 5.0},
      {"jardin du luxembourg", false, {"garden", "park"}, 1.0, 5.0},
      {"palace of versailles", true, {"palace", "garden"}, 2.5, 5.0},
      {"montmartre", false, {"street", "church"}, 1.5, 5.0},
      {"cafe de flore", false, {"cafe"}, 1.0, 5.0},
      {"les deux magots", false, {"cafe", "restaurant"}, 1.0, 4.0},
      {"marche bastille", false, {"market", "street"}, 1.0, 4.0},
      {"grand palais", true, {"palace", "art gallery"}, 1.5, 4.0},
      {"musee rodin", false, {"museum", "garden"}, 1.5, 5.0},
      {"pont alexandre iii", false, {"bridge", "river"}, 0.5, 5.0},
      {"la defense esplanade", false, {"establishment", "architecture"}, 1.0, 3.0},
  };
  city.total_pois = 114;
  city.center_lat = 48.8606;
  city.center_lng = 2.3376;
  city.seed = 0xFA4715;
  city.default_start = "louvre museum";
  return BuildTripDataset(city);
}

}  // namespace rlplanner::datagen

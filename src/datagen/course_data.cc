#include "datagen/course_data.h"

#include <cassert>
#include <cstdio>
#include <vector>

#include "text/topic_extractor.h"
#include "util/rng.h"

namespace rlplanner::datagen {

namespace {

// One course as declared by a program list below.
struct CourseSpec {
  const char* code;
  const char* name;
  bool core;
  // Weight-category; -1 derives 0 (core) / 1 (elective).
  int category;
  // Prerequisite expression as CNF over course codes.
  std::vector<std::vector<const char*>> prereq_groups;
};

// Builds a course dataset: topics are extracted from course names exactly as
// Section IV-A1 describes ("we extract nouns from course names and removed
// stopwords"), then the vocabulary is padded with synthetic syllabus topics
// ("area NN") to the program's published topic count, each assigned to a
// couple of random courses. The ideal topic vector is the full vocabulary,
// matching the paper's |T_ideal| = |T| settings.
Dataset BuildCourseDataset(std::string dataset_name,
                           const std::vector<CourseSpec>& specs,
                           std::size_t vocab_target,
                           model::HardConstraints hard,
                           const std::vector<std::string>& template_strings,
                           const char* default_start_code,
                           std::vector<std::string> category_names,
                           std::uint64_t seed) {
  text::TopicExtractor extractor;
  std::vector<std::vector<int>> topic_ids(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    topic_ids[i] = extractor.ExtractTopics(specs[i].name);
  }
  assert(extractor.vocabulary_size() <= vocab_target &&
         "course names produce more topics than the program's target");

  // Pad with synthetic syllabus areas, each taught by 2 random courses.
  util::Rng rng(seed);
  while (extractor.vocabulary_size() < vocab_target) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "area%03zu",
                  extractor.vocabulary_size());
    const int id = extractor.InternTopic(buffer);
    for (int assignment = 0; assignment < 2; ++assignment) {
      topic_ids[rng.NextIndex(specs.size())].push_back(id);
    }
  }

  model::Catalog catalog(model::Domain::kCourse,
                         extractor.vocabulary());
  catalog.set_category_names(std::move(category_names));

  // First pass: add all items (prereqs resolved afterwards, since they may
  // reference later courses).
  for (std::size_t i = 0; i < specs.size(); ++i) {
    model::Item item;
    item.code = specs[i].code;
    item.name = specs[i].name;
    item.type = specs[i].core ? model::ItemType::kPrimary
                              : model::ItemType::kSecondary;
    item.category =
        specs[i].category >= 0 ? specs[i].category : (specs[i].core ? 0 : 1);
    item.credits = 3.0;
    item.topics = extractor.ToBitset(topic_ids[i]);
    auto added = catalog.AddItem(std::move(item));
    assert(added.ok());
    (void)added;
  }

  // Second pass: resolve prerequisite codes to ids.
  // AddItem returns items in order, so spec i has id i; we still go through
  // FindByCode to keep the invariant checked.
  std::vector<model::Item> patched;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].prereq_groups.empty()) continue;
    model::PrereqExpr expr;
    for (const auto& group : specs[i].prereq_groups) {
      std::vector<model::ItemId> ids;
      for (const char* code : group) {
        auto found = catalog.FindByCode(code);
        assert(found.ok() && "prerequisite code not in program");
        ids.push_back(found.value());
      }
      expr.AddGroup(std::move(ids));
    }
    // Items are stored by value; rebuild the catalog entry via const_cast-
    // free route: catalog exposes items() const only, so patch through a
    // fresh catalog below.
    patched.push_back(catalog.item(static_cast<model::ItemId>(i)));
    patched.back().prereqs = std::move(expr);
  }

  // Rebuild with prereqs attached (catalog is append-only by design).
  model::Catalog final_catalog(model::Domain::kCourse, extractor.vocabulary());
  final_catalog.set_category_names(catalog.category_names());
  std::size_t patch_index = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    model::Item item = catalog.item(static_cast<model::ItemId>(i));
    if (patch_index < patched.size() &&
        patched[patch_index].id == static_cast<model::ItemId>(i)) {
      item = patched[patch_index];
      ++patch_index;
    }
    auto added = final_catalog.AddItem(std::move(item));
    assert(added.ok());
    (void)added;
  }

  Dataset dataset;
  dataset.name = std::move(dataset_name);
  dataset.catalog = std::move(final_catalog);
  dataset.hard = std::move(hard);

  // |T_ideal| = |T| (Section IV-A3).
  model::TopicVector ideal(dataset.catalog.vocabulary_size());
  for (std::size_t t = 0; t < ideal.size(); ++t) ideal.Set(t);
  dataset.soft.ideal_topics = std::move(ideal);

  auto parsed_templates =
      model::InterleavingTemplate::FromStrings(template_strings);
  assert(parsed_templates.ok());
  dataset.soft.interleaving = std::move(parsed_templates).value();

  auto start = dataset.catalog.FindByCode(default_start_code);
  assert(start.ok());
  dataset.default_start = start.value();
  return dataset;
}

model::HardConstraints Univ1Hard() {
  model::HardConstraints hard;
  hard.min_credits = 30.0;  // 10 courses of 3 credits
  hard.num_primary = 5;
  hard.num_secondary = 5;
  hard.gap = 3;  // prerequisites at least one semester (3 courses) earlier
  return hard;
}

const std::vector<std::string>& Univ1Templates() {
  static const std::vector<std::string> kTemplates = {
      "PPSPSSPSPS",
      "PSPSPSPSPS",
      "PPSSPSPPSS",
  };
  return kTemplates;
}

}  // namespace

Dataset MakeUniv1DsCt() {
  const std::vector<CourseSpec> kCourses = {
      // Core (5 = the degree's core requirement; three are prerequisite-
      // free, CS 677 additionally needs the *elective* MATH 663 first —
      // the paper's own "take Linear Algebra before Machine Learning"
      // dependency from Example 1 — and CS 644 needs CS 631 or CS 634).
      {"CS 610", "Data Structures and Algorithms", true, -1, {}},
      {"CS 634", "Data Mining", true, -1, {{"CS 610"}}},
      {"CS 644", "Introduction to Big Data", true, -1, {{"CS 631", "CS 634"}}},
      {"CS 675", "Machine Learning", true, -1, {}},
      {"CS 677", "Deep Learning", true, -1,
       {{"CS 675"},
        {"MATH 663", "MATH 678", "MATH 644", "MATH 661", "DS 669"}}},
      // Electives (26).
      {"CS 631", "Data Management System Design", false, -1, {}},
      {"CS 636", "Data Analytics with R Program", false, -1, {{"MATH 661"}}},
      {"MATH 661", "Applied Statistics", false, -1, {}},
      {"CS 608", "Cryptography and Security", false, -1, {}},
      {"CS 630", "Operating System Kernels", false, -1, {}},
      {"CS 639", "Electronic Medical Records and Terminologies", false, -1, {}},
      {"CS 643", "Cloud Computing", false, -1, {}},
      {"CS 645", "Security and Privacy in Computer Systems", false, -1, {}},
      {"CS 652", "Computer Networks Architectures and Protocols", false, -1, {}},
      {"CS 656", "Internet and Higher Layer Protocols", false, -1, {}},
      {"CS 667", "Approximation Algorithms", false, -1, {{"CS 610"}}},
      {"CS 673", "Software Methodology", false, -1, {}},
      {"CS 683", "Software Project Management", false, -1, {}},
      {"CS 696", "Network Management and Security", false, -1, {{"CS 652", "CS 656"}}},
      {"CS 700B", "Capstone Research", false, -1, {}},
      {"CS 704", "Data Analytics for Information Systems", false, -1, {{"CS 636"}}},
      {"MATH 644", "Regression Analysis", false, -1, {{"MATH 661"}}},
      {"MATH 663", "Linear Algebra and Matrix Computation", false, -1, {}},
      {"MATH 678", "Statistical Methods and Probability", false, -1, {}},
      {"DS 636", "Data Visualization", false, -1, {}},
      {"DS 642", "Natural Language Processing", false, -1, {}},
      {"DS 669", "Reinforcement Learning", false, -1, {{"CS 675"}}},
      {"DS 680", "Neural Networks and Classification", false, -1, {{"CS 634", "CS 675"}}},
      {"IS 601", "Web Systems Development", false, -1, {}},
      {"IS 634", "Information Retrieval", false, -1, {}},
      {"IS 665", "Data Ethics and Governance", false, -1, {}},
  };
  return BuildCourseDataset("Univ-1 M.S. DS-CT", kCourses, 60, Univ1Hard(),
                            Univ1Templates(), "CS 675",
                            {"core", "elective"}, 0xD5C7);
}

Dataset MakeUniv1Cybersecurity() {
  const std::vector<CourseSpec> kCourses = {
      // Core (5; CS 608 and CS 652 are prerequisite-free, CS 696 also
      // needs the *elective* CS 656 scheduled a semester earlier).
      {"CS 608", "Cryptography and Security", true, -1, {}},
      {"CS 652", "Computer Networks Architectures and Protocols", true, -1, {}},
      {"CS 696", "Network Management and Security", true, -1,
       {{"CS 652"}, {"CS 656", "CS 610", "CS 630", "IT 604", "IS 601"}}},
      {"IT 620", "Wireless Networks Defense", true, -1, {{"CS 652"}}},
      {"IT 640", "Ethical Hacking and Penetration Testing", true, -1, {{"CS 608"}}},
      // Electives (25).
      {"CS 645", "Security and Privacy in Computer Systems", false, -1, {}},
      {"CS 656", "Internet and Higher Layer Protocols", false, -1, {}},
      {"CS 610", "Data Structures and Algorithms", false, -1, {}},
      {"CS 630", "Operating System Kernels", false, -1, {}},
      {"CS 631", "Data Management System Design", false, -1, {}},
      {"CS 634", "Data Mining", false, -1, {{"CS 610"}}},
      {"CS 643", "Cloud Computing", false, -1, {}},
      {"CS 675", "Machine Learning", false, -1, {}},
      {"CS 673", "Software Methodology", false, -1, {}},
      {"CS 683", "Software Project Management", false, -1, {}},
      {"IT 604", "Digital Forensics", false, -1, {}},
      {"IT 610", "Intrusion Detection and Incident Response", false, -1, {{"CS 652"}}},
      {"IT 625", "Malware Analysis and Reverse Engineering", false, -1, {{"IT 640"}}},
      {"IT 635", "Identity and Access Control", false, -1, {}},
      {"IT 645", "Software Security Engineering", false, -1, {}},
      {"IT 655", "Security Risk Management", false, -1, {}},
      {"IT 660", "Machine Learning for Intrusion Detection", false, -1, {{"CS 675"}}},
      {"IS 601", "Web Systems Development", false, -1, {}},
      {"IS 618", "Cyber Law and Policy", false, -1, {}},
      {"IS 655", "Privacy Engineering", false, -1, {}},
      {"MATH 661", "Applied Statistics", false, -1, {}},
      {"MATH 663", "Linear Algebra and Matrix Computation", false, -1, {}},
      {"EE 640", "Hardware Security", false, -1, {}},
      {"EE 657", "Blockchain Protocols", false, -1, {}},
      {"CS 700B", "Capstone Research", false, -1, {}},
  };
  return BuildCourseDataset("Univ-1 M.S. Cybersecurity", kCourses, 61,
                            Univ1Hard(), Univ1Templates(), "CS 608",
                            {"core", "elective"}, 0xCB53);
}

Dataset MakeUniv1Cs() {
  const std::vector<CourseSpec> kCourses = {
      // Core (5; CS 667 needs CS 610 first and the capstone CS 700B needs
      // CS 667 or the *elective* CS 675 a semester earlier).
      {"CS 610", "Data Structures and Algorithms", true, -1, {}},
      {"CS 631", "Data Management System Design", true, -1, {}},
      {"CS 656", "Internet and Higher Layer Protocols", true, -1, {}},
      {"CS 667", "Approximation Algorithms", true, -1, {{"CS 610"}}},
      {"CS 700B", "Capstone Research", true, -1,
       {{"CS 667", "CS 675", "CS 634", "CS 608", "CS 636"}}},
      // Electives (27).
      {"CS 630", "Operating System Kernels", false, -1, {}},
      {"CS 602", "Java Programming Environments", false, -1, {}},
      {"CS 661", "Formal Languages and Automata", false, -1, {}},
      {"CS 608", "Cryptography and Security", false, -1, {}},
      {"CS 634", "Data Mining", false, -1, {{"CS 610"}}},
      {"CS 636", "Data Analytics with R Program", false, -1, {}},
      {"CS 639", "Electronic Medical Records and Terminologies", false, -1, {}},
      {"CS 643", "Cloud Computing", false, -1, {}},
      {"CS 644", "Introduction to Big Data", false, -1, {{"CS 631", "CS 634"}}},
      {"CS 645", "Security and Privacy in Computer Systems", false, -1, {}},
      {"CS 652", "Computer Networks Architectures and Protocols", false, -1, {}},
      {"CS 673", "Software Methodology", false, -1, {}},
      {"CS 675", "Machine Learning", false, -1, {}},
      {"CS 677", "Deep Learning", false, -1, {{"CS 675"}}},
      {"CS 683", "Software Project Management", false, -1, {}},
      {"CS 696", "Network Management and Security", false, -1, {{"CS 652", "CS 656"}}},
      {"CS 704", "Data Analytics for Information Systems", false, -1, {{"CS 636"}}},
      {"CS 606", "Compiler Construction", false, -1, {{"CS 661"}}},
      {"CS 632", "Distributed Consensus and Replication", false, -1, {{"CS 631"}}},
      {"CS 637", "Computer Vision and Image Understanding", false, -1, {{"CS 675"}}},
      {"CS 646", "Realtime Scheduling Theory", false, -1, {{"CS 630"}}},
      {"CS 650", "Computer Architecture Pipelines", false, -1, {}},
      {"CS 670", "Artificial Intelligence Search and Reasoning", false, -1, {}},
      {"CS 698", "Quantum Computation", false, -1, {}},
      {"CS 786", "Graph Theory and Combinatorics", false, -1, {{"CS 610"}}},
      {"MATH 661", "Applied Statistics", false, -1, {}},
      {"MATH 663", "Linear Algebra and Matrix Computation", false, -1, {}},
  };
  return BuildCourseDataset("Univ-1 M.S. CS", kCourses, 100, Univ1Hard(),
                            Univ1Templates(), "CS 610",
                            {"core", "elective"}, 0xC5C5);
}

Dataset MakeUniv2Ds() {
  // Categories: 0=Mathematical & Statistical Foundations, 1=Experimentation,
  // 2=Scientific Computing, 3=Applied ML & Data Science, 4=Practical
  // Component, 5=Elective. Categories 0-4 are primary, 5 is secondary.
  auto core = [](int category) { return category <= 4; };
  struct U2 {
    const char* code;
    const char* name;
    int category;
    std::vector<std::vector<const char*>> prereqs;
  };
  const std::vector<U2> kRaw = {
      {"STATS 200", "Statistical Inference", 0, {}},
      {"STATS 203", "Regression Models and Analysis of Variance", 0, {{"STATS 200"}}},
      {"STATS 217", "Stochastic Processes", 0, {}},
      {"MATH 113", "Matrix Theory and Linear Algebra", 0, {}},
      {"STATS 116", "Theory of Probability", 0, {}},
      {"CME 302", "Numerical Linear Algebra", 0, {{"MATH 113"}}},
      {"STATS 270", "Bayesian Statistics", 0, {{"STATS 116"}}},
      {"STATS 263", "Experiments Planning", 1, {}},
      {"STATS 266", "Causal Inference", 1, {{"STATS 200", "STATS 116"}}},
      {"MS&E 226", "Inference for Decisions", 1, {}},
      {"CME 211", "Software Development for Data Science", 2, {}},
      {"CME 212", "Parallel Software Engineering", 2, {{"CME 211"}}},
      {"CS 149", "Parallel Computing", 2, {}},
      {"CME 213", "Parallel Numerical Solvers", 2, {{"CS 149"}}},
      {"CS 246", "Mining Massive Data Sets", 2, {}},
      {"CS 245", "Data Intensive Storage Engines", 2, {}},
      {"CS 229", "Machine Learning", 3, {}},
      {"CS 230", "Deep Learning", 3, {{"CS 229"}}},
      {"CS 224N", "Natural Language Processing", 3, {{"CS 229"}}},
      {"CS 231N", "Convolutional Neural Networks for Visual Recognition", 3, {{"CS 229"}}},
      {"CS 234", "Reinforcement Learning", 3, {{"CS 229"}}},
      {"STATS 202", "Data Mining and Exploration", 3, {}},
      {"CS 276", "Information Retrieval and Web Search", 3, {}},
      {"CS 224W", "Graph Representation Learning", 3, {{"CS 229", "STATS 202"}}},
      {"STATS 390", "Statistical Consulting", 4, {}},
      {"MS&E 237", "Practicum in Data Science", 4, {}},
      {"STATS 191", "Statistical Modeling Lab", 4, {}},
      {"CS 221", "Artificial Intelligence", 5, {}},
      {"CS 228", "Probabilistic Graphical Models", 5, {{"STATS 116"}}},
      {"CS 238", "Reinforcement Decision Processes", 5, {}},
      {"CS 255", "Cryptography and Computer Defense", 5, {}},
      {"MS&E 231", "Computational Social Science", 5, {}},
      {"BIOMEDIN 215", "Clinical Data Science", 5, {}},
      {"GENE 211", "Genomics", 5, {}},
      {"STATS 315A", "Sparse Regularization Learning", 5, {{"STATS 203"}}},
      {"ECON 293", "Machine Learning for Causal Effects", 5, {{"CS 229"}}},
  };
  std::vector<CourseSpec> specs;
  specs.reserve(kRaw.size());
  for (const U2& raw : kRaw) {
    specs.push_back(
        {raw.code, raw.name, core(raw.category), raw.category, raw.prereqs});
  }

  model::HardConstraints hard;
  hard.min_credits = 45.0;  // 15 courses of 3 units
  hard.num_primary = 9;
  hard.num_secondary = 6;
  hard.gap = 3;
  hard.category_min_counts = {2, 1, 2, 2, 1, 4};

  // Three mild variations of one advisor blueprint (alternate cores and
  // electives, then finish on cores) — like the paper's trip templates,
  // which differ from each other in only a few slots.
  const std::vector<std::string> kTemplates = {
      "PPSPSPSPSPSPSPP",
      "PSPPSPSPSPSPSPP",
      "PPSPSPSPSPSPPSP",
  };
  return BuildCourseDataset(
      "Univ-2 M.S. DS", specs, 73, hard, kTemplates, "STATS 263",
      {"math_stat_foundations", "experimentation", "scientific_computing",
       "applied_ml_ds", "practical", "elective"},
      0x57AF);
}

Dataset MakeTableIIToy() {
  // The paper's Table II, verbatim: 6 courses over the 13-topic vocabulary
  // [Algorithms, Classification, Clustering, Statistics, Regression,
  //  Data Structure, Neural Network, Probability, Data Visualization,
  //  Linear System, Matrix Decomposition, Data Management, Data Transfer].
  const std::vector<std::string> kVocabulary = {
      "algorithms",     "classification",  "clustering",
      "statistics",     "regression",      "data structure",
      "neural network", "probability",     "data visualization",
      "linear system",  "matrix decomposition", "data management",
      "data transfer"};

  model::Catalog catalog(model::Domain::kCourse, kVocabulary);
  auto add = [&catalog](const char* code, const char* name, bool core,
                        const std::vector<int>& bits,
                        model::PrereqExpr prereqs) {
    model::Item item;
    item.code = code;
    item.name = name;
    item.type = core ? model::ItemType::kPrimary : model::ItemType::kSecondary;
    item.category = core ? 0 : 1;
    item.credits = 3.0;
    item.topics = model::TopicVector::FromBits(bits);
    item.prereqs = std::move(prereqs);
    auto added = catalog.AddItem(std::move(item));
    assert(added.ok());
    (void)added;
  };
  // m1..m4 have no prerequisites.
  add("m1", "Data Structures and Algorithms", true,
      {1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0}, {});
  add("m2", "Data Mining", false,
      {0, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, {});
  add("m3", "Data Analytics", true,
      {0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0}, {});
  add("m4", "Linear Algebra", false,
      {0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 0, 0}, {});
  // m5: Data Mining OR Data Analytics. m6: Linear Algebra AND Data Mining.
  add("m5", "Big Data", false,
      {1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1},
      model::PrereqExpr::AnyOf({1, 2}));
  add("m6", "Machine Learning", true,
      {0, 1, 1, 0, 1, 0, 1, 0, 0, 0, 0, 0, 0},
      model::PrereqExpr::All({3, 1}));

  Dataset dataset;
  dataset.name = "Table II toy";
  dataset.catalog = std::move(catalog);
  dataset.hard.min_credits = 18.0;  // all 6 courses
  dataset.hard.num_primary = 3;
  dataset.hard.num_secondary = 3;
  dataset.hard.gap = 1;

  // Example 1: T_ideal covers Classification, Clustering, Neural Network,
  // Linear System.
  dataset.soft.ideal_topics = model::TopicVector::FromBits(
      {0, 1, 1, 0, 0, 0, 1, 0, 0, 1, 0, 0, 0});
  auto parsed = model::InterleavingTemplate::FromStrings(
      {"PPSPSS", "PSSSPP", "PSSPPS"});
  assert(parsed.ok());
  dataset.soft.interleaving = std::move(parsed).value();
  dataset.default_start = 0;  // m1
  return dataset;
}

}  // namespace rlplanner::datagen

#ifndef RLPLANNER_DATAGEN_TRIP_DATA_H_
#define RLPLANNER_DATAGEN_TRIP_DATA_H_

#include "datagen/dataset.h"

namespace rlplanner::datagen {

/// The trip-planning datasets of Section IV-A1, rebuilt synthetically with
/// the paper's shapes (the paper used Flickr itineraries plus Google Places
/// themes, neither of which ships with this repository):
///   NYC:   90 POIs, 21 themes;   Paris: 114 POIs, 16 themes.
/// Every POI has a theme set, a visit duration (`cr^m`, hours), coordinates
/// around the city center, and a 1..5 popularity score (trip plans are
/// scored by mean popularity; the gold standard reaches 5).
/// Hard constraints (Table III): time budget t = 6 h, 2 primary + 3
/// secondary POIs, distance threshold d = 5 km, gap = 1 with the
/// "no two consecutive POIs of the same theme" rule; some restaurants/cafes
/// carry museum antecedents ("visit a museum before a restaurant").
Dataset MakeNycTrip();
Dataset MakeParisTrip();

}  // namespace rlplanner::datagen

#endif  // RLPLANNER_DATAGEN_TRIP_DATA_H_

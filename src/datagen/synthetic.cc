#include "datagen/synthetic.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <string>
#include <vector>

#include "util/rng.h"

namespace rlplanner::datagen {

namespace {

// A random permutation string with exactly `p` primaries and `s`
// secondaries, always starting with a primary (every paper template does).
model::TypeSequence RandomPermutation(int p, int s, util::Rng& rng) {
  model::TypeSequence slots;
  slots.reserve(static_cast<std::size_t>(p + s));
  for (int i = 0; i < p; ++i) slots.push_back(model::ItemType::kPrimary);
  for (int i = 0; i < s; ++i) slots.push_back(model::ItemType::kSecondary);
  if (slots.size() > 1) {
    // Shuffle all but the first slot, then force a primary first.
    rng.Shuffle(slots);
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (slots[i] == model::ItemType::kPrimary) {
        std::swap(slots[0], slots[i]);
        break;
      }
    }
  }
  return slots;
}

}  // namespace

Dataset GenerateSynthetic(const SyntheticSpec& spec) {
  assert(spec.num_items > 0 && spec.vocab_size > 0);
  util::Rng rng(spec.seed);

  std::vector<std::string> vocabulary;
  vocabulary.reserve(static_cast<std::size_t>(spec.vocab_size));
  for (int t = 0; t < spec.vocab_size; ++t) {
    char name[32];
    std::snprintf(name, sizeof(name), "topic%04d", t);
    vocabulary.emplace_back(name);
  }

  model::Catalog catalog(spec.domain, vocabulary);
  const int num_primary = std::max(
      spec.num_primary_required,
      static_cast<int>(spec.primary_fraction * spec.num_items));

  for (int i = 0; i < spec.num_items; ++i) {
    model::Item item;
    char code[32];
    std::snprintf(code, sizeof(code), "item%04d", i);
    item.code = code;
    item.name = code;
    const bool primary = i < num_primary;
    item.type =
        primary ? model::ItemType::kPrimary : model::ItemType::kSecondary;
    item.category = primary ? 0 : 1;
    item.credits = spec.domain == model::Domain::kTrip
                       ? 0.5 + 0.25 * rng.NextInt(0, 6)
                       : 3.0;
    item.popularity = static_cast<double>(rng.NextInt(1, 5));
    model::TopicVector topics(vocabulary.size());
    const int per_item = std::max(1, spec.topics_per_item);
    for (int t = 0; t < per_item; ++t) {
      topics.Set(rng.NextIndex(vocabulary.size()));
    }
    item.topics = std::move(topics);
    item.primary_theme = static_cast<int>(rng.NextIndex(vocabulary.size()));
    item.location.lat = 40.0 + rng.NextGaussian(0.0, 0.01);
    item.location.lng = -74.0 + rng.NextGaussian(0.0, 0.01);
    if (i > 0 && rng.NextBernoulli(spec.prereq_probability)) {
      // One OR-group over up to two earlier items keeps the DAG acyclic.
      std::vector<model::ItemId> group;
      group.push_back(static_cast<model::ItemId>(rng.NextIndex(
          static_cast<std::size_t>(i))));
      if (i > 1 && rng.NextBernoulli(0.5)) {
        const auto second = static_cast<model::ItemId>(
            rng.NextIndex(static_cast<std::size_t>(i)));
        if (second != group[0]) group.push_back(second);
      }
      item.prereqs = model::PrereqExpr::AnyOf(std::move(group));
    }
    auto added = catalog.AddItem(std::move(item));
    assert(added.ok());
    (void)added;
  }

  Dataset dataset;
  dataset.name = "synthetic";
  dataset.catalog = std::move(catalog);

  dataset.hard.num_primary = spec.num_primary_required;
  dataset.hard.num_secondary = spec.num_secondary_required;
  dataset.hard.gap = spec.gap;
  if (spec.domain == model::Domain::kTrip) {
    dataset.hard.min_credits = spec.time_budget;
    dataset.hard.no_consecutive_same_theme = false;
  } else {
    dataset.hard.min_credits =
        3.0 * (spec.num_primary_required + spec.num_secondary_required);
  }

  model::TopicVector ideal(dataset.catalog.vocabulary_size());
  for (std::size_t t = 0; t < ideal.size(); ++t) ideal.Set(t);
  dataset.soft.ideal_topics = std::move(ideal);

  for (int t = 0; t < spec.num_templates; ++t) {
    dataset.soft.interleaving.Add(RandomPermutation(
        spec.num_primary_required, spec.num_secondary_required, rng));
  }
  dataset.default_start = 0;
  return dataset;
}

}  // namespace rlplanner::datagen

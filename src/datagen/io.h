#ifndef RLPLANNER_DATAGEN_IO_H_
#define RLPLANNER_DATAGEN_IO_H_

#include <string>

#include "datagen/dataset.h"
#include "model/catalog.h"
#include "util/status.h"

namespace rlplanner::datagen {

/// Serializes a catalog to CSV so datasets can be inspected, edited and
/// reloaded. One row per item with columns
/// `code,name,type,category,credits,prereqs,topics,lat,lng,popularity,theme`;
/// `prereqs` is rendered as CNF over item codes ("a OR b AND c" = group
/// {a,b} AND group {c}), `topics` as `;`-joined topic names. Two reserved
/// leading rows (`__vocabulary__`, `__categories__`) persist the topic
/// vocabulary order and the category names.
std::string SerializeCatalog(const model::Catalog& catalog);

/// Parses `SerializeCatalog` output back into a catalog.
util::Result<model::Catalog> ParseCatalog(model::Domain domain,
                                          const std::string& csv_text);

/// File wrappers around the two functions above.
util::Status SaveCatalogCsv(const model::Catalog& catalog,
                            const std::string& path);
util::Result<model::Catalog> LoadCatalogCsv(model::Domain domain,
                                            const std::string& path);

/// Serializes a *complete* dataset — catalog plus hard constraints,
/// interleaving templates, ideal topic vector, dataset name, default start
/// and domain — as one CSV document. Three more reserved rows extend the
/// catalog format: `__meta__` (name; domain; default-start code),
/// `__hard__` (min_credits; #primary; #secondary; gap; distance; theme
/// rule; category minima) and `__soft__` (templates; ideal topic names).
std::string SerializeDataset(const Dataset& dataset);

/// Parses `SerializeDataset` output.
util::Result<Dataset> ParseDataset(const std::string& csv_text);

/// File wrappers for whole datasets.
util::Status SaveDatasetCsv(const Dataset& dataset, const std::string& path);
util::Result<Dataset> LoadDatasetCsv(const std::string& path);

}  // namespace rlplanner::datagen

#endif  // RLPLANNER_DATAGEN_IO_H_

#ifndef RLPLANNER_DATAGEN_DATASET_H_
#define RLPLANNER_DATAGEN_DATASET_H_

#include <string>

#include "model/constraints.h"

namespace rlplanner::datagen {

/// A fully specified task-planning dataset: the catalog plus the default
/// hard/soft constraints the paper evaluates it with.
struct Dataset {
  /// Display name ("Univ-1 M.S. DS-CT", "Paris", ...).
  std::string name;
  model::Catalog catalog{model::Domain::kCourse, {}};
  model::HardConstraints hard;
  model::SoftConstraints soft;
  /// The Table III default starting item `s_1`.
  model::ItemId default_start = 0;

  /// Builds the TaskInstance view. The returned instance points into this
  /// dataset's catalog: keep the dataset alive (and unmoved) while the
  /// instance is in use.
  model::TaskInstance Instance() const {
    model::TaskInstance instance;
    instance.catalog = &catalog;
    instance.hard = hard;
    instance.soft = soft;
    return instance;
  }
};

}  // namespace rlplanner::datagen

#endif  // RLPLANNER_DATAGEN_DATASET_H_

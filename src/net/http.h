#ifndef RLPLANNER_NET_HTTP_H_
#define RLPLANNER_NET_HTTP_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rlplanner::net {

/// One parsed HTTP/1.1 request. Header names are kept as received; lookups
/// are case-insensitive per RFC 9110.
struct HttpRequest {
  std::string method;   // "GET", "POST", ... (token, upper-case by convention)
  std::string target;   // origin-form, e.g. "/v1/plan"
  std::string version;  // "HTTP/1.1" or "HTTP/1.0"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  /// Resolved connection semantics: HTTP/1.1 defaults to keep-alive unless
  /// `Connection: close`; HTTP/1.0 defaults to close unless
  /// `Connection: keep-alive`.
  bool keep_alive = true;

  /// First header value whose name matches case-insensitively, or nullptr.
  const std::string* FindHeader(std::string_view name) const;
};

/// Outcome of one incremental parse attempt over a connection's read buffer.
enum class ParseStatus {
  kNeedMore,  // the buffer holds a prefix of a valid request — keep reading
  kOk,        // one complete request parsed; `consumed` bytes belong to it
  kError,     // protocol violation — respond 400 and close
};

struct ParseResult {
  ParseStatus status = ParseStatus::kNeedMore;
  std::size_t consumed = 0;  // bytes of the buffer the request used (kOk)
  std::string error;         // human-readable cause (kError)
};

/// Incremental HTTP/1.1 request parser with bounded limits. Stateless
/// between calls: feed it the connection's accumulated read buffer each
/// time; on kOk, erase `consumed` bytes and hand off the request (any
/// remaining bytes are the next pipelined request). Limits — enforced as
/// kError, never unbounded buffering:
///   * total request (head + body) <= max_request_bytes
///   * <= kMaxHeaders header fields, each line <= kMaxHeaderLineBytes
///   * request line <= kMaxRequestLineBytes
///   * Content-Length only (Transfer-Encoding is rejected as unsupported)
class HttpRequestParser {
 public:
  static constexpr std::size_t kMaxHeaders = 64;
  static constexpr std::size_t kMaxRequestLineBytes = 4096;
  static constexpr std::size_t kMaxHeaderLineBytes = 8192;

  explicit HttpRequestParser(std::size_t max_request_bytes)
      : max_request_bytes_(max_request_bytes) {}

  /// Attempts to parse one complete request from the front of `data`.
  /// Fills `*out` only when the result is kOk.
  ParseResult Parse(std::string_view data, HttpRequest* out) const;

  std::size_t max_request_bytes() const { return max_request_bytes_; }

 private:
  std::size_t max_request_bytes_;
};

/// Reason phrase for the status codes the server emits ("OK", "Bad
/// Request", ...); "Unknown" for anything unmapped.
const char* StatusReason(int status);

/// Serializes a complete HTTP/1.1 response head + body. Always emits
/// Content-Length; `keep_alive` selects the Connection header.
std::string SerializeResponse(int status, std::string_view content_type,
                              std::string_view body, bool keep_alive);

/// Case-insensitive ASCII string equality (header names, token values).
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// The path component of an origin-form request target: everything before
/// the first '?' (or '#'). "/debug/pprof?seconds=5" → "/debug/pprof".
std::string_view TargetPath(std::string_view target);

/// The raw value of query parameter `key` in an origin-form target, or
/// nullopt-like empty result via the bool. No percent-decoding (the debug
/// endpoints take numeric values only); a key without '=' yields "".
bool QueryParam(std::string_view target, std::string_view key,
                std::string* value);

}  // namespace rlplanner::net

#endif  // RLPLANNER_NET_HTTP_H_

#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "net/http.h"

namespace rlplanner::net {
namespace {

// Shared with the server's parser limits in spirit; the client just needs a
// sane bound so a misbehaving server cannot balloon the buffer.
constexpr std::size_t kMaxResponseBytes = std::size_t{8} * 1024 * 1024;

}  // namespace

const std::string* ClientResponse::FindHeader(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (EqualsIgnoreCase(key, name)) return &value;
  }
  return nullptr;
}

BlockingHttpClient::~BlockingHttpClient() { Close(); }

void BlockingHttpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rbuf_.clear();
}

util::Status BlockingHttpClient::Connect(const std::string& host,
                                         std::uint16_t port) {
  Close();
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    return util::Status::InvalidArgument("'" + host +
                                         "' is not a valid IPv4 address");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return util::Status::Internal(std::string("socket(): ") +
                                  std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int err = errno;
    ::close(fd);
    return util::Status::Internal("connect(" + resolved + ":" +
                                  std::to_string(port) +
                                  "): " + std::strerror(err));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  fd_ = fd;
  return util::Status::Ok();
}

util::Status BlockingHttpClient::SendRaw(std::string_view data) {
  if (fd_ < 0) {
    return util::Status::FailedPrecondition("client is not connected");
  }
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      Close();
      return util::Status::Internal(std::string("send(): ") +
                                    std::strerror(err));
    }
    sent += static_cast<std::size_t>(n);
  }
  return util::Status::Ok();
}

util::Result<ClientResponse> BlockingHttpClient::Request(
    std::string_view method, std::string_view target, std::string_view body,
    std::string_view content_type) {
  std::string request;
  request.reserve(128 + body.size());
  request += method;
  request += ' ';
  request += target;
  request += " HTTP/1.1\r\nHost: rlplanner\r\nContent-Type: ";
  request += content_type;
  request += "\r\nContent-Length: ";
  request += std::to_string(body.size());
  request += "\r\n\r\n";
  request += body;
  RLP_RETURN_IF_ERROR(SendRaw(request));
  return ReadResponse();
}

util::Result<ClientResponse> BlockingHttpClient::ReadResponse() {
  if (fd_ < 0) {
    return util::Status::FailedPrecondition("client is not connected");
  }
  // Incremental parse over the accumulated buffer: status line, headers,
  // then Content-Length bytes of body.
  char buf[16384];
  while (true) {
    // Try to parse what we have.
    const std::size_t head_end = rbuf_.find("\r\n\r\n");
    if (head_end != std::string::npos) {
      ClientResponse response;
      const std::size_t line_end = rbuf_.find("\r\n");
      const std::string status_line = rbuf_.substr(0, line_end);
      // "HTTP/1.1 200 OK"
      if (status_line.size() < 12 || status_line.compare(0, 5, "HTTP/") != 0) {
        Close();
        return util::Status::Internal("malformed status line: '" +
                                      status_line + "'");
      }
      const std::size_t sp = status_line.find(' ');
      if (sp == std::string::npos || sp + 4 > status_line.size()) {
        Close();
        return util::Status::Internal("malformed status line: '" +
                                      status_line + "'");
      }
      response.status = 0;
      for (std::size_t i = sp + 1; i < sp + 4 && i < status_line.size(); ++i) {
        const char c = status_line[i];
        if (c < '0' || c > '9') {
          Close();
          return util::Status::Internal("malformed status code in '" +
                                        status_line + "'");
        }
        response.status = response.status * 10 + (c - '0');
      }
      response.keep_alive = status_line.compare(0, 9, "HTTP/1.1 ") == 0;
      std::size_t content_length = 0;
      std::size_t pos = line_end + 2;
      while (pos < head_end) {
        std::size_t eol = rbuf_.find("\r\n", pos);
        if (eol == std::string::npos || eol > head_end) eol = head_end;
        const std::string line = rbuf_.substr(pos, eol - pos);
        pos = eol + 2;
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos) continue;
        std::string name = line.substr(0, colon);
        std::string value = line.substr(colon + 1);
        while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
          value.erase(value.begin());
        }
        if (EqualsIgnoreCase(name, "Content-Length")) {
          content_length = 0;
          for (const char c : value) {
            if (c < '0' || c > '9') {
              Close();
              return util::Status::Internal("malformed Content-Length '" +
                                            value + "'");
            }
            content_length = content_length * 10 +
                             static_cast<std::size_t>(c - '0');
          }
        } else if (EqualsIgnoreCase(name, "Connection")) {
          if (EqualsIgnoreCase(value, "close")) response.keep_alive = false;
          if (EqualsIgnoreCase(value, "keep-alive")) response.keep_alive = true;
        }
        response.headers.emplace_back(std::move(name), std::move(value));
      }
      const std::size_t body_start = head_end + 4;
      const std::size_t total = body_start + content_length;
      if (total > kMaxResponseBytes) {
        Close();
        return util::Status::Internal("response exceeds " +
                                      std::to_string(kMaxResponseBytes) +
                                      " bytes");
      }
      if (rbuf_.size() >= total) {
        response.body = rbuf_.substr(body_start, content_length);
        rbuf_.erase(0, total);
        if (!response.keep_alive) Close();
        return response;
      }
    } else if (rbuf_.size() > kMaxResponseBytes) {
      Close();
      return util::Status::Internal("response head exceeds " +
                                    std::to_string(kMaxResponseBytes) +
                                    " bytes");
    }
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n == 0) {
      Close();
      return util::Status::Internal(
          "server closed the connection mid-response");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      Close();
      return util::Status::Internal(std::string("recv(): ") +
                                    std::strerror(err));
    }
    rbuf_.append(buf, static_cast<std::size_t>(n));
  }
}

}  // namespace rlplanner::net

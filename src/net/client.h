#ifndef RLPLANNER_NET_CLIENT_H_
#define RLPLANNER_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace rlplanner::net {

/// One parsed HTTP response as seen by the client.
struct ClientResponse {
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  /// Whether the server left the connection open for another request.
  bool keep_alive = false;

  /// First header value whose name matches case-insensitively, or nullptr.
  const std::string* FindHeader(std::string_view name) const;
};

/// A minimal blocking HTTP/1.1 client for the load generator, the benches,
/// and the integration tests: one TCP connection, sequential requests with
/// keep-alive reuse. Not a general client — Content-Length responses only,
/// IPv4 only, no TLS, no redirects. Not thread-safe; use one per thread.
class BlockingHttpClient {
 public:
  BlockingHttpClient() = default;
  BlockingHttpClient(const BlockingHttpClient&) = delete;
  BlockingHttpClient& operator=(const BlockingHttpClient&) = delete;
  ~BlockingHttpClient();

  /// Opens the TCP connection ("localhost" is accepted for 127.0.0.1).
  /// Reconnecting an open client closes the old connection first.
  util::Status Connect(const std::string& host, std::uint16_t port);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Sends one request and blocks for the full response. An empty body
  /// still sends Content-Length: 0 so the server never waits. If the server
  /// answered `Connection: close`, the socket is closed after the response;
  /// the next Request() on this client fails until Connect() is called
  /// again.
  util::Result<ClientResponse> Request(
      std::string_view method, std::string_view target,
      std::string_view body = {},
      std::string_view content_type = "application/json");

  /// Writes raw bytes to the socket without framing — for protocol tests
  /// (truncated requests, pipelining, garbage).
  util::Status SendRaw(std::string_view data);

  /// Blocks for one complete response already owed on the wire (pairs with
  /// SendRaw; pipelined requests call this once per expected response).
  util::Result<ClientResponse> ReadResponse();

 private:
  int fd_ = -1;
  std::string rbuf_;  // bytes past the previous response (pipelining)
};

}  // namespace rlplanner::net

#endif  // RLPLANNER_NET_CLIENT_H_

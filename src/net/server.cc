#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/registry.h"
#include "obs/trace.h"

namespace rlplanner::net {
namespace {

// Registration can only fail on a name/kind conflict with a foreign metric;
// falling back to a disabled cell keeps the hot path free of null checks.
obs::Counter* FallbackCounter() {
  static obs::Counter counter(false);
  return &counter;
}

obs::Gauge* FallbackGauge() {
  static obs::Gauge gauge(false);
  return &gauge;
}

obs::Histogram* FallbackHistogram() {
  static obs::Histogram histogram(false);
  return &histogram;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ErrorBody(std::string_view message) {
  return "{\"error\":\"" + JsonEscape(message) + "\"}\n";
}

HttpResponse DroppedResponse() {
  HttpResponse response;
  response.status = 500;
  response.body = ErrorBody("handler dropped the request");
  return response;
}

}  // namespace

Responder& Responder::operator=(Responder&& other) noexcept {
  if (this != &other) {
    if (server_ != nullptr) {
      server_->Complete(shard_, fd_, generation_, DroppedResponse());
    }
    server_ = other.server_;
    shard_ = other.shard_;
    fd_ = other.fd_;
    generation_ = other.generation_;
    other.server_ = nullptr;
  }
  return *this;
}

Responder::~Responder() {
  if (server_ != nullptr) Send(DroppedResponse());
}

void Responder::Send(HttpResponse response) {
  if (server_ == nullptr) return;
  HttpServer* server = server_;
  server_ = nullptr;
  server->Complete(shard_, fd_, generation_, std::move(response));
}

HttpServer::HttpServer(HttpServerConfig config, Handler handler)
    : config_(std::move(config)), handler_(std::move(handler)) {
  if (config_.metrics == nullptr) {
    owned_registry_ = std::make_unique<obs::Registry>();
    metrics_ = owned_registry_.get();
  } else {
    metrics_ = config_.metrics;
  }
  trace_ = config_.trace != nullptr && config_.trace->enabled() ? config_.trace
                                                                : nullptr;
  const auto counter = [this](const char* name, const char* help) {
    auto result = metrics_->GetCounter(name, help);
    return result.ok() ? result.value() : FallbackCounter();
  };
  connections_total_ =
      counter("net_connections_total", "TCP connections accepted");
  bytes_read_total_ =
      counter("net_bytes_read_total", "Bytes read from client sockets");
  bytes_written_total_ =
      counter("net_bytes_written_total", "Bytes written to client sockets");
  requests_total_ =
      counter("net_requests_total", "HTTP requests parsed off the wire");
  parse_errors_total_ = counter("net_parse_errors_total",
                                "Connections rejected with 400 by the parser");
  responses_orphaned_total_ =
      counter("net_responses_orphaned_total",
              "Responses whose connection was gone before delivery");
  {
    auto result = metrics_->GetGauge("net_connections_active",
                                     "Currently open client connections");
    connections_active_ = result.ok() ? result.value() : FallbackGauge();
  }
  {
    auto result = metrics_->GetHistogram(
        "net_request_latency_us",
        "First request byte read to last response byte written, microseconds");
    request_latency_us_ = result.ok() ? result.value() : FallbackHistogram();
  }
  // Pre-create the codes the serving path emits so the hot path almost never
  // takes the lazy-lookup lock.
  for (const int status : {200, 400, 404, 405, 500, 503, 504}) {
    ResponseCounter(status);
  }
}

HttpServer::~HttpServer() {
  Shutdown();
  for (auto& shard : shards_) {
    if (shard->listen_fd >= 0) ::close(shard->listen_fd);
    if (shard->event_fd >= 0) ::close(shard->event_fd);
    if (shard->epoll_fd >= 0) ::close(shard->epoll_fd);
  }
}

obs::Counter* HttpServer::ResponseCounter(int status) {
  std::lock_guard<std::mutex> lock(response_counters_mutex_);
  auto it = response_counters_.find(status);
  if (it != response_counters_.end()) return it->second;
  auto result =
      metrics_->GetCounter("net_responses_total",
                           "HTTP responses sent, by status code",
                           {{"code", std::to_string(status)}});
  obs::Counter* cell = result.ok() ? result.value() : FallbackCounter();
  response_counters_.emplace(status, cell);
  return cell;
}

util::Status HttpServer::Start() {
  if (started_.exchange(true)) {
    return util::Status::FailedPrecondition("HttpServer already started");
  }
  const std::string host =
      config_.host == "localhost" ? "127.0.0.1" : config_.host;
  in_addr listen_addr{};
  if (inet_pton(AF_INET, host.c_str(), &listen_addr) != 1) {
    started_.store(false);
    return util::Status::InvalidArgument(
        "'" + config_.host + "' is not a valid IPv4 listen address");
  }
  const std::size_t num_shards =
      config_.num_shards != 0
          ? config_.num_shards
          : std::max<std::size_t>(1, std::thread::hardware_concurrency());

  const auto fail = [this](std::string message) {
    for (auto& shard : shards_) {
      if (shard->listen_fd >= 0) ::close(shard->listen_fd);
      if (shard->event_fd >= 0) ::close(shard->event_fd);
      if (shard->epoll_fd >= 0) ::close(shard->epoll_fd);
    }
    shards_.clear();
    started_.store(false);
    return util::Status::Internal(std::move(message));
  };

  std::uint16_t port = config_.port;
  for (std::size_t i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = i;
    shard->listen_fd =
        ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (shard->listen_fd < 0) {
      return fail(std::string("socket(): ") + std::strerror(errno));
    }
    const int one = 1;
    ::setsockopt(shard->listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    // SO_REUSEPORT is what lets every shard own its own listening socket on
    // the same address — the kernel hashes incoming connections across them.
    if (::setsockopt(shard->listen_fd, SOL_SOCKET, SO_REUSEPORT, &one,
                     sizeof one) != 0) {
      shards_.push_back(std::move(shard));
      return fail(std::string("setsockopt(SO_REUSEPORT): ") +
                  std::strerror(errno));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr = listen_addr;
    if (::bind(shard->listen_fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0) {
      shards_.push_back(std::move(shard));
      return fail("bind(" + host + ":" + std::to_string(port) +
                  "): " + std::strerror(errno));
    }
    if (::listen(shard->listen_fd, 1024) != 0) {
      shards_.push_back(std::move(shard));
      return fail(std::string("listen(): ") + std::strerror(errno));
    }
    if (port == 0) {
      // Shard 0 resolved the ephemeral port; the remaining shards must bind
      // the same one for SO_REUSEPORT balancing to apply.
      sockaddr_in bound{};
      socklen_t len = sizeof bound;
      if (::getsockname(shard->listen_fd,
                        reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
        shards_.push_back(std::move(shard));
        return fail(std::string("getsockname(): ") + std::strerror(errno));
      }
      port = ntohs(bound.sin_port);
    }
    shard->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    shard->event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (shard->epoll_fd < 0 || shard->event_fd < 0) {
      shards_.push_back(std::move(shard));
      return fail(std::string("epoll_create1()/eventfd(): ") +
                  std::strerror(errno));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = shard->listen_fd;
    ::epoll_ctl(shard->epoll_fd, EPOLL_CTL_ADD, shard->listen_fd, &ev);
    ev.data.fd = shard->event_fd;
    ::epoll_ctl(shard->epoll_fd, EPOLL_CTL_ADD, shard->event_fd, &ev);
    shards_.push_back(std::move(shard));
  }
  bound_port_ = port;
  for (auto& shard : shards_) {
    Shard* raw = shard.get();
    shard->thread = std::thread([this, raw] { ShardLoop(*raw); });
  }
  return util::Status::Ok();
}

void HttpServer::Shutdown() {
  if (!started_.load()) return;
  stop_requested_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    if (shard->event_fd >= 0) {
      const std::uint64_t one = 1;
      [[maybe_unused]] const ssize_t n =
          ::write(shard->event_fd, &one, sizeof one);
    }
  }
  if (joined_.exchange(true)) return;
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
}

void HttpServer::ShardLoop(Shard& shard) {
  if (trace_ != nullptr) {
    trace_->SetCurrentThreadName("net-shard-" + std::to_string(shard.index));
  }
  epoll_event events[64];
  while (true) {
    if (stop_requested_.load(std::memory_order_acquire) && !shard.draining) {
      BeginDrain(shard);
    }
    if (shard.draining) {
      if (shard.connections.empty()) break;
      if (std::chrono::steady_clock::now() >= shard.drain_deadline) {
        std::vector<int> remaining;
        remaining.reserve(shard.connections.size());
        for (const auto& [fd, conn] : shard.connections) {
          remaining.push_back(fd);
        }
        for (const int fd : remaining) CloseConnection(shard, fd);
        break;
      }
    }
    const int timeout_ms = shard.draining ? 10 : -1;
    const int n = ::epoll_wait(shard.epoll_fd, events, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    // Connection and completion events first, accepts last: closes during
    // this batch free fd numbers, and deferring accept4 guarantees a stale
    // event in the same batch can never be applied to a freshly accepted
    // connection reusing one of them.
    bool accept_ready = false;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == shard.listen_fd) {
        accept_ready = true;
        continue;
      }
      if (fd == shard.event_fd) {
        std::uint64_t drained = 0;
        while (::read(shard.event_fd, &drained, sizeof drained) > 0) {
        }
        ProcessCompletions(shard);
        continue;
      }
      auto it = shard.connections.find(fd);
      if (it == shard.connections.end()) continue;  // closed earlier in batch
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        CloseConnection(shard, fd);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0 &&
          !FlushWrites(shard, fd, it->second)) {
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0) {
        ConnectionReadable(shard, fd, it->second);
      }
    }
    if (accept_ready && !shard.draining) AcceptReady(shard);
  }
  // Completions enqueued after the last eventfd read would otherwise leak
  // their count; every connection is gone, so they all record as orphaned.
  ProcessCompletions(shard);
}

void HttpServer::BeginDrain(Shard& shard) {
  shard.draining = true;
  shard.drain_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(config_.drain_timeout_s));
  if (shard.listen_fd >= 0) {
    ::epoll_ctl(shard.epoll_fd, EPOLL_CTL_DEL, shard.listen_fd, nullptr);
    ::close(shard.listen_fd);
    shard.listen_fd = -1;
  }
  // Connections are not closed preemptively — even an idle keep-alive
  // connection may have a request already in flight on the wire, and closing
  // under it would drop that request unanswered. Every connection is
  // answered-then-closed (responses carry `Connection: close` from here on):
  // in-flight and buffered requests to completion, an idle connection on its
  // next request, and only the drain deadline force-closes stragglers.
}

void HttpServer::AcceptReady(Shard& shard) {
  while (true) {
    const int fd = ::accept4(shard.listen_fd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN, or transient (EMFILE/ECONNABORTED) — next wake retries
    }
    if (shard.connections.size() >= config_.max_connections_per_shard) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(shard.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    Connection conn;
    conn.generation = shard.next_generation++;
    shard.connections.emplace(fd, std::move(conn));
    connections_total_->Increment();
    connections_active_->Add(1.0);
    if (trace_ != nullptr) {
      const auto now = std::chrono::steady_clock::now();
      trace_->EmitComplete("serve_accept", now, now,
                           {{"shard", std::to_string(shard.index)},
                            {"fd", std::to_string(fd)}});
    }
  }
}

void HttpServer::ConnectionReadable(Shard& shard, int fd, Connection& conn) {
  char buf[16384];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n > 0) {
      bytes_read_total_->Increment(static_cast<std::uint64_t>(n));
      if (!conn.timing) {
        conn.timing = true;
        conn.request_start = std::chrono::steady_clock::now();
      }
      conn.rbuf.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {  // peer EOF; a response may still be owed
      conn.read_closed = true;
      if (!conn.in_flight && conn.rbuf.empty() &&
          conn.wbuf_sent == conn.wbuf.size()) {
        CloseConnection(shard, fd);
        return;
      }
      UpdateInterest(shard, fd, conn);
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConnection(shard, fd);  // ECONNRESET and friends
    return;
  }
  TryParse(shard, fd, conn);
}

void HttpServer::TryParse(Shard& shard, int fd, Connection& conn) {
  const HttpRequestParser parser(config_.max_request_bytes);
  while (!conn.in_flight && !conn.close_after_write && !conn.rbuf.empty()) {
    HttpRequest request;
    const ParseResult result = parser.Parse(conn.rbuf, &request);
    if (result.status == ParseStatus::kNeedMore) {
      if (conn.read_closed) CloseConnection(shard, fd);  // truncated request
      return;
    }
    if (result.status == ParseStatus::kError) {
      parse_errors_total_->Increment();
      ResponseCounter(400)->Increment();
      HttpResponse response;
      response.status = 400;
      response.body = ErrorBody(result.error);
      conn.close_after_write = true;
      conn.read_closed = true;
      conn.rbuf.clear();
      QueueResponse(shard, fd, conn, response);
      UpdateInterest(shard, fd, conn);
      FlushWrites(shard, fd, conn);
      return;
    }
    requests_total_->Increment();
    conn.rbuf.erase(0, result.consumed);
    if (!request.keep_alive || shard.draining) conn.close_after_write = true;
    conn.in_flight = true;
    Responder responder(this, shard.index, fd, conn.generation);
    // The handler may answer inline; that routes through the completion
    // queue and this shard's eventfd, so `conn` is not mutated re-entrantly.
    handler_(std::move(request), std::move(responder));
    return;  // wait for the completion; leftover rbuf is the next request
  }
  if (conn.read_closed && !conn.in_flight && !conn.close_after_write &&
      conn.wbuf_sent == conn.wbuf.size()) {
    CloseConnection(shard, fd);
  }
}

void HttpServer::QueueResponse(Shard& shard, int fd, Connection& conn,
                               const HttpResponse& response) {
  (void)shard;
  (void)fd;
  conn.wbuf += SerializeResponse(response.status, response.content_type,
                                 response.body, !conn.close_after_write);
}

bool HttpServer::FlushWrites(Shard& shard, int fd, Connection& conn) {
  while (conn.wbuf_sent < conn.wbuf.size()) {
    const ssize_t n = ::send(fd, conn.wbuf.data() + conn.wbuf_sent,
                             conn.wbuf.size() - conn.wbuf_sent, MSG_NOSIGNAL);
    if (n > 0) {
      conn.wbuf_sent += static_cast<std::size_t>(n);
      bytes_written_total_->Increment(static_cast<std::uint64_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn.want_write) {
        conn.want_write = true;
        UpdateInterest(shard, fd, conn);
      }
      return true;
    }
    if (n < 0 && errno == EINTR) continue;
    CloseConnection(shard, fd);  // EPIPE: peer gave up on its response
    return false;
  }
  conn.wbuf.clear();
  conn.wbuf_sent = 0;
  if (conn.timing && !conn.in_flight) {
    // Socket-to-socket latency: first request byte read to last response
    // byte accepted by the kernel.
    const auto now = std::chrono::steady_clock::now();
    request_latency_us_->RecordRounded(
        std::chrono::duration<double, std::micro>(now - conn.request_start)
            .count());
    conn.timing = false;
  }
  if (conn.want_write) {
    conn.want_write = false;
    UpdateInterest(shard, fd, conn);
  }
  if (conn.close_after_write ||
      (conn.read_closed && !conn.in_flight && conn.rbuf.empty())) {
    CloseConnection(shard, fd);
    return false;
  }
  return true;
}

void HttpServer::UpdateInterest(Shard& shard, int fd, Connection& conn) {
  epoll_event ev{};
  ev.data.fd = fd;
  ev.events = (conn.read_closed ? 0u : static_cast<unsigned>(EPOLLIN)) |
              (conn.want_write ? static_cast<unsigned>(EPOLLOUT) : 0u);
  ::epoll_ctl(shard.epoll_fd, EPOLL_CTL_MOD, fd, &ev);
}

void HttpServer::CloseConnection(Shard& shard, int fd) {
  auto it = shard.connections.find(fd);
  if (it == shard.connections.end()) return;
  ::epoll_ctl(shard.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  shard.connections.erase(it);
  connections_active_->Add(-1.0);
}

void HttpServer::ProcessCompletions(Shard& shard) {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(shard.completion_mutex);
    batch.swap(shard.completions);
  }
  for (Completion& completion : batch) {
    auto it = shard.connections.find(completion.fd);
    if (it == shard.connections.end() ||
        it->second.generation != completion.generation) {
      // The connection died (reset, drain force-close) while the request was
      // with the handler; the generation check makes fd reuse harmless.
      responses_orphaned_total_->Increment();
      continue;
    }
    Connection& conn = it->second;
    conn.in_flight = false;
    if (shard.draining) conn.close_after_write = true;
    ResponseCounter(completion.response.status)->Increment();
    QueueResponse(shard, completion.fd, conn, completion.response);
    if (!FlushWrites(shard, completion.fd, conn)) continue;
    if (!conn.rbuf.empty()) TryParse(shard, completion.fd, conn);
  }
}

void HttpServer::Complete(std::size_t shard_index, int fd,
                          std::uint64_t generation, HttpResponse response) {
  if (shard_index >= shards_.size()) return;
  Shard& shard = *shards_[shard_index];
  {
    std::lock_guard<std::mutex> lock(shard.completion_mutex);
    shard.completions.push_back(
        Completion{fd, generation, std::move(response)});
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(shard.event_fd, &one, sizeof one);
}

}  // namespace rlplanner::net

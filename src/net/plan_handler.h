#ifndef RLPLANNER_NET_PLAN_HANDLER_H_
#define RLPLANNER_NET_PLAN_HANDLER_H_

#include <string>

#include "net/server.h"
#include "serve/plan_service.h"
#include "util/json.h"
#include "util/status.h"

namespace rlplanner::obs {
class Registry;
class TraceCollector;
}  // namespace rlplanner::obs

namespace rlplanner::net {

/// The service-to-wire error contract, in one testable place:
///   Ok                              → 200
///   InvalidArgument / OutOfRange    → 400  (bad request JSON, bad item ids)
///   NotFound                        → 404  (unknown policy slot)
///   ResourceExhausted               → 503  (admission queue full)
///   FailedPrecondition              → 503  (service draining / not running)
///   DeadlineExceeded                → 504
///   anything else                   → 500
int StatusToHttpCode(const util::Status& status);

/// Decodes the POST /v1/plan body into a PlanRequest. Strict: the document
/// must be an object, every field must have the right shape, and unknown
/// fields are rejected by name. Accepted fields (all optional):
///   policy        string   registry slot, default "default"
///   start_item    integer  first item of the rollout, default 0
///   excluded      array of integers — items the plan must never pick
///   ideal_topics  array of strings — per-user T_ideal override
///   deadline_ms   number   per-request deadline (0 = service default,
///                          negative = no deadline)
util::Result<serve::PlanRequest> PlanRequestFromJson(
    const util::json::Value& root);

/// Renders a served plan for the wire: plan items, score, validity +
/// violations, the policy version that produced it, and the queue/exec
/// timings.
std::string PlanResponseToJson(const serve::PlanResponse& response);

/// Routes the serving endpoints onto a PlanService:
///   POST /v1/plan   JSON plan request → JSON plan response (async via
///                   SubmitAsync — the epoll shard never blocks)
///   GET  /metrics   Prometheus text exposition of the shared registry
///   GET  /healthz   {"status":"ok"} liveness probe
/// Unknown targets get 404, wrong methods on known targets 405. Every plan
/// request is assigned a trace id up front so the handler's serve_parse span
/// shares the id chain of the service's queue-wait/plan/respond spans.
class PlanHandler {
 public:
  struct Options {
    /// The registry GET /metrics exports (not owned). Null serves 404 on
    /// /metrics — the other endpoints still work.
    obs::Registry* metrics = nullptr;
    /// Optional trace collector for serve_parse spans (not owned).
    obs::TraceCollector* trace = nullptr;
  };

  /// `service` must be started and must outlive the handler.
  PlanHandler(serve::PlanService* service, Options options);

  /// The HttpServer-facing entry point (runs on epoll shard threads).
  void Handle(HttpRequest request, Responder responder);

  /// Adapter for HttpServer's constructor.
  HttpServer::Handler AsHandler();

 private:
  void HandlePlan(const HttpRequest& request, Responder responder);

  serve::PlanService* service_;
  obs::Registry* metrics_;
  obs::TraceCollector* trace_;  // null when absent or disabled
};

}  // namespace rlplanner::net

#endif  // RLPLANNER_NET_PLAN_HANDLER_H_

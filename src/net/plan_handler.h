#ifndef RLPLANNER_NET_PLAN_HANDLER_H_
#define RLPLANNER_NET_PLAN_HANDLER_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "net/server.h"
#include "serve/plan_service.h"
#include "util/json.h"
#include "util/status.h"

namespace rlplanner::obs {
class FlightRecorder;
class Profiler;
class Registry;
class TraceCollector;
}  // namespace rlplanner::obs

namespace rlplanner::net {

/// The service-to-wire error contract, in one testable place:
///   Ok                              → 200
///   InvalidArgument / OutOfRange    → 400  (bad request JSON, bad item ids)
///   NotFound                        → 404  (unknown policy slot)
///   ResourceExhausted               → 503  (admission queue full)
///   FailedPrecondition              → 503  (service draining / not running)
///   DeadlineExceeded                → 504
///   anything else                   → 500
int StatusToHttpCode(const util::Status& status);

/// Decodes the POST /v1/plan body into a PlanRequest. Strict: the document
/// must be an object, every field must have the right shape, and unknown
/// fields are rejected by name. Accepted fields (all optional):
///   policy        string   registry slot, default "default"
///   start_item    integer  first item of the rollout, default 0
///   excluded      array of integers — items the plan must never pick
///   ideal_topics  array of strings — per-user T_ideal override
///   deadline_ms   number   per-request deadline (0 = service default,
///                          negative = no deadline)
///   debug_stall_ms  number >= 0 — testing hook: stall the rollout worker
///                          this long (capped at 2000 ms) to force an SLO
///                          violation the flight recorder must capture
util::Result<serve::PlanRequest> PlanRequestFromJson(
    const util::json::Value& root);

/// Renders a served plan for the wire: plan items, score, validity +
/// violations, the policy version that produced it, and the queue/exec
/// timings.
std::string PlanResponseToJson(const serve::PlanResponse& response);

/// Routes the serving and introspection endpoints onto a PlanService:
///   POST /v1/plan        JSON plan request → JSON plan response (async via
///                        SubmitAsync — the epoll shard never blocks)
///   GET  /metrics        Prometheus text exposition of the shared registry;
///                        `?exemplars=1` (or an Accept header naming
///                        application/openmetrics-text) switches to the
///                        OpenMetrics exposition carrying exemplars
///   GET  /healthz        {"status":"ok"} liveness probe
///   GET  /debug/statusz  build/uptime/profiler/recorder summary + serve
///                        stats + registry slot versions + any sections
///                        added via AddStatuszSection (e.g. the fleet table)
///   GET  /debug/tracez   flight-recorder reservoirs (active/slowest/recent)
///                        + every histogram exemplar
///   GET  /debug/pprof    collapsed-stack CPU profile of the last
///                        `?seconds=N` (default 60) — 404 without a running
///                        profiler
///   GET  /fleet/status   the fleet orchestrator's status document — 404
///                        unless a provider was wired in Options
/// Unknown targets get 404, wrong methods on known targets 405. Every plan
/// request is assigned a trace id up front so the handler's serve_parse span
/// shares the id chain of the service's queue-wait/plan/respond spans.
class PlanHandler {
 public:
  struct Options {
    /// The registry GET /metrics exports (not owned). Null serves 404 on
    /// /metrics — the other endpoints still work.
    obs::Registry* metrics = nullptr;
    /// Optional trace collector for serve_parse spans (not owned).
    obs::TraceCollector* trace = nullptr;
    /// Optional sampling profiler behind /debug/pprof (not owned). Null or
    /// disabled serves 404 there.
    obs::Profiler* profiler = nullptr;
    /// Optional flight recorder behind /debug/tracez (not owned). Tracez
    /// still renders (exemplars only) without one.
    obs::FlightRecorder* recorder = nullptr;
    /// Optional policy registry whose slot/version table /debug/statusz
    /// embeds (not owned).
    const serve::PolicyRegistry* slots = nullptr;
    /// Optional provider for GET /fleet/status (and the statusz "fleet"
    /// section): returns FleetOrchestrator::StatusJson(). Kept as a closure
    /// so rlplanner_net never links rlplanner_fleet.
    std::function<std::string()> fleet_status;
  };

  /// `service` must be started and must outlive the handler.
  PlanHandler(serve::PlanService* service, Options options);

  /// Contributes one extra section to /debug/statusz (`provider` must
  /// return a complete JSON value). Call before the server starts serving.
  void AddStatuszSection(std::string name,
                         std::function<std::string()> provider);

  /// The HttpServer-facing entry point (runs on epoll shard threads).
  void Handle(HttpRequest request, Responder responder);

  /// Adapter for HttpServer's constructor.
  HttpServer::Handler AsHandler();

 private:
  void HandlePlan(const HttpRequest& request, Responder responder);
  std::string StatuszBody() const;
  std::string SlotsJson() const;

  serve::PlanService* service_;
  obs::Registry* metrics_;
  obs::TraceCollector* trace_;  // null when absent or disabled
  obs::Profiler* profiler_;
  obs::FlightRecorder* recorder_;
  const serve::PolicyRegistry* slots_;
  std::function<std::string()> fleet_status_;
  std::vector<std::pair<std::string, std::function<std::string()>>>
      extra_sections_;
};

}  // namespace rlplanner::net

#endif  // RLPLANNER_NET_PLAN_HANDLER_H_

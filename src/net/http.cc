#include "net/http.h"

#include <algorithm>
#include <cctype>

namespace rlplanner::net {
namespace {

bool IsTokenChar(char c) {
  // RFC 9110 token characters (the subset that matters for methods and
  // header names).
  if (std::isalnum(static_cast<unsigned char>(c))) return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

ParseResult Error(std::string message) {
  ParseResult result;
  result.status = ParseStatus::kError;
  result.error = std::move(message);
  return result;
}

ParseResult NeedMore() { return ParseResult{}; }

// Trims optional whitespace around a header value (RFC: OWS).
std::string_view TrimOws(std::string_view value) {
  while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
    value.remove_prefix(1);
  }
  while (!value.empty() && (value.back() == ' ' || value.back() == '\t')) {
    value.remove_suffix(1);
  }
  return value;
}

}  // namespace

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (EqualsIgnoreCase(key, name)) return &value;
  }
  return nullptr;
}

ParseResult HttpRequestParser::Parse(std::string_view data,
                                     HttpRequest* out) const {
  // Request line: METHOD SP TARGET SP VERSION CRLF. A bare LF is tolerated
  // as the line terminator (curl --http0.9 style tools and hand-typed
  // telnet requests), per the robustness note in RFC 9112 §2.2.
  const std::size_t line_end = data.find('\n');
  if (line_end == std::string_view::npos) {
    if (data.size() > kMaxRequestLineBytes) {
      return Error("request line exceeds " +
                   std::to_string(kMaxRequestLineBytes) + " bytes");
    }
    return NeedMore();
  }
  if (line_end > kMaxRequestLineBytes) {
    return Error("request line exceeds " +
                 std::to_string(kMaxRequestLineBytes) + " bytes");
  }
  std::string_view line = data.substr(0, line_end);
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);

  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? std::string_view::npos
                                    : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      line.find(' ', sp2 + 1) != std::string_view::npos) {
    return Error("malformed request line");
  }
  const std::string_view method = line.substr(0, sp1);
  const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = line.substr(sp2 + 1);
  if (method.empty() ||
      !std::all_of(method.begin(), method.end(), IsTokenChar)) {
    return Error("malformed method token");
  }
  if (target.empty() || target.front() != '/') {
    return Error("request target must be origin-form (start with '/')");
  }
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return Error("unsupported protocol version '" + std::string(version) +
                 "'");
  }

  HttpRequest request;
  request.method = std::string(method);
  request.target = std::string(target);
  request.version = std::string(version);
  request.keep_alive = version == "HTTP/1.1";

  // Header fields until the empty line.
  std::size_t pos = line_end + 1;
  bool saw_end_of_headers = false;
  std::size_t content_length = 0;
  bool has_content_length = false;
  while (pos < data.size()) {
    const std::size_t eol = data.find('\n', pos);
    if (eol == std::string_view::npos) {
      if (data.size() - pos > kMaxHeaderLineBytes) {
        return Error("header line exceeds " +
                     std::to_string(kMaxHeaderLineBytes) + " bytes");
      }
      break;  // incomplete header line
    }
    if (eol - pos > kMaxHeaderLineBytes) {
      return Error("header line exceeds " +
                   std::to_string(kMaxHeaderLineBytes) + " bytes");
    }
    std::string_view header_line = data.substr(pos, eol - pos);
    if (!header_line.empty() && header_line.back() == '\r') {
      header_line.remove_suffix(1);
    }
    pos = eol + 1;
    if (header_line.empty()) {
      saw_end_of_headers = true;
      break;
    }
    if (request.headers.size() >= kMaxHeaders) {
      return Error("more than " + std::to_string(kMaxHeaders) +
                   " header fields");
    }
    const std::size_t colon = header_line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Error("malformed header field");
    }
    const std::string_view name = header_line.substr(0, colon);
    if (!std::all_of(name.begin(), name.end(), IsTokenChar)) {
      return Error("malformed header name");
    }
    const std::string_view value = TrimOws(header_line.substr(colon + 1));
    request.headers.emplace_back(std::string(name), std::string(value));

    if (EqualsIgnoreCase(name, "Content-Length")) {
      if (has_content_length) {
        return Error("duplicate Content-Length");
      }
      if (value.empty() || value.size() > 10 ||
          value.find_first_not_of("0123456789") != std::string_view::npos) {
        return Error("malformed Content-Length");
      }
      content_length = 0;
      for (const char c : value) {
        content_length = content_length * 10 +
                         static_cast<std::size_t>(c - '0');
      }
      has_content_length = true;
    } else if (EqualsIgnoreCase(name, "Transfer-Encoding")) {
      return Error("Transfer-Encoding is not supported (use Content-Length)");
    } else if (EqualsIgnoreCase(name, "Connection")) {
      if (EqualsIgnoreCase(value, "close")) {
        request.keep_alive = false;
      } else if (EqualsIgnoreCase(value, "keep-alive")) {
        request.keep_alive = true;
      }
    }
  }

  if (!saw_end_of_headers) {
    if (pos >= max_request_bytes_) {
      return Error("request head exceeds " +
                   std::to_string(max_request_bytes_) + " bytes");
    }
    return NeedMore();
  }

  const std::size_t total = pos + content_length;
  if (total > max_request_bytes_) {
    return Error("request of " + std::to_string(total) +
                 " bytes exceeds the " + std::to_string(max_request_bytes_) +
                 "-byte limit");
  }
  if (data.size() < total) return NeedMore();

  request.body = std::string(data.substr(pos, content_length));
  *out = std::move(request);
  ParseResult result;
  result.status = ParseStatus::kOk;
  result.consumed = total;
  return result;
}

const char* StatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Content Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

std::string SerializeResponse(int status, std::string_view content_type,
                              std::string_view body, bool keep_alive) {
  std::string out;
  out.reserve(128 + body.size());
  out += "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += StatusReason(status);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += keep_alive ? "\r\nConnection: keep-alive\r\n\r\n"
                    : "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

std::string_view TargetPath(std::string_view target) {
  const std::size_t cut = target.find_first_of("?#");
  return cut == std::string_view::npos ? target : target.substr(0, cut);
}

bool QueryParam(std::string_view target, std::string_view key,
                std::string* value) {
  std::size_t query_start = target.find('?');
  if (query_start == std::string_view::npos) return false;
  std::string_view query = target.substr(query_start + 1);
  const std::size_t fragment = query.find('#');
  if (fragment != std::string_view::npos) query = query.substr(0, fragment);
  while (!query.empty()) {
    const std::size_t amp = query.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? query : query.substr(0, amp);
    query = amp == std::string_view::npos ? std::string_view{}
                                          : query.substr(amp + 1);
    const std::size_t eq = pair.find('=');
    const std::string_view name =
        eq == std::string_view::npos ? pair : pair.substr(0, eq);
    if (name == key) {
      *value = eq == std::string_view::npos
                   ? std::string()
                   : std::string(pair.substr(eq + 1));
      return true;
    }
  }
  return false;
}

}  // namespace rlplanner::net

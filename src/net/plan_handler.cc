#include "net/plan_handler.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <utility>

#include "obs/debugz.h"
#include "obs/export.h"
#include "obs/profiler.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace rlplanner::net {
namespace {

std::string ErrorBody(const util::Status& status) {
  return "{\"error\":\"" + obs::JsonEscape(status.message()) +
         "\",\"code\":\"" + util::StatusCodeName(status.code()) + "\"}\n";
}

std::string FormatDouble(double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return buf;
}

/// An integral JSON number that fits the wire protocol's id/deadline range,
/// or InvalidArgument naming the field.
util::Result<long long> RequireInteger(const util::json::Value& value,
                                       const char* field) {
  if (!value.is_integer()) {
    return util::Status::InvalidArgument(std::string("'") + field +
                                         "' must be an integer");
  }
  const double number = value.AsNumber();
  if (number < -2147483648.0 || number > 2147483647.0) {
    return util::Status::InvalidArgument(std::string("'") + field +
                                         "' is out of range");
  }
  return static_cast<long long>(number);
}

}  // namespace

int StatusToHttpCode(const util::Status& status) {
  switch (status.code()) {
    case util::StatusCode::kOk:
      return 200;
    case util::StatusCode::kInvalidArgument:
    case util::StatusCode::kOutOfRange:
      return 400;
    case util::StatusCode::kNotFound:
      return 404;
    case util::StatusCode::kResourceExhausted:
    case util::StatusCode::kFailedPrecondition:
      return 503;
    case util::StatusCode::kDeadlineExceeded:
      return 504;
    default:
      return 500;
  }
}

util::Result<serve::PlanRequest> PlanRequestFromJson(
    const util::json::Value& root) {
  if (!root.is_object()) {
    return util::Status::InvalidArgument(
        "request body must be a JSON object");
  }
  serve::PlanRequest request;
  for (const auto& [key, value] : root.AsObject()) {
    if (key == "policy") {
      if (!value.is_string()) {
        return util::Status::InvalidArgument("'policy' must be a string");
      }
      request.policy_name = value.AsString();
    } else if (key == "start_item") {
      auto item = RequireInteger(value, "start_item");
      if (!item.ok()) return item.status();
      request.start_item = static_cast<model::ItemId>(item.value());
    } else if (key == "excluded") {
      if (!value.is_array()) {
        return util::Status::InvalidArgument(
            "'excluded' must be an array of integers");
      }
      for (const util::json::Value& element : value.AsArray()) {
        auto item = RequireInteger(element, "excluded");
        if (!item.ok()) return item.status();
        request.excluded.push_back(static_cast<model::ItemId>(item.value()));
      }
    } else if (key == "ideal_topics") {
      if (!value.is_array()) {
        return util::Status::InvalidArgument(
            "'ideal_topics' must be an array of strings");
      }
      std::vector<std::string> topics;
      for (const util::json::Value& element : value.AsArray()) {
        if (!element.is_string()) {
          return util::Status::InvalidArgument(
              "'ideal_topics' must be an array of strings");
        }
        topics.push_back(element.AsString());
      }
      request.ideal_topics = std::move(topics);
    } else if (key == "deadline_ms") {
      if (!value.is_number()) {
        return util::Status::InvalidArgument(
            "'deadline_ms' must be a number");
      }
      request.deadline_ms = value.AsNumber();
    } else if (key == "debug_stall_ms") {
      if (!value.is_number() || value.AsNumber() < 0.0) {
        return util::Status::InvalidArgument(
            "'debug_stall_ms' must be a non-negative number");
      }
      request.debug_stall_ms = value.AsNumber();
    } else {
      return util::Status::InvalidArgument("unknown field '" + key + "'");
    }
  }
  return request;
}

std::string PlanResponseToJson(const serve::PlanResponse& response) {
  std::string out;
  out.reserve(128 + response.plan.items().size() * 4);
  out += "{\"plan\":[";
  for (std::size_t i = 0; i < response.plan.items().size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(response.plan.items()[i]);
  }
  out += "],\"score\":";
  out += FormatDouble(response.score);
  out += ",\"valid\":";
  out += response.valid ? "true" : "false";
  out += ",\"violations\":[";
  for (std::size_t i = 0; i < response.violations.size(); ++i) {
    if (i != 0) out += ',';
    out += '"';
    out += obs::JsonEscape(response.violations[i]);
    out += '"';
  }
  out += "],\"policy_version\":";
  out += std::to_string(response.policy_version);
  out += ",\"queue_ms\":";
  out += FormatDouble(response.queue_ms);
  out += ",\"exec_ms\":";
  out += FormatDouble(response.exec_ms);
  out += "}\n";
  return out;
}

PlanHandler::PlanHandler(serve::PlanService* service, Options options)
    : service_(service),
      metrics_(options.metrics),
      trace_(options.trace != nullptr && options.trace->enabled()
                 ? options.trace
                 : nullptr),
      profiler_(options.profiler != nullptr && options.profiler->enabled()
                    ? options.profiler
                    : nullptr),
      recorder_(options.recorder != nullptr && options.recorder->enabled()
                    ? options.recorder
                    : nullptr),
      slots_(options.slots),
      fleet_status_(std::move(options.fleet_status)) {}

void PlanHandler::AddStatuszSection(std::string name,
                                    std::function<std::string()> provider) {
  extra_sections_.emplace_back(std::move(name), std::move(provider));
}

HttpServer::Handler PlanHandler::AsHandler() {
  return [this](HttpRequest request, Responder responder) {
    Handle(std::move(request), std::move(responder));
  };
}

namespace {

/// 405 with the canonical "use METHOD /path" hint.
void SendMethodNotAllowed(Responder& responder, const char* hint) {
  responder.Send(HttpResponse{
      405, "application/json",
      ErrorBody(util::Status::InvalidArgument(std::string("use ") + hint))});
}

void SendNotFound(Responder& responder, std::string message) {
  responder.Send(HttpResponse{
      404, "application/json",
      ErrorBody(util::Status::NotFound(std::move(message)))});
}

/// Whether this /metrics request asked for the OpenMetrics exposition: an
/// explicit ?exemplars= query parameter, or content negotiation via an
/// Accept header naming application/openmetrics-text.
bool WantsOpenMetrics(const HttpRequest& request) {
  std::string value;
  if (QueryParam(request.target, "exemplars", &value)) {
    return value != "0" && value != "false";
  }
  const std::string* accept = request.FindHeader("Accept");
  return accept != nullptr &&
         accept->find("application/openmetrics-text") != std::string::npos;
}

}  // namespace

void PlanHandler::Handle(HttpRequest request, Responder responder) {
  const std::string_view path = TargetPath(request.target);
  if (path == "/v1/plan") {
    if (request.method != "POST") {
      SendMethodNotAllowed(responder, "POST /v1/plan");
      return;
    }
    HandlePlan(request, std::move(responder));
    return;
  }
  if (request.method != "GET" &&
      (path == "/healthz" || path == "/metrics" || path == "/debug/statusz" ||
       path == "/debug/tracez" || path == "/debug/pprof" ||
       path == "/fleet/status")) {
    SendMethodNotAllowed(responder, ("GET " + std::string(path)).c_str());
    return;
  }
  if (path == "/healthz") {
    responder.Send(HttpResponse{200, "application/json",
                                "{\"status\":\"ok\"}\n"});
    return;
  }
  if (path == "/metrics") {
    if (metrics_ == nullptr) {
      SendNotFound(responder, "no metrics registry configured");
      return;
    }
    HttpResponse response;
    response.status = 200;
    if (WantsOpenMetrics(request)) {
      response.content_type =
          "application/openmetrics-text; version=1.0.0; charset=utf-8";
      response.body = obs::ToOpenMetricsText(metrics_->Collect());
    } else {
      response.content_type = "text/plain; version=0.0.4; charset=utf-8";
      response.body = obs::ToPrometheusText(metrics_->Collect());
    }
    responder.Send(std::move(response));
    return;
  }
  if (path == "/debug/statusz") {
    responder.Send(HttpResponse{200, "application/json", StatuszBody()});
    return;
  }
  if (path == "/debug/tracez") {
    responder.Send(HttpResponse{
        200, "application/json",
        obs::TracezJson(recorder_, metrics_ != nullptr
                                       ? metrics_->Collect()
                                       : obs::MetricsSnapshot{})});
    return;
  }
  if (path == "/debug/pprof") {
    if (profiler_ == nullptr) {
      SendNotFound(responder,
                   "no sampling profiler running (start with --profile-hz)");
      return;
    }
    double seconds = 60.0;
    std::string value;
    if (QueryParam(request.target, "seconds", &value)) {
      char* end = nullptr;
      const double parsed = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0' || !(parsed > 0.0)) {
        responder.Send(HttpResponse{
            400, "application/json",
            ErrorBody(util::Status::InvalidArgument(
                "'seconds' must be a positive number"))});
        return;
      }
      seconds = std::min(parsed, 3600.0);
    }
    responder.Send(HttpResponse{200, "text/plain; charset=utf-8",
                                profiler_->Collapsed(seconds)});
    return;
  }
  if (path == "/fleet/status") {
    if (!fleet_status_) {
      SendNotFound(responder, "no fleet orchestrator attached");
      return;
    }
    responder.Send(HttpResponse{200, "application/json", fleet_status_()});
    return;
  }
  SendNotFound(responder, "no route for '" + request.target + "'");
}

std::string PlanHandler::SlotsJson() const {
  std::string out = "{\"install_count\":";
  out += std::to_string(slots_->install_count());
  out += ",\"slots\":[";
  std::vector<std::string> names = slots_->Names();
  std::sort(names.begin(), names.end());
  bool first = true;
  for (const std::string& name : names) {
    const auto info = slots_->Info(name);
    if (!info.has_value()) continue;
    if (!first) out += ',';
    first = false;
    out += "{\"slot\":\"";
    out += obs::JsonEscape(name);
    out += "\",\"incumbent_version\":";
    out += std::to_string(info->incumbent_version);
    out += ",\"canary_version\":";
    out += std::to_string(info->canary_version);
    out += ",\"canary_permille\":";
    out += std::to_string(info->canary_permille);
    out += ",\"previous_version\":";
    out += std::to_string(info->previous_version);
    out += '}';
  }
  out += "]}";
  return out;
}

std::string PlanHandler::StatuszBody() const {
  std::vector<obs::StatuszSection> sections;
  sections.push_back({"serve", service_->stats().ToJson()});
  if (slots_ != nullptr) sections.push_back({"slots", SlotsJson()});
  if (fleet_status_) sections.push_back({"fleet", fleet_status_()});
  for (const auto& [name, provider] : extra_sections_) {
    sections.push_back({name, provider()});
  }
  return obs::StatuszJson(profiler_, recorder_, sections);
}

void PlanHandler::HandlePlan(const HttpRequest& request,
                             Responder responder) {
  // Allocate the trace id before parsing so the serve_parse span shares the
  // id chain with the service's queue-wait/plan/respond spans.
  const std::uint64_t trace_id =
      trace_ != nullptr ? service_->AllocateTraceId() : 0;
  const auto parse_begin = std::chrono::steady_clock::now();
  serve::PlanRequest plan_request;
  util::Status parse_status = util::Status::Ok();
  {
    auto document = util::json::Parse(request.body);
    if (!document.ok()) {
      parse_status = document.status();
    } else {
      auto decoded = PlanRequestFromJson(document.value());
      if (!decoded.ok()) {
        parse_status = decoded.status();
      } else {
        plan_request = std::move(decoded).value();
      }
    }
  }
  if (trace_ != nullptr) {
    trace_->EmitComplete("serve_parse", parse_begin,
                         std::chrono::steady_clock::now(),
                         {{"trace_id", std::to_string(trace_id)},
                          {"status", parse_status.ok() ? "ok" : "error"}});
  }
  if (!parse_status.ok()) {
    responder.Send(HttpResponse{StatusToHttpCode(parse_status),
                                "application/json", ErrorBody(parse_status)});
    return;
  }
  plan_request.trace_id = trace_id;
  // PlanService::Callback is a std::function and must stay copyable; the
  // move-only Responder rides in a shared_ptr.
  auto shared = std::make_shared<Responder>(std::move(responder));
  const util::Status submitted = service_->SubmitAsync(
      std::move(plan_request),
      [shared](util::Result<serve::PlanResponse> result) {
        if (result.ok()) {
          shared->Send(HttpResponse{200, "application/json",
                                    PlanResponseToJson(result.value())});
        } else {
          shared->Send(HttpResponse{StatusToHttpCode(result.status()),
                                    "application/json",
                                    ErrorBody(result.status())});
        }
      });
  if (!submitted.ok()) {
    // Rejected at admission (queue full, draining): the callback never runs,
    // the Responder is still ours to spend.
    shared->Send(HttpResponse{StatusToHttpCode(submitted), "application/json",
                              ErrorBody(submitted)});
  }
}

}  // namespace rlplanner::net

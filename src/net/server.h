#ifndef RLPLANNER_NET_SERVER_H_
#define RLPLANNER_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/http.h"
#include "util/status.h"

namespace rlplanner::obs {
class Registry;
class Counter;
class Gauge;
class Histogram;
class TraceCollector;
}  // namespace rlplanner::obs

namespace rlplanner::net {

/// The handler's answer to one request. Serialized by the owning shard with
/// Content-Length and the connection's keep-alive disposition.
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

class HttpServer;

/// A move-only completion token for exactly one in-flight request. Send()
/// may be called from any thread (the epoll shard itself for inline
/// handlers, a PlanService worker for async ones); the response is routed
/// back to the owning shard through its completion queue and eventfd, so no
/// connection state is ever touched off-shard. Destroying an unanswered
/// Responder sends 500 — a handler bug must not wedge the connection.
class Responder {
 public:
  Responder() = default;
  Responder(Responder&& other) noexcept { *this = std::move(other); }
  Responder& operator=(Responder&& other) noexcept;
  Responder(const Responder&) = delete;
  Responder& operator=(const Responder&) = delete;
  ~Responder();

  /// Delivers the response; valid exactly once, then the token is spent.
  void Send(HttpResponse response);

  bool valid() const { return server_ != nullptr; }

 private:
  friend class HttpServer;
  Responder(HttpServer* server, std::size_t shard, int fd,
            std::uint64_t generation)
      : server_(server), shard_(shard), fd_(fd), generation_(generation) {}

  HttpServer* server_ = nullptr;
  std::size_t shard_ = 0;
  int fd_ = -1;
  std::uint64_t generation_ = 0;
};

struct HttpServerConfig {
  /// Dotted-quad IPv4 listen address ("127.0.0.1", "0.0.0.0"); "localhost"
  /// is accepted as an alias for 127.0.0.1.
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  /// Acceptor/worker shards: each gets its own SO_REUSEPORT listening
  /// socket, epoll instance, and thread — shared-nothing, the kernel load
  /// balances accepts across them. 0 means one per hardware thread.
  std::size_t num_shards = 0;
  /// Hard bound on one request (head + body); beyond it the connection gets
  /// 400 and is closed. Also bounds the per-connection read buffer.
  std::size_t max_request_bytes = std::size_t{64} * 1024;
  /// Accepted connections per shard; accepts beyond it are closed on sight.
  std::size_t max_connections_per_shard = 4096;
  /// Graceful-drain budget for Shutdown(): time allowed for in-flight
  /// responses to be computed and flushed before connections are closed
  /// forcibly.
  double drain_timeout_s = 5.0;
  /// Shared metrics registry for the net_* counters/histograms (not owned;
  /// must outlive the server). Null gives the server a private registry.
  obs::Registry* metrics = nullptr;
  /// Optional trace collector (not owned): emits serve_accept events and
  /// names the shard timelines.
  obs::TraceCollector* trace = nullptr;
};

/// An epoll-based HTTP/1.1 front end with per-core shared-nothing shards.
///
/// Each shard owns its listening socket (SO_REUSEPORT), its epoll loop, and
/// every connection it accepted — no connection is ever touched by two
/// shards, so the data plane needs no locks. The only cross-thread edge is
/// the completion queue: handlers answer through a Responder, which
/// enqueues the response on the owning shard and wakes its eventfd.
///
/// Lifecycle: construct → Start() → serve → Shutdown(). Shutdown is
/// graceful: every shard stops accepting (closes its listening socket),
/// closes idle keep-alive connections, finishes parsing/serving requests
/// already on the wire (responses go out with `Connection: close`), and
/// force-closes stragglers only after config.drain_timeout_s. Idempotent;
/// also run by the destructor.
///
/// Registered metrics (latency in microseconds):
///   net_connections_total / net_connections_active      counter / gauge
///   net_bytes_read_total / net_bytes_written_total      counters
///   net_requests_total / net_parse_errors_total         counters
///   net_responses_total{code="..."}                     counter per status
///   net_responses_orphaned_total                        counter (peer gone)
///   net_request_latency_us                              histogram
///     (first request byte read → last response byte written to the socket)
class HttpServer {
 public:
  /// Invoked on the owning shard's thread with one parsed request. The
  /// handler either answers inline or moves the Responder into an async
  /// completion (e.g. a PlanService callback). Must not block.
  using Handler = std::function<void(HttpRequest, Responder)>;

  HttpServer(HttpServerConfig config, Handler handler);
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;
  ~HttpServer();

  /// Binds the listening sockets and spawns the shard threads. Fails with
  /// the bind/listen error without partial listeners left behind.
  util::Status Start();

  /// Graceful drain then join; see class comment. Idempotent.
  void Shutdown();

  /// The bound port (resolves port 0 after Start()).
  std::uint16_t port() const { return bound_port_; }
  /// Shards actually running (resolves num_shards 0 after Start()).
  std::size_t num_shards() const { return shards_.size(); }
  const HttpServerConfig& config() const { return config_; }
  /// The registry the net_* metrics record into (never null after
  /// construction).
  obs::Registry* metrics_registry() const { return metrics_; }

 private:
  friend class Responder;

  struct Connection {
    std::uint64_t generation = 0;
    std::string rbuf;
    std::string wbuf;
    std::size_t wbuf_sent = 0;
    bool in_flight = false;         // a request is with the handler
    bool close_after_write = false;
    bool read_closed = false;       // peer EOF or we stopped reading
    bool want_write = false;        // EPOLLOUT currently armed
    bool timing = false;
    std::chrono::steady_clock::time_point request_start{};
  };

  struct Completion {
    int fd = -1;
    std::uint64_t generation = 0;
    HttpResponse response;
  };

  struct Shard {
    std::size_t index = 0;
    int listen_fd = -1;
    int epoll_fd = -1;
    int event_fd = -1;
    std::thread thread;
    std::mutex completion_mutex;
    std::vector<Completion> completions;
    std::unordered_map<int, Connection> connections;
    std::uint64_t next_generation = 1;
    bool draining = false;
    std::chrono::steady_clock::time_point drain_deadline{};
  };

  void ShardLoop(Shard& shard);
  void AcceptReady(Shard& shard);
  void ConnectionReadable(Shard& shard, int fd, Connection& conn);
  void TryParse(Shard& shard, int fd, Connection& conn);
  void QueueResponse(Shard& shard, int fd, Connection& conn,
                     const HttpResponse& response);
  /// Flushes as much of wbuf as the socket accepts; closes on completion
  /// when requested. Returns false when the connection was closed.
  bool FlushWrites(Shard& shard, int fd, Connection& conn);
  void UpdateInterest(Shard& shard, int fd, Connection& conn);
  void CloseConnection(Shard& shard, int fd);
  void BeginDrain(Shard& shard);
  void ProcessCompletions(Shard& shard);

  /// Responder's entry point: enqueue on the owning shard, wake its loop.
  void Complete(std::size_t shard_index, int fd, std::uint64_t generation,
                HttpResponse response);

  obs::Counter* ResponseCounter(int status);

  HttpServerConfig config_;
  Handler handler_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::uint16_t bound_port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> joined_{false};

  std::unique_ptr<obs::Registry> owned_registry_;
  obs::Registry* metrics_;
  obs::TraceCollector* trace_;  // null when absent or disabled
  obs::Counter* connections_total_;
  obs::Gauge* connections_active_;
  obs::Counter* bytes_read_total_;
  obs::Counter* bytes_written_total_;
  obs::Counter* requests_total_;
  obs::Counter* parse_errors_total_;
  obs::Counter* responses_orphaned_total_;
  obs::Histogram* request_latency_us_;
  std::mutex response_counters_mutex_;
  std::unordered_map<int, obs::Counter*> response_counters_;
};

}  // namespace rlplanner::net

#endif  // RLPLANNER_NET_SERVER_H_

#include "core/validation.h"

#include "util/string_util.h"

namespace rlplanner::core {

std::string ValidationReport::ToString() const {
  if (valid) return "valid";
  return "INVALID: " + util::Join(violations, ", ");
}

ValidationReport ValidatePlan(const model::TaskInstance& instance,
                              const model::Plan& plan) {
  const mdp::CmdpSpec spec = mdp::CmdpSpec::FromInstance(instance);
  ValidationReport report;
  report.costs = spec.Evaluate(plan);
  for (const auto& constraint : spec.constraints()) {
    report.constraint_names.push_back(constraint.name);
  }
  report.violations = spec.Violations(plan);
  report.valid = report.violations.empty();
  return report;
}

}  // namespace rlplanner::core

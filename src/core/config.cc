#include "core/config.h"

namespace rlplanner::core {

util::Status PlannerConfig::Validate() const {
  if (sarsa.num_episodes <= 0) {
    return util::Status::InvalidArgument("num_episodes must be positive");
  }
  if (sarsa.alpha <= 0.0 || sarsa.alpha > 1.0) {
    return util::Status::InvalidArgument("alpha must be in (0, 1]");
  }
  if (sarsa.gamma < 0.0 || sarsa.gamma > 1.0) {
    return util::Status::InvalidArgument("gamma must be in [0, 1]");
  }
  if (sarsa.explore_epsilon < 0.0 || sarsa.explore_epsilon > 1.0) {
    return util::Status::InvalidArgument("explore_epsilon must be in [0, 1]");
  }
  if (sarsa.num_workers < 1) {
    return util::Status::InvalidArgument("num_workers must be >= 1");
  }
  if (sarsa.parallel_mode == rl::ParallelMode::kHogwild &&
      sarsa.q_representation == rl::QRepresentation::kSparse) {
    return util::Status::InvalidArgument(
        "q_representation kSparse is incompatible with kHogwild "
        "(the Hogwild table is an atomic dense array); use kDense or a "
        "non-Hogwild parallel mode");
  }
  return reward.Validate();
}

PlannerConfig DefaultUniv1Config() {
  PlannerConfig config;
  config.sarsa.num_episodes = 500;
  config.sarsa.alpha = 0.75;
  config.sarsa.gamma = 0.95;
  config.reward.epsilon = 0.0025;
  config.reward.delta = 0.6;
  config.reward.beta = 0.4;
  config.reward.category_weights = {0.6, 0.4};
  return config;
}

PlannerConfig DefaultUniv2Config() {
  PlannerConfig config;
  config.sarsa.num_episodes = 100;
  config.sarsa.alpha = 0.75;
  config.sarsa.gamma = 0.95;
  config.reward.epsilon = 0.0025;
  config.reward.delta = 0.8;
  config.reward.beta = 0.2;
  config.reward.category_weights = {0.25, 0.01, 0.15, 0.42, 0.01, 0.16};
  return config;
}

PlannerConfig DefaultTripConfig() {
  PlannerConfig config;
  config.sarsa.num_episodes = 500;
  config.sarsa.alpha = 0.75;
  config.sarsa.gamma = 0.95;
  config.reward.epsilon = 0.0025;
  config.reward.delta = 0.6;
  config.reward.beta = 0.4;
  config.reward.category_weights = {0.6, 0.4};
  return config;
}

}  // namespace rlplanner::core

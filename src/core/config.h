#ifndef RLPLANNER_CORE_CONFIG_H_
#define RLPLANNER_CORE_CONFIG_H_

#include <cstdint>

#include "mdp/reward.h"
#include "rl/recommender.h"
#include "rl/sarsa.h"

namespace rlplanner::obs {
class Registry;
class TraceCollector;
}  // namespace rlplanner::obs

namespace rlplanner::core {

/// Everything needed to train and query RL-Planner on one task instance.
struct PlannerConfig {
  /// Learning-phase parameters (N, alpha, gamma, exploration, s_1).
  rl::SarsaConfig sarsa;
  /// Reward-function parameters (delta/beta, category weights, epsilon,
  /// Avg vs Min similarity).
  mdp::RewardWeights reward;
  /// Seed for all stochastic choices of this planner.
  std::uint64_t seed = 17;
  /// Recommend via beam search instead of the greedy traversal.
  bool use_beam_search = false;
  /// Beam parameters (used when use_beam_search is set).
  rl::BeamConfig beam;
  /// Metrics registry Train() records into (not owned; may be null for no
  /// instrumentation). Lives here rather than on SarsaConfig because the
  /// latter is serialized into snapshot provenance — a process-local
  /// pointer has no business in a persisted config.
  obs::Registry* metrics = nullptr;
  /// Trace collector Train() emits timeline events into (not owned; may be
  /// null for no tracing). Same process-local-pointer rationale as
  /// `metrics`.
  obs::TraceCollector* trace = nullptr;

  /// Cross-field checks (weights valid, N positive, alpha/gamma in range).
  util::Status Validate() const;
};

/// Table III defaults for the Univ-1 (NJIT) course programs:
/// N=500, alpha=0.75, gamma=0.95, epsilon=0.0025, delta/beta=0.6/0.4,
/// w1/w2=0.6/0.4 (the paper's best-performing Univ-1 weights).
PlannerConfig DefaultUniv1Config();

/// Table III defaults for the Univ-2 (Stanford) M.S. DS program:
/// N=100 and six sub-discipline weights w1..w6 =
/// {0.25, 0.01, 0.15, 0.42, 0.01, 0.16}, delta/beta=0.8/0.2.
PlannerConfig DefaultUniv2Config();

/// Table III defaults for the NYC/Paris trip datasets:
/// N=500, alpha=0.75, gamma=0.95, delta/beta=0.6/0.4.
PlannerConfig DefaultTripConfig();

}  // namespace rlplanner::core

#endif  // RLPLANNER_CORE_CONFIG_H_

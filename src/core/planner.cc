#include "core/planner.h"

#include <chrono>
#include <fstream>
#include <sstream>
#include <type_traits>

#include "core/scoring.h"
#include "obs/span.h"
#include "obs/training_metrics.h"
#include "rl/parallel_sarsa.h"
#include "rl/recommender.h"
#include "rl/sarsa.h"

namespace rlplanner::core {

RlPlanner::RlPlanner(const model::TaskInstance& instance,
                     PlannerConfig config)
    : instance_(&instance),
      config_(std::move(config)),
      reward_(*instance_, config_.reward) {}

RlPlanner::~RlPlanner() = default;

util::Status RlPlanner::Train() {
  RLP_RETURN_IF_ERROR(config_.Validate());
  RLP_RETURN_IF_ERROR(instance_->Validate());
  const std::size_t n = instance_->catalog->size();
  const rl::QRepresentation repr =
      rl::ResolveQRepresentation(config_.sarsa.q_representation, n);
  if (repr == rl::QRepresentation::kSparse &&
      config_.sarsa.parallel_mode == rl::ParallelMode::kHogwild) {
    // Catches kAuto resolving to sparse on a big catalog; the explicit
    // kSparse + kHogwild pairing is already rejected by Validate().
    return util::Status::InvalidArgument(
        "catalog of " + std::to_string(n) +
        " items auto-selects the sparse Q representation, which is "
        "incompatible with kHogwild; set q_representation = kDense or use "
        "kDeterministic");
  }
  if (repr == rl::QRepresentation::kSparse && n > rl::kSparseAutoThreshold &&
      config_.sarsa.policy_rounds > 1) {
    // The policy-iteration restart path calls AddNoise, which is only
    // bit-identical to dense by materializing all |I|^2 entries — exactly
    // the allocation sparse exists to avoid at this scale (~80 GB at 100k
    // items). Fail fast here instead of OOM-ing mid-training the first
    // time a round's safety rollout fails. Below the threshold the dense
    // footprint is affordable by definition, so small-catalog sparse runs
    // (e.g. the dense-vs-sparse equivalence tests) keep their rounds.
    return util::Status::InvalidArgument(
        "catalog of " + std::to_string(n) +
        " items resolves to the sparse Q representation, which requires "
        "policy_rounds == 1: the restart path (AddNoise) would materialize "
        "all |I|^2 entries");
  }
  training_metrics_ =
      config_.metrics != nullptr
          ? std::make_unique<obs::TrainingMetrics>(config_.metrics)
          : nullptr;
  const auto start = std::chrono::steady_clock::now();
  // Root span of the whole training run: the `train_round` /
  // `train_shard` / `train_merge` spans the learners emit nest under it.
  obs::ScopedSpan train_span(config_.metrics, "train", config_.trace);
  train_span.AddArg("episodes",
                    static_cast<std::uint64_t>(config_.sarsa.num_episodes));
  train_span.AddArg("q_repr",
                    repr == rl::QRepresentation::kSparse ? "sparse" : "dense");
  // One lambda per representation keeps the four-way (parallel x repr)
  // dispatch in one place; the learners themselves are shared templates.
  auto train_as = [&](auto& storage) {
    using Model = typename std::decay_t<decltype(storage)>::value_type;
    if (config_.sarsa.parallel_mode != rl::ParallelMode::kSerial &&
        config_.sarsa.num_workers > 1) {
      rl::ParallelSarsaLearnerT<Model> learner(*instance_, reward_,
                                               config_.sarsa, config_.seed);
      learner.set_metrics(training_metrics_.get());
      learner.set_trace(config_.trace);
      storage = learner.Learn();
      episode_returns_ = learner.episode_returns();
    } else {
      // Serial config (or a single worker, which the parallel learner would
      // delegate straight back here anyway).
      rl::SarsaLearnerT<Model> learner(*instance_, reward_, config_.sarsa,
                                       config_.seed);
      learner.set_metrics(training_metrics_.get());
      learner.set_trace(config_.trace);
      storage = learner.Learn();
      episode_returns_ = learner.episode_returns();
    }
  };
  if (repr == rl::QRepresentation::kSparse) {
    q_.reset();
    train_as(sparse_q_);
  } else {
    sparse_q_.reset();
    train_as(q_);
  }
  RecordQTableGauges();
  const auto end = std::chrono::steady_clock::now();
  train_seconds_ = std::chrono::duration<double>(end - start).count();
  return util::Status::Ok();
}

void RlPlanner::RecordQTableGauges() const {
  if (training_metrics_ == nullptr) return;
  if (sparse_q_.has_value()) {
    training_metrics_->RecordQTableStats(sparse_q_->MemoryBytes(),
                                         sparse_q_->NonZeroFraction());
  } else if (q_.has_value()) {
    training_metrics_->RecordQTableStats(
        q_->values().size() * sizeof(double) + sizeof(mdp::QTable),
        q_->NonZeroFraction());
  }
}

util::Result<model::Plan> RlPlanner::Recommend(
    model::ItemId start_item) const {
  rl::RecommendConfig recommend;
  recommend.start_item = start_item;
  recommend.mask_type_overflow = config_.sarsa.mask_type_overflow;
  recommend.gamma = config_.sarsa.gamma;
  return Recommend(recommend);
}

util::Result<model::Plan> RlPlanner::Recommend(
    const rl::RecommendConfig& recommend) const {
  if (!trained()) {
    return util::Status::FailedPrecondition(
        "Recommend() called before Train() or AdoptPolicy()");
  }
  if (recommend.start_item < 0 ||
      static_cast<std::size_t>(recommend.start_item) >=
          instance_->catalog->size()) {
    std::ostringstream msg;
    msg << "start item " << recommend.start_item
        << " out of range (catalog size " << instance_->catalog->size() << ")";
    return util::Status::OutOfRange(msg.str());
  }
  // The traversal templates need only Get(), so both representations run
  // the identical selection rule.
  if (sparse_q_.has_value()) {
    if (config_.use_beam_search) {
      return rl::RecommendPlanBeam(*sparse_q_, *instance_, reward_, recommend,
                                   config_.beam);
    }
    return rl::RecommendPlan(*sparse_q_, *instance_, reward_, recommend);
  }
  if (config_.use_beam_search) {
    return rl::RecommendPlanBeam(*q_, *instance_, reward_, recommend,
                                 config_.beam);
  }
  return rl::RecommendPlan(*q_, *instance_, reward_, recommend);
}

util::Status RlPlanner::AdoptPolicy(mdp::QTable q) {
  if (q.num_items() != instance_->catalog->size()) {
    return util::Status::InvalidArgument(
        "adopted Q-table dimension does not match the catalog size");
  }
  sparse_q_.reset();
  q_ = std::move(q);
  return util::Status::Ok();
}

util::Status RlPlanner::AdoptPolicy(mdp::SparseQTable q) {
  if (q.num_items() != instance_->catalog->size()) {
    return util::Status::InvalidArgument(
        "adopted Q-table dimension does not match the catalog size");
  }
  q_.reset();
  sparse_q_ = std::move(q);
  return util::Status::Ok();
}

double RlPlanner::Score(const model::Plan& plan) const {
  return ScorePlan(*instance_, plan);
}

ValidationReport RlPlanner::Validate(const model::Plan& plan) const {
  return ValidatePlan(*instance_, plan);
}

util::Status RlPlanner::SavePolicy(const std::string& path) const {
  if (!trained()) {
    return util::Status::FailedPrecondition("no policy to save");
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) return util::Status::Internal("cannot open for write: " + path);
  // Both representations skip zeros and emit ascending (state, action), so
  // the CSV is identical regardless of which one trained the policy.
  out << (sparse_q_.has_value() ? sparse_q_->ToCsv() : q_->ToCsv());
  if (!out) return util::Status::Internal("write failed: " + path);
  return util::Status::Ok();
}

util::Status RlPlanner::LoadPolicy(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Status::NotFound("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  // Restore into the representation the config resolves to, so loading a
  // policy for a 100k catalog never materializes the dense table.
  const rl::QRepresentation repr = rl::ResolveQRepresentation(
      config_.sarsa.q_representation, instance_->catalog->size());
  if (repr == rl::QRepresentation::kSparse) {
    auto table =
        mdp::SparseQTable::FromCsv(instance_->catalog->size(), buffer.str());
    if (!table.ok()) return table.status();
    q_.reset();
    sparse_q_ = std::move(table).value();
    return util::Status::Ok();
  }
  auto table = mdp::QTable::FromCsv(instance_->catalog->size(), buffer.str());
  if (!table.ok()) return table.status();
  sparse_q_.reset();
  q_ = std::move(table).value();
  return util::Status::Ok();
}

}  // namespace rlplanner::core

#ifndef RLPLANNER_CORE_SCORING_H_
#define RLPLANNER_CORE_SCORING_H_

#include "model/constraints.h"
#include "model/plan.h"

namespace rlplanner::core {

/// The paper's recommendation score (Section IV-A, "Measures"):
/// - a plan violating any hard constraint scores 0 (the 0 entries in
///   Tables IX and XIV);
/// - a valid *course* plan scores the best Eq. 6 similarity against the
///   template permutations, in [0, H] — the gold standard scores exactly H
///   (10 for Univ-1, 15 for Univ-2);
/// - a valid *trip* plan scores the mean POI popularity, in [0, 5] — the
///   gold standard scores 5, "the highest popularity score of any POI".
double ScorePlan(const model::TaskInstance& instance, const model::Plan& plan);

/// The template-similarity part alone (no validity gating): max over the
/// template permutations of Eq. 6 at the full plan length.
double TemplateScore(const model::TaskInstance& instance,
                     const model::Plan& plan);

/// Fraction of `T^ideal` covered by the plan's items, in [0, 1].
double IdealTopicCoverage(const model::TaskInstance& instance,
                          const model::Plan& plan);

}  // namespace rlplanner::core

#endif  // RLPLANNER_CORE_SCORING_H_

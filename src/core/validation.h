#ifndef RLPLANNER_CORE_VALIDATION_H_
#define RLPLANNER_CORE_VALIDATION_H_

#include <string>
#include <vector>

#include "mdp/cmdp.h"
#include "model/constraints.h"
#include "model/plan.h"

namespace rlplanner::core {

/// Outcome of checking a plan against `P_hard`.
struct ValidationReport {
  /// True when every hard constraint holds.
  bool valid = false;
  /// Names of violated constraint functionals (see CmdpSpec).
  std::vector<std::string> violations;
  /// Cost of each functional, in CmdpSpec declaration order.
  std::vector<double> costs;
  /// Names matching `costs`.
  std::vector<std::string> constraint_names;

  /// "valid" or "INVALID: gap, split" style summary.
  std::string ToString() const;
};

/// Evaluates all hard constraints of `instance` on `plan`.
ValidationReport ValidatePlan(const model::TaskInstance& instance,
                              const model::Plan& plan);

}  // namespace rlplanner::core

#endif  // RLPLANNER_CORE_VALIDATION_H_

#include "core/scoring.h"

#include "core/validation.h"
#include "mdp/similarity.h"
#include "model/topic_vector.h"

namespace rlplanner::core {

double TemplateScore(const model::TaskInstance& instance,
                     const model::Plan& plan) {
  return mdp::BestSimilarity(plan.ToTypeSequence(*instance.catalog),
                             instance.soft.interleaving);
}

double IdealTopicCoverage(const model::TaskInstance& instance,
                          const model::Plan& plan) {
  return model::CoverageFraction(plan.CoveredTopics(*instance.catalog),
                                 instance.soft.ideal_topics);
}

double ScorePlan(const model::TaskInstance& instance,
                 const model::Plan& plan) {
  if (plan.empty()) return 0.0;
  if (!ValidatePlan(instance, plan).valid) return 0.0;
  if (instance.catalog->domain() == model::Domain::kTrip) {
    return plan.MeanPopularity(*instance.catalog);
  }
  return TemplateScore(instance, plan);
}

}  // namespace rlplanner::core

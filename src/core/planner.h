#ifndef RLPLANNER_CORE_PLANNER_H_
#define RLPLANNER_CORE_PLANNER_H_

#include <memory>
#include <optional>
#include <string>

#include "core/config.h"
#include "core/validation.h"
#include "mdp/q_table.h"
#include "mdp/reward.h"
#include "mdp/sparse_q_table.h"
#include "model/constraints.h"
#include "model/plan.h"
#include "rl/recommender.h"

namespace rlplanner::obs {
class TrainingMetrics;
}  // namespace rlplanner::obs

namespace rlplanner::core {

/// The RL-Planner facade — the library's main entry point.
///
/// Typical use:
/// ```
///   RlPlanner planner(instance, DefaultUniv1Config());
///   RLP_RETURN_IF_ERROR(planner.Train());
///   auto plan = planner.Recommend(start_item);
///   double score = planner.Score(plan.value());
/// ```
/// A planner can also *adopt* a policy learned elsewhere (transfer learning)
/// instead of training.
class RlPlanner {
 public:
  /// `instance` must outlive the planner; `config` is copied (including the
  /// non-owned `config.metrics` registry pointer, which must then outlive
  /// the planner too).
  RlPlanner(const model::TaskInstance& instance, PlannerConfig config);
  ~RlPlanner();

  RlPlanner(const RlPlanner&) = delete;
  RlPlanner& operator=(const RlPlanner&) = delete;

  /// Validates the instance and configuration, then runs SARSA for
  /// `config.sarsa.num_episodes` episodes.
  util::Status Train();

  /// True once Train() succeeded or AdoptPolicy() was called.
  bool trained() const { return q_.has_value() || sparse_q_.has_value(); }

  /// Recommends a plan starting at `start_item` by greedy Q traversal.
  /// Fails when the planner has no policy or the start item is invalid.
  util::Result<model::Plan> Recommend(model::ItemId start_item) const;

  /// Recommends with explicit per-request settings (start item, exclusions,
  /// masking) — the entry point the serving layer uses for constraint
  /// overrides. `config_.use_beam_search` still selects the traversal.
  util::Result<model::Plan> Recommend(const rl::RecommendConfig& recommend) const;

  /// Installs an externally learned policy (e.g. transferred from another
  /// dataset). The table dimension must match the catalog size.
  util::Status AdoptPolicy(mdp::QTable q);

  /// Sparse-representation overload: the planner serves from the sparse
  /// table directly (no densification), so multi-GB-dense policies stay at
  /// their sparse footprint.
  util::Status AdoptPolicy(mdp::SparseQTable q);

  /// The paper's plan score (see scoring.h).
  double Score(const model::Plan& plan) const;

  /// Hard-constraint check with a per-constraint report.
  ValidationReport Validate(const model::Plan& plan) const;

  /// True when the active policy uses the sparse representation.
  bool uses_sparse() const { return sparse_q_.has_value(); }

  /// The learned dense Q-table. Requires trained() && !uses_sparse().
  const mdp::QTable& q_table() const { return *q_; }

  /// The learned sparse Q-table. Requires uses_sparse().
  const mdp::SparseQTable& sparse_q_table() const { return *sparse_q_; }

  /// Wall-clock seconds of the last Train() call.
  double train_seconds() const { return train_seconds_; }

  /// Per-round training metrics of the last Train() call; null when
  /// `config.metrics` was null or Train() has not run.
  const obs::TrainingMetrics* training_metrics() const {
    return training_metrics_.get();
  }

  /// Per-episode returns of the last Train() call.
  const std::vector<double>& episode_returns() const {
    return episode_returns_;
  }

  /// Saves / restores the policy as CSV.
  util::Status SavePolicy(const std::string& path) const;
  util::Status LoadPolicy(const std::string& path);

  const model::TaskInstance& instance() const { return *instance_; }
  const PlannerConfig& config() const { return config_; }
  const mdp::RewardFunction& reward_function() const { return reward_; }

 private:
  // Publishes q_table_bytes / q_table_nonzero_fraction for the active
  // representation after training (no-op without a metrics registry).
  void RecordQTableGauges() const;

  const model::TaskInstance* instance_;
  PlannerConfig config_;
  mdp::RewardFunction reward_;
  // Exactly one of the two engages once trained: q_representation resolves
  // to dense or sparse before training, and AdoptPolicy overloads keep the
  // invariant.
  std::optional<mdp::QTable> q_;
  std::optional<mdp::SparseQTable> sparse_q_;
  std::vector<double> episode_returns_;
  // Created per Train() call when config_.metrics is set (unique_ptr keeps
  // obs/training_metrics.h out of this header; hence the out-of-line dtor).
  std::unique_ptr<obs::TrainingMetrics> training_metrics_;
  double train_seconds_ = 0.0;
};

}  // namespace rlplanner::core

#endif  // RLPLANNER_CORE_PLANNER_H_

#include "geo/latlng.h"

#include <cmath>

namespace rlplanner::geo {

namespace {
constexpr double kEarthRadiusKm = 6371.0;
constexpr double kDegToRad = M_PI / 180.0;
}  // namespace

double HaversineKm(const LatLng& a, const LatLng& b) {
  const double lat1 = a.lat * kDegToRad;
  const double lat2 = b.lat * kDegToRad;
  const double dlat = (b.lat - a.lat) * kDegToRad;
  const double dlng = (b.lng - a.lng) * kDegToRad;
  const double s = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlng / 2) *
                       std::sin(dlng / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::sqrt(s));
}

}  // namespace rlplanner::geo

#ifndef RLPLANNER_GEO_LATLNG_H_
#define RLPLANNER_GEO_LATLNG_H_

namespace rlplanner::geo {

/// A point on the globe, degrees.
struct LatLng {
  double lat = 0.0;
  double lng = 0.0;
};

/// Great-circle distance between `a` and `b` in kilometers (haversine with
/// mean Earth radius 6371 km). Used by the trip-planning distance-threshold
/// constraint (`d` in Tables VIII and XV).
double HaversineKm(const LatLng& a, const LatLng& b);

/// Total walking distance of a POI sequence: sum of consecutive haversine
/// legs. Empty or single-point paths have length 0.
template <typename It>
double PathLengthKm(It begin, It end) {
  double total = 0.0;
  if (begin == end) return total;
  It prev = begin;
  for (It cur = ++begin; cur != end; ++cur, ++prev) {
    total += HaversineKm(*prev, *cur);
  }
  return total;
}

}  // namespace rlplanner::geo

#endif  // RLPLANNER_GEO_LATLNG_H_

#ifndef RLPLANNER_UTIL_STATS_H_
#define RLPLANNER_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace rlplanner::util {

/// Summary statistics of a sample. All fields are 0 for an empty sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  /// Population standard deviation.
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

/// Computes the summary of `values`.
Summary Summarize(const std::vector<double>& values);

/// Half-width of the normal-approximation 95% confidence interval of the
/// mean (1.96 * stddev / sqrt(n)); 0 for samples smaller than 2.
double ConfidenceHalfWidth95(const Summary& summary);

/// Pearson correlation of two equal-length samples; 0 when either side has
/// no variance or the sizes differ.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Ordinary-least-squares slope of y against x (0 when x has no variance).
/// The scalability analysis uses this to check that learning time grows
/// linearly with the number of episodes.
double LinearSlope(const std::vector<double>& x,
                   const std::vector<double>& y);

}  // namespace rlplanner::util

#endif  // RLPLANNER_UTIL_STATS_H_

#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace rlplanner::util {

Summary Summarize(const std::vector<double>& values) {
  Summary out;
  out.count = values.size();
  if (values.empty()) return out;

  double sum = 0.0;
  out.min = values.front();
  out.max = values.front();
  for (double v : values) {
    sum += v;
    out.min = std::min(out.min, v);
    out.max = std::max(out.max, v);
  }
  out.mean = sum / static_cast<double>(values.size());

  double variance = 0.0;
  for (double v : values) variance += (v - out.mean) * (v - out.mean);
  out.stddev = std::sqrt(variance / static_cast<double>(values.size()));

  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t mid = sorted.size() / 2;
  out.median = sorted.size() % 2 == 1
                   ? sorted[mid]
                   : 0.5 * (sorted[mid - 1] + sorted[mid]);
  return out;
}

double ConfidenceHalfWidth95(const Summary& summary) {
  if (summary.count < 2) return 0.0;
  return 1.96 * summary.stddev /
         std::sqrt(static_cast<double>(summary.count));
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  const Summary sx = Summarize(x);
  const Summary sy = Summarize(y);
  if (sx.stddev == 0.0 || sy.stddev == 0.0) return 0.0;
  double covariance = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    covariance += (x[i] - sx.mean) * (y[i] - sy.mean);
  }
  covariance /= static_cast<double>(x.size());
  return covariance / (sx.stddev * sy.stddev);
}

double LinearSlope(const std::vector<double>& x,
                   const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  const Summary sx = Summarize(x);
  const Summary sy = Summarize(y);
  if (sx.stddev == 0.0) return 0.0;
  double covariance = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    covariance += (x[i] - sx.mean) * (y[i] - sy.mean);
  }
  covariance /= static_cast<double>(x.size());
  return covariance / (sx.stddev * sx.stddev);
}

}  // namespace rlplanner::util

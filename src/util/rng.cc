#include "util/rng.h"

#include <cassert>
#include <cmath>

namespace rlplanner::util {

namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

int Rng::NextInt(int lo, int hi) {
  assert(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<int>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian(double mean, double stddev) {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return mean + stddev * cached_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(theta);
  have_cached_gaussian_ = true;
  return mean + stddev * radius * std::cos(theta);
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

}  // namespace rlplanner::util

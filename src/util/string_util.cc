#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace rlplanner::util {

std::vector<std::string> Split(std::string_view input, char delimiter) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == delimiter) {
      out.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += separator;
    out += parts[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view input) {
  std::size_t begin = 0;
  while (begin < input.size() &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  std::size_t end = input.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string ToLower(std::string_view input) {
  std::string out(input);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  std::string out = buffer;
  if (out.find('.') != std::string::npos) {
    while (!out.empty() && out.back() == '0') out.pop_back();
    if (!out.empty() && out.back() == '.') out.pop_back();
  }
  if (out == "-0") out = "0";
  return out;
}

}  // namespace rlplanner::util

#include "util/csv.h"

#include <fstream>
#include <sstream>

namespace rlplanner::util {

namespace {

// Parses all records in `text`; returns false on unterminated quote.
bool ParseRecords(std::string_view text,
                  std::vector<std::vector<std::string>>& records) {
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  std::size_t i = 0;
  auto end_field = [&] {
    record.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_record = [&] {
    end_field();
    records.push_back(std::move(record));
    record.clear();
  };
  while (i < text.size()) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        field.push_back(c);
        ++i;
      }
    } else if (c == '"' && !field_started) {
      in_quotes = true;
      field_started = true;
      ++i;
    } else if (c == ',') {
      end_field();
      ++i;
    } else if (c == '\r' && i + 1 < text.size() && text[i + 1] == '\n') {
      end_record();
      i += 2;
    } else if (c == '\n') {
      end_record();
      ++i;
    } else {
      field.push_back(c);
      field_started = true;
      ++i;
    }
  }
  if (in_quotes) return false;
  // Trailing record without a final newline.
  if (field_started || !field.empty() || !record.empty()) end_record();
  return true;
}

bool NeedsQuoting(std::string_view field) {
  return field.find_first_of(",\"\n\r") != std::string_view::npos;
}

void AppendField(std::string& out, std::string_view field) {
  if (!NeedsQuoting(field)) {
    out += field;
    return;
  }
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
}

}  // namespace

int CsvDocument::ColumnIndex(std::string_view column) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == column) return static_cast<int>(i);
  }
  return -1;
}

Result<CsvDocument> ParseCsv(std::string_view text) {
  std::vector<std::vector<std::string>> records;
  if (!ParseRecords(text, records)) {
    return Status::InvalidArgument("unterminated quoted CSV field");
  }
  if (records.empty()) {
    return Status::InvalidArgument("CSV document has no header row");
  }
  CsvDocument doc;
  doc.header = std::move(records.front());
  for (std::size_t r = 1; r < records.size(); ++r) {
    if (records[r].size() != doc.header.size()) {
      std::ostringstream msg;
      msg << "CSV row " << r << " has " << records[r].size()
          << " fields, header has " << doc.header.size();
      return Status::InvalidArgument(msg.str());
    }
    doc.rows.push_back(std::move(records[r]));
  }
  return doc;
}

std::string WriteCsv(const CsvDocument& doc) {
  std::string out;
  auto write_row = [&out](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) out.push_back(',');
      AppendField(out, row[i]);
    }
    out.push_back('\n');
  };
  write_row(doc.header);
  for (const auto& row : doc.rows) write_row(row);
  return out;
}

Result<CsvDocument> ReadCsvFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open CSV file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCsv(buffer.str());
}

Status WriteCsvFile(const std::string& path, const CsvDocument& doc) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::Internal("cannot open file for write: " + path);
  out << WriteCsv(doc);
  if (!out) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

}  // namespace rlplanner::util

// NEON (aarch64 ASIMD) kernel table: the u64 word kernels, which port
// trivially (vcntq_u8 + horizontal add), layered over the scalar table for
// the f64 kernels, whose NEON forms would need care the word kernels do not
// (2-lane doubles, no masked blend idiom). ASIMD is baseline on aarch64, so
// compiled-in implies supported. On other targets this translation unit
// degenerates to a null accessor.
//
// Bit-exactness contract: identical to scalar by construction — integer
// kernels only, the f64 entries *are* the scalar functions.

#include "util/simd.h"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <bit>

namespace rlplanner::util::simd {

namespace {

inline std::size_t Popcount128(uint8x16_t v) {
  return static_cast<std::size_t>(vaddvq_u8(vcntq_u8(v)));
}

std::size_t NeonPopcountWords(const std::uint64_t* words, std::size_t n) {
  std::size_t total = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    total += Popcount128(
        vreinterpretq_u8_u64(vld1q_u64(words + i)));
  }
  for (; i < n; ++i) total += std::popcount(words[i]);
  return total;
}

std::size_t NeonIntersectCountWords(const std::uint64_t* a,
                                    const std::uint64_t* b, std::size_t n) {
  std::size_t total = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t va = vld1q_u64(a + i);
    const uint64x2_t vb = vld1q_u64(b + i);
    total += Popcount128(vreinterpretq_u8_u64(vandq_u64(va, vb)));
  }
  for (; i < n; ++i) total += std::popcount(a[i] & b[i]);
  return total;
}

std::size_t NeonAndNotIntersectCountWords(const std::uint64_t* a,
                                          const std::uint64_t* b,
                                          const std::uint64_t* c,
                                          std::size_t n) {
  std::size_t total = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t va = vld1q_u64(a + i);
    const uint64x2_t vb = vld1q_u64(b + i);
    const uint64x2_t vc = vld1q_u64(c + i);
    // vbicq(a, b) computes a & ~b.
    total += Popcount128(
        vreinterpretq_u8_u64(vandq_u64(vbicq_u64(va, vb), vc)));
  }
  for (; i < n; ++i) total += std::popcount(a[i] & ~b[i] & c[i]);
  return total;
}

bool NeonIntersectsWords(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t v = vandq_u64(vld1q_u64(a + i), vld1q_u64(b + i));
    if (vmaxvq_u32(vreinterpretq_u32_u64(v)) != 0) return true;
  }
  for (; i < n; ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}

bool NeonAnyWords(const std::uint64_t* words, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t v = vld1q_u64(words + i);
    if (vmaxvq_u32(vreinterpretq_u32_u64(v)) != 0) return true;
  }
  for (; i < n; ++i) {
    if (words[i] != 0) return true;
  }
  return false;
}

void NeonAndAssignWords(std::uint64_t* dst, const std::uint64_t* src,
                        std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vandq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  }
  for (; i < n; ++i) dst[i] &= src[i];
}

void NeonOrAssignWords(std::uint64_t* dst, const std::uint64_t* src,
                       std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vorrq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

void NeonXorAssignWords(std::uint64_t* dst, const std::uint64_t* src,
                        std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, veorq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void NeonAndNotAssignWords(std::uint64_t* dst, const std::uint64_t* src,
                           std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i, vbicq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  }
  for (; i < n; ++i) dst[i] &= ~src[i];
}

void NeonComplementWords(std::uint64_t* dst, const std::uint64_t* src,
                         std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(dst + i,
              vreinterpretq_u64_u32(
                  vmvnq_u32(vreinterpretq_u32_u64(vld1q_u64(src + i)))));
  }
  for (; i < n; ++i) dst[i] = ~src[i];
}

}  // namespace

const Kernels* GetNeonKernels() {
  static const Kernels table = [] {
    Kernels k = KernelsForLevel(Level::kScalar);
    k.level = Level::kNeon;
    k.popcount_words = &NeonPopcountWords;
    k.intersect_count_words = &NeonIntersectCountWords;
    k.andnot_intersect_count_words = &NeonAndNotIntersectCountWords;
    k.intersects_words = &NeonIntersectsWords;
    k.any_words = &NeonAnyWords;
    k.and_assign_words = &NeonAndAssignWords;
    k.or_assign_words = &NeonOrAssignWords;
    k.xor_assign_words = &NeonXorAssignWords;
    k.andnot_assign_words = &NeonAndNotAssignWords;
    k.complement_words = &NeonComplementWords;
    return k;
  }();
  return &table;
}

}  // namespace rlplanner::util::simd

#else  // !__aarch64__

namespace rlplanner::util::simd {

const Kernels* GetNeonKernels() { return nullptr; }

}  // namespace rlplanner::util::simd

#endif  // __aarch64__

#include "util/json.h"

#include <cmath>
#include <cstdlib>

namespace rlplanner::util::json {

const Value* Value::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

namespace {

constexpr int kMaxDepth = 32;

bool IsJsonWhitespace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

}  // namespace

/// Single-pass recursive-descent parser over the input view. Errors carry
/// the byte offset where parsing stopped, which is what a 400 response
/// reports back to the client.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> ParseDocument() {
    SkipWhitespace();
    Value value;
    RLP_RETURN_IF_ERROR(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() && IsJsonWhitespace(text_[pos_])) ++pos_;
  }

  bool Consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(Value* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting deeper than 32 levels");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind_ = Value::Kind::kString;
        return ParseString(&out->string_);
      case 't':
      case 'f':
        return ParseKeyword(out);
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          out->kind_ = Value::Kind::kNull;
          return Status::Ok();
        }
        return Error("invalid keyword");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseKeyword(Value* out) {
    if (text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      out->kind_ = Value::Kind::kBool;
      out->bool_ = true;
      return Status::Ok();
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      out->kind_ = Value::Kind::kBool;
      out->bool_ = false;
      return Status::Ok();
    }
    return Error("invalid keyword");
  }

  Status ParseNumber(Value* out) {
    const std::size_t start = pos_;
    if (Consume('-')) {
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return Error("invalid number");
    }
    // Leading zeros are rejected per the grammar ("01" is two tokens).
    if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
        text_[pos_ + 1] >= '0' && text_[pos_ + 1] <= '9') {
      return Error("leading zero in number");
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    bool integral = true;
    if (Consume('.')) {
      integral = false;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("digit expected after '.'");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("digit expected in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    const double value = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(value)) return Error("number out of range");
    out->kind_ = Value::Kind::kNumber;
    out->number_ = value;
    out->integer_ = integral;
    return Status::Ok();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("'\"' expected");
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::Ok();
      }
      if (c < 0x20) return Error("raw control character in string");
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          RLP_RETURN_IF_ERROR(ParseHex4(&code));
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: the pair must follow immediately.
            if (!Consume('\\') || !Consume('u')) {
              return Error("unpaired surrogate");
            }
            unsigned low = 0;
            RLP_RETURN_IF_ERROR(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Error("unpaired surrogate");
          }
          AppendUtf8(out, code);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
  }

  Status ParseHex4(unsigned* out) {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) return Error("truncated \\u escape");
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    *out = value;
    return Status::Ok();
  }

  static void AppendUtf8(std::string* out, unsigned code) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Status ParseArray(Value* out, int depth) {
    Consume('[');
    out->kind_ = Value::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::Ok();
    while (true) {
      Value element;
      SkipWhitespace();
      RLP_RETURN_IF_ERROR(ParseValue(&element, depth + 1));
      out->array_.push_back(std::move(element));
      SkipWhitespace();
      if (Consume(']')) return Status::Ok();
      if (!Consume(',')) return Error("',' or ']' expected in array");
    }
  }

  Status ParseObject(Value* out, int depth) {
    Consume('{');
    out->kind_ = Value::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::Ok();
    while (true) {
      SkipWhitespace();
      std::string key;
      RLP_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("':' expected after object key");
      SkipWhitespace();
      Value value;
      RLP_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      // Last duplicate wins, matching the flag parser's convention.
      out->object_[std::move(key)] = std::move(value);
      SkipWhitespace();
      if (Consume('}')) return Status::Ok();
      if (!Consume(',')) return Error("',' or '}' expected in object");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Result<Value> Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace rlplanner::util::json

#include "util/flags.h"

#include <algorithm>
#include <cstdlib>

namespace rlplanner::util {

std::optional<std::string> CommandLine::GetFlag(const std::string& key) const {
  const auto it = flags.find(key);
  if (it == flags.end()) return std::nullopt;
  return it->second;
}

std::string CommandLine::GetFlagOr(const std::string& key,
                                   std::string fallback) const {
  const auto it = flags.find(key);
  return it == flags.end() ? std::move(fallback) : it->second;
}

CommandLine ParseCommandLine(int argc, const char* const* argv) {
  CommandLine cmd;
  if (argc < 2) return cmd;
  cmd.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      cmd.positional.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      cmd.flags[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && argv[i + 1][0] != '-') {
      cmd.flags[arg] = argv[++i];
    } else {
      cmd.flags[arg] = "1";  // boolean flag
    }
  }
  return cmd;
}

Status RequireFlags(const CommandLine& cmd,
                    const std::vector<std::string>& required) {
  std::string missing;
  for (const std::string& key : required) {
    if (cmd.HasFlag(key)) continue;
    if (!missing.empty()) missing += ", ";
    missing += "--" + key;
  }
  if (missing.empty()) return Status::Ok();
  return Status::InvalidArgument("missing required flag(s): " + missing);
}

Status AllowFlags(const CommandLine& cmd,
                  const std::vector<std::string>& allowed) {
  for (const auto& [key, value] : cmd.flags) {
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
      return Status::InvalidArgument("unknown flag --" + key);
    }
  }
  return Status::Ok();
}

Result<HostPort> ParseHostPort(const std::string& spec) {
  const auto colon = spec.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("'" + spec +
                                   "' is not HOST:PORT (missing ':')");
  }
  HostPort result;
  result.host = spec.substr(0, colon);
  if (result.host.empty()) {
    return Status::InvalidArgument("'" + spec + "' has an empty host");
  }
  const std::string port = spec.substr(colon + 1);
  if (port.empty() || port.size() > 5 ||
      port.find_first_not_of("0123456789") != std::string::npos) {
    return Status::InvalidArgument("'" + port + "' is not a valid port");
  }
  const long value = std::strtol(port.c_str(), nullptr, 10);
  if (value < 0 || value > 65535) {
    return Status::InvalidArgument("port " + port +
                                   " out of range [0, 65535]");
  }
  result.port = static_cast<std::uint16_t>(value);
  return result;
}

}  // namespace rlplanner::util

#include "util/flags.h"

#include <algorithm>

namespace rlplanner::util {

std::optional<std::string> CommandLine::GetFlag(const std::string& key) const {
  const auto it = flags.find(key);
  if (it == flags.end()) return std::nullopt;
  return it->second;
}

std::string CommandLine::GetFlagOr(const std::string& key,
                                   std::string fallback) const {
  const auto it = flags.find(key);
  return it == flags.end() ? std::move(fallback) : it->second;
}

CommandLine ParseCommandLine(int argc, const char* const* argv) {
  CommandLine cmd;
  if (argc < 2) return cmd;
  cmd.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      cmd.positional.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      cmd.flags[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && argv[i + 1][0] != '-') {
      cmd.flags[arg] = argv[++i];
    } else {
      cmd.flags[arg] = "1";  // boolean flag
    }
  }
  return cmd;
}

Status RequireFlags(const CommandLine& cmd,
                    const std::vector<std::string>& required) {
  std::string missing;
  for (const std::string& key : required) {
    if (cmd.HasFlag(key)) continue;
    if (!missing.empty()) missing += ", ";
    missing += "--" + key;
  }
  if (missing.empty()) return Status::Ok();
  return Status::InvalidArgument("missing required flag(s): " + missing);
}

Status AllowFlags(const CommandLine& cmd,
                  const std::vector<std::string>& allowed) {
  for (const auto& [key, value] : cmd.flags) {
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
      return Status::InvalidArgument("unknown flag --" + key);
    }
  }
  return Status::Ok();
}

}  // namespace rlplanner::util

#ifndef RLPLANNER_UTIL_THREAD_POOL_H_
#define RLPLANNER_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rlplanner::util {

/// A fixed-size worker pool for the embarrassingly parallel experiment
/// layer (independent SARSA runs across seeds and sweep points).
///
/// The only scheduling primitive is `ParallelFor`, which runs `fn(i)` for
/// every index of a range across the workers *and the calling thread*.
/// A nested call — ParallelFor issued from inside a task that is itself
/// running under any pool's ParallelFor — degrades to a plain serial loop
/// on the calling thread. Without that rule a nested caller parks a worker
/// on the inner job's completion latch; with every worker parked this way
/// (e.g. PlanService workers that each start a parallel training run)
/// no thread is left to claim indices and the pool deadlocks.
///
/// Determinism contract: the pool assigns *indices*, never shared RNG
/// state. Each parallel run must derive everything stochastic from its own
/// index (e.g. one `util::Rng` seeded by `seed_base + i`) and write results
/// only to its own slot; aggregation then happens in index order on the
/// caller. Under that contract, results are bit-identical to a serial loop
/// regardless of thread count or scheduling.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 picks the hardware concurrency.
  explicit ThreadPool(std::size_t num_threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins all workers. Must not be called while a ParallelFor is active.
  ~ThreadPool();

  std::size_t num_threads() const { return workers_.size(); }

  /// Number of pool workers (excluding the participating caller). Sizing
  /// hook for layers that shard work by worker count (parallel training,
  /// the serving layer).
  std::size_t NumWorkers() const { return workers_.size(); }

  /// Runs `fn(i)` for every `i` in [0, n), blocking until all complete.
  /// Indices are claimed atomically in ascending order; the calling thread
  /// participates. `fn` must be safe to invoke concurrently with itself.
  /// Called from inside a ParallelFor task (any pool), runs serially inline
  /// instead — see the class comment.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  // One ParallelFor invocation: an atomically claimed index range plus a
  // completion latch.
  struct Job {
    std::size_t n = 0;
    const std::function<void(std::size_t)>* fn = nullptr;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> completed{0};
    std::mutex done_mutex;
    std::condition_variable done_cv;
  };

  // Claims and runs indices of `job` until the range is exhausted.
  static void RunIndices(Job& job);

  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::vector<std::shared_ptr<Job>> active_jobs_;
  bool stop_ = false;
};

}  // namespace rlplanner::util

#endif  // RLPLANNER_UTIL_THREAD_POOL_H_

#include "util/bitset.h"

#include <bit>

#include "util/simd.h"

namespace rlplanner::util {

namespace {

// Word count below which the inline scalar loop beats an indirect call into
// the dispatched kernel table: the paper-scale catalogs and vocabularies
// (31–500 bits, 1–8 words) stay on the historical inline path, while the
// 10k+-item catalogs and large vocabularies the SIMD pass targets clear the
// threshold. The kernels are bit-exact against the scalar loops, so the
// cutoff is a pure performance knob (pinned by the simd_test matrix, which
// crosses it in both directions).
constexpr std::size_t kSimdMinWords = 8;

}  // namespace

DynamicBitset::DynamicBitset(std::size_t size) : size_(size) {
  words_.resize((size + kWordBits - 1) / kWordBits, 0);
}

DynamicBitset DynamicBitset::FromBits(const std::vector<int>& bits) {
  DynamicBitset out(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] != 0) out.Set(i);
  }
  return out;
}

void DynamicBitset::Resize(std::size_t size) {
  size_ = size;
  words_.resize((size + kWordBits - 1) / kWordBits, 0);
  TrimTail();
}

void DynamicBitset::Set(std::size_t index, bool value) {
  assert(index < size_);
  const std::size_t word = index / kWordBits;
  const Word mask = Word{1} << (index % kWordBits);
  if (value) {
    words_[word] |= mask;
  } else {
    words_[word] &= ~mask;
  }
}

bool DynamicBitset::Test(std::size_t index) const {
  assert(index < size_);
  return (words_[index / kWordBits] >> (index % kWordBits)) & 1;
}

std::size_t DynamicBitset::Count() const {
  if (words_.size() >= kSimdMinWords) {
    return simd::Active().popcount_words(words_.data(), words_.size());
  }
  std::size_t total = 0;
  for (Word w : words_) total += std::popcount(w);
  return total;
}

bool DynamicBitset::Any() const {
  if (words_.size() >= kSimdMinWords) {
    return simd::Active().any_words(words_.data(), words_.size());
  }
  for (Word w : words_) {
    if (w != 0) return true;
  }
  return false;
}

void DynamicBitset::Clear() {
  for (Word& w : words_) w = 0;
}

void DynamicBitset::SetAll() {
  for (Word& w : words_) w = ~Word{0};
  TrimTail();
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  assert(size_ == other.size_);
  if (words_.size() >= kSimdMinWords) {
    simd::Active().or_assign_words(words_.data(), other.words_.data(),
                                   words_.size());
    return *this;
  }
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  assert(size_ == other.size_);
  if (words_.size() >= kSimdMinWords) {
    simd::Active().and_assign_words(words_.data(), other.words_.data(),
                                    words_.size());
    return *this;
  }
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator^=(const DynamicBitset& other) {
  assert(size_ == other.size_);
  if (words_.size() >= kSimdMinWords) {
    simd::Active().xor_assign_words(words_.data(), other.words_.data(),
                                    words_.size());
    return *this;
  }
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

DynamicBitset DynamicBitset::AndNot(const DynamicBitset& other) const {
  assert(size_ == other.size_);
  DynamicBitset out(size_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    out.words_[i] = words_[i] & ~other.words_[i];
  }
  return out;
}

DynamicBitset& DynamicBitset::AndNotAssign(const DynamicBitset& other) {
  assert(size_ == other.size_);
  if (words_.size() >= kSimdMinWords) {
    simd::Active().andnot_assign_words(words_.data(), other.words_.data(),
                                       words_.size());
    return *this;
  }
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= ~other.words_[i];
  }
  return *this;
}

void DynamicBitset::AssignComplementOf(const DynamicBitset& other) {
  size_ = other.size_;
  words_.resize(other.words_.size());
  if (words_.size() >= kSimdMinWords) {
    simd::Active().complement_words(words_.data(), other.words_.data(),
                                    words_.size());
  } else {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      words_[i] = ~other.words_[i];
    }
  }
  TrimTail();
}

std::size_t DynamicBitset::IntersectCount(const DynamicBitset& other) const {
  assert(size_ == other.size_);
  if (words_.size() >= kSimdMinWords) {
    return simd::Active().intersect_count_words(
        words_.data(), other.words_.data(), words_.size());
  }
  std::size_t total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    total += std::popcount(words_[i] & other.words_[i]);
  }
  return total;
}

bool DynamicBitset::Intersects(const DynamicBitset& other) const {
  assert(size_ == other.size_);
  if (words_.size() >= kSimdMinWords) {
    return simd::Active().intersects_words(words_.data(), other.words_.data(),
                                           words_.size());
  }
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & other.words_[i]) != 0) return true;
  }
  return false;
}

std::size_t DynamicBitset::AndNotIntersectCount(const DynamicBitset& b,
                                                const DynamicBitset& c) const {
  assert(size_ == b.size_ && size_ == c.size_);
  if (words_.size() >= kSimdMinWords) {
    return simd::Active().andnot_intersect_count_words(
        words_.data(), b.words_.data(), c.words_.data(), words_.size());
  }
  std::size_t total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    total += std::popcount(words_[i] & ~b.words_[i] & c.words_[i]);
  }
  return total;
}

std::string DynamicBitset::ToString() const {
  std::string out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) out.push_back(Test(i) ? '1' : '0');
  return out;
}

bool operator==(const DynamicBitset& a, const DynamicBitset& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.Test(i) != b.Test(i)) return false;
  }
  return true;
}

void DynamicBitset::TrimTail() {
  const std::size_t used = size_ % kWordBits;
  if (!words_.empty() && used != 0) {
    words_.back() &= (Word{1} << used) - 1;
  }
}

}  // namespace rlplanner::util

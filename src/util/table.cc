#include "util/table.h"

#include <algorithm>

namespace rlplanner::util {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void AsciiTable::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string AsciiTable::ToString() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string out = render_row(header_);
  std::string rule = "|";
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += std::string(widths[c] + 2, '-') + "|";
  }
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace rlplanner::util

#ifndef RLPLANNER_UTIL_FLAGS_H_
#define RLPLANNER_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/status.h"

namespace rlplanner::util {

/// A parsed command line of the form `prog <command> [--flag value]...`.
///
/// Flag syntax (matching the historical rlplanner_cli behavior):
/// - `--key value` and `--key=value` both bind `value` to `key`;
/// - a `--key` followed by another flag (or nothing) is a boolean flag and
///   binds "1";
/// - a repeated flag keeps the *last* occurrence;
/// - bare positional tokens after the command are collected separately so
///   callers can reject them.
struct CommandLine {
  /// The subcommand (argv[1]), empty when absent.
  std::string command;
  /// Flag bindings without the leading "--".
  std::map<std::string, std::string> flags;
  /// Non-flag tokens found after the command (usually a usage error).
  std::vector<std::string> positional;

  bool HasFlag(const std::string& key) const {
    return flags.find(key) != flags.end();
  }

  /// The flag's value, or nullopt when unset.
  std::optional<std::string> GetFlag(const std::string& key) const;

  /// The flag's value, or `fallback` when unset.
  std::string GetFlagOr(const std::string& key, std::string fallback) const;
};

/// Parses `argv[1..argc)` into a CommandLine. Never fails: validation is the
/// caller's job (see RequireFlags / AllowFlags).
CommandLine ParseCommandLine(int argc, const char* const* argv);

/// InvalidArgument naming every flag of `required` missing from `cmd`,
/// Ok when all are present.
Status RequireFlags(const CommandLine& cmd,
                    const std::vector<std::string>& required);

/// InvalidArgument naming the first flag of `cmd` not in `allowed`
/// (catches typos like --dataest), Ok otherwise.
Status AllowFlags(const CommandLine& cmd,
                  const std::vector<std::string>& allowed);

/// A validated `HOST:PORT` pair as parsed from `--listen` / `--target`
/// flags. `port` 0 is legal and means "bind an ephemeral port".
struct HostPort {
  std::string host;
  std::uint16_t port = 0;

  std::string ToString() const { return host + ":" + std::to_string(port); }
};

/// Parses `spec` of the form `HOST:PORT` into a HostPort. The host part must
/// be non-empty; the port must be a bare decimal in [0, 65535]. A missing
/// colon, empty host, or malformed/out-of-range port is InvalidArgument with
/// a message naming the offending piece (the CLIs turn this into
/// usage-on-stderr + exit 2).
Result<HostPort> ParseHostPort(const std::string& spec);

}  // namespace rlplanner::util

#endif  // RLPLANNER_UTIL_FLAGS_H_

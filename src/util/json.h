#ifndef RLPLANNER_UTIL_JSON_H_
#define RLPLANNER_UTIL_JSON_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace rlplanner::util::json {

/// A parsed JSON document node. The library emits JSON by hand (exporters,
/// bench writers); this is the *reading* side, added for the wire protocol:
/// strict (no trailing garbage, no comments, no NaN/Inf), depth-limited, and
/// allocation-light enough for a request hot path.
///
/// Numbers are kept as double (the wire protocol's integers — item ids,
/// deadlines — fit exactly) plus an `is_integer` flag so callers can reject
/// fractional values where an id is expected.
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Value>;
  // std::map keeps member iteration deterministic (sorted by key).
  using Object = std::map<std::string, Value>;

  Value() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }
  /// True for numbers written without fraction/exponent (e.g. item ids).
  bool is_integer() const { return kind_ == Kind::kNumber && integer_; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }
  const Array& AsArray() const { return array_; }
  const Object& AsObject() const { return object_; }

  /// Object member lookup; nullptr when this is not an object or the key is
  /// absent.
  const Value* Find(const std::string& key) const;

 private:
  friend class Parser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  bool integer_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parses exactly one JSON document from `text` (leading/trailing ASCII
/// whitespace allowed, nothing else). InvalidArgument with a byte offset on
/// malformed input, inputs nested deeper than 32 levels, or invalid \u
/// escapes.
Result<Value> Parse(std::string_view text);

}  // namespace rlplanner::util::json

#endif  // RLPLANNER_UTIL_JSON_H_

#ifndef RLPLANNER_UTIL_STATUS_H_
#define RLPLANNER_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace rlplanner::util {

/// Canonical error codes used across the library. The library does not throw
/// exceptions; fallible operations return `Status` or `Result<T>`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kAlreadyExists,
  kInternal,
  kUnimplemented,
  kResourceExhausted,
  kDeadlineExceeded,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error value. Default-constructed Status is OK.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with an explicit code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status AlreadyExists(std::string message) {
    return Status(StatusCode::kAlreadyExists, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status Unimplemented(std::string message) {
    return Status(StatusCode::kUnimplemented, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders the status as "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

/// A value-or-error type: holds either a `T` or a non-OK `Status`.
///
/// Accessing `value()` on an error Result is a programming bug and aborts in
/// debug builds.
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Constructs an error result. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result error constructor requires non-OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the contained value or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace rlplanner::util

/// Propagates a non-OK Status from an expression, as in
/// `RLP_RETURN_IF_ERROR(DoThing());`.
#define RLP_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::rlplanner::util::Status _rlp_status = (expr); \
    if (!_rlp_status.ok()) return _rlp_status;     \
  } while (false)

#endif  // RLPLANNER_UTIL_STATUS_H_

#include "util/thread_pool.h"

#include <algorithm>

namespace rlplanner::util {

namespace {

// Depth of ParallelFor task execution on this thread (any pool). Non-zero
// while the thread is inside some job's fn; a ParallelFor issued at that
// point must not block the thread on a completion latch (see the class
// comment in the header), so it runs its range serially inline.
thread_local int parallel_region_depth = 0;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::RunIndices(Job& job) {
  while (true) {
    const std::size_t index = job.next.fetch_add(1);
    if (index >= job.n) return;
    ++parallel_region_depth;
    (*job.fn)(index);
    --parallel_region_depth;
    const std::size_t done = job.completed.fetch_add(1) + 1;
    if (done == job.n) {
      // Take and drop the lock so the waiter cannot miss the notify between
      // its predicate check and its wait.
      { std::lock_guard<std::mutex> lock(job.done_mutex); }
      job.done_cv.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] { return stop_ || !active_jobs_.empty(); });
      if (stop_ && active_jobs_.empty()) return;
      // Drop jobs whose index range is exhausted; remaining indices are
      // being finished by the threads that claimed them.
      while (!active_jobs_.empty() &&
             active_jobs_.front()->next.load() >= active_jobs_.front()->n) {
        active_jobs_.erase(active_jobs_.begin());
      }
      if (active_jobs_.empty()) continue;
      job = active_jobs_.front();
    }
    RunIndices(*job);
  }
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || workers_.empty() || parallel_region_depth > 0) {
    // Trivial range, no workers, or a nested call from inside a running
    // ParallelFor task: execute inline. The nested case must never enqueue
    // a job — parking this (worker) thread on the inner latch while every
    // other worker does the same deadlocks the pool.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto job = std::make_shared<Job>();
  job->n = n;
  job->fn = &fn;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    active_jobs_.push_back(job);
  }
  work_ready_.notify_all();
  RunIndices(*job);
  {
    std::unique_lock<std::mutex> lock(job->done_mutex);
    job->done_cv.wait(lock,
                      [&job] { return job->completed.load() >= job->n; });
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = std::find(active_jobs_.begin(), active_jobs_.end(), job);
  if (it != active_jobs_.end()) active_jobs_.erase(it);
}

}  // namespace rlplanner::util

#ifndef RLPLANNER_UTIL_SIMD_H_
#define RLPLANNER_UTIL_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace rlplanner::util::simd {

/// Instruction-set level of a kernel table. The numeric order is the
/// preference order of `DetectBestLevel()`; every level is a strict superset
/// of the scalar semantics (all kernels are bit-exact across levels, see
/// below), so falling back is always safe.
enum class Level {
  kScalar = 0,  // portable C++, always available
  kNeon = 1,    // aarch64 ASIMD (the u64 word kernels; f64 stays scalar)
  kAvx2 = 2,    // x86-64 AVX2
};

/// Lower-case level name ("scalar", "neon", "avx2") for bench JSON and logs.
const char* LevelName(Level level);

/// True when this binary contains an implementation for `level` (compile-time
/// gate: the AVX2 translation unit is only built on x86 with -mavx2 support,
/// the NEON one only on aarch64).
bool LevelCompiled(Level level);

/// True when `level` is compiled in *and* the running CPU supports it.
bool LevelSupported(Level level);

/// Best supported level on this machine (kScalar when nothing else is).
Level DetectBestLevel();

/// Parses an RLPLANNER_SIMD value: "off"/"scalar" -> kScalar, "neon" ->
/// kNeon, "avx2" -> kAvx2, "auto"/"" -> sets *auto_detect. Returns false on
/// anything else (caller treats unknown values as "auto" with a warning).
bool ParseLevel(std::string_view text, Level* level, bool* auto_detect);

/// One-time-dispatched kernel table. Every kernel is defined to produce a
/// result *bitwise identical* to the scalar implementation for the same
/// inputs (integer kernels trivially; the f64 kernels are elementwise or
/// order-independent reductions, and the translation units are compiled with
/// -ffp-contract=off so no path fuses a mul+add the other does not). This is
/// what lets the deterministic trainer run on any level without perturbing
/// the (seed, K) -> policy guarantee. NaN payloads are the one exception:
/// callers must not feed NaNs to the f64 kernels (Q values never are).
struct Kernels {
  Level level;

  // --- u64 word kernels (DynamicBitset substrate) -------------------------
  // Total set bits in words[0..n).
  std::size_t (*popcount_words)(const std::uint64_t* words, std::size_t n);
  // popcount(a & b): the topic-coverage "dot product" over Boolean vectors.
  std::size_t (*intersect_count_words)(const std::uint64_t* a,
                                       const std::uint64_t* b, std::size_t n);
  // popcount(a & ~b & c): fused "newly covered ideal topics" kernel.
  std::size_t (*andnot_intersect_count_words)(const std::uint64_t* a,
                                              const std::uint64_t* b,
                                              const std::uint64_t* c,
                                              std::size_t n);
  // True when (a & b) has any set bit / when a has any set bit.
  bool (*intersects_words)(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t n);
  bool (*any_words)(const std::uint64_t* words, std::size_t n);
  // dst op= src, elementwise over n words.
  void (*and_assign_words)(std::uint64_t* dst, const std::uint64_t* src,
                           std::size_t n);
  void (*or_assign_words)(std::uint64_t* dst, const std::uint64_t* src,
                          std::size_t n);
  void (*xor_assign_words)(std::uint64_t* dst, const std::uint64_t* src,
                           std::size_t n);
  // dst &= ~src (set difference) and dst = ~src (complement seed).
  void (*andnot_assign_words)(std::uint64_t* dst, const std::uint64_t* src,
                              std::size_t n);
  void (*complement_words)(std::uint64_t* dst, const std::uint64_t* src,
                           std::size_t n);

  // --- f64 kernels (QTable / reward substrate) ----------------------------
  // Blocked dot product with a *fixed* 4-accumulator summation order shared
  // by the scalar and vector paths, so the result is bit-identical across
  // levels (it differs from a naive left-to-right sum by design).
  double (*dot_f64)(const double* a, const double* b, std::size_t n);
  // y[i] += a * x[i] (separate mul + add, never fused).
  void (*axpy_f64)(double a, const double* x, double* y, std::size_t n);
  // v[i] *= factor.
  void (*scale_f64)(double* v, double factor, std::size_t n);
  // q[i] += local[i] - base[i]: the deterministic shard-merge kernel.
  void (*accumulate_delta_f64)(double* q, const double* local,
                               const double* base, std::size_t n);
  // max_i |v[i]| (0.0 when n == 0). Max is order-independent, so bit-exact.
  double (*max_abs_f64)(const double* v, std::size_t n);
  // Number of entries with v[i] != 0.0 (NaN counts, matching scalar !=).
  std::size_t (*count_nonzero_f64)(const double* v, std::size_t n);
  // Lowest index i < n with mask bit i set attaining max{values[j] : bit j
  // set}; -1 when the mask is empty. `mask` has ceil(n/64) words and its
  // tail bits past n must be zero (DynamicBitset guarantees this). Exactly
  // the tie-break of QTable::ArgmaxAction: the first allowed index wins.
  std::ptrdiff_t (*argmax_masked_f64)(const double* values, std::size_t n,
                                      const std::uint64_t* mask,
                                      std::size_t num_words);
};

/// Kernel table for `level`, falling back to scalar when the level is not
/// supported on this machine. Always safe to call.
const Kernels& KernelsForLevel(Level level);

/// The process-wide active table: resolved once, on first use, from the
/// RLPLANNER_SIMD environment variable (off|scalar|neon|avx2|auto; unset or
/// unknown values mean auto-detect). Forcing an unsupported level falls back
/// to scalar.
const Kernels& Active();

/// Level of `Active()` (after env resolution and support fallback).
Level ActiveLevel();
/// Convenience: LevelName(ActiveLevel()) — recorded in the BENCH_*.json
/// artifacts so the perf gate compares like-for-like.
const char* ActiveLevelName();

/// Re-points `Active()` at `level` (with the same unsupported->scalar
/// fallback). Test-only: not synchronized against concurrent Active() users
/// beyond the atomic pointer swap, so call it from a quiescent test body.
void ForceLevelForTesting(Level level);

/// Re-resolves `Active()` from the environment (test-only).
void ResetDispatchForTesting();

}  // namespace rlplanner::util::simd

#endif  // RLPLANNER_UTIL_SIMD_H_

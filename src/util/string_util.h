#ifndef RLPLANNER_UTIL_STRING_UTIL_H_
#define RLPLANNER_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace rlplanner::util {

/// Splits `input` on `delimiter`, keeping empty fields.
std::vector<std::string> Split(std::string_view input, char delimiter);

/// Joins `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view input);

/// ASCII lowercase copy.
std::string ToLower(std::string_view input);

/// True when `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Formats a double with `precision` digits after the decimal point,
/// trimming trailing zeros ("4.60" -> "4.6", "5.00" -> "5").
std::string FormatDouble(double value, int precision = 3);

}  // namespace rlplanner::util

#endif  // RLPLANNER_UTIL_STRING_UTIL_H_

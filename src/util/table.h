#ifndef RLPLANNER_UTIL_TABLE_H_
#define RLPLANNER_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace rlplanner::util {

/// Renders aligned ASCII tables; the benchmark harnesses use this to print
/// the same rows/series the paper's tables report.
class AsciiTable {
 public:
  /// Creates a table whose first row is the given header.
  explicit AsciiTable(std::vector<std::string> header);

  /// Appends a data row; short rows are padded with empty cells.
  void AddRow(std::vector<std::string> row);

  std::size_t num_rows() const { return rows_.size(); }

  /// Renders the table with `|` separators and a rule under the header.
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rlplanner::util

#endif  // RLPLANNER_UTIL_TABLE_H_

#include "util/simd.h"

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>

namespace rlplanner::util::simd {

// ---------------------------------------------------------------------------
// Scalar kernels. These define the semantics every other level must match
// bit-for-bit; this translation unit is compiled with -ffp-contract=off so
// the compiler cannot fuse the mul+add pairs the vector paths keep separate.
// ---------------------------------------------------------------------------

namespace {

std::size_t ScalarPopcountWords(const std::uint64_t* words, std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) total += std::popcount(words[i]);
  return total;
}

std::size_t ScalarIntersectCountWords(const std::uint64_t* a,
                                      const std::uint64_t* b, std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) total += std::popcount(a[i] & b[i]);
  return total;
}

std::size_t ScalarAndNotIntersectCountWords(const std::uint64_t* a,
                                            const std::uint64_t* b,
                                            const std::uint64_t* c,
                                            std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += std::popcount(a[i] & ~b[i] & c[i]);
  }
  return total;
}

bool ScalarIntersectsWords(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}

bool ScalarAnyWords(const std::uint64_t* words, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (words[i] != 0) return true;
  }
  return false;
}

void ScalarAndAssignWords(std::uint64_t* dst, const std::uint64_t* src,
                          std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] &= src[i];
}

void ScalarOrAssignWords(std::uint64_t* dst, const std::uint64_t* src,
                         std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] |= src[i];
}

void ScalarXorAssignWords(std::uint64_t* dst, const std::uint64_t* src,
                          std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= src[i];
}

void ScalarAndNotAssignWords(std::uint64_t* dst, const std::uint64_t* src,
                             std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] &= ~src[i];
}

void ScalarComplementWords(std::uint64_t* dst, const std::uint64_t* src,
                           std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = ~src[i];
}

// Blocked 4-accumulator dot: the fixed summation order all levels share
// (lane j accumulates indices ≡ j mod 4; lanes combine as (0+2)+(1+3), then
// the tail adds left to right). AVX2 reproduces this order exactly with one
// 4-lane vector accumulator.
double ScalarDotF64(const double* a, const double* b, std::size_t n) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  double total = (acc0 + acc2) + (acc1 + acc3);
  for (; i < n; ++i) total += a[i] * b[i];
  return total;
}

void ScalarAxpyF64(double a, const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = y[i] + a * x[i];
}

void ScalarScaleF64(double* v, double factor, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) v[i] *= factor;
}

void ScalarAccumulateDeltaF64(double* q, const double* local,
                              const double* base, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) q[i] += local[i] - base[i];
}

double ScalarMaxAbsF64(const double* v, std::size_t n) {
  double best = 0.0;
  for (std::size_t i = 0; i < n; ++i) best = std::max(best, std::abs(v[i]));
  return best;
}

std::size_t ScalarCountNonZeroF64(const double* v, std::size_t n) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (v[i] != 0.0) ++count;
  }
  return count;
}

std::ptrdiff_t ScalarArgmaxMaskedF64(const double* values, std::size_t n,
                                     const std::uint64_t* mask,
                                     std::size_t num_words) {
  std::ptrdiff_t best = -1;
  double best_value = 0.0;
  for (std::size_t w = 0; w < num_words; ++w) {
    std::uint64_t word = mask[w];
    while (word != 0) {
      const std::size_t i =
          w * 64 + static_cast<std::size_t>(std::countr_zero(word));
      word &= word - 1;
      if (i >= n) return best;  // defensive: tail bits should be zero
      const double value = values[i];
      if (best < 0 || value > best_value) {
        best = static_cast<std::ptrdiff_t>(i);
        best_value = value;
      }
    }
  }
  return best;
}

constexpr Kernels kScalarKernels = {
    Level::kScalar,
    &ScalarPopcountWords,
    &ScalarIntersectCountWords,
    &ScalarAndNotIntersectCountWords,
    &ScalarIntersectsWords,
    &ScalarAnyWords,
    &ScalarAndAssignWords,
    &ScalarOrAssignWords,
    &ScalarXorAssignWords,
    &ScalarAndNotAssignWords,
    &ScalarComplementWords,
    &ScalarDotF64,
    &ScalarAxpyF64,
    &ScalarScaleF64,
    &ScalarAccumulateDeltaF64,
    &ScalarMaxAbsF64,
    &ScalarCountNonZeroF64,
    &ScalarArgmaxMaskedF64,
};

}  // namespace

// Implemented in simd_avx2.cc / simd_neon.cc; null when not compiled in.
const Kernels* GetAvx2Kernels();
const Kernels* GetNeonKernels();

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kNeon:
      return "neon";
    case Level::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool LevelCompiled(Level level) {
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kNeon:
      return GetNeonKernels() != nullptr;
    case Level::kAvx2:
      return GetAvx2Kernels() != nullptr;
  }
  return false;
}

namespace {

bool CpuSupports(Level level) {
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kNeon:
      // The NEON kernels are only compiled on aarch64, where ASIMD is part
      // of the baseline ISA: compiled-in implies supported.
      return true;
    case Level::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
  }
  return false;
}

}  // namespace

bool LevelSupported(Level level) {
  return LevelCompiled(level) && CpuSupports(level);
}

Level DetectBestLevel() {
  if (LevelSupported(Level::kAvx2)) return Level::kAvx2;
  if (LevelSupported(Level::kNeon)) return Level::kNeon;
  return Level::kScalar;
}

bool ParseLevel(std::string_view text, Level* level, bool* auto_detect) {
  *auto_detect = false;
  if (text == "off" || text == "scalar") {
    *level = Level::kScalar;
    return true;
  }
  if (text == "neon") {
    *level = Level::kNeon;
    return true;
  }
  if (text == "avx2") {
    *level = Level::kAvx2;
    return true;
  }
  if (text.empty() || text == "auto") {
    *auto_detect = true;
    *level = DetectBestLevel();
    return true;
  }
  return false;
}

const Kernels& KernelsForLevel(Level level) {
  if (LevelSupported(level)) {
    switch (level) {
      case Level::kScalar:
        break;
      case Level::kNeon:
        return *GetNeonKernels();
      case Level::kAvx2:
        return *GetAvx2Kernels();
    }
  }
  return kScalarKernels;
}

namespace {

const Kernels& ResolveFromEnvironment() {
  const char* env = std::getenv("RLPLANNER_SIMD");
  Level level = DetectBestLevel();
  bool auto_detect = true;
  if (env != nullptr && !ParseLevel(env, &level, &auto_detect)) {
    // Unknown value: keep auto-detect (never fail startup on a typo).
    level = DetectBestLevel();
  }
  return KernelsForLevel(level);
}

std::atomic<const Kernels*>& ActiveSlot() {
  static std::atomic<const Kernels*> slot{nullptr};
  return slot;
}

}  // namespace

const Kernels& Active() {
  const Kernels* table = ActiveSlot().load(std::memory_order_acquire);
  if (table == nullptr) {
    // First use (or post-reset): resolve from the environment. Concurrent
    // first calls race benignly — every resolution yields the same table.
    table = &ResolveFromEnvironment();
    ActiveSlot().store(table, std::memory_order_release);
  }
  return *table;
}

Level ActiveLevel() { return Active().level; }

const char* ActiveLevelName() { return LevelName(ActiveLevel()); }

void ForceLevelForTesting(Level level) {
  ActiveSlot().store(&KernelsForLevel(level), std::memory_order_release);
}

void ResetDispatchForTesting() {
  ActiveSlot().store(nullptr, std::memory_order_release);
}

}  // namespace rlplanner::util::simd

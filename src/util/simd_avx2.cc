// AVX2 kernel table. Compiled with -mavx2 -ffp-contract=off on x86-64 (see
// src/CMakeLists.txt); on other targets, or with a compiler that lacks
// -mavx2, this translation unit degenerates to a null accessor and dispatch
// stays on the scalar (or NEON) table.
//
// Every kernel here is bit-exact against its scalar counterpart in simd.cc:
// the integer kernels trivially, the f64 elementwise kernels because they
// perform the identical per-element operations (separate mul + add, never
// FMA), the max/argmax reductions because max is order-independent, and the
// dot product because both paths use the same fixed 4-accumulator order.

#include "util/simd.h"

#if defined(RLPLANNER_HAVE_AVX2)

#include <immintrin.h>

#include <bit>
#include <cmath>
#include <limits>

namespace rlplanner::util::simd {

namespace {

// ---------------------------------------------------------------------------
// u64 word kernels
// ---------------------------------------------------------------------------

// Per-64-bit-lane popcount of a 256-bit vector via the nibble-LUT +
// byte-sum-of-absolute-differences idiom (AVX2 has no vpopcnt).
inline __m256i Popcount256(__m256i v) {
  const __m256i lookup = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                                         _mm256_shuffle_epi8(lookup, hi));
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

inline std::size_t HorizontalSum64(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i sum = _mm_add_epi64(lo, hi);
  return static_cast<std::size_t>(_mm_extract_epi64(sum, 0)) +
         static_cast<std::size_t>(_mm_extract_epi64(sum, 1));
}

std::size_t Avx2PopcountWords(const std::uint64_t* words, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + i));
    acc = _mm256_add_epi64(acc, Popcount256(v));
  }
  std::size_t total = HorizontalSum64(acc);
  for (; i < n; ++i) total += std::popcount(words[i]);
  return total;
}

std::size_t Avx2IntersectCountWords(const std::uint64_t* a,
                                    const std::uint64_t* b, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_add_epi64(acc, Popcount256(_mm256_and_si256(va, vb)));
  }
  std::size_t total = HorizontalSum64(acc);
  for (; i < n; ++i) total += std::popcount(a[i] & b[i]);
  return total;
}

std::size_t Avx2AndNotIntersectCountWords(const std::uint64_t* a,
                                          const std::uint64_t* b,
                                          const std::uint64_t* c,
                                          std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i vc =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + i));
    // andnot(b, a) computes ~b & a.
    const __m256i masked =
        _mm256_and_si256(_mm256_andnot_si256(vb, va), vc);
    acc = _mm256_add_epi64(acc, Popcount256(masked));
  }
  std::size_t total = HorizontalSum64(acc);
  for (; i < n; ++i) total += std::popcount(a[i] & ~b[i] & c[i]);
  return total;
}

bool Avx2IntersectsWords(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    if (_mm256_testz_si256(va, vb) == 0) return true;
  }
  for (; i < n; ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}

bool Avx2AnyWords(const std::uint64_t* words, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + i));
    if (_mm256_testz_si256(v, v) == 0) return true;
  }
  for (; i < n; ++i) {
    if (words[i] != 0) return true;
  }
  return false;
}

template <typename WordOp, typename VectorOp>
inline void ElementwiseWords(std::uint64_t* dst, const std::uint64_t* src,
                             std::size_t n, VectorOp vector_op,
                             WordOp word_op) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i vd =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i vs =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        vector_op(vd, vs));
  }
  for (; i < n; ++i) dst[i] = word_op(dst[i], src[i]);
}

void Avx2AndAssignWords(std::uint64_t* dst, const std::uint64_t* src,
                        std::size_t n) {
  ElementwiseWords(
      dst, src, n,
      [](__m256i d, __m256i s) { return _mm256_and_si256(d, s); },
      [](std::uint64_t d, std::uint64_t s) { return d & s; });
}

void Avx2OrAssignWords(std::uint64_t* dst, const std::uint64_t* src,
                       std::size_t n) {
  ElementwiseWords(
      dst, src, n,
      [](__m256i d, __m256i s) { return _mm256_or_si256(d, s); },
      [](std::uint64_t d, std::uint64_t s) { return d | s; });
}

void Avx2XorAssignWords(std::uint64_t* dst, const std::uint64_t* src,
                        std::size_t n) {
  ElementwiseWords(
      dst, src, n,
      [](__m256i d, __m256i s) { return _mm256_xor_si256(d, s); },
      [](std::uint64_t d, std::uint64_t s) { return d ^ s; });
}

void Avx2AndNotAssignWords(std::uint64_t* dst, const std::uint64_t* src,
                           std::size_t n) {
  ElementwiseWords(
      dst, src, n,
      // andnot(s, d) computes ~s & d == d & ~s.
      [](__m256i d, __m256i s) { return _mm256_andnot_si256(s, d); },
      [](std::uint64_t d, std::uint64_t s) { return d & ~s; });
}

void Avx2ComplementWords(std::uint64_t* dst, const std::uint64_t* src,
                         std::size_t n) {
  const __m256i ones = _mm256_set1_epi64x(-1);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i vs =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(vs, ones));
  }
  for (; i < n; ++i) dst[i] = ~src[i];
}

// ---------------------------------------------------------------------------
// f64 kernels
// ---------------------------------------------------------------------------

double Avx2DotF64(const double* a, const double* b, std::size_t n) {
  // One vector accumulator: lane j holds the scalar path's acc<j>.
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d va = _mm256_loadu_pd(a + i);
    const __m256d vb = _mm256_loadu_pd(b + i);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(va, vb));
  }
  // Combine exactly as the scalar kernel: (acc0 + acc2) + (acc1 + acc3).
  const __m128d lo = _mm256_castpd256_pd128(acc);       // lanes 0, 1
  const __m128d hi = _mm256_extractf128_pd(acc, 1);     // lanes 2, 3
  const __m128d pair = _mm_add_pd(lo, hi);              // {0+2, 1+3}
  double total = _mm_cvtsd_f64(pair) +
                 _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
  for (; i < n; ++i) total += a[i] * b[i];
  return total;
}

void Avx2AxpyF64(double a, const double* x, double* y, std::size_t n) {
  const __m256d va = _mm256_set1_pd(a);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vx = _mm256_loadu_pd(x + i);
    const __m256d vy = _mm256_loadu_pd(y + i);
    _mm256_storeu_pd(y + i, _mm256_add_pd(vy, _mm256_mul_pd(va, vx)));
  }
  for (; i < n; ++i) y[i] = y[i] + a * x[i];
}

void Avx2ScaleF64(double* v, double factor, std::size_t n) {
  const __m256d vf = _mm256_set1_pd(factor);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(v + i, _mm256_mul_pd(_mm256_loadu_pd(v + i), vf));
  }
  for (; i < n; ++i) v[i] *= factor;
}

void Avx2AccumulateDeltaF64(double* q, const double* local,
                            const double* base, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vl = _mm256_loadu_pd(local + i);
    const __m256d vb = _mm256_loadu_pd(base + i);
    const __m256d vq = _mm256_loadu_pd(q + i);
    _mm256_storeu_pd(q + i, _mm256_add_pd(vq, _mm256_sub_pd(vl, vb)));
  }
  for (; i < n; ++i) q[i] += local[i] - base[i];
}

double Avx2MaxAbsF64(const double* v, std::size_t n) {
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  __m256d vbest = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vbest = _mm256_max_pd(vbest,
                          _mm256_and_pd(_mm256_loadu_pd(v + i), abs_mask));
  }
  const __m128d lo = _mm256_castpd256_pd128(vbest);
  const __m128d hi = _mm256_extractf128_pd(vbest, 1);
  const __m128d pair = _mm_max_pd(lo, hi);
  double best = _mm_cvtsd_f64(_mm_max_sd(pair, _mm_unpackhi_pd(pair, pair)));
  for (; i < n; ++i) best = std::max(best, std::abs(v[i]));
  return best;
}

std::size_t Avx2CountNonZeroF64(const double* v, std::size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // Unordered non-equal: NaN != 0.0 is true, matching the scalar `!=`.
    const __m256d neq =
        _mm256_cmp_pd(_mm256_loadu_pd(v + i), zero, _CMP_NEQ_UQ);
    count += static_cast<std::size_t>(
        std::popcount(static_cast<unsigned>(_mm256_movemask_pd(neq))));
  }
  for (; i < n; ++i) {
    if (v[i] != 0.0) ++count;
  }
  return count;
}

std::ptrdiff_t Avx2ArgmaxMaskedF64(const double* values, std::size_t n,
                                   const std::uint64_t* mask,
                                   std::size_t num_words) {
  // Single pass tracking (max, first index) per lane. Disallowed lanes are
  // blended to -inf so they never win; lane masks come from a branch-free
  // variable shift — word << (63 - bit) puts each lane's admissibility bit
  // into the lane's sign bit, which is exactly what blendv_pd selects on.
  // All-ones words (the common dense admissible set) skip the blend.
  //
  // Each lane updates on strictly-greater only, so it records the FIRST
  // index attaining its lane max — and the global first occurrence of the
  // overall max lives in whichever lane covers it, making the final
  // lowest-index-among-max-lanes reduction exactly the scalar tie-break.
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  const __m256d neg_inf = _mm256_set1_pd(kNegInf);
  const __m256i group_step = _mm256_set1_epi64x(8);
  // Two independent (max, index) chains over alternating 4-lane groups:
  // the cmp -> blendv update is a loop-carried dependency (~6 cycles), so a
  // single chain leaves the FPU half idle. The chains merge in the final
  // reduction.
  __m256d vmax0 = neg_inf, vmax1 = neg_inf;
  __m256i vidx0 = _mm256_set1_epi64x(-1), vidx1 = _mm256_set1_epi64x(-1);
  double tail_max = kNegInf;
  std::ptrdiff_t tail_idx = -1;
  bool any = false;
  for (std::size_t w = 0; w < num_words; ++w) {
    const std::uint64_t word = mask[w];
    if (word == 0) continue;
    any = true;
    const std::size_t base = w * 64;
    if (base + 64 <= n) {
      __m256i idx0 = _mm256_add_epi64(
          _mm256_set1_epi64x(static_cast<long long>(base)),
          _mm256_set_epi64x(3, 2, 1, 0));
      __m256i idx1 = _mm256_add_epi64(
          _mm256_set1_epi64x(static_cast<long long>(base)),
          _mm256_set_epi64x(7, 6, 5, 4));
      if (word == ~std::uint64_t{0}) {
        for (std::size_t g = 0; g < 16; g += 2) {
          const __m256d v0 = _mm256_loadu_pd(values + base + g * 4);
          const __m256d v1 = _mm256_loadu_pd(values + base + g * 4 + 4);
          const __m256d gt0 = _mm256_cmp_pd(v0, vmax0, _CMP_GT_OQ);
          const __m256d gt1 = _mm256_cmp_pd(v1, vmax1, _CMP_GT_OQ);
          vmax0 = _mm256_blendv_pd(vmax0, v0, gt0);
          vmax1 = _mm256_blendv_pd(vmax1, v1, gt1);
          vidx0 = _mm256_blendv_epi8(vidx0, idx0, _mm256_castpd_si256(gt0));
          vidx1 = _mm256_blendv_epi8(vidx1, idx1, _mm256_castpd_si256(gt1));
          idx0 = _mm256_add_epi64(idx0, group_step);
          idx1 = _mm256_add_epi64(idx1, group_step);
        }
      } else {
        const __m256i word_vec =
            _mm256_set1_epi64x(static_cast<long long>(word));
        // Lane k of group g holds bit g*4+k; shifting the word left by
        // 63-(g*4+k) exposes that bit as the lane's sign bit. Counts start
        // at {63..60} / {59..56} and drop by 8 per unrolled iteration.
        __m256i counts0 = _mm256_set_epi64x(60, 61, 62, 63);
        __m256i counts1 = _mm256_set_epi64x(56, 57, 58, 59);
        const __m256i count_step = _mm256_set1_epi64x(8);
        for (std::size_t g = 0; g < 16; g += 2) {
          const __m256d m0 =
              _mm256_castsi256_pd(_mm256_sllv_epi64(word_vec, counts0));
          const __m256d m1 =
              _mm256_castsi256_pd(_mm256_sllv_epi64(word_vec, counts1));
          const __m256d v0 = _mm256_blendv_pd(
              neg_inf, _mm256_loadu_pd(values + base + g * 4), m0);
          const __m256d v1 = _mm256_blendv_pd(
              neg_inf, _mm256_loadu_pd(values + base + g * 4 + 4), m1);
          const __m256d gt0 = _mm256_cmp_pd(v0, vmax0, _CMP_GT_OQ);
          const __m256d gt1 = _mm256_cmp_pd(v1, vmax1, _CMP_GT_OQ);
          vmax0 = _mm256_blendv_pd(vmax0, v0, gt0);
          vmax1 = _mm256_blendv_pd(vmax1, v1, gt1);
          vidx0 = _mm256_blendv_epi8(vidx0, idx0, _mm256_castpd_si256(gt0));
          vidx1 = _mm256_blendv_epi8(vidx1, idx1, _mm256_castpd_si256(gt1));
          idx0 = _mm256_add_epi64(idx0, group_step);
          idx1 = _mm256_add_epi64(idx1, group_step);
          counts0 = _mm256_sub_epi64(counts0, count_step);
          counts1 = _mm256_sub_epi64(counts1, count_step);
        }
      }
    } else {
      // Ragged final word: scalar over its set bits (strictly-greater, so
      // tail_idx is also a first occurrence).
      std::uint64_t bits = word;
      while (bits != 0) {
        const std::size_t i =
            base + static_cast<std::size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        if (i >= n) break;
        if (values[i] > tail_max) {
          tail_max = values[i];
          tail_idx = static_cast<std::ptrdiff_t>(i);
        }
      }
    }
  }
  if (!any) return -1;
  // Merge the chains: each of the 8 lanes holds the first index attaining
  // its subsequence's max, so the lowest index among the max-valued lanes
  // is the global first occurrence — the scalar tie-break.
  alignas(32) double lane_max[8];
  alignas(32) std::int64_t lane_idx[8];
  _mm256_store_pd(lane_max, vmax0);
  _mm256_store_pd(lane_max + 4, vmax1);
  _mm256_store_si256(reinterpret_cast<__m256i*>(lane_idx), vidx0);
  _mm256_store_si256(reinterpret_cast<__m256i*>(lane_idx + 4), vidx1);
  double best = kNegInf;
  std::ptrdiff_t best_idx = -1;
  for (int lane = 0; lane < 8; ++lane) {
    if (lane_idx[lane] < 0) continue;  // lane never saw an allowed value
    const auto idx = static_cast<std::ptrdiff_t>(lane_idx[lane]);
    if (lane_max[lane] > best || (lane_max[lane] == best && idx < best_idx)) {
      best = lane_max[lane];
      best_idx = idx;
    }
  }
  // Tail indices are all larger than vector ones, so strictly-greater only.
  if (tail_idx >= 0 && tail_max > best) {
    best = tail_max;
    best_idx = tail_idx;
  }
  if (best_idx >= 0) return best_idx;
  // Every allowed value is -inf: no strictly-greater update ever fired.
  // Match the scalar rule (first allowed index is adopted unconditionally).
  for (std::size_t w = 0; w < num_words; ++w) {
    if (mask[w] != 0) {
      const std::size_t i =
          w * 64 + static_cast<std::size_t>(std::countr_zero(mask[w]));
      return i < n ? static_cast<std::ptrdiff_t>(i) : -1;
    }
  }
  return -1;
}

constexpr Kernels kAvx2Kernels = {
    Level::kAvx2,
    &Avx2PopcountWords,
    &Avx2IntersectCountWords,
    &Avx2AndNotIntersectCountWords,
    &Avx2IntersectsWords,
    &Avx2AnyWords,
    &Avx2AndAssignWords,
    &Avx2OrAssignWords,
    &Avx2XorAssignWords,
    &Avx2AndNotAssignWords,
    &Avx2ComplementWords,
    &Avx2DotF64,
    &Avx2AxpyF64,
    &Avx2ScaleF64,
    &Avx2AccumulateDeltaF64,
    &Avx2MaxAbsF64,
    &Avx2CountNonZeroF64,
    &Avx2ArgmaxMaskedF64,
};

}  // namespace

const Kernels* GetAvx2Kernels() { return &kAvx2Kernels; }

}  // namespace rlplanner::util::simd

#else  // !RLPLANNER_HAVE_AVX2

namespace rlplanner::util::simd {

const Kernels* GetAvx2Kernels() { return nullptr; }

}  // namespace rlplanner::util::simd

#endif  // RLPLANNER_HAVE_AVX2

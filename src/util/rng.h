#ifndef RLPLANNER_UTIL_RNG_H_
#define RLPLANNER_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace rlplanner::util {

/// Deterministic pseudo-random number generator (xoshiro256**, seeded via
/// SplitMix64). All stochastic components of the library (tie-breaking,
/// epsilon-greedy exploration, synthetic data generation, simulated raters)
/// draw from an explicitly passed `Rng`, so every experiment is reproducible
/// from its seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t NextU64();

  /// Uniform in [0, bound). `bound` must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int NextInt(int lo, int hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Gaussian sample (Box-Muller) with the given mean and stddev.
  double NextGaussian(double mean = 0.0, double stddev = 1.0);

  /// True with probability `p` (clamped to [0, 1]).
  bool NextBernoulli(double p);

  /// Fisher-Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = NextBounded(i);
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// Picks a uniformly random element index from a non-empty container size.
  std::size_t NextIndex(std::size_t size) {
    return static_cast<std::size_t>(NextBounded(size));
  }

 private:
  std::uint64_t state_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace rlplanner::util

#endif  // RLPLANNER_UTIL_RNG_H_

#ifndef RLPLANNER_UTIL_CSV_H_
#define RLPLANNER_UTIL_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace rlplanner::util {

/// A parsed CSV document: a header row plus data rows.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of `column` in the header, or -1 when absent.
  int ColumnIndex(std::string_view column) const;
};

/// Parses RFC-4180-style CSV text: comma separated, double-quote quoting,
/// embedded quotes doubled (""), embedded newlines inside quotes allowed.
/// The first record is treated as the header. Rows whose field count differs
/// from the header produce an InvalidArgument error.
Result<CsvDocument> ParseCsv(std::string_view text);

/// Serializes a document back to CSV text, quoting fields that need it.
std::string WriteCsv(const CsvDocument& doc);

/// Reads and parses a CSV file from disk.
Result<CsvDocument> ReadCsvFile(const std::string& path);

/// Writes a CSV document to disk.
Status WriteCsvFile(const std::string& path, const CsvDocument& doc);

}  // namespace rlplanner::util

#endif  // RLPLANNER_UTIL_CSV_H_

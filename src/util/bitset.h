#ifndef RLPLANNER_UTIL_BITSET_H_
#define RLPLANNER_UTIL_BITSET_H_

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/simd.h"

namespace rlplanner::util {

/// A fixed-size bitset whose size is chosen at runtime.
///
/// Topic/theme vectors (`T^m` in the paper) are Boolean vectors whose length
/// is the topic-vocabulary size of a dataset, which is only known at load
/// time; this class backs them with packed 64-bit words.
class DynamicBitset {
 public:
  /// Creates an all-zero bitset with `size` bits.
  explicit DynamicBitset(std::size_t size = 0);

  /// Builds a bitset from 0/1 integers (convenient for paper examples).
  static DynamicBitset FromBits(const std::vector<int>& bits);

  std::size_t size() const { return size_; }

  /// Grows or shrinks to `size` bits; new bits are zero.
  void Resize(std::size_t size);

  void Set(std::size_t index, bool value = true);
  bool Test(std::size_t index) const;

  /// Sets every bit (tail bits past `size()` stay zero).
  void SetAll();

  /// Number of set bits.
  std::size_t Count() const;
  /// True when at least one bit is set.
  bool Any() const;
  /// True when no bit is set.
  bool None() const { return !Any(); }
  /// Sets all bits to zero.
  void Clear();

  DynamicBitset& operator|=(const DynamicBitset& other);
  DynamicBitset& operator&=(const DynamicBitset& other);
  DynamicBitset& operator^=(const DynamicBitset& other);

  /// Returns `this & ~other` (set difference).
  DynamicBitset AndNot(const DynamicBitset& other) const;

  /// In-place set difference: `this &= ~other`. Word-level, no allocation.
  DynamicBitset& AndNotAssign(const DynamicBitset& other);

  /// Makes this the complement of `other` (`this = ~other`), resizing to
  /// `other.size()`. Word-level, allocation-free when capacities match —
  /// the seed operation of candidate scans ("every item not yet chosen").
  void AssignComplementOf(const DynamicBitset& other);

  /// Number of bits set in both `this` and `other` (popcount of the AND) —
  /// the topic-coverage "dot product" over Boolean vectors.
  std::size_t IntersectCount(const DynamicBitset& other) const;
  /// True when `this` and `other` share at least one set bit.
  bool Intersects(const DynamicBitset& other) const;

  /// Fused popcount of `this & ~b & c` ("newly covered ideal topics"):
  /// one pass, no temporary bitset. All three must share one size.
  std::size_t AndNotIntersectCount(const DynamicBitset& b,
                                   const DynamicBitset& c) const;

  /// The packed 64-bit words backing the bitset (tail bits past `size()`
  /// are always zero). For handing rows to the util/simd.h kernels — e.g.
  /// QTable's masked argmax — without per-bit extraction.
  const std::uint64_t* word_data() const { return words_.data(); }
  std::size_t word_count() const { return words_.size(); }

  /// Renders as a string of '0'/'1' characters, index 0 first.
  std::string ToString() const;

  /// Invokes `fn(base_index, word)` for every *non-zero* 64-bit word, where
  /// `base_index` is the bit index of the word's bit 0. Zero words are
  /// skipped, so sparse sets cost O(words) tests plus O(set words) calls.
  /// The word-level kernel the hot candidate scans are built on.
  template <typename Fn>
  void ForEachSetWord(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      if (words_[w] != 0) fn(w * kWordBits, words_[w]);
    }
  }

  /// Invokes `fn(bit_index)` for every set bit in ascending index order,
  /// extracting bits a word at a time (countr_zero + clear-lowest) instead
  /// of testing every index. Replaces per-id `allowed(id)` callback loops.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        fn(w * kWordBits + static_cast<std::size_t>(bit));
        word &= word - 1;  // clear the lowest set bit
      }
    }
  }

 private:
  using Word = std::uint64_t;
  static constexpr std::size_t kWordBits = 64;

  // Zeroes bits past `size_` in the final word so Count() stays correct.
  void TrimTail();

  std::size_t size_;
  std::vector<Word> words_;
};

bool operator==(const DynamicBitset& a, const DynamicBitset& b);

}  // namespace rlplanner::util

#endif  // RLPLANNER_UTIL_BITSET_H_

#ifndef RLPLANNER_ADAPTIVE_INTERACTIVE_H_
#define RLPLANNER_ADAPTIVE_INTERACTIVE_H_

#include <memory>
#include <vector>

#include "core/planner.h"
#include "mdp/episode_state.h"

namespace rlplanner::adaptive {

/// One candidate next item with its decision signals, for display in an
/// advising UI.
struct Suggestion {
  model::ItemId item = -1;
  /// Eq. 5 admissibility at this position (1 = all constraints satisfied).
  int theta = 0;
  /// Immediate Eq. 2 reward.
  double reward = 0.0;
  /// Learned action value from the current session state.
  double q_value = 0.0;
};

/// An interactive advising session over a trained policy ("capable to make
/// interactive recommendations in real-time", Section IV): the student or
/// traveler alternates between accepting the planner's suggestion and
/// pinning their own choice, and the planner replans around whatever
/// prefix exists.
class InteractiveSession {
 public:
  /// `planner` must be trained and outlive the session.
  explicit InteractiveSession(const core::RlPlanner& planner);

  /// Items chosen so far.
  const std::vector<model::ItemId>& sequence() const {
    return state_->sequence();
  }
  std::size_t Length() const { return state_->Length(); }

  /// True when the session reached the horizon (courses) or no admissible
  /// item remains (trips: budget exhausted).
  bool Done() const;

  /// The top `k` candidates for the next slot, best first (same ordering
  /// as the automatic recommendation: theta, then reward, then Q).
  std::vector<Suggestion> SuggestNext(int k) const;

  /// Appends a user-chosen item. Fails when the item is inadmissible
  /// (already chosen / over budget / makes the split unsatisfiable).
  util::Status Pin(model::ItemId item);

  /// Accepts the planner's best suggestion. Fails when Done().
  util::Result<model::ItemId> AcceptSuggestion();

  /// Completes the remainder automatically and returns the full plan.
  model::Plan Complete();

  /// The plan as chosen so far.
  model::Plan CurrentPlan() const { return state_->ToPlan(); }

 private:
  std::vector<Suggestion> RankCandidates() const;

  const core::RlPlanner* planner_;
  std::unique_ptr<mdp::EpisodeState> state_;
  int horizon_;
};

}  // namespace rlplanner::adaptive

#endif  // RLPLANNER_ADAPTIVE_INTERACTIVE_H_

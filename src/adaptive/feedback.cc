#include "adaptive/feedback.h"

#include <sstream>

namespace rlplanner::adaptive {

FeedbackModel::FeedbackModel(std::size_t num_items, double smoothing)
    : smoothing_(smoothing),
      affinity_(num_items, 0.5),
      observations_(num_items, 0) {}

util::Status FeedbackModel::Observe(model::ItemId item,
                                    double normalized_value) {
  if (item < 0 || static_cast<std::size_t>(item) >= affinity_.size()) {
    std::ostringstream msg;
    msg << "feedback for unknown item " << item;
    return util::Status::OutOfRange(msg.str());
  }
  affinity_[item] = (1.0 - smoothing_) * affinity_[item] +
                    smoothing_ * normalized_value;
  observations_[item] += 1;
  return util::Status::Ok();
}

util::Status FeedbackModel::AddBinary(model::ItemId item, bool useful) {
  return Observe(item, useful ? 1.0 : 0.0);
}

util::Status FeedbackModel::AddRating(model::ItemId item, double rating) {
  if (rating < 1.0 || rating > 5.0) {
    return util::Status::InvalidArgument("rating must be in [1, 5]");
  }
  return Observe(item, (rating - 1.0) / 4.0);
}

util::Status FeedbackModel::AddDistribution(
    model::ItemId item, const std::vector<double>& probabilities) {
  if (probabilities.size() != 5) {
    return util::Status::InvalidArgument(
        "distribution must have 5 entries (ratings 1..5)");
  }
  double mass = 0.0;
  double expectation = 0.0;
  for (std::size_t r = 0; r < probabilities.size(); ++r) {
    if (probabilities[r] < 0.0) {
      return util::Status::InvalidArgument(
          "distribution entries must be non-negative");
    }
    mass += probabilities[r];
    expectation += probabilities[r] * static_cast<double>(r + 1);
  }
  if (mass <= 0.0) {
    return util::Status::InvalidArgument("distribution has no mass");
  }
  return Observe(item, (expectation / mass - 1.0) / 4.0);
}

double FeedbackModel::Affinity(model::ItemId item) const {
  if (item < 0 || static_cast<std::size_t>(item) >= affinity_.size()) {
    return 0.5;
  }
  return affinity_[item];
}

int FeedbackModel::ObservationCount(model::ItemId item) const {
  if (item < 0 || static_cast<std::size_t>(item) >= observations_.size()) {
    return 0;
  }
  return observations_[item];
}

util::Status FeedbackModel::Apply(const FeedbackEvent& event) {
  switch (event.kind) {
    case FeedbackKind::kBinary:
      return AddBinary(event.item, event.value != 0.0);
    case FeedbackKind::kRating:
      return AddRating(event.item, event.value);
    case FeedbackKind::kDistribution:
      return AddDistribution(event.item, event.distribution);
  }
  return util::Status::InvalidArgument("unknown feedback kind");
}

util::Status FeedbackModel::Reset(model::ItemId item) {
  if (item < 0 || static_cast<std::size_t>(item) >= affinity_.size()) {
    return util::Status::OutOfRange("unknown item");
  }
  affinity_[item] = 0.5;
  observations_[item] = 0;
  return util::Status::Ok();
}

mdp::QTable FoldFeedback(const mdp::QTable& q, const FeedbackModel& feedback,
                         double strength) {
  mdp::QTable shaped = q;
  // Same shift as AdaptivePlanner::Recommend: scale with the table's own
  // magnitude so strong feedback can out-rank any learned tie-break, while
  // neutral feedback (affinity 0.5) is a bit-exact no-op.
  const double scale = strength * (shaped.MaxAbsValue() + 1.0);
  const std::size_t n = shaped.num_items();
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t a = 0; a < n; ++a) {
      const auto action = static_cast<model::ItemId>(a);
      const double shift = scale * (feedback.Affinity(action) - 0.5);
      if (shift != 0.0) {
        shaped.Set(static_cast<model::ItemId>(s), action,
                   shaped.Get(static_cast<model::ItemId>(s), action) + shift);
      }
    }
  }
  return shaped;
}

}  // namespace rlplanner::adaptive

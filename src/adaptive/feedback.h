#ifndef RLPLANNER_ADAPTIVE_FEEDBACK_H_
#define RLPLANNER_ADAPTIVE_FEEDBACK_H_

#include <vector>

#include "mdp/q_table.h"
#include "model/prereq.h"
#include "util/status.h"

namespace rlplanner::adaptive {

/// The three feedback channels the paper's conclusion proposes to support:
/// "feedback could come as binary values (useful item / not useful),
/// categorical rating (e.g., on a scale of 1-5), or as a probability
/// distribution" (Section VI).
enum class FeedbackKind {
  kBinary = 0,
  kRating = 1,
  kDistribution = 2,
};

/// One feedback observation as a value type, so feedback can be queued,
/// shipped across threads, and replayed deterministically (the fleet
/// orchestrator batches these per tick and folds them into retraining).
/// `value` carries the binary signal (0/1) or the 1..5 rating;
/// `distribution` carries the 5-entry rating distribution for
/// kDistribution and is ignored otherwise.
struct FeedbackEvent {
  model::ItemId item = 0;
  FeedbackKind kind = FeedbackKind::kBinary;
  double value = 0.0;
  std::vector<double> distribution;
};

/// Accumulates end-user feedback about items and exposes a per-item
/// *affinity* in [0, 1] (0.5 = no signal). All three channels normalize
/// into the same scale and are blended with an exponential moving average,
/// so recent feedback dominates but does not erase history.
class FeedbackModel {
 public:
  /// `num_items` fixes the catalog size; `smoothing` in (0, 1] is the EMA
  /// weight of a new observation.
  explicit FeedbackModel(std::size_t num_items, double smoothing = 0.5);

  std::size_t num_items() const { return affinity_.size(); }

  /// Binary feedback: useful (1) / not useful (0).
  util::Status AddBinary(model::ItemId item, bool useful);

  /// Categorical rating on the 1..5 scale.
  util::Status AddRating(model::ItemId item, double rating);

  /// A probability distribution over the ratings 1..5 (need not be
  /// normalized; must be non-negative with positive mass).
  util::Status AddDistribution(model::ItemId item,
                               const std::vector<double>& probabilities);

  /// Current affinity of `item` in [0, 1]; 0.5 when nothing is known.
  double Affinity(model::ItemId item) const;

  /// Number of feedback events recorded for `item`.
  int ObservationCount(model::ItemId item) const;

  /// Replays one queued event through the matching Add* channel.
  util::Status Apply(const FeedbackEvent& event);

  /// Forget everything about `item` (affinity back to 0.5).
  util::Status Reset(model::ItemId item);

 private:
  util::Status Observe(model::ItemId item, double normalized_value);

  double smoothing_;
  std::vector<double> affinity_;
  std::vector<int> observations_;
};

/// Shapes a learned Q-table by the accumulated affinities: every action
/// column is shifted by `strength * (MaxAbsValue(q) + 1) * (affinity - 0.5)`,
/// exactly the AdaptivePlanner recommendation-time shift, but applied to a
/// table that is about to be *retrained* rather than rolled out. Neutral
/// feedback (affinity 0.5 everywhere) returns the table unchanged, so
/// folding an empty batch is a bit-exact no-op. The shaped table is a warm
/// start only — SARSA's policy-iteration safety loop still gates the final
/// policy on the hard constraints, so feedback biases learning but can
/// never override Section II's P_hard.
mdp::QTable FoldFeedback(const mdp::QTable& q, const FeedbackModel& feedback,
                         double strength);

}  // namespace rlplanner::adaptive

#endif  // RLPLANNER_ADAPTIVE_FEEDBACK_H_

#include "adaptive/interactive.h"

#include <algorithm>

#include "rl/action_mask.h"

namespace rlplanner::adaptive {

namespace {

int HorizonFor(const model::TaskInstance& instance) {
  return instance.catalog->domain() == model::Domain::kTrip
             ? static_cast<int>(instance.catalog->size())
             : instance.hard.TotalItems();
}

}  // namespace

InteractiveSession::InteractiveSession(const core::RlPlanner& planner)
    : planner_(&planner),
      state_(std::make_unique<mdp::EpisodeState>(planner.instance())),
      horizon_(HorizonFor(planner.instance())) {}

bool InteractiveSession::Done() const {
  if (static_cast<int>(state_->Length()) >= horizon_) return true;
  const rl::ActionMask mask(planner_->reward_function(), horizon_,
                            planner_->config().sarsa.mask_type_overflow);
  return !mask.AnyAllowed(*state_);
}

std::vector<Suggestion> InteractiveSession::RankCandidates() const {
  const model::TaskInstance& instance = planner_->instance();
  const mdp::RewardFunction& reward = planner_->reward_function();
  const rl::ActionMask mask(reward, horizon_,
                            planner_->config().sarsa.mask_type_overflow);
  const model::ItemId current = state_->CurrentItem();

  std::vector<Suggestion> out;
  for (std::size_t i = 0; i < instance.catalog->size(); ++i) {
    const auto item = static_cast<model::ItemId>(i);
    if (!mask.Allowed(*state_, item)) continue;
    Suggestion s;
    s.item = item;
    s.theta = reward.Theta(*state_, item);
    s.reward = reward.Reward(*state_, item);
    s.q_value = (current >= 0 && planner_->trained())
                    ? planner_->q_table().Get(current, item)
                    : 0.0;
    out.push_back(s);
  }
  std::sort(out.begin(), out.end(), [](const Suggestion& a,
                                       const Suggestion& b) {
    if (a.theta != b.theta) return a.theta > b.theta;
    if (std::abs(a.reward - b.reward) > 1e-9) return a.reward > b.reward;
    if (a.q_value != b.q_value) return a.q_value > b.q_value;
    return a.item < b.item;
  });
  return out;
}

std::vector<Suggestion> InteractiveSession::SuggestNext(int k) const {
  std::vector<Suggestion> ranked = RankCandidates();
  if (k >= 0 && ranked.size() > static_cast<std::size_t>(k)) {
    ranked.resize(static_cast<std::size_t>(k));
  }
  return ranked;
}

util::Status InteractiveSession::Pin(model::ItemId item) {
  const model::TaskInstance& instance = planner_->instance();
  if (item < 0 ||
      static_cast<std::size_t>(item) >= instance.catalog->size()) {
    return util::Status::OutOfRange("item out of range");
  }
  if (static_cast<int>(state_->Length()) >= horizon_) {
    return util::Status::FailedPrecondition("session already complete");
  }
  const rl::ActionMask mask(planner_->reward_function(), horizon_,
                            planner_->config().sarsa.mask_type_overflow);
  if (!mask.Allowed(*state_, item)) {
    return util::Status::FailedPrecondition(
        "item is inadmissible here: " + instance.catalog->item(item).code);
  }
  state_->Add(item);
  return util::Status::Ok();
}

util::Result<model::ItemId> InteractiveSession::AcceptSuggestion() {
  const auto ranked = RankCandidates();
  if (ranked.empty()) {
    return util::Status::FailedPrecondition("no admissible item remains");
  }
  state_->Add(ranked.front().item);
  return ranked.front().item;
}

model::Plan InteractiveSession::Complete() {
  while (!Done()) {
    if (!AcceptSuggestion().ok()) break;
  }
  return state_->ToPlan();
}

}  // namespace rlplanner::adaptive

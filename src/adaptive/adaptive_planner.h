#ifndef RLPLANNER_ADAPTIVE_ADAPTIVE_PLANNER_H_
#define RLPLANNER_ADAPTIVE_ADAPTIVE_PLANNER_H_

#include <functional>

#include "adaptive/feedback.h"
#include "core/planner.h"

namespace rlplanner::adaptive {

/// The feedback loop sketched in the paper's conclusion: recommend a plan,
/// collect per-item feedback, fold it into the policy, and re-recommend.
///
/// Feedback enters the recommendation as a Q-value shift
/// `Q'(s, a) = Q(s, a) + strength * (affinity(a) - 0.5)`: a disliked item
/// loses exactly the kind of tie-break advantage a liked item gains, while
/// theta (hard-constraint admissibility) and the template-following reward
/// ordering stay untouched — feedback personalizes *which* item fills a
/// slot, never whether the plan stays valid.
class AdaptivePlanner {
 public:
  /// `planner` must be trained (or have adopted a policy) and must outlive
  /// the adaptive wrapper. `strength` scales the affinity shift.
  AdaptivePlanner(const core::RlPlanner& planner, double strength = 0.5);

  /// Recommendation using the feedback-shifted policy.
  util::Result<model::Plan> Recommend(model::ItemId start_item) const;

  /// The accumulated feedback (mutable: callers add feedback here).
  FeedbackModel& feedback() { return feedback_; }
  const FeedbackModel& feedback() const { return feedback_; }

  /// Runs up to `max_iterations` recommend -> rate -> adapt cycles.
  /// `rate` is called once per plan item and returns a 1..5 rating; the
  /// loop stops early when two consecutive plans are identical (the policy
  /// absorbed the feedback). Returns the final plan.
  util::Result<model::Plan> RunLoop(
      model::ItemId start_item, int max_iterations,
      const std::function<double(model::ItemId)>& rate);

 private:
  const core::RlPlanner* planner_;
  double strength_;
  FeedbackModel feedback_;
};

}  // namespace rlplanner::adaptive

#endif  // RLPLANNER_ADAPTIVE_ADAPTIVE_PLANNER_H_

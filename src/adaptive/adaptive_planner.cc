#include "adaptive/adaptive_planner.h"

#include "core/validation.h"
#include "rl/recommender.h"

namespace rlplanner::adaptive {

AdaptivePlanner::AdaptivePlanner(const core::RlPlanner& planner,
                                 double strength)
    : planner_(&planner),
      strength_(strength),
      feedback_(planner.instance().catalog->size()) {}

util::Result<model::Plan> AdaptivePlanner::Recommend(
    model::ItemId start_item) const {
  if (!planner_->trained()) {
    return util::Status::FailedPrecondition(
        "AdaptivePlanner requires a trained RlPlanner");
  }
  const model::TaskInstance& instance = planner_->instance();
  if (start_item < 0 ||
      static_cast<std::size_t>(start_item) >= instance.catalog->size()) {
    return util::Status::OutOfRange("start item out of range");
  }

  // Shift a copy of the learned table by the affinities. The shift scales
  // with the table's own magnitude so strong feedback can out-rank any
  // learned tie-break, while neutral feedback (affinity 0.5) is a no-op.
  mdp::QTable shifted = planner_->q_table();
  const double scale = strength_ * (shifted.MaxAbsValue() + 1.0);
  const std::size_t n = shifted.num_items();
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t a = 0; a < n; ++a) {
      const auto action = static_cast<model::ItemId>(a);
      const double shift = scale * (feedback_.Affinity(action) - 0.5);
      if (shift != 0.0) {
        shifted.Set(static_cast<model::ItemId>(s), action,
                    shifted.Get(static_cast<model::ItemId>(s), action) +
                        shift);
      }
    }
  }

  rl::RecommendConfig config;
  config.start_item = start_item;
  config.mask_type_overflow = planner_->config().sarsa.mask_type_overflow;
  config.gamma = planner_->config().sarsa.gamma;
  model::Plan adapted = rl::RecommendPlan(shifted, instance,
                                          planner_->reward_function(), config);
  if (core::ValidatePlan(instance, adapted).valid) return adapted;

  // Personalize only as far as the hard constraints allow: re-plan from the
  // *base* policy with strongly-disliked items hard-excluded, and if even
  // that violates a constraint, fall back to the unpersonalized plan.
  rl::RecommendConfig exclusion_config = config;
  for (std::size_t a = 0; a < n; ++a) {
    const auto item = static_cast<model::ItemId>(a);
    if (feedback_.Affinity(item) < 0.35) {
      exclusion_config.excluded.push_back(item);
    }
  }
  model::Plan repaired = rl::RecommendPlan(
      planner_->q_table(), instance, planner_->reward_function(),
      exclusion_config);
  if (core::ValidatePlan(instance, repaired).valid) return repaired;
  return rl::RecommendPlan(planner_->q_table(), instance,
                           planner_->reward_function(), config);
}

util::Result<model::Plan> AdaptivePlanner::RunLoop(
    model::ItemId start_item, int max_iterations,
    const std::function<double(model::ItemId)>& rate) {
  util::Result<model::Plan> current = Recommend(start_item);
  if (!current.ok()) return current;
  for (int iteration = 0; iteration < max_iterations; ++iteration) {
    for (model::ItemId item : current.value().items()) {
      const double rating = rate(item);
      RLP_RETURN_IF_ERROR(feedback_.AddRating(item, rating));
    }
    util::Result<model::Plan> next = Recommend(start_item);
    if (!next.ok()) return next;
    if (next.value() == current.value()) break;  // converged
    current = std::move(next);
  }
  return current;
}

}  // namespace rlplanner::adaptive

#ifndef RLPLANNER_FLEET_FLEET_H_
#define RLPLANNER_FLEET_FLEET_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "adaptive/feedback.h"
#include "fleet/gate.h"
#include "mdp/q_table.h"
#include "mdp/reward.h"
#include "model/constraints.h"
#include "obs/registry.h"
#include "rl/sarsa_config.h"
#include "serve/policy_registry.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace rlplanner::obs {
class TraceCollector;
}  // namespace rlplanner::obs

namespace rlplanner::fleet {

/// One managed policy: a registry slot plus everything needed to keep it
/// fresh — the training recipe, the tenant segment it serves, and how stale
/// it may get before the orchestrator retrains it.
struct PolicySpec {
  /// Registry slot the policy publishes to. Unique within a fleet.
  std::string slot = "default";
  /// Tenant/segment label carried into every fleet_* metric and span.
  std::string segment_id = "default";
  /// Must match the registry's catalog fingerprint; AddSpec rejects
  /// mismatches so a spec can never train against one catalog and publish
  /// into a registry indexing another.
  std::uint64_t catalog_fingerprint = 0;
  /// Training recipe for every retrain of this policy.
  rl::SarsaConfig sarsa;
  /// Base seed; retrain generation g trains with a seed derived from
  /// (seed, g), so successive retrains explore different episode streams
  /// while the whole sequence stays reproducible.
  std::uint64_t seed = 17;
  /// Freshness deadline in ticks: the policy is due for retraining once
  /// `tick - last_published_tick >= freshness_ticks` (and immediately when
  /// it has never been published). Staleness relative to this deadline is
  /// the retrain priority.
  int freshness_ticks = 8;
  /// Strength of the adaptive::FoldFeedback warm-start shaping.
  double feedback_strength = 0.5;
  /// EMA smoothing of the spec's FeedbackModel accumulator.
  double feedback_smoothing = 0.5;
};

/// Fault-injection and policy-override seam. Every hook is optional; the
/// orchestrator behaves identically with an empty FleetHooks. Tests use
/// these to fail retrains, corrupt candidate bytes mid-publish, stall
/// canaries, and force rollbacks — without reaching into orchestrator
/// internals.
struct FleetHooks {
  /// Consulted at the start of every retrain attempt; a non-Ok status fails
  /// the job before any training happens (the orchestrator records the
  /// failure and retries with exponential backoff).
  std::function<util::Status(const PolicySpec&)> on_retrain_start;
  /// Observes — and may mutate — the serialized candidate snapshot between
  /// serialization and publication. Corrupting the bytes here exercises the
  /// publish pipeline's integrity check: the candidate is rejected by
  /// checksum validation and the registry is never touched.
  std::function<void(const PolicySpec&, std::string* bytes)>
      on_candidate_serialized;
  /// Returning true holds the canary in place past its promote deadline
  /// (stall injection); consulted once per tick while a canary is staged.
  std::function<bool(const PolicySpec&)> hold_canary;
  /// Overrides the end-of-hold canary verdict: true promotes, false rolls
  /// back. Unset (or returning nullopt) promotes — the candidate already
  /// passed the gate, and no counter-evidence arrived during the hold.
  std::function<std::optional<bool>(const PolicySpec&)>
      override_canary_verdict;
};

struct FleetConfig {
  /// Traffic fraction (per-mille) a staged canary receives.
  std::uint32_t canary_permille = 200;
  /// Ticks a canary is held before the promote/rollback verdict.
  int canary_hold_ticks = 2;
  /// Held-out probe set size for the publication gate.
  std::size_t probe_count = 8;
  /// Seed of the deterministic probe set.
  std::uint64_t probe_seed = 1234;
  /// Gate reward band (see GateConfig::reward_band).
  double reward_band = 0.1;
  /// Failed publish attempts (retrain failure, corrupt candidate, gate
  /// rejection) per spec before the orchestrator parks it with a terminal
  /// error until the next freshness deadline.
  int max_publish_retries = 3;
  /// Backoff after the n-th consecutive failure is
  /// `backoff_base_ticks << (n - 1)` ticks.
  int backoff_base_ticks = 1;
  /// Metrics registry for fleet_* metrics (not owned; null disables).
  obs::Registry* metrics = nullptr;
  /// Trace collector for fleet spans (not owned; null disables).
  obs::TraceCollector* trace = nullptr;
  FleetHooks hooks;
};

/// Lifecycle phase of one managed policy (see docs/fleet.md for the state
/// machine).
enum class PolicyPhase {
  /// Published and fresh (or awaiting its first retrain).
  kIdle = 0,
  /// Last publish attempt failed; waiting out the backoff window.
  kBackoff = 1,
  /// A gated candidate is staged as the slot's canary, held for
  /// canary_hold_ticks before the promote/rollback verdict.
  kCanary = 2,
};

const char* PolicyPhaseName(PolicyPhase phase);

/// Point-in-time status of one managed policy (the `fleet status` payload).
struct PolicyStatus {
  std::string slot;
  std::string segment_id;
  PolicyPhase phase = PolicyPhase::kIdle;
  /// Retrain attempts started so far (the seed-derivation generation).
  std::uint64_t generation = 0;
  /// Tick of the most recent successful publication; -1 = never.
  int last_published_tick = -1;
  /// Ticks since the last publication (current tick when never published).
  int staleness = 0;
  std::uint64_t incumbent_version = 0;
  std::uint64_t canary_version = 0;
  std::uint32_t canary_permille = 0;
  std::uint64_t publishes = 0;
  std::uint64_t promotes = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t gate_failures = 0;
  std::uint64_t retrain_failures = 0;
  std::uint64_t candidate_rejections = 0;
  std::uint64_t feedback_events = 0;
  int consecutive_failures = 0;
  /// Most recent failure description; empty when the last attempt
  /// succeeded.
  std::string last_error;
};

/// Multi-tenant continuous-training orchestrator: owns a set of PolicySpecs,
/// retrains the stalest ones each tick on a shared util::ThreadPool, folds
/// accumulated end-user feedback into every retrain (the paper's Section VI
/// loop), and publishes through a canary pipeline on serve::PolicyRegistry:
///
///   candidate snapshot -> integrity check (serialize/deserialize round
///   trip with checksum) -> automated gate (zero hard-constraint violations
///   on a held-out probe set, reward within a band of the incumbent) ->
///   canary install at a configured traffic fraction -> hold -> promote,
///   or one-call rollback.
///
/// Serving is never blocked: the registry's canary router is lock-free, so
/// requests keep resolving policies while the orchestrator republishes
/// underneath them.
///
/// Determinism contract: a fleet constructed with the same specs, ticked
/// the same number of times, with the same feedback events enqueued between
/// the same ticks, publishes bit-identical snapshots (pinned by test).
/// Everything stochastic derives from (spec.seed, generation) or the probe
/// seed; retrains are scheduled in a deterministic priority order
/// (staleness descending, slot name ascending) and published serially in
/// that order.
///
/// Threading: Tick/RunTicks must be called from one thread at a time (the
/// orchestrator driver); EnqueueFeedback and Statuses/StatusJson are safe
/// from any thread concurrently with ticking.
class FleetOrchestrator {
 public:
  /// Observes every successful publication (direct install or canary
  /// stage) with the exact serialized snapshot bytes that were published —
  /// the determinism-pin and audit seam.
  using PublishObserver = std::function<void(
      const PolicySpec& spec, std::uint64_t version, const std::string& bytes)>;

  /// `instance`, `registry` and `pool` must outlive the orchestrator.
  /// The held-out probe set is derived from (instance, config) once, here.
  FleetOrchestrator(const model::TaskInstance& instance,
                    const mdp::RewardWeights& weights,
                    serve::PolicyRegistry& registry, util::ThreadPool& pool,
                    FleetConfig config);

  FleetOrchestrator(const FleetOrchestrator&) = delete;
  FleetOrchestrator& operator=(const FleetOrchestrator&) = delete;

  /// Out of line: states_ holds unique_ptrs to the private SpecState, which
  /// is complete only in fleet.cc.
  ~FleetOrchestrator();

  /// Registers a policy under the fleet. InvalidArgument on a duplicate
  /// slot or an empty slot name; FailedPrecondition when the spec's catalog
  /// fingerprint does not match the registry's.
  util::Status AddSpec(PolicySpec spec);

  /// Queues one feedback event for `slot`'s segment; folded into the
  /// spec's FeedbackModel at the start of the next tick (FIFO), then into
  /// every subsequent retrain's warm start. OutOfRange for an unknown slot.
  /// Safe from any thread.
  util::Status EnqueueFeedback(const std::string& slot,
                               adaptive::FeedbackEvent event);

  /// Warm-starts `slot` from a policy trained on a different catalog:
  /// `source_q` is mapped into this fleet's catalog via topic-space
  /// transfer (rl::PolicyTransfer::MapAcrossCatalogs) and used as the base
  /// of the slot's next retrain instead of the incumbent. OutOfRange for an
  /// unknown slot.
  util::Status AdoptExternalWarmStart(const std::string& slot,
                                      const mdp::QTable& source_q,
                                      const model::Catalog& source_catalog);

  /// Advances the fleet one scheduling step: drains the feedback queue,
  /// retrains every due policy (staleness-priority order, parallel across
  /// specs on the pool), runs each candidate through the publish pipeline,
  /// and advances staged canaries toward their verdict.
  void Tick();

  /// Convenience driver: `n` consecutive Ticks.
  void RunTicks(int n);

  /// Current tick counter (number of completed Ticks).
  int tick() const;

  /// Per-policy statuses, sorted by slot name.
  std::vector<PolicyStatus> Statuses() const;

  /// The `fleet status` JSON document:
  /// {"tick": N, "policies": [{...}, ...]} with policies sorted by slot.
  std::string StatusJson() const;

  /// Compact rollup for /debug/statusz: tick, policy count, per-phase
  /// counts, and fleet-wide publish/promote/rollback/failure totals —
  /// the at-a-glance line; the full table stays on GET /fleet/status.
  std::string SummaryJson() const;

  void set_publish_observer(PublishObserver observer);

  const ProbeSet& probe_set() const { return probe_set_; }

 private:
  struct SpecState;
  /// Result of one retrain attempt, produced in parallel and consumed
  /// serially in priority order.
  struct RetrainResult;

  /// The due-list for this tick, sorted by descending staleness then slot.
  std::vector<SpecState*> CollectDue();
  RetrainResult Retrain(SpecState& state);
  /// Serialize -> corruption seam -> deserialize -> gate -> canary install
  /// (or direct install for a first publication). Mutates `state`'s phase
  /// and failure accounting.
  void TryPublish(SpecState& state, RetrainResult result);
  void AdvanceCanary(SpecState& state);
  void RecordFailure(SpecState& state, const std::string& error,
                     const char* kind);
  void DrainFeedback();

  obs::Counter* SegmentCounter(const char* name, const char* help,
                               const std::string& segment);
  obs::Gauge* SegmentGauge(const char* name, const char* help,
                           const std::string& segment);

  const model::TaskInstance* instance_;
  mdp::RewardWeights weights_;
  mdp::RewardFunction reward_;
  serve::PolicyRegistry* registry_;
  util::ThreadPool* pool_;
  FleetConfig config_;
  ProbeSet probe_set_;
  GateConfig gate_config_;

  /// Guards states_ and tick_ (Tick holds it end to end; status readers
  /// take it briefly between ticks).
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<SpecState>> states_;
  int tick_ = 0;
  PublishObserver publish_observer_;

  /// Feedback staging queue, separate from mutex_ so producers never block
  /// behind a training tick. `known_slots_` mirrors the registered slot
  /// names so EnqueueFeedback can validate without touching mutex_.
  mutable std::mutex feedback_mutex_;
  std::deque<std::pair<std::string, adaptive::FeedbackEvent>> feedback_queue_;
  std::unordered_set<std::string> known_slots_;
};

}  // namespace rlplanner::fleet

#endif  // RLPLANNER_FLEET_FLEET_H_

#ifndef RLPLANNER_FLEET_GATE_H_
#define RLPLANNER_FLEET_GATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mdp/q_table.h"
#include "mdp/reward.h"
#include "model/constraints.h"
#include "rl/sarsa_config.h"
#include "serve/policy_registry.h"

namespace rlplanner::fleet {

/// One gate probe: a recommendation rollout from a fixed start item. The
/// probe set plays the role of a held-out request sample — every candidate
/// is rolled out from the same starts, so gate verdicts compare policies,
/// not probe luck.
struct Probe {
  model::ItemId start_item = 0;
};

/// A deterministic held-out probe set over a task instance.
struct ProbeSet {
  std::vector<Probe> probes;

  /// `count` probes drawn from the instance's primary items (every valid
  /// training start) by seeded shuffle, cycling when `count` exceeds the
  /// primary population. Same (instance, count, seed) -> same probes, so
  /// gate verdicts are reproducible across orchestrator restarts.
  static ProbeSet Deterministic(const model::TaskInstance& instance,
                                std::size_t count, std::uint64_t seed);
};

/// Gate thresholds. The hard-constraint criterion is not configurable by
/// design: the paper's P_hard is inviolable, so the acceptable violation
/// rate on the probe set is exactly zero.
struct GateConfig {
  /// Maximum tolerated mean-score regression relative to the incumbent,
  /// as a fraction of max(|incumbent mean|, 1): the candidate passes when
  /// `candidate_mean >= incumbent_mean - reward_band * max(|incumbent_mean|, 1)`.
  /// 0 demands the candidate match or beat the incumbent; with no incumbent
  /// the reward criterion is vacuously satisfied.
  double reward_band = 0.1;
};

/// The gate's verdict plus the evidence behind it.
struct GateReport {
  bool passed = false;
  /// Human-readable verdict: "ok", or which criterion failed and by how
  /// much.
  std::string reason;
  std::size_t probes = 0;
  /// Probes whose candidate rollout violated a hard constraint. Any
  /// non-zero count fails the gate.
  std::size_t violations = 0;
  double candidate_mean_score = 0.0;
  double incumbent_mean_score = 0.0;
};

/// Rolls the candidate table out from every probe and gates publication on
/// (1) a hard-constraint violation rate of exactly zero across the probe
/// set and (2) a mean plan score within `config.reward_band` of the
/// incumbent's on the same probes. `incumbent` may be null (first
/// publication of a slot): the reward criterion then passes trivially, the
/// violation criterion still applies. A policy whose provenance pins a
/// start item (start_item >= 0) is rolled out from that entry point on
/// every probe — it only ever serves that start; random-start policies are
/// rolled out across the held-out start sample. Pure function of its
/// inputs — same candidate, incumbent and probes give the same verdict.
GateReport EvaluateGate(const model::TaskInstance& instance,
                        const mdp::RewardFunction& reward,
                        const mdp::QTable& candidate,
                        const rl::SarsaConfig& candidate_provenance,
                        const serve::ServablePolicy* incumbent,
                        const ProbeSet& probe_set, const GateConfig& config);

}  // namespace rlplanner::fleet

#endif  // RLPLANNER_FLEET_GATE_H_

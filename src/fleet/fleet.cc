#include "fleet/fleet.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <map>
#include <sstream>
#include <utility>

#include "obs/span.h"
#include "rl/sarsa.h"
#include "rl/transfer.h"
#include "serve/policy_snapshot.h"

namespace rlplanner::fleet {
namespace {

/// Minimal JSON string escaping for slot/segment names and error messages
/// (quotes, backslashes, control characters).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const char* PolicyPhaseName(PolicyPhase phase) {
  switch (phase) {
    case PolicyPhase::kIdle: return "idle";
    case PolicyPhase::kBackoff: return "backoff";
    case PolicyPhase::kCanary: return "canary";
  }
  return "unknown";
}

struct FleetOrchestrator::SpecState {
  PolicySpec spec;
  PolicyPhase phase = PolicyPhase::kIdle;
  std::uint64_t generation = 0;
  int last_published_tick = -1;
  /// Earliest tick the next retrain attempt may start (backoff gate).
  int next_attempt_tick = 0;
  /// Tick at which a staged canary is due for its verdict.
  int promote_tick = 0;
  std::uint64_t canary_version = 0;
  adaptive::FeedbackModel feedback;
  std::uint64_t feedback_events = 0;
  /// Topic-space transfer warm start; consumed by the first successful
  /// publication after adoption.
  std::optional<mdp::QTable> warm;
  int consecutive_failures = 0;
  std::string last_error;
  std::uint64_t publishes = 0;
  std::uint64_t promotes = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t gate_failures = 0;
  std::uint64_t retrain_failures = 0;
  std::uint64_t candidate_rejections = 0;

  SpecState(PolicySpec s, std::size_t num_items)
      : spec(std::move(s)),
        feedback(num_items, spec.feedback_smoothing) {}
};

struct FleetOrchestrator::RetrainResult {
  bool ok = false;
  std::string error;
  mdp::QTable table{0};
  std::uint64_t derived_seed = 0;
};

FleetOrchestrator::FleetOrchestrator(const model::TaskInstance& instance,
                                     const mdp::RewardWeights& weights,
                                     serve::PolicyRegistry& registry,
                                     util::ThreadPool& pool,
                                     FleetConfig config)
    : instance_(&instance),
      weights_(weights),
      reward_(*instance_, weights_),
      registry_(&registry),
      pool_(&pool),
      config_(std::move(config)),
      probe_set_(ProbeSet::Deterministic(instance, config_.probe_count,
                                         config_.probe_seed)) {
  gate_config_.reward_band = config_.reward_band;
}

FleetOrchestrator::~FleetOrchestrator() = default;

util::Status FleetOrchestrator::AddSpec(PolicySpec spec) {
  if (spec.slot.empty()) {
    return util::Status::InvalidArgument("policy spec needs a slot name");
  }
  if (spec.catalog_fingerprint != registry_->catalog_fingerprint()) {
    std::ostringstream msg;
    msg << "spec '" << spec.slot << "' carries catalog fingerprint "
        << spec.catalog_fingerprint << " but the registry serves "
        << registry_->catalog_fingerprint()
        << "; a policy trained on a different catalog cannot be published "
           "here";
    return util::Status::FailedPrecondition(msg.str());
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& state : states_) {
    if (state->spec.slot == spec.slot) {
      return util::Status::InvalidArgument("duplicate fleet slot '" +
                                           spec.slot + "'");
    }
  }
  const std::string slot = spec.slot;
  states_.push_back(std::make_unique<SpecState>(std::move(spec),
                                                instance_->catalog->size()));
  {
    std::lock_guard<std::mutex> feedback_lock(feedback_mutex_);
    known_slots_.insert(slot);
  }
  return util::Status::Ok();
}

util::Status FleetOrchestrator::EnqueueFeedback(const std::string& slot,
                                                adaptive::FeedbackEvent event) {
  std::lock_guard<std::mutex> lock(feedback_mutex_);
  if (known_slots_.find(slot) == known_slots_.end()) {
    return util::Status::OutOfRange("unknown fleet slot '" + slot + "'");
  }
  feedback_queue_.emplace_back(slot, std::move(event));
  return util::Status::Ok();
}

util::Status FleetOrchestrator::AdoptExternalWarmStart(
    const std::string& slot, const mdp::QTable& source_q,
    const model::Catalog& source_catalog) {
  mdp::QTable mapped = rl::PolicyTransfer::MapAcrossCatalogs(
      source_q, source_catalog, *instance_->catalog);
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& state : states_) {
    if (state->spec.slot == slot) {
      state->warm = std::move(mapped);
      return util::Status::Ok();
    }
  }
  return util::Status::OutOfRange("unknown fleet slot '" + slot + "'");
}

void FleetOrchestrator::DrainFeedback() {
  std::deque<std::pair<std::string, adaptive::FeedbackEvent>> batch;
  {
    std::lock_guard<std::mutex> lock(feedback_mutex_);
    batch.swap(feedback_queue_);
  }
  for (auto& [slot, event] : batch) {
    for (const auto& state : states_) {
      if (state->spec.slot != slot) continue;
      if (state->feedback.Apply(event).ok()) ++state->feedback_events;
      break;
    }
  }
}

std::vector<FleetOrchestrator::SpecState*> FleetOrchestrator::CollectDue() {
  std::vector<SpecState*> due;
  for (const auto& state : states_) {
    if (state->phase == PolicyPhase::kCanary) continue;
    if (tick_ < state->next_attempt_tick) continue;
    const bool never_published = state->last_published_tick < 0;
    const bool stale =
        never_published ||
        tick_ - state->last_published_tick >= state->spec.freshness_ticks;
    if (state->phase == PolicyPhase::kBackoff || stale) {
      due.push_back(state.get());
    }
  }
  // Priority = how far past the freshness deadline the policy is; a policy
  // that has never been published outranks everything. Slot-name tie-break
  // keeps the schedule (and therefore the publish order) deterministic.
  auto overdue = [this](const SpecState* s) {
    if (s->last_published_tick < 0) return std::numeric_limits<int>::max();
    return tick_ - s->last_published_tick - s->spec.freshness_ticks;
  };
  std::sort(due.begin(), due.end(),
            [&](const SpecState* a, const SpecState* b) {
              const int oa = overdue(a);
              const int ob = overdue(b);
              if (oa != ob) return oa > ob;
              return a->spec.slot < b->spec.slot;
            });
  return due;
}

FleetOrchestrator::RetrainResult FleetOrchestrator::Retrain(SpecState& state) {
  RetrainResult result;
  // Each generation trains with its own derived seed, so a retry after a
  // failed gate explores a different episode stream instead of reproducing
  // the rejected candidate — while the whole (seed, generation) sequence
  // stays reproducible.
  result.derived_seed =
      state.spec.seed + 0x9e3779b97f4a7c15ull * state.generation;
  ++state.generation;
  obs::ScopedSpan span(config_.metrics, "fleet_retrain", config_.trace);
  span.AddArg("slot", state.spec.slot);
  span.AddArg("generation", state.generation);
  if (config_.hooks.on_retrain_start) {
    const util::Status status = config_.hooks.on_retrain_start(state.spec);
    if (!status.ok()) {
      result.error = "retrain hook: " + std::string(status.message());
      span.AddArg("status", "hook_failed");
      return result;
    }
  }
  // Warm-start base: an adopted topic-space transfer wins, then the slot's
  // dense incumbent (continual update), then a cold zero table. The
  // accumulated segment feedback is folded into whichever base applies.
  mdp::QTable base(instance_->catalog->size());
  if (state.warm.has_value()) {
    base = *state.warm;
  } else {
    const std::shared_ptr<const serve::ServablePolicy> incumbent =
        registry_->Current(state.spec.slot);
    if (incumbent != nullptr && incumbent->dense.has_value()) {
      base = *incumbent->dense;
    }
  }
  mdp::QTable shaped =
      adaptive::FoldFeedback(base, state.feedback, state.spec.feedback_strength);
  rl::SarsaLearner learner(*instance_, reward_, state.spec.sarsa,
                           result.derived_seed);
  result.table = learner.LearnFrom(std::move(shaped));
  result.ok = true;
  span.AddArg("status", "ok");
  return result;
}

void FleetOrchestrator::RecordFailure(SpecState& state,
                                      const std::string& error,
                                      const char* kind) {
  ++state.consecutive_failures;
  state.last_error = error;
  if (auto* c = SegmentCounter("fleet_publish_failures_total",
                               "Failed fleet publish attempts by cause",
                               state.spec.segment_id)) {
    c->Increment();
  }
  // Exponential backoff up to max_publish_retries consecutive failures;
  // past that the spec parks until its next freshness window so a
  // persistently bad recipe cannot monopolize the training pool.
  int wait;
  if (state.consecutive_failures >= config_.max_publish_retries) {
    wait = std::max(state.spec.freshness_ticks, 1);
  } else {
    const int shift = std::min(state.consecutive_failures - 1, 6);
    wait = std::max(1, config_.backoff_base_ticks) << shift;
  }
  state.phase = PolicyPhase::kBackoff;
  state.next_attempt_tick = tick_ + wait;
  obs::ScopedSpan span(config_.metrics, "fleet_publish_failure",
                       config_.trace);
  span.AddArg("slot", state.spec.slot);
  span.AddArg("kind", kind);
}

void FleetOrchestrator::TryPublish(SpecState& state, RetrainResult result) {
  if (!result.ok) {
    ++state.retrain_failures;
    if (auto* c = SegmentCounter("fleet_retrain_failures_total",
                                 "Fleet retrain jobs that failed",
                                 state.spec.segment_id)) {
      c->Increment();
    }
    RecordFailure(state, result.error, "retrain");
    return;
  }
  if (auto* c = SegmentCounter("fleet_retrains_total",
                               "Completed fleet retrain jobs",
                               state.spec.segment_id)) {
    c->Increment();
  }
  obs::ScopedSpan span(config_.metrics, "fleet_publish", config_.trace);
  span.AddArg("slot", state.spec.slot);

  // Publish pipeline: the candidate travels as a serialized snapshot, runs
  // through the corruption seam, and must deserialize (checksum verified)
  // before the gate ever sees it — a candidate corrupted mid-publish is
  // rejected here and the registry is never touched.
  serve::PolicySnapshot snapshot;
  snapshot.catalog_fingerprint = registry_->catalog_fingerprint();
  snapshot.provenance = state.spec.sarsa;
  snapshot.seed = result.derived_seed;
  snapshot.table = std::move(result.table);
  std::string bytes = snapshot.Serialize();
  if (config_.hooks.on_candidate_serialized) {
    config_.hooks.on_candidate_serialized(state.spec, &bytes);
  }
  util::Result<serve::PolicySnapshot> parsed =
      serve::PolicySnapshot::Deserialize(bytes);
  if (!parsed.ok()) {
    ++state.candidate_rejections;
    if (auto* c = SegmentCounter(
            "fleet_candidate_rejected_total",
            "Fleet candidates rejected by snapshot integrity validation",
            state.spec.segment_id)) {
      c->Increment();
    }
    span.AddArg("decision", "integrity_rejected");
    RecordFailure(state,
                  "candidate snapshot failed integrity validation: " +
                      std::string(parsed.status().message()),
                  "integrity");
    return;
  }

  const std::shared_ptr<const serve::ServablePolicy> incumbent =
      registry_->Current(state.spec.slot);
  const GateReport gate =
      EvaluateGate(*instance_, reward_, parsed.value().table,
                   parsed.value().provenance, incumbent.get(), probe_set_,
                   gate_config_);
  if (!gate.passed) {
    ++state.gate_failures;
    if (auto* c = SegmentCounter("fleet_gate_failures_total",
                                 "Fleet candidates rejected by the gate",
                                 state.spec.segment_id)) {
      c->Increment();
    }
    span.AddArg("decision", "gate_rejected");
    RecordFailure(state, "gate: " + gate.reason, "gate");
    return;
  }

  util::Result<std::uint64_t> installed =
      incumbent == nullptr
          ? registry_->InstallSnapshot(state.spec.slot, parsed.value())
          : registry_->InstallCanarySnapshot(state.spec.slot, parsed.value(),
                                             config_.canary_permille);
  if (!installed.ok()) {
    span.AddArg("decision", "install_failed");
    RecordFailure(state,
                  "install: " + std::string(installed.status().message()),
                  "install");
    return;
  }
  ++state.publishes;
  state.consecutive_failures = 0;
  state.last_error.clear();
  state.last_published_tick = tick_;
  state.next_attempt_tick = tick_ + 1;
  state.warm.reset();  // the transfer warm start has served its purpose
  if (auto* c = SegmentCounter("fleet_publishes_total",
                               "Fleet candidates published (direct or canary)",
                               state.spec.segment_id)) {
    c->Increment();
  }
  if (incumbent == nullptr) {
    // First publication of the slot: nothing to split traffic against, the
    // gated candidate becomes the incumbent directly.
    state.phase = PolicyPhase::kIdle;
    state.canary_version = 0;
    span.AddArg("decision", "direct_install");
  } else {
    state.phase = PolicyPhase::kCanary;
    state.canary_version = installed.value();
    state.promote_tick = tick_ + std::max(0, config_.canary_hold_ticks);
    span.AddArg("decision", "canary_staged");
  }
  span.AddArg("version", installed.value());
  if (publish_observer_) {
    publish_observer_(state.spec, installed.value(), bytes);
  }
}

void FleetOrchestrator::AdvanceCanary(SpecState& state) {
  if (config_.hooks.hold_canary && config_.hooks.hold_canary(state.spec)) {
    if (auto* c = SegmentCounter("fleet_canary_held_total",
                                 "Ticks a fleet canary was held past its "
                                 "deadline by the hold hook",
                                 state.spec.segment_id)) {
      c->Increment();
    }
    return;
  }
  if (tick_ < state.promote_tick) return;
  bool promote = true;
  if (config_.hooks.override_canary_verdict) {
    const std::optional<bool> verdict =
        config_.hooks.override_canary_verdict(state.spec);
    if (verdict.has_value()) promote = *verdict;
  }
  obs::ScopedSpan span(config_.metrics, "fleet_canary_verdict",
                       config_.trace);
  span.AddArg("slot", state.spec.slot);
  if (promote) {
    const util::Status status = registry_->PromoteCanary(state.spec.slot);
    span.AddArg("decision", status.ok() ? "promoted" : "promote_failed");
    if (status.ok()) {
      ++state.promotes;
      if (auto* c = SegmentCounter("fleet_promotes_total",
                                   "Fleet canaries promoted to incumbent",
                                   state.spec.segment_id)) {
        c->Increment();
      }
    } else {
      state.last_error = "promote: " + std::string(status.message());
    }
  } else {
    const util::Status status = registry_->Rollback(state.spec.slot);
    span.AddArg("decision", status.ok() ? "rolled_back" : "rollback_failed");
    if (status.ok()) {
      ++state.rollbacks;
      if (auto* c = SegmentCounter("fleet_rollbacks_total",
                                   "Fleet canaries rolled back",
                                   state.spec.segment_id)) {
        c->Increment();
      }
    } else {
      state.last_error = "rollback: " + std::string(status.message());
    }
  }
  state.phase = PolicyPhase::kIdle;
  state.canary_version = 0;
}

void FleetOrchestrator::Tick() {
  std::lock_guard<std::mutex> lock(mutex_);
  obs::ScopedSpan tick_span(config_.metrics, "fleet_tick", config_.trace);
  tick_span.AddArg("tick", static_cast<std::uint64_t>(tick_));
  DrainFeedback();

  const std::vector<SpecState*> due = CollectDue();
  tick_span.AddArg("due", static_cast<std::uint64_t>(due.size()));
  // Retrains run in parallel across specs (each writes only its own result
  // slot); publication happens serially afterwards, in priority order, so
  // registry versions — and therefore the published snapshot sequence —
  // are deterministic.
  std::vector<RetrainResult> results(due.size());
  if (!due.empty()) {
    pool_->ParallelFor(due.size(), [&](std::size_t i) {
      results[i] = Retrain(*due[i]);
    });
  }
  for (std::size_t i = 0; i < due.size(); ++i) {
    TryPublish(*due[i], std::move(results[i]));
  }
  for (const auto& state : states_) {
    if (state->phase == PolicyPhase::kCanary) AdvanceCanary(*state);
  }
  for (const auto& state : states_) {
    const int staleness = state->last_published_tick < 0
                              ? tick_
                              : tick_ - state->last_published_tick;
    if (auto* g = SegmentGauge("fleet_staleness_ticks",
                               "Ticks since the segment's last publication",
                               state->spec.segment_id)) {
      g->Set(static_cast<double>(staleness));
    }
  }
  if (config_.metrics != nullptr) {
    if (auto ticks = config_.metrics->GetCounter(
            "fleet_ticks_total", "Fleet orchestrator scheduling ticks");
        ticks.ok()) {
      ticks.value()->Increment();
    }
  }
  ++tick_;
}

void FleetOrchestrator::RunTicks(int n) {
  for (int i = 0; i < n; ++i) Tick();
}

int FleetOrchestrator::tick() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tick_;
}

std::vector<PolicyStatus> FleetOrchestrator::Statuses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<PolicyStatus> statuses;
  statuses.reserve(states_.size());
  for (const auto& state : states_) {
    PolicyStatus status;
    status.slot = state->spec.slot;
    status.segment_id = state->spec.segment_id;
    status.phase = state->phase;
    status.generation = state->generation;
    status.last_published_tick = state->last_published_tick;
    status.staleness = state->last_published_tick < 0
                           ? tick_
                           : tick_ - state->last_published_tick;
    if (const std::optional<serve::SlotInfo> info =
            registry_->Info(state->spec.slot)) {
      status.incumbent_version = info->incumbent_version;
      status.canary_version = info->canary_version;
      status.canary_permille = info->canary_permille;
    }
    status.publishes = state->publishes;
    status.promotes = state->promotes;
    status.rollbacks = state->rollbacks;
    status.gate_failures = state->gate_failures;
    status.retrain_failures = state->retrain_failures;
    status.candidate_rejections = state->candidate_rejections;
    status.feedback_events = state->feedback_events;
    status.consecutive_failures = state->consecutive_failures;
    status.last_error = state->last_error;
    statuses.push_back(std::move(status));
  }
  std::sort(statuses.begin(), statuses.end(),
            [](const PolicyStatus& a, const PolicyStatus& b) {
              return a.slot < b.slot;
            });
  return statuses;
}

std::string FleetOrchestrator::StatusJson() const {
  const std::vector<PolicyStatus> statuses = Statuses();
  std::ostringstream out;
  out << "{\"tick\": " << tick() << ", \"policies\": [";
  bool first = true;
  for (const PolicyStatus& s : statuses) {
    if (!first) out << ", ";
    first = false;
    out << "{\"slot\": \"" << JsonEscape(s.slot) << "\""
        << ", \"segment\": \"" << JsonEscape(s.segment_id) << "\""
        << ", \"phase\": \"" << PolicyPhaseName(s.phase) << "\""
        << ", \"generation\": " << s.generation
        << ", \"last_published_tick\": " << s.last_published_tick
        << ", \"staleness\": " << s.staleness
        << ", \"incumbent_version\": " << s.incumbent_version
        << ", \"canary_version\": " << s.canary_version
        << ", \"canary_permille\": " << s.canary_permille
        << ", \"publishes\": " << s.publishes
        << ", \"promotes\": " << s.promotes
        << ", \"rollbacks\": " << s.rollbacks
        << ", \"gate_failures\": " << s.gate_failures
        << ", \"retrain_failures\": " << s.retrain_failures
        << ", \"candidate_rejections\": " << s.candidate_rejections
        << ", \"feedback_events\": " << s.feedback_events
        << ", \"consecutive_failures\": " << s.consecutive_failures
        << ", \"last_error\": \"" << JsonEscape(s.last_error) << "\"}";
  }
  out << "]}";
  return out.str();
}

std::string FleetOrchestrator::SummaryJson() const {
  const std::vector<PolicyStatus> statuses = Statuses();
  std::map<std::string, int> phases;
  std::uint64_t publishes = 0, promotes = 0, rollbacks = 0, gate_failures = 0;
  for (const PolicyStatus& s : statuses) {
    ++phases[PolicyPhaseName(s.phase)];
    publishes += s.publishes;
    promotes += s.promotes;
    rollbacks += s.rollbacks;
    gate_failures += s.gate_failures;
  }
  std::ostringstream out;
  out << "{\"tick\": " << tick()
      << ", \"policies\": " << statuses.size() << ", \"phases\": {";
  bool first = true;
  for (const auto& [phase, count] : phases) {
    if (!first) out << ", ";
    first = false;
    out << '"' << phase << "\": " << count;
  }
  out << "}, \"publishes\": " << publishes << ", \"promotes\": " << promotes
      << ", \"rollbacks\": " << rollbacks
      << ", \"gate_failures\": " << gate_failures << "}";
  return out.str();
}

void FleetOrchestrator::set_publish_observer(PublishObserver observer) {
  std::lock_guard<std::mutex> lock(mutex_);
  publish_observer_ = std::move(observer);
}

obs::Counter* FleetOrchestrator::SegmentCounter(const char* name,
                                                const char* help,
                                                const std::string& segment) {
  if (config_.metrics == nullptr) return nullptr;
  util::Result<obs::Counter*> counter =
      config_.metrics->GetCounter(name, help, {{"segment", segment}});
  return counter.ok() ? counter.value() : nullptr;
}

obs::Gauge* FleetOrchestrator::SegmentGauge(const char* name,
                                            const char* help,
                                            const std::string& segment) {
  if (config_.metrics == nullptr) return nullptr;
  util::Result<obs::Gauge*> gauge =
      config_.metrics->GetGauge(name, help, {{"segment", segment}});
  return gauge.ok() ? gauge.value() : nullptr;
}

}  // namespace rlplanner::fleet

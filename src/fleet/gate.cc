#include "fleet/gate.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "core/scoring.h"
#include "core/validation.h"
#include "model/item.h"
#include "rl/recommender.h"
#include "util/rng.h"

namespace rlplanner::fleet {
namespace {

/// Mean probe score and hard-violation count of one policy table.
struct ProbeOutcome {
  std::size_t violations = 0;
  double mean_score = 0.0;
};

template <typename QModel>
ProbeOutcome RunProbes(const model::TaskInstance& instance,
                       const mdp::RewardFunction& reward, const QModel& q,
                       const rl::SarsaConfig& provenance,
                       const ProbeSet& probe_set) {
  ProbeOutcome outcome;
  if (probe_set.probes.empty()) return outcome;
  double total = 0.0;
  for (const Probe& probe : probe_set.probes) {
    rl::RecommendConfig config;
    // A policy trained with a pinned start item only supports that entry
    // point (Algorithm 1's fixed s_1) — probing it from arbitrary starts
    // would gate it on rollouts it was never trained to serve. Random-start
    // policies are probed across the held-out start sample.
    config.start_item = provenance.start_item >= 0 ? provenance.start_item
                                                   : probe.start_item;
    config.gamma = provenance.gamma;
    config.mask_type_overflow = provenance.mask_type_overflow;
    const model::Plan plan = rl::RecommendPlan(q, instance, reward, config);
    if (!core::ValidatePlan(instance, plan).valid) ++outcome.violations;
    total += core::ScorePlan(instance, plan);
  }
  outcome.mean_score = total / static_cast<double>(probe_set.probes.size());
  return outcome;
}

}  // namespace

ProbeSet ProbeSet::Deterministic(const model::TaskInstance& instance,
                                 std::size_t count, std::uint64_t seed) {
  std::vector<model::ItemId> starts;
  const model::Catalog& catalog = *instance.catalog;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const auto id = static_cast<model::ItemId>(i);
    if (catalog.item(id).type == model::ItemType::kPrimary) {
      starts.push_back(id);
    }
  }
  if (starts.empty()) {
    for (std::size_t i = 0; i < catalog.size(); ++i) {
      starts.push_back(static_cast<model::ItemId>(i));
    }
  }
  util::Rng rng(seed);
  rng.Shuffle(starts);
  ProbeSet set;
  set.probes.reserve(count);
  for (std::size_t i = 0; i < count && !starts.empty(); ++i) {
    set.probes.push_back(Probe{starts[i % starts.size()]});
  }
  return set;
}

GateReport EvaluateGate(const model::TaskInstance& instance,
                        const mdp::RewardFunction& reward,
                        const mdp::QTable& candidate,
                        const rl::SarsaConfig& candidate_provenance,
                        const serve::ServablePolicy* incumbent,
                        const ProbeSet& probe_set, const GateConfig& config) {
  GateReport report;
  report.probes = probe_set.probes.size();
  if (probe_set.probes.empty()) {
    report.reason = "empty probe set: nothing to gate on";
    return report;
  }

  const ProbeOutcome cand = RunProbes(instance, reward, candidate,
                                      candidate_provenance, probe_set);
  report.violations = cand.violations;
  report.candidate_mean_score = cand.mean_score;
  if (cand.violations > 0) {
    std::ostringstream msg;
    msg << "hard-constraint violations on " << cand.violations << "/"
        << report.probes << " probes (required: 0)";
    report.reason = msg.str();
    return report;
  }

  if (incumbent != nullptr) {
    // The incumbent rolls out with its own provenance: the comparison is
    // policy vs policy, each under the rollout parameters it was trained
    // (and is served) with.
    const ProbeOutcome inc = incumbent->VisitQ([&](const auto& q) {
      return RunProbes(instance, reward, q, incumbent->provenance, probe_set);
    });
    report.incumbent_mean_score = inc.mean_score;
    const double allowed_drop =
        config.reward_band * std::max(std::abs(inc.mean_score), 1.0);
    if (cand.mean_score < inc.mean_score - allowed_drop) {
      std::ostringstream msg;
      msg << "mean probe score " << cand.mean_score
          << " regresses past the allowed band (incumbent " << inc.mean_score
          << ", band " << config.reward_band << ")";
      report.reason = msg.str();
      return report;
    }
  }

  report.passed = true;
  report.reason = "ok";
  return report;
}

}  // namespace rlplanner::fleet

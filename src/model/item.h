#ifndef RLPLANNER_MODEL_ITEM_H_
#define RLPLANNER_MODEL_ITEM_H_

#include <string>

#include "geo/latlng.h"
#include "model/prereq.h"
#include "model/topic_vector.h"

namespace rlplanner::model {

/// Whether an item is required for the task (`primary`: core course /
/// must-visit POI) or optional (`secondary`: elective / optional POI).
enum class ItemType {
  kPrimary = 0,
  kSecondary = 1,
};

/// Short display name ("primary" / "secondary").
const char* ItemTypeName(ItemType type);

/// An item `m = <type^m, cr^m, pre^m, T^m>` (Section II-A1), plus the
/// dataset-specific attributes the evaluation needs:
/// - `category` generalizes the primary/secondary split to the Univ-2
///   sub-discipline buckets (6 categories with weights w1..w6);
/// - `location`/`popularity`/`theme` support the trip domain (distance
///   threshold, popularity-based scoring, no-consecutive-same-theme gap).
struct Item {
  /// Dense id within the owning catalog.
  ItemId id = -1;
  /// Stable code such as "CS 675" or a POI slug.
  std::string code;
  /// Human-readable name ("Machine Learning", "Louvre Museum").
  std::string name;
  ItemType type = ItemType::kSecondary;
  /// Weight-category index; 0=primary, 1=secondary unless a dataset defines
  /// finer categories (Univ-2 uses 0..5).
  int category = 1;
  /// Credit hours (courses) or visit hours (POIs): `cr^m`.
  double credits = 0.0;
  /// Antecedents `pre^m`.
  PrereqExpr prereqs;
  /// Boolean topic/theme vector `T^m` over the catalog vocabulary.
  TopicVector topics;
  /// Trip domain only: POI coordinates.
  geo::LatLng location;
  /// Trip domain only: popularity on the paper's 1..5 scale (gold standard
  /// trip score is "the highest popularity score of any POI" = 5).
  double popularity = 0.0;
  /// Trip domain only: dominant theme id used by the consecutive-theme gap
  /// rule; -1 when unused.
  int primary_theme = -1;
};

}  // namespace rlplanner::model

#endif  // RLPLANNER_MODEL_ITEM_H_

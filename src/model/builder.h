#ifndef RLPLANNER_MODEL_BUILDER_H_
#define RLPLANNER_MODEL_BUILDER_H_

#include <string>
#include <vector>

#include "model/catalog.h"
#include "model/constraints.h"

namespace rlplanner::model {

/// Fluent construction of a task instance, for users assembling their own
/// catalog in code rather than loading a CSV:
///
/// ```
///   TaskBuilder builder(Domain::kCourse);
///   builder.Topics({"algorithms", "ml", "stats"})
///       .Primary("CS1", "Algorithms", {"algorithms"})
///       .Secondary("CS2", "Machine Learning", {"ml", "stats"})
///           .Requires({"CS1"})
///       .Split(1, 1)
///       .MinCredits(6)
///       .Gap(1)
///       .Template("PS");
///   auto built = builder.Build();   // Result<TaskBuilder::Built>
/// ```
///
/// `Requires`/`RequiresAny` attach to the most recently added item and may
/// reference items that are added later; codes are resolved at Build time.
class TaskBuilder {
 public:
  /// The finished product: a catalog and an instance pointing at it. Keep
  /// the struct alive (and unmoved) while the instance is in use.
  struct Built {
    Catalog catalog;
    HardConstraints hard;
    SoftConstraints soft;

    TaskInstance Instance() const {
      TaskInstance instance;
      instance.catalog = &catalog;
      instance.hard = hard;
      instance.soft = soft;
      return instance;
    }
  };

  explicit TaskBuilder(Domain domain);

  /// Declares the topic vocabulary. Must be called before adding items.
  TaskBuilder& Topics(std::vector<std::string> topics);

  /// Adds a primary item covering the given topic names.
  TaskBuilder& Primary(std::string code, std::string name,
                       std::vector<std::string> topics, double credits = 3.0);

  /// Adds a secondary item.
  TaskBuilder& Secondary(std::string code, std::string name,
                         std::vector<std::string> topics,
                         double credits = 3.0);

  /// ANDs single-item prerequisite groups onto the last added item.
  TaskBuilder& Requires(std::vector<std::string> codes);

  /// ANDs one OR-group onto the last added item.
  TaskBuilder& RequiresAny(std::vector<std::string> codes);

  /// Trip extras for the last added item.
  TaskBuilder& At(double lat, double lng);
  TaskBuilder& Popularity(double popularity);

  /// Hard constraints.
  TaskBuilder& Split(int num_primary, int num_secondary);
  TaskBuilder& MinCredits(double credits);
  TaskBuilder& Gap(int gap);
  TaskBuilder& DistanceThresholdKm(double km);
  TaskBuilder& NoConsecutiveSameTheme(bool enabled = true);

  /// Soft constraints. `Template` takes a "PSPS" string and may be called
  /// repeatedly; `IdealTopics` defaults to the full vocabulary.
  TaskBuilder& Template(std::string permutation);
  TaskBuilder& IdealTopics(std::vector<std::string> topics);

  /// Resolves codes, validates everything, and returns the built instance.
  util::Result<Built> Build() const;

 private:
  struct PendingItem {
    std::string code;
    std::string name;
    ItemType type = ItemType::kSecondary;
    std::vector<std::string> topics;
    double credits = 3.0;
    // Each group: (is_or_group, codes). AND groups are singletons.
    std::vector<std::vector<std::string>> prereq_groups;
    geo::LatLng location;
    double popularity = 0.0;
  };

  Domain domain_;
  std::vector<std::string> vocabulary_;
  std::vector<PendingItem> items_;
  HardConstraints hard_;
  std::vector<std::string> template_strings_;
  std::vector<std::string> ideal_topics_;
  std::string error_;  // first recording error, reported at Build
};

}  // namespace rlplanner::model

#endif  // RLPLANNER_MODEL_BUILDER_H_

#ifndef RLPLANNER_MODEL_INTERLEAVING_TEMPLATE_H_
#define RLPLANNER_MODEL_INTERLEAVING_TEMPLATE_H_

#include <string>
#include <string_view>
#include <vector>

#include "model/item.h"
#include "util/status.h"

namespace rlplanner::model {

/// One ideal composition `I`: a permutation of primary/secondary slots.
using TypeSequence = std::vector<ItemType>;

/// The expert-provided interleaving template `IT = {I_1, ..., I_|IT|}`
/// (Section II-A3): a set of ideal permutations of `#primary` primary and
/// `#secondary` secondary slots that a recommended plan should follow as
/// closely as possible.
class InterleavingTemplate {
 public:
  InterleavingTemplate() = default;

  /// Parses compact strings like "PPSPSS" (P=primary, S=secondary), one per
  /// element. Rejects characters outside {P, S, p, s}.
  static util::Result<InterleavingTemplate> FromStrings(
      const std::vector<std::string>& permutations);

  /// Appends a permutation.
  void Add(TypeSequence permutation);

  bool empty() const { return permutations_.empty(); }
  std::size_t size() const { return permutations_.size(); }
  const std::vector<TypeSequence>& permutations() const {
    return permutations_;
  }
  const TypeSequence& permutation(std::size_t index) const {
    return permutations_.at(index);
  }

  /// Length of permutations (0 when empty). All permutations in a valid
  /// template have equal length `#primary + #secondary`.
  std::size_t length() const {
    return permutations_.empty() ? 0 : permutations_.front().size();
  }

  /// Checks that every permutation has exactly `num_primary` primary and
  /// `num_secondary` secondary slots.
  util::Status ValidateCounts(int num_primary, int num_secondary) const;

  /// Renders a permutation as "PPSPSS".
  static std::string ToCompactString(const TypeSequence& sequence);

 private:
  std::vector<TypeSequence> permutations_;
};

}  // namespace rlplanner::model

#endif  // RLPLANNER_MODEL_INTERLEAVING_TEMPLATE_H_

#include "model/interleaving_template.h"

#include <sstream>

namespace rlplanner::model {

util::Result<InterleavingTemplate> InterleavingTemplate::FromStrings(
    const std::vector<std::string>& permutations) {
  InterleavingTemplate out;
  for (const std::string& text : permutations) {
    TypeSequence sequence;
    sequence.reserve(text.size());
    for (char c : text) {
      switch (c) {
        case 'P':
        case 'p':
          sequence.push_back(ItemType::kPrimary);
          break;
        case 'S':
        case 's':
          sequence.push_back(ItemType::kSecondary);
          break;
        default:
          return util::Status::InvalidArgument(
              std::string("invalid template character '") + c + "' in " +
              text);
      }
    }
    out.Add(std::move(sequence));
  }
  return out;
}

void InterleavingTemplate::Add(TypeSequence permutation) {
  permutations_.push_back(std::move(permutation));
}

util::Status InterleavingTemplate::ValidateCounts(int num_primary,
                                                  int num_secondary) const {
  for (std::size_t i = 0; i < permutations_.size(); ++i) {
    int primary = 0;
    int secondary = 0;
    for (ItemType type : permutations_[i]) {
      (type == ItemType::kPrimary ? primary : secondary) += 1;
    }
    if (primary != num_primary || secondary != num_secondary) {
      std::ostringstream msg;
      msg << "template permutation " << i << " has " << primary
          << " primary / " << secondary << " secondary slots, expected "
          << num_primary << " / " << num_secondary;
      return util::Status::InvalidArgument(msg.str());
    }
  }
  return util::Status::Ok();
}

std::string InterleavingTemplate::ToCompactString(
    const TypeSequence& sequence) {
  std::string out;
  out.reserve(sequence.size());
  for (ItemType type : sequence) {
    out.push_back(type == ItemType::kPrimary ? 'P' : 'S');
  }
  return out;
}

}  // namespace rlplanner::model

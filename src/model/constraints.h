#ifndef RLPLANNER_MODEL_CONSTRAINTS_H_
#define RLPLANNER_MODEL_CONSTRAINTS_H_

#include <limits>
#include <vector>

#include "model/catalog.h"
#include "model/interleaving_template.h"
#include "model/topic_vector.h"
#include "util/status.h"

namespace rlplanner::model {

/// Hard constraints `P_hard = <#cr, #primary, #secondary, gap>`
/// (Section II-A2), extended with the dataset-specific hard requirements the
/// evaluation uses:
/// - Univ-2 adds per-sub-discipline unit minima (`category_min_counts`);
/// - trips add a walking-distance threshold `d` and the "no two consecutive
///   POIs of the same theme" gap semantics (Section IV-A1).
struct HardConstraints {
  /// Minimum total credit hours (courses) or the visitation-time budget in
  /// hours (trips): `#cr` / time threshold `t`.
  double min_credits = 0.0;
  /// Required number of primary items.
  int num_primary = 0;
  /// Required number of secondary items.
  int num_secondary = 0;
  /// Minimum distance between an item and its antecedent in the sequence.
  int gap = 1;
  /// Optional per-weight-category minimum item counts (Univ-2 sub-discipline
  /// requirements). Empty = only the primary/secondary split applies.
  std::vector<int> category_min_counts;
  /// Trip-only: maximum total walking distance in km (`d`); +inf disables.
  double distance_threshold_km = std::numeric_limits<double>::infinity();
  /// Trip-only: forbid consecutive POIs sharing their primary theme.
  bool no_consecutive_same_theme = false;

  /// Plan length `H` implied by the credit requirement: the number of items
  /// needed when each contributes `credits_per_item` (courses: 30 credits /
  /// 3 per course = 10). For the primary/secondary split to be satisfiable
  /// this equals `num_primary + num_secondary`.
  int HorizonForUniformCredits(double credits_per_item) const;

  /// `num_primary + num_secondary`.
  int TotalItems() const { return num_primary + num_secondary; }

  /// Sanity checks (non-negative counts, gap >= 1, category minima
  /// consistent with the total).
  util::Status Validate() const;
};

/// Soft constraints `P_soft = <T_ideal, IT>` (Section II-A3).
struct SoftConstraints {
  /// Ideal topic/theme vector `T^ideal` the plan should cover.
  TopicVector ideal_topics;
  /// Interleaving template the plan should adhere to.
  InterleavingTemplate interleaving;
};

/// A full TPP instance: the catalog plus both constraint sets. This is what
/// planners (RL-Planner, OMEGA, EDA) consume.
struct TaskInstance {
  const Catalog* catalog = nullptr;
  HardConstraints hard;
  SoftConstraints soft;

  /// Validates cross-field consistency: catalog present, template counts
  /// match the split, ideal-vector size matches the vocabulary, enough
  /// items of each type exist in the catalog.
  util::Status Validate() const;
};

}  // namespace rlplanner::model

#endif  // RLPLANNER_MODEL_CONSTRAINTS_H_

#include "model/constraints.h"

#include <cmath>
#include <numeric>
#include <sstream>

namespace rlplanner::model {

int HardConstraints::HorizonForUniformCredits(double credits_per_item) const {
  if (credits_per_item <= 0.0) return TotalItems();
  return static_cast<int>(std::ceil(min_credits / credits_per_item));
}

util::Status HardConstraints::Validate() const {
  if (num_primary < 0 || num_secondary < 0) {
    return util::Status::InvalidArgument("negative primary/secondary count");
  }
  if (gap < 1) {
    return util::Status::InvalidArgument("gap must be >= 1");
  }
  if (min_credits < 0) {
    return util::Status::InvalidArgument("negative credit requirement");
  }
  if (!category_min_counts.empty()) {
    const int category_total = std::accumulate(category_min_counts.begin(),
                                               category_min_counts.end(), 0);
    if (category_total > TotalItems()) {
      std::ostringstream msg;
      msg << "category minima sum to " << category_total
          << " which exceeds the total item count " << TotalItems();
      return util::Status::InvalidArgument(msg.str());
    }
    for (int c : category_min_counts) {
      if (c < 0) {
        return util::Status::InvalidArgument("negative category minimum");
      }
    }
  }
  return util::Status::Ok();
}

util::Status TaskInstance::Validate() const {
  if (catalog == nullptr) {
    return util::Status::InvalidArgument("TaskInstance has no catalog");
  }
  RLP_RETURN_IF_ERROR(hard.Validate());
  RLP_RETURN_IF_ERROR(catalog->Validate());
  if (soft.ideal_topics.size() != catalog->vocabulary_size()) {
    std::ostringstream msg;
    msg << "ideal topic vector size " << soft.ideal_topics.size()
        << " != vocabulary size " << catalog->vocabulary_size();
    return util::Status::InvalidArgument(msg.str());
  }
  if (!soft.interleaving.empty()) {
    RLP_RETURN_IF_ERROR(
        soft.interleaving.ValidateCounts(hard.num_primary, hard.num_secondary));
  }
  if (catalog->CountByType(ItemType::kPrimary) < hard.num_primary) {
    return util::Status::FailedPrecondition(
        "catalog has fewer primary items than the hard constraint requires");
  }
  if (catalog->size() <
      static_cast<std::size_t>(hard.num_primary + hard.num_secondary)) {
    return util::Status::FailedPrecondition(
        "catalog smaller than the required plan length");
  }
  return util::Status::Ok();
}

}  // namespace rlplanner::model

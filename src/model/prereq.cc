#include "model/prereq.h"

#include <algorithm>

namespace rlplanner::model {

PrereqExpr PrereqExpr::All(std::vector<ItemId> items) {
  PrereqExpr expr;
  for (ItemId item : items) expr.AddGroup({item});
  return expr;
}

PrereqExpr PrereqExpr::AnyOf(std::vector<ItemId> items) {
  PrereqExpr expr;
  expr.AddGroup(std::move(items));
  return expr;
}

void PrereqExpr::AddGroup(std::vector<ItemId> group) {
  if (group.empty()) return;
  groups_.push_back(std::move(group));
}

bool PrereqExpr::SatisfiedAt(const std::vector<int>& position_of,
                             int candidate_position, int gap) const {
  for (const auto& group : groups_) {
    bool group_ok = false;
    for (ItemId member : group) {
      if (member < 0 || static_cast<std::size_t>(member) >= position_of.size()) {
        continue;
      }
      const int pos = position_of[member];
      if (pos >= 0 && candidate_position - pos >= gap) {
        group_ok = true;
        break;
      }
    }
    if (!group_ok) return false;
  }
  return true;
}

std::vector<ItemId> PrereqExpr::ReferencedItems() const {
  std::vector<ItemId> out;
  for (const auto& group : groups_) {
    out.insert(out.end(), group.begin(), group.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string PrereqExpr::ToString() const {
  std::string out;
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    if (g != 0) out += " AND ";
    out += "(";
    for (std::size_t i = 0; i < groups_[g].size(); ++i) {
      if (i != 0) out += " OR ";
      out += std::to_string(groups_[g][i]);
    }
    out += ")";
  }
  return out;
}

}  // namespace rlplanner::model

#include "model/topic_vector.h"

namespace rlplanner::model {

std::size_t NewlyCoveredIdealTopics(const TopicVector& current,
                                    const TopicVector& item_topics,
                                    const TopicVector& ideal) {
  // Fused |item ∩ ~current ∩ ideal| popcount: one pass, no temporary.
  return item_topics.AndNotIntersectCount(current, ideal);
}

double CoverageFraction(const TopicVector& current, const TopicVector& ideal) {
  const std::size_t ideal_count = ideal.Count();
  if (ideal_count == 0) return 1.0;
  return static_cast<double>(current.IntersectCount(ideal)) /
         static_cast<double>(ideal_count);
}

double JaccardSimilarity(const TopicVector& a, const TopicVector& b) {
  const std::size_t inter = a.IntersectCount(b);
  const std::size_t uni = a.Count() + b.Count() - inter;
  if (uni == 0) return 1.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace rlplanner::model

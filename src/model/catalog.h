#ifndef RLPLANNER_MODEL_CATALOG_H_
#define RLPLANNER_MODEL_CATALOG_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "model/item.h"
#include "util/status.h"

namespace rlplanner::model {

/// Which paper domain a catalog instantiates; drives domain-specific rules
/// (trip catalogs use time/distance budgets and the consecutive-theme gap).
enum class Domain {
  kCourse = 0,
  kTrip = 1,
};

/// The item universe `I` of one dataset plus its topic vocabulary `T`.
/// Items are stored densely; `ItemId` is the index.
class Catalog {
 public:
  /// Creates an empty catalog for `domain` whose topic vectors have
  /// `vocabulary` entries.
  Catalog(Domain domain, std::vector<std::string> vocabulary);

  /// Adds `item`; its `id` is assigned (and its `topics` must match the
  /// vocabulary size). Fails when the code is duplicated.
  util::Result<ItemId> AddItem(Item item);

  Domain domain() const { return domain_; }
  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  const Item& item(ItemId id) const { return items_.at(id); }
  const std::vector<Item>& items() const { return items_; }

  /// Item with code `code`, or NotFound.
  util::Result<ItemId> FindByCode(std::string_view code) const;

  /// Topic vocabulary `T`, id order.
  const std::vector<std::string>& vocabulary() const { return vocabulary_; }
  std::size_t vocabulary_size() const { return vocabulary_.size(); }

  /// Index of `topic` in the vocabulary, or -1.
  int TopicId(std::string_view topic) const;

  /// Builds a TopicVector with 1-bits at the given topic names; unknown
  /// names produce InvalidArgument.
  util::Result<TopicVector> MakeTopicVector(
      const std::vector<std::string>& topics) const;

  /// Number of items of each type.
  int CountByType(ItemType type) const;

  /// Number of items in weight-category `category`.
  int CountByCategory(int category) const;

  /// Ids of all items of `type`.
  std::vector<ItemId> ItemsOfType(ItemType type) const;

  /// Human-readable names for the weight categories; defaults to
  /// {"primary", "secondary"}.
  const std::vector<std::string>& category_names() const {
    return category_names_;
  }
  void set_category_names(std::vector<std::string> names) {
    category_names_ = std::move(names);
  }

  /// Validates internal consistency: prereq references in range, no
  /// self-prerequisites, topic vector sizes match, categories within the
  /// declared names.
  util::Status Validate() const;

 private:
  Domain domain_;
  std::vector<std::string> vocabulary_;
  std::unordered_map<std::string, int> topic_index_;
  std::vector<Item> items_;
  std::unordered_map<std::string, ItemId> code_index_;
  std::vector<std::string> category_names_ = {"primary", "secondary"};
};

}  // namespace rlplanner::model

#endif  // RLPLANNER_MODEL_CATALOG_H_

#include "model/item.h"

namespace rlplanner::model {

const char* ItemTypeName(ItemType type) {
  switch (type) {
    case ItemType::kPrimary:
      return "primary";
    case ItemType::kSecondary:
      return "secondary";
  }
  return "unknown";
}

}  // namespace rlplanner::model

#include "model/plan.h"

#include <algorithm>

#include "geo/latlng.h"

namespace rlplanner::model {

bool Plan::Contains(ItemId item) const {
  return std::find(items_.begin(), items_.end(), item) != items_.end();
}

int Plan::PositionOf(ItemId item) const {
  for (std::size_t i = 0; i < items_.size(); ++i) {
    if (items_[i] == item) return static_cast<int>(i);
  }
  return -1;
}

std::vector<int> Plan::PositionTable(std::size_t catalog_size) const {
  std::vector<int> table(catalog_size, -1);
  for (std::size_t i = 0; i < items_.size(); ++i) {
    const ItemId id = items_[i];
    if (id >= 0 && static_cast<std::size_t>(id) < catalog_size) {
      table[id] = static_cast<int>(i);
    }
  }
  return table;
}

double Plan::TotalCredits(const Catalog& catalog) const {
  double total = 0.0;
  for (ItemId id : items_) total += catalog.item(id).credits;
  return total;
}

int Plan::CountByType(const Catalog& catalog, ItemType type) const {
  int count = 0;
  for (ItemId id : items_) {
    if (catalog.item(id).type == type) ++count;
  }
  return count;
}

int Plan::CountByCategory(const Catalog& catalog, int category) const {
  int count = 0;
  for (ItemId id : items_) {
    if (catalog.item(id).category == category) ++count;
  }
  return count;
}

TypeSequence Plan::ToTypeSequence(const Catalog& catalog) const {
  TypeSequence out;
  out.reserve(items_.size());
  for (ItemId id : items_) out.push_back(catalog.item(id).type);
  return out;
}

TopicVector Plan::CoveredTopics(const Catalog& catalog) const {
  TopicVector covered(catalog.vocabulary_size());
  for (ItemId id : items_) covered |= catalog.item(id).topics;
  return covered;
}

double Plan::TotalDistanceKm(const Catalog& catalog) const {
  double total = 0.0;
  for (std::size_t i = 1; i < items_.size(); ++i) {
    total += geo::HaversineKm(catalog.item(items_[i - 1]).location,
                              catalog.item(items_[i]).location);
  }
  return total;
}

double Plan::MeanPopularity(const Catalog& catalog) const {
  if (items_.empty()) return 0.0;
  double total = 0.0;
  for (ItemId id : items_) total += catalog.item(id).popularity;
  return total / static_cast<double>(items_.size());
}

std::string Plan::ToString(const Catalog& catalog) const {
  std::string out;
  for (std::size_t i = 0; i < items_.size(); ++i) {
    if (i != 0) out += " -> ";
    const Item& item = catalog.item(items_[i]);
    out += item.code;
    out += " : ";
    out += ItemTypeName(item.type);
  }
  return out;
}

bool operator==(const Plan& a, const Plan& b) { return a.items() == b.items(); }

}  // namespace rlplanner::model

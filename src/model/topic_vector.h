#ifndef RLPLANNER_MODEL_TOPIC_VECTOR_H_
#define RLPLANNER_MODEL_TOPIC_VECTOR_H_

#include "util/bitset.h"

namespace rlplanner::model {

/// A topic/theme vector `T^m`: Boolean vector over the dataset vocabulary.
using TopicVector = util::DynamicBitset;

/// Number of *ideal* topics newly covered when an item with topics
/// `item_topics` is added to a session whose accumulated coverage is
/// `current`: |T_ideal ∩ (T_current ∪ T_m) \ T_current| (Eq. 3's left side).
std::size_t NewlyCoveredIdealTopics(const TopicVector& current,
                                    const TopicVector& item_topics,
                                    const TopicVector& ideal);

/// Fraction of `ideal`'s set bits covered by `current`; 1.0 when `ideal` is
/// empty (vacuous coverage).
double CoverageFraction(const TopicVector& current, const TopicVector& ideal);

/// Jaccard similarity |a ∩ b| / |a ∪ b|; 1.0 when both are empty. Used by
/// topic-space policy transfer to match items across catalogs.
double JaccardSimilarity(const TopicVector& a, const TopicVector& b);

}  // namespace rlplanner::model

#endif  // RLPLANNER_MODEL_TOPIC_VECTOR_H_

#ifndef RLPLANNER_MODEL_PLAN_H_
#define RLPLANNER_MODEL_PLAN_H_

#include <string>
#include <vector>

#include "model/catalog.h"
#include "model/interleaving_template.h"

namespace rlplanner::model {

/// An ordered sequence of items — the output of every planner. Order is
/// semantic: position i is taken/visited before position i+1, and the
/// prerequisite-gap constraint is evaluated over these positions.
class Plan {
 public:
  Plan() = default;
  explicit Plan(std::vector<ItemId> items) : items_(std::move(items)) {}

  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }
  const std::vector<ItemId>& items() const { return items_; }
  ItemId at(std::size_t index) const { return items_.at(index); }

  void Append(ItemId item) { items_.push_back(item); }

  /// True when `item` appears in the plan.
  bool Contains(ItemId item) const;

  /// 0-based position of `item`, or -1.
  int PositionOf(ItemId item) const;

  /// Position lookup table over `catalog_size` ids (-1 = absent), as used by
  /// `PrereqExpr::SatisfiedAt`.
  std::vector<int> PositionTable(std::size_t catalog_size) const;

  /// Sum of `cr^m` over the plan.
  double TotalCredits(const Catalog& catalog) const;

  /// Count of items with the given type.
  int CountByType(const Catalog& catalog, ItemType type) const;

  /// Count of items in the given weight category.
  int CountByCategory(const Catalog& catalog, int category) const;

  /// The primary/secondary slot sequence of the plan — the object the
  /// interleaving similarity (Eq. 6) compares against template permutations.
  TypeSequence ToTypeSequence(const Catalog& catalog) const;

  /// Union of the items' topic vectors (the final `T^current`).
  TopicVector CoveredTopics(const Catalog& catalog) const;

  /// Total walking distance over consecutive POI locations, km (trip domain).
  double TotalDistanceKm(const Catalog& catalog) const;

  /// Mean item popularity (trip scoring); 0 for an empty plan.
  double MeanPopularity(const Catalog& catalog) const;

  /// "CS 675 : core -> CS 683 : elective -> ..." (Table V style).
  std::string ToString(const Catalog& catalog) const;

 private:
  std::vector<ItemId> items_;
};

bool operator==(const Plan& a, const Plan& b);

}  // namespace rlplanner::model

#endif  // RLPLANNER_MODEL_PLAN_H_

#include "model/builder.h"

#include "geo/latlng.h"

namespace rlplanner::model {

TaskBuilder::TaskBuilder(Domain domain) : domain_(domain) {
  hard_.gap = 1;
}

TaskBuilder& TaskBuilder::Topics(std::vector<std::string> topics) {
  if (!items_.empty() && error_.empty()) {
    error_ = "Topics() must be called before adding items";
  }
  vocabulary_ = std::move(topics);
  return *this;
}

TaskBuilder& TaskBuilder::Primary(std::string code, std::string name,
                                  std::vector<std::string> topics,
                                  double credits) {
  PendingItem item;
  item.code = std::move(code);
  item.name = std::move(name);
  item.type = ItemType::kPrimary;
  item.topics = std::move(topics);
  item.credits = credits;
  items_.push_back(std::move(item));
  return *this;
}

TaskBuilder& TaskBuilder::Secondary(std::string code, std::string name,
                                    std::vector<std::string> topics,
                                    double credits) {
  PendingItem item;
  item.code = std::move(code);
  item.name = std::move(name);
  item.type = ItemType::kSecondary;
  item.topics = std::move(topics);
  item.credits = credits;
  items_.push_back(std::move(item));
  return *this;
}

TaskBuilder& TaskBuilder::Requires(std::vector<std::string> codes) {
  if (items_.empty()) {
    if (error_.empty()) error_ = "Requires() before any item";
    return *this;
  }
  for (std::string& code : codes) {
    items_.back().prereq_groups.push_back({std::move(code)});
  }
  return *this;
}

TaskBuilder& TaskBuilder::RequiresAny(std::vector<std::string> codes) {
  if (items_.empty()) {
    if (error_.empty()) error_ = "RequiresAny() before any item";
    return *this;
  }
  if (!codes.empty()) items_.back().prereq_groups.push_back(std::move(codes));
  return *this;
}

TaskBuilder& TaskBuilder::At(double lat, double lng) {
  if (items_.empty()) {
    if (error_.empty()) error_ = "At() before any item";
    return *this;
  }
  items_.back().location = {lat, lng};
  return *this;
}

TaskBuilder& TaskBuilder::Popularity(double popularity) {
  if (items_.empty()) {
    if (error_.empty()) error_ = "Popularity() before any item";
    return *this;
  }
  items_.back().popularity = popularity;
  return *this;
}

TaskBuilder& TaskBuilder::Split(int num_primary, int num_secondary) {
  hard_.num_primary = num_primary;
  hard_.num_secondary = num_secondary;
  return *this;
}

TaskBuilder& TaskBuilder::MinCredits(double credits) {
  hard_.min_credits = credits;
  return *this;
}

TaskBuilder& TaskBuilder::Gap(int gap) {
  hard_.gap = gap;
  return *this;
}

TaskBuilder& TaskBuilder::DistanceThresholdKm(double km) {
  hard_.distance_threshold_km = km;
  return *this;
}

TaskBuilder& TaskBuilder::NoConsecutiveSameTheme(bool enabled) {
  hard_.no_consecutive_same_theme = enabled;
  return *this;
}

TaskBuilder& TaskBuilder::Template(std::string permutation) {
  template_strings_.push_back(std::move(permutation));
  return *this;
}

TaskBuilder& TaskBuilder::IdealTopics(std::vector<std::string> topics) {
  ideal_topics_ = std::move(topics);
  return *this;
}

util::Result<TaskBuilder::Built> TaskBuilder::Build() const {
  if (!error_.empty()) return util::Status::FailedPrecondition(error_);
  if (vocabulary_.empty()) {
    return util::Status::FailedPrecondition("no topic vocabulary declared");
  }

  Built built{Catalog(domain_, vocabulary_), hard_, SoftConstraints()};

  // Pass 1: add items (prereqs resolved afterwards so forward references
  // work).
  for (const PendingItem& pending : items_) {
    Item item;
    item.code = pending.code;
    item.name = pending.name;
    item.type = pending.type;
    item.category = pending.type == ItemType::kPrimary ? 0 : 1;
    item.credits = pending.credits;
    auto topics = built.catalog.MakeTopicVector(pending.topics);
    if (!topics.ok()) return topics.status();
    item.topics = std::move(topics).value();
    item.primary_theme =
        pending.topics.empty()
            ? -1
            : built.catalog.TopicId(pending.topics.front());
    item.location = pending.location;
    item.popularity = pending.popularity;
    auto added = built.catalog.AddItem(std::move(item));
    if (!added.ok()) return added.status();
  }

  // Pass 2: resolve prerequisite codes. The catalog is append-only, so
  // rebuild with the expressions attached.
  Catalog final_catalog(domain_, vocabulary_);
  for (std::size_t i = 0; i < items_.size(); ++i) {
    Item item = built.catalog.item(static_cast<ItemId>(i));
    PrereqExpr expr;
    for (const auto& group : items_[i].prereq_groups) {
      std::vector<ItemId> members;
      for (const std::string& code : group) {
        auto found = built.catalog.FindByCode(code);
        if (!found.ok()) {
          return util::Status::InvalidArgument(
              "prerequisite references unknown item: " + code);
        }
        members.push_back(found.value());
      }
      expr.AddGroup(std::move(members));
    }
    item.prereqs = std::move(expr);
    auto added = final_catalog.AddItem(std::move(item));
    if (!added.ok()) return added.status();
  }
  built.catalog = std::move(final_catalog);

  // Soft constraints.
  if (ideal_topics_.empty()) {
    TopicVector ideal(built.catalog.vocabulary_size());
    for (std::size_t t = 0; t < ideal.size(); ++t) ideal.Set(t);
    built.soft.ideal_topics = std::move(ideal);
  } else {
    auto ideal = built.catalog.MakeTopicVector(ideal_topics_);
    if (!ideal.ok()) return ideal.status();
    built.soft.ideal_topics = std::move(ideal).value();
  }
  if (!template_strings_.empty()) {
    auto templates = InterleavingTemplate::FromStrings(template_strings_);
    if (!templates.ok()) return templates.status();
    built.soft.interleaving = std::move(templates).value();
  }

  // Final cross-checks via the normal instance validation.
  {
    TaskInstance instance;
    instance.catalog = &built.catalog;
    instance.hard = built.hard;
    instance.soft = built.soft;
    RLP_RETURN_IF_ERROR(instance.Validate());
  }
  return built;
}

}  // namespace rlplanner::model

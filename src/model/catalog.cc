#include "model/catalog.h"

#include <sstream>

namespace rlplanner::model {

Catalog::Catalog(Domain domain, std::vector<std::string> vocabulary)
    : domain_(domain), vocabulary_(std::move(vocabulary)) {
  for (std::size_t i = 0; i < vocabulary_.size(); ++i) {
    topic_index_.emplace(vocabulary_[i], static_cast<int>(i));
  }
}

util::Result<ItemId> Catalog::AddItem(Item item) {
  if (code_index_.contains(item.code)) {
    return util::Status::AlreadyExists("duplicate item code: " + item.code);
  }
  if (item.topics.size() != vocabulary_.size()) {
    std::ostringstream msg;
    msg << "item " << item.code << " topic vector size " << item.topics.size()
        << " != vocabulary size " << vocabulary_.size();
    return util::Status::InvalidArgument(msg.str());
  }
  const ItemId id = static_cast<ItemId>(items_.size());
  item.id = id;
  code_index_.emplace(item.code, id);
  items_.push_back(std::move(item));
  return id;
}

util::Result<ItemId> Catalog::FindByCode(std::string_view code) const {
  auto it = code_index_.find(std::string(code));
  if (it == code_index_.end()) {
    return util::Status::NotFound("no item with code: " + std::string(code));
  }
  return it->second;
}

int Catalog::TopicId(std::string_view topic) const {
  auto it = topic_index_.find(std::string(topic));
  return it == topic_index_.end() ? -1 : it->second;
}

util::Result<TopicVector> Catalog::MakeTopicVector(
    const std::vector<std::string>& topics) const {
  TopicVector bits(vocabulary_.size());
  for (const std::string& topic : topics) {
    const int id = TopicId(topic);
    if (id < 0) {
      return util::Status::InvalidArgument("unknown topic: " + topic);
    }
    bits.Set(static_cast<std::size_t>(id));
  }
  return bits;
}

int Catalog::CountByType(ItemType type) const {
  int count = 0;
  for (const Item& item : items_) {
    if (item.type == type) ++count;
  }
  return count;
}

int Catalog::CountByCategory(int category) const {
  int count = 0;
  for (const Item& item : items_) {
    if (item.category == category) ++count;
  }
  return count;
}

std::vector<ItemId> Catalog::ItemsOfType(ItemType type) const {
  std::vector<ItemId> out;
  for (const Item& item : items_) {
    if (item.type == type) out.push_back(item.id);
  }
  return out;
}

util::Status Catalog::Validate() const {
  for (const Item& item : items_) {
    if (item.topics.size() != vocabulary_.size()) {
      return util::Status::Internal("topic vector size mismatch for " +
                                    item.code);
    }
    if (item.category < 0 ||
        static_cast<std::size_t>(item.category) >= category_names_.size()) {
      return util::Status::Internal("category out of range for " + item.code);
    }
    for (const auto& group : item.prereqs.groups()) {
      for (ItemId member : group) {
        if (member < 0 || static_cast<std::size_t>(member) >= items_.size()) {
          return util::Status::Internal("prereq id out of range for " +
                                        item.code);
        }
        if (member == item.id) {
          return util::Status::Internal("item is its own prerequisite: " +
                                        item.code);
        }
      }
    }
    if (item.credits < 0) {
      return util::Status::Internal("negative credits for " + item.code);
    }
  }
  return util::Status::Ok();
}

}  // namespace rlplanner::model

#ifndef RLPLANNER_MODEL_PREREQ_H_
#define RLPLANNER_MODEL_PREREQ_H_

#include <string>
#include <vector>

namespace rlplanner::model {

/// Identifier of an item inside its catalog (dense index).
using ItemId = int;

/// Antecedent/prerequisite expression `pre^m` in conjunctive normal form:
/// every group must be satisfied (AND), and a group is satisfied by any one
/// of its members (OR). This covers both paper forms —
/// "Linear Algebra AND Data Mining" is two singleton groups, and
/// "Data Mining OR Data Analytics" is one two-member group.
class PrereqExpr {
 public:
  PrereqExpr() = default;

  /// Expression with no requirements (always satisfied).
  static PrereqExpr None() { return PrereqExpr(); }

  /// AND of single items.
  static PrereqExpr All(std::vector<ItemId> items);

  /// OR of a single group of items.
  static PrereqExpr AnyOf(std::vector<ItemId> items);

  /// Appends an OR-group (conjoined with existing groups). Empty groups are
  /// ignored.
  void AddGroup(std::vector<ItemId> group);

  bool empty() const { return groups_.empty(); }
  const std::vector<std::vector<ItemId>>& groups() const { return groups_; }

  /// Evaluates the expression against a partial plan.
  ///
  /// `position_of[item]` is the 0-based position of each already-chosen item
  /// or -1, `candidate_position` is where the new item would be placed, and
  /// `gap` is the minimum allowed distance (the paper's `Dist(pre^m, m) >=
  /// gap`, so a group member at position j satisfies its group iff
  /// `candidate_position - j >= gap`).
  bool SatisfiedAt(const std::vector<int>& position_of, int candidate_position,
                   int gap) const;

  /// All item ids referenced anywhere in the expression (with duplicates
  /// removed, ascending).
  std::vector<ItemId> ReferencedItems() const;

  /// Debug form like "(3) AND (1 OR 2)".
  std::string ToString() const;

 private:
  std::vector<std::vector<ItemId>> groups_;
};

}  // namespace rlplanner::model

#endif  // RLPLANNER_MODEL_PREREQ_H_

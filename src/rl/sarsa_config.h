#ifndef RLPLANNER_RL_SARSA_CONFIG_H_
#define RLPLANNER_RL_SARSA_CONFIG_H_

#include <cstddef>

#include "model/item.h"

namespace rlplanner::rl {

/// How the behavior policy picks actions during learning.
enum class ExplorationMode {
  /// Algorithm 1: greedy on the immediate Eq. 2 reward, random tie-break.
  kRewardGreedy = 0,
  /// Epsilon-greedy on the current Q values (standard SARSA exploration,
  /// used in ablations).
  kEpsilonGreedyQ = 1,
};

/// The temporal-difference target used for the Q update. The paper adapts
/// on-policy SARSA (Eq. 9, "known to converge faster and with fewer
/// errors"); the off-policy and expectation variants are provided for the
/// ablation study.
enum class UpdateRule {
  /// r + gamma * Q(s', e') — Eq. 9, on-policy.
  kSarsa = 0,
  /// r + gamma * max_e Q(s', e) over admissible actions — Q-learning.
  kQLearning = 1,
  /// r + gamma * E_pi[Q(s', e)] under the epsilon-greedy behavior policy.
  kExpectedSarsa = 2,
};

/// How a single training run uses threads (see rl/parallel_sarsa.h).
enum class ParallelMode {
  /// The single-threaded SarsaLearner, unchanged.
  kSerial = 0,
  /// Sharded episode workers against a per-round snapshot of the Q-table,
  /// merged at round barriers in fixed worker order. Bit-deterministic for
  /// a given (seed, num_workers) regardless of physical thread count or
  /// scheduling; num_workers == 1 is bit-identical to kSerial.
  kDeterministic = 1,
  /// Lock-free Hogwild: all workers update one shared table of
  /// std::atomic<double> via CAS. Fastest, but update interleaving is
  /// scheduler-dependent, so results are validated statistically, not
  /// bit-exactly.
  kHogwild = 2,
};

/// In-memory layout of the learned Q(s, e) table.
enum class QRepresentation {
  /// Pick by catalog size: dense up to kSparseAutoThreshold items, sparse
  /// above it (where the O(|I|^2) dense payload stops being reasonable).
  kAuto = 0,
  /// Row-major |I| x |I| mdp::QTable — fastest per access, O(|I|^2) memory.
  kDense = 1,
  /// Open-addressing mdp::SparseQTable — memory proportional to visited
  /// (state, action) pairs; the only option at 10k-100k items. Trains
  /// bit-identical to dense under kSerial and kDeterministic (pinned by
  /// test); kHogwild requires dense (the CAS table is an atomic dense
  /// array) and is rejected by config validation.
  kSparse = 2,
};

/// Catalog size above which QRepresentation::kAuto selects sparse. At 2048
/// items the dense table is 2048^2 * 8 B = 32 MiB per table — the
/// deterministic parallel learner holds K + 2 copies, so this is roughly
/// where dense stops being free and the visited set is reliably a small
/// fraction of |I|^2.
inline constexpr std::size_t kSparseAutoThreshold = 2048;

/// Resolves `repr` to a concrete representation for a `num_items` catalog.
inline QRepresentation ResolveQRepresentation(QRepresentation repr,
                                              std::size_t num_items) {
  if (repr != QRepresentation::kAuto) return repr;
  return num_items > kSparseAutoThreshold ? QRepresentation::kSparse
                                          : QRepresentation::kDense;
}

/// Learning-phase parameters (the first block of Table III).
struct SarsaConfig {
  /// Number of episodes N.
  int num_episodes = 500;
  /// Learning rate alpha.
  double alpha = 0.75;
  /// Discount factor gamma.
  double gamma = 0.95;
  /// Behavior policy.
  ExplorationMode exploration = ExplorationMode::kRewardGreedy;
  /// Temporal-difference target (Eq. 9 by default).
  UpdateRule update_rule = UpdateRule::kSarsa;
  /// Exploration rate: probability of a uniformly random admissible action
  /// per step (applies to both behavior policies).
  double explore_epsilon = 0.1;
  /// Fixed starting item s_1; -1 picks a random primary item per episode.
  model::ItemId start_item = -1;
  /// One-step-lookahead masking of actions that make the hard split
  /// unsatisfiable (see ActionMask).
  bool mask_type_overflow = true;
  /// Policy-iteration rounds (Section III-C frames the learner as policy
  /// iteration "repeated iteratively until the policy converges"): the
  /// episode budget is split into this many rounds; after each round the
  /// greedy policy is rolled out, and if the rollout violates a hard
  /// constraint the Q-table is decayed by `restart_decay` (breaking a
  /// locked-in tie-order) and exploration temporarily widens. 1 disables
  /// the check and reproduces plain SARSA over all N episodes.
  int policy_rounds = 5;
  /// Q decay applied when a round's rollout is constraint-violating.
  double restart_decay = 0.25;
  /// Intra-run threading of the episode loop (ParallelSarsaLearner).
  ParallelMode parallel_mode = ParallelMode::kSerial;
  /// Episode workers K for the parallel modes. Under kDeterministic this is
  /// a *logical* shard count: the learned table depends on (seed, K) only,
  /// never on how many physical threads execute the shards.
  int num_workers = 1;
  /// Q-table layout; kAuto resolves by catalog size (see
  /// ResolveQRepresentation). kSparse + kHogwild is invalid.
  QRepresentation q_representation = QRepresentation::kAuto;
};

}  // namespace rlplanner::rl

#endif  // RLPLANNER_RL_SARSA_CONFIG_H_

#include "rl/action_mask.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace rlplanner::rl {

ActionMask::ActionMask(const mdp::RewardFunction& reward, int horizon,
                       bool mask_type_overflow)
    : reward_(&reward),
      horizon_(horizon),
      mask_type_overflow_(mask_type_overflow) {
  for (const model::Item& item : reward.instance().catalog->items()) {
    if (item.type == model::ItemType::kPrimary) {
      primary_ids_.push_back(item.id);
    }
  }
  primary_cost_scratch_.reserve(primary_ids_.size());
}

bool ActionMask::Allowed(const mdp::EpisodeState& state,
                         model::ItemId item) const {
  if (!reward_->IsFeasible(state, item)) return false;
  if (mask_type_overflow_ && !SplitStillSatisfiable(state, item)) return false;
  return true;
}

bool ActionMask::AnyAllowed(const mdp::EpisodeState& state) const {
  const std::size_t n = reward_->instance().catalog->size();
  for (std::size_t i = 0; i < n; ++i) {
    if (Allowed(state, static_cast<model::ItemId>(i))) return true;
  }
  return false;
}

bool ActionMask::AntecedentsStillSchedulable(const mdp::EpisodeState& state,
                                             model::ItemId candidate,
                                             int primary_needed) const {
  // Only decisive when *every* remaining primary item must enter the plan
  // (e.g. the catalog has exactly as many cores as the degree requires):
  // then each unplaced primary must still fit, antecedent gap included,
  // before the horizon. With spare primaries we cannot know which ones the
  // plan will use, so the check is skipped.
  const model::TaskInstance& instance = reward_->instance();
  // The candidate reaches this check unchosen (Allowed runs IsFeasible
  // first), so the unplaced count follows from the cached primary total.
  const bool candidate_is_primary =
      instance.catalog->item(candidate).type == model::ItemType::kPrimary;
  const int unplaced_primaries = static_cast<int>(primary_ids_.size()) -
                                 state.primary_count() -
                                 (candidate_is_primary ? 1 : 0);
  if (unplaced_primaries != primary_needed) return true;

  const int gap = instance.hard.gap;
  const int next_pos = static_cast<int>(state.Length());  // candidate here
  const int last_pos = horizon_ - 1;
  for (model::ItemId core_id : primary_ids_) {
    const model::Item& core = instance.catalog->item(core_id);
    if (state.Contains(core.id) || core.id == candidate) continue;
    int earliest = next_pos + 1;  // soonest free slot after the candidate
    for (const auto& group : core.prereqs.groups()) {
      int group_earliest = horizon_ + gap;  // infeasible until proven not
      for (model::ItemId member : group) {
        int member_pos;
        if (member == candidate) {
          member_pos = next_pos;
        } else if (state.position_of()[member] >= 0) {
          member_pos = state.position_of()[member];
        } else {
          member_pos = next_pos + 1;  // could be placed right after
        }
        group_earliest = std::min(group_earliest, member_pos + gap);
      }
      earliest = std::max(earliest, group_earliest);
    }
    if (earliest > last_pos) return false;
  }
  return true;
}

bool ActionMask::SplitStillSatisfiable(const mdp::EpisodeState& state,
                                       model::ItemId item) const {
  const model::TaskInstance& instance = reward_->instance();
  const model::Item& candidate = instance.catalog->item(item);

  int primary_needed = instance.hard.num_primary - state.primary_count();
  if (candidate.type == model::ItemType::kPrimary) primary_needed -= 1;
  primary_needed = std::max(primary_needed, 0);

  if (instance.catalog->domain() == model::Domain::kCourse) {
    // Fixed horizon: after placing the candidate, the remaining slots must
    // still fit the primaries (and category minima) we owe.
    const int slots_left =
        horizon_ - static_cast<int>(state.Length()) - 1;
    if (primary_needed > slots_left) return false;
    if (!instance.hard.category_min_counts.empty()) {
      int owed = 0;
      for (std::size_t c = 0; c < instance.hard.category_min_counts.size();
           ++c) {
        int missing =
            instance.hard.category_min_counts[c] -
            state.CategoryCount(static_cast<int>(c));
        if (static_cast<int>(c) == candidate.category) missing -= 1;
        owed += std::max(missing, 0);
      }
      if (owed > slots_left) return false;
    }
    return AntecedentsStillSchedulable(state, item, primary_needed);
  }

  // Trip domain: the horizon is a time budget, so check that enough
  // unchosen primaries are still *individually* takeable after the
  // candidate — both within the remaining time and reachable within the
  // remaining walking distance — and that the cheapest ones fit together.
  if (primary_needed == 0) return true;
  const double budget_left = instance.hard.min_credits -
                             state.total_credits() - candidate.credits;
  double distance_left = instance.hard.distance_threshold_km;
  if (std::isfinite(distance_left)) {
    distance_left -= state.total_distance_km();
    if (!state.Empty()) {
      distance_left -= reward_->DistanceKm(state.CurrentItem(), item);
    }
  }
  std::vector<double>& primary_costs = primary_cost_scratch_;
  primary_costs.clear();
  for (model::ItemId other_id : primary_ids_) {
    const model::Item& other = instance.catalog->item(other_id);
    if (other.id == item || state.Contains(other.id)) continue;
    if (other.credits > budget_left + 1e-9) continue;
    if (std::isfinite(instance.hard.distance_threshold_km) &&
        reward_->DistanceKm(item, other.id) > distance_left + 1e-9) {
      continue;
    }
    primary_costs.push_back(other.credits);
  }
  if (static_cast<int>(primary_costs.size()) < primary_needed) return false;
  std::partial_sort(primary_costs.begin(),
                    primary_costs.begin() + primary_needed,
                    primary_costs.end());
  double cheapest = 0.0;
  for (int i = 0; i < primary_needed; ++i) cheapest += primary_costs[i];
  return cheapest <= budget_left + 1e-9;
}

}  // namespace rlplanner::rl

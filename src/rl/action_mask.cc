#include "rl/action_mask.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace rlplanner::rl {

ActionMask::ActionMask(const mdp::RewardFunction& reward, int horizon,
                       bool mask_type_overflow)
    : reward_(&reward),
      horizon_(horizon),
      mask_type_overflow_(mask_type_overflow) {
  const model::TaskInstance& instance = reward.instance();
  const std::size_t n = instance.catalog->size();
  items_of_type_[0].Resize(n);
  items_of_type_[1].Resize(n);
  // Bucket items by the category the split lookahead discounts; the last
  // bucket collects every category without a minimum (including none).
  const std::size_t num_minima = instance.hard.category_min_counts.size();
  items_of_category_.assign(num_minima + 1, util::DynamicBitset(n));
  for (const model::Item& item : instance.catalog->items()) {
    if (item.type == model::ItemType::kPrimary) {
      primary_ids_.push_back(item.id);
    }
    const std::size_t bit = static_cast<std::size_t>(item.id);
    items_of_type_[item.type == model::ItemType::kPrimary ? 0 : 1].Set(bit);
    const bool has_minimum =
        item.category >= 0 &&
        static_cast<std::size_t>(item.category) < num_minima;
    items_of_category_[has_minimum ? static_cast<std::size_t>(item.category)
                                   : num_minima]
        .Set(bit);
  }
  primary_cost_scratch_.reserve(primary_ids_.size());
  group_scratch_.Resize(n);
}

bool ActionMask::Allowed(const mdp::EpisodeState& state,
                         model::ItemId item) const {
  if (!reward_->IsFeasible(state, item)) return false;
  if (mask_type_overflow_ && !SplitStillSatisfiable(state, item)) return false;
  return true;
}

void ActionMask::AllowedSet(const mdp::EpisodeState& state,
                            util::DynamicBitset* out) const {
  out->AssignComplementOf(state.chosen_items());
  const model::TaskInstance& instance = reward_->instance();

  if (instance.catalog->domain() != model::Domain::kCourse) {
    // Trip domain: every check is per-candidate (the budgets depend on the
    // leg to each candidate), so scan the unchosen set bit by bit. Iterate
    // a scratch copy so clearing bits in `out` cannot disturb the walk.
    group_scratch_ = *out;
    group_scratch_.ForEachSetBit([&](std::size_t i) {
      const model::ItemId item = static_cast<model::ItemId>(i);
      if (!reward_->IsFeasible(state, item) ||
          (mask_type_overflow_ && !SplitStillSatisfiable(state, item))) {
        out->Set(i, false);
      }
    });
    return;
  }

  // Course domain: IsFeasible is exactly "not already chosen", which the
  // complement seed enforces; the split lookahead is all that remains.
  if (!mask_type_overflow_) return;

  const int slots_left = horizon_ - static_cast<int>(state.Length()) - 1;

  // Primaries owed after picking a candidate depends only on its type, so
  // the whole type group passes or fails together.
  int primary_needed[2];
  for (int t = 0; t < 2; ++t) {
    const int needed = instance.hard.num_primary - state.primary_count() -
                       (t == 0 ? 1 : 0);
    primary_needed[t] = std::max(needed, 0);
    if (primary_needed[t] > slots_left) out->AndNotAssign(items_of_type_[t]);
  }

  // Category minima owed depends only on the candidate's category: the
  // candidate discounts its own category's missing count by one when that
  // count is still positive. The overflow bucket (categories without a
  // minimum) never earns the discount.
  const std::size_t num_minima = instance.hard.category_min_counts.size();
  if (num_minima > 0) {
    int base_owed = 0;
    for (std::size_t c = 0; c < num_minima; ++c) {
      base_owed += std::max(instance.hard.category_min_counts[c] -
                                state.CategoryCount(static_cast<int>(c)),
                            0);
    }
    for (std::size_t c = 0; c <= num_minima; ++c) {
      const bool discount =
          c < num_minima && instance.hard.category_min_counts[c] -
                                    state.CategoryCount(static_cast<int>(c)) >
                                0;
      if (base_owed - (discount ? 1 : 0) > slots_left) {
        out->AndNotAssign(items_of_category_[c]);
      }
    }
  }

  // Antecedent lookahead: only decisive when every remaining primary is
  // needed, which again depends only on the candidate's type; the per-item
  // scan runs just over the survivors of that type.
  for (int t = 0; t < 2; ++t) {
    const int unplaced = static_cast<int>(primary_ids_.size()) -
                         state.primary_count() - (t == 0 ? 1 : 0);
    if (unplaced != primary_needed[t]) continue;
    group_scratch_ = *out;
    group_scratch_ &= items_of_type_[t];
    group_scratch_.ForEachSetBit([&](std::size_t i) {
      const model::ItemId item = static_cast<model::ItemId>(i);
      if (!AntecedentsStillSchedulable(state, item, primary_needed[t])) {
        out->Set(i, false);
      }
    });
  }
}

bool ActionMask::AnyAllowed(const mdp::EpisodeState& state) const {
  const std::size_t n = reward_->instance().catalog->size();
  for (std::size_t i = 0; i < n; ++i) {
    if (Allowed(state, static_cast<model::ItemId>(i))) return true;
  }
  return false;
}

bool ActionMask::AntecedentsStillSchedulable(const mdp::EpisodeState& state,
                                             model::ItemId candidate,
                                             int primary_needed) const {
  // Only decisive when *every* remaining primary item must enter the plan
  // (e.g. the catalog has exactly as many cores as the degree requires):
  // then each unplaced primary must still fit, antecedent gap included,
  // before the horizon. With spare primaries we cannot know which ones the
  // plan will use, so the check is skipped.
  const model::TaskInstance& instance = reward_->instance();
  // The candidate reaches this check unchosen (Allowed runs IsFeasible
  // first), so the unplaced count follows from the cached primary total.
  const bool candidate_is_primary =
      instance.catalog->item(candidate).type == model::ItemType::kPrimary;
  const int unplaced_primaries = static_cast<int>(primary_ids_.size()) -
                                 state.primary_count() -
                                 (candidate_is_primary ? 1 : 0);
  if (unplaced_primaries != primary_needed) return true;

  const int gap = instance.hard.gap;
  const int next_pos = static_cast<int>(state.Length());  // candidate here
  const int last_pos = horizon_ - 1;
  for (model::ItemId core_id : primary_ids_) {
    const model::Item& core = instance.catalog->item(core_id);
    if (state.Contains(core.id) || core.id == candidate) continue;
    int earliest = next_pos + 1;  // soonest free slot after the candidate
    for (const auto& group : core.prereqs.groups()) {
      int group_earliest = horizon_ + gap;  // infeasible until proven not
      for (model::ItemId member : group) {
        int member_pos;
        if (member == candidate) {
          member_pos = next_pos;
        } else if (state.position_of()[member] >= 0) {
          member_pos = state.position_of()[member];
        } else {
          member_pos = next_pos + 1;  // could be placed right after
        }
        group_earliest = std::min(group_earliest, member_pos + gap);
      }
      earliest = std::max(earliest, group_earliest);
    }
    if (earliest > last_pos) return false;
  }
  return true;
}

bool ActionMask::SplitStillSatisfiable(const mdp::EpisodeState& state,
                                       model::ItemId item) const {
  const model::TaskInstance& instance = reward_->instance();
  const model::Item& candidate = instance.catalog->item(item);

  int primary_needed = instance.hard.num_primary - state.primary_count();
  if (candidate.type == model::ItemType::kPrimary) primary_needed -= 1;
  primary_needed = std::max(primary_needed, 0);

  if (instance.catalog->domain() == model::Domain::kCourse) {
    // Fixed horizon: after placing the candidate, the remaining slots must
    // still fit the primaries (and category minima) we owe.
    const int slots_left =
        horizon_ - static_cast<int>(state.Length()) - 1;
    if (primary_needed > slots_left) return false;
    if (!instance.hard.category_min_counts.empty()) {
      int owed = 0;
      for (std::size_t c = 0; c < instance.hard.category_min_counts.size();
           ++c) {
        int missing =
            instance.hard.category_min_counts[c] -
            state.CategoryCount(static_cast<int>(c));
        if (static_cast<int>(c) == candidate.category) missing -= 1;
        owed += std::max(missing, 0);
      }
      if (owed > slots_left) return false;
    }
    return AntecedentsStillSchedulable(state, item, primary_needed);
  }

  // Trip domain: the horizon is a time budget, so check that enough
  // unchosen primaries are still *individually* takeable after the
  // candidate — both within the remaining time and reachable within the
  // remaining walking distance — and that the cheapest ones fit together.
  if (primary_needed == 0) return true;
  const double budget_left = instance.hard.min_credits -
                             state.total_credits() - candidate.credits;
  double distance_left = instance.hard.distance_threshold_km;
  if (std::isfinite(distance_left)) {
    distance_left -= state.total_distance_km();
    if (!state.Empty()) {
      distance_left -= reward_->DistanceKm(state.CurrentItem(), item);
    }
  }
  std::vector<double>& primary_costs = primary_cost_scratch_;
  primary_costs.clear();
  for (model::ItemId other_id : primary_ids_) {
    const model::Item& other = instance.catalog->item(other_id);
    if (other.id == item || state.Contains(other.id)) continue;
    if (other.credits > budget_left + 1e-9) continue;
    if (std::isfinite(instance.hard.distance_threshold_km) &&
        reward_->DistanceKm(item, other.id) > distance_left + 1e-9) {
      continue;
    }
    primary_costs.push_back(other.credits);
  }
  if (static_cast<int>(primary_costs.size()) < primary_needed) return false;
  std::partial_sort(primary_costs.begin(),
                    primary_costs.begin() + primary_needed,
                    primary_costs.end());
  double cheapest = 0.0;
  for (int i = 0; i < primary_needed; ++i) cheapest += primary_costs[i];
  return cheapest <= budget_left + 1e-9;
}

}  // namespace rlplanner::rl

#include "rl/recommender.h"

#include "mdp/similarity.h"

namespace rlplanner::rl::recommender_internal {

util::DynamicBitset ExcludedBits(const model::TaskInstance& instance,
                                 const std::vector<model::ItemId>& excluded) {
  util::DynamicBitset bits(instance.catalog->size());
  for (model::ItemId item : excluded) {
    if (item >= 0 &&
        static_cast<std::size_t>(item) < instance.catalog->size()) {
      bits.Set(static_cast<std::size_t>(item));
    }
  }
  return bits;
}

bool BetterEntry(const BeamEntry& a, const BeamEntry& b) {
  if (a.violating_steps != b.violating_steps) {
    return a.violating_steps < b.violating_steps;
  }
  return a.cumulative_reward > b.cumulative_reward;
}

double DomainScore(const model::TaskInstance& instance,
                   const model::Plan& plan) {
  if (instance.catalog->domain() == model::Domain::kTrip) {
    return plan.MeanPopularity(*instance.catalog);
  }
  return mdp::BestSimilarity(plan.ToTypeSequence(*instance.catalog),
                             instance.soft.interleaving);
}

}  // namespace rlplanner::rl::recommender_internal

#include "rl/recommender.h"

#include <algorithm>
#include <vector>

#include "mdp/cmdp.h"
#include "mdp/episode_state.h"
#include "mdp/similarity.h"
#include "util/bitset.h"

namespace rlplanner::rl {

namespace {

// The caller's exclusion list as a bitset, for word-level removal from the
// admissible set (out-of-range ids are ignored, as before).
util::DynamicBitset ExcludedBits(const model::TaskInstance& instance,
                                 const std::vector<model::ItemId>& excluded) {
  util::DynamicBitset bits(instance.catalog->size());
  for (model::ItemId item : excluded) {
    if (item >= 0 &&
        static_cast<std::size_t>(item) < instance.catalog->size()) {
      bits.Set(static_cast<std::size_t>(item));
    }
  }
  return bits;
}

}  // namespace

model::Plan RecommendPlan(const mdp::QTable& q,
                          const model::TaskInstance& instance,
                          const mdp::RewardFunction& reward,
                          const RecommendConfig& config) {
  const int horizon =
      instance.catalog->domain() == model::Domain::kTrip
          ? static_cast<int>(instance.catalog->size())
          : instance.hard.TotalItems();
  const ActionMask mask(reward, horizon, config.mask_type_overflow);

  const util::DynamicBitset excluded = ExcludedBits(instance, config.excluded);

  mdp::EpisodeState state(instance);
  state.Add(config.start_item);
  util::DynamicBitset allowed(instance.catalog->size());
  while (static_cast<int>(state.Length()) < horizon) {
    const model::ItemId current = state.CurrentItem();
    // Select lexicographically by (theta, immediate reward, Q):
    // 1. theta first — the Q state is only the last item, so Q(s, a) of an
    //    action that violates a constraint *here* can still carry a high
    //    future value learned at other positions; Theorem 1's guarantee
    //    needs constraint-admissible actions to win outright;
    // 2. the immediate Eq. 2 reward next — it encodes the template-
    //    following type choice exactly as Algorithm 1's argmax-R behavior
    //    policy does;
    // 3. Q last, to order the *exact reward ties*: Eq. 2 depends on an item
    //    only through its type, so all admissible same-type items tie, and
    //    the learned Q resolves which item fills the slot (e.g. the
    //    antecedent elective a later core depends on). This is precisely
    //    what separates RL-Planner from the EDA baseline, whose tie-break
    //    is a coin flip.
    model::ItemId next = -1;
    int best_theta = -1;
    double best_q = 0.0;
    double best_reward = 0.0;
    // One word-level mask scan per step; candidates stream out in ascending
    // id order, preserving the historical tie-break exactly.
    mask.AllowedSet(state, &allowed);
    allowed.AndNotAssign(excluded);
    allowed.ForEachSetBit([&](std::size_t i) {
      const auto item = static_cast<model::ItemId>(i);
      const int theta = reward.Theta(state, item);
      const double q_value = q.Get(current, item);
      const double item_reward = reward.Reward(state, item);
      const bool better =
          next < 0 || theta > best_theta ||
          (theta == best_theta &&
           (item_reward > best_reward + 1e-9 ||
            (item_reward >= best_reward - 1e-9 && q_value > best_q)));
      if (better) {
        next = item;
        best_theta = theta;
        best_q = q_value;
        best_reward = item_reward;
      }
    });
    if (next < 0) break;
    state.Add(next);
  }
  return state.ToPlan();
}

namespace {

// A partial plan in the beam with its pruning metrics.
struct BeamEntry {
  mdp::EpisodeState state;
  int violating_steps = 0;     // actions taken with theta = 0
  double cumulative_reward = 0.0;
  bool done = false;
};

// Candidate expansion of one beam entry.
struct Expansion {
  model::ItemId item = -1;
  int theta = 0;
  double reward = 0.0;
  double q_value = 0.0;
};

bool BetterEntry(const BeamEntry& a, const BeamEntry& b) {
  if (a.violating_steps != b.violating_steps) {
    return a.violating_steps < b.violating_steps;
  }
  return a.cumulative_reward > b.cumulative_reward;
}

// Final ranking: hard-constraint satisfaction first, then the domain score
// (best template similarity for courses, mean popularity for trips).
double DomainScore(const model::TaskInstance& instance,
                   const model::Plan& plan) {
  if (instance.catalog->domain() == model::Domain::kTrip) {
    return plan.MeanPopularity(*instance.catalog);
  }
  return mdp::BestSimilarity(plan.ToTypeSequence(*instance.catalog),
                             instance.soft.interleaving);
}

}  // namespace

model::Plan RecommendPlanBeam(const mdp::QTable& q,
                              const model::TaskInstance& instance,
                              const mdp::RewardFunction& reward,
                              const RecommendConfig& config,
                              const BeamConfig& beam) {
  const int horizon =
      instance.catalog->domain() == model::Domain::kTrip
          ? static_cast<int>(instance.catalog->size())
          : instance.hard.TotalItems();
  const ActionMask mask(reward, horizon, config.mask_type_overflow);
  const util::DynamicBitset excluded = ExcludedBits(instance, config.excluded);
  util::DynamicBitset allowed(instance.catalog->size());

  std::vector<BeamEntry> entries;
  {
    BeamEntry root{mdp::EpisodeState(instance), 0, 0.0, false};
    root.state.Add(config.start_item);
    entries.push_back(std::move(root));
  }

  const int width = std::max(1, beam.width);
  const int expansion = std::max(1, beam.expansion);

  bool all_done = false;
  while (!all_done) {
    std::vector<BeamEntry> next_entries;
    all_done = true;
    for (BeamEntry& entry : entries) {
      if (entry.done ||
          static_cast<int>(entry.state.Length()) >= horizon) {
        entry.done = true;
        next_entries.push_back(std::move(entry));
        continue;
      }
      // Rank admissible successors by (theta, reward, Q), streaming them
      // from one word-level mask scan.
      std::vector<Expansion> candidates;
      const model::ItemId current = entry.state.CurrentItem();
      mask.AllowedSet(entry.state, &allowed);
      allowed.AndNotAssign(excluded);
      allowed.ForEachSetBit([&](std::size_t i) {
        const auto item = static_cast<model::ItemId>(i);
        candidates.push_back({item, reward.Theta(entry.state, item),
                              reward.Reward(entry.state, item),
                              q.Get(current, item)});
      });
      if (candidates.empty()) {
        entry.done = true;
        next_entries.push_back(std::move(entry));
        continue;
      }
      all_done = false;
      std::sort(candidates.begin(), candidates.end(),
                [](const Expansion& a, const Expansion& b) {
                  if (a.theta != b.theta) return a.theta > b.theta;
                  if (std::abs(a.reward - b.reward) > 1e-9) {
                    return a.reward > b.reward;
                  }
                  if (a.q_value != b.q_value) return a.q_value > b.q_value;
                  return a.item < b.item;
                });
      const int take =
          std::min<int>(expansion, static_cast<int>(candidates.size()));
      for (int c = 0; c < take; ++c) {
        BeamEntry successor = entry;  // copy the partial plan
        successor.state.Add(candidates[c].item);
        successor.violating_steps += candidates[c].theta == 0 ? 1 : 0;
        successor.cumulative_reward += candidates[c].reward;
        next_entries.push_back(std::move(successor));
      }
    }
    std::sort(next_entries.begin(), next_entries.end(), BetterEntry);
    if (static_cast<int>(next_entries.size()) > width) {
      // erase instead of resize: BeamEntry is not default-constructible.
      next_entries.erase(next_entries.begin() + width, next_entries.end());
    }
    entries = std::move(next_entries);
  }

  // Pick the completed plan with the best (valid, domain score).
  const mdp::CmdpSpec spec = mdp::CmdpSpec::FromInstance(instance);
  model::Plan best;
  bool best_valid = false;
  double best_score = -1.0;
  for (const BeamEntry& entry : entries) {
    const model::Plan plan = entry.state.ToPlan();
    const bool valid = spec.Satisfied(plan);
    const double score = DomainScore(instance, plan);
    if (best.empty() || (valid && !best_valid) ||
        (valid == best_valid && score > best_score)) {
      best = plan;
      best_valid = valid;
      best_score = score;
    }
  }
  return best;
}

}  // namespace rlplanner::rl

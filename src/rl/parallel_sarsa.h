#ifndef RLPLANNER_RL_PARALLEL_SARSA_H_
#define RLPLANNER_RL_PARALLEL_SARSA_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mdp/q_table.h"
#include "mdp/reward.h"
#include "mdp/sparse_q_table.h"
#include "obs/training_metrics.h"
#include "rl/sarsa.h"
#include "rl/sarsa_config.h"
#include "util/thread_pool.h"

namespace rlplanner::obs {
class TraceCollector;
}  // namespace rlplanner::obs

namespace rlplanner::rl {

/// A |I| x |I| action-value table of std::atomic<double> for the Hogwild
/// training mode: every worker reads and CASes the *shared* table directly,
/// with relaxed ordering throughout (the classic Hogwild! recipe — sparse,
/// unsynchronized updates whose collisions are rare enough to leave the
/// learned policy intact). Satisfies EpisodeRunner's QModel interface.
class AtomicQTable {
 public:
  explicit AtomicQTable(std::size_t num_items)
      : num_items_(num_items),
        values_(std::make_unique<std::atomic<double>[]>(num_items *
                                                        num_items)) {
    for (std::size_t i = 0; i < num_items * num_items; ++i) {
      values_[i].store(0.0, std::memory_order_relaxed);
    }
  }

  std::size_t num_items() const { return num_items_; }

  double Get(model::ItemId state, model::ItemId action) const {
    return values_[Flat(state, action)].load(std::memory_order_relaxed);
  }

  void Set(model::ItemId state, model::ItemId action, double value) {
    values_[Flat(state, action)].store(value, std::memory_order_relaxed);
  }

  /// Eq. 9 as an atomic read-modify-write: the continuation value is read
  /// once, then the cell is updated by a compare-exchange loop so no
  /// concurrent TD step is silently dropped (each retry recomputes the
  /// blend from the freshly observed cell value).
  void SarsaUpdate(model::ItemId state, model::ItemId action, double reward,
                   model::ItemId next_state, model::ItemId next_action,
                   double alpha, double gamma) {
    const double next_q = (next_state >= 0 && next_action >= 0)
                              ? Get(next_state, next_action)
                              : 0.0;
    std::atomic<double>& cell = values_[Flat(state, action)];
    double current = cell.load(std::memory_order_relaxed);
    double updated;
    do {
      updated = current + alpha * (reward + gamma * next_q - current);
    } while (!cell.compare_exchange_weak(current, updated,
                                         std::memory_order_relaxed));
  }

  /// Plain-table copy-out (for safety rollouts and the final result).
  mdp::QTable ToQTable() const;

  /// Overwrites every cell from a plain table (after the coordinator's
  /// decay/jitter restart). Must not race with worker updates — only called
  /// at round barriers.
  void LoadFrom(const mdp::QTable& table);

 private:
  std::size_t Flat(model::ItemId state, model::ItemId action) const {
    return static_cast<std::size_t>(state) * num_items_ +
           static_cast<std::size_t>(action);
  }

  std::size_t num_items_;
  // unique_ptr array rather than std::vector: atomics are not movable, and
  // the table size is fixed at construction anyway.
  std::unique_ptr<std::atomic<double>[]> values_;
};

/// Intra-run parallel SARSA: one training run's episode budget spread over
/// K episode workers (SarsaConfig::num_workers), in one of two modes.
///
/// kDeterministic — at each policy-iteration round the coordinator
/// snapshots the Q-table; every worker rolls out its episode shard against
/// a private copy of the snapshot with a private RNG seeded from
/// (seed, round, worker); at the round barrier the coordinator folds the
/// workers' TD deltas back in *fixed worker order*
/// (Q += local_w - snapshot, w ascending), runs the greedy safety rollout,
/// and applies the same decay/jitter restart as the serial learner. Every
/// stochastic choice derives from (seed, round, worker) and every
/// floating-point reduction has a fixed order, so the learned table is
/// bit-identical across runs and across physical thread counts — only
/// (seed, K) matter. K = 1 delegates wholesale to SarsaLearner and is
/// bit-identical to it.
///
/// kHogwild — workers share one AtomicQTable and CAS their updates in with
/// no snapshots or merge. Scheduling decides the update interleaving, so
/// two runs differ bitwise; validated statistically (greedy rollout
/// satisfies the hard constraints, scores within tolerance of serial).
///
/// kSerial (or num_workers <= 1) — delegates to SarsaLearnerT unchanged.
///
/// Templated over the Q representation like SarsaLearnerT: dense
/// `mdp::QTable` or `mdp::SparseQTable`. The deterministic merge contract is
/// representation-independent — both tables fold worker deltas over a fixed
/// iteration order with identical FP operation order, so dense and sparse
/// runs of the same (seed, K) learn bit-identical tables (pinned by test).
/// kHogwild is dense-only (the CAS table is an atomic dense array); config
/// validation rejects the sparse combination before Learn() runs.
template <typename QModel>
class ParallelSarsaLearnerT {
 public:
  /// `instance` and `reward` must outlive the learner. `pool` optionally
  /// supplies the threads; when null, Learn() spins up a private pool
  /// sized to num_workers for its own duration. Shard results never depend
  /// on which thread runs them, so a too-small pool (or the serial
  /// degradation inside an outer ParallelFor) changes wall-clock only.
  ParallelSarsaLearnerT(const model::TaskInstance& instance,
                        const mdp::RewardFunction& reward,
                        const SarsaConfig& config, std::uint64_t seed = 17,
                        util::ThreadPool* pool = nullptr);

  /// Runs `config.num_episodes` episodes across the workers and returns the
  /// learned Q-table.
  QModel Learn();

  /// Total Eq. 2 return of each episode. Deterministic mode: concatenated
  /// in (round, worker) order. Hogwild: (round, worker) order as well, but
  /// the values themselves depend on scheduling.
  const std::vector<double>& episode_returns() const {
    return episode_returns_;
  }

  /// Wall-clock seconds from the start of Learn() until the first round
  /// whose greedy rollout satisfied every hard constraint; -1 when no safe
  /// round was observed (or policy_rounds <= 1, which never rolls out).
  /// The bench reports this as time-to-constraint-satisfaction.
  double time_to_safe_seconds() const { return time_to_safe_seconds_; }

  /// The effective worker count K (>= 1).
  int num_workers() const;

  /// The per-worker RNG seed: SplitMix64-style mix of the run seed with the
  /// (round, worker) coordinates, so shards are decorrelated but fully
  /// reproducible. Exposed for tests.
  static std::uint64_t WorkerSeed(std::uint64_t seed, int round, int worker);

  /// Attaches the metrics facade (null detaches). Worker threads record
  /// per-step/per-episode counts through the sharded cells; the coordinator
  /// records round samples and the per-worker merge-barrier wait. Recording
  /// uses Q reads only, so deterministic-mode output stays bit-exact.
  void set_metrics(obs::TrainingMetrics* metrics) { metrics_ = metrics; }

  /// Attaches a trace collector (null detaches): the coordinator emits
  /// `train_round`, `train_merge`, and `train_safety_rollout` spans; each
  /// worker emits a `train_shard` span on its own thread's timeline, making
  /// the sharded-merge timeline (and any straggler) visible per worker.
  /// Spans only read the clock — no RNG draws, no Q-table touches — so
  /// deterministic-mode output stays bit-exact with tracing on.
  void set_trace(obs::TraceCollector* trace) { trace_ = trace; }

 private:
  QModel LearnSerialDelegate();
  QModel LearnDeterministic();
  QModel LearnHogwild();

  // Runs `fn(w)` for w in [0, K) on the external pool, a private pool, or
  // inline, in that order of availability.
  void ForEachWorker(int num_workers,
                     const std::function<void(std::size_t)>& fn);

  const model::TaskInstance* instance_;
  const mdp::RewardFunction* reward_;
  SarsaConfig config_;
  std::uint64_t seed_;
  util::ThreadPool* pool_;
  // Lazily created when no external pool was supplied; reused across
  // Learn() calls on the same learner.
  std::unique_ptr<util::ThreadPool> owned_pool_;
  obs::TrainingMetrics* metrics_ = nullptr;
  obs::TraceCollector* trace_ = nullptr;
  std::vector<double> episode_returns_;
  double time_to_safe_seconds_ = -1.0;
};

extern template class ParallelSarsaLearnerT<mdp::QTable>;
extern template class ParallelSarsaLearnerT<mdp::SparseQTable>;

/// The historical dense learner — every pre-existing call site compiles
/// unchanged.
using ParallelSarsaLearner = ParallelSarsaLearnerT<mdp::QTable>;
/// The sparse learner for catalogs past kSparseAutoThreshold.
using SparseParallelSarsaLearner = ParallelSarsaLearnerT<mdp::SparseQTable>;

}  // namespace rlplanner::rl

#endif  // RLPLANNER_RL_PARALLEL_SARSA_H_

#ifndef RLPLANNER_RL_TRANSFER_H_
#define RLPLANNER_RL_TRANSFER_H_

#include <vector>

#include "mdp/q_table.h"
#include "model/catalog.h"

namespace rlplanner::rl {

/// Policy transfer across task instances (Section IV-D).
///
/// Two regimes:
/// - *Shared catalog* (M.S. DS-CT <-> M.S. CS at Univ-1): both programs draw
///   from the same university catalog, so the Q-table indices already agree
///   and the source table can be reused verbatim; only the target instance's
///   constraints change. No mapping is needed.
/// - *Disjoint catalogs* (NYC <-> Paris): items differ, so each target item
///   is matched to its most theme-similar source item and Q values are
///   pulled through that mapping.
class PolicyTransfer {
 public:
  /// For each target item, the id of the most similar source item under
  /// Jaccard similarity of theme vectors *after aligning the vocabularies by
  /// topic name* (e.g. Paris "museum" aligns with NYC "museum" even though
  /// the vocabularies have different sizes/orders). Ties resolve to the
  /// lowest source id.
  static std::vector<model::ItemId> MatchByTopics(
      const model::Catalog& source, const model::Catalog& target);

  /// Builds a Q-table over `target`'s items with
  /// `Q_t(s, a) = Q_s(match[s], match[a])`. Entries where either endpoint
  /// maps to itself across catalogs keep the source value; a target item
  /// with no positive-similarity match gets all-zero rows/columns.
  static mdp::QTable MapAcrossCatalogs(const mdp::QTable& source_q,
                                       const model::Catalog& source,
                                       const model::Catalog& target);
};

}  // namespace rlplanner::rl

#endif  // RLPLANNER_RL_TRANSFER_H_

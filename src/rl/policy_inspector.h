#ifndef RLPLANNER_RL_POLICY_INSPECTOR_H_
#define RLPLANNER_RL_POLICY_INSPECTOR_H_

#include <string>
#include <vector>

#include "mdp/q_table.h"
#include "model/catalog.h"

namespace rlplanner::rl {

/// One learned transition, for inspection.
struct PolicyEdge {
  model::ItemId from = -1;
  model::ItemId to = -1;
  double q_value = 0.0;
};

/// Read-only introspection of a learned Q-table against its catalog:
/// what did the policy actually learn? Useful for debugging reward design
/// and for explaining recommendations to end users ("after Machine
/// Learning the policy most values Deep Learning").
class PolicyInspector {
 public:
  /// Both references must outlive the inspector.
  PolicyInspector(const mdp::QTable& q, const model::Catalog& catalog);

  /// The `k` highest-valued actions out of `state`, descending.
  std::vector<PolicyEdge> TopActions(model::ItemId state, int k) const;

  /// The `k` highest-valued transitions anywhere in the table, descending.
  std::vector<PolicyEdge> TopTransitions(int k) const;

  /// The greedy successor of every item (Q argmax per row; -1 for all-zero
  /// rows), indexed by item id.
  std::vector<model::ItemId> GreedySuccessors() const;

  /// Renders the top-`k` transitions as a Graphviz DOT digraph whose edge
  /// labels are Q values — `dot -Tsvg` gives a picture of the policy.
  std::string ToDot(int k) const;

 private:
  const mdp::QTable* q_;
  const model::Catalog* catalog_;
};

}  // namespace rlplanner::rl

#endif  // RLPLANNER_RL_POLICY_INSPECTOR_H_

#ifndef RLPLANNER_RL_SARSA_H_
#define RLPLANNER_RL_SARSA_H_

#include <vector>

#include "mdp/q_table.h"
#include "mdp/reward.h"
#include "rl/action_mask.h"
#include "util/rng.h"

namespace rlplanner::rl {

/// How the behavior policy picks actions during learning.
enum class ExplorationMode {
  /// Algorithm 1: greedy on the immediate Eq. 2 reward, random tie-break.
  kRewardGreedy = 0,
  /// Epsilon-greedy on the current Q values (standard SARSA exploration,
  /// used in ablations).
  kEpsilonGreedyQ = 1,
};

/// The temporal-difference target used for the Q update. The paper adapts
/// on-policy SARSA (Eq. 9, "known to converge faster and with fewer
/// errors"); the off-policy and expectation variants are provided for the
/// ablation study.
enum class UpdateRule {
  /// r + gamma * Q(s', e') — Eq. 9, on-policy.
  kSarsa = 0,
  /// r + gamma * max_e Q(s', e) over admissible actions — Q-learning.
  kQLearning = 1,
  /// r + gamma * E_pi[Q(s', e)] under the epsilon-greedy behavior policy.
  kExpectedSarsa = 2,
};

/// Learning-phase parameters (the first block of Table III).
struct SarsaConfig {
  /// Number of episodes N.
  int num_episodes = 500;
  /// Learning rate alpha.
  double alpha = 0.75;
  /// Discount factor gamma.
  double gamma = 0.95;
  /// Behavior policy.
  ExplorationMode exploration = ExplorationMode::kRewardGreedy;
  /// Temporal-difference target (Eq. 9 by default).
  UpdateRule update_rule = UpdateRule::kSarsa;
  /// Exploration rate: probability of a uniformly random admissible action
  /// per step (applies to both behavior policies).
  double explore_epsilon = 0.1;
  /// Fixed starting item s_1; -1 picks a random primary item per episode.
  model::ItemId start_item = -1;
  /// One-step-lookahead masking of actions that make the hard split
  /// unsatisfiable (see ActionMask).
  bool mask_type_overflow = true;
  /// Policy-iteration rounds (Section III-C frames the learner as policy
  /// iteration "repeated iteratively until the policy converges"): the
  /// episode budget is split into this many rounds; after each round the
  /// greedy policy is rolled out, and if the rollout violates a hard
  /// constraint the Q-table is decayed by `restart_decay` (breaking a
  /// locked-in tie-order) and exploration temporarily widens. 1 disables
  /// the check and reproduces plain SARSA over all N episodes.
  int policy_rounds = 5;
  /// Q decay applied when a round's rollout is constraint-violating.
  double restart_decay = 0.25;
};

/// The SARSA policy learner of Section III-C / Algorithm 1. Each episode
/// generates a trajectory of at most H items (H from the credit requirement
/// for courses, from the time budget for trips), computing Eq. 2 rewards and
/// applying the Eq. 9 update.
class SarsaLearner {
 public:
  /// `instance` and `reward` must outlive the learner.
  SarsaLearner(const model::TaskInstance& instance,
               const mdp::RewardFunction& reward, const SarsaConfig& config,
               std::uint64_t seed = 17);

  /// Runs `config.num_episodes` episodes and returns the learned Q-table.
  mdp::QTable Learn();

  /// Total Eq. 2 return of each episode, in order (length = episodes run).
  /// Useful for convergence diagnostics and tests.
  const std::vector<double>& episode_returns() const {
    return episode_returns_;
  }

  /// The horizon H used for episodes (courses: #primary + #secondary;
  /// trips: unbounded-by-count, terminated by the time budget — this then
  /// returns the catalog size as a safety cap).
  int Horizon() const;

 private:
  // Derives the admissible-action set of `state` into the shared `allowed_`
  // buffer (one mask scan per step; SelectAction and ContinuationValue both
  // read the same buffer instead of re-deriving the mask).
  void ComputeAllowed(const mdp::EpisodeState& state, const ActionMask& mask);
  // Behavior-policy action selection among the actions in `allowed_`;
  // -1 = none.
  model::ItemId SelectAction(const mdp::EpisodeState& state,
                             const mdp::QTable& q, double explore_epsilon);
  // Generates one episode and applies the TD updates.
  void RunEpisode(mdp::QTable& q, const ActionMask& mask,
                  double explore_epsilon);
  // The continuation value of (state after `action`, `next_action`) under
  // the configured update rule, over the actions in `allowed_` (which must
  // hold the admissible set of `next_state`).
  double ContinuationValue(const mdp::QTable& q,
                           const mdp::EpisodeState& next_state,
                           model::ItemId next_action,
                           double explore_epsilon) const;
  model::ItemId PickStart();

  const model::TaskInstance* instance_;
  const mdp::RewardFunction* reward_;
  SarsaConfig config_;
  util::Rng rng_;
  std::vector<double> episode_returns_;
  // Reusable per-step scratch: the admissible actions of the current state
  // and the reward/Q-tied best set (avoids two heap allocations per step).
  std::vector<model::ItemId> allowed_;
  std::vector<model::ItemId> best_;
};

}  // namespace rlplanner::rl

#endif  // RLPLANNER_RL_SARSA_H_

#ifndef RLPLANNER_RL_SARSA_H_
#define RLPLANNER_RL_SARSA_H_

#include <functional>
#include <vector>

#include "mdp/q_table.h"
#include "mdp/reward.h"
#include "mdp/sparse_q_table.h"
#include "rl/action_mask.h"
#include "rl/episode_runner.h"
#include "rl/sarsa_config.h"
#include "util/rng.h"

namespace rlplanner::obs {
class TraceCollector;
}  // namespace rlplanner::obs

namespace rlplanner::rl {

/// The SARSA policy learner of Section III-C / Algorithm 1. Each episode
/// generates a trajectory of at most H items (H from the credit requirement
/// for courses, from the time budget for trips), computing Eq. 2 rewards and
/// applying the Eq. 9 update.
///
/// Templated over the Q representation: `QModel` is `mdp::QTable` (dense,
/// the historical default) or `mdp::SparseQTable` (10k-100k item catalogs).
/// Both instantiations draw from one RNG stream in the same order and run
/// arithmetic with identical operation order, so for a given seed they learn
/// bit-identical tables (pinned by test at paper scale). Explicitly
/// instantiated in sarsa.cc for exactly those two models.
///
/// The episode machinery lives in EpisodeRunner (shared with the parallel
/// learner); this class owns the single RNG stream and the policy-iteration
/// loop around it. Not copyable: the embedded runner points back into the
/// learner's own config and RNG.
template <typename QModel>
class SarsaLearnerT {
 public:
  /// Observes each policy-iteration round right after its safety rollout:
  /// `round` is the 0-based round index, `safe` whether the greedy rollout
  /// satisfied every hard constraint. Only fires when `policy_rounds > 1`.
  /// Purely observational — installing one consumes no RNG draws, so the
  /// learned table is unchanged (ParallelSarsaLearner uses this to record
  /// time-to-constraint-satisfaction when delegating K=1 runs here).
  using RoundObserver = std::function<void(int round, bool safe)>;

  /// `instance` and `reward` must outlive the learner.
  SarsaLearnerT(const model::TaskInstance& instance,
                const mdp::RewardFunction& reward, const SarsaConfig& config,
                std::uint64_t seed = 17);

  SarsaLearnerT(const SarsaLearnerT&) = delete;
  SarsaLearnerT& operator=(const SarsaLearnerT&) = delete;

  /// Runs `config.num_episodes` episodes and returns the learned Q-table.
  QModel Learn();

  /// Incremental-retrain entry point: like Learn(), but the episode loop
  /// starts from `warm_start` instead of a zero table — the fleet
  /// orchestrator's continual-update path (warm starts from the incumbent
  /// policy, from a topic-space transfer, or from a feedback-shaped copy of
  /// either). `warm_start.num_items()` must match the task instance's
  /// catalog. Learn() is exactly LearnFrom(zero table), so a warm start of
  /// zeros reproduces a cold run bit for bit; the policy-iteration safety
  /// loop (rollout check, decay-and-retry restarts) applies to the warm
  /// table the same way it applies to a cold one.
  QModel LearnFrom(QModel warm_start);

  /// Total Eq. 2 return of each episode, in order (length = episodes run).
  /// Useful for convergence diagnostics and tests.
  const std::vector<double>& episode_returns() const {
    return runner_.episode_returns();
  }

  /// The horizon H used for episodes (courses: #primary + #secondary;
  /// trips: unbounded-by-count, terminated by the time budget — this then
  /// returns the catalog size as a safety cap).
  int Horizon() const { return runner_.Horizon(); }

  void set_round_observer(RoundObserver observer) {
    round_observer_ = std::move(observer);
  }

  /// Attaches the metrics facade (null detaches): per-step TD errors and
  /// episode counts flow from the embedded runner, per-round samples
  /// (episodes/sec, epsilon, safety verdict) from the policy-iteration
  /// loop. Purely observational — the learned table is unchanged.
  void set_metrics(obs::TrainingMetrics* metrics) {
    metrics_ = metrics;
    runner_.set_metrics(metrics);
  }

  /// Attaches a trace collector (null detaches): each policy-iteration
  /// round emits a `train_round` timeline span. Spans only read the clock —
  /// no RNG draws, no Q-table touches — so the learned table is bit-exact
  /// with tracing on.
  void set_trace(obs::TraceCollector* trace) { trace_ = trace; }

 private:
  const model::TaskInstance* instance_;
  const mdp::RewardFunction* reward_;
  SarsaConfig config_;
  util::Rng rng_;
  EpisodeRunner<QModel> runner_;
  RoundObserver round_observer_;
  obs::TrainingMetrics* metrics_ = nullptr;
  obs::TraceCollector* trace_ = nullptr;
};

extern template class SarsaLearnerT<mdp::QTable>;
extern template class SarsaLearnerT<mdp::SparseQTable>;

/// The historical dense learner — every pre-existing call site compiles
/// unchanged.
using SarsaLearner = SarsaLearnerT<mdp::QTable>;
/// The sparse learner for catalogs past kSparseAutoThreshold.
using SparseSarsaLearner = SarsaLearnerT<mdp::SparseQTable>;

}  // namespace rlplanner::rl

#endif  // RLPLANNER_RL_SARSA_H_

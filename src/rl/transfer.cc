#include "rl/transfer.h"

#include "model/topic_vector.h"

namespace rlplanner::rl {

namespace {

// Projects `topics` (over `from`'s vocabulary) into `to`'s vocabulary by
// topic name; topics absent from `to` are dropped.
model::TopicVector ProjectTopics(const model::TopicVector& topics,
                                 const model::Catalog& from,
                                 const model::Catalog& to) {
  model::TopicVector projected(to.vocabulary_size());
  for (std::size_t i = 0; i < from.vocabulary_size(); ++i) {
    if (!topics.Test(i)) continue;
    const int target_id = to.TopicId(from.vocabulary()[i]);
    if (target_id >= 0) projected.Set(static_cast<std::size_t>(target_id));
  }
  return projected;
}

}  // namespace

std::vector<model::ItemId> PolicyTransfer::MatchByTopics(
    const model::Catalog& source, const model::Catalog& target) {
  std::vector<model::ItemId> match(target.size(), -1);
  for (const model::Item& target_item : target.items()) {
    // Identical item codes (shared courses between programs of the same
    // university) map directly.
    auto same_code = source.FindByCode(target_item.code);
    if (same_code.ok()) {
      match[target_item.id] = same_code.value();
      continue;
    }
    const model::TopicVector projected =
        ProjectTopics(target_item.topics, target, source);
    double best_similarity = 0.0;
    model::ItemId best = -1;
    for (const model::Item& source_item : source.items()) {
      const double similarity =
          model::JaccardSimilarity(projected, source_item.topics);
      if (projected.None() && source_item.topics.None()) {
        // Both empty: Jaccard is vacuously 1 but carries no signal; skip.
        continue;
      }
      if (best < 0 || similarity > best_similarity + 1e-12) {
        if (similarity > 0.0) {
          best = source_item.id;
          best_similarity = similarity;
        }
      }
    }
    match[target_item.id] = best;
  }
  return match;
}

mdp::QTable PolicyTransfer::MapAcrossCatalogs(const mdp::QTable& source_q,
                                              const model::Catalog& source,
                                              const model::Catalog& target) {
  const std::vector<model::ItemId> match = MatchByTopics(source, target);
  mdp::QTable out(target.size());
  for (std::size_t s = 0; s < target.size(); ++s) {
    if (match[s] < 0) continue;
    for (std::size_t a = 0; a < target.size(); ++a) {
      if (a == s || match[a] < 0) continue;
      out.Set(static_cast<model::ItemId>(s), static_cast<model::ItemId>(a),
              source_q.Get(match[s], match[a]));
    }
  }
  return out;
}

}  // namespace rlplanner::rl

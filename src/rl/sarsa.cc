#include "rl/sarsa.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <optional>
#include <utility>

#include "mdp/cmdp.h"
#include "obs/span.h"
#include "obs/training_metrics.h"
#include "rl/recommender.h"

namespace rlplanner::rl {

template <typename QModel>
SarsaLearnerT<QModel>::SarsaLearnerT(const model::TaskInstance& instance,
                                     const mdp::RewardFunction& reward,
                                     const SarsaConfig& config,
                                     std::uint64_t seed)
    : instance_(&instance),
      reward_(&reward),
      config_(config),
      rng_(seed),
      runner_(instance, reward, config_, rng_) {}

template <typename QModel>
QModel SarsaLearnerT<QModel>::Learn() {
  return LearnFrom(QModel(instance_->catalog->size()));
}

template <typename QModel>
QModel SarsaLearnerT<QModel>::LearnFrom(QModel warm_start) {
  assert(warm_start.num_items() == instance_->catalog->size());
  QModel q = std::move(warm_start);
  runner_.mutable_episode_returns().clear();
  runner_.mutable_episode_returns().reserve(
      static_cast<std::size_t>(config_.num_episodes));
  const ActionMask mask(*reward_, Horizon(), config_.mask_type_overflow);

  // Policy iteration (Section III-C): alternate SARSA policy evaluation
  // with a greedy-rollout policy check. If the greedy policy still violates
  // a hard constraint after a round, the tie-order it locked into is bad:
  // decay the table and explore more widely in the next round.
  const int rounds = std::max(1, config_.policy_rounds);
  const int per_round = std::max(1, config_.num_episodes / rounds);
  const mdp::CmdpSpec spec = mdp::CmdpSpec::FromInstance(*instance_);
  double explore = config_.explore_epsilon;

  RecommendConfig rollout_config;
  rollout_config.start_item =
      config_.start_item >= 0 ? config_.start_item : runner_.PickStart();
  rollout_config.mask_type_overflow = config_.mask_type_overflow;
  rollout_config.gamma = config_.gamma;
  auto policy_is_safe = [&](const QModel& table) {
    return spec.Satisfied(
        RecommendPlan(table, *instance_, *reward_, rollout_config));
  };

  std::optional<QModel> last_safe;
  int episodes_done = 0;
  for (int round = 0; episodes_done < config_.num_episodes; ++round) {
    // Spans only read the clock: no RNG draws, no Q-table interaction, so
    // training stays bit-exact with tracing on.
    obs::ScopedSpan round_span(
        metrics_ != nullptr ? metrics_->registry() : nullptr, "train_round",
        trace_);
    round_span.AddArg("round", static_cast<std::uint64_t>(round));
    const auto round_start = std::chrono::steady_clock::now();
    const double round_epsilon = explore;
    const int round_first_episode = episodes_done;
    const int target =
        round >= rounds - 1 ? config_.num_episodes
                            : std::min(config_.num_episodes,
                                       episodes_done + per_round);
    for (; episodes_done < target; ++episodes_done) {
      runner_.RunEpisode(q, mask, explore);
    }
    // A single-round run never rolls out, so its sample reports safe.
    const bool safe = rounds == 1 || policy_is_safe(q);
    round_span.AddArg(
        "episodes", static_cast<std::uint64_t>(episodes_done -
                                               round_first_episode));
    round_span.AddArg("safe", safe ? "true" : "false");
    if (metrics_ != nullptr) {
      obs::TrainingRoundSample sample;
      sample.round = round;
      sample.episodes =
          static_cast<std::uint64_t>(episodes_done - round_first_episode);
      sample.seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - round_start)
                           .count();
      sample.episodes_per_sec =
          sample.seconds > 0.0
              ? static_cast<double>(sample.episodes) / sample.seconds
              : 0.0;
      sample.epsilon = round_epsilon;
      sample.safe = safe;
      metrics_->RecordRound(sample);
    }
    if (rounds == 1) continue;
    if (safe) {
      last_safe = q;
      explore = config_.explore_epsilon;
    } else {
      // The greedy policy's tie order is locked in and unsafe: decay the
      // table and jitter it so the next round's rollout resolves exact ties
      // differently (Algorithm 1's "Ensure: a policy satisfying P_hard").
      q.Scale(config_.restart_decay);
      q.AddNoise(rng_, 0.05);
      explore = std::min(0.5, explore + 0.1);
    }
    if (round_observer_) round_observer_(round, safe);
  }
  // Prefer the final table, but never hand back an unsafe policy when a
  // safe snapshot was observed during the iteration.
  if (rounds > 1 && last_safe.has_value() && !policy_is_safe(q)) {
    return *std::move(last_safe);
  }
  return q;
}

template class SarsaLearnerT<mdp::QTable>;
template class SarsaLearnerT<mdp::SparseQTable>;

}  // namespace rlplanner::rl

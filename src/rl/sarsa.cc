#include "rl/sarsa.h"

#include <algorithm>
#include <cassert>
#include <optional>
#include <vector>

#include "mdp/cmdp.h"
#include "rl/recommender.h"

namespace rlplanner::rl {

SarsaLearner::SarsaLearner(const model::TaskInstance& instance,
                           const mdp::RewardFunction& reward,
                           const SarsaConfig& config, std::uint64_t seed)
    : instance_(&instance),
      reward_(&reward),
      config_(config),
      rng_(seed) {}

int SarsaLearner::Horizon() const {
  if (instance_->catalog->domain() == model::Domain::kTrip) {
    // Trip episodes end when the time budget is exhausted; the item count is
    // only capped by the catalog size.
    return static_cast<int>(instance_->catalog->size());
  }
  return instance_->hard.TotalItems();
}

model::ItemId SarsaLearner::PickStart() {
  if (config_.start_item >= 0) return config_.start_item;
  const auto primaries =
      instance_->catalog->ItemsOfType(model::ItemType::kPrimary);
  if (!primaries.empty()) {
    return primaries[rng_.NextIndex(primaries.size())];
  }
  return static_cast<model::ItemId>(
      rng_.NextIndex(instance_->catalog->size()));
}

void SarsaLearner::ComputeAllowed(const mdp::EpisodeState& state,
                                  const ActionMask& mask) {
  const std::size_t n = instance_->catalog->size();
  allowed_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const auto item = static_cast<model::ItemId>(i);
    if (mask.Allowed(state, item)) allowed_.push_back(item);
  }
}

model::ItemId SarsaLearner::SelectAction(const mdp::EpisodeState& state,
                                         const mdp::QTable& q,
                                         double explore_epsilon) {
  if (allowed_.empty()) return -1;

  // Exploration applies to both behavior policies: a pure argmax-R policy
  // only ever visits one trajectory, leaving the Q-table empty everywhere
  // else (the paper's Python implementation gets its exploration from the
  // abundant exact-tie random picks; our reward has fewer exact ties, so a
  // small epsilon restores the same coverage).
  if (rng_.NextBernoulli(explore_epsilon)) {
    return allowed_[rng_.NextIndex(allowed_.size())];
  }

  // Greedy on immediate reward (Algorithm 1) or on Q, random tie-break.
  best_.clear();
  double best_value = 0.0;
  const model::ItemId current = state.CurrentItem();
  for (model::ItemId item : allowed_) {
    double value;
    if (config_.exploration == ExplorationMode::kRewardGreedy) {
      value = reward_->Reward(state, item);
    } else {
      value = current >= 0 ? q.Get(current, item) : 0.0;
    }
    if (best_.empty() || value > best_value + 1e-12) {
      best_.assign(1, item);
      best_value = value;
    } else if (value >= best_value - 1e-12) {
      best_.push_back(item);
    }
  }
  return best_[rng_.NextIndex(best_.size())];
}

void SarsaLearner::RunEpisode(mdp::QTable& q, const ActionMask& mask,
                              double explore_epsilon) {
  const int horizon = Horizon();
  mdp::EpisodeState state(*instance_);
  double episode_return = 0.0;

  // Seed the episode with the starting item (Algorithm 1 line 3).
  const model::ItemId start = PickStart();
  state.Add(start);

  // Choose the first action from the start state.
  ComputeAllowed(state, mask);
  model::ItemId action = SelectAction(state, q, explore_epsilon);
  model::ItemId current = start;
  while (action >= 0 && static_cast<int>(state.Length()) < horizon) {
    const double reward = reward_->Reward(state, action);
    episode_return += reward;
    state.Add(action);

    // Choose e' from s' (on-policy), then apply the TD update (Eq. 9 for
    // SARSA; Q-learning/Expected-SARSA substitute their own targets). The
    // admissible set of s' is derived once into `allowed_` and shared by
    // the selection and the continuation target.
    model::ItemId next_action = -1;
    if (static_cast<int>(state.Length()) < horizon) {
      ComputeAllowed(state, mask);
      next_action = SelectAction(state, q, explore_epsilon);
    }
    if (config_.update_rule == UpdateRule::kSarsa) {
      q.SarsaUpdate(current, action, reward, action, next_action,
                    config_.alpha, config_.gamma);
    } else {
      const double continuation =
          ContinuationValue(q, state, next_action, explore_epsilon);
      const double old_value = q.Get(current, action);
      q.Set(current, action,
            old_value + config_.alpha *
                            (reward + config_.gamma * continuation -
                             old_value));
    }

    current = action;
    action = next_action;
  }
  episode_returns_.push_back(episode_return);
}

double SarsaLearner::ContinuationValue(const mdp::QTable& q,
                                       const mdp::EpisodeState& next_state,
                                       model::ItemId next_action,
                                       double explore_epsilon) const {
  if (next_action < 0) return 0.0;  // terminal
  const model::ItemId next_item = next_state.CurrentItem();
  if (next_item < 0) return 0.0;
  if (allowed_.empty()) return 0.0;

  double max_q = q.Get(next_item, allowed_.front());
  double sum_q = 0.0;
  for (model::ItemId item : allowed_) {
    const double value = q.Get(next_item, item);
    max_q = std::max(max_q, value);
    sum_q += value;
  }
  if (config_.update_rule == UpdateRule::kQLearning) return max_q;
  // Expected SARSA under the epsilon-greedy mixture: with probability
  // epsilon a uniform action, otherwise the greedy one.
  const double uniform = sum_q / static_cast<double>(allowed_.size());
  return explore_epsilon * uniform + (1.0 - explore_epsilon) * max_q;
}

mdp::QTable SarsaLearner::Learn() {
  const std::size_t n = instance_->catalog->size();
  mdp::QTable q(n);
  episode_returns_.clear();
  episode_returns_.reserve(static_cast<std::size_t>(config_.num_episodes));
  const ActionMask mask(*reward_, Horizon(), config_.mask_type_overflow);

  // Policy iteration (Section III-C): alternate SARSA policy evaluation
  // with a greedy-rollout policy check. If the greedy policy still violates
  // a hard constraint after a round, the tie-order it locked into is bad:
  // decay the table and explore more widely in the next round.
  const int rounds = std::max(1, config_.policy_rounds);
  const int per_round = std::max(1, config_.num_episodes / rounds);
  const mdp::CmdpSpec spec = mdp::CmdpSpec::FromInstance(*instance_);
  double explore = config_.explore_epsilon;

  RecommendConfig rollout_config;
  rollout_config.start_item =
      config_.start_item >= 0 ? config_.start_item : PickStart();
  rollout_config.mask_type_overflow = config_.mask_type_overflow;
  rollout_config.gamma = config_.gamma;
  auto policy_is_safe = [&](const mdp::QTable& table) {
    return spec.Satisfied(
        RecommendPlan(table, *instance_, *reward_, rollout_config));
  };

  std::optional<mdp::QTable> last_safe;
  int episodes_done = 0;
  for (int round = 0; episodes_done < config_.num_episodes; ++round) {
    const int target =
        round >= rounds - 1 ? config_.num_episodes
                            : std::min(config_.num_episodes,
                                       episodes_done + per_round);
    for (; episodes_done < target; ++episodes_done) {
      RunEpisode(q, mask, explore);
    }
    if (rounds == 1) continue;
    if (policy_is_safe(q)) {
      last_safe = q;
      explore = config_.explore_epsilon;
    } else {
      // The greedy policy's tie order is locked in and unsafe: decay the
      // table and jitter it so the next round's rollout resolves exact ties
      // differently (Algorithm 1's "Ensure: a policy satisfying P_hard").
      q.Scale(config_.restart_decay);
      q.AddNoise(rng_, 0.05);
      explore = std::min(0.5, explore + 0.1);
    }
  }
  // Prefer the final table, but never hand back an unsafe policy when a
  // safe snapshot was observed during the iteration.
  if (rounds > 1 && last_safe.has_value() && !policy_is_safe(q)) {
    return *std::move(last_safe);
  }
  return q;
}

}  // namespace rlplanner::rl
